// RNN example: sweep the paper's RNN configurations (Figure 9) on the
// simulated machine, showing where each alternative runs out of memory and
// where Tofu keeps training.
package main

import (
	"fmt"
	"log"

	"tofu"
)

func main() {
	hw := tofu.DefaultHW()
	systems := []tofu.System{tofu.Ideal, tofu.SmallBatch, tofu.Swap, tofu.OpPlacement, tofu.TofuSystem}

	for _, layers := range []int{6, 8} {
		for _, hidden := range []int64{4096, 6144} {
			cfg := tofu.ModelConfig{Family: "rnn", Depth: layers, Width: hidden, Batch: 512}
			fmt.Printf("\nRNN-%d-%dK (batch 512):\n", layers, hidden/1024)
			var ideal float64
			for _, sys := range systems {
				out, err := tofu.EvaluateSystem(cfg, sys, hw)
				if err != nil {
					log.Fatal(err)
				}
				if sys == tofu.Ideal {
					ideal = out.Throughput
				}
				if out.Throughput == 0 {
					fmt.Printf("  %-14s OOM\n", sys)
					continue
				}
				fmt.Printf("  %-14s %6.0f samples/s  (%.0f%% of ideal, batch %d)\n",
					sys, out.Throughput, out.Throughput/ideal*100, out.Batch)
			}
		}
	}
}
