// Custom operator example: describe a new operator in TDL and let Tofu's
// analyzer discover its partition strategies automatically — the paper's
// answer to the manual per-layer strategy engineering of prior systems
// (Sec 4.1, Figure 3).
package main

import (
	"fmt"
	"log"

	"tofu"
)

func main() {
	// A batched bilinear form: out[b, i, j] = sum_k x[b, i, k] * w[k, j].
	// Three lines of TDL, just like the paper's conv1d example.
	b, i, j, k := tofu.Ax("b"), tofu.Ax("i"), tofu.Ax("j"), tofu.Ax("k")
	desc, err := tofu.DescribeOp("batched_bilinear").
		In("x", 3).In("w", 2).
		Out(b, i, j).
		Is(tofu.Reduce(tofu.Sum,
			[]tofu.ReduceAxisBinding{tofu.RVar(k, tofu.ExtentOf("x", 2))},
			tofu.Mul(tofu.At("x", b, i, k), tofu.At("w", k, j))))
	if err != nil {
		log.Fatal(err)
	}
	if err := tofu.RegisterOp(desc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered:", desc)

	// The analyzer discovers every partition-n-reduce strategy: one per
	// output dimension (b, i, j) plus the output-reduction strategy along k
	// that prior work's hand-written catalogs famously missed (Sec 7.3).
	strategies, err := tofu.OpStrategies("batched_bilinear", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered strategies:")
	for _, s := range strategies {
		fmt.Println("  ", s)
	}

	// Opaque functions handle what TDL cannot express (the paper's
	// batch_cholesky, Figure 3): only the batch dimension is partitionable.
	cholesky, err := tofu.OpStrategies("batch_cholesky", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("batch_cholesky strategies (opaque matrix axes excluded):")
	for _, s := range cholesky {
		fmt.Println("  ", s)
	}

	// Strided windows stay analyzable: conv2d with stride 2 still exposes
	// batch/channel splits plus halo-exchange spatial splits and channel
	// reductions.
	conv, err := tofu.OpStrategies("conv2d", tofu.Attrs{"stride": 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conv2d (stride 2) strategies:")
	for _, s := range conv {
		fmt.Println("  ", s)
	}
}
