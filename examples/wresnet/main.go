// WResNet example: partition the largest convolutional benchmark of the
// paper (WResNet-152 widened 10x, 65 GB of weight state) and inspect the
// non-trivial plan Tofu finds — the paper's Figure 11.
package main

import (
	"fmt"
	"log"
	"strings"

	"tofu"
)

func main() {
	m, err := tofu.WResNet(152, 10, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d operators, %.1f GB weight state (3W)\n",
		m.Name, len(m.G.Nodes), float64(m.WeightBytes3x())/(1<<30))

	s, err := tofu.Partition(m.G, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search: %v, plan communication: %.1f GB/iteration\n",
		s.SearchTime.Round(1e6), s.Plan.TotalComm()/(1<<30))
	fmt.Printf("per-GPU memory: %.1f GB of 12 GB\n\n", float64(s.Memory.PeakBytes)/(1<<30))

	// The paper's Figure 11 observation: the plan mixes batch and channel
	// partitioning, differs across the three convolutions of a bottleneck,
	// and switches from fetching weights (lower layers, big activations) to
	// fetching activations (higher layers, big weights).
	fmt.Println("convolution weight tilings (co=out-channel, ci=in-channel):")
	shown := 0
	var last string
	repeats := 0
	flush := func() {
		if last == "" {
			return
		}
		if repeats > 1 {
			fmt.Printf("  %s   x%d\n", last, repeats)
		} else {
			fmt.Printf("  %s\n", last)
		}
	}
	for _, w := range m.G.Weights() {
		if !strings.Contains(w.Name, ".w") || w.Shape.Rank() != 4 {
			continue
		}
		line := fmt.Sprintf("%-14s %-22s %s", w.Name, w.Shape.String(), s.Plan.CutSummary(w.ID))
		pat := line[14:]
		if last != "" && pat == last[14:] {
			repeats++
			continue
		}
		flush()
		last, repeats = line, 1
		shown++
		if shown > 40 {
			fmt.Println("  ...")
			last = ""
			break
		}
	}
	flush()

	res := tofu.Simulate(s, m.Batch)
	fmt.Printf("\nsimulated training: %.1f samples/s at batch %d\n", res.Throughput, m.Batch)
}
