// Attention example: Tofu was evaluated on CNNs and RNNs, but nothing in
// the machinery is specific to them — this example partitions a Transformer
// encoder, the model family Tofu's successors (GSPMD, Alpa) targeted. The
// attention block's Q/K/V fan-out gives the coarsened graph a wider
// frontier than the paper's chains, so the search uses a (generous) beam
// bound on the exact DP.
package main

import (
	"fmt"
	"log"

	"tofu"
	"tofu/internal/models"
	"tofu/internal/recursive"
)

func main() {
	m, err := models.Transformer(4, 2048, 256, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d operators, %.2f GB weight state (3W)\n",
		m.Name, len(m.G.Nodes), float64(m.WeightBytes3x())/(1<<30))

	opts := tofu.DefaultPipelineOptions()
	opts.Search = recursive.Options{MaxStates: 512}
	s, err := tofu.PartitionWithOptions(m.G, 8, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search %v (frontier width %d, %d groups): %.2f GB comm/iter, %.2f GB/GPU\n",
		s.SearchTime.Round(1e6), s.Frontier, s.Groups,
		s.Plan.TotalComm()/(1<<30), float64(s.Memory.PeakBytes)/(1<<30))
	if !s.Plan.Monotone() {
		log.Fatal("plan violates Theorem 2")
	}

	// The interesting tilings: token-wise linear weights can partition by
	// input features, output features, or via output reduction over the
	// batch/sequence axes in the backward pass.
	fmt.Println("\nattention weight tilings:")
	for _, w := range m.G.Weights() {
		if w.Shape.Rank() != 2 || w.Shape.Elems() < 1<<20 {
			continue
		}
		fmt.Printf("  %-10s %-14s %s\n", w.Name, w.Shape, s.Plan.CutSummary(w.ID))
	}

	res := tofu.Simulate(s, m.Batch)
	fmt.Printf("\nsimulated: %.1f sequences/s (%.3f s/iteration)\n",
		res.Throughput, res.IterSeconds)
}
