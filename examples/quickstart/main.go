// Quickstart: build a training graph that exceeds one GPU's memory,
// partition it across 8 simulated GPUs with Tofu, and compare the result
// with the single-GPU alternatives.
package main

import (
	"fmt"
	"log"

	"tofu"
)

func main() {
	// A 6-layer LSTM with 4K hidden units unrolled 20 steps: 8.4 GB of
	// weights/gradients/optimizer state alone — too big for a 12 GB GPU at
	// any useful batch size (the paper's RNN-6-4K benchmark).
	m, err := tofu.RNN(6, 4096, 512, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d operators, %.1f GB of weight state\n",
		m.Name, len(m.G.Nodes), float64(m.WeightBytes3x())/(1<<30))

	// One call runs the whole pipeline: TDL analysis discovers each
	// operator's partition strategies, the graph is coarsened, the
	// recursive DP picks the communication-minimal plan, and the
	// partitioned execution is generated.
	s, err := tofu.Partition(m.G, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned in %v: %d recursive steps, %.2f GB communication/iter\n",
		s.SearchTime.Round(1e6), len(s.Plan.Steps), s.Plan.TotalComm()/(1<<30))
	fmt.Printf("per-GPU footprint: %.1f GB (fits a 12 GB device: %v)\n",
		float64(s.Memory.PeakBytes)/(1<<30), s.Memory.Fits(12<<30))

	// Simulate one training iteration on the default 8-GPU machine.
	res := tofu.Simulate(s, m.Batch)
	fmt.Printf("Tofu: %.0f samples/s (%.2f s/iteration)\n\n", res.Throughput, res.IterSeconds)

	// How the alternatives fare on the same model (Figure 9's comparison).
	cfg := m.Cfg
	for _, sys := range []tofu.System{tofu.Ideal, tofu.SmallBatch, tofu.Swap, tofu.OpPlacement} {
		out, err := tofu.EvaluateSystem(cfg, sys, tofu.DefaultHW())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %.0f samples/s (batch %d)\n", sys, out.Throughput, out.Batch)
	}
}
