package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tofu/internal/analysis"
)

// vetConfig is the per-package configuration file cmd/go writes for a
// -vettool (the x/tools unitchecker protocol). Imports resolve through
// PackageFile: import path -> gc export data produced by the build.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool analyzes one package under `go vet -vettool=tofu-vet` and returns
// the process exit code.
func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tofu-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tofu-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// We carry no cross-package facts, but cmd/go requires the output file
	// to exist before it will cache or proceed past this action.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "tofu-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "tofu-vet:", err)
		return 1
	}
	diags, err := analysis.Run(pkg, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tofu-vet:", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		file := d.File
		if rel, err := filepath.Rel(cfg.Dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", file, d.Line, d.Col, d.Message, d.Analyzer)
	}
	return 2
}
