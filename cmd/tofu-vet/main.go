// Command tofu-vet is the multichecker for this tree's project-specific
// invariant analyzers (see DESIGN.md, "Static invariants and tofu-vet"):
//
//	mapiter   map iteration must not feed ordered output unsorted
//	hotalloc  //tofu:hotpath functions must not allocate
//	nodeterm  //tofu:searchpath packages must be deterministic
//	ctxpoll   unbounded //tofu:searchpath loops must poll cancellation
//	errdrop   error returns must not be discarded outside tests
//
// Standalone:
//
//	go run ./cmd/tofu-vet ./...           # human-readable, exit 2 on findings
//	go run ./cmd/tofu-vet -json ./...     # machine-readable diagnostics
//	go run ./cmd/tofu-vet -list           # analyzer inventory
//
// As a go vet tool (the unitchecker protocol: go vet hands the tool a
// .cfg file per package, with gc export data for its imports):
//
//	go build -o /tmp/tofu-vet ./cmd/tofu-vet
//	go vet -vettool=/tmp/tofu-vet ./...
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tofu/internal/analysis"
	"tofu/internal/analysis/ctxpoll"
	"tofu/internal/analysis/errdrop"
	"tofu/internal/analysis/hotalloc"
	"tofu/internal/analysis/mapiter"
	"tofu/internal/analysis/nodeterm"
)

// version participates in go vet's action cache key (-V=full); bump it when
// analyzer behavior changes so cached clean verdicts are invalidated.
const version = "tofu-vet-2"

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxpoll.Analyzer,
		errdrop.Analyzer,
		hotalloc.Analyzer,
		mapiter.Analyzer,
		nodeterm.Analyzer,
	}
}

func main() {
	// go vet probes the tool's identity before using it.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("%s version %s\n", os.Args[0], version)
		return
	}
	// go vet asks the tool to enumerate its analyzer flags as JSON; we expose
	// none to cmd/go (options exist only in standalone mode).
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// go vet invocation: the sole argument is a *.cfg JSON file.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vettool(os.Args[1]))
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tofu-vet [-json] packages...\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(os.Stderr, "  %-9s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers() {
			fmt.Printf("%-9s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(wd, patterns)
	if err != nil {
		fatal(err)
	}
	diags := []analysis.Diagnostic{} // non-nil so -json prints [] when clean
	for _, pkg := range pkgs {
		ds, err := analysis.Run(pkg, analyzers())
		if err != nil {
			fatal(err)
		}
		diags = append(diags, ds...)
	}
	// Package order is already sorted; keep cross-package output stable by
	// file path, then position.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Diagnostics []analysis.Diagnostic `json:"diagnostics"`
		}{Diagnostics: diags}); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", rel(wd, d.File), d.Line, d.Col, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "tofu-vet: %d finding(s)\n", len(diags))
		}
		os.Exit(2)
	}
}

// rel shortens absolute paths for terminal output.
func rel(wd, path string) string {
	if strings.HasPrefix(path, wd+string(os.PathSeparator)) {
		return path[len(wd)+1:]
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tofu-vet:", err)
	os.Exit(1)
}
