// Command tofu-serve runs the partition-as-a-service daemon: an HTTP/JSON
// front end over the Tofu search with a content-addressed plan cache,
// singleflight request coalescing, and an async job queue with
// backpressure.
//
// Usage:
//
//	tofu-serve [-addr :8080] [-cache-size 128] [-pool N] [-queue-depth 64]
//	           [-sync-wait 2s] [-parallel N] [-drain-timeout 30s]
//
// API:
//
//	POST /v1/partition      {"model":{"family":"rnn","depth":6,"width":4096,"batch":128},"workers":8}
//	                        -> 200 plan JSON (cache hit or fast search)
//	                        -> 202 {"job":...} when the search exceeds -sync-wait
//	                        -> 429 when the job queue is full
//	GET  /v1/jobs/{id}      -> job status
//	GET  /v1/plans/{digest} -> cached plan by content digest
//	GET  /healthz, /metrics
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and running
// searches finish (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tofu/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for a random port)")
	cacheSize := flag.Int("cache-size", 128, "plan LRU capacity (entries)")
	pool := flag.Int("pool", 0, "search worker pool size (0 = half of GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "queued-search bound; a full queue answers 429")
	syncWait := flag.Duration("sync-wait", 2*time.Second,
		"latency budget before POST /v1/partition flips to the async 202 reply")
	parallel := flag.Int("parallel", 0,
		"DP worker goroutines per search (0 = GOMAXPROCS); plans are identical either way")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight searches to drain")
	flag.Parse()

	svc := service.New(service.Config{
		CacheSize:   *cacheSize,
		Workers:     *pool,
		QueueDepth:  *queueDepth,
		SyncWait:    *syncWait,
		Parallelism: *parallel,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler: svc.Handler(),
		// A public daemon must not let stalled clients pin goroutines
		// (slowloris) or block the graceful drain. The write deadline
		// leaves room for the longest legitimate response: a sync wait
		// that flips to 202 at the budget.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      *syncWait + time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("tofu-serve listening on %s (cache %d, queue %d, sync-wait %v)",
		ln.Addr(), *cacheSize, *queueDepth, *syncWait)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v, draining (timeout %v)", sig, *drainTimeout)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("drain: %v (abandoning in-flight searches)", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}
