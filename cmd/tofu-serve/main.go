// Command tofu-serve runs the partition-as-a-service daemon: an HTTP/JSON
// front end over the Tofu search with a content-addressed plan cache,
// singleflight request coalescing, and an async job queue with
// backpressure.
//
// Usage:
//
//	tofu-serve [-addr :8080] [-cache-size 128] [-cache-bytes N] [-pool N]
//	           [-queue-depth 64] [-sync-wait 2s] [-parallel N]
//	           [-drain-timeout 30s] [-store DIR] [-store-fsync]
//	           [-tenant-quota N] [-sweep manifest.json] [-sweep-interval 250ms]
//	           [-search-deadline D] [-search-watchdog D] [-degraded-policy serve|fail]
//	           [-faultfs SPEC] [-log-format text|json] [-pprof]
//
// -search-deadline bounds each search's wall clock: a search that exhausts
// its budget returns its best incumbent, served with a `Tofu-Degraded: true`
// header (or turned into a 503 under -degraded-policy fail). Requests can
// carry their own "deadline_ms", which also folds into the content digest.
// -search-watchdog caps any single search regardless of deadline, so a
// wedged job degrades instead of pinning a worker. Deadline-bounded
// requests the queue demonstrably cannot serve in budget are refused up
// front with 503 + Retry-After. -faultfs injects store faults for chaos
// testing (see internal/faultfs.ParseSpec).
//
// -store layers a persistent content-addressed plan store under the in-memory
// LRU: plans computed by any replica sharing DIR are served from disk (after
// checksum and digest verification) instead of re-searched, across restarts.
// -sweep precomputes a fleet manifest's plans in the background using idle
// capacity only; user traffic always takes priority. -tenant-quota bounds the
// concurrent searches any one Tofu-Tenant header may hold (429 beyond it).
//
// Every request and finished search is logged structurally via log/slog
// (trace id, digest, cache outcome, tenant, duration); -log-format json
// switches the records to JSON for log shippers. -pprof exposes
// net/http/pprof under /debug/pprof/ — off by default.
//
// API:
//
//	POST /v1/partition      {"model":{"family":"rnn","depth":6,"width":4096,"batch":128},"workers":8}
//	                        -> 200 plan JSON (cache hit or fast search)
//	                        -> 202 {"job":...} when the search exceeds -sync-wait
//	                        -> 429 when the job queue is full
//	GET  /v1/jobs/{id}      -> job status
//	GET  /v1/plans/{digest} -> cached plan by content digest
//	GET  /healthz, /metrics (JSON; ?format=prometheus for text exposition)
//
// SIGINT/SIGTERM drain gracefully: the listener stops, queued and running
// searches finish (bounded by -drain-timeout; searches still running at the
// bound are cancelled through the anytime path, so a wedged search cannot
// stall shutdown), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tofu/internal/faultfs"
	"tofu/internal/service"
	"tofu/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for a random port)")
	cacheSize := flag.Int("cache-size", 128, "plan LRU capacity (entries)")
	cacheBytes := flag.Int64("cache-bytes", 0,
		"plan LRU byte budget (0 = entries-only bound)")
	pool := flag.Int("pool", 0, "search worker pool size (0 = half of GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "queued-search bound; a full queue answers 429")
	syncWait := flag.Duration("sync-wait", 2*time.Second,
		"latency budget before POST /v1/partition flips to the async 202 reply")
	parallel := flag.Int("parallel", 0,
		"DP worker goroutines per search (0 = GOMAXPROCS); plans are identical either way")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight searches to drain")
	storeDir := flag.String("store", "",
		"persistent plan store directory, shared across restarts and replicas (empty = memory only)")
	storeFsync := flag.Bool("store-fsync", false,
		"fsync store writes (survive power loss, not just process death)")
	tenantQuota := flag.Int("tenant-quota", 0,
		"max concurrent searches per Tofu-Tenant header (0 = unlimited)")
	searchDeadline := flag.Duration("search-deadline", 0,
		"default wall-clock budget per search; on expiry the best incumbent is served marked degraded (0 = unbounded; requests with deadline_ms keep theirs)")
	searchWatchdog := flag.Duration("search-watchdog", 0,
		"hard cap on any single search's run time, regardless of deadline (0 = none)")
	degradedPolicy := flag.String("degraded-policy", service.DegradedServe,
		"what to do with deadline-stopped incumbents: serve (with a Tofu-Degraded header) or fail (503)")
	faultSpec := flag.String("faultfs", "",
		"store fault-injection spec for chaos testing, e.g. 'read:*.plan:corrupt:3' (empty = off)")
	sweepPath := flag.String("sweep", "",
		"fleet manifest JSON to precompute in the background on idle capacity")
	sweepInterval := flag.Duration("sweep-interval", 250*time.Millisecond,
		"idle-poll cadence of the manifest sweeper")
	logFormat := flag.String("log-format", "text",
		"structured log format: text (logfmt-style) or json")
	pprofOn := flag.Bool("pprof", false,
		"expose net/http/pprof under /debug/pprof/ (off by default)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "tofu-serve: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}

	if *degradedPolicy != service.DegradedServe && *degradedPolicy != service.DegradedFail {
		fmt.Fprintf(os.Stderr, "tofu-serve: unknown -degraded-policy %q (want serve or fail)\n", *degradedPolicy)
		os.Exit(2)
	}

	var st *store.Store
	if *storeDir != "" {
		inj, err := faultfs.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		var fsys faultfs.FS
		if inj != nil {
			fsys = inj
			logger.Warn("store fault injection active", "spec", *faultSpec)
		}
		st, err = store.Open(*storeDir, store.Options{Fsync: *storeFsync, FS: fsys})
		if err != nil {
			fatal(err)
		}
	} else if *faultSpec != "" {
		fatal(fmt.Errorf("-faultfs requires -store"))
	}

	svc := service.New(service.Config{
		CacheSize:       *cacheSize,
		CacheBytes:      *cacheBytes,
		Workers:         *pool,
		QueueDepth:      *queueDepth,
		SyncWait:        *syncWait,
		Parallelism:     *parallel,
		Store:           st,
		TenantQuota:     *tenantQuota,
		DefaultDeadline: *searchDeadline,
		Watchdog:        *searchWatchdog,
		DegradedPolicy:  *degradedPolicy,
		Logger:          logger,
	})

	var sweeper *service.Sweeper
	if *sweepPath != "" {
		data, err := os.ReadFile(*sweepPath)
		if err != nil {
			fatal(err)
		}
		reqs, digests, err := service.ParseManifest(data)
		if err != nil {
			fatal(fmt.Errorf("sweep manifest %s: %w", *sweepPath, err))
		}
		sweeper = svc.StartSweeper(reqs, digests, *sweepInterval)
		logger.Info("sweeping manifest on idle capacity",
			"entries", len(reqs), "interval", sweepInterval.String())
	}

	mux := svc.Handler()
	if *pprofOn {
		root := http.NewServeMux()
		root.Handle("/", mux)
		root.HandleFunc("GET /debug/pprof/", pprof.Index)
		root.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		root.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux = root
		logger.Info("pprof enabled at /debug/pprof/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Handler: mux,
		// A public daemon must not let stalled clients pin goroutines
		// (slowloris) or block the graceful drain. The write deadline
		// leaves room for the longest legitimate response: a sync wait
		// that flips to 202 at the budget.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      *syncWait + time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	storeNote := "memory only"
	if st != nil {
		storeNote = "store " + *storeDir
	}
	// The announce line keeps its historical shape — "listening on <addr> "
	// with the address followed by a space — because smoke scripts extract
	// the bound address from it.
	logger.Info(fmt.Sprintf("tofu-serve listening on %s (cache %d, queue %d, sync-wait %v, %s)",
		ln.Addr(), *cacheSize, *queueDepth, *syncWait, storeNote))

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "timeout", drainTimeout.String())
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		return
	}

	if sweeper != nil {
		sweeper.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if err := svc.Shutdown(ctx); err != nil {
		logger.Error("drain failed, abandoning in-flight searches", "err", err.Error())
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
