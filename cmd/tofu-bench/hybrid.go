package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tofu/internal/hybrid"
	"tofu/internal/models"
	"tofu/internal/topo"
)

// hybridSolveFloor is the acceptance floor for the joint search: on the
// 3- and 4-level cluster profiles, the segment memo plus branch-and-bound
// must run at least this many times fewer dp.Solve calls than exhaustive
// boundary enumeration.
const hybridSolveFloor = 10

// hybridCases are the gate profiles for the joint hybrid-parallelism
// search. Both the -exp hybrid artifact and the bench-json short rows run
// them; the dp-solve floor applies to both.
var hybridCases = []struct {
	prof  string
	cfg   models.Config
	level int // 0 = auto
	gated bool
}{
	{"cluster-2x8", models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}, 0, false},
	{"cluster-4x2x8", models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}, 0, true},
	{"cluster-2x4x2x12", models.Config{Family: "mlp", Depth: 4, Width: 384, Batch: 48}, 2, true},
}

// HybridRecord is one joint-search measurement: the branch-and-bound
// effort counters against the flat one-DP-per-boundary-set enumeration,
// plus a timed oracle run for the recorded wall-clock speedup.
type HybridRecord struct {
	Name          string  `json:"name"`
	Level         int     `json:"level"`
	Stages        int     `json:"stages"`
	NsPerOp       float64 `json:"ns_per_op"`
	Iterations    int     `json:"iterations"`
	OracleNsPerOp float64 `json:"oracle_ns_per_op"`
	DPSolves      int64   `json:"dp_solves"`
	FlatDPSolves  int64   `json:"dp_solves_flat"`
	BoundarySets  int64   `json:"boundary_sets"`
	Expanded      int64   `json:"expanded"`
	Pruned        int64   `json:"pruned"`
	Leaves        int64   `json:"leaves"`
	LBQueries     int64   `json:"lb_queries"`
}

// HybridFile is the BENCH_PR8.json artifact schema.
type HybridFile struct {
	GoOS    string         `json:"go_os"`
	GoArch  string         `json:"go_arch"`
	NumCPU  int            `json:"num_cpu"`
	Records []HybridRecord `json:"records"`
}

// runHybridExperiment measures the joint search on the gate profiles,
// checks the branch-and-bound plan byte-matches the exhaustive oracle, and
// writes the BENCH_PR8.json artifact. Floor violations are returned as an
// error after the artifact is written.
func runHybridExperiment(outPath string) (string, error) {
	out := HybridFile{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	var floors []string
	var sb []byte
	for _, c := range hybridCases {
		tp, err := topo.Profile(c.prof)
		if err != nil {
			return "", err
		}
		m, err := models.Build(c.cfg)
		if err != nil {
			return "", fmt.Errorf("building %s: %w", c.cfg, err)
		}
		k := int64(tp.NumGPUs())
		// Parallelism 1 keeps the expansion schedule — and therefore the
		// recorded counters — deterministic across machines.
		opts := hybrid.Options{Topology: &tp, Level: c.level, Parallelism: 1}
		var st hybrid.Stats
		opts.Stats = &st
		var res *hybrid.Result
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, benchErr = hybrid.Partition(m.G, k, opts)
				if benchErr != nil {
					b.Fatal(benchErr)
				}
			}
		})
		if benchErr != nil {
			return "", fmt.Errorf("%s: %w", c.prof, benchErr)
		}
		oracleStart := time.Now()
		oracle, err := hybrid.Partition(m.G, k, hybrid.Options{
			Topology: &tp, Level: c.level, Parallelism: 1, Exhaustive: true,
		})
		oracleNs := float64(time.Since(oracleStart).Nanoseconds())
		if err != nil {
			return "", fmt.Errorf("%s: oracle: %w", c.prof, err)
		}
		if res.Cost != oracle.Cost || res.Level != oracle.Level {
			return "", fmt.Errorf("%s: branch-and-bound (cost %g, level %d) diverged from oracle (cost %g, level %d)",
				c.prof, res.Cost, res.Level, oracle.Cost, oracle.Level)
		}
		rec := HybridRecord{
			Name:          fmt.Sprintf("hybrid/%s@%d/%s", c.prof, k, c.cfg),
			Level:         res.Level,
			Stages:        len(res.Stages),
			NsPerOp:       float64(r.NsPerOp()),
			Iterations:    r.N,
			OracleNsPerOp: oracleNs,
			DPSolves:      st.DPSolves,
			FlatDPSolves:  st.FlatDPSolves,
			BoundarySets:  st.BoundarySets,
			Expanded:      st.Expanded,
			Pruned:        st.Pruned,
			Leaves:        st.Leaves,
			LBQueries:     st.LBQueries,
		}
		if c.gated && rec.DPSolves*hybridSolveFloor > rec.FlatDPSolves {
			floors = append(floors, fmt.Sprintf(
				"%s: dp solves %d not >=%dx below flat %d",
				rec.Name, rec.DPSolves, hybridSolveFloor, rec.FlatDPSolves))
		}
		out.Records = append(out.Records, rec)
		sb = append(sb, fmt.Sprintf(
			"%-40s level %d, %d stages, %12.0f ns/op (oracle %12.0f), dp %6d vs flat %8d (%.1fx), %d pruned\n",
			rec.Name, rec.Level, rec.Stages, rec.NsPerOp, rec.OracleNsPerOp,
			rec.DPSolves, rec.FlatDPSolves,
			float64(rec.FlatDPSolves)/float64(max(rec.DPSolves, 1)), rec.Pruned)...)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close() //tofu:allow-errdrop the Encode error is being returned; a secondary close failure adds nothing
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	sb = append(sb, fmt.Sprintf("wrote %s\n", outPath)...)
	if len(floors) > 0 {
		for _, fl := range floors {
			fmt.Fprintln(os.Stderr, "FLOOR:", fl)
		}
		return string(sb), fmt.Errorf("%d hybrid search floor violation(s)", len(floors))
	}
	return string(sb), nil
}

// runHybridRows is the bench-json ride-along: the same gate profiles as
// -exp hybrid, recorded as BenchRecord rows (dp_steps = segment-memo
// dp.Solve calls, dp_steps_flat = exhaustive enumeration, search_steps =
// boundary-tree nodes expanded) so BENCH_CI.json floors and the >20%
// regression gates cover the joint search. Floor violations come back as
// regression strings.
func runHybridRows() ([]BenchRecord, []string, error) {
	var rows []BenchRecord
	var regressions []string
	for _, c := range hybridCases {
		tp, err := topo.Profile(c.prof)
		if err != nil {
			return nil, nil, err
		}
		m, err := models.Build(c.cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("building %s: %w", c.cfg, err)
		}
		k := int64(tp.NumGPUs())
		var st hybrid.Stats
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hybrid.Partition(m.G, k, hybrid.Options{
					Topology: &tp, Level: c.level, Parallelism: 1, Stats: &st,
				}); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return nil, nil, fmt.Errorf("%s: %w", c.prof, benchErr)
		}
		rec := BenchRecord{
			Name:        fmt.Sprintf("hybrid/%s@%d/%s", c.prof, k, c.cfg),
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
			DPSteps:     st.DPSolves,
			DPStepsFlat: st.FlatDPSolves,
			SearchSteps: st.Expanded,
		}
		if c.gated && rec.DPSteps*hybridSolveFloor > rec.DPStepsFlat {
			regressions = append(regressions, fmt.Sprintf(
				"%s: dp solves %d not >=%dx below flat %d",
				rec.Name, rec.DPSteps, hybridSolveFloor, rec.DPStepsFlat))
		}
		rows = append(rows, rec)
	}
	return rows, regressions, nil
}
