package main

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tofu/internal/models"
	"tofu/internal/recursive"
	"tofu/internal/service"
	"tofu/internal/store"
	"tofu/internal/topo"
)

// storeRestartSpeedupFloor is the acceptance floor for the persistent plan
// store: after a daemon restart, warm (store-served) throughput must beat
// the cold single-search rate by at least this factor.
const storeRestartSpeedupFloor = 10

// warmStartStepFactor is the acceptance floor for neighbor-seeded search:
// a warm-started branch-and-bound must expand at most half the nodes of a
// cold one on the gated fleet profiles.
const warmStartStepFactor = 2

// ServeStoreResult measures the persistent plan store across a simulated
// daemon restart: replica A computes a plan into a shared store directory
// and dies; replica B boots on the same directory and serves the identical
// bytes from disk — no search — under a closed loop.
type ServeStoreResult struct {
	Model string `json:"model"`

	// ColdMs is replica A's first-request latency (a real search plus the
	// write-through); ColdRPS is the rate that implies for a store-less
	// restart, 1000/ColdMs.
	ColdMs  float64 `json:"cold_ms"`
	ColdRPS float64 `json:"cold_rps"`

	// Replica B's closed loop after the restart: every request is served
	// from the store (first touch) or the LRU it promoted into.
	WarmConcurrency int     `json:"warm_concurrency"`
	WarmDurationSec float64 `json:"warm_duration_sec"`
	WarmRequests    int64   `json:"warm_requests"`
	WarmRPS         float64 `json:"warm_rps"`
	WarmP50Us       float64 `json:"warm_p50_us"`
	WarmP99Us       float64 `json:"warm_p99_us"`

	// Speedup is WarmRPS / ColdRPS — how much the store bought across the
	// restart. StoreServed counts replica B's answers built from store
	// bytes (>= 1, the LRU takes over after promotion); Searches counts
	// replica B's searches (must be 0).
	Speedup     float64 `json:"speedup"`
	StoreServed int64   `json:"store_served"`
	Searches    int64   `json:"searches"`
}

// storeLoadOpts sizes the restart loadtest.
type storeLoadOpts struct {
	model       models.Config
	concurrency int
	duration    time.Duration
	minSpeedup  float64 // 0 disables the floor
}

func defaultStoreLoadOpts(short bool) storeLoadOpts {
	// transformer-2-1024@16 searches in ~75ms — slow enough that
	// re-searching on restart caps a store-less replica at ~13 req/s,
	// which is what the store is buying back — while its ~42KB plan still
	// serves fast warm even on a single-CPU CI box.
	o := storeLoadOpts{
		model:       models.Config{Family: "transformer", Depth: 2, Width: 1024, Batch: 16},
		concurrency: 32,
		duration:    3 * time.Second,
		minSpeedup:  storeRestartSpeedupFloor,
	}
	if short {
		o.duration = time.Second
	}
	return o
}

// runStoreRestartLoadtest boots replica A on a store directory, computes
// one plan cold, kills the replica, boots replica B on the same directory,
// and hammers it warm. dir is typically a fresh temp directory.
func runStoreRestartLoadtest(dir string, o storeLoadOpts) (ServeStoreResult, error) {
	res := ServeStoreResult{Model: o.model.String(), WarmConcurrency: o.concurrency}
	req := service.Request{Model: o.model}
	ctx := context.Background()

	// Replica A: cold fill through the real HTTP stack, then die.
	stA, err := store.Open(dir, store.Options{})
	if err != nil {
		return res, err
	}
	_, clA, stopA, err := startLoadServer(service.Config{SyncWait: 60 * time.Second, Store: stA})
	if err != nil {
		return res, err
	}
	start := time.Now()
	if _, _, err := clA.Partition(ctx, req); err != nil {
		stopA()
		return res, fmt.Errorf("cold request: %w", err)
	}
	res.ColdMs = time.Since(start).Seconds() * 1e3
	res.ColdRPS = 1e3 / res.ColdMs
	stopA()

	// Replica B: fresh process state, same directory.
	stB, err := store.Open(dir, store.Options{})
	if err != nil {
		return res, err
	}
	svcB, clB, stopB, err := startLoadServer(service.Config{SyncWait: 60 * time.Second, Store: stB})
	if err != nil {
		return res, err
	}
	defer stopB()

	var total atomic.Int64
	lats := make([][]time.Duration, o.concurrency)
	loopErrs := make([]error, o.concurrency)
	deadline := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	wg.Add(o.concurrency)
	loopStart := time.Now()
	for w := 0; w < o.concurrency; w++ {
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, _, err := clB.Partition(ctx, req); err != nil {
					loopErrs[w] = err
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
				total.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(loopStart)
	for w, err := range loopErrs {
		if err != nil {
			return res, fmt.Errorf("warm worker %d: %w", w, err)
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.WarmDurationSec = elapsed.Seconds()
	res.WarmRequests = total.Load()
	res.WarmRPS = float64(res.WarmRequests) / elapsed.Seconds()
	if n := len(all); n > 0 {
		res.WarmP50Us = all[n/2].Seconds() * 1e6
		res.WarmP99Us = all[int(float64(n-1)*0.99)].Seconds() * 1e6
	}
	m := svcB.Metrics()
	res.StoreServed = m.StoreServed
	res.Searches = m.JobsDone
	res.Speedup = res.WarmRPS / res.ColdRPS

	if res.StoreServed < 1 {
		return res, fmt.Errorf("restarted replica never served from the store (served %d, searches %d)",
			res.StoreServed, res.Searches)
	}
	if res.Searches != 0 {
		return res, fmt.Errorf("restarted replica ran %d searches; the store should have answered", res.Searches)
	}
	if o.minSpeedup > 0 && res.Speedup < o.minSpeedup {
		return res, fmt.Errorf("restart speedup %.1fx below the %.0fx floor (cold %.1f req/s, warm %.0f req/s)",
			res.Speedup, o.minSpeedup, res.ColdRPS, res.WarmRPS)
	}
	return res, nil
}

// warmStartCases are the fleet profiles the warm-start gate runs on: deep
// 4-level hierarchies where the ordering tree is big enough for a seeded
// incumbent to pay. Both complete in well under a second.
var warmStartCases = []struct {
	prof string
	cfg  models.Config
}{
	{"cluster-2x4x2x12", models.Config{Family: "transformer", Depth: 2, Width: 1536, Batch: 24}},
	{"cluster-2x8x2x8", models.Config{Family: "mlp", Depth: 3, Width: 3072, Batch: 48}},
}

// runWarmStartRows measures cold vs warm-started branch-and-bound on the
// gated fleet profiles. The seed is the profile's own optimum mapped back
// through WarmOrderFromSteps — exactly what the service's neighbor index
// offers once any replica has answered the model. Returned records carry
// the machine-stable Expanded counts (search_steps / search_steps_warm);
// floor violations come back as regression strings.
func runWarmStartRows() ([]BenchRecord, []string, error) {
	var rows []BenchRecord
	var regressions []string
	for _, c := range warmStartCases {
		tp, err := topo.Profile(c.prof)
		if err != nil {
			return nil, nil, err
		}
		m, err := models.Build(c.cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("building %s: %w", c.cfg, err)
		}
		k := int64(tp.NumGPUs())
		// Parallelism 1 keeps the expansion schedule — and therefore the
		// gated step counters — deterministic across machines.
		var cold recursive.SearchStats
		p, err := recursive.Partition(m.G, k, recursive.Options{Topology: &tp, Parallelism: 1, Stats: &cold})
		if err != nil {
			return nil, nil, fmt.Errorf("%s: cold: %w", c.prof, err)
		}
		seed := make([]recursive.WarmStep, len(p.Steps))
		for i, st := range p.Steps {
			seed[i] = recursive.WarmStep{Factor: st.K, Level: st.Level}
		}
		// The warm search runs under testing.Benchmark so the row carries real
		// timed iterations: without ns_per_op and a nonzero iteration count the
		// >20% wall-clock regression gate silently skips these rows. The step
		// counters are deterministic, so reading them after the last iteration
		// loses nothing.
		var warm recursive.SearchStats
		warmSeed := recursive.WarmOrderFromSteps(tp, seed)
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := recursive.Partition(m.G, k, recursive.Options{
					Topology: &tp, Parallelism: 1, Stats: &warm,
					WarmStart: warmSeed,
				}); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return nil, nil, fmt.Errorf("%s: warm: %w", c.prof, benchErr)
		}
		rec := BenchRecord{
			Name:            fmt.Sprintf("warm-start/%s@%d/%s", c.prof, k, c.cfg),
			NsPerOp:         float64(r.NsPerOp()),
			BytesPerOp:      r.AllocedBytesPerOp(),
			AllocsPerOp:     r.AllocsPerOp(),
			Iterations:      r.N,
			SearchSteps:     int64(cold.Expanded),
			SearchStepsWarm: int64(warm.Expanded),
			DPSteps:         int64(warm.DPSolves),
			DPStepsFlat:     int64(warm.FlatDPSolves),
		}
		if !warm.WarmStart {
			regressions = append(regressions, fmt.Sprintf("%s: warm-start seed rejected", rec.Name))
		}
		if rec.SearchStepsWarm*warmStartStepFactor > rec.SearchSteps {
			regressions = append(regressions, fmt.Sprintf(
				"%s: warm start saved <%dx search steps (cold %d, warm %d)",
				rec.Name, warmStartStepFactor, rec.SearchSteps, rec.SearchStepsWarm))
		}
		if int64(warm.DPSolves) > int64(cold.DPSolves) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: warm start ADDED dp steps (cold %d, warm %d)", rec.Name, cold.DPSolves, warm.DPSolves))
		}
		rows = append(rows, rec)
	}
	return rows, regressions, nil
}
