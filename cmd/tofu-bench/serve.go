package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tofu/internal/models"
	"tofu/internal/service"
	"tofu/internal/service/client"
)

// ServeResult is the closed-loop serve loadtest measurement: one cold
// request (a real search), a 64-wide coalescing burst (one search feeds all
// waiters), and a sustained warm-cache closed loop with latency
// percentiles. It rides in BENCH_*.json next to the search benchmarks.
type ServeResult struct {
	Model string `json:"model"`

	// ColdMs is the first-request latency: search plus serving overhead.
	ColdMs float64 `json:"cold_ms"`

	// The coalescing burst: Concurrency identical requests against an
	// empty cache; Searches must be 1.
	CoalescedConcurrency int     `json:"coalesced_concurrency"`
	CoalescedSearches    int64   `json:"coalesced_searches"`
	CoalescedWallMs      float64 `json:"coalesced_wall_ms"`

	// The warm closed loop over HTTP.
	WarmConcurrency int     `json:"warm_concurrency"`
	WarmDurationSec float64 `json:"warm_duration_sec"`
	WarmRequests    int64   `json:"warm_requests"`
	WarmRPS         float64 `json:"warm_rps"`
	WarmP50Us       float64 `json:"warm_p50_us"`
	WarmP99Us       float64 `json:"warm_p99_us"`
}

// ServeFile is the -exp serve artifact schema (BENCH_PR4.json, and with
// -store also the store-restart and warm-start sections of BENCH_PR7.json).
type ServeFile struct {
	GoOS       string            `json:"go_os"`
	GoArch     string            `json:"go_arch"`
	NumCPU     int               `json:"num_cpu"`
	Serve      ServeResult       `json:"serve"`
	ServeStore *ServeStoreResult `json:"serve_store,omitempty"`
	WarmStart  []BenchRecord     `json:"warm_start,omitempty"`
}

// serveFloorRPS is the warm-cache throughput the serving layer must always
// sustain (the PR 4 acceptance floor).
const serveFloorRPS = 500

type serveLoadOpts struct {
	model       models.Config
	concurrency int
	burst       int
	duration    time.Duration
	minRPS      float64 // 0 disables the floor
}

func defaultServeLoadOpts(short bool) serveLoadOpts {
	o := serveLoadOpts{
		model:       models.Config{Family: "mlp", Depth: 4, Width: 512, Batch: 64},
		concurrency: 32,
		burst:       64,
		duration:    3 * time.Second,
		minRPS:      serveFloorRPS,
	}
	if short {
		o.duration = time.Second
	}
	return o
}

// startLoadServer boots a real service on a loopback listener — the same
// stack tofu-serve runs, minus the process boundary.
func startLoadServer(cfg service.Config) (*service.Service, *client.Client, func(), error) {
	svc := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }() //tofu:allow-errdrop Serve returns ErrServerClosed on the loadtest's own Shutdown
	hc := &http.Client{Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}}
	cl := client.NewWith("http://"+ln.Addr().String(), hc)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		//tofu:allow-errdrop best-effort teardown at loadtest exit; a failed drain only delays process exit
		_ = srv.Shutdown(ctx)
		_ = svc.Shutdown(ctx) //tofu:allow-errdrop best-effort teardown at loadtest exit
	}
	return svc, cl, stop, nil
}

// runServeLoadtest measures the serving layer end to end and enforces the
// warm-throughput floor.
func runServeLoadtest(o serveLoadOpts) (ServeResult, error) {
	res := ServeResult{
		Model:                o.model.String(),
		CoalescedConcurrency: o.burst,
		WarmConcurrency:      o.concurrency,
	}
	req := service.Request{Model: o.model}
	ctx := context.Background()

	// Phase 1+3 share a server: cold fill, then the warm closed loop.
	_, cl, stop, err := startLoadServer(service.Config{SyncWait: 60 * time.Second})
	if err != nil {
		return res, err
	}
	defer stop()
	start := time.Now()
	if _, _, err := cl.Partition(ctx, req); err != nil {
		return res, fmt.Errorf("cold request: %w", err)
	}
	res.ColdMs = time.Since(start).Seconds() * 1e3

	// Phase 2: the coalescing burst against a fresh (empty-cache) server.
	burstSvc, burstCl, burstStop, err := startLoadServer(service.Config{SyncWait: 60 * time.Second})
	if err != nil {
		return res, err
	}
	defer burstStop()
	var wg sync.WaitGroup
	wg.Add(o.burst)
	burstStart := time.Now()
	burstErrs := make([]error, o.burst)
	for i := 0; i < o.burst; i++ {
		go func(i int) {
			defer wg.Done()
			_, _, burstErrs[i] = burstCl.Partition(ctx, req)
		}(i)
	}
	wg.Wait()
	res.CoalescedWallMs = time.Since(burstStart).Seconds() * 1e3
	for i, err := range burstErrs {
		if err != nil {
			return res, fmt.Errorf("coalesced request %d: %w", i, err)
		}
	}
	res.CoalescedSearches = burstSvc.Metrics().JobsDone
	if res.CoalescedSearches != 1 {
		return res, fmt.Errorf("coalescing burst ran %d searches, want exactly 1", res.CoalescedSearches)
	}

	// Phase 3: warm-cache closed loop. Every worker hammers the cached
	// digest until the deadline; latencies feed the percentiles.
	var total atomic.Int64
	lats := make([][]time.Duration, o.concurrency)
	deadline := time.Now().Add(o.duration)
	wg.Add(o.concurrency)
	loopStart := time.Now()
	loopErrs := make([]error, o.concurrency)
	for w := 0; w < o.concurrency; w++ {
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, _, err := cl.Partition(ctx, req); err != nil {
					loopErrs[w] = err
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
				total.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(loopStart)
	for w, err := range loopErrs {
		if err != nil {
			return res, fmt.Errorf("warm worker %d: %w", w, err)
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.WarmDurationSec = elapsed.Seconds()
	res.WarmRequests = total.Load()
	res.WarmRPS = float64(res.WarmRequests) / elapsed.Seconds()
	if n := len(all); n > 0 {
		res.WarmP50Us = all[n/2].Seconds() * 1e6
		res.WarmP99Us = all[int(float64(n-1)*0.99)].Seconds() * 1e6
	}
	if o.minRPS > 0 && res.WarmRPS < o.minRPS {
		return res, fmt.Errorf("warm-cache throughput %.0f req/s below the %.0f req/s floor", res.WarmRPS, o.minRPS)
	}
	return res, nil
}

// runServeExperiment is tofu-bench -exp serve: run the loadtest at full
// scale and record the artifact (BENCH_PR4.json by default). With a store
// directory it additionally runs the restart loadtest — replica A fills the
// store and dies, replica B serves warm from disk — and the warm-start
// search rows, enforcing the 10x restart-speedup and 2x step floors.
func runServeExperiment(outPath, storeDir string) (string, error) {
	res, err := runServeLoadtest(defaultServeLoadOpts(false))
	if err != nil {
		return "", err
	}
	out := ServeFile{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, NumCPU: runtime.NumCPU(), Serve: res}
	summary := fmt.Sprintf(`Serve loadtest (%s)
  cold request:          %8.1f ms   (one real search + serving overhead)
  coalesced burst:       %8.1f ms   (%d concurrent identical requests, %d search)
  warm closed loop:      %8.0f req/s sustained over %.1fs x %d clients
  warm latency:          p50 %.0f us, p99 %.0f us  (%d requests)`,
		res.Model, res.ColdMs, res.CoalescedWallMs, res.CoalescedConcurrency, res.CoalescedSearches,
		res.WarmRPS, res.WarmDurationSec, res.WarmConcurrency,
		res.WarmP50Us, res.WarmP99Us, res.WarmRequests)

	if storeDir != "" {
		st, err := runStoreRestartLoadtest(storeDir, defaultStoreLoadOpts(false))
		if err != nil {
			return "", fmt.Errorf("store restart: %w", err)
		}
		out.ServeStore = &st
		summary += fmt.Sprintf(`
Store restart (%s, dir %s)
  replica A cold:        %8.1f ms   -> %.1f req/s without a store
  replica B warm:        %8.0f req/s from the shared store (%d store-served, %d searches)
  restart speedup:       %8.1fx     (floor %dx)`,
			st.Model, storeDir, st.ColdMs, st.ColdRPS,
			st.WarmRPS, st.StoreServed, st.Searches, st.Speedup, int64(storeRestartSpeedupFloor))

		rows, regr, err := runWarmStartRows()
		if err != nil {
			return "", err
		}
		if len(regr) > 0 {
			return "", fmt.Errorf("warm-start floors: %v", regr)
		}
		out.WarmStart = rows
		for _, rec := range rows {
			summary += fmt.Sprintf(`
Warm start (%s)
  cold search steps:     %8d
  warm search steps:     %8d     (%.2fx fewer, floor %dx; dp steps %d, flat %d)`,
				rec.Name, rec.SearchSteps, rec.SearchStepsWarm,
				float64(rec.SearchSteps)/float64(rec.SearchStepsWarm),
				int64(warmStartStepFactor), rec.DPSteps, rec.DPStepsFlat)
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close() //tofu:allow-errdrop the Encode error is being returned; a secondary close failure adds nothing
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return summary + "\nwrote " + outPath, nil
}
