package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tofu/internal/models"
	"tofu/internal/recursive"
	"tofu/internal/topo"
)

// regressionThreshold is the allowed growth of ns/op and allocs/op over the
// committed baseline before the gate fails (20%).
const regressionThreshold = 1.20

// BenchRecord is one benchmark measurement, with the baseline comparison
// filled in when a baseline file was supplied.
type BenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`

	// TotalAllocBytes is the runtime.MemStats.TotalAlloc delta across the
	// whole measured run and HeapSysBytes the heap footprint the runtime
	// held afterwards — footprint context for the per-op numbers above.
	// Both depend on the iteration count the framework chose, so they are
	// recorded, never gated.
	TotalAllocBytes int64 `json:"total_alloc_bytes,omitempty"`
	HeapSysBytes    int64 `json:"heap_sys_bytes,omitempty"`

	// DPSteps/DPStepsFlat record the topology search's effort (search-topo/*
	// benchmarks): DP step executions of the branch-and-bound prefix tree vs
	// the flat enumeration's orderings × depth. FlatNsPerOp is one measured
	// flat-enumeration search for the wall-clock speedup.
	DPSteps     int64   `json:"dp_steps,omitempty"`
	DPStepsFlat int64   `json:"dp_steps_flat,omitempty"`
	FlatNsPerOp float64 `json:"flat_ns_per_op,omitempty"`

	// SearchSteps/SearchStepsWarm record a warm-start row (warm-start/*):
	// branch-and-bound nodes expanded by a cold search vs one seeded with
	// the neighbor index's ordering. Machine-stable, gated like dp_steps.
	SearchSteps     int64 `json:"search_steps,omitempty"`
	SearchStepsWarm int64 `json:"search_steps_warm,omitempty"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp int64   `json:"baseline_allocs_per_op,omitempty"`
	BaselineDPSteps     int64   `json:"baseline_dp_steps,omitempty"`
	BaselineStepsWarm   int64   `json:"baseline_search_steps_warm,omitempty"`
	NsRatio             float64 `json:"ns_ratio,omitempty"`
	AllocsRatio         float64 `json:"allocs_ratio,omitempty"`
}

// BenchFile is the BENCH_*.json artifact schema.
type BenchFile struct {
	GoOS       string        `json:"go_os"`
	GoArch     string        `json:"go_arch"`
	NumCPU     int           `json:"num_cpu"`
	Short      bool          `json:"short,omitempty"`
	Benchmarks []BenchRecord `json:"benchmarks"`
	// Serve carries the serve-layer loadtest next to the search numbers,
	// so one baseline file gates both. ServeStore is the persistent-store
	// restart loadtest (cold search vs store-served warm across replicas).
	Serve      *ServeResult      `json:"serve,omitempty"`
	ServeStore *ServeStoreResult `json:"serve_store,omitempty"`
}

// runSearchBenchmarks measures recursive.Partition on the benchmark
// configs, writes the JSON artifact, and (optionally) gates against a
// committed baseline.
func runSearchBenchmarks(outPath string, short bool, baselinePath string) error {
	cfgs := []models.Config{
		{Family: "wresnet", Depth: 152, Width: 10, Batch: 8},
		{Family: "rnn", Depth: 10, Width: 8192, Batch: 128},
	}
	if short {
		cfgs = []models.Config{
			{Family: "mlp", Depth: 4, Width: 512, Batch: 64},
			{Family: "rnn", Depth: 2, Width: 1024, Batch: 64},
			{Family: "wresnet", Depth: 50, Width: 2, Batch: 8},
		}
	}

	out := BenchFile{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, NumCPU: runtime.NumCPU(), Short: short}
	var regressions []string
	for _, cfg := range cfgs {
		m, err := models.Build(cfg)
		if err != nil {
			return fmt.Errorf("building %s: %w", cfg, err)
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := recursive.Partition(m.G, 8, recursive.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		runtime.ReadMemStats(&ms1)
		rec := BenchRecord{
			Name:            "search/" + cfg.String(),
			NsPerOp:         float64(r.NsPerOp()),
			BytesPerOp:      r.AllocedBytesPerOp(),
			AllocsPerOp:     r.AllocsPerOp(),
			Iterations:      r.N,
			TotalAllocBytes: int64(ms1.TotalAlloc - ms0.TotalAlloc),
			HeapSysBytes:    int64(ms1.HeapSys),
		}
		fmt.Printf("%-28s %14.0f ns/op %12d B/op %10d allocs/op (%d iters)\n",
			rec.Name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp, rec.Iterations)
		out.Benchmarks = append(out.Benchmarks, rec)
	}

	// The topology-aware ordering search rides along: branch-and-bound wall
	// time and DP-step counts (machine-stable, gated like allocs/op), plus
	// one timed flat-enumeration search for the recorded speedup.
	topoCases := []struct {
		prof string
		cfg  models.Config
	}{
		{"cluster-4x2x8", models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 128}},
		{"cluster-8x2x8", models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 256}},
	}
	if short {
		topoCases = []struct {
			prof string
			cfg  models.Config
		}{
			{"cluster-2x8", models.Config{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}},
			{"cluster-4x2x8", models.Config{Family: "mlp", Depth: 3, Width: 2048, Batch: 128}},
		}
	}
	for _, tc := range topoCases {
		tp, err := topo.Profile(tc.prof)
		if err != nil {
			return err
		}
		m, err := models.Build(tc.cfg)
		if err != nil {
			return fmt.Errorf("building %s: %w", tc.cfg, err)
		}
		k := int64(tp.NumGPUs())
		// Parallelism 1 keeps the expansion schedule — and therefore the
		// gated DPSteps counter — deterministic across machines (the plan is
		// byte-identical at any setting; only the node counters can drift).
		var st recursive.SearchStats
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := recursive.Partition(m.G, k, recursive.Options{Topology: &tp, Parallelism: 1, Stats: &st}); err != nil {
					b.Fatal(err)
				}
			}
		})
		runtime.ReadMemStats(&ms1)
		flatStart := time.Now()
		if _, err := recursive.Partition(m.G, k, recursive.Options{Topology: &tp, Parallelism: 1, TopoExhaustive: true}); err != nil {
			return fmt.Errorf("flat enumeration on %s: %w", tc.prof, err)
		}
		flatNs := float64(time.Since(flatStart).Nanoseconds())
		rec := BenchRecord{
			// The model rides in the name (like search/*): short and full
			// modes measure different workloads and must never share a
			// baseline row.
			Name:            fmt.Sprintf("search-topo/%s@%d/%s", tc.prof, k, tc.cfg),
			NsPerOp:         float64(r.NsPerOp()),
			BytesPerOp:      r.AllocedBytesPerOp(),
			AllocsPerOp:     r.AllocsPerOp(),
			Iterations:      r.N,
			TotalAllocBytes: int64(ms1.TotalAlloc - ms0.TotalAlloc),
			HeapSysBytes:    int64(ms1.HeapSys),
			DPSteps:         int64(st.DPSolves),
			DPStepsFlat:     int64(st.FlatDPSolves),
			FlatNsPerOp:     flatNs,
		}
		fmt.Printf("%-28s %14.0f ns/op %12d B/op %10d allocs/op (dp %d vs flat %d, flat search %.0f ns)\n",
			rec.Name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp, rec.DPSteps, rec.DPStepsFlat, rec.FlatNsPerOp)
		// Acceptance floor on the large clusters: the prefix-shared tree
		// must run at least 5x fewer DP steps than the flat enumeration.
		if tp.NumGPUs() >= 64 && rec.DPSteps*5 > rec.DPStepsFlat {
			regressions = append(regressions, fmt.Sprintf(
				"%s: dp steps %d not >=5x below flat %d", rec.Name, rec.DPSteps, rec.DPStepsFlat))
		}
		out.Benchmarks = append(out.Benchmarks, rec)
	}

	// The warm-start rows ride along in both modes (each case runs in well
	// under a second): cold vs neighbor-seeded search steps on the gated
	// fleet profiles, floored at 2x in runWarmStartRows itself.
	warmRows, warmRegr, err := runWarmStartRows()
	if err != nil {
		return fmt.Errorf("warm-start rows: %w", err)
	}
	regressions = append(regressions, warmRegr...)
	for _, rec := range warmRows {
		fmt.Printf("%-28s %14d cold steps %8d warm steps (%.2fx fewer, dp %d vs flat %d)\n",
			rec.Name, rec.SearchSteps, rec.SearchStepsWarm,
			float64(rec.SearchSteps)/float64(rec.SearchStepsWarm), rec.DPSteps, rec.DPStepsFlat)
	}
	out.Benchmarks = append(out.Benchmarks, warmRows...)

	// The joint hybrid-parallelism rows ride along in both modes (each gate
	// profile completes in about a second): segment-memo dp.Solve counts vs
	// the flat boundary enumeration, floored at 10x in runHybridRows itself.
	hybridRows, hybridRegr, err := runHybridRows()
	if err != nil {
		return fmt.Errorf("hybrid rows: %w", err)
	}
	regressions = append(regressions, hybridRegr...)
	for _, rec := range hybridRows {
		fmt.Printf("%-28s %14.0f ns/op %12d B/op %10d allocs/op (dp %d vs flat %d, %.1fx)\n",
			rec.Name, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp,
			rec.DPSteps, rec.DPStepsFlat, float64(rec.DPStepsFlat)/float64(max(rec.DPSteps, 1)))
	}
	out.Benchmarks = append(out.Benchmarks, hybridRows...)

	// The serve loadtest rides along. The throughput floor is enforced via
	// the regression list below — after the artifact is written — so a slow
	// run never discards the search measurements; only genuine failures
	// (coalescing broken, request errors) abort here.
	serveOpts := defaultServeLoadOpts(short)
	serveOpts.minRPS = 0
	serve, err := runServeLoadtest(serveOpts)
	if err != nil {
		return fmt.Errorf("serve loadtest: %w", err)
	}
	out.Serve = &serve
	fmt.Printf("%-28s %14.0f req/s warm %8.0f us p50 %8.0f us p99 (cold %.0f ms)\n",
		"serve/"+serve.Model, serve.WarmRPS, serve.WarmP50Us, serve.WarmP99Us, serve.ColdMs)

	if serve.WarmRPS < serveFloorRPS {
		regressions = append(regressions, fmt.Sprintf(
			"serve/%s: warm throughput %.0f req/s below the %d req/s floor",
			serve.Model, serve.WarmRPS, int64(serveFloorRPS)))
	}

	// The store-restart loadtest rides along the same way: its own floors
	// (store answered, zero searches, 10x speedup) are enforced inside the
	// run, surfaced here as regressions so the artifact still gets written.
	storeOpts := defaultStoreLoadOpts(short)
	storeDir, err := os.MkdirTemp("", "tofu-bench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	serveStore, err := runStoreRestartLoadtest(storeDir, storeOpts)
	out.ServeStore = &serveStore
	if err != nil {
		regressions = append(regressions, fmt.Sprintf("serve-store/%s: %v", serveStore.Model, err))
	} else {
		fmt.Printf("%-28s %14.0f req/s warm %8.1fx speedup over cold %.1f req/s (restart, %d store-served)\n",
			"serve-store/"+serveStore.Model, serveStore.WarmRPS, serveStore.Speedup,
			serveStore.ColdRPS, serveStore.StoreServed)
	}
	if baselinePath != "" {
		base, err := readBenchFile(baselinePath)
		if err != nil {
			return err
		}
		// ns/op is wall-clock: only gate it when the baseline was recorded
		// on matching hardware. allocs/op is machine-stable and always
		// gated.
		gateNs := base.GoOS == out.GoOS && base.GoArch == out.GoArch && base.NumCPU == out.NumCPU
		if !gateNs {
			fmt.Fprintf(os.Stderr,
				"note: baseline %s was recorded on %s/%s with %d CPUs (this host: %s/%s, %d); gating allocs/op only\n",
				baselinePath, base.GoOS, base.GoArch, base.NumCPU, out.GoOS, out.GoArch, out.NumCPU)
		}
		byName := map[string]BenchRecord{}
		for _, b := range base.Benchmarks {
			byName[b.Name] = b
		}
		for i := range out.Benchmarks {
			rec := &out.Benchmarks[i]
			b, ok := byName[rec.Name]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("%s: missing from baseline %s", rec.Name, baselinePath))
				continue
			}
			rec.BaselineNsPerOp = b.NsPerOp
			rec.BaselineAllocsPerOp = b.AllocsPerOp
			if b.NsPerOp > 0 {
				rec.NsRatio = rec.NsPerOp / b.NsPerOp
			}
			if b.AllocsPerOp > 0 {
				rec.AllocsRatio = float64(rec.AllocsPerOp) / float64(b.AllocsPerOp)
			}
			if gateNs && rec.NsRatio > regressionThreshold {
				regressions = append(regressions, fmt.Sprintf(
					"%s: ns/op regressed %.2fx (%.0f -> %.0f)", rec.Name, rec.NsRatio, b.NsPerOp, rec.NsPerOp))
			}
			if rec.AllocsRatio > regressionThreshold {
				regressions = append(regressions, fmt.Sprintf(
					"%s: allocs/op regressed %.2fx (%d -> %d)", rec.Name, rec.AllocsRatio, b.AllocsPerOp, rec.AllocsPerOp))
			}
			// DP steps are machine-stable like allocs: gate against growth.
			if b.DPSteps > 0 && rec.DPSteps > 0 {
				rec.BaselineDPSteps = b.DPSteps
				if float64(rec.DPSteps) > float64(b.DPSteps)*regressionThreshold {
					regressions = append(regressions, fmt.Sprintf(
						"%s: dp steps regressed (%d -> %d)", rec.Name, b.DPSteps, rec.DPSteps))
				}
			}
			// Warm-started search steps likewise: a growing count means the
			// seed stopped pruning.
			if b.SearchStepsWarm > 0 && rec.SearchStepsWarm > 0 {
				rec.BaselineStepsWarm = b.SearchStepsWarm
				if float64(rec.SearchStepsWarm) > float64(b.SearchStepsWarm)*regressionThreshold {
					regressions = append(regressions, fmt.Sprintf(
						"%s: warm-started search steps regressed (%d -> %d)",
						rec.Name, b.SearchStepsWarm, rec.SearchStepsWarm))
				}
			}
		}
		// Warm-cache serve throughput is wall-clock like ns/op: gate it only
		// against a baseline recorded on matching hardware.
		if gateNs && base.Serve != nil && base.Serve.WarmRPS > 0 {
			if ratio := base.Serve.WarmRPS / serve.WarmRPS; ratio > regressionThreshold {
				regressions = append(regressions, fmt.Sprintf(
					"serve/%s: warm req/s regressed %.2fx (%.0f -> %.0f)",
					serve.Model, ratio, base.Serve.WarmRPS, serve.WarmRPS))
			}
		}
		// Same for the store-restart loop's warm throughput.
		if gateNs && base.ServeStore != nil && base.ServeStore.WarmRPS > 0 && serveStore.WarmRPS > 0 {
			if ratio := base.ServeStore.WarmRPS / serveStore.WarmRPS; ratio > regressionThreshold {
				regressions = append(regressions, fmt.Sprintf(
					"serve-store/%s: warm req/s regressed %.2fx (%.0f -> %.0f)",
					serveStore.Model, ratio, base.ServeStore.WarmRPS, serveStore.WarmRPS))
			}
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close() //tofu:allow-errdrop the Encode error is being returned; a secondary close failure adds nothing
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark regression(s) above %.0f%%",
			len(regressions), (regressionThreshold-1)*100)
	}
	return nil
}

func readBenchFile(path string) (BenchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return BenchFile{}, err
	}
	defer f.Close()
	var b BenchFile
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return BenchFile{}, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return b, nil
}
