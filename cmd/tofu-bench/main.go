// Command tofu-bench regenerates the paper's evaluation artifacts (Tables
// 1-3, Figures 8-11, ablations) on the simulated 8-GPU machine, and runs
// the partition-search regression benchmarks.
//
// Usage:
//
//	tofu-bench [-exp all|table1|table2|table3|fig8|fig9|fig10|fig11|ablations|crosstopo|orderings]
//	           [-quick] [-flat-budget 20s] [-parallel N]
//	           [-cpuprofile cpu.out] [-memprofile mem.out]
//	           [-hw <profile>|machine.json]
//
//	tofu-bench -exp serve [-serve-json BENCH_PR4.json] [-store DIR]
//
//	tofu-bench -exp hybrid [-hybrid-json BENCH_PR8.json] [-quick]
//
//	tofu-bench -bench-json BENCH.json [-bench-short] [-bench-baseline BENCH_CI.json]
//
// -exp serve is the closed-loop load generator for the tofu-serve layer: a
// cold request, a 64-wide coalescing burst, and a sustained warm-cache loop
// with latency percentiles, recorded to -serve-json. It fails if warm
// throughput drops below 500 req/s.
//
// The -bench-json form measures the recursive partition search (ns/op,
// bytes/op, allocs/op) plus a short serve loadtest and records the numbers
// as a JSON artifact. With -bench-baseline it compares against a committed
// baseline file and exits non-zero on a >20% ns/op, allocs/op or warm-rps
// regression — the CI gate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"tofu/internal/experiments"
	"tofu/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	quick := flag.Bool("quick", false, "trimmed sweeps for a fast look")
	budget := flag.Duration("flat-budget", 20*time.Second,
		"wall-clock budget for the non-recursive DP measurement (Table 1)")
	parallel := flag.Int("parallel", 0,
		"worker goroutines for experiment cells and DP search (0 = GOMAXPROCS, 1 = serial); artifacts are identical either way")
	hwArg := flag.String("hw", "p2.8xlarge",
		"hardware profile name or topology JSON file (see tofu.TopologyProfiles)")
	benchJSON := flag.String("bench-json", "",
		"run the partition-search benchmarks and write ns/op + allocs/op to this JSON file")
	benchShort := flag.Bool("bench-short", false,
		"benchmark the small config set (CI); default is the paper-scale set")
	benchBaseline := flag.String("bench-baseline", "",
		"compare the benchmark run against this baseline JSON; exit non-zero on >20% ns/op or allocs/op regression")
	serveJSON := flag.String("serve-json", "BENCH_PR4.json",
		"where -exp serve records the loadtest numbers")
	hybridJSON := flag.String("hybrid-json", "BENCH_PR8.json",
		"where -exp hybrid records the joint-search effort counters and wall times")
	serveStore := flag.String("store", "",
		"plan store directory for -exp serve: adds the restart loadtest (replica A fills, dies; replica B serves warm) and the warm-start search rows")
	cpuProfile := flag.String("cpuprofile", "",
		"write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "",
		"write a pprof heap profile (after a final GC) to this file at exit")
	flag.Parse()

	// stopProfile is idempotent and runs on every exit path: the fatal
	// helpers below call it before os.Exit, so a failing (e.g. regressing)
	// run — exactly the one worth profiling — still writes a valid profile.
	stopProfile := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		var once sync.Once
		stopProfile = func() {
			once.Do(func() {
				pprof.StopCPUProfile()
				if err := f.Close(); err != nil {
					log.Print(err)
				}
			})
		}
		defer stopProfile()
	}
	// The heap profile follows the same idempotent every-exit-path pattern:
	// a regressing run still leaves a profile to diagnose.
	writeHeapProfile := func() {}
	if *memProfile != "" {
		var once sync.Once
		writeHeapProfile = func() {
			once.Do(func() {
				f, err := os.Create(*memProfile)
				if err != nil {
					log.Print(err)
					return
				}
				runtime.GC() // count only live heap, as `go test -memprofile` does
				if err := pprof.WriteHeapProfile(f); err != nil {
					log.Print(err)
				}
				if err := f.Close(); err != nil {
					log.Print(err)
				}
			})
		}
		defer writeHeapProfile()
	}
	fatal := func(v ...any) {
		writeHeapProfile()
		stopProfile()
		log.Fatal(v...)
	}
	fatalf := func(format string, args ...any) {
		writeHeapProfile()
		stopProfile()
		log.Fatalf(format, args...)
	}

	if *benchJSON != "" {
		if err := runSearchBenchmarks(*benchJSON, *benchShort, *benchBaseline); err != nil {
			fatal(err)
		}
		return
	}

	if *exp == "serve" {
		out, err := runServeExperiment(*serveJSON, *serveStore)
		if err != nil {
			fatalf("serve: %v", err)
		}
		fmt.Println(out)
		return
	}

	if *exp == "hybrid" {
		out, err := runHybridExperiment(*hybridJSON)
		fmt.Print(out)
		if err != nil {
			fatalf("hybrid: %v", err)
		}
		hopts := experiments.Opts{Quick: *quick, FlatBudget: *budget, Parallelism: *parallel}
		htopo, err := sim.ResolveTopology(*hwArg)
		if err != nil {
			fatal(err)
		}
		table, err := experiments.Hybrid(hopts, htopo)
		if err != nil {
			fatalf("hybrid: %v", err)
		}
		fmt.Println(table)
		return
	}

	opts := experiments.Opts{Quick: *quick, FlatBudget: *budget, Parallelism: *parallel}
	topo, err := sim.ResolveTopology(*hwArg)
	if err != nil {
		fatal(err)
	}

	type driver struct {
		name string
		run  func() (string, error)
	}
	drivers := []driver{
		{"table1", func() (string, error) { return experiments.Table1(opts, topo) }},
		{"table2", func() (string, error) { return experiments.Table2(opts) }},
		{"table3", func() (string, error) { return experiments.Table3(opts, topo) }},
		{"fig8", func() (string, error) { return experiments.Figure8(opts, topo) }},
		{"fig9", func() (string, error) { return experiments.Figure9(opts, topo) }},
		{"fig10", func() (string, error) { return experiments.Figure10(opts, topo) }},
		{"fig11", func() (string, error) { return experiments.Figure11(opts) }},
		{"ablations", func() (string, error) { return experiments.Ablations(opts, topo) }},
		{"crosstopo", func() (string, error) { return experiments.CrossTopology(opts, topo) }},
		{"orderings", func() (string, error) { return experiments.Orderings(opts, topo) }},
	}

	ran := false
	for _, d := range drivers {
		if *exp != "all" && *exp != d.name {
			continue
		}
		ran = true
		start := time.Now()
		out, err := d.run()
		if err != nil {
			fatalf("%s: %v", d.name, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", d.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
