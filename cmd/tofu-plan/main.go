// Command tofu-plan searches for and prints the partition plan of a
// benchmark model — the machine-readable version of the paper's Figure 11.
//
// Usage:
//
//	tofu-plan [-family wresnet|rnn|mlp] [-depth 152] [-width 10]
//	          [-batch 8] [-workers 8] [-parallel N]
//	          [-search-deadline D] [-model-json config.json|-]
//	          [-hw <profile>|machine.json]   (profiles: p2.8xlarge, dgx1, dgx2,
//	           cluster-2x8, cluster-4x2x8, cluster-4x2x12, cluster-8x2x8)
//
// -model-json reads the model config from a JSON file (or stdin with "-")
// in the same canonical form tofu-serve accepts, so a CLI run and a service
// request are interchangeable; it overrides -family/-depth/-width/-batch.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tofu"
)

func main() {
	family := flag.String("family", "wresnet", "model family: wresnet|rnn|mlp|transformer")
	depth := flag.Int("depth", 152, "wresnet depth / rnn layers / mlp layers")
	width := flag.Int64("width", 10, "wresnet widening / rnn hidden / mlp dim")
	batch := flag.Int64("batch", 8, "global batch size")
	workers := flag.Int64("workers", 8, "number of GPUs")
	jsonOut := flag.String("json", "", "also write the plan (digest embedded) as JSON to this file")
	modelJSON := flag.String("model-json", "",
		"read the model config from this canonical JSON file (- for stdin); overrides -family/-depth/-width/-batch")
	parallel := flag.Int("parallel", 0,
		"DP search worker goroutines (0 = GOMAXPROCS, 1 = serial); the plan is identical either way")
	hwArg := flag.String("hw", "",
		"hardware profile name or topology JSON file; overrides -workers with the machine's GPU count "+
			"and makes the search topology-aware on hierarchical machines")
	pipeline := flag.Bool("pipeline", false,
		"joint hybrid-parallelism search: pipeline stages across a slow interconnect level with the "+
			"partition DP inside each stage (requires a hierarchical -hw)")
	pipelineLevel := flag.Int("pipeline-level", 0,
		"interconnect level the pipeline stages straddle (0 = search all levels); implies -pipeline when set")
	microBatches := flag.Int("micro-batches", 0,
		"micro-batch count for pipelined simulation (0 = one per stage when the batch divides); "+
			"never changes the chosen plan")
	searchDeadline := flag.Duration("search-deadline", 0,
		"wall-clock budget for the search; on expiry the best incumbent found so far is "+
			"printed marked DEGRADED (0 = unbounded, the proven optimum)")
	traceOut := flag.String("trace", "",
		"record the search span tree and simulated execution timeline: a file path gets Chrome "+
			"trace_event JSON (load in chrome://tracing or Perfetto), '-' prints human-readable text; "+
			"the chosen plan is byte-identical with tracing on or off")
	flag.Parse()

	cfg := tofu.ModelConfig{Family: *family, Depth: *depth, Width: *width, Batch: *batch}
	if *modelJSON != "" {
		var err error
		cfg, err = tofu.ReadModelConfig(*modelJSON)
		if err != nil {
			log.Fatal(err)
		}
	}
	m, err := tofu.BuildModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	popts := tofu.DefaultPipelineOptions()
	popts.Search.Parallelism = *parallel
	if *hwArg != "" {
		topo, err := tofu.ResolveTopology(*hwArg)
		if err != nil {
			log.Fatal(err)
		}
		popts.Topology = &topo
		*workers = int64(topo.NumGPUs())
	}
	if *pipeline || *pipelineLevel > 0 {
		popts.Pipeline = &tofu.PipelineSpec{Level: *pipelineLevel, MicroBatches: *microBatches}
	}
	var root *tofu.TraceSpan
	var timeline *tofu.Timeline
	if *traceOut != "" {
		root = tofu.NewTraceSpan("tofu-plan")
		timeline = tofu.NewTimeline()
		popts.Trace = root
	}
	if *searchDeadline > 0 {
		token, stop := tofu.SearchDeadline(*searchDeadline)
		defer stop()
		popts.Cancel = token
	}
	s, err := tofu.PartitionWithOptions(m.G, *workers, popts)
	if err != nil {
		log.Fatal(err)
	}
	digest, err := tofu.PlanDigest(cfg, *workers, popts)
	if err != nil {
		log.Fatal(err)
	}
	s.Plan.Digest = digest
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Plan.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan written to %s\n", *jsonOut)
	}

	fmt.Printf("model %s: %d operators, %d tensors\n", m.Name, len(m.G.Nodes), len(m.G.Tensors))
	fmt.Printf("request digest: %s\n", digest)
	fmt.Printf("coarsened: %d groups, %d variables, frontier width %d\n",
		s.Groups, s.Vars, s.Frontier)
	fmt.Printf("search time: %v\n", s.SearchTime)
	if s.Degraded {
		fmt.Printf("DEGRADED: the %v budget expired; this is the best incumbent found, not the proven optimum\n",
			*searchDeadline)
	}
	if st := s.Search; st.Orderings > 0 {
		fmt.Printf("ordering search: %d orderings (%d costed, %d tree nodes expanded, %d pruned)\n",
			st.Orderings, st.Leaves, st.Expanded, st.Pruned)
		fmt.Printf("  dp steps: %d shared+pruned vs %d flat enumeration (%.1fx less), %d bound queries\n",
			st.DPSolves, st.FlatDPSolves, float64(st.FlatDPSolves)/float64(max(st.DPSolves, 1)), st.LBQueries)
	}
	if h := s.Hybrid; h != nil {
		st := h.Stats
		fmt.Printf("hybrid search: level %d, %d stages of %d workers (%d boundary sets, %d costed, %d pruned)\n",
			h.Level, len(h.Stages), h.Stages[0].Workers, st.BoundarySets, st.Leaves, st.Pruned)
		fmt.Printf("  dp solves: %d memoized+pruned vs %d flat enumeration (%.1fx less), %d bound queries\n",
			st.DPSolves, st.FlatDPSolves,
			float64(st.FlatDPSolves)/float64(max(st.DPSolves, 1)), st.LBQueries)
		for i, stg := range h.Stages {
			fmt.Printf("  stage %d: groups [%d,%d), %d steps, hand-off %.2f MB\n",
				i, stg.Groups[0], stg.Groups[1], len(stg.Plan.Steps), stg.HandoffBytes/(1<<20))
		}
	}
	fmt.Printf("plan: %d recursive steps, total communication %.2f GB/iteration\n",
		len(s.Plan.Steps), s.Plan.TotalComm()/(1<<30))
	for i, st := range s.Plan.Steps {
		fmt.Printf("  step %d: %d-way, delta=%.2f GB (states=%d, configs=%d)\n",
			i+1, st.K, st.Delta()/(1<<30), st.States, st.Configs)
	}
	fmt.Printf("per-GPU memory: %.2f GB (persistent %.2f, transient %.2f, comm buffers %.2f)\n",
		f(s.Memory.PeakBytes), f(s.Memory.PersistentBytes),
		f(s.Memory.TransientPeak), f(s.Memory.CommBufferPeak))

	fmt.Println("\nweight tensor tilings:")
	for _, w := range m.G.Weights() {
		if w.Shape.Elems() < 1<<16 {
			continue // skip biases and batch-norm scales
		}
		fmt.Printf("  %-16s %-18s %s\n", w.Name, w.Shape, s.Plan.CutSummary(w.ID))
	}

	res := tofu.SimulateTraced(s, m.Batch, popts, timeline)
	fmt.Printf("\nsimulated: %.3f s/iteration, %.1f samples/s, OOM=%v\n",
		res.IterSeconds, res.Throughput, res.OOM)

	if root != nil {
		root.End()
		if err := writeTrace(*traceOut, root, timeline); err != nil {
			log.Fatal(err)
		}
	}
}

// writeTrace exports the recorded trace: human-readable text on "-",
// Chrome trace_event JSON to any other path.
func writeTrace(dest string, root *tofu.TraceSpan, tl *tofu.Timeline) error {
	if dest == "-" {
		fmt.Println("\nsearch span tree:")
		fmt.Print(tofu.SpanTree(root))
		fmt.Println("\nsimulated execution timeline:")
		fmt.Print(tofu.TimelineSummary(tl))
		return nil
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := tofu.WriteChromeTrace(f, root, tl); err != nil {
		f.Close() //tofu:allow-errdrop the write error is being returned; a secondary close failure adds nothing
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace written to %s\n", dest)
	return nil
}

func f(b int64) float64 { return float64(b) / (1 << 30) }
