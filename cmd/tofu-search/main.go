// Command tofu-search reproduces Table 1: the time to find the best
// partition for 8 workers with and without the recursion that makes Tofu's
// search practical.
//
// Usage:
//
//	tofu-search [-flat-budget 20s] [-quick] [-parallel N]
//	            [-search-deadline D] [-model-json config.json|-]
//	            [-hw <profile>|machine.json]
//
// -model-json replaces the paper's model pair with the config from a JSON
// file (or stdin with "-") — the same canonical ModelConfig document
// tofu-plan and tofu-serve accept.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tofu/internal/core"
	"tofu/internal/experiments"
	"tofu/internal/models"
	"tofu/internal/obs"
	"tofu/internal/sim"
)

func main() {
	budget := flag.Duration("flat-budget", 20*time.Second,
		"wall-clock budget for the non-recursive DP before extrapolating")
	quick := flag.Bool("quick", false, "small models for a fast look")
	parallel := flag.Int("parallel", 0,
		"DP search worker goroutines (0 = GOMAXPROCS, 1 = serial); the plan is identical either way")
	modelJSON := flag.String("model-json", "",
		"measure the model from this canonical config JSON file (- for stdin) instead of the paper pair")
	hwArg := flag.String("hw", "p2.8xlarge",
		"hardware profile name or topology JSON file (see tofu.TopologyProfiles)")
	pipeline := flag.Bool("pipeline", false,
		"also run the joint hybrid-parallelism benchmark: pipeline stages x partition DP "+
			"against tensor-only search on the hierarchical cluster profiles")
	searchDeadline := flag.Duration("search-deadline", 0,
		"wall-clock budget per recursive search; deadline-stopped searches report their "+
			"incumbent and their timing cell is starred (0 = unbounded)")
	trace := flag.Bool("trace", false,
		"first print the span tree of one representative traced search (the measured model, "+
			"or a small MLP) — where the search's time goes, subsystem by subsystem")
	flag.Parse()

	topo, err := sim.ResolveTopology(*hwArg)
	if err != nil {
		log.Fatal(err)
	}
	opts := experiments.Opts{Quick: *quick, FlatBudget: *budget, Parallelism: *parallel, SearchDeadline: *searchDeadline}
	if *modelJSON != "" {
		cfg, err := models.ReadConfig(*modelJSON)
		if err != nil {
			log.Fatal(err)
		}
		opts.Models = []models.Config{cfg}
	}
	if *trace {
		if err := printTracedSearch(opts, topo); err != nil {
			log.Fatal(err)
		}
	}
	out, err := experiments.Table1(opts, topo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// On a hierarchical machine the search's cost has a second axis — the
	// factor-to-level ordering space — so report the branch-and-bound
	// effort next to Table 1's timings.
	if topo.Hierarchical() {
		out, err := experiments.Orderings(opts, topo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	if *pipeline {
		out, err := experiments.Hybrid(opts, topo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}

// printTracedSearch runs one representative partition search with tracing
// on and prints its span tree — a per-subsystem time breakdown to read
// alongside Table 1's totals. Serial search keeps the tree's shape
// deterministic run to run.
func printTracedSearch(o experiments.Opts, topo sim.Topology) error {
	cfg := models.Config{Family: "mlp", Depth: 4, Width: 1024, Batch: 16}
	if len(o.Models) > 0 {
		cfg = o.Models[0]
	}
	m, err := models.Build(cfg)
	if err != nil {
		return err
	}
	root := obs.NewSpan("tofu-search " + cfg.String())
	popts := core.DefaultOptions()
	popts.Search.Parallelism = 1
	popts.Topology = &topo
	popts.Trace = root
	if _, err := core.Partition(m.G, int64(topo.NumGPUs()), popts); err != nil {
		return err
	}
	root.End()
	fmt.Printf("traced search (%s on %d GPUs):\n%s\n", cfg, topo.NumGPUs(), obs.SpanTree(root))
	return nil
}
