// Command tofu-search reproduces Table 1: the time to find the best
// partition for 8 workers with and without the recursion that makes Tofu's
// search practical.
//
// Usage:
//
//	tofu-search [-flat-budget 20s] [-quick] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tofu/internal/experiments"
)

func main() {
	budget := flag.Duration("flat-budget", 20*time.Second,
		"wall-clock budget for the non-recursive DP before extrapolating")
	quick := flag.Bool("quick", false, "small models for a fast look")
	parallel := flag.Int("parallel", 0,
		"DP search worker goroutines (0 = GOMAXPROCS, 1 = serial); the plan is identical either way")
	flag.Parse()

	out, err := experiments.Table1(experiments.Opts{Quick: *quick, FlatBudget: *budget, Parallelism: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
