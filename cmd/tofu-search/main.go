// Command tofu-search reproduces Table 1: the time to find the best
// partition for 8 workers with and without the recursion that makes Tofu's
// search practical.
//
// Usage:
//
//	tofu-search [-flat-budget 20s] [-quick] [-parallel N]
//	            [-hw p2.8xlarge|dgx1|cluster-2x8|machine.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tofu/internal/experiments"
	"tofu/internal/sim"
)

func main() {
	budget := flag.Duration("flat-budget", 20*time.Second,
		"wall-clock budget for the non-recursive DP before extrapolating")
	quick := flag.Bool("quick", false, "small models for a fast look")
	parallel := flag.Int("parallel", 0,
		"DP search worker goroutines (0 = GOMAXPROCS, 1 = serial); the plan is identical either way")
	hwArg := flag.String("hw", "p2.8xlarge",
		"hardware profile name or topology JSON file (profiles: p2.8xlarge, dgx1, cluster-2x8)")
	flag.Parse()

	topo, err := sim.ResolveTopology(*hwArg)
	if err != nil {
		log.Fatal(err)
	}
	out, err := experiments.Table1(experiments.Opts{Quick: *quick, FlatBudget: *budget, Parallelism: *parallel}, topo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
