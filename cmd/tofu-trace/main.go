// Command tofu-trace validates the observability artifacts the other
// tools emit, so CI can gate on them:
//
//	tofu-trace -check trace.json [-require coarsen,dp.solve] [-sim-min 1]
//	tofu-trace -prom metrics.txt
//
// -check parses a Chrome trace_event JSON file (tofu-plan -trace) with the
// strict reader and prints a summary; -require asserts the named search
// spans are present; -sim-min asserts at least that many simulated
// timeline events. -prom validates a Prometheus text exposition
// (tofu-serve /metrics?format=prometheus). "-" reads stdin. Any
// violation exits non-zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"tofu/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tofu-trace: ")
	check := flag.String("check", "", "Chrome trace_event JSON file to validate (- for stdin)")
	require := flag.String("require", "",
		"comma-separated span names that must appear in the -check trace")
	simMin := flag.Int("sim-min", 0,
		"minimum number of simulated-timeline events the -check trace must carry")
	prom := flag.String("prom", "", "Prometheus text exposition to validate (- for stdin)")
	flag.Parse()

	if (*check == "") == (*prom == "") {
		log.Fatal("exactly one of -check or -prom is required")
	}
	if *prom != "" {
		checkProm(*prom)
		return
	}
	checkTrace(*check, *require, *simMin)
}

func open(arg string) io.ReadCloser {
	if arg == "-" {
		return io.NopCloser(os.Stdin)
	}
	f, err := os.Open(arg)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func checkTrace(path, require string, simMin int) {
	r := open(path)
	defer r.Close()
	tr, err := obs.ReadChromeTrace(r)
	if err != nil {
		log.Fatal(err)
	}
	names := tr.SpanNames()
	lanes := tr.SimLanes()
	simEvents := tr.SimEventCount()
	fmt.Printf("%s: %d events OK\n", path, len(tr.TraceEvents))
	fmt.Printf("  search spans: %s\n", strings.Join(names, " "))
	fmt.Printf("  sim lanes (%d events): %s\n", simEvents, strings.Join(lanes, " "))

	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	var missing []string
	for _, want := range strings.Split(require, ",") {
		if want = strings.TrimSpace(want); want != "" && !have[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		log.Fatalf("%s: missing required spans: %s", path, strings.Join(missing, ", "))
	}
	if simEvents < simMin {
		log.Fatalf("%s: %d simulated-timeline events, need at least %d", path, simEvents, simMin)
	}
}

func checkProm(path string) {
	r := open(path)
	defer r.Close()
	fams, err := obs.ParsePromText(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(fams) == 0 {
		log.Fatalf("%s: exposition has no metric families", path)
	}
	n := 0
	for _, f := range fams {
		n += f.Samples
	}
	fmt.Printf("%s: %d metric families, %d samples OK\n", path, len(fams), n)
	for _, f := range fams {
		fmt.Printf("  %-40s %-9s %d samples\n", f.Name, f.Type, f.Samples)
	}
}
