// Package tofu is a from-scratch Go reproduction of Tofu, the automatic
// dataflow-graph partitioner of "Supporting Very Large Models using
// Automatic Dataflow Graph Partitioning" (Wang, Huang, Li — EuroSys 2019).
//
// Tofu trains DNN models too large for one GPU by partitioning every tensor
// and operator of a fine-grained dataflow graph across devices. Operators
// are described in TDL, a Halide-inspired tensor description language; a
// symbolic interval analysis derives each operator's partition-n-reduce
// strategies; a recursive dynamic program over the coarsened graph picks the
// plan minimizing total communication; and a generator materializes the
// per-worker execution. Because the original testbed (8x NVIDIA K80) is
// hardware, this library ships a calibrated discrete-event simulator that
// reproduces the paper's comparisons; see DESIGN.md for the substitution
// map and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	m, _ := tofu.RNN(6, 4096, 512, 20)
//	summary, _ := tofu.Partition(m.G, 8)
//	res := tofu.Simulate(summary, m.Batch)
//	fmt.Printf("%.0f samples/s, %.1f GB/GPU\n",
//	    res.Throughput, float64(summary.Memory.PeakBytes)/(1<<30))
package tofu

import (
	"fmt"
	"io"
	"time"

	"tofu/internal/baselines"
	"tofu/internal/cancel"
	"tofu/internal/core"
	"tofu/internal/graph"
	"tofu/internal/models"
	"tofu/internal/obs"
	"tofu/internal/partition"
	"tofu/internal/plan"
	"tofu/internal/service"
	"tofu/internal/shape"
	"tofu/internal/sim"
	"tofu/internal/tdl"
)

// Re-exported core types. Aliases keep the internal packages as the single
// source of truth while giving users one import.
type (
	// Graph is a fine-grained tensor dataflow graph (the MXNet role).
	Graph = graph.Graph
	// Tensor is one dataflow edge.
	Tensor = graph.Tensor
	// Node is one operator instance.
	Node = graph.Node
	// Attrs parameterizes operator instances (stride, slice offsets, ...).
	Attrs = tdl.Attrs
	// Shape is a dense tensor shape.
	Shape = shape.Shape
	// Model is a benchmark training graph with metadata.
	Model = models.Model
	// ModelConfig identifies a benchmark model variant.
	ModelConfig = models.Config
	// Plan is a recursive partition plan.
	Plan = plan.Plan
	// Summary is the result of the end-to-end pipeline.
	Summary = core.Summary
	// HW describes a flat simulated machine (the per-GPU half of a
	// Topology, and the single-level compatibility view).
	HW = sim.HW
	// Topology describes a (possibly hierarchical) simulated machine:
	// per-GPU parameters plus an ordered interconnect hierarchy.
	Topology = sim.Topology
	// TopologyLevel is one interconnect tier of a Topology.
	TopologyLevel = sim.Level
	// SimResult is one simulated training iteration.
	SimResult = sim.Result
	// PipelineSpec requests the joint hybrid-parallelism search via
	// PipelineOptions.Pipeline.
	PipelineSpec = core.PipelineSpec
	// System names a baseline system for comparisons.
	System = baselines.System
	// Outcome is one (model, system) evaluation.
	Outcome = baselines.Outcome
	// TraceSpan is one node of a search trace: a named, timed span with
	// attributes and children. A nil *TraceSpan is a valid, allocation-free
	// no-op everywhere one is accepted — set PipelineOptions.Trace to a
	// NewTraceSpan root to record the search, leave it nil to record nothing.
	TraceSpan = obs.Span
	// Timeline collects a simulated run's virtual-clock execution events
	// (compute and per-level transfer lanes, pipeline stage slots). As with
	// TraceSpan, nil disables recording at zero cost.
	Timeline = obs.Timeline
	// CancelToken is the cooperative cancellation token bounding a search.
	// A nil token never cancels and costs one pointer comparison per poll —
	// set PipelineOptions.Cancel to a SearchDeadline token to bound the
	// search, leave it nil for the proven optimum.
	CancelToken = cancel.Token
	// OpDesc is a TDL operator description.
	OpDesc = tdl.OpDesc
	// OpBuilder assembles TDL descriptions fluently.
	OpBuilder = tdl.Builder
	// ReduceAxisBinding binds a reduction axis to its extent.
	ReduceAxisBinding = tdl.ReduceAxis
)

// Baseline systems (Sec 7.1 and 7.3).
const (
	Ideal         = baselines.Ideal
	SmallBatch    = baselines.SmallBatch
	Swap          = baselines.Swap
	OpPlacement   = baselines.OpPlacement
	TFOpPlacement = baselines.TFOpPlacement
	TofuSystem    = baselines.Tofu
	AllRowGreedy  = baselines.AllRowGreedy
	Spartan       = baselines.Spartan
	EqualChop     = baselines.EqualChop
	ICML18        = baselines.ICML18
	HierNaive     = baselines.HierNaive
)

// NewGraph creates an empty dataflow graph bound to the standard operator
// registry (every operator the model zoo uses, plus extras).
func NewGraph() *Graph { return graph.New() }

// ShapeOf builds a shape from extents.
func ShapeOf(dims ...int64) Shape { return shape.Of(dims...) }

// MLP, RNN and WResNet build the paper's benchmark training graphs
// (forward + loss + backward + Adam update).
func MLP(layers int, dim, batch int64) (*Model, error) { return models.MLP(layers, dim, batch) }

// RNN builds the multi-layer LSTM benchmark unrolled for steps timesteps.
func RNN(layers int, hidden, batch int64, steps int) (*Model, error) {
	return models.RNN(layers, hidden, batch, steps)
}

// WResNet builds the Wide ResNet benchmark (depth 50/101/152, widened 4-10x).
func WResNet(depth int, widen, batch int64) (*Model, error) {
	return models.WResNet(depth, widen, batch)
}

// BuildModel constructs a benchmark model from a config.
func BuildModel(c ModelConfig) (*Model, error) { return models.Build(c) }

// UnmarshalModelConfig strictly decodes the canonical ModelConfig JSON form
// — the one the CLIs' -model-json flag and the tofu-serve request body
// share. Unknown fields, trailing data and invalid configs are errors.
func UnmarshalModelConfig(data []byte) (ModelConfig, error) { return models.ParseConfig(data) }

// MarshalModelConfig encodes a config into its canonical one-line JSON form:
// fixed field order, no insignificant whitespace. Equal configs marshal to
// identical bytes; this is the form PlanDigest hashes.
func MarshalModelConfig(c ModelConfig) ([]byte, error) { return c.CanonicalJSON() }

// ReadModelConfig loads a canonical config document from a file path (or
// stdin when arg is "-") — the -model-json convention every CLI shares.
func ReadModelConfig(arg string) (ModelConfig, error) { return models.ReadConfig(arg) }

// PlanDigest returns the content digest ("sha256:<64 hex>") identifying the
// partition request (model, worker count, machine, search restrictions —
// everything that can change the chosen plan, and nothing that cannot; in
// particular search parallelism is excluded because plans are byte-identical
// at any setting). It is the tofu-serve plan-cache key: a plan computed
// locally under the same request carries the same digest the service files
// its cached copy under.
//
// Options outside the service's request surface that could change the plan
// (a StrategyFilter, a non-float32 DType, a Search-level topology override)
// are errors rather than silently excluded: two different plans must never
// share a digest.
func PlanDigest(c ModelConfig, k int64, opts PipelineOptions) (string, error) {
	if opts.Search.StrategyFilter != nil {
		return "", fmt.Errorf("tofu: PlanDigest: Search.StrategyFilter is not content-addressable")
	}
	if opts.Search.DType != shape.Float32 {
		return "", fmt.Errorf("tofu: PlanDigest: non-default DType %v is not content-addressable", opts.Search.DType)
	}
	if opts.Search.Topology != nil {
		return "", fmt.Errorf("tofu: PlanDigest: set the machine via PipelineOptions.Topology, not Search.Topology")
	}
	req := service.Request{
		Model:         c,
		Workers:       k,
		Topology:      opts.Topology,
		MaxStates:     opts.Search.MaxStates,
		Factors:       opts.Search.Factors,
		TopologyNaive: opts.Search.TopologyNaive,
	}
	if opts.Pipeline != nil {
		// Only the stage level reaches the digest: micro-batch counts and the
		// exhaustive oracle change simulation or effort, never plan bytes.
		req.Pipeline = &service.PipelineRequest{Level: opts.Pipeline.Level}
	}
	if b := opts.Cancel.Budget(); b > 0 {
		// A deadline-bounded search may legitimately return a degraded
		// incumbent, so the budget is part of the request's content. Tokens
		// without a declared budget (plain Cancel, poll-counted test tokens)
		// are effort-only and deliberately excluded, like parallelism.
		req.DeadlineMs = b.Milliseconds()
	}
	return req.Digest()
}

// Partition runs the full Tofu pipeline (strategy discovery, coarsening,
// recursive DP search, partitioned-graph generation, memory planning) for k
// workers with default options.
func Partition(g *Graph, k int64) (*Summary, error) {
	return core.Partition(g, k, core.DefaultOptions())
}

// PartitionWithOptions exposes the pipeline's knobs (search restrictions
// and parallelism, generation optimizations, memory planner, hardware
// model). The search fans its DP sweep across Search.Parallelism worker
// goroutines (0 = GOMAXPROCS) with a deterministic merge, so the chosen
// plan is byte-identical for every setting.
func PartitionWithOptions(g *Graph, k int64, opts core.Options) (*Summary, error) {
	return core.Partition(g, k, opts)
}

// PipelineOptions re-exports the pipeline knobs.
type PipelineOptions = core.Options

// DefaultPipelineOptions matches the full system.
func DefaultPipelineOptions() PipelineOptions { return core.DefaultOptions() }

// Simulate executes one training iteration of the partitioned graph on the
// default simulated machine (8x 12 GB GPUs, 21 GB/s PCIe peer links).
func Simulate(s *Summary, batch int64) SimResult {
	return core.Simulate(s, batch, core.DefaultOptions(), sim.RunOptions{})
}

// SimulateWith is Simulate honoring the caller's pipeline options — in
// particular the hardware topology and memory planner the summary was
// produced under, which plain Simulate ignores.
func SimulateWith(s *Summary, batch int64, opts PipelineOptions) SimResult {
	return core.Simulate(s, batch, opts, sim.RunOptions{})
}

// SimulatePipeline prices a hybrid summary's micro-batched pipeline
// execution (Options.Pipeline.MicroBatches; 0 picks one micro-batch per
// stage when the batch divides). Unlike SimulateWith it rejects summaries
// without stages and infeasible batch splits.
func SimulatePipeline(s *Summary, batch int64, opts PipelineOptions) (SimResult, error) {
	return core.SimulatePipeline(s, batch, opts, sim.RunOptions{})
}

// NewTraceSpan starts a root trace span. Hand it to PipelineOptions.Trace
// before Partition, call End after, and export with WriteChromeTrace or
// render with SpanTree. Span timestamps are display-only: the chosen plan
// is byte-identical with or without tracing.
func NewTraceSpan(name string) *TraceSpan { return obs.NewSpan(name) }

// SearchDeadline arms a wall-clock budget for a search: assign the token to
// PipelineOptions.Cancel and call stop once the search returns. On expiry
// the search stops at its next poll point and returns the best incumbent
// found so far with Summary.Degraded set (or the deadline error when
// nothing completed in budget). d <= 0 returns a nil token — unbounded, the
// plain byte-identical search. The budget (not the expiry instant) folds
// into PlanDigest, because a degraded incumbent is a different answer than
// the proven optimum.
func SearchDeadline(d time.Duration) (*CancelToken, func()) { return cancel.WithTimeout(d) }

// NewTimeline starts an empty execution timeline for SimulateTraced /
// SimulatePipelineTraced. Its events carry virtual-clock (simulated)
// times, so exports are byte-deterministic.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// SimulateTraced is SimulateWith recording the run's virtual-clock
// execution events into tl (nil tl = plain SimulateWith). The priced
// result is identical either way.
func SimulateTraced(s *Summary, batch int64, opts PipelineOptions, tl *Timeline) SimResult {
	return core.Simulate(s, batch, opts, sim.RunOptions{Timeline: tl})
}

// SimulatePipelineTraced is SimulatePipeline with a timeline.
func SimulatePipelineTraced(s *Summary, batch int64, opts PipelineOptions, tl *Timeline) (SimResult, error) {
	return core.SimulatePipeline(s, batch, opts, sim.RunOptions{Timeline: tl})
}

// WriteChromeTrace exports a search span tree and/or execution timeline
// (either may be nil) as Chrome trace_event JSON — loadable in
// chrome://tracing and Perfetto. Search spans render as process 1,
// simulated per-worker lanes as process 2.
func WriteChromeTrace(w io.Writer, root *TraceSpan, tl *Timeline) error {
	return obs.WriteChromeTrace(w, root, tl)
}

// SpanTree renders a span tree as indented human-readable text.
func SpanTree(root *TraceSpan) string { return obs.SpanTree(root) }

// TimelineSummary renders a timeline's lanes as human-readable text.
func TimelineSummary(tl *Timeline) string { return obs.TimelineSummary(tl) }

// DefaultHW is the simulated p2.8xlarge the evaluation uses, as a flat
// machine.
func DefaultHW() HW { return sim.DefaultHW() }

// DefaultTopology is the same machine as a (single-level) topology.
func DefaultTopology() Topology { return sim.DefaultTopology() }

// TopologyProfile returns a machine from the built-in profile library
// (see TopologyProfiles).
func TopologyProfile(name string) (Topology, error) { return sim.Profile(name) }

// TopologyProfiles lists the built-in machine profiles.
func TopologyProfiles() []string { return sim.ProfileNames() }

// LoadTopology reads a user-defined machine from a topology JSON file
// (write one with Topology.WriteJSON).
func LoadTopology(path string) (Topology, error) { return sim.LoadTopology(path) }

// ResolveTopology interprets a -hw style argument: a built-in profile name
// or a path to a topology JSON file.
func ResolveTopology(arg string) (Topology, error) { return sim.ResolveTopology(arg) }

// EvaluateSystem runs one baseline system (or Tofu itself) on a benchmark
// model configuration — the building block of Figures 8-10 and Table 3.
// The flat HW is wrapped into a single-level topology; use
// EvaluateSystemOn for hierarchical machines.
func EvaluateSystem(cfg ModelConfig, sys System, hw HW) (Outcome, error) {
	return baselines.Evaluate(cfg, sys, sim.FlatTopology(hw))
}

// EvaluateSystemOn is EvaluateSystem on an explicit (possibly hierarchical)
// machine topology: partition searches become topology-aware and every
// transfer is priced at the interconnect level it crosses.
func EvaluateSystemOn(cfg ModelConfig, sys System, topo Topology) (Outcome, error) {
	return baselines.Evaluate(cfg, sys, topo)
}

// DescribeOp starts a TDL description for a custom operator; register the
// result with RegisterOp to make it partitionable.
func DescribeOp(name string) *OpBuilder { return tdl.Describe(name) }

// OpStrategies lists the basic partition strategies the analyzer discovers
// for a (possibly custom) operator — the automatic replacement for prior
// work's hand-written per-layer strategies.
func OpStrategies(name string, attrs Attrs) ([]string, error) {
	d, err := tdl.Std.Describe(name, attrs)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, s := range partition.Enumerate(d) {
		out = append(out, s.String())
	}
	return out, nil
}

// RegisterOp installs a custom operator description in the standard
// registry (see examples/customop).
func RegisterOp(d *OpDesc) error { return tdl.Std.RegisterStatic(d) }

// TDL expression constructors for custom operator descriptions.
var (
	// Ax names an index variable.
	Ax = tdl.Ax
	// At accesses an input tensor at affine indices.
	At = tdl.At
	// Mul/Add/Sub/Div build scalar arithmetic.
	Mul = tdl.Mul
	Add = tdl.Add
	Sub = tdl.Sub
	Div = tdl.Div
	// Reduce aggregates over reduction axes; Sum/Max/Min/Prod are the
	// built-in reducers.
	Reduce = tdl.Reduce
	// RVar binds a reduction axis to an extent.
	RVar = tdl.RVar
	// ExtentOf binds an extent to an input dimension.
	ExtentOf = tdl.ExtentOf
	// Apply applies a named scalar function elementwise.
	Apply = tdl.Apply
)

// Reducers.
const (
	Sum  = tdl.Sum
	Max  = tdl.Max
	Min  = tdl.Min
	Prod = tdl.Prod
)
