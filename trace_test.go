package tofu_test

import (
	"bytes"
	"strings"
	"testing"

	"tofu"
	"tofu/internal/obs"
)

// traceCases are the five benchmark searches the trace-determinism tests
// sweep: flat DP, topology-aware ordering search on two machines, and the
// joint pipeline search — every traced subsystem.
var traceCases = []struct {
	name     string
	cfg      tofu.ModelConfig
	hw       string // "" = default flat machine
	pipeline bool
}{
	{"mlp-flat", tofu.ModelConfig{Family: "mlp", Depth: 4, Width: 512, Batch: 64}, "", false},
	{"rnn-flat", tofu.ModelConfig{Family: "rnn", Depth: 2, Width: 1024, Batch: 64}, "", false},
	{"wresnet-flat", tofu.ModelConfig{Family: "wresnet", Depth: 50, Width: 2, Batch: 8}, "", false},
	{"mlp-topo", tofu.ModelConfig{Family: "mlp", Depth: 4, Width: 1024, Batch: 16}, "cluster-2x8", false},
	{"mlp-pipeline", tofu.ModelConfig{Family: "mlp", Depth: 4, Width: 256, Batch: 64}, "cluster-4x2x8", true},
}

func tracePlanBytes(t *testing.T, tc struct {
	name     string
	cfg      tofu.ModelConfig
	hw       string
	pipeline bool
}, parallelism int, root *tofu.TraceSpan) []byte {
	t.Helper()
	m, err := tofu.BuildModel(tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := tofu.DefaultPipelineOptions()
	opts.Search.Parallelism = parallelism
	opts.Trace = root
	workers := int64(8)
	if tc.hw != "" {
		topo, err := tofu.TopologyProfile(tc.hw)
		if err != nil {
			t.Fatal(err)
		}
		opts.Topology = &topo
		workers = int64(topo.NumGPUs())
	}
	if tc.pipeline {
		opts.Pipeline = &tofu.PipelineSpec{}
	}
	s, err := tofu.PartitionWithOptions(m.G, workers, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTracedPlansByteIdentical is the tentpole invariant: turning tracing
// on must not perturb a single plan byte, at any search parallelism.
func TestTracedPlansByteIdentical(t *testing.T) {
	for _, tc := range traceCases {
		t.Run(tc.name, func(t *testing.T) {
			for _, par := range []int{1, 2, 8} {
				baseline := tracePlanBytes(t, tc, par, nil)
				root := tofu.NewTraceSpan("test")
				traced := tracePlanBytes(t, tc, par, root)
				root.End()
				if !bytes.Equal(baseline, traced) {
					t.Fatalf("par %d: traced plan bytes differ from untraced", par)
				}
				if root.SpanCount() < 2 {
					t.Fatalf("par %d: trace recorded only %d spans", par, root.SpanCount())
				}
			}
		})
	}
}

// TestTraceStructureDeterministic checks the span tree's shape — names,
// parent edges, sibling order, counts; never timestamps — is identical
// across serial runs. (At parallelism > 1 the expansion schedule may
// reorder children, the same contract SearchStats has.)
func TestTraceStructureDeterministic(t *testing.T) {
	for _, tc := range traceCases {
		t.Run(tc.name, func(t *testing.T) {
			r1 := tofu.NewTraceSpan("test")
			tracePlanBytes(t, tc, 1, r1)
			r1.End()
			r2 := tofu.NewTraceSpan("test")
			tracePlanBytes(t, tc, 1, r2)
			r2.End()
			if s1, s2 := r1.Structure(), r2.Structure(); s1 != s2 {
				t.Fatalf("span structure differs across serial runs:\n%s\nvs\n%s", s1, s2)
			}
		})
	}
}

// TestTimelineExportRoundTrip simulates with a timeline, exports Chrome
// trace JSON, and re-reads it with the strict reader: the export must be
// byte-deterministic (virtual clocks only) and structurally valid.
func TestTimelineExportRoundTrip(t *testing.T) {
	m, err := tofu.MLP(4, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	opts := tofu.DefaultPipelineOptions()
	root := tofu.NewTraceSpan("test")
	opts.Trace = root
	s, err := tofu.PartitionWithOptions(m.G, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	tl := tofu.NewTimeline()
	res := tofu.SimulateTraced(s, m.Batch, opts, tl)
	plain := tofu.SimulateWith(s, m.Batch, opts)
	if res != plain {
		t.Fatalf("timeline recording changed the priced result: %+v vs %+v", res, plain)
	}
	root.End()

	var b1, b2 bytes.Buffer
	if err := tofu.WriteChromeTrace(&b1, root, tl); err != nil {
		t.Fatal(err)
	}
	if err := tofu.WriteChromeTrace(&b2, root, tl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("chrome trace export is not byte-deterministic")
	}

	tr, err := obs.ReadChromeTrace(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatalf("strict reader rejected our own export: %v", err)
	}
	if n := tr.SimEventCount(); n == 0 {
		t.Fatal("export carries no simulated-timeline events")
	}
	foundCompute := false
	for _, l := range tr.SimLanes() {
		if l == "w0/compute" {
			foundCompute = true
		}
	}
	if !foundCompute {
		t.Fatalf("timeline lanes %v missing w0/compute", tr.SimLanes())
	}
	names := strings.Join(tr.SpanNames(), " ")
	for _, want := range []string{"coarsen", "dp.solve", "dp.pricing"} {
		if !strings.Contains(names, want) {
			t.Fatalf("span names %q missing %q", names, want)
		}
	}
}
