package tofu_test

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (EuroSys'19 Sec 7). Each benchmark runs the corresponding
// experiment end to end — model construction, partition search, graph
// generation, memory planning, simulation — and prints the rendered
// artifact once, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Benchmarks honor -short by trimming the
// sweeps (the cmd/tofu-bench tool runs the full versions too).

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"tofu"
	"tofu/internal/dp"
	"tofu/internal/experiments"
	"tofu/internal/models"
	"tofu/internal/recursive"
	"tofu/internal/sim"
)

var printOnce sync.Map

func runExperiment(b *testing.B, name string, fn func(experiments.Opts) (string, error)) {
	b.Helper()
	opts := experiments.Opts{Quick: testing.Short(), FlatBudget: 10 * time.Second}
	if testing.Short() {
		opts.FlatBudget = 2 * time.Second
	}
	for i := 0; i < b.N; i++ {
		out, err := fn(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, dup := printOnce.LoadOrStore(name, true); !dup {
			fmt.Printf("\n================ %s ================\n%s\n", name, out)
		}
	}
}

// BenchmarkTable1SearchTime regenerates Table 1: partition search time for
// 8 workers with the coarsened-but-flat DP (measured under budget and
// extrapolated) versus Tofu's recursion.
func BenchmarkTable1SearchTime(b *testing.B) {
	runExperiment(b, "Table 1", func(o experiments.Opts) (string, error) {
		return experiments.Table1(o, sim.DefaultTopology())
	})
}

// BenchmarkTable2WeightSizes regenerates Table 2: total weight tensor sizes
// of every benchmark model, next to the paper's numbers.
func BenchmarkTable2WeightSizes(b *testing.B) {
	runExperiment(b, "Table 2", experiments.Table2)
}

// BenchmarkTable3RNNComparison regenerates Table 3: Tofu vs MXNet operator
// placement vs TensorFlow operator placement on RNNs with hidden size 4096.
func BenchmarkTable3RNNComparison(b *testing.B) {
	runExperiment(b, "Table 3", func(o experiments.Opts) (string, error) {
		return experiments.Table3(o, sim.DefaultTopology())
	})
}

// BenchmarkFigure8WResNet regenerates Figure 8: WResNet training throughput
// for Ideal/SmallBatch/Swap/Tofu, normalized to ideal, with OOM markers.
func BenchmarkFigure8WResNet(b *testing.B) {
	runExperiment(b, "Figure 8", func(o experiments.Opts) (string, error) {
		return experiments.Figure8(o, sim.DefaultTopology())
	})
}

// BenchmarkFigure9RNN regenerates Figure 9: RNN training throughput for
// Ideal/SmallBatch/Swap/Op-Placement/Tofu.
func BenchmarkFigure9RNN(b *testing.B) {
	runExperiment(b, "Figure 9", func(o experiments.Opts) (string, error) {
		return experiments.Figure9(o, sim.DefaultTopology())
	})
}

// BenchmarkFigure10Algorithms regenerates Figure 10: partition-algorithm
// quality (AllRow-Greedy, Spartan, EqualChop, ICML18, Tofu) with the
// communication-overhead breakdown and OOMs.
func BenchmarkFigure10Algorithms(b *testing.B) {
	runExperiment(b, "Figure 10", func(o experiments.Opts) (string, error) {
		return experiments.Figure10(o, sim.DefaultTopology())
	})
}

// BenchmarkFigure11Plan regenerates Figure 11: the partition Tofu finds for
// WResNet-152-10 on 8 GPUs.
func BenchmarkFigure11Plan(b *testing.B) {
	runExperiment(b, "Figure 11", experiments.Figure11)
}

// BenchmarkCrossTopology runs the cross-topology scenario sweep: the same
// models on the flat p2.8xlarge, the NVLink DGX-1 box and the 2x8-node
// cluster, comparing the topology-aware search against EqualChop and the
// hierarchical-naive layout.
func BenchmarkCrossTopology(b *testing.B) {
	runExperiment(b, "Cross-topology", func(o experiments.Opts) (string, error) {
		return experiments.CrossTopology(o, sim.DefaultTopology())
	})
}

// BenchmarkAblations quantifies the Sec 6 design choices (MultiFetch,
// control dependencies, spread reductions, in-place aggregation, output
// reduction).
func BenchmarkAblations(b *testing.B) {
	runExperiment(b, "Ablations", func(o experiments.Opts) (string, error) {
		return experiments.Ablations(o, sim.DefaultTopology())
	})
}

// BenchmarkPartitionSearch measures the raw recursive search on the
// paper-scale models (the numbers behind Table 1's last row).
func BenchmarkPartitionSearch(b *testing.B) {
	cfgs := []models.Config{
		{Family: "wresnet", Depth: 152, Width: 10, Batch: 8},
		{Family: "rnn", Depth: 10, Width: 8192, Batch: 128},
	}
	if testing.Short() {
		cfgs = []models.Config{{Family: "mlp", Depth: 4, Width: 512, Batch: 64}}
	}
	for _, cfg := range cfgs {
		b.Run(cfg.String(), func(b *testing.B) {
			m, err := models.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := recursive.Partition(m.G, 8, recursive.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionSearchParallel measures the worker-pool scaling of the
// partition search: the serial path (par=1) against the default pool
// (par=GOMAXPROCS) on the same paper-scale models. The emitted plan is
// byte-identical across settings (see TestParallelSearchDeterminism); only
// wall-clock changes. Speedup shows up on multi-core machines.
func BenchmarkPartitionSearchParallel(b *testing.B) {
	cfgs := []models.Config{
		{Family: "wresnet", Depth: 152, Width: 10, Batch: 8},
		{Family: "rnn", Depth: 10, Width: 8192, Batch: 128},
	}
	if testing.Short() {
		cfgs = []models.Config{{Family: "mlp", Depth: 4, Width: 512, Batch: 64}}
	}
	pars := []int{1, runtime.GOMAXPROCS(0)}
	for _, cfg := range cfgs {
		m, err := models.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, par := range pars {
			b.Run(fmt.Sprintf("%s/par=%d", cfg, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := recursive.Partition(m.G, 8, recursive.Options{Parallelism: par}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPartitionSearchWarmCache measures the steady-state search cost
// when the pricing cache is shared across searches — the regime of the
// experiment drivers, which sweep many (model × system) cells over the
// same graphs.
func BenchmarkPartitionSearchWarmCache(b *testing.B) {
	cfg := models.Config{Family: "rnn", Depth: 10, Width: 8192, Batch: 128}
	if testing.Short() {
		cfg = models.Config{Family: "mlp", Depth: 4, Width: 512, Batch: 64}
	}
	m, err := models.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cache := dp.NewPriceCache()
	if _, err := recursive.Partition(m.G, 8, recursive.Options{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recursive.Partition(m.G, 8, recursive.Options{Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd measures the full pipeline (search + generation +
// memory planning + simulation) on the quickstart workload.
func BenchmarkEndToEnd(b *testing.B) {
	m, err := tofu.RNN(6, 4096, 512, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := tofu.Partition(m.G, 8)
		if err != nil {
			b.Fatal(err)
		}
		res := tofu.Simulate(s, m.Batch)
		if res.Throughput <= 0 {
			b.Fatal("no throughput")
		}
	}
}

// BenchmarkPartitionSearchTopo measures the topology-aware ordering search
// on the hierarchical profiles — the branch-and-bound prefix tree whose DP
// effort the dp_steps/dp_steps_flat metrics expose. Short mode keeps the
// two cluster profiles the CI gate tracks.
func BenchmarkPartitionSearchTopo(b *testing.B) {
	cases := []struct {
		prof string
		cfg  models.Config
	}{
		{"cluster-2x8", models.Config{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}},
		{"cluster-4x2x8", models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 128}},
		{"cluster-8x2x8", models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 256}},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, c := range cases {
		tp, err := sim.Profile(c.prof)
		if err != nil {
			b.Fatal(err)
		}
		m, err := models.Build(c.cfg)
		if err != nil {
			b.Fatal(err)
		}
		k := int64(tp.NumGPUs())
		b.Run(fmt.Sprintf("%s@%d", c.prof, k), func(b *testing.B) {
			var st recursive.SearchStats
			for i := 0; i < b.N; i++ {
				if _, err := recursive.Partition(m.G, k, recursive.Options{Topology: &tp, Stats: &st}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.DPSolves), "dp-steps")
			b.ReportMetric(float64(st.FlatDPSolves), "dp-steps-flat")
			b.ReportMetric(float64(st.Pruned), "pruned-nodes")
		})
	}
}
