package graphgen

import (
	"testing"

	"tofu/internal/models"
	"tofu/internal/recursive"
)

func shardedMLP(t *testing.T, k int64, opts Options) (*Sharded, *models.Model) {
	t.Helper()
	m, err := models.MLP(2, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := recursive.Partition(m.G, k, recursive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Generate(m.G, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sh, m
}

func TestGenerateBasics(t *testing.T) {
	sh, m := shardedMLP(t, 8, DefaultOptions())
	if sh.K != 8 {
		t.Fatalf("K = %d", sh.K)
	}
	if len(sh.Ops) != len(m.G.Nodes) {
		t.Fatalf("ops = %d, nodes = %d", len(sh.Ops), len(m.G.Nodes))
	}
	// Per-worker FLOPs are 1/8 of the whole graph's.
	var shardFLOPs, fullFLOPs float64
	for _, os := range sh.Ops {
		shardFLOPs += os.FLOPs
	}
	single, err := Single(m.G)
	if err != nil {
		t.Fatal(err)
	}
	for _, os := range single.Ops {
		fullFLOPs += os.FLOPs
	}
	if ratio := fullFLOPs / shardFLOPs; ratio < 7.99 || ratio > 8.01 {
		t.Fatalf("FLOPs ratio = %g, want 8", ratio)
	}
}

func TestShardBytes(t *testing.T) {
	sh, m := shardedMLP(t, 8, DefaultOptions())
	for _, w := range m.G.Weights() {
		if got := sh.TensorShard[w.ID] * 8; got != w.Bytes() {
			t.Errorf("weight %v shard bytes %d, want 1/8 of %d", w, sh.TensorShard[w.ID], w.Bytes())
		}
	}
}

func TestCommRecorded(t *testing.T) {
	sh, _ := shardedMLP(t, 8, DefaultOptions())
	if sh.TotalFetchBytes+sh.TotalOutBytes <= 0 {
		t.Fatal("an 8-way partitioned MLP must communicate")
	}
	// Per-worker communication is the plan's total over 8.
	want := sh.Plan.TotalComm() / 8
	got := sh.TotalFetchBytes + sh.TotalOutBytes
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("per-worker comm %g, want %g", got, want)
	}
}

func TestMultiFetchOff(t *testing.T) {
	on, _ := shardedMLP(t, 8, DefaultOptions())
	offOpts := DefaultOptions()
	offOpts.MultiFetch = false
	off, _ := shardedMLP(t, 8, offOpts)
	if off.TotalFetchBytes <= on.TotalFetchBytes {
		t.Fatalf("staged fetches (%g) must move more than MultiFetch (%g)",
			off.TotalFetchBytes, on.TotalFetchBytes)
	}
}

func TestSpreadReductionOff(t *testing.T) {
	on, _ := shardedMLP(t, 8, DefaultOptions())
	offOpts := DefaultOptions()
	offOpts.SpreadReduction = false
	off, _ := shardedMLP(t, 8, offOpts)
	if off.TotalOutBytes < on.TotalOutBytes {
		t.Fatalf("funneled reductions (%g) must not beat all-reduce (%g)",
			off.TotalOutBytes, on.TotalOutBytes)
	}
}

func TestSingle(t *testing.T) {
	m, err := models.MLP(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Single(m.G)
	if err != nil {
		t.Fatal(err)
	}
	if sh.K != 1 || sh.TotalFetchBytes != 0 || sh.TotalOutBytes != 0 {
		t.Fatal("single-GPU wrapper must not communicate")
	}
	for _, tt := range m.G.Tensors {
		if sh.TensorShard[tt.ID] != tt.Bytes() {
			t.Fatalf("tensor %v shard %d != %d", tt, sh.TensorShard[tt.ID], tt.Bytes())
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	m, err := models.MLP(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(m.G, nil, DefaultOptions()); err == nil {
		t.Fatal("expected invalid-plan error")
	}
}
