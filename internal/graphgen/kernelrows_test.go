package graphgen

import (
	"testing"

	"tofu/internal/models"
	"tofu/internal/partition"
	"tofu/internal/recursive"
)

// TestKernelRowsFollowStrategies checks the property that fixed a major
// mis-pricing: a kernel's computed slab follows the chosen strategies, not
// the output tensor's storage cut. Whenever no step split output dim 0, the
// kernel keeps full rows even if the tensor is stored row-partitioned.
func TestKernelRowsFollowStrategies(t *testing.T) {
	m, err := models.RNN(2, 1024, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := recursive.Partition(m.G, 8, recursive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Generate(m.G, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, os := range sh.Ops {
		rows := float64(os.Node.Output.Shape.Dim(0))
		splits := 1.0
		for _, s := range p.Steps {
			if st := s.OpStrategy[os.Node.ID]; st.Axis != "" &&
				st.Kind == partition.SplitOutput && st.OutDim == 0 {
				splits *= float64(s.K)
			}
		}
		want := rows / splits
		if os.KernelRows != want {
			t.Fatalf("%v: KernelRows = %g, want %g (out rows %g, row-splits %g)",
				os.Node, os.KernelRows, want, rows, splits)
		}
		// The kernel never computes fewer rows than the storage shard: the
		// storage cut can only be finer or equal along dim 0.
		if os.OutShard.Rank() > 0 && os.KernelRows < float64(os.OutShard.Dim(0))-1e-9 {
			t.Fatalf("%v: kernel rows %g below storage shard rows %d",
				os.Node, os.KernelRows, os.OutShard.Dim(0))
		}
	}
}
