// Package graphgen turns a partition plan into the per-worker execution
// structure Tofu's runtime would run (EuroSys'19 Sec 6): every operator gets
// a per-worker shard with 1/k of the compute, a fused MultiFetch task for
// the remote input regions, and an output redistribution/reduction task when
// the plan requires one. Tofu's plans are symmetric across workers, so the
// generator emits one representative worker timeline; the simulator and the
// memory planner exploit the symmetry.
//
// The two memory optimizations of Sec 6 are modeled as options: MultiFetch
// (assembling remote regions in place via one fused kernel instead of
// split/copy/concatenate chains) and ControlDeps (the extra control
// dependencies of Fig 7 that keep the memory planner's buffer reuse intact).
package graphgen

import (
	"fmt"

	"tofu/internal/graph"
	"tofu/internal/partition"
	"tofu/internal/plan"
	"tofu/internal/shape"
)

// Options toggle the Sec 6 optimizations (both on in real Tofu; the
// ablation benches switch them off).
type Options struct {
	// MultiFetch fuses remote-region assembly into one kernel reading peer
	// memory over UVA. Off, every fetched region is staged through an extra
	// copy (split + copy + concatenate), doubling communication buffers.
	MultiFetch bool
	// ControlDeps adds the Fig 7 control dependencies so each worker's
	// memory planner sees the original operator ordering and can reuse
	// buffers. Off, reuse across partitioned operators is lost.
	ControlDeps bool
	// SpreadReduction distributes output reductions across all workers
	// (all-reduce); off, a single worker aggregates and its link becomes
	// the bottleneck.
	SpreadReduction bool
}

// DefaultOptions enables everything, matching the real system.
func DefaultOptions() Options {
	return Options{MultiFetch: true, ControlDeps: true, SpreadReduction: true}
}

// OpShard is one operator's per-worker slice of work.
type OpShard struct {
	Node *graph.Node
	// OutShard is the worker's output shard shape (storage layout).
	OutShard shape.Shape
	// KernelRows is the leading extent of the slab the kernel actually
	// computes, which follows the composed *strategies* rather than the
	// output tensor's storage cut: a matmul parallelized along its column
	// axis still runs full-height rows on every worker even when the
	// result is stored row-partitioned. Kernel efficiency depends on this.
	KernelRows float64
	// FLOPs and MemBytes are the per-worker kernel costs.
	FLOPs    float64
	MemBytes float64
	// FetchBytes is the per-worker MultiFetch traffic (remote input regions,
	// summed over all recursive steps).
	FetchBytes float64
	// OutCommBytes is the per-worker output redistribution/reduction
	// traffic.
	OutCommBytes float64
	// FetchByLevel/OutByLevel break the same traffic down by the
	// interconnect level whose links it crosses (indexed by the plan steps'
	// Level annotations; flat plans put everything at level 0). The
	// simulator prices each bucket at its level's bandwidth.
	FetchByLevel []float64
	OutByLevel   []float64
}

// Sharded is the per-worker execution structure for a k-way plan.
type Sharded struct {
	K    int64
	G    *graph.Graph
	Plan *plan.Plan
	Opts Options
	// Ops lists per-worker op shards in execution (topological) order.
	Ops []OpShard
	// TensorShard maps tensor ID to the per-worker shard bytes.
	TensorShard map[int]int64
	// TotalFetchBytes/TotalOutBytes summarize per-worker communication.
	TotalFetchBytes float64
	TotalOutBytes   float64
}

// Generate builds the per-worker structure for a plan produced by the
// recursive search (or by a heuristic baseline via dp.Evaluate).
func Generate(g *graph.Graph, p *plan.Plan, opts Options) (*Sharded, error) {
	if p == nil || p.K < 1 {
		return nil, fmt.Errorf("graphgen: invalid plan")
	}
	sh := &Sharded{K: p.K, G: g, Plan: p, Opts: opts, TensorShard: make(map[int]int64, len(g.Tensors))}
	kf := float64(p.K)

	for _, t := range g.Tensors {
		fs, ok := p.FinalShapes[t.ID]
		if !ok || len(p.TensorCuts(t.ID)) == 0 {
			// Unreferenced tensors stay whole on every worker.
			sh.TensorShard[t.ID] = t.Bytes()
			continue
		}
		sh.TensorShard[t.ID] = fs.Bytes(t.DType)
	}

	nodes, err := g.Topo()
	if err != nil {
		return nil, err
	}
	levels := 1
	for _, s := range p.Steps {
		if s.Level+1 > levels {
			levels = s.Level + 1
		}
	}
	for _, n := range nodes {
		os := OpShard{
			Node:         n,
			FLOPs:        graph.NodeFLOPs(n) / kf,
			MemBytes:     float64(graph.MemBytes(n)) / kf,
			FetchByLevel: make([]float64, levels),
			OutByLevel:   make([]float64, levels),
		}
		if fs, ok := p.FinalShapes[n.Output.ID]; ok {
			os.OutShard = fs
		} else {
			os.OutShard = n.Output.Shape
		}
		// Kernel slab: divide along each step's *strategy* axis.
		rows := 1.0
		if n.Output.Shape.Rank() > 0 {
			rows = float64(n.Output.Shape.Dim(0))
		}
		// Sum the per-step communication; each step's Parts covers all
		// workers, so a single worker moves 1/k of it.
		for _, s := range p.Steps {
			if n.ID >= len(s.OpStrategy) || n.ID >= len(s.OpComm) {
				continue
			}
			if st := s.OpStrategy[n.ID]; st.Axis != "" &&
				st.Kind == partition.SplitOutput && st.OutDim == 0 {
				rows /= float64(s.K)
			}
			parts := s.OpComm[n.ID]
			os.FetchBytes += parts.InBytes / kf
			os.FetchByLevel[s.Level] += parts.InBytes / kf
			if opts.SpreadReduction {
				os.OutCommBytes += parts.OutBytes / kf
				os.OutByLevel[s.Level] += parts.OutBytes / kf
			} else {
				// All partial outputs funnel through one aggregator link.
				os.OutCommBytes += parts.OutBytes
				os.OutByLevel[s.Level] += parts.OutBytes
			}
		}
		os.KernelRows = rows
		if !opts.MultiFetch {
			// Staged split/copy/concatenate moves the fetched region twice.
			os.FetchBytes *= 2
			for l := range os.FetchByLevel {
				os.FetchByLevel[l] *= 2
			}
		}
		sh.TotalFetchBytes += os.FetchBytes
		sh.TotalOutBytes += os.OutCommBytes
		sh.Ops = append(sh.Ops, os)
	}
	return sh, nil
}

// Single wraps an unpartitioned graph in the same structure (k = 1, no
// communication) for the single-GPU baselines (Ideal, SmallBatch, Swap).
func Single(g *graph.Graph) (*Sharded, error) {
	nodes, err := g.Topo()
	if err != nil {
		return nil, err
	}
	sh := &Sharded{
		K: 1, G: g,
		Plan:        &plan.Plan{K: 1},
		Opts:        DefaultOptions(),
		TensorShard: make(map[int]int64, len(g.Tensors)),
	}
	for _, t := range g.Tensors {
		sh.TensorShard[t.ID] = t.Bytes()
	}
	for _, n := range nodes {
		rows := 1.0
		if n.Output.Shape.Rank() > 0 {
			rows = float64(n.Output.Shape.Dim(0))
		}
		sh.Ops = append(sh.Ops, OpShard{
			Node:       n,
			OutShard:   n.Output.Shape,
			KernelRows: rows,
			FLOPs:      graph.NodeFLOPs(n),
			MemBytes:   float64(graph.MemBytes(n)),
		})
	}
	return sh, nil
}
