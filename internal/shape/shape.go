// Package shape provides tensor shape arithmetic shared by every Tofu
// subsystem: the TDL analyzer, the partition search, the memory planner and
// the simulator all reason about dense n-dimensional tensors whose extents
// are known statically, exactly as MXNet's shape inference provides them to
// the original Tofu prototype.
//
//tofu:searchpath reachable from dp.Solve / recursive.Partition; nodeterm enforces determinism
package shape

import (
	"fmt"
	"strconv"
)

// DType identifies the element type of a tensor. The paper's workloads are
// all float32; the other widths exist for the swap engine and for tests.
type DType int

const (
	Float32 DType = iota
	Float16
	Float64
	Int32
	Int64
)

// Size returns the width of the element type in bytes.
func (d DType) Size() int64 {
	switch d {
	case Float16:
		return 2
	case Float32, Int32:
		return 4
	case Float64, Int64:
		return 8
	default:
		panic(fmt.Sprintf("shape: unknown dtype %d", int(d)))
	}
}

func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Shape is the list of extents of a dense tensor. A nil/empty Shape is a
// scalar. Shapes are treated as immutable; mutating helpers return copies.
type Shape []int64

// Of builds a shape from the given extents.
func Of(dims ...int64) Shape {
	s := make(Shape, len(dims))
	copy(s, dims)
	return s
}

// Rank returns the number of dimensions.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (s Shape) Rank() int { return len(s) }

// Dim returns the extent of dimension i.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (s Shape) Dim(i int) int64 { return s[i] }

// Elems returns the total number of elements (1 for a scalar).
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		n *= d
	}
	return n
}

// Bytes returns the storage size of a tensor of this shape and dtype.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (s Shape) Bytes(d DType) int64 { return s.Elems() * d.Size() }

// Clone returns a copy that may be mutated independently.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and extents.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every extent is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// Split returns the shape of one of ways equal parts along dim. It errors if
// the extent does not divide evenly: Tofu only partitions tensors whose
// extents are divisible by the worker count at every recursive step, which
// holds for all of the paper's benchmarks (powers of two everywhere).
func (s Shape) Split(dim int, ways int64) (Shape, error) {
	if dim < 0 || dim >= len(s) {
		return nil, fmt.Errorf("shape: split dim %d out of range for %v", dim, s)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("shape: split ways must be positive, got %d", ways)
	}
	if s[dim]%ways != 0 {
		return nil, fmt.Errorf("shape: dim %d extent %d not divisible by %d", dim, s[dim], ways)
	}
	c := s.Clone()
	c[dim] /= ways
	return c, nil
}

// SplitInPlace divides dim by ways, mutating the receiver — for callers
// that own the shape (e.g. a Clone they hold exclusively, like the
// recursive driver's progressively divided shape table). Everyone else
// should use Split, which follows the package's immutability convention.
func (s Shape) SplitInPlace(dim int, ways int64) error {
	if dim < 0 || dim >= len(s) {
		return fmt.Errorf("shape: split dim %d out of range for %v", dim, s)
	}
	if ways <= 0 {
		return fmt.Errorf("shape: split ways must be positive, got %d", ways)
	}
	if s[dim]%ways != 0 {
		return fmt.Errorf("shape: dim %d extent %d not divisible by %d", dim, s[dim], ways)
	}
	s[dim] /= ways
	return nil
}

// CanSplit reports whether dim can be divided into ways equal parts.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (s Shape) CanSplit(dim int, ways int64) bool {
	return dim >= 0 && dim < len(s) && s[dim] >= ways && s[dim]%ways == 0
}

//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (s Shape) String() string {
	if len(s) == 0 {
		return "()"
	}
	buf := make([]byte, 0, 2+12*len(s))
	buf = append(buf, '(')
	for i, d := range s {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, d, 10)
	}
	buf = append(buf, ')')
	return string(buf)
}

// HumanBytes formats a byte count the way the paper's tables do (GB with one
// decimal, MB below 1 GB).
func HumanBytes(b int64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	switch {
	case b >= gb:
		return fmt.Sprintf("%.1fGB", float64(b)/float64(gb))
	case b >= mb:
		return fmt.Sprintf("%.1fMB", float64(b)/float64(mb))
	case b >= kb:
		return fmt.Sprintf("%.1fKB", float64(b)/float64(kb))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
