package shape

import (
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	cases := []struct {
		d    DType
		want int64
	}{
		{Float32, 4}, {Float16, 2}, {Float64, 8}, {Int32, 4}, {Int64, 8},
	}
	for _, c := range cases {
		if got := c.d.Size(); got != c.want {
			t.Errorf("%v.Size() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestElemsAndBytes(t *testing.T) {
	s := Of(8, 256, 56, 56)
	if got := s.Elems(); got != 8*256*56*56 {
		t.Fatalf("Elems = %d", got)
	}
	if got := s.Bytes(Float32); got != 8*256*56*56*4 {
		t.Fatalf("Bytes = %d", got)
	}
	if got := Of().Elems(); got != 1 {
		t.Fatalf("scalar Elems = %d, want 1", got)
	}
}

func TestSplit(t *testing.T) {
	s := Of(128, 1024)
	half, err := s.Split(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !half.Equal(Of(64, 1024)) {
		t.Fatalf("Split = %v", half)
	}
	if !s.Equal(Of(128, 1024)) {
		t.Fatalf("Split mutated receiver: %v", s)
	}
	if _, err := s.Split(1, 3); err == nil {
		t.Fatal("expected error for non-divisible split")
	}
	if _, err := s.Split(2, 2); err == nil {
		t.Fatal("expected error for out-of-range dim")
	}
	if _, err := s.Split(0, 0); err == nil {
		t.Fatal("expected error for zero ways")
	}
}

func TestCanSplit(t *testing.T) {
	s := Of(7, 8)
	if s.CanSplit(0, 2) {
		t.Error("7 should not split by 2")
	}
	if !s.CanSplit(1, 2) || !s.CanSplit(1, 8) {
		t.Error("8 should split by 2 and 8")
	}
	if s.CanSplit(1, 16) {
		t.Error("8 should not split by 16")
	}
	if s.CanSplit(-1, 2) || s.CanSplit(2, 2) {
		t.Error("out-of-range dims must not split")
	}
}

func TestSplitPreservesTotal(t *testing.T) {
	// Property: splitting any divisible dim by w divides Elems by w.
	f := func(a, b uint8, waysExp uint8) bool {
		d0 := int64(a%32+1) * 2
		d1 := int64(b%32 + 1)
		ways := int64(1) << (waysExp % 2) // 1 or 2; d0 is always even
		s := Of(d0, d1)
		out, err := s.Split(0, ways)
		if err != nil {
			return false
		}
		return out.Elems()*ways == s.Elems()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValid(t *testing.T) {
	if !Of(1, 2).Valid() {
		t.Error("positive shape should be valid")
	}
	if Of(1, 0).Valid() || Of(-1).Valid() {
		t.Error("non-positive extents should be invalid")
	}
}

func TestString(t *testing.T) {
	if got := Of(2, 3).String(); got != "(2,3)" {
		t.Errorf("String = %q", got)
	}
	if got := Of().String(); got != "()" {
		t.Errorf("scalar String = %q", got)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512B"},
		{2 << 10, "2.0KB"},
		{3 << 20, "3.0MB"},
		{4509715661, "4.2GB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.in); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
