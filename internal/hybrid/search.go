package hybrid

import (
	"fmt"
	"math"
	"sort"

	"tofu/internal/coarsen"
	"tofu/internal/dp"
	"tofu/internal/obs"
	"tofu/internal/plan"
	"tofu/internal/recursive"
	"tofu/internal/shape"
	"tofu/internal/topo"
)

// levelState is the boundary search for one candidate stage level: S stages
// of kSub GPUs each, boundaries drawn from the L-1 coarsened-group gaps.
type levelState struct {
	s       *search
	level   int
	S       int
	kSub    int64
	subTopo topo.Topology
	// depth is the recursion depth of one stage's partition search — how
	// many dp.Solve calls one segment costs at minimum.
	depth int
	// bw[j] is the bandwidth of the link stage j-1 hands off to stage j
	// across (j in [1, S-1]) — heterogeneous when the stage level is not
	// the outermost (boundary 4 of a 2x4x... machine crosses the spine
	// while 1-3 cross ethernet).
	bw []float64
	// lb1[g] is the admissible per-group cost floor (see buildLB1);
	// lbSuffix[g] = Σ_{i>=g} lb1[i]. +Inf marks an infeasible group.
	lb1      []float64
	lb1err   []error
	lbSuffix []float64
	// segs memoizes solved segments by [lo, hi) — the O(L²) core.
	segs map[segKey]*segment

	// floorScratch and bwScratch are reused by the hand-off floor — it runs
	// at every tree node, and the search is serial.
	floorScratch []float64
	bwScratch    []float64

	best     []int
	bestCost float64
	haveBest bool

	// trace is this level's "hybrid.level" span (nil when tracing is off);
	// segment solves hang their "hybrid.segment" spans under it.
	trace *obs.Span
}

// segment is one memoized contiguous-segment solution.
type segment struct {
	plan *plan.Plan
	cost float64 // bandwidth-weighted comm time on the stage sub-machine
	err  error
}

func (s *search) newLevelState(level int) (*levelState, error) {
	L := len(s.c.Groups)
	ls := &levelState{s: s, level: level, segs: make(map[segKey]*segment)}
	kSub, S := int64(1), int64(1)
	for li, lv := range s.tp.Levels {
		if li < level {
			kSub *= lv.GroupSize
		} else {
			S *= lv.GroupSize
		}
	}
	if S > int64(L) {
		return nil, fmt.Errorf("level %d (%s): %d stages exceed %d pipeline groups",
			level, s.tp.Levels[level].Name, S, L)
	}
	ls.S, ls.kSub = int(S), kSub

	// The stage sub-machine: the levels below the stage level, unchanged, so
	// P2PBandwidth still matches Levels[0] and Validate holds.
	hw := s.tp.HW
	hw.NumGPUs = int(kSub)
	ls.subTopo = topo.Topology{
		Name:   s.tp.Name + "/stage",
		HW:     hw,
		Levels: append([]topo.Level(nil), s.tp.Levels[:level]...),
	}
	if err := ls.subTopo.Validate(); err != nil {
		return nil, fmt.Errorf("level %d: stage sub-machine invalid: %w", level, err)
	}
	ls.depth = 0
	for li := 0; li < level; li++ {
		ls.depth += len(recursive.Factorize(s.tp.Levels[li].GroupSize))
	}

	// Boundary link bandwidths, by full-machine GPU index: the hand-off from
	// stage j-1 to stage j crosses the link between its last and first GPU.
	ls.bw = make([]float64, ls.S)
	for j := 1; j < ls.S; j++ {
		ls.bw[j] = s.tp.LinkBandwidth(j*int(kSub)-1, j*int(kSub))
	}
	ls.buildLB1()
	return ls, nil
}

// buildLB1 computes the admissible per-group cost floor: for each coarsened
// group g, extract the single-group subgraph, coarsen it, and sum
// dp.LowerBound over the sub-machine's (factor, level) pool weighted by each
// level's bandwidth. Soundness: a single-group extraction severs every
// cross-group tensor union, so its coarsened variables refine any enclosing
// segment's — per-slot dense-table minima can only drop — and slots never
// span groups, so summing groupwise floors under-counts the segment's
// LowerBound, which itself under-counts the true per-factor DP cost at the
// segment root; the factor deltas only shrink down the recursion (pricing at
// original shapes, Lemma 1), so the pool sum bounds the full stage cost from
// below. A group that cannot split f ways makes every segment containing it
// infeasible for the same reason (the single-group problem has strictly
// fewer sharding constraints).
func (ls *levelState) buildLB1() {
	L := len(ls.s.c.Groups)
	ls.lb1 = make([]float64, L)
	ls.lb1err = make([]error, L)
	for g := 0; g < L; g++ {
		ls.lb1[g], ls.lb1err[g] = ls.groupFloor(g)
	}
	ls.lbSuffix = make([]float64, L+1)
	for g := L - 1; g >= 0; g-- {
		ls.lbSuffix[g] = ls.lbSuffix[g+1] + ls.lb1[g]
	}
}

func (ls *levelState) groupFloor(g int) (float64, error) {
	sub, err := ls.s.extract(g, g+1)
	if err != nil {
		return math.Inf(1), err
	}
	co, err := coarsen.Coarsen(sub.G)
	if err != nil {
		return math.Inf(1), fmt.Errorf("group %d: %w", g, err)
	}
	shapes := make(map[int]shape.Shape, len(sub.G.Tensors))
	for _, t := range sub.G.Tensors {
		shapes[t.ID] = t.Shape
	}
	total := 0.0
	// One LowerBound per distinct prime factor, shared across the levels it
	// appears at; a factor's floor is charged once per pool entry at that
	// entry's bandwidth.
	perF := make(map[int64]float64)
	var reuse dp.EvalReuse
	for li := 0; li < ls.level; li++ {
		for _, f := range recursive.Factorize(ls.s.tp.Levels[li].GroupSize) {
			lb, ok := perF[f]
			if !ok {
				ls.s.stats.LBQueries++
				lb, err = dp.LowerBound(&dp.Problem{
					Coarse:      co,
					K:           f,
					Shapes:      shapes,
					DType:       ls.s.opts.DType,
					MaxStates:   ls.s.opts.MaxStates,
					Parallelism: ls.s.opts.Parallelism,
					Cache:       ls.s.cache,
				}, &reuse)
				if err != nil {
					return math.Inf(1), fmt.Errorf("group %d cannot split %d ways: %w", g, f, err)
				}
				perF[f] = lb
			}
			total += lb / ls.s.tp.Levels[li].Bandwidth
		}
	}
	return total, nil
}

// segment returns the memoized partition solution for groups [lo, hi),
// solving it on first touch: one full topology-aware recursive search on the
// stage sub-machine. Shared across every boundary set — and, via the memo,
// across the branch-and-bound and oracle paths of the same Partition call.
func (ls *levelState) segment(lo, hi int) *segment {
	key := segKey{lo, hi}
	if sg, ok := ls.segs[key]; ok {
		return sg
	}
	sg := &segment{}
	ls.segs[key] = sg
	ls.s.stats.Segments++
	sub, err := ls.s.extract(lo, hi)
	if err != nil {
		sg.err = err
		return sg
	}
	ssp := ls.trace.Child("hybrid.segment")
	ssp.SetInt("lo", int64(lo))
	ssp.SetInt("hi", int64(hi))
	defer ssp.End()
	var inner recursive.SearchStats
	p, err := recursive.Partition(sub.G, ls.kSub, recursive.Options{
		DType:       ls.s.opts.DType,
		MaxStates:   ls.s.opts.MaxStates,
		Parallelism: ls.s.opts.Parallelism,
		Cache:       ls.s.cache,
		Topology:    &ls.subTopo,
		Stats:       &inner,
		Trace:       ssp,
		Cancel:      ls.s.opts.Cancel,
	})
	if ls.subTopo.Hierarchical() {
		ls.s.stats.DPSolves = satAdd(ls.s.stats.DPSolves, int64(inner.DPSolves))
		ls.s.stats.LBQueries = satAdd(ls.s.stats.LBQueries, int64(inner.LBQueries))
	} else {
		// Flat sub-machine: one Solve per prime factor, no ordering search.
		ls.s.stats.DPSolves = satAdd(ls.s.stats.DPSolves, int64(ls.depth))
	}
	if err != nil {
		sg.err = fmt.Errorf("groups [%d,%d) on %d GPUs: %w", lo, hi, ls.kSub, err)
		return sg
	}
	sg.plan = p
	sg.cost = recursive.CommTime(p, ls.subTopo)
	ssp.SetFloat("cost", sg.cost)
	return sg
}

// handoffFloor bounds the remaining hand-off cost from below after placing
// boundary j at position b: the S-1-j boundaries still to place must each
// use a distinct position > b, and their bandwidths are exactly
// bw[j+1..S-1]. Pair the R smallest candidate crossings (ascending) with
// those bandwidths sorted ascending — by the rearrangement inequality,
// Σ x_i/b_i over a fixed bandwidth multiset is minimized when x and b are
// similarly sorted, and replacing the true crossings with the R smallest
// candidates only lowers each term. Hence the floor never exceeds any
// completion's true hand-off cost.
func (ls *levelState) handoffFloor(b, j int) float64 {
	r := ls.S - 1 - j
	if r == 0 {
		return 0
	}
	L := len(ls.s.c.Groups)
	cand := ls.floorScratch[:0]
	for p := b + 1; p < L; p++ {
		cand = append(cand, ls.s.xb[p])
	}
	sort.Float64s(cand)
	ls.floorScratch = cand
	bws := ls.remainingBW(j)
	total := 0.0
	for i := 0; i < r; i++ {
		total += cand[i] / bws[i]
	}
	return total
}

// remainingBW returns bw[j+1..S-1] sorted ascending.
func (ls *levelState) remainingBW(j int) []float64 {
	out := ls.bwScratch[:0]
	out = append(out, ls.bw[j+1:]...)
	sort.Float64s(out)
	ls.bwScratch = out
	return out
}

// run seeds the incumbent with the balanced boundary set, then walks the
// boundary tree depth-first in lexicographic order, pruning subtrees whose
// admissible bound exceeds the incumbent (never in Exhaustive mode). The
// leaf offer rule — strict improvement, or equal cost and lexicographically
// smaller — makes the winner the lex-first minimum with or without the seed
// and with or without pruning, so branch-and-bound plans are byte-identical
// to the oracle's.
func (ls *levelState) run() ([]int, bool) {
	ls.s.stats.BoundarySets = satAdd(ls.s.stats.BoundarySets,
		binomial(len(ls.s.c.Groups)-1, ls.S-1))
	ls.s.stats.FlatDPSolves = satAdd(ls.s.stats.FlatDPSolves,
		satMul(binomial(len(ls.s.c.Groups)-1, ls.S-1), satMul(int64(ls.S), int64(ls.depth))))

	if !ls.s.opts.Exhaustive {
		if seed, cost, ok := ls.balancedSeed(); ok {
			ls.offer(seed, cost)
		}
	}
	ls.dfs(1, 0, 0, make([]int, 0, ls.S-1))
	if !ls.haveBest {
		return nil, false
	}
	return ls.best, true
}

// balancedSeed costs the evenly spread boundary set b_j = round(j*L/S) using
// the same accumulation arithmetic as the tree walk, so an equal-cost tree
// leaf compares bit-for-bit against it.
func (ls *levelState) balancedSeed() ([]int, float64, bool) {
	L := len(ls.s.c.Groups)
	set := make([]int, ls.S-1)
	for j := 1; j < ls.S; j++ {
		b := (j*L + ls.S/2) / ls.S
		if b < j {
			b = j // keep strictly increasing with room for earlier stages
		}
		if max := L - (ls.S - j); b > max {
			b = max
		}
		set[j-1] = b
	}
	for j := 1; j < len(set); j++ {
		if set[j] <= set[j-1] {
			set[j] = set[j-1] + 1
		}
	}
	cost, ok := ls.leafCost(set)
	return set, cost, ok
}

// leafCost prices a complete boundary set with the identical left-to-right
// accumulation the DFS uses.
func (ls *levelState) leafCost(set []int) (float64, bool) {
	L := len(ls.s.c.Groups)
	g, prev := 0.0, 0
	for j := 1; j < ls.S; j++ {
		b := set[j-1]
		sg := ls.segment(prev, b)
		if sg.err != nil {
			ls.s.addErr(sg.err)
			return 0, false
		}
		g = g + sg.cost + ls.s.xb[b]/ls.bw[j]
		prev = b
	}
	last := ls.segment(prev, L)
	if last.err != nil {
		ls.s.addErr(last.err)
		return 0, false
	}
	return g + last.cost, true
}

// dfs places boundary j (1-based) at every position after prev, accumulating
// the exact prefix cost g. Bounds run twice per child: before the segment
// solve (prefix floor + suffix floor — this is where dp.Solve calls are
// saved) and after it (exact prefix + suffix floor).
func (ls *levelState) dfs(j, prev int, g float64, chosen []int) {
	if ls.s.opts.Cancel.Cancelled() {
		// Wind the walk down; the incumbent (balanced seed or an earlier
		// leaf) ships as the degraded answer.
		ls.s.cancelled = true
		return
	}
	ls.s.stats.Expanded++
	L := len(ls.s.c.Groups)
	bound := !ls.s.opts.Exhaustive
	for b := prev + 1; b <= L-(ls.S-j); b++ {
		hb := ls.s.xb[b] / ls.bw[j]
		if bound && ls.haveBest {
			// lbSuffix[prev] covers both this child's segment [prev,b) and
			// everything after b, since suffix sums telescope.
			ls.s.stats.LBQueries++
			pre := g + ls.lbSuffix[prev] + hb + ls.handoffFloor(b, j)
			if pre > ls.bestCost+pruneSlack(ls.bestCost) {
				ls.s.stats.Pruned++
				continue
			}
		}
		sg := ls.segment(prev, b)
		if sg.err != nil {
			ls.s.addErr(sg.err)
			continue
		}
		g2 := g + sg.cost + hb
		if bound && ls.haveBest && j < ls.S-1 {
			ls.s.stats.LBQueries++
			post := g2 + ls.lbSuffix[b] + ls.handoffFloor(b, j)
			if post > ls.bestCost+pruneSlack(ls.bestCost) {
				ls.s.stats.Pruned++
				continue
			}
		}
		chosen = append(chosen, b)
		if j == ls.S-1 {
			last := ls.segment(b, L)
			if last.err != nil {
				ls.s.addErr(last.err)
			} else {
				ls.s.stats.Leaves++
				ls.offer(chosen, g2+last.cost)
			}
		} else {
			ls.dfs(j+1, b, g2, chosen)
		}
		chosen = chosen[:len(chosen)-1]
	}
}

// offer installs a complete boundary set as the incumbent on strict
// improvement, or on a tie when it is lexicographically smaller — the
// exhaustive enumeration's first-wins order.
func (ls *levelState) offer(set []int, cost float64) {
	if ls.haveBest && cost >= ls.bestCost &&
		!(cost == ls.bestCost && lexLessInts(set, ls.best)) {
		return
	}
	ls.best = append(ls.best[:0], set...)
	ls.bestCost = cost
	ls.haveBest = true
}
