// Package hybrid implements the joint hybrid-parallelism search: segment the
// coarsened graph into contiguous pipeline stages mapped onto a slow
// interconnect level, run the existing topology-aware partition search within
// each stage on the fast sub-machine, and search the stage boundaries with
// branch-and-bound (the RaNNC-style staging of PAPERS.md applied to Tofu's
// recursive DP).
//
// The performance core is a segment memo: a depth-L coarsened graph has only
// O(L²) distinct contiguous segments, so each segment's partition search runs
// exactly once and is shared across every candidate boundary set, while
// admissible lower bounds — per-group dense-table minima plus hand-off
// transfer floors priced at the stage level's links — prune the boundary tree
// the way the PR 5 ordering search pruned factor orderings. Pruning is strict
// and ties break by the exhaustive enumeration's lexicographic order, so the
// chosen plan is byte-identical to the Options.Exhaustive oracle at any
// Parallelism.
//
//tofu:searchpath reachable from dp.Solve / recursive.Partition; nodeterm enforces determinism
package hybrid

import (
	"fmt"
	"math"
	"sort"

	"tofu/internal/cancel"
	"tofu/internal/coarsen"
	"tofu/internal/dp"
	"tofu/internal/graph"
	"tofu/internal/graphgen"
	"tofu/internal/obs"
	"tofu/internal/plan"
	"tofu/internal/shape"
	"tofu/internal/topo"
)

// Options tune the joint search.
type Options struct {
	// Topology is the machine (required, hierarchical): stages map onto the
	// chosen level's groups, each stage's partition search runs on the
	// sub-machine below that level.
	Topology *topo.Topology
	// Level is the interconnect level the pipeline stages straddle
	// (1..len(Levels)-1). 0 searches every candidate level and keeps the
	// cheapest (ties to the innermost).
	Level int
	// DType prices communication (zero value = float32, as everywhere).
	DType shape.DType
	// MaxStates bounds each stage DP's frontier (see dp.Problem.MaxStates).
	MaxStates int
	// Parallelism is the per-stage DP worker count; the chosen plan is
	// byte-identical at any setting (the boundary search itself is serial
	// and deterministic).
	Parallelism int
	// Gen configures the per-stage execution structures (Sec 6 toggles).
	Gen graphgen.Options
	// Cache shares priced strategy enumerations across segments and stages
	// (nil = one fresh cache for this search; segments still share it).
	Cache *dp.PriceCache
	// Exhaustive disables the branch-and-bound pruning and enumerates every
	// boundary set in lexicographic order — the differential-test oracle.
	// Chosen plans are byte-identical either way.
	Exhaustive bool
	// Stats, when non-nil, receives the search-effort counters.
	Stats *Stats
	// Trace, if non-nil, records the joint search's span tree: "coarsen",
	// per-candidate-level "hybrid.level" spans, and under each a
	// "hybrid.segment" span per memoized segment solve (wrapping that
	// segment's full recursive search). nil records nothing and costs
	// nothing; spans never influence the chosen plan.
	Trace *obs.Span
	// Cancel, if non-nil, is polled at every boundary-tree node and plumbed
	// into each segment's recursive search. On a tripped token the search
	// returns its best incumbent (the balanced seed counts) marked
	// plan.Degraded, or the token's reason when nothing completed. nil (the
	// default) costs a pointer comparison per poll.
	Cancel *cancel.Token
}

// Stats reports the joint search's effort.
type Stats struct {
	// Level and Stages describe the winning configuration: the interconnect
	// level the pipeline straddles and how many stages it has.
	Level  int `json:"level"`
	Stages int `json:"stages"`
	// BoundarySets is the search-space size summed over the levels tried:
	// C(L-1, S-1) candidate boundary sets per level.
	BoundarySets int64 `json:"boundary_sets"`
	// Leaves is how many complete boundary sets were actually costed;
	// Expanded and Pruned count boundary-tree nodes expanded vs discarded
	// because their admissible bound exceeded the incumbent.
	Leaves   int64 `json:"leaves"`
	Expanded int64 `json:"expanded"`
	Pruned   int64 `json:"pruned"`
	// Segments counts distinct contiguous segments whose partition search
	// actually ran — the memo's O(L²) ceiling.
	Segments int64 `json:"segments"`
	// DPSolves is the number of dp.Solve executions across all solved
	// segments. FlatDPSolves is what exhaustive boundary enumeration without
	// the segment memo would have run: boundary sets × stages × recursion
	// depth, saturating.
	DPSolves     int64 `json:"dp_solves"`
	FlatDPSolves int64 `json:"flat_dp_solves"`
	// LBQueries counts admissible lower-bound evaluations (the per-group
	// dp.LowerBound table plus per-node bound checks).
	LBQueries int64 `json:"lb_queries"`
	// BestCost is the winning modeled communication time in seconds:
	// Σ per-stage bandwidth-weighted comm + Σ boundary hand-offs.
	BestCost float64 `json:"best_cost"`
}

// Stage is one pipeline stage of the chosen plan.
type Stage struct {
	// Groups is the [lo, hi) coarsened-group range this stage executes.
	Groups [2]int
	// Workers is the stage's GPU count (the sub-machine size).
	Workers int64
	// Topo is the stage sub-machine (the machine's levels below the stage
	// level).
	Topo topo.Topology
	// G is the extracted stage subgraph; Sub maps its IDs back to the full
	// graph.
	G   *graph.Graph
	Sub *graph.Subgraphed
	// Plan is the stage's partition plan in subgraph IDs; Sharded is its
	// per-worker execution structure.
	Plan    *plan.Plan
	Sharded *graphgen.Sharded
	// HandoffBytes is the tensor traffic crossing into the next stage each
	// iteration (0 for the last stage); HandoffBandwidth is the per-GPU
	// bandwidth of the link it crosses.
	HandoffBytes     float64
	HandoffBandwidth float64
}

// Result is the outcome of the joint search.
type Result struct {
	// Plan is the combined stage-annotated plan in full-graph IDs.
	Plan *plan.Plan
	// Level is the chosen stage interconnect level.
	Level int
	// Cost is the modeled communication time per iteration (seconds).
	Cost float64
	// Stages lists the chosen stages in group order.
	Stages []Stage
	// Stats is the search effort.
	Stats Stats
}

// Partition runs the joint hybrid-parallelism search for a training graph on
// a hierarchical machine with k = Topology.NumGPUs() workers.
func Partition(g *graph.Graph, k int64, opts Options) (*Result, error) {
	tp := opts.Topology
	if tp == nil {
		return nil, fmt.Errorf("hybrid: a topology is required")
	}
	if err := tp.Validate(); err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	if !tp.Hierarchical() {
		return nil, fmt.Errorf("hybrid: topology %q is flat; pipeline stages need a level to straddle", tp.Name)
	}
	if got := int64(tp.NumGPUs()); got != k {
		return nil, fmt.Errorf("hybrid: topology %q has %d GPUs, want %d workers", tp.Name, got, k)
	}
	if opts.Level < 0 || opts.Level >= len(tp.Levels) {
		return nil, fmt.Errorf("hybrid: stage level %d out of range [1, %d] (0 = auto)",
			opts.Level, len(tp.Levels)-1)
	}
	csp := opts.Trace.Child("coarsen")
	c, err := coarsen.Coarsen(g)
	if err != nil {
		return nil, err
	}
	csp.SetInt("groups", int64(len(c.Groups)))
	csp.End()
	if len(c.Groups) < 2 {
		return nil, fmt.Errorf("hybrid: graph coarsens to %d group(s); pipelining needs at least 2", len(c.Groups))
	}
	cache := opts.Cache
	if cache == nil {
		cache = dp.NewPriceCache()
	}
	s := &search{g: g, c: c, tp: *tp, opts: opts, cache: cache,
		subs: make(map[segKey]*graph.Subgraphed)}
	s.buildGroupOf()
	s.buildHandoffs()

	levels := []int{opts.Level}
	if opts.Level == 0 {
		levels = levels[:0]
		for l := 1; l < len(tp.Levels); l++ {
			levels = append(levels, l)
		}
	}
	var (
		bestLS  *levelState
		bestSet []int
	)
	for _, level := range levels {
		if opts.Cancel.Cancelled() {
			s.cancelled = true
			break
		}
		lsp := opts.Trace.Child("hybrid.level")
		lsp.SetInt("level", int64(level))
		ls, err := s.newLevelState(level)
		if err != nil {
			s.addErr(err)
			lsp.End()
			continue
		}
		ls.trace = lsp
		set, ok := ls.run()
		if ok {
			lsp.SetFloat("best_cost", ls.bestCost)
		}
		lsp.End()
		if !ok {
			continue
		}
		// Strict improvement keeps the innermost feasible level on ties.
		if bestLS == nil || ls.bestCost < bestLS.bestCost {
			bestLS, bestSet = ls, set
		}
	}
	if bestLS == nil {
		if s.cancelled {
			return nil, cancel.Reason(opts.Cancel.Err(), "hybrid: cancelled before any stage assignment completed")
		}
		return nil, s.infeasibleErr()
	}
	s.stats.Level = bestLS.level
	s.stats.Stages = bestLS.S
	s.stats.BestCost = bestLS.bestCost
	res, err := s.assemble(bestLS, bestSet)
	if err != nil {
		return nil, err
	}
	res.Stats = s.stats
	if opts.Stats != nil {
		*opts.Stats = s.stats
	}
	return res, nil
}

// search holds the level-independent state of one Partition call.
type search struct {
	g     *graph.Graph
	c     *coarsen.Coarse
	tp    topo.Topology
	opts  Options
	cache *dp.PriceCache

	// groupOf maps full-graph node ID to its coarsened group index.
	groupOf []int
	// xb[b] is the tensor traffic crossing group boundary b (between groups
	// b-1 and b), for b in [1, L-1] — level-independent.
	xb []float64

	// subs memoizes segment extractions (shared across candidate levels).
	subs map[segKey]*graph.Subgraphed

	stats   Stats
	errs    []error
	errSeen map[string]bool
	// cancelled flips when the token trips (polled here or surfaced by a
	// cancelled segment search); the walk winds down and the incumbent — if
	// any — ships as a degraded plan.
	cancelled bool
}

type segKey struct{ lo, hi int }

func (s *search) buildGroupOf() {
	s.groupOf = make([]int, len(s.g.Nodes))
	for gi, grp := range s.c.Groups {
		for _, sl := range grp.Slots {
			for _, op := range sl.Ops {
				s.groupOf[op.ID] = gi
			}
		}
	}
}

// buildHandoffs computes the per-boundary crossing traffic: every produced
// tensor contributes its bytes to each group boundary between the earliest
// and latest group touching it (activations flow forward, gradients
// backward; both transit every boundary in between). Producer-less tensors
// (inputs, weights, optimizer state) are stage-resident feeds and never
// cross.
func (s *search) buildHandoffs() {
	L := len(s.c.Groups)
	diff := make([]float64, L+1)
	for _, t := range s.g.Tensors {
		if t.Producer == nil || len(t.Consumers) == 0 {
			continue
		}
		gmin := s.groupOf[t.Producer.ID]
		gmax := gmin
		for _, cn := range t.Consumers {
			gc := s.groupOf[cn.ID]
			if gc < gmin {
				gmin = gc
			}
			if gc > gmax {
				gmax = gc
			}
		}
		if gmin == gmax {
			continue
		}
		b := float64(t.Bytes())
		diff[gmin+1] += b
		diff[gmax+1] -= b
	}
	s.xb = make([]float64, L)
	run := 0.0
	for b := 1; b < L; b++ {
		run += diff[b]
		s.xb[b] = run
	}
}

// extract returns the memoized subgraph of groups [lo, hi).
func (s *search) extract(lo, hi int) (*graph.Subgraphed, error) {
	key := segKey{lo, hi}
	if sub, ok := s.subs[key]; ok {
		return sub, nil
	}
	sub, err := s.g.Subgraph(func(n *graph.Node) bool {
		gi := s.groupOf[n.ID]
		return gi >= lo && gi < hi
	})
	if err != nil {
		return nil, fmt.Errorf("hybrid: extracting groups [%d,%d): %w", lo, hi, err)
	}
	s.subs[key] = sub
	return sub, nil
}

func (s *search) addErr(err error) {
	if err == nil {
		return
	}
	if cancel.IsCancellation(err) {
		// A cancelled segment proves nothing about feasibility; keep the
		// reason out of the diagnostics and wind the walk down.
		s.cancelled = true
		return
	}
	if s.errSeen == nil {
		s.errSeen = make(map[string]bool)
	}
	msg := err.Error()
	if s.errSeen[msg] {
		return
	}
	s.errSeen[msg] = true
	s.errs = append(s.errs, err)
}

// infeasibleErr aggregates the distinct failure reasons in sorted order, so
// a fully infeasible search reports every way it failed deterministically.
func (s *search) infeasibleErr() error {
	if len(s.errs) == 0 {
		return fmt.Errorf("hybrid: no feasible stage assignment on topology %q", s.tp.Name)
	}
	msgs := make([]string, len(s.errs))
	for i, e := range s.errs {
		msgs[i] = e.Error()
	}
	sort.Strings(msgs)
	out := fmt.Sprintf("hybrid: no feasible stage assignment on topology %q:", s.tp.Name)
	for _, m := range msgs {
		out += "\n  " + m
	}
	return fmt.Errorf("%s", out)
}

// pruneSlack mirrors the ordering search's float guard: bounds within this
// slack of the incumbent are never pruned, so floating-point noise can only
// cost extra work, never the optimum.
func pruneSlack(cost float64) float64 {
	s := 1e-9 * math.Abs(cost)
	if s < 1e-12 {
		return 1e-12
	}
	return s
}

// lexLessInts reports a < b lexicographically (equal lengths).
//
//tofu:hotpath tie-break comparator on the boundary-search hot path
func lexLessInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// satAdd and satMul saturate at MaxInt64 — the flat-enumeration baseline
// counters can overflow on deep graphs and must degrade gracefully.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// binomial returns C(n, k), saturating.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := int64(1)
	for i := 1; i <= k; i++ {
		out = satMul(out, int64(n-k+i))
		if out == math.MaxInt64 {
			return out
		}
		out /= int64(i)
	}
	return out
}
