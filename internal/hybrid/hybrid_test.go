package hybrid_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tofu/internal/hybrid"
	"tofu/internal/models"
	"tofu/internal/plan"
	"tofu/internal/topo"
)

// diffCases are the differential-test profiles: every hierarchical shape the
// repo ships (2-, 3- and 4-level), with the model sized so the exhaustive
// oracle stays tractable (boundary sets = C(L-1, S-1)).
var diffCases = []struct {
	prof  string
	cfg   models.Config
	level int // 0 = auto
}{
	{"dgx1", models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}, 0},
	{"cluster-2x8", models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}, 0},
	{"cluster-4x2x8", models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}, 0},
	{"cluster-2x4x2x12", models.Config{Family: "mlp", Depth: 4, Width: 384, Batch: 48}, 2},
}

func planBytes(t *testing.T, p *plan.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("serializing plan: %v", err)
	}
	return buf.Bytes()
}

// TestHybridMatchesOracle is the tentpole differential test: the
// branch-and-bound joint search must return byte-identical plans to the
// exhaustive boundary oracle on every feasible profile, at Parallelism 1, 2
// and 8.
func TestHybridMatchesOracle(t *testing.T) {
	for _, c := range diffCases {
		tp, err := topo.Profile(c.prof)
		if err != nil {
			t.Fatal(err)
		}
		m, err := models.Build(c.cfg)
		if err != nil {
			t.Fatalf("building %s: %v", c.cfg, err)
		}
		k := int64(tp.NumGPUs())
		oracle, err := hybrid.Partition(m.G, k, hybrid.Options{
			Topology: &tp, Level: c.level, Parallelism: 1, Exhaustive: true,
		})
		if err != nil {
			t.Fatalf("%s: oracle: %v", c.prof, err)
		}
		want := planBytes(t, oracle.Plan)
		for _, par := range []int{1, 2, 8} {
			var st hybrid.Stats
			res, err := hybrid.Partition(m.G, k, hybrid.Options{
				Topology: &tp, Level: c.level, Parallelism: par, Stats: &st,
			})
			if err != nil {
				t.Fatalf("%s par %d: %v", c.prof, par, err)
			}
			if got := planBytes(t, res.Plan); !bytes.Equal(got, want) {
				t.Errorf("%s par %d: branch-and-bound plan differs from exhaustive oracle", c.prof, par)
			}
			if res.Cost != oracle.Cost {
				t.Errorf("%s par %d: cost %g, oracle %g", c.prof, par, res.Cost, oracle.Cost)
			}
			if res.Level != oracle.Level {
				t.Errorf("%s par %d: level %d, oracle %d", c.prof, par, res.Level, oracle.Level)
			}
		}
	}
}

// TestHybridPruningFloor enforces the tentpole's acceptance gate in-tree:
// on the 3- and 4-level cluster profiles the segment memo plus
// branch-and-bound must run >= 10x fewer dp.Solve calls than exhaustive
// boundary enumeration would.
func TestHybridPruningFloor(t *testing.T) {
	cases := []struct {
		prof  string
		cfg   models.Config
		level int
	}{
		{"cluster-4x2x8", models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}, 0},
		{"cluster-2x4x2x12", models.Config{Family: "mlp", Depth: 4, Width: 384, Batch: 48}, 2},
	}
	for _, c := range cases {
		tp, err := topo.Profile(c.prof)
		if err != nil {
			t.Fatal(err)
		}
		m, err := models.Build(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		var st hybrid.Stats
		if _, err := hybrid.Partition(m.G, int64(tp.NumGPUs()), hybrid.Options{
			Topology: &tp, Level: c.level, Parallelism: 1, Stats: &st,
		}); err != nil {
			t.Fatalf("%s: %v", c.prof, err)
		}
		if st.DPSolves*10 > st.FlatDPSolves {
			t.Errorf("%s: %d dp solves vs %d flat — below the 10x floor",
				c.prof, st.DPSolves, st.FlatDPSolves)
		}
		if st.Pruned == 0 {
			t.Errorf("%s: branch-and-bound pruned nothing", c.prof)
		}
	}
}

// TestHybridPlanRoundTrip checks the stage-annotated export survives the
// validating reader and re-serializes byte-identically.
func TestHybridPlanRoundTrip(t *testing.T) {
	tp, err := topo.Profile("cluster-2x8")
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.Build(models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hybrid.Partition(m.G, int64(tp.NumGPUs()), hybrid.Options{Topology: &tp, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := planBytes(t, res.Plan)
	ex, err := plan.ReadJSON(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("stage-annotated plan rejected by reader: %v", err)
	}
	if ex.Pipeline == nil || len(ex.Pipeline.Stages) != len(res.Stages) {
		t.Fatalf("pipeline descriptor lost in round trip: %+v", ex.Pipeline)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ex); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("stage-annotated plan changed across a read/write round trip")
	}
}

// TestHybridStageInvariants checks the combined plan's structure: steps
// grouped by nondecreasing stage with per-stage multiplier chains, a
// contiguous stage cover, equal stage sub-machines, and a zero hand-off on
// the last stage.
func TestHybridStageInvariants(t *testing.T) {
	tp, err := topo.Profile("cluster-4x2x8")
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.Build(models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hybrid.Partition(m.G, int64(tp.NumGPUs()), hybrid.Options{Topology: &tp, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Plan
	if p.K != int64(tp.NumGPUs()) {
		t.Errorf("combined plan K = %d, want %d", p.K, tp.NumGPUs())
	}
	if p.Pipeline == nil {
		t.Fatal("combined plan has no pipeline descriptor")
	}
	if p.Pipeline.Level != res.Level {
		t.Errorf("descriptor level %d, result level %d", p.Pipeline.Level, res.Level)
	}
	prevHi := 0
	for si, st := range p.Pipeline.Stages {
		if st.Groups[0] != prevHi {
			t.Errorf("stage %d groups start at %d, want %d", si, st.Groups[0], prevHi)
		}
		prevHi = st.Groups[1]
		if st.Workers != res.Stages[si].Workers {
			t.Errorf("stage %d: descriptor workers %d, stage workers %d", si, st.Workers, res.Stages[si].Workers)
		}
		if got := res.Stages[si]; got.Sharded == nil || got.Plan == nil || got.G == nil {
			t.Fatalf("stage %d missing execution structures", si)
		}
	}
	if last := p.Pipeline.Stages[len(p.Pipeline.Stages)-1]; last.HandoffBytes != 0 {
		t.Errorf("last stage hands off %g bytes", last.HandoffBytes)
	}
	stage, prod := 0, int64(1)
	for i, s := range p.Steps {
		if s.Stage < stage {
			t.Fatalf("step %d: stage %d after stage %d", i, s.Stage, stage)
		}
		if s.Stage > stage {
			stage, prod = s.Stage, 1
		}
		if s.Multiplier != prod {
			t.Errorf("step %d: multiplier %d, want %d (stage %d restart)", i, s.Multiplier, prod, stage)
		}
		prod *= s.K
	}
	if len(p.FinalShapes) == 0 {
		t.Error("combined plan has no final shapes")
	}
}

// TestHybridInfeasible covers the error paths: more stages than pipeline
// groups, flat machines, worker mismatches and out-of-range levels.
func TestHybridInfeasible(t *testing.T) {
	m, err := models.Build(models.Config{Family: "mlp", Depth: 4, Width: 384, Batch: 48})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := topo.Profile("cluster-2x4x2x12")
	if err != nil {
		t.Fatal(err)
	}
	// Level 1 wants 16 stages; mlp-4 coarsens to 15 groups.
	if _, err := hybrid.Partition(m.G, int64(deep.NumGPUs()), hybrid.Options{
		Topology: &deep, Level: 1, Parallelism: 1,
	}); err == nil || !strings.Contains(err.Error(), "stages exceed") {
		t.Errorf("oversubscribed level: got %v", err)
	}
	if _, err := hybrid.Partition(m.G, int64(deep.NumGPUs()), hybrid.Options{
		Topology: &deep, Level: len(deep.Levels), Parallelism: 1,
	}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range level: got %v", err)
	}
	if _, err := hybrid.Partition(m.G, int64(deep.NumGPUs())*2, hybrid.Options{
		Topology: &deep, Parallelism: 1,
	}); err == nil || !strings.Contains(err.Error(), "want") {
		t.Errorf("worker mismatch: got %v", err)
	}
	flat, err := topo.Profile("p2.8xlarge")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hybrid.Partition(m.G, int64(flat.NumGPUs()), hybrid.Options{
		Topology: &flat, Parallelism: 1,
	}); err == nil || !strings.Contains(err.Error(), "flat") {
		t.Errorf("flat machine: got %v", err)
	}
	if _, err := hybrid.Partition(m.G, int64(deep.NumGPUs()), hybrid.Options{Parallelism: 1}); err == nil {
		t.Error("nil topology accepted")
	}
}
