package hybrid

import (
	"fmt"

	"tofu/internal/graph"
	"tofu/internal/graphgen"
	"tofu/internal/partition"
	"tofu/internal/plan"
	"tofu/internal/shape"
)

// assemble materializes the winning boundary set: per-stage execution
// structures plus one combined stage-annotated plan in full-graph IDs, with
// per-stage multipliers restarting at 1 (each stage's kSub workers divide
// only that stage's tensors).
func (s *search) assemble(ls *levelState, set []int) (*Result, error) {
	L := len(s.c.Groups)
	bounds := make([]int, 0, ls.S+1)
	bounds = append(bounds, 0)
	bounds = append(bounds, set...)
	bounds = append(bounds, L)

	res := &Result{Level: ls.level, Cost: ls.bestCost}
	combined := &plan.Plan{
		K:           ls.kSub * int64(ls.S),
		FinalShapes: make(map[int]shape.Shape),
	}
	info := &plan.PipelineInfo{Level: ls.level}
	for si := 0; si+1 < len(bounds); si++ {
		lo, hi := bounds[si], bounds[si+1]
		sg := ls.segment(lo, hi)
		if sg.err != nil {
			// Unreachable: the winning set's segments all solved feasibly.
			return nil, sg.err
		}
		sub := s.subs[segKey{lo, hi}]
		sh, err := graphgen.Generate(sub.G, sg.plan, s.opts.Gen)
		if err != nil {
			return nil, fmt.Errorf("hybrid: stage %d graph generation: %w", si, err)
		}
		hb, hbw := 0.0, 0.0
		if hi < L {
			hb = s.xb[hi]
			hbw = ls.bw[si+1]
		}
		res.Stages = append(res.Stages, Stage{
			Groups:           [2]int{lo, hi},
			Workers:          ls.kSub,
			Topo:             ls.subTopo,
			G:                sub.G,
			Sub:              sub,
			Plan:             sg.plan,
			Sharded:          sh,
			HandoffBytes:     hb,
			HandoffBandwidth: hbw,
		})
		info.Stages = append(info.Stages, plan.StageInfo{
			Groups:       [2]int{lo, hi},
			Workers:      ls.kSub,
			HandoffBytes: hb,
		})
		// A stage whose own search ran out of budget taints the whole
		// assembly: the combined plan is only as proven as its weakest stage.
		combined.Degraded = combined.Degraded || sg.plan.Degraded
		for _, st := range sg.plan.Steps {
			combined.Steps = append(combined.Steps,
				remapStep(st, sub, len(s.g.Tensors), len(s.g.Nodes), si))
		}
		// A tensor touched by several stages (a shared weight) keeps its
		// earliest stage's shard shape — FinalShapes on the combined plan is
		// informational; execution reads the per-stage plans.
		for tid, origID := range sub.TensorID {
			if _, ok := combined.FinalShapes[origID]; ok {
				continue
			}
			if fs, ok := sg.plan.FinalShapes[tid]; ok {
				combined.FinalShapes[origID] = fs.Clone()
			}
		}
	}
	combined.Pipeline = info
	// A boundary walk the deadline stopped early ships its incumbent under
	// the same marker: feasible, priced, but not a proven optimum.
	combined.Degraded = combined.Degraded || s.cancelled
	res.Plan = combined
	return res, nil
}

// remapStep lifts one stage-local step into full-graph IDs through the
// extraction's identity maps. Tensors and nodes outside the stage stay
// uncut/strategy-less, exactly like tensors a flat step never references.
func remapStep(st *plan.Step, sub *graph.Subgraphed, nTensors, nNodes, stage int) *plan.Step {
	out := &plan.Step{
		K:          st.K,
		Multiplier: st.Multiplier,
		CommBytes:  st.CommBytes,
		Level:      st.Level,
		States:     st.States,
		Configs:    st.Configs,
		Stage:      stage,
		TensorCut:  make([]int, nTensors),
		OpStrategy: make([]partition.Strategy, nNodes),
		OpComm:     make([]partition.Parts, nNodes),
	}
	for i := range out.TensorCut {
		out.TensorCut[i] = -1
	}
	for tid, d := range st.TensorCut {
		if d >= 0 {
			out.TensorCut[sub.TensorID[tid]] = d
		}
	}
	for nid := range st.OpStrategy {
		out.OpStrategy[sub.NodeID[nid]] = st.OpStrategy[nid]
	}
	for nid := range st.OpComm {
		out.OpComm[sub.NodeID[nid]] = st.OpComm[nid]
	}
	return out
}
