package memplan

import (
	"testing"

	"tofu/internal/graph"
	"tofu/internal/graphgen"
	"tofu/internal/models"
	"tofu/internal/recursive"
	"tofu/internal/shape"
)

func planFor(t *testing.T, m *models.Model, k int64, opt Options) Report {
	t.Helper()
	var sh *graphgen.Sharded
	var err error
	if k == 1 {
		sh, err = graphgen.Single(m.G)
	} else {
		p, perr := recursive.Partition(m.G, k, recursive.Options{})
		if perr != nil {
			t.Fatal(perr)
		}
		sh, err = graphgen.Generate(m.G, p, graphgen.DefaultOptions())
	}
	if err != nil {
		t.Fatal(err)
	}
	return Plan(sh, opt)
}

func TestPersistentMatchesWeights(t *testing.T) {
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	rep := planFor(t, m, 1, DefaultOptions())
	// Persistent = weights + optimizer history + inputs.
	var want int64
	for _, ten := range m.G.Tensors {
		switch ten.Kind {
		case graph.Weight, graph.OptState, graph.Input:
			want += ten.Bytes()
		}
	}
	if rep.PersistentBytes != want {
		t.Fatalf("persistent = %d, want %d", rep.PersistentBytes, want)
	}
	if rep.PeakBytes < rep.PersistentBytes {
		t.Fatal("peak below persistent")
	}
}

func TestPartitioningDividesFootprint(t *testing.T) {
	// The paper's Sec 2 claim: k-way partitioning leaves each worker with
	// roughly 1/k of the footprint.
	m, err := models.RNN(2, 512, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	one := planFor(t, m, 1, DefaultOptions())
	eight := planFor(t, m, 8, DefaultOptions())
	ratio := float64(one.PeakBytes) / float64(eight.PeakBytes)
	if ratio < 4 || ratio > 12 {
		t.Fatalf("8-way partitioning shrank footprint by %.1fx, want ~8x", ratio)
	}
}

func TestReuseOffInflatesPeak(t *testing.T) {
	// Without Fig 7's control dependencies, buffer reuse is lost and the
	// peak grows (Sec 6's "per-worker memory consumption far exceeded the
	// expected amount").
	m, err := models.WResNet(50, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	on := planFor(t, m, 1, DefaultOptions())
	off := planFor(t, m, 1, Options{Reuse: false, InPlaceAggregation: true})
	if off.TransientPeak <= on.TransientPeak {
		t.Fatalf("no-reuse peak %d must exceed reuse peak %d", off.TransientPeak, on.TransientPeak)
	}
}

func TestInPlaceAggregationSavesMemory(t *testing.T) {
	// Shared RNN weights aggregate gradients across 6 timesteps; without
	// in-place aggregation (TensorFlow, Table 3) peak grows.
	m, err := models.RNN(2, 512, 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	inplace := planFor(t, m, 1, DefaultOptions())
	copies := planFor(t, m, 1, Options{Reuse: true, InPlaceAggregation: false})
	if copies.TransientPeak <= inplace.TransientPeak {
		t.Fatalf("non-in-place peak %d must exceed in-place peak %d",
			copies.TransientPeak, inplace.TransientPeak)
	}
}

func TestWorkspaceAccounting(t *testing.T) {
	m, err := models.MLP(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	plain := planFor(t, m, 1, DefaultOptions())
	ws := planFor(t, m, 1, Options{Reuse: true, InPlaceAggregation: true, WorkspacePerOp: 1 << 20})
	if ws.TransientPeak < plain.TransientPeak+1<<20 {
		t.Fatalf("workspace not accounted: %d vs %d", ws.TransientPeak, plain.TransientPeak)
	}
}

func TestFits(t *testing.T) {
	r := Report{PeakBytes: 100}
	if !r.Fits(100) || r.Fits(99) {
		t.Fatal("Fits boundary wrong")
	}
}

func TestAliasRoots(t *testing.T) {
	g := graph.New()
	a := g.Input("a", shape.Of(4, 4))
	b := g.Input("b", shape.Of(4, 4))
	s1 := g.Apply("add", nil, a, b)
	agg := g.Apply("add", nil, s1, b)
	g.Nodes[len(g.Nodes)-1].GradAgg = true
	g.Nodes[len(g.Nodes)-1].InPlace = true

	roots := AliasRoots(g, true)
	if roots[agg.ID] != s1.ID {
		t.Fatalf("in-place aggregation output should alias its first input: %d vs %d",
			roots[agg.ID], s1.ID)
	}
	rootsOff := AliasRoots(g, false)
	if rootsOff[agg.ID] != agg.ID {
		t.Fatal("with aggregation aliasing off, the output is its own root")
	}
	if roots[s1.ID] != s1.ID || roots[a.ID] != a.ID {
		t.Fatal("non-aliased tensors must be their own roots")
	}
}

func TestOptimizerUpdatesAliasWeights(t *testing.T) {
	m, err := models.MLP(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	roots := AliasRoots(m.G, true)
	for _, n := range m.G.Nodes {
		if n.Op != "adam_update" {
			continue
		}
		if roots[n.Output.ID] != n.Inputs[0].ID {
			t.Fatalf("weight update output must alias the weight, got root %d", roots[n.Output.ID])
		}
	}
}
