// Package memplan models the static memory planner of MXNet/TensorFlow that
// Tofu's graph generation must keep effective (EuroSys'19 Sec 6). It sweeps
// a worker's operators in execution order, allocating each output buffer at
// its producer and releasing it after its last consumer, and reports the
// peak resident footprint. The generator's control dependencies (Fig 7) are
// what make the release points visible to the real planner; the Reuse
// option models their absence. In-place operators (gradient aggregation,
// optimizer updates) alias their first input's buffer, the MXNet behaviour
// whose absence in TensorFlow drives the Table 3 gap.
package memplan

import (
	"tofu/internal/graph"
	"tofu/internal/graphgen"
)

// Options control planner behaviour for the ablations.
type Options struct {
	// Reuse frees transient buffers after their last consumer. Off models
	// naive graph generation without Fig 7's control dependencies: the
	// planner cannot prove reuse is safe and every transient buffer stays
	// allocated for the iteration.
	Reuse bool
	// InPlaceAggregation honours in-place gradient aggregation; off (the
	// TensorFlow model of Table 3) every aggregation allocates a fresh
	// buffer.
	InPlaceAggregation bool
	// WorkspacePerOp adds a fixed per-operator scratch allocation for the
	// convolution workspaces cuDNN-style kernels need.
	WorkspacePerOp int64
}

// DefaultOptions matches the real system.
func DefaultOptions() Options {
	return Options{Reuse: true, InPlaceAggregation: true}
}

// Report is the planner's accounting for one worker.
type Report struct {
	// PersistentBytes holds weights, optimizer state and input shards —
	// resident for the whole iteration.
	PersistentBytes int64
	// TransientPeak is the high-water mark of activation/gradient buffers.
	TransientPeak int64
	// CommBufferPeak is the largest communication staging demand.
	CommBufferPeak int64
	// PeakBytes is the total footprint the device must accommodate.
	PeakBytes int64
}

// Fits reports whether the footprint fits a device of the given capacity.
func (r Report) Fits(capacity int64) bool { return r.PeakBytes <= capacity }

// AliasRoots maps every tensor ID to the root buffer of its in-place alias
// chain (gradient aggregations and optimizer updates share storage with
// their first input). The swap engine uses this so alias chains do not
// masquerade as distinct memory blocks.
func AliasRoots(g *graph.Graph, inPlaceAgg bool) map[int]int {
	inPlace := func(n *graph.Node) bool {
		switch {
		case n.Op == "sgd_update", n.Op == "adam_update":
			return true
		case n.InPlace:
			return inPlaceAgg
		default:
			return false
		}
	}
	roots := make(map[int]int, len(g.Tensors))
	var rootOf func(t *graph.Tensor) int
	rootOf = func(t *graph.Tensor) int {
		if r, ok := roots[t.ID]; ok {
			return r
		}
		r := t.ID
		if t.Producer != nil && inPlace(t.Producer) {
			r = rootOf(t.Producer.Inputs[0])
		}
		roots[t.ID] = r
		return r
	}
	for _, t := range g.Tensors {
		rootOf(t)
	}
	return roots
}

// Plan sweeps one (representative) worker of a sharded execution.
func Plan(sh *graphgen.Sharded, opt Options) Report {
	var rep Report

	persistentKind := func(k graph.TensorKind) bool {
		return k == graph.Weight || k == graph.OptState || k == graph.Input
	}
	for _, t := range sh.G.Tensors {
		if persistentKind(t.Kind) {
			rep.PersistentBytes += sh.TensorShard[t.ID]
		}
	}

	inPlace := func(n *graph.Node) bool {
		switch {
		case n.Op == "sgd_update", n.Op == "adam_update":
			return true // frameworks update parameters in place
		case n.InPlace:
			return opt.InPlaceAggregation
		default:
			return false
		}
	}

	// Resolve alias chains: an in-place op's output shares its first
	// input's buffer; the buffer's root is the original allocation.
	rootCache := make(map[int]*graph.Tensor, len(sh.G.Tensors))
	var rootOf func(t *graph.Tensor) *graph.Tensor
	rootOf = func(t *graph.Tensor) *graph.Tensor {
		if r, ok := rootCache[t.ID]; ok {
			return r
		}
		r := t
		if t.Producer != nil && inPlace(t.Producer) {
			r = rootOf(t.Producer.Inputs[0])
		}
		rootCache[t.ID] = r
		return r
	}

	// External reference counts per root buffer: consumptions that extend
	// the alias chain are internal and don't pin the buffer.
	refs := make(map[int]int, len(sh.G.Tensors))
	for _, t := range sh.G.Tensors {
		r := rootOf(t)
		for _, c := range t.Consumers {
			if inPlace(c) && c.Inputs[0] == t {
				continue
			}
			refs[r.ID]++
		}
	}

	var cur int64
	live := make(map[int]bool)
	bump := func(delta int64) {
		cur += delta
		if cur > rep.TransientPeak {
			rep.TransientPeak = cur
		}
	}
	release := func(r *graph.Tensor) {
		if !opt.Reuse || persistentKind(r.Kind) || !live[r.ID] {
			return
		}
		live[r.ID] = false
		cur -= sh.TensorShard[r.ID]
	}

	for _, os := range sh.Ops {
		n := os.Node

		// Communication staging for this op's remote regions, live only
		// while the operator runs.
		commBuf := int64(os.FetchBytes + os.OutCommBytes)
		if commBuf > rep.CommBufferPeak {
			rep.CommBufferPeak = commBuf
		}
		bump(commBuf + opt.WorkspacePerOp)

		// Allocate the output buffer unless it aliases an existing one.
		outRoot := rootOf(n.Output)
		if outRoot == n.Output && !persistentKind(n.Output.Kind) {
			bump(sh.TensorShard[n.Output.ID])
			live[n.Output.ID] = true
		}

		// Release roots whose last external consumer just ran.
		for _, in := range n.Inputs {
			if inPlace(n) && in == n.Inputs[0] {
				continue // internal alias extension
			}
			r := rootOf(in)
			refs[r.ID]--
			if refs[r.ID] == 0 {
				release(r)
			}
		}
		// Terminal outputs nobody will read die immediately.
		if refs[outRoot.ID] == 0 {
			release(outRoot)
		}
		cur -= commBuf + opt.WorkspacePerOp
	}

	rep.PeakBytes = rep.PersistentBytes + rep.TransientPeak
	return rep
}
