package baselines

import (
	"testing"

	"tofu/internal/models"
	"tofu/internal/sim"
)

func eval(t *testing.T, cfg models.Config, sys System) Outcome {
	t.Helper()
	out, err := Evaluate(cfg, sys, sim.DefaultTopology())
	if err != nil {
		t.Fatalf("%s: %v", sys, err)
	}
	return out
}

// smallRNN is large enough to exercise partitioning but quick to search.
var smallRNN = models.Config{Family: "rnn", Depth: 2, Width: 1024, Batch: 128}

// bigRNN exceeds a single 12 GB GPU — the regime the paper targets (very
// large models); the qualitative orderings only hold under memory pressure
// (Sec 9 notes Tofu is not meant for models that fit in one GPU).
var bigRNN = models.Config{Family: "rnn", Depth: 6, Width: 4096, Batch: 512}

func TestOrderingMatchesPaper(t *testing.T) {
	// The qualitative ordering the evaluation establishes for RNNs that fit
	// only with help: Ideal >= Tofu > OpPlacement and Tofu > Swap.
	cfg := bigRNN
	ideal := eval(t, cfg, Ideal)
	tofu := eval(t, cfg, Tofu)
	opp := eval(t, cfg, OpPlacement)
	swap := eval(t, cfg, Swap)

	if tofu.Throughput > ideal.Throughput*1.001 {
		t.Errorf("Tofu %g beats Ideal %g", tofu.Throughput, ideal.Throughput)
	}
	if opp.Throughput >= tofu.Throughput {
		t.Errorf("OpPlacement %g >= Tofu %g", opp.Throughput, tofu.Throughput)
	}
	if swap.Throughput >= tofu.Throughput {
		t.Errorf("Swap %g >= Tofu %g", swap.Throughput, tofu.Throughput)
	}
}

func TestTofuWithinIdealBand(t *testing.T) {
	// Sec 7: Tofu reaches 60%-98% of ideal across the benchmarks.
	for _, cfg := range []models.Config{
		bigRNN,
		{Family: "wresnet", Depth: 50, Width: 4, Batch: 128},
	} {
		ideal := eval(t, cfg, Ideal)
		tofu := eval(t, cfg, Tofu)
		frac := tofu.Throughput / ideal.Throughput
		if frac < 0.5 || frac > 1.0 {
			t.Errorf("%v: Tofu at %.0f%% of ideal, want 50-100%%", cfg, frac*100)
		}
	}
}

func TestTFOpPlacementSlower(t *testing.T) {
	mx := eval(t, smallRNN, OpPlacement)
	tf := eval(t, smallRNN, TFOpPlacement)
	if tf.Throughput >= mx.Throughput {
		t.Errorf("TF placement %g must trail MXNet placement %g", tf.Throughput, mx.Throughput)
	}
}

func TestHeuristicsNeverBeatTofu(t *testing.T) {
	// Figure 10: Tofu's plan dominates AllRow-Greedy, Spartan, EqualChop
	// and ICML18 in communication volume.
	m, err := models.Build(smallRNN)
	if err != nil {
		t.Fatal(err)
	}
	tofu, err := PlanFor(m, Tofu, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{Spartan, EqualChop, ICML18} {
		p, err := PlanFor(m, sys, 8)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if p.TotalComm() < tofu.TotalComm()*0.999 {
			t.Errorf("%s comm %.0f beats Tofu %.0f", sys, p.TotalComm(), tofu.TotalComm())
		}
	}
}

func TestAllRowGreedy(t *testing.T) {
	m, err := models.Build(smallRNN)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlanFor(m, AllRowGreedy, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Every tensor with a cut is cut along dimension 0.
	for _, s := range p.Steps {
		for tid, d := range s.TensorCut {
			if d != 0 {
				t.Fatalf("AllRow-Greedy cut tensor %d along dim %d", tid, d)
			}
		}
	}
	tofu, err := PlanFor(m, Tofu, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalComm() < tofu.TotalComm()*0.999 {
		t.Errorf("AllRow comm %.0f beats Tofu %.0f", p.TotalComm(), tofu.TotalComm())
	}
}

func TestICML18LacksOutputReduction(t *testing.T) {
	m, err := models.Build(smallRNN)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlanFor(m, ICML18, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Steps {
		for _, st := range s.OpStrategy {
			if st.Kind.String() == "reduce" {
				t.Fatal("ICML18 must not use output reduction")
			}
		}
	}
}

func TestSmallBatchShrinksUntilFit(t *testing.T) {
	// RNN-6-4096 at batch 512 exceeds 12 GB on one GPU; SmallBatch must
	// shrink the batch.
	cfg := bigRNN
	out := eval(t, cfg, SmallBatch)
	if out.OOM {
		t.Fatal("SmallBatch should have found a fitting batch")
	}
	if out.Batch >= cfg.Batch {
		t.Fatalf("SmallBatch kept batch %d", out.Batch)
	}
}

func TestIdealIgnoresMemory(t *testing.T) {
	cfg := bigRNN
	out := eval(t, cfg, Ideal)
	if out.OOM {
		t.Fatal("Ideal never OOMs")
	}
	if out.Batch != cfg.Batch {
		t.Fatal("Ideal keeps the requested batch")
	}
}

func TestSwapUsesLargerBatchThanSmallBatch(t *testing.T) {
	sb := eval(t, bigRNN, SmallBatch)
	sw := eval(t, bigRNN, Swap)
	if sw.Batch <= sb.Batch {
		t.Fatalf("swap batch %d should exceed small-batch %d", sw.Batch, sb.Batch)
	}
}

func TestUnknownSystem(t *testing.T) {
	if _, err := Evaluate(smallRNN, System("nope"), sim.DefaultTopology()); err == nil {
		t.Fatal("expected unknown-system error")
	}
	m, err := models.Build(smallRNN)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanFor(m, Ideal, 8); err == nil {
		t.Fatal("expected not-a-partitioner error")
	}
}
