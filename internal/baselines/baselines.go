// Package baselines implements every system Tofu is compared against in the
// evaluation (Sec 7.1 and 7.3):
//
//   - Ideal: hypothetical infinite-memory single GPU, scaled by 8;
//   - SmallBatch: shrink the mini-batch until one GPU fits, scaled by 8;
//   - Swap: CPU-memory swapping with LRU + ideal prefetching;
//   - OpPlacement: whole layers round-robin across GPUs (MXNet flavor), and
//     the TensorFlow flavor without in-place gradient aggregation (Table 3);
//   - Tofu: the full recursive-search partitioner;
//   - AllRow-Greedy, Spartan, EqualChop, ICML18: the alternative partition
//     algorithms of Figure 10.
package baselines

import (
	"fmt"

	"tofu/internal/coarsen"
	"tofu/internal/dp"
	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/models"
	"tofu/internal/partition"
	"tofu/internal/plan"
	"tofu/internal/recursive"
	"tofu/internal/shape"
	"tofu/internal/sim"
)

// System names a baseline.
type System string

const (
	Ideal         System = "ideal"
	SmallBatch    System = "smallbatch"
	Swap          System = "swap"
	OpPlacement   System = "opplacement"
	TFOpPlacement System = "tf-opplacement"
	Tofu          System = "tofu"
	AllRowGreedy  System = "allrow-greedy"
	Spartan       System = "spartan"
	EqualChop     System = "equalchop"
	ICML18        System = "icml18"
	// HierNaive is the hierarchical-naive comparator of the cross-topology
	// experiments: the recursion's factors follow the machine hierarchy
	// innermost first with no bandwidth-weighted ordering search — the
	// layout a topology-blind runtime gets from default cyclic rank
	// placement, which parks the heaviest step on the slowest links. On a
	// flat machine it coincides with Tofu.
	HierNaive System = "hier-naive"
)

// Outcome is one (model, system) measurement.
type Outcome struct {
	System      System
	Model       string
	Batch       int64
	Throughput  float64 // samples/sec for the whole 8-GPU machine
	IterSeconds float64
	// ComputeSeconds is the communication-free execution time (Figure 10's
	// light bars).
	ComputeSeconds float64
	OOM            bool
	PeakBytes      int64
	CommBytes      float64 // plan communication (partition systems only)
}

// SearchOptions tune the partition-search half of an evaluation.
type SearchOptions struct {
	// Parallelism is the DP worker-pool size (0 = GOMAXPROCS, 1 = serial);
	// the chosen plan is identical for every setting.
	Parallelism int
	// Cache shares priced strategy enumerations between searches — across
	// the partition-algorithm variants over one model, and across recursive
	// steps within each (nil = a fresh cache per search).
	Cache *dp.PriceCache
}

// Evaluate runs one system on one model configuration at a fixed batch.
func Evaluate(cfg models.Config, sys System, topo sim.Topology) (Outcome, error) {
	return EvaluateWith(cfg, sys, topo, SearchOptions{})
}

// EvaluateWith is Evaluate with explicit search options.
func EvaluateWith(cfg models.Config, sys System, topo sim.Topology, so SearchOptions) (Outcome, error) {
	switch sys {
	case Ideal:
		return runSingle(cfg, sys, topo, false)
	case SmallBatch:
		return runSingle(cfg, sys, topo, true)
	case Swap:
		return runSwap(cfg, topo)
	case OpPlacement:
		return runPlacement(cfg, topo, false)
	case TFOpPlacement:
		return runPlacement(cfg, topo, true)
	case Tofu, AllRowGreedy, Spartan, EqualChop, ICML18, HierNaive:
		return runPartitioned(cfg, sys, topo, so)
	default:
		return Outcome{}, fmt.Errorf("baselines: unknown system %q", sys)
	}
}

// --- single-GPU family --------------------------------------------------

func runSingle(cfg models.Config, sys System, topo sim.Topology, fitMemory bool) (Outcome, error) {
	batch := cfg.Batch
	for {
		m, err := models.Build(withBatch(cfg, batch))
		if err != nil {
			return Outcome{}, err
		}
		sh, err := graphgen.Single(m.G)
		if err != nil {
			return Outcome{}, err
		}
		res := sim.Run(sh, topo, batch, memplan.DefaultOptions(),
			sim.RunOptions{Replicas: topo.NumGPUs()})
		out := Outcome{
			System: sys, Model: m.Name, Batch: batch,
			Throughput: res.Throughput, IterSeconds: res.IterSeconds,
			ComputeSeconds: res.ComputeSeconds,
			PeakBytes:      res.Mem.PeakBytes, OOM: res.OOM,
		}
		if !fitMemory {
			out.OOM = false // Ideal assumes infinite memory (Sec 7.1)
			return out, nil
		}
		if !res.OOM {
			return out, nil
		}
		if batch <= 1 {
			out.Throughput = 0
			return out, nil // OOM even at batch 1
		}
		batch /= 2
	}
}

func runSwap(cfg models.Config, topo sim.Topology) (Outcome, error) {
	// Sec 7.1: Swapping "uses the largest batch size that makes the
	// execution fit in the GPU memory". When shrinking the batch could fit
	// the model, the swap system runs just past that point (twice the
	// SmallBatch batch) — a larger batch only adds host traffic on the
	// shared 10 GB/s link. When no batch fits (the weights alone exceed the
	// device), it runs the full batch: weight streaming dominates and a
	// larger batch amortizes it. Both reproduce the paper's measured
	// points.
	fit, err := runSingle(cfg, SmallBatch, topo, true)
	if err != nil {
		return Outcome{}, err
	}
	batch := fit.Batch * 2
	if fit.Throughput == 0 { // nothing fits without swapping
		batch = cfg.Batch
	}
	if batch > cfg.Batch {
		batch = cfg.Batch
	}
	m, err := models.Build(withBatch(cfg, batch))
	if err != nil {
		return Outcome{}, err
	}
	sh, err := graphgen.Single(m.G)
	if err != nil {
		return Outcome{}, err
	}
	res := sim.RunSwap(sh, topo, batch)
	return Outcome{
		System: Swap, Model: m.Name, Batch: batch,
		Throughput: res.Throughput, IterSeconds: res.IterSeconds,
		ComputeSeconds: res.ComputeSeconds,
		PeakBytes:      res.Mem.PeakBytes, OOM: res.OOM,
	}, nil
}

// --- operator placement ------------------------------------------------

func runPlacement(cfg models.Config, topo sim.Topology, tf bool) (Outcome, error) {
	sys := OpPlacement
	if tf {
		sys = TFOpPlacement
	}
	batch := cfg.Batch
	for {
		m, err := models.Build(withBatch(cfg, batch))
		if err != nil {
			return Outcome{}, err
		}
		res, err := sim.RunPipeline(m.G, topo, batch, sim.PipelineOptions{TFMode: tf})
		if err != nil {
			return Outcome{}, err
		}
		out := Outcome{
			System: sys, Model: m.Name, Batch: batch,
			Throughput: res.Throughput, IterSeconds: res.IterSeconds,
			ComputeSeconds: res.ComputeSeconds,
			PeakBytes:      res.Mem.PeakBytes, OOM: res.OOM,
		}
		if !res.OOM {
			return out, nil
		}
		if batch <= 1 {
			out.Throughput = 0
			return out, nil
		}
		batch /= 2
	}
}

// --- partitioned family -----------------------------------------------

func runPartitioned(cfg models.Config, sys System, topo sim.Topology, so SearchOptions) (Outcome, error) {
	if so.Cache == nil {
		// Batch-halving retries rebuild the model with divided shapes;
		// sharing one cache across them still deduplicates the shapes that
		// repeat (weights don't depend on the batch).
		so.Cache = dp.NewPriceCache()
	}
	batch := cfg.Batch
	for {
		m, err := models.Build(withBatch(cfg, batch))
		if err != nil {
			return Outcome{}, err
		}
		p, err := PlanForOn(m, sys, topo, so)
		if err != nil {
			// Heuristics can be infeasible (e.g. AllRow-Greedy on a batch
			// already smaller than the worker count).
			if batch > 1 {
				batch /= 2
				continue
			}
			return Outcome{System: sys, Model: m.Name, Batch: batch, OOM: true}, nil
		}
		sh, err := graphgen.Generate(m.G, p, graphgen.DefaultOptions())
		if err != nil {
			return Outcome{}, err
		}
		res := sim.Run(sh, topo, batch, memplan.DefaultOptions(), sim.RunOptions{})
		out := Outcome{
			System: sys, Model: m.Name, Batch: batch,
			Throughput: res.Throughput, IterSeconds: res.IterSeconds,
			ComputeSeconds: res.ComputeSeconds,
			PeakBytes:      res.Mem.PeakBytes, OOM: res.OOM,
			CommBytes: p.TotalComm(),
		}
		if !res.OOM {
			return out, nil
		}
		if batch <= 1 {
			out.Throughput = 0
			return out, nil
		}
		batch /= 2
	}
}

// PlanFor produces the partition plan a given algorithm finds for a model
// on a flat k-worker machine.
func PlanFor(m *models.Model, sys System, k int64) (*plan.Plan, error) {
	return PlanForOpts(m, sys, k, SearchOptions{})
}

// PlanForOpts is PlanFor with explicit search options.
func PlanForOpts(m *models.Model, sys System, k int64, so SearchOptions) (*plan.Plan, error) {
	return planFor(m, sys, k, nil, so)
}

// PlanForOn plans on an explicit machine: hierarchical topologies make
// Tofu's search topology-aware (bandwidth-weighted factor-to-level
// ordering), and every plan comes back annotated with the interconnect
// level each step crosses. Strategy pricing is filter-independent (filters
// restrict a cached full enumeration), so one cache can serve every
// algorithm variant over the same model.
func PlanForOn(m *models.Model, sys System, topo sim.Topology, so SearchOptions) (*plan.Plan, error) {
	return planFor(m, sys, int64(topo.NumGPUs()), &topo, so)
}

func planFor(m *models.Model, sys System, k int64, topo *sim.Topology, so SearchOptions) (*plan.Plan, error) {
	base := recursive.Options{Parallelism: so.Parallelism, Cache: so.Cache, Topology: topo}
	annotate := func(p *plan.Plan, err error) (*plan.Plan, error) {
		if err == nil && topo != nil {
			topo.AssignLevels(p)
		}
		return p, err
	}
	switch sys {
	case Tofu:
		return recursive.Partition(m.G, k, base)
	case HierNaive:
		opts := base
		opts.TopologyNaive = true
		return recursive.Partition(m.G, k, opts)
	case ICML18:
		// The ICML18 DP lacks output-reduction strategies (Sec 7.3).
		opts := base
		opts.StrategyFilter = func(s partition.Strategy) bool {
			return s.Kind != partition.SplitReduce
		}
		return recursive.Partition(m.G, k, opts)
	case EqualChop:
		// Tofu's DP, but each tensor chopped along one dimension in a
		// single k-way step.
		opts := base
		opts.Factors = []int64{k}
		return recursive.Partition(m.G, k, opts)
	case AllRowGreedy:
		return annotate(heuristicPlan(m, k, so, allRowAssign))
	case Spartan:
		return annotate(heuristicPlan(m, k, so, spartanAssign))
	default:
		return nil, fmt.Errorf("baselines: %q is not a partition algorithm", sys)
	}
}

func withBatch(cfg models.Config, b int64) models.Config {
	cfg.Batch = b
	return cfg
}

// heuristicPlan evaluates a heuristic variable assignment as a single k-way
// step and wraps it in a plan.
func heuristicPlan(m *models.Model, k int64, so SearchOptions,
	assignFn func(*dp.Evaluator, *coarsen.Coarse) (map[int]int, error)) (*plan.Plan, error) {

	c, err := coarsen.Coarsen(m.G)
	if err != nil {
		return nil, err
	}
	shapes := make(map[int]shape.Shape, len(m.G.Tensors))
	for _, t := range m.G.Tensors {
		shapes[t.ID] = t.Shape.Clone()
	}
	prob := &dp.Problem{Coarse: c, K: k, Shapes: shapes, DType: shape.Float32,
		Parallelism: so.Parallelism, Cache: so.Cache}
	ev, err := dp.NewEvaluator(prob)
	if err != nil {
		return nil, err
	}
	assign, err := assignFn(ev, c)
	if err != nil {
		return nil, err
	}
	res, err := ev.Result(assign)
	if err != nil {
		return nil, err
	}

	final := make(map[int]shape.Shape, len(shapes))
	for tid, s := range shapes {
		if d := res.TensorCut[tid]; d >= 0 {
			ns, err := s.Split(d, k)
			if err != nil {
				return nil, err
			}
			final[tid] = ns
		} else {
			final[tid] = s
		}
	}
	return &plan.Plan{
		K: k,
		Steps: []*plan.Step{{
			K: k, Multiplier: 1,
			VarCut: assign, TensorCut: res.TensorCut,
			OpStrategy: res.OpStrategy, OpComm: res.OpComm,
			CommBytes: res.CommBytes,
		}},
		FinalShapes: final,
	}, nil
}

// allRowAssign partitions every tensor along its first dimension — the
// "one-weird-trick"-like heuristic of Sec 7.3. Variables whose first
// dimension does not divide evenly are infeasible and fail the plan.
func allRowAssign(ev *dp.Evaluator, c *coarsen.Coarse) (map[int]int, error) {
	assign := map[int]int{}
	for _, v := range c.Vars {
		if v.First < 0 {
			continue
		}
		dims := ev.Configs(v.ID)
		if len(dims) == 0 {
			return nil, fmt.Errorf("baselines: variable %v cannot be partitioned", v)
		}
		if dims[0] != 0 {
			return nil, fmt.Errorf("baselines: AllRow-Greedy cannot row-partition %v", v)
		}
		assign[v.ID] = 0
	}
	return assign, nil
}

// spartanAssign greedily partitions the largest tensor first, picking for
// each the dimension that minimizes the cost of its incident operators
// given the decisions made so far (Huang et al., ATC'15).
func spartanAssign(ev *dp.Evaluator, c *coarsen.Coarse) (map[int]int, error) {
	// Seed every variable with its first viable dimension so incident-cost
	// queries are total; the greedy pass then refines in size order.
	assign := map[int]int{}
	order := make([]*coarsen.Var, 0, len(c.Vars))
	for _, v := range c.Vars {
		if v.First < 0 {
			continue
		}
		dims := ev.Configs(v.ID)
		if len(dims) == 0 {
			return nil, fmt.Errorf("baselines: variable %v cannot be partitioned", v)
		}
		assign[v.ID] = dims[0]
		order = append(order, v)
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].Bytes() > order[i].Bytes() {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, v := range order {
		bestDim, bestCost := assign[v.ID], -1.0
		for _, d := range ev.Configs(v.ID) {
			assign[v.ID] = d
			cost, err := ev.VarCost(v.ID, assign)
			if err != nil {
				return nil, err
			}
			if bestCost < 0 || cost < bestCost {
				bestDim, bestCost = d, cost
			}
		}
		assign[v.ID] = bestDim
	}
	return assign, nil
}
