package store_test

import (
	"bytes"
	"testing"

	"tofu/internal/store"
)

// FuzzReadEntry drives the on-disk entry parser with arbitrary bytes.
// Anything it accepts must satisfy the store's integrity contract — valid
// digest-shaped key, checksummed payload — and must survive a re-serialize /
// re-parse round trip with identical payload bytes (the byte-identity the
// serving layer's store hits rely on). Seed corpus: a healthy entry plus
// truncated, flipped and header-only corruptions under testdata/fuzz.
func FuzzReadEntry(f *testing.F) {
	good, err := store.AppendEntry(nil, store.Meta{
		Digest:  "sha256:" + "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
		Workers: 8,
		Steps:   []store.Step{{Factor: 2, Level: 0}, {Factor: 2, Level: 1}, {Factor: 2, Level: 1}},
	}, []byte(`{"plan":"payload"}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add(bytes.ReplaceAll(good, []byte("payload"), []byte("payl0ad")))
	f.Add([]byte(`{"format":"tofu-plan-store-v1"}` + "\n"))
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		meta, payload, err := store.ReadEntry(data)
		if err != nil {
			return
		}
		if int64(len(payload)) != meta.PlanBytes || len(payload) == 0 {
			t.Fatalf("accepted entry with payload/header length mismatch: %d vs %d",
				len(payload), meta.PlanBytes)
		}
		out, err := store.AppendEntry(nil, meta, payload)
		if err != nil {
			t.Fatalf("accepted entry does not re-serialize: %v", err)
		}
		meta2, payload2, err := store.ReadEntry(out)
		if err != nil {
			t.Fatalf("re-serialized entry rejected: %v", err)
		}
		if !bytes.Equal(payload, payload2) {
			t.Fatalf("payload changed across round trip")
		}
		if meta2.Digest != meta.Digest || meta2.PlanSHA256 != meta.PlanSHA256 {
			t.Fatalf("identity changed across round trip: %+v vs %+v", meta, meta2)
		}
	})
}
