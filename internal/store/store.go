package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tofu/internal/faultfs"
	"tofu/internal/plan"
)

// ErrNotFound reports a digest with no (healthy) entry on disk.
var ErrNotFound = errors.New("store: entry not found")

// Options tunes a Store.
type Options struct {
	// Fsync makes every Put durable before it becomes visible: the temp
	// file is synced before the rename and the directory after it. Off by
	// default — the store is a cache of recomputable artifacts, and a torn
	// write is caught by the checksum and quarantined, so most deployments
	// prefer the faster policy.
	Fsync bool
	// FS routes every filesystem call the store makes (nil = the real OS).
	// Tests and the tofu-serve -faultfs flag hand in a faultfs.Injector to
	// exercise the store's corruption and write-failure paths.
	FS faultfs.FS
}

// maxQuarantinePerEntry bounds the .corrupt.<n> forensic files kept per
// entry path: a store fed a repeating corruption (a bad disk region, a
// buggy writer looping) keeps the first few specimens for inspection and
// deletes the rest, so quarantine can never grow the directory without
// bound.
const maxQuarantinePerEntry = 4

// Store is a content-addressed plan store rooted at one directory: entry
// files named <64 hex>.plan (the digest without its "sha256:" prefix),
// written via temp-file-plus-rename so readers — including other replicas
// sharing the directory — never observe a partial entry.
type Store struct {
	dir  string
	opts Options

	// Counters for the /metrics endpoint; quarantines also land here.
	puts        atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	corrupt     atomic.Int64
	quarantined atomic.Int64
	putErrors   atomic.Int64

	// seq disambiguates concurrent temp files within one process; the PID
	// in the name disambiguates across replicas sharing the directory.
	seq atomic.Int64

	// quarantineMu serializes quarantine renames so two readers hitting the
	// same corrupt entry don't race each other's os.Rename.
	quarantineMu sync.Mutex
}

// Open roots a store at dir, creating it if needed.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, opts: opts}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// entryPath maps a digest to its entry file.
func (s *Store) entryPath(digest string) (string, error) {
	if err := plan.ValidateDigest(digest); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	return filepath.Join(s.dir, strings.TrimPrefix(digest, plan.DigestPrefix)+".plan"), nil
}

// Put persists a plan under meta.Digest: serialize the entry, write it to a
// private temp file in the same directory, then rename it into place.
// Concurrent Puts of the same digest are idempotent — both write the same
// bytes and the second rename atomically replaces the first.
func (s *Store) Put(meta Meta, planBytes []byte) error {
	path, err := s.entryPath(meta.Digest)
	if err != nil {
		s.putErrors.Add(1)
		return err
	}
	data, err := AppendEntry(nil, meta, planBytes)
	if err != nil {
		s.putErrors.Add(1)
		return err
	}
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), s.seq.Add(1))
	if err := s.writeFile(tmp, data); err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if err := s.opts.FS.Rename(tmp, path); err != nil {
		_ = s.opts.FS.Remove(tmp) //tofu:allow-errdrop best-effort temp cleanup; the rename error is what matters
		s.putErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Fsync {
		if err := s.syncDir(); err != nil {
			s.putErrors.Add(1)
			return err
		}
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) writeFile(path string, data []byte) error {
	f, err := s.opts.FS.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()              //tofu:allow-errdrop the write error is being returned
		_ = s.opts.FS.Remove(path) //tofu:allow-errdrop best-effort temp cleanup; the write error is what matters
		return err
	}
	if s.opts.Fsync {
		if err := f.Sync(); err != nil {
			_ = f.Close()              //tofu:allow-errdrop the sync error is being returned
			_ = s.opts.FS.Remove(path) //tofu:allow-errdrop best-effort temp cleanup; the sync error is what matters
			return err
		}
	}
	if err := f.Close(); err != nil {
		_ = s.opts.FS.Remove(path) //tofu:allow-errdrop best-effort temp cleanup; the close error is what matters
		return err
	}
	return nil
}

func (s *Store) syncDir() error {
	if err := s.opts.FS.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Get loads and verifies the entry for a digest. A missing entry returns
// ErrNotFound; a corrupt one (torn write, checksum mismatch, wrong-digest
// content) is quarantined to a .corrupt sibling and then reported as
// ErrNotFound too — corruption costs a recompute, never an outage.
func (s *Store) Get(digest string) (Meta, []byte, error) {
	path, err := s.entryPath(digest)
	if err != nil {
		return Meta{}, nil, err
	}
	data, err := s.opts.FS.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		s.misses.Add(1)
		return Meta{}, nil, ErrNotFound
	}
	if err != nil {
		s.misses.Add(1)
		return Meta{}, nil, fmt.Errorf("store: %w", err)
	}
	meta, payload, err := s.readVerified(path, data, digest)
	if err != nil {
		s.misses.Add(1)
		return Meta{}, nil, err
	}
	s.hits.Add(1)
	return meta, payload, nil
}

// readVerified parses an entry file's bytes and checks that it answers the
// digest its filename promises, quarantining on any defect.
func (s *Store) readVerified(path string, data []byte, digest string) (Meta, []byte, error) {
	meta, payload, err := ReadEntry(data)
	if err == nil && meta.Digest != digest {
		err = fmt.Errorf("store: entry %s carries digest %s", filepath.Base(path), meta.Digest)
	}
	if err != nil {
		s.quarantine(path)
		return Meta{}, nil, fmt.Errorf("%w (quarantined: %v)", ErrNotFound, err)
	}
	return meta, payload, nil
}

// quarantine moves a corrupt entry aside so it is never re-read and never
// silently deleted — operators can inspect it. Rename failures (e.g. the
// other replica quarantined it first) are absorbed: the entry is already
// out of the serving path either way. Once maxQuarantinePerEntry forensic
// copies of one entry exist, further corrupt copies are deleted instead —
// a repeating corruption must not grow the directory without bound.
func (s *Store) quarantine(path string) {
	s.corrupt.Add(1)
	s.quarantineMu.Lock()
	defer s.quarantineMu.Unlock()
	if _, err := s.opts.FS.Stat(path); err != nil {
		return
	}
	if kept, err := s.opts.FS.Glob(path + ".corrupt.*"); err == nil && len(kept) >= maxQuarantinePerEntry {
		_ = s.opts.FS.Remove(path) //tofu:allow-errdrop best-effort cap enforcement; a survivor is re-quarantined on the next read
		return
	}
	dst := fmt.Sprintf("%s.corrupt.%d", path, s.seq.Add(1))
	if err := s.opts.FS.Rename(path, dst); err != nil {
		// Lost a race with another quarantiner or the file vanished; the
		// next Get simply misses.
		return
	}
	s.quarantined.Add(1)
}

// Scan walks every entry in the store in digest order, verifying each and
// quarantining corrupt ones, and calls fn with the healthy entries — the
// boot-time path that rebuilds the in-memory neighbor index from a shared
// directory. fn returning an error stops the scan.
func (s *Store) Scan(fn func(Meta, []byte) error) error {
	names, err := s.opts.FS.Glob(filepath.Join(s.dir, "*.plan"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		base := strings.TrimSuffix(filepath.Base(path), ".plan")
		digest := plan.DigestPrefix + base
		if plan.ValidateDigest(digest) != nil {
			// Not one of ours (temp files don't match the glob, but a
			// stray file could); leave it alone.
			continue
		}
		data, err := s.opts.FS.ReadFile(path)
		if err != nil {
			// Raced with a concurrent quarantine or delete; skip.
			continue
		}
		meta, payload, err := s.readVerified(path, data, digest)
		if err != nil {
			continue
		}
		if err := fn(meta, payload); err != nil {
			return err
		}
	}
	return nil
}

// Stats is the store's counter snapshot for /metrics.
type Stats struct {
	Puts    int64 `json:"store_puts"`
	Hits    int64 `json:"store_hits"`
	Misses  int64 `json:"store_misses"`
	Corrupt int64 `json:"store_corrupt"`
	// Quarantined counts corrupt entries preserved as .corrupt.<n> forensic
	// files; detections past the per-entry cap land in Corrupt only.
	Quarantined int64 `json:"store_quarantined"`
	PutErrors   int64 `json:"store_put_errors"`
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts:        s.puts.Load(),
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Corrupt:     s.corrupt.Load(),
		Quarantined: s.quarantined.Load(),
		PutErrors:   s.putErrors.Load(),
	}
}
