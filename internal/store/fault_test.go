package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tofu/internal/faultfs"
)

// TestStorePutFailuresSurface drives every write-path fault through the FS
// seam: the Put must fail loudly (PutErrors counted), leave no entry behind
// to serve, and the very next Put must heal the slot.
func TestStorePutFailuresSurface(t *testing.T) {
	cases := []struct {
		name string
		rule *faultfs.Rule
	}{
		{"write-error", &faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.tmp.*", Mode: faultfs.ModeError, Count: 1}},
		{"short-write", &faultfs.Rule{Op: faultfs.OpWrite, Pattern: "*.tmp.*", Mode: faultfs.ModeShort, Count: 1}},
		{"rename-error", &faultfs.Rule{Op: faultfs.OpRename, Pattern: "*.plan", Mode: faultfs.ModeError, Count: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{FS: faultfs.New(faultfs.OS, tc.rule)})
			if err != nil {
				t.Fatal(err)
			}
			d := digestFor(9)
			if err := s.Put(testMeta(d), []byte("payload")); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("Put under %s: err = %v, want ErrInjected", tc.name, err)
			}
			if _, _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
				t.Fatalf("failed Put left a servable entry: %v", err)
			}
			if st := s.Stats(); st.PutErrors != 1 {
				t.Errorf("PutErrors = %d, want 1", st.PutErrors)
			}
			// The injected fault has burned its Count: the retry heals.
			if err := s.Put(testMeta(d), []byte("payload")); err != nil {
				t.Fatalf("healing Put: %v", err)
			}
			if _, got, err := s.Get(d); err != nil || string(got) != "payload" {
				t.Fatalf("healed Get: %q, %v", got, err)
			}
		})
	}
}

// TestStoreCorruptReadQuarantines injects read corruption through the FS
// seam (rather than rewriting the file, as the non-injected test does):
// the store must answer ErrNotFound, quarantine the on-disk entry, count
// it, and keep serving after a recompute.
func TestStoreCorruptReadQuarantines(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS,
		&faultfs.Rule{Op: faultfs.OpRead, Pattern: "*.plan", Mode: faultfs.ModeCorrupt, Count: 1})
	s, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	d := digestFor(7)
	if err := s.Put(testMeta(d), []byte("the plan")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupted Get: want ErrNotFound, got %v", err)
	}
	path := filepath.Join(dir, strings.TrimPrefix(d, "sha256:")+".plan")
	if kept, _ := filepath.Glob(path + ".corrupt.*"); len(kept) != 1 {
		t.Errorf("want 1 quarantine file, found %v", kept)
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Quarantined != 1 {
		t.Errorf("stats = %+v, want Corrupt=1 Quarantined=1", st)
	}
	// Recompute path: a fresh Put re-creates the entry and serves cleanly
	// (the injection rule's Count is spent).
	if err := s.Put(testMeta(d), []byte("the plan")); err != nil {
		t.Fatal(err)
	}
	if _, got, err := s.Get(d); err != nil || string(got) != "the plan" {
		t.Fatalf("post-recompute Get: %q, %v", got, err)
	}
}

// TestQuarantineCapBoundsForensics feeds the same entry path a repeating
// corruption: the store keeps at most maxQuarantinePerEntry .corrupt.<n>
// specimens and deletes further corrupt copies outright, so a bad disk
// region can never grow the directory without bound.
func TestQuarantineCapBoundsForensics(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := digestFor(8)
	path := filepath.Join(dir, strings.TrimPrefix(d, "sha256:")+".plan")
	rounds := maxQuarantinePerEntry + 3
	for i := 0; i < rounds; i++ {
		if err := s.Put(testMeta(d), []byte(fmt.Sprintf("payload %d", i))); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
			t.Fatalf("round %d: want ErrNotFound, got %v", i, err)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("round %d: corrupt entry still in serving path", i)
		}
	}
	kept, _ := filepath.Glob(path + ".corrupt.*")
	if len(kept) != maxQuarantinePerEntry {
		t.Errorf("quarantine files = %d, want capped at %d", len(kept), maxQuarantinePerEntry)
	}
	st := s.Stats()
	if st.Corrupt != int64(rounds) {
		t.Errorf("Corrupt = %d, want %d (every detection counts)", st.Corrupt, rounds)
	}
	if st.Quarantined != int64(maxQuarantinePerEntry) {
		t.Errorf("Quarantined = %d, want %d (only kept specimens count)", st.Quarantined, maxQuarantinePerEntry)
	}
}
