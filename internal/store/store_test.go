package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func digestFor(b byte) string {
	return "sha256:" + strings.Repeat(fmt.Sprintf("%02x", b), 32)
}

func testMeta(d string) Meta {
	return Meta{
		Digest:      d,
		ModelDigest: strings.Repeat("ab", 32),
		Workers:     16,
		Steps:       []Step{{Factor: 2, Level: 0}, {Factor: 2, Level: 0}, {Factor: 2, Level: 1}, {Factor: 2, Level: 1}},
	}
}

func TestEntryRoundTrip(t *testing.T) {
	d := digestFor(1)
	payload := []byte(`{"digest":"` + d + `"}` + "\n")
	data, err := AppendEntry(nil, testMeta(d), payload)
	if err != nil {
		t.Fatal(err)
	}
	meta, got, err := ReadEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload changed across round trip: %q -> %q", payload, got)
	}
	if meta.Digest != d || meta.Workers != 16 || len(meta.Steps) != 4 {
		t.Errorf("meta changed across round trip: %+v", meta)
	}
}

func TestEntryRejectsCorruption(t *testing.T) {
	d := digestFor(2)
	payload := []byte("plan-bytes")
	data, err := AppendEntry(nil, testMeta(d), payload)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             nil,
		"no-newline":        []byte(`{"format":"tofu-plan-store-v1"}`),
		"truncated-payload": data[:len(data)-1],
		"extended-payload":  append(append([]byte{}, data...), 'x'),
		"flipped-byte": func() []byte {
			c := append([]byte{}, data...)
			c[len(c)-1] ^= 0xff
			return c
		}(),
		"bad-format": []byte(`{"format":"nope","digest":"` + d + `","workers":1,"plan_sha256":"00","plan_bytes":1}` + "\nx"),
		"bad-digest": []byte(`{"format":"tofu-plan-store-v1","digest":"sha256:xyz","workers":1,"plan_sha256":"00","plan_bytes":1}` + "\nx"),
		"unknown-field": []byte(`{"format":"tofu-plan-store-v1","digest":"` + d +
			`","workers":1,"plan_sha256":"00","plan_bytes":1,"extra":true}` + "\nx"),
	}
	for name, c := range cases {
		if _, _, err := ReadEntry(c); err == nil {
			t.Errorf("%s: corrupt entry accepted", name)
		}
	}
}

func TestStorePutGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := digestFor(3)
	payload := []byte("the plan bytes")
	if _, _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store Get: want ErrNotFound, got %v", err)
	}
	if err := s.Put(testMeta(d), payload); err != nil {
		t.Fatal(err)
	}
	meta, got, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("Get returned %q, want %q", got, payload)
	}
	if meta.ModelDigest != strings.Repeat("ab", 32) {
		t.Errorf("meta lost model digest: %+v", meta)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats %+v, want 1 put / 1 hit / 1 miss", st)
	}
	// No temp litter after a successful Put.
	tmps, _ := filepath.Glob(filepath.Join(s.Dir(), "*.tmp.*"))
	if len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}

func TestStoreFsyncPolicy(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	d := digestFor(4)
	if err := s.Put(testMeta(d), []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if _, got, err := s.Get(d); err != nil || string(got) != "durable" {
		t.Fatalf("fsync store Get: %q, %v", got, err)
	}
}

func TestStoreQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := digestFor(5)
	if err := s.Put(testMeta(d), []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, strings.TrimPrefix(d, "sha256:")+".plan")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(d); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt Get: want ErrNotFound, got %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt entry still in serving path")
	}
	quarantined, _ := filepath.Glob(path + ".corrupt.*")
	if len(quarantined) != 1 {
		t.Errorf("want 1 quarantined file, found %v", quarantined)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter %d, want 1", st.Corrupt)
	}
	// The digest is recomputable: a fresh Put heals the slot.
	if err := s.Put(testMeta(d), []byte("good bytes")); err != nil {
		t.Fatal(err)
	}
	if _, got, err := s.Get(d); err != nil || string(got) != "good bytes" {
		t.Fatalf("healed Get: %q, %v", got, err)
	}
}

// TestStoreWrongDigestContent plants a valid entry under the wrong filename
// — the content-addressing violation a misbehaving replica could produce —
// and wants it quarantined, not served.
func TestStoreWrongDigestContent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := AppendEntry(nil, testMeta(digestFor(6)), []byte("entry six"))
	if err != nil {
		t.Fatal(err)
	}
	wrong := filepath.Join(dir, strings.TrimPrefix(digestFor(7), "sha256:")+".plan")
	if err := os.WriteFile(wrong, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(digestFor(7)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("wrong-digest Get: want ErrNotFound, got %v", err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter %d, want 1", st.Corrupt)
	}
}

func TestStoreScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for b := byte(10); b < 13; b++ {
		if err := s.Put(testMeta(digestFor(b)), []byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	// One corrupt entry and one stray file must both be skipped.
	bad := filepath.Join(dir, strings.Repeat("ff", 32)+".plan")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.plan"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	var seen []string
	err = s.Scan(func(m Meta, payload []byte) error {
		seen = append(seen, m.Digest)
		if len(payload) != 1 {
			t.Errorf("scan payload %q", payload)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("scan saw %v, want 3 healthy entries", seen)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Errorf("scan out of digest order: %v", seen)
		}
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter %d, want 1 (the garbage entry)", st.Corrupt)
	}
}

// TestStoreSharedDirReplicas is the fleet contract in miniature: two Store
// handles (two "replicas") on one directory — and a third opened later (a
// "restart") — all serve each other's writes, concurrently and race-free.
func TestStoreSharedDirReplicas(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		d := digestFor(byte(20 + i))
		go func() {
			defer wg.Done()
			if err := a.Put(testMeta(d), []byte(d)); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := b.Put(testMeta(d), []byte(d)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	restarted, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d := digestFor(byte(20 + i))
		if _, got, err := restarted.Get(d); err != nil || string(got) != d {
			t.Fatalf("replica read of %s: %q, %v", d, got, err)
		}
	}
}
