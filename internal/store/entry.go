// Package store is the persistent, content-addressed plan store behind the
// serving layer's in-memory LRU: one file per request digest, written
// atomically, checksummed on every read, quarantined (never trusted, never
// fatal) on corruption. Replicas sharing a store directory — and restarts of
// a single daemon — serve each other's plans as warm bytes, and the entry
// header carries enough of the plan's shape (model digest, worker count,
// realized factor-to-level steps) for the warm-start neighbor index to be
// rebuilt from a directory scan without parsing any plan JSON.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"tofu/internal/plan"
)

// FormatV1 names the on-disk entry format this package reads and writes.
const FormatV1 = "tofu-plan-store-v1"

// Step is one realized factor-to-level placement of the stored plan — the
// seed material for warm-starting a neighboring search (the serving layer
// maps it onto recursive.WarmStep).
type Step struct {
	Factor int64 `json:"factor"`
	Level  int   `json:"level"`
}

// Meta is the entry header: everything the neighbor index needs, plus the
// checksum fields that let a reader reject torn or tampered entries without
// parsing the plan payload.
type Meta struct {
	// Format must be FormatV1.
	Format string `json:"format"`
	// Digest is the request content digest the plan answers ("sha256:<64
	// hex>") — the store key. The payload's own embedded digest is verified
	// against it again at serve time via plan.ReadJSONExpect.
	Digest string `json:"digest"`
	// ModelDigest buckets entries by model (the pricing-cache key's hex
	// form): neighbors for warm starts are drawn from the same bucket.
	ModelDigest string `json:"model_digest,omitempty"`
	// Workers is the plan's worker count.
	Workers int64 `json:"workers"`
	// Steps is the plan's realized ordering, innermost first. Empty for
	// plans that never ran the topology-aware search.
	Steps []Step `json:"steps,omitempty"`
	// PlanSHA256 is the hex sha256 of the payload bytes; PlanBytes their
	// exact length. Both must match or the entry is corrupt.
	PlanSHA256 string `json:"plan_sha256"`
	PlanBytes  int64  `json:"plan_bytes"`
}

// AppendEntry serializes an entry — a single JSON header line, then the plan
// payload verbatim — onto dst. The payload is stored byte-for-byte, so a
// store hit serves exactly what the search serialized. The checksum fields
// of meta are filled here; callers supply the identity fields.
func AppendEntry(dst []byte, meta Meta, planBytes []byte) ([]byte, error) {
	if err := plan.ValidateDigest(meta.Digest); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if meta.Workers < 1 {
		return nil, fmt.Errorf("store: invalid worker count %d", meta.Workers)
	}
	for i, st := range meta.Steps {
		if st.Factor < 2 || st.Level < 0 {
			return nil, fmt.Errorf("store: invalid step %d (%dx at level %d)", i, st.Factor, st.Level)
		}
	}
	if len(planBytes) == 0 {
		return nil, fmt.Errorf("store: empty plan payload")
	}
	meta.Format = FormatV1
	sum := sha256.Sum256(planBytes)
	meta.PlanSHA256 = hex.EncodeToString(sum[:])
	meta.PlanBytes = int64(len(planBytes))
	hdr, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("store: encoding header: %w", err)
	}
	dst = append(dst, hdr...)
	dst = append(dst, '\n')
	dst = append(dst, planBytes...)
	return dst, nil
}

// ReadEntry parses and verifies a serialized entry, returning the header and
// the plan payload (aliasing data). Every defect — missing header line,
// unknown format, malformed digest, length or checksum mismatch, trailing
// bytes — is an error; callers treat any error as corruption and quarantine
// the file rather than crash or serve it.
func ReadEntry(data []byte) (Meta, []byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return Meta{}, nil, fmt.Errorf("store: entry has no header line")
	}
	var meta Meta
	dec := json.NewDecoder(bytes.NewReader(data[:nl]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&meta); err != nil {
		return Meta{}, nil, fmt.Errorf("store: decoding header: %w", err)
	}
	if dec.More() {
		return Meta{}, nil, fmt.Errorf("store: trailing data in header line")
	}
	if meta.Format != FormatV1 {
		return Meta{}, nil, fmt.Errorf("store: unknown format %q (want %q)", meta.Format, FormatV1)
	}
	if err := plan.ValidateDigest(meta.Digest); err != nil {
		return Meta{}, nil, fmt.Errorf("store: %w", err)
	}
	if meta.Workers < 1 {
		return Meta{}, nil, fmt.Errorf("store: invalid worker count %d", meta.Workers)
	}
	for i, st := range meta.Steps {
		if st.Factor < 2 || st.Level < 0 {
			return Meta{}, nil, fmt.Errorf("store: invalid step %d (%dx at level %d)", i, st.Factor, st.Level)
		}
	}
	payload := data[nl+1:]
	if int64(len(payload)) != meta.PlanBytes {
		return Meta{}, nil, fmt.Errorf("store: payload is %d bytes, header says %d", len(payload), meta.PlanBytes)
	}
	if meta.PlanBytes == 0 {
		return Meta{}, nil, fmt.Errorf("store: empty plan payload")
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != meta.PlanSHA256 {
		return Meta{}, nil, fmt.Errorf("store: payload checksum %s, header says %s", got, meta.PlanSHA256)
	}
	return meta, payload, nil
}
