package client

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// RetryPolicy makes Partition retry transient server pushback — 429 (queue
// or tenant backpressure) and 503 (deadline admission, cancelled searches,
// degraded-policy failures) — with capped exponential backoff, jitter, and
// the server's Retry-After hint as a floor. The zero value never retries,
// preserving the one-shot ErrBusy behavior existing callers expect.
type RetryPolicy struct {
	// MaxRetries is how many times to re-send after the first attempt
	// (0 = never retry).
	MaxRetries int
	// BaseDelay seeds the exponential schedule (default 100ms); attempt n
	// waits up to BaseDelay<<n.
	BaseDelay time.Duration
	// MaxDelay caps the schedule (default 5s).
	MaxDelay time.Duration
	// Sleep replaces the wait between attempts — the fake-clock seam for
	// tests. nil sleeps on a real timer, honoring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
	// Jitter replaces the randomness source with a deterministic one for
	// tests: it must return a fraction in [0,1). nil uses math/rand.
	Jitter func() float64
}

// delay computes the wait before retry number attempt (0-based): equal
// jitter over the capped exponential — half the window guaranteed, half
// random — so a thundering herd of identical clients spreads out, never
// below the server's Retry-After hint.
func (p RetryPolicy) delay(attempt int, retryAfter time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= max || d <= 0 {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	frac := rand.Float64() //nolint:gosec // backoff jitter needs no crypto strength
	if p.Jitter != nil {
		frac = p.Jitter()
	}
	d = d/2 + time.Duration(frac*float64(d/2))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// sleep waits d via the seam (or a real timer), aborting early on ctx.
func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterHint parses a Retry-After response header's delta-seconds form
// (the only form the server emits); absent or unparsable hints are zero.
func retryAfterHint(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
