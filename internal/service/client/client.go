// Package client is the Go client of the tofu-serve partition service. It
// canonicalizes requests exactly like the server (shared service.Request),
// verifies that every served plan carries the digest of the request it was
// asked for (plan.ReadJSONExpect), and transparently follows the async 202
// flip by polling the job API.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tofu/internal/plan"
	"tofu/internal/service"
)

// ErrBusy reports queue backpressure (HTTP 429): the server is saturated
// and the caller should back off and retry.
var ErrBusy = fmt.Errorf("client: server busy (queue full)")

// Client talks to one tofu-serve endpoint.
type Client struct {
	base string
	hc   *http.Client
	// PollInterval paces job polling after an async flip (default 50ms).
	PollInterval time.Duration
	// Retry makes Partition retry 429/503 pushback with backoff and jitter,
	// honoring the server's Retry-After hint. Zero value: no retries.
	Retry RetryPolicy
}

// New returns a client for a base URL like "http://127.0.0.1:8080".
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}, PollInterval: 50 * time.Millisecond}
}

// NewWith uses a caller-supplied http.Client (timeouts, transports, tests).
func NewWith(base string, hc *http.Client) *Client {
	c := New(base)
	c.hc = hc
	return c
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz: %s", resp.Status)
	}
	return nil
}

// Metrics fetches the /metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (service.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return service.Snapshot{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.Snapshot{}, err
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return service.Snapshot{}, fmt.Errorf("client: metrics: %w", err)
	}
	return snap, nil
}

// Partition requests a plan and blocks until it is available: a cache hit
// or sync search returns directly; an async flip polls the job until it
// finishes. The returned bytes are the server's exact plan serialization
// (byte-identical to a local search); the Export is its parsed form,
// verified against the request's content digest.
func (c *Client) Partition(ctx context.Context, r service.Request) (plan.Export, []byte, error) {
	nr, err := r.Normalize()
	if err != nil {
		return plan.Export{}, nil, err
	}
	digest, err := nr.Digest()
	if err != nil {
		return plan.Export{}, nil, err
	}
	body, err := json.Marshal(nr)
	if err != nil {
		return plan.Export{}, nil, err
	}
	for attempt := 0; ; attempt++ {
		ex, raw, retryAfter, retryable, err := c.partitionOnce(ctx, digest, body)
		if err == nil || !retryable || attempt >= c.Retry.MaxRetries {
			return ex, raw, err
		}
		if serr := c.Retry.sleep(ctx, c.Retry.delay(attempt, retryAfter)); serr != nil {
			return plan.Export{}, nil, serr
		}
	}
}

// partitionOnce is one POST /v1/partition round trip. retryable marks the
// transient-pushback statuses (429, 503) the RetryPolicy may re-send after
// the server's retryAfter hint.
func (c *Client) partitionOnce(ctx context.Context, digest string, body []byte) (plan.Export, []byte, time.Duration, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/partition", bytes.NewReader(body))
	if err != nil {
		return plan.Export{}, nil, 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return plan.Export{}, nil, 0, false, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close() //tofu:allow-errdrop the body was already read to EOF; close failure cannot lose data
	if err != nil {
		return plan.Export{}, nil, 0, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		ex, raw, err := c.verify(digest, raw)
		return ex, raw, 0, false, err
	case http.StatusAccepted:
		var acc service.Accepted
		if err := json.Unmarshal(raw, &acc); err != nil {
			return plan.Export{}, nil, 0, false, fmt.Errorf("client: parsing 202: %w", err)
		}
		if err := c.pollJob(ctx, acc.Job); err != nil {
			return plan.Export{}, nil, 0, false, err
		}
		ex, raw, err := c.Plan(ctx, digest)
		return ex, raw, 0, false, err
	case http.StatusTooManyRequests:
		return plan.Export{}, nil, retryAfterHint(resp.Header), true, ErrBusy
	case http.StatusServiceUnavailable:
		return plan.Export{}, nil, retryAfterHint(resp.Header), true, apiErr("partition", resp.StatusCode, raw)
	default:
		return plan.Export{}, nil, 0, false, apiErr("partition", resp.StatusCode, raw)
	}
}

// Plan fetches a cached plan by digest and verifies the embedded digest
// matches.
func (c *Client) Plan(ctx context.Context, digest string) (plan.Export, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/plans/"+digest, nil)
	if err != nil {
		return plan.Export{}, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return plan.Export{}, nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close() //tofu:allow-errdrop the body was already read to EOF; close failure cannot lose data
	if err != nil {
		return plan.Export{}, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return plan.Export{}, nil, apiErr("plan", resp.StatusCode, raw)
	}
	return c.verify(digest, raw)
}

// Job fetches one job status.
func (c *Client) Job(ctx context.Context, id string) (service.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return service.Status{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return service.Status{}, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close() //tofu:allow-errdrop the body was already read to EOF; close failure cannot lose data
	if err != nil {
		return service.Status{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return service.Status{}, apiErr("job", resp.StatusCode, raw)
	}
	var st service.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		return service.Status{}, fmt.Errorf("client: parsing job status: %w", err)
	}
	return st, nil
}

func (c *Client) pollJob(ctx context.Context, id string) error {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return err
		}
		switch st.State {
		case service.JobDone:
			return nil
		case service.JobFailed:
			return fmt.Errorf("client: search failed: %s", st.Error)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// verify parses a served plan and rejects one whose embedded digest is not
// the digest of the request the caller made — a cache can only lie about
// latency, never about which plan it hands back.
func (c *Client) verify(digest string, raw []byte) (plan.Export, []byte, error) {
	ex, err := plan.ReadJSONExpect(bytes.NewReader(raw), digest)
	if err != nil {
		return plan.Export{}, nil, err
	}
	return ex, raw, nil
}

func apiErr(op string, code int, raw []byte) error {
	var ae struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
		return fmt.Errorf("client: %s: HTTP %d: %s", op, code, ae.Error)
	}
	return fmt.Errorf("client: %s: HTTP %d", op, code)
}
