package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tofu/internal/models"
	"tofu/internal/plan"
	"tofu/internal/service"
)

var testModel = models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}

// jitterConst returns a fixed fraction, pinning the randomized half of the
// equal-jitter window for exact schedule assertions.
func jitterConst(f float64) func() float64 { return func() float64 { return f } }

func TestDelaySchedule(t *testing.T) {
	p := RetryPolicy{Jitter: jitterConst(0)} // delay = window/2 exactly
	// Defaults: base 100ms doubling, capped at 5s.
	want := []time.Duration{50, 100, 200, 400, 800, 1600, 2500, 2500}
	for attempt, w := range want {
		if got := p.delay(attempt, 0); got != w*time.Millisecond {
			t.Errorf("attempt %d: delay %v, want %v", attempt, got, w*time.Millisecond)
		}
	}
	// Full jitter fraction sits at the top of the window.
	p = RetryPolicy{Jitter: jitterConst(0.999999)}
	if got := p.delay(0, 0); got < 99*time.Millisecond || got > 100*time.Millisecond {
		t.Errorf("max-jitter delay %v, want ~100ms", got)
	}
	// Custom base and cap.
	p = RetryPolicy{BaseDelay: time.Second, MaxDelay: 2 * time.Second, Jitter: jitterConst(0)}
	if got := p.delay(5, 0); got != time.Second {
		t.Errorf("capped delay %v, want 1s (cap 2s halved)", got)
	}
}

func TestDelayRetryAfterFloor(t *testing.T) {
	p := RetryPolicy{Jitter: jitterConst(0)}
	// The server's hint dominates a shorter backoff...
	if got := p.delay(0, 2*time.Second); got != 2*time.Second {
		t.Errorf("delay %v, want the 2s Retry-After floor", got)
	}
	// ...but never shortens a longer one.
	if got := p.delay(7, time.Millisecond); got != 2500*time.Millisecond {
		t.Errorf("delay %v, want the 2.5s backoff", got)
	}
}

func TestRetryAfterHint(t *testing.T) {
	for v, want := range map[string]time.Duration{
		"3":   3 * time.Second,
		"0":   0,
		"":    0,
		"abc": 0,
		"-2":  0,
	} {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		if got := retryAfterHint(h); got != want {
			t.Errorf("Retry-After %q: %v, want %v", v, got, want)
		}
	}
}

// minimalPlan returns a valid plan serialization embedding digest, so the
// client's ReadJSONExpect verification passes.
func minimalPlan(t *testing.T, digest string) []byte {
	t.Helper()
	raw, err := json.Marshal(plan.Export{
		Digest:  digest,
		Workers: 8,
		Steps:   []plan.StepExport{{Ways: 8, Multiplier: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// pushbackServer answers the first reject requests with status (and a
// Retry-After hint), then serves a valid plan.
func pushbackServer(t *testing.T, reject int, status int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= reject {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			w.Write([]byte(`{"error":"pushback"}`)) //tofu:allow-errdrop test handler
			return
		}
		var req service.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding request: %v", err)
		}
		norm, err := req.Normalize()
		if err != nil {
			t.Errorf("normalizing: %v", err)
		}
		digest, err := norm.Digest()
		if err != nil {
			t.Errorf("digest: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(minimalPlan(t, digest)) //tofu:allow-errdrop test handler
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestPartitionRetries429ThenSuccess(t *testing.T) {
	srv, calls := pushbackServer(t, 2, http.StatusTooManyRequests, "")
	var slept []time.Duration
	c := New(srv.URL)
	c.Retry = RetryPolicy{
		MaxRetries: 3,
		Jitter:     jitterConst(0),
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	req := service.Request{Model: testModel}
	ex, _, err := c.Partition(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Workers != 8 {
		t.Fatalf("plan workers %d", ex.Workers)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff schedule %v, want %v", slept, want)
	}
}

func TestPartitionRetries503HonorsRetryAfter(t *testing.T) {
	srv, calls := pushbackServer(t, 1, http.StatusServiceUnavailable, "2")
	var slept []time.Duration
	c := New(srv.URL)
	c.Retry = RetryPolicy{
		MaxRetries: 2,
		Jitter:     jitterConst(0),
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	if _, _, err := c.Partition(t.Context(), service.Request{Model: testModel}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want the server's 2s Retry-After", slept)
	}
}

// TestZeroValueNeverRetries preserves the historical one-shot contract:
// without an opt-in policy, 429 surfaces immediately as ErrBusy.
func TestZeroValueNeverRetries(t *testing.T) {
	srv, calls := pushbackServer(t, 1000, http.StatusTooManyRequests, "1")
	c := New(srv.URL)
	if _, _, err := c.Partition(t.Context(), service.Request{Model: testModel}); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", calls.Load())
	}
}

// TestRetriesExhaustedReturnsLastError: the policy gives up after
// MaxRetries and hands back the final pushback error.
func TestRetriesExhaustedReturnsLastError(t *testing.T) {
	srv, calls := pushbackServer(t, 1000, http.StatusTooManyRequests, "")
	c := New(srv.URL)
	c.Retry = RetryPolicy{
		MaxRetries: 2,
		Jitter:     jitterConst(0),
		Sleep:      func(ctx context.Context, d time.Duration) error { return nil },
	}
	if _, _, err := c.Partition(t.Context(), service.Request{Model: testModel}); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestSleepAbortsOnContext: a context cancelled mid-backoff stops the
// retry loop with the context's error, not another request.
func TestSleepAbortsOnContext(t *testing.T) {
	srv, calls := pushbackServer(t, 1000, http.StatusTooManyRequests, "")
	c := New(srv.URL)
	c.Retry = RetryPolicy{MaxRetries: 5, BaseDelay: time.Hour, Jitter: jitterConst(0)}
	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Partition(ctx, service.Request{Model: testModel})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Partition did not abort on context cancellation")
	}
}
