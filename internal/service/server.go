package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"tofu/internal/cancel"
	"tofu/internal/plan"
)

// maxRequestBytes bounds a POST body; an inline topology plus model config
// is well under this.
const maxRequestBytes = 1 << 20

// Accepted is the 202 body of an async flip: the job to poll and the digest
// the finished plan will be filed under.
type Accepted struct {
	Job     string `json:"job"`
	Digest  string `json:"digest"`
	JobURL  string `json:"job_url"`
	PlanURL string `json:"plan_url"`
}

type apiError struct {
	Error string `json:"error"`
}

// Handler exposes the service over HTTP/JSON:
//
//	POST /v1/partition      -> 200 plan | 202 Accepted | 400 | 429 | 503
//	GET  /v1/jobs/{id}      -> 200 Status | 404
//	GET  /v1/plans/{digest} -> 200 plan | 202 Accepted | 400 | 404
//	GET  /healthz           -> 200 | 503 (draining)
//	GET  /metrics           -> 200 Snapshot (JSON) | Prometheus text with ?format=prometheus
//
// When Config.Logger is set, every request is logged structurally (trace
// id, digest, cache outcome, tenant, status, duration) and the trace id is
// echoed back in the Tofu-Trace-Id response header.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/partition", s.handlePartition)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/plans/{digest}", s.handlePlan)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logRequests(mux)
}

// statusRecorder captures the status code a handler commits so the access
// log can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// logRequests is the structured access log: one record per request with a
// per-request trace id correlated to the plan content digest the handler
// served (the Tofu-Digest response header). A nil logger short-circuits to
// the bare mux — no wrapper, no per-request cost.
func (s *Service) logRequests(next http.Handler) http.Handler {
	if s.cfg.Logger == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := "r" + itoa6(s.reqSeq.Add(1))
		w.Header().Set("Tofu-Trace-Id", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.cfg.Logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"digest", rec.Header().Get("Tofu-Digest"),
			"source", rec.Header().Get("Tofu-Source"),
			"tenant", r.Header.Get("Tofu-Tenant"),
			"dur_ms", float64(time.Since(start).Microseconds())/1e3,
		)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //tofu:allow-errdrop the response is already committed; a write error means the client is gone
}

// writePlan serves the cached bytes verbatim — no re-encoding, so the wire
// form is byte-identical to a fresh search's WriteJSON output.
func writePlan(w http.ResponseWriter, digest string, val []byte, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Tofu-Digest", digest)
	w.Header().Set("Tofu-Source", source) // "cache" | "search" | "coalesced"
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(val) //tofu:allow-errdrop the response is already committed; a write error means the client is gone
}

func (s *Service) handlePartition(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if len(body) > maxRequestBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiError{"request body too large"})
		return
	}
	req, err := ParseRequest(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	digest, err := req.digestNormalized() // ParseRequest already normalized
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if val, ok := s.Lookup(digest); ok {
		writePlan(w, digest, val, "cache")
		return
	}
	// Deadline admission: refuse work the queue demonstrably cannot finish
	// in budget, with a Retry-After sized to the backlog, instead of
	// accepting a job whose whole budget would burn in the queue.
	if wait, derr := s.CheckDeadline(req); derr != nil {
		w.Header().Set("Retry-After", retryAfterSeconds(wait))
		writeJSON(w, http.StatusServiceUnavailable, apiError{derr.Error()})
		return
	}
	// The tenant header scopes quota accounting only — it never reaches the
	// digest, so tenants share cache entries for identical requests.
	job, kind, err := s.SubmitTenant(req, digest, r.Header.Get("Tofu-Tenant"))
	switch {
	case errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
		return
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	val, jerr, timedOut := s.Wait(r.Context(), job, s.cfg.SyncWait)
	if timedOut {
		// The search outlived the latency budget (or the client left):
		// flip async and let the caller poll the job.
		writeJSON(w, http.StatusAccepted, Accepted{
			Job: job.ID(), Digest: digest,
			JobURL: "/v1/jobs/" + job.ID(), PlanURL: "/v1/plans/" + digest,
		})
		return
	}
	if jerr != nil {
		// A cancelled search (deadline with no incumbent, watchdog, drain)
		// is transient load, not a malformed request: 503 + Retry-After so
		// well-behaved clients back off and re-submit.
		if cancel.IsCancellation(jerr) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, apiError{jerr.Error()})
			return
		}
		writeJSON(w, http.StatusUnprocessableEntity, apiError{jerr.Error()})
		return
	}
	if !s.serveDegraded(w, job.Degraded()) {
		return
	}
	source := "search"
	switch kind {
	case SubmitJoined:
		source = "coalesced"
	case SubmitCached:
		source = "cache"
	}
	writePlan(w, digest, val, source)
}

// serveDegraded applies Config.DegradedPolicy to a finished job: under
// DegradedServe it stamps the Tofu-Degraded response header and reports
// true (serve the incumbent); under DegradedFail it writes the 503 and
// reports false. Non-degraded results always pass untouched.
func (s *Service) serveDegraded(w http.ResponseWriter, degraded bool) bool {
	if !degraded {
		return true
	}
	if s.cfg.DegradedPolicy == DegradedFail {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			apiError{"search degraded: deadline exhausted before the proven optimum (degraded-policy=fail)"})
		return false
	}
	w.Header().Set("Tofu-Degraded", "true")
	return true
}

// retryAfterSeconds renders a backlog estimate as a Retry-After value:
// whole seconds, rounded up, at least 1.
func retryAfterSeconds(wait time.Duration) string {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"unknown job (finished jobs are retained briefly; re-POST the request)"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handlePlan(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if err := plan.ValidateDigest(digest); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if val, ok := s.Lookup(digest); ok {
		writePlan(w, digest, val, "cache")
		return
	}
	if j, ok := s.InFlight(digest); ok {
		writeJSON(w, http.StatusAccepted, Accepted{
			Job: j.ID(), Digest: digest,
			JobURL: "/v1/jobs/" + j.ID(), PlanURL: "/v1/plans/" + digest,
		})
		return
	}
	// Evicted from the LRU but the finished job is still indexed: an async
	// client must not lose the search it was 202'd for. Degraded incumbents
	// live only here (never in the cache), so this is also where a 202'd
	// deadline-bounded client collects its plan.
	if val, degraded, ok := s.RecoverPlan(digest); ok {
		if !s.serveDegraded(w, degraded) {
			return
		}
		writePlan(w, digest, val, "cache")
		return
	}
	writeJSON(w, http.StatusNotFound, apiError{"plan not cached (POST /v1/partition to compute it)"})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WritePrometheus(w) //tofu:allow-errdrop the response is already committed; a write error means the client is gone
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}
