package service

import (
	"sort"
	"sync"

	"tofu/internal/plan"
	"tofu/internal/recursive"
	"tofu/internal/store"
	"tofu/internal/topo"
)

// neighborsPerModel bounds how many cached plans the warm-start index
// retains per model bucket; beyond it the entry furthest (by worker count)
// from the newcomer is dropped. A handful is plenty — seeds only need one
// good ordering, and a poor one costs search effort, never plan bytes.
const neighborsPerModel = 8

// neighborPlan is one cached answer for a model: where it ran and the
// factor-to-level ordering it realized. It is the unit the warm-start
// neighbor index serves — "this model, partitioned elsewhere in the fleet,
// chose this ordering".
type neighborPlan struct {
	digest  string
	workers int64
	steps   []recursive.WarmStep
}

// neighborIndex maps model digests to their cached plans across worker
// counts and machines. Fed by finished searches, store hits, and the boot
// scan of a shared store directory; read on every topology-aware search to
// seed the branch-and-bound incumbent.
type neighborIndex struct {
	mu      sync.Mutex
	byModel map[string][]neighborPlan
}

func newNeighborIndex() *neighborIndex {
	return &neighborIndex{byModel: make(map[string][]neighborPlan)}
}

// add records a plan's realized ordering under its model bucket,
// deduplicating by request digest.
func (ix *neighborIndex) add(modelDigest, digest string, workers int64, steps []recursive.WarmStep) {
	if modelDigest == "" || len(steps) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	bucket := ix.byModel[modelDigest]
	for i := range bucket {
		if bucket[i].digest == digest {
			bucket[i].workers = workers
			bucket[i].steps = steps
			return
		}
	}
	bucket = append(bucket, neighborPlan{digest: digest, workers: workers, steps: steps})
	if len(bucket) > neighborsPerModel {
		// Drop the entry whose worker count is furthest from the newcomer
		// (ties: the lexicographically larger digest) — neighbors near the
		// fleet's current scale are the useful seeds.
		ref := workers
		worst := 0
		for i := 1; i < len(bucket); i++ {
			di, dw := absI64(bucket[i].workers-ref), absI64(bucket[worst].workers-ref)
			if di > dw || (di == dw && bucket[i].digest > bucket[worst].digest) {
				worst = i
			}
		}
		bucket = append(bucket[:worst], bucket[worst+1:]...)
	}
	ix.byModel[modelDigest] = bucket
}

// seedFor picks the best neighbor for a request — same model, different
// digest, nearest worker count (ties: lexicographically smallest digest, so
// the choice is deterministic across replicas) — and maps its ordering onto
// the requested machine. nil means "no usable neighbor": the search runs
// cold, exactly as before this index existed.
func (ix *neighborIndex) seedFor(modelDigest, selfDigest string, workers int64, tp topo.Topology) []recursive.WarmStep {
	if modelDigest == "" {
		return nil
	}
	ix.mu.Lock()
	var best *neighborPlan
	for i := range ix.byModel[modelDigest] {
		n := &ix.byModel[modelDigest][i]
		if n.digest == selfDigest {
			continue
		}
		if best == nil {
			best = n
			continue
		}
		dn, db := absI64(n.workers-workers), absI64(best.workers-workers)
		if dn < db || (dn == db && n.digest < best.digest) {
			best = n
		}
	}
	var steps []recursive.WarmStep
	if best != nil {
		steps = append(steps, best.steps...)
	}
	ix.mu.Unlock()
	if steps == nil {
		return nil
	}
	return recursive.WarmOrderFromSteps(tp, steps)
}

// models lists the indexed model digests (sorted; for tests).
func (ix *neighborIndex) models() []string {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make([]string, 0, len(ix.byModel))
	for d := range ix.byModel {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// warmStepsFromMeta converts a store entry's recorded ordering into the
// search layer's seed form.
func warmStepsFromMeta(meta store.Meta) []recursive.WarmStep {
	if len(meta.Steps) == 0 {
		return nil
	}
	out := make([]recursive.WarmStep, len(meta.Steps))
	for i, st := range meta.Steps {
		out[i] = recursive.WarmStep{Factor: st.Factor, Level: st.Level}
	}
	return out
}

// warmStepsFromExport extracts a parsed plan's realized ordering in the
// search layer's seed form.
func warmStepsFromExport(ex plan.Export) []recursive.WarmStep {
	if len(ex.Steps) == 0 {
		return nil
	}
	out := make([]recursive.WarmStep, len(ex.Steps))
	for i, st := range ex.Steps {
		out[i] = recursive.WarmStep{Factor: st.Ways, Level: st.Level}
	}
	return out
}

// storeStepsFromExport extracts a parsed plan's realized ordering in the
// store's header form. Plans that never ran the topology-aware search
// (single-level machines) record their steps too — factor and level are
// still meaningful for the index's bookkeeping.
func storeStepsFromExport(ex plan.Export) []store.Step {
	out := make([]store.Step, len(ex.Steps))
	for i, st := range ex.Steps {
		out[i] = store.Step{Factor: st.Ways, Level: st.Level}
	}
	return out
}
