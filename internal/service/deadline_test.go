package service

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"tofu/internal/cancel"
	"tofu/internal/models"
	"tofu/internal/plan"
)

// degradedPlanJSON builds a minimal valid plan serialization carrying the
// Degraded marker — what the anytime search returns when its budget
// expires with an incumbent in hand.
func degradedPlanJSON(t *testing.T) []byte {
	t.Helper()
	raw, err := json.Marshal(plan.Export{
		Workers:  8,
		Steps:    []plan.StepExport{{Ways: 8, Multiplier: 1}},
		Degraded: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

var deadlineModel = models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}

// TestWatchdogCancelsWedgedSearch: a compute that never returns on its own
// must be unwedged by the watchdog's trip of the job token; the job fails
// with a cancellation error and the cancelled counter moves.
func TestWatchdogCancelsWedgedSearch(t *testing.T) {
	s := New(Config{
		Workers: 1, QueueDepth: 4, Watchdog: 20 * time.Millisecond,
		ComputeCancel: func(r Request, tok *cancel.Token) ([]byte, error) {
			for !tok.Cancelled() {
				time.Sleep(time.Millisecond)
			}
			return nil, tok.Err()
		},
	})
	defer s.Shutdown(context.Background())

	j, _, err := s.Submit(Request{Model: deadlineModel}, testDigest(20))
	if err != nil {
		t.Fatal(err)
	}
	_, jerr, timedOut := s.Wait(context.Background(), j, 5*time.Second)
	if timedOut {
		t.Fatal("watchdog never unwedged the search")
	}
	if !cancel.IsCancellation(jerr) {
		t.Fatalf("wedged job error = %v, want a cancellation", jerr)
	}
	if snap := s.Metrics(); snap.SearchCancelled != 1 || snap.JobsFailed != 1 {
		t.Errorf("metrics = %+v, want SearchCancelled=1 JobsFailed=1", snap)
	}
}

// TestDegradedPlanServedNotCached: a degraded incumbent is a real answer —
// the waiter gets the bytes and the job carries the marker — but it must
// stay out of the cache and the retained-plan recovery must not re-cache
// it, so the next identical request re-runs the search.
func TestDegradedPlanServedNotCached(t *testing.T) {
	computes := 0
	want := degradedPlanJSON(t)
	s := New(Config{
		Workers: 1, QueueDepth: 4,
		ComputeCancel: func(r Request, tok *cancel.Token) ([]byte, error) {
			computes++
			return want, nil
		},
	})
	defer s.Shutdown(context.Background())

	digest := testDigest(21)
	req := Request{Model: deadlineModel}
	for round := 1; round <= 2; round++ {
		j, kind, err := s.Submit(req, digest)
		if err != nil {
			t.Fatal(err)
		}
		if kind != SubmitNew {
			t.Fatalf("round %d: submit kind %v, want a fresh search", round, kind)
		}
		val, jerr, timedOut := s.Wait(context.Background(), j, 5*time.Second)
		if jerr != nil || timedOut {
			t.Fatalf("round %d: wait: %v (timedOut=%v)", round, jerr, timedOut)
		}
		if string(val) != string(want) {
			t.Fatalf("round %d: served %q", round, val)
		}
		if !j.Degraded() {
			t.Fatalf("round %d: job lost its degraded marker", round)
		}
		if _, ok := s.Lookup(digest); ok {
			t.Fatalf("round %d: degraded plan entered the cache", round)
		}
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 (degraded results are never reused)", computes)
	}
	// The async backstop still recovers the incumbent for a 202'd client,
	// marked degraded and without planting it in the cache.
	val, degraded, ok := s.RecoverPlan(digest)
	if !ok || !degraded || string(val) != string(want) {
		t.Fatalf("RecoverPlan = %q, degraded=%v, ok=%v", val, degraded, ok)
	}
	if _, cached := s.Lookup(digest); cached {
		t.Fatal("RecoverPlan re-cached a degraded plan")
	}
	if snap := s.Metrics(); snap.SearchDegraded != 2 {
		t.Errorf("SearchDegraded = %d, want 2", snap.SearchDegraded)
	}
}

// TestDeadlineForPrecedence: a request's own deadline_ms wins over the
// server default; without either the search is unbounded.
func TestDeadlineForPrecedence(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, DefaultDeadline: time.Second,
		Compute: func(Request) ([]byte, error) { return nil, nil }})
	defer s.Shutdown(context.Background())
	if d := s.DeadlineFor(Request{Model: deadlineModel}); d != time.Second {
		t.Errorf("default deadline: %v", d)
	}
	if d := s.DeadlineFor(Request{Model: deadlineModel, DeadlineMs: 250}); d != 250*time.Millisecond {
		t.Errorf("request deadline: %v", d)
	}
	s2 := New(Config{Workers: 1, QueueDepth: 1,
		Compute: func(Request) ([]byte, error) { return nil, nil }})
	defer s2.Shutdown(context.Background())
	if d := s2.DeadlineFor(Request{Model: deadlineModel}); d != 0 {
		t.Errorf("unbounded deadline: %v", d)
	}
}

// TestCheckDeadlineAdmission: once the queue's estimated wait provably
// exceeds a request's whole budget, the submission is refused up front
// with ErrDeadlineInfeasible; unbounded requests and empty-evidence
// queues always pass.
func TestCheckDeadlineAdmission(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{
		Workers: 1, QueueDepth: 8,
		Compute: func(Request) ([]byte, error) { <-gate; return []byte("x"), nil },
	})
	defer func() {
		close(gate)
		s.Shutdown(context.Background())
	}()

	tight := Request{Model: deadlineModel, DeadlineMs: 100}
	// No latency evidence and an empty queue: everything is admitted.
	if _, err := s.CheckDeadline(tight); err != nil {
		t.Fatalf("empty-evidence admission refused: %v", err)
	}

	// Evidence: searches take ~1s; then a backlog of queued jobs. The
	// worker holds one job (not counted), the rest sit in the queue.
	s.metrics.observeSearch(time.Second)
	for i := 0; i < 4; i++ {
		if _, _, err := s.Submit(Request{Model: deadlineModel}, testDigest(30+i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, func() bool { return s.EstimatedWait() >= 3*time.Second })

	wait, err := s.CheckDeadline(tight)
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("overloaded admission: err = %v, want ErrDeadlineInfeasible", err)
	}
	if wait < 3*time.Second {
		t.Errorf("estimated wait %v, want >= 3s (3 queued x 1s p50 / 1 worker)", wait)
	}
	// The same queue admits an unbounded request: no deadline, no refusal.
	if _, err := s.CheckDeadline(Request{Model: deadlineModel}); err != nil {
		t.Errorf("unbounded request refused: %v", err)
	}
	if snap := s.Metrics(); snap.DeadlineRejected != 1 {
		t.Errorf("DeadlineRejected = %d, want 1", snap.DeadlineRejected)
	}
}

// waitUntil polls cond to absorb the instant between Submit returning and
// the worker draining the queue's head.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownCancelsWedgedJob: a bounded drain must not be stalled by a
// running search. A token-honoring search is cancelled and drains inside
// the grace; one that ignores its token is abandoned with the context's
// error — in bounded time either way.
func TestShutdownCancelsWedgedJob(t *testing.T) {
	t.Run("honors-token", func(t *testing.T) {
		started := make(chan struct{})
		s := New(Config{
			Workers: 1, QueueDepth: 2, ShutdownGrace: 5 * time.Second,
			ComputeCancel: func(r Request, tok *cancel.Token) ([]byte, error) {
				close(started)
				for !tok.Cancelled() {
					time.Sleep(time.Millisecond)
				}
				return nil, tok.Err()
			},
		})
		if _, _, err := s.Submit(Request{Model: deadlineModel}, testDigest(40)); err != nil {
			t.Fatal(err)
		}
		<-started
		ctx, cancelCtx := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancelCtx()
		t0 := time.Now()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown of a token-honoring search: %v", err)
		}
		if d := time.Since(t0); d > 3*time.Second {
			t.Fatalf("drain took %v, want well under the grace", d)
		}
	})
	t.Run("ignores-token", func(t *testing.T) {
		started := make(chan struct{})
		wedge := make(chan struct{})
		s := New(Config{
			Workers: 1, QueueDepth: 2, ShutdownGrace: 50 * time.Millisecond,
			ComputeCancel: func(r Request, tok *cancel.Token) ([]byte, error) {
				close(started)
				<-wedge // a seam bug: the token is never consulted
				return nil, nil
			},
		})
		defer close(wedge) // unwedge the leaked worker when the test ends
		if _, _, err := s.Submit(Request{Model: deadlineModel}, testDigest(41)); err != nil {
			t.Fatal(err)
		}
		<-started
		ctx, cancelCtx := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancelCtx()
		t0 := time.Now()
		err := s.Shutdown(ctx)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("shutdown of a token-ignoring search: err = %v, want DeadlineExceeded", err)
		}
		if d := time.Since(t0); d > 3*time.Second {
			t.Fatalf("abandoning took %v, want ctx timeout + grace", d)
		}
	})
}
