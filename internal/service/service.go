package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"tofu/internal/recursive"
)

// Errors the submission path reports; the HTTP layer maps them to status
// codes (429 and 503).
var (
	// ErrQueueFull is queue backpressure: the job queue is at capacity and
	// the caller should retry later.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown rejects new work while in-flight jobs drain.
	ErrShuttingDown = errors.New("service: shutting down")
)

// JobState is the lifecycle of an async search job.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one deduplicated search: every concurrent request for the same
// digest shares a single Job (singleflight), and the async API polls it by
// ID.
type Job struct {
	id     string
	digest string
	req    Request

	// done closes when the search finishes (either way); val/err are only
	// read after done.
	done chan struct{}
	val  []byte
	err  error

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
}

// ID is the job's opaque identifier.
func (j *Job) ID() string { return j.id }

// Digest is the request content digest the job answers.
func (j *Job) Digest() string { return j.digest }

// Done closes when the search finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the serialized plan (or search error); it must only be
// called after Done is closed.
func (j *Job) Result() ([]byte, error) { return j.val, j.err }

// Status is the JSON view of a job for GET /v1/jobs/{id}.
type Status struct {
	ID      string   `json:"id"`
	Digest  string   `json:"digest"`
	State   JobState `json:"state"`
	Error   string   `json:"error,omitempty"`
	PlanURL string   `json:"plan_url,omitempty"`
	// QueuedMs and RunMs break down where the job's wall-clock went.
	QueuedMs float64 `json:"queued_ms"`
	RunMs    float64 `json:"run_ms,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{ID: j.id, Digest: j.digest, State: j.state}
	switch j.state {
	case JobQueued:
		st.QueuedMs = time.Since(j.created).Seconds() * 1e3
	case JobRunning:
		st.QueuedMs = j.started.Sub(j.created).Seconds() * 1e3
		st.RunMs = time.Since(j.started).Seconds() * 1e3
	case JobDone, JobFailed:
		st.QueuedMs = j.started.Sub(j.created).Seconds() * 1e3
		st.RunMs = j.finished.Sub(j.started).Seconds() * 1e3
	}
	if j.state == JobDone {
		st.PlanURL = "/v1/plans/" + j.digest
	}
	if j.state == JobFailed && j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	now := time.Now()
	j.state = s
	switch s {
	case JobRunning:
		j.started = now
	case JobDone, JobFailed:
		j.finished = now
	}
	j.mu.Unlock()
}

// maxRetainedJobs bounds the finished-job index so a long-lived daemon's
// job map cannot grow without bound; pollers of evicted jobs re-POST.
const maxRetainedJobs = 1024

// Config sizes the service.
type Config struct {
	// CacheSize bounds the plan LRU (entries; default 128).
	CacheSize int
	// Workers is the search worker-pool size (default: half of GOMAXPROCS,
	// at least 1 — each search is itself parallel).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs; a full queue rejects
	// with ErrQueueFull (default 64).
	QueueDepth int
	// SyncWait is how long POST /v1/partition waits for a search before
	// flipping to the async 202 reply (default 2s).
	SyncWait time.Duration
	// Parallelism is each search's DP worker count (0 = GOMAXPROCS).
	Parallelism int
	// PricingCacheSize bounds the cross-request pricing-reuse LRU to this
	// many distinct models (default 32). Warm requests for a cached model —
	// at any worker count or topology — skip most of the symbolic pricing.
	PricingCacheSize int
	// Compute overrides the search itself — the test seam. nil means
	// ComputePlan.
	Compute func(Request) ([]byte, error)
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SyncWait <= 0 {
		c.SyncWait = 2 * time.Second
	}
	if c.PricingCacheSize <= 0 {
		c.PricingCacheSize = 32
	}
	return c
}

// Service is the partition-as-a-service core: cache in front, singleflight
// dedup in the middle, a bounded worker pool and queue behind. The HTTP
// layer (Handler) is a thin translation onto these methods, so tests and
// in-process callers get the identical semantics.
type Service struct {
	cfg     Config
	cache   *Cache
	pricing *PricingCaches
	metrics *Metrics
	started time.Time

	mu       sync.Mutex
	closed   bool
	inflight map[string]*Job // digest -> the job every identical request joins
	jobs     map[string]*Job // id -> job, finished jobs retained (bounded)
	doneIDs  []string        // finished job ids, oldest first (retention ring)
	seq      int64

	queue chan *Job
	wg    sync.WaitGroup
}

// New starts a service and its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheSize),
		pricing:  NewPricingCaches(cfg.PricingCacheSize),
		metrics:  &Metrics{},
		started:  time.Now(),
		inflight: make(map[string]*Job),
		jobs:     make(map[string]*Job),
		queue:    make(chan *Job, cfg.QueueDepth),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Lookup answers from the plan cache only.
func (s *Service) Lookup(digest string) ([]byte, bool) {
	val, ok := s.cache.Get(digest)
	if ok {
		s.metrics.hits.Add(1)
	}
	return val, ok
}

// SubmitKind says how Submit resolved a request: a fresh search, a join
// onto an in-flight identical search, or a cache hit that landed between
// the caller's Lookup and the submission.
type SubmitKind int

const (
	SubmitNew SubmitKind = iota
	SubmitJoined
	SubmitCached
)

// Submit routes a cache miss: join the in-flight job for the same digest if
// one exists (SubmitJoined), otherwise enqueue a new search (SubmitNew). A
// full queue returns ErrQueueFull; a draining service returns
// ErrShuttingDown. The caller must have Normalized the request (digest must
// be its Digest).
func (s *Service) Submit(req Request, digest string) (job *Job, kind SubmitKind, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, SubmitNew, ErrShuttingDown
	}
	// Re-check the cache under the lock: a search may have finished between
	// the caller's Lookup and here, and its job already left inflight.
	if _, ok := s.cache.Get(digest); ok {
		s.metrics.hits.Add(1)
		return s.finishedJobFor(digest), SubmitCached, nil
	}
	if j, ok := s.inflight[digest]; ok {
		s.metrics.coalesced.Add(1)
		s.metrics.misses.Add(1)
		return j, SubmitJoined, nil
	}
	s.seq++
	j := &Job{
		id:      fmt.Sprintf("j%06d-%s", s.seq, shortDigest(digest)),
		digest:  digest,
		req:     req,
		done:    make(chan struct{}),
		state:   JobQueued,
		created: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.metrics.rejected.Add(1)
		return nil, SubmitNew, ErrQueueFull
	}
	s.inflight[digest] = j
	s.jobs[j.id] = j
	s.metrics.misses.Add(1)
	return j, SubmitNew, nil
}

// finishedJobFor returns the retained finished job for a digest if one is
// still indexed, or a synthetic done job wrapping the cached bytes — so
// Submit's cache re-check hands every caller a waitable Job either way.
func (s *Service) finishedJobFor(digest string) *Job {
	for _, id := range s.doneIDs {
		if j := s.jobs[id]; j != nil && j.digest == digest && j.err == nil {
			return j
		}
	}
	val, _ := s.cache.Get(digest)
	j := &Job{
		id: "cached-" + shortDigest(digest), digest: digest,
		done: make(chan struct{}), state: JobDone, val: val,
	}
	close(j.done)
	return j
}

func shortDigest(d string) string {
	if len(d) >= 15 {
		return d[7:15]
	}
	return d
}

// RecoverPlan returns a finished-but-evicted plan from the retained job
// index, re-inserting it into the cache. It is the async API's backstop: a
// plan computed for a 202'd client must survive cache churn at least until
// its job is evicted from the (larger, time-ordered) job index — otherwise
// the client's completed search would be lost and re-run.
func (s *Service) RecoverPlan(digest string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.doneIDs) - 1; i >= 0; i-- {
		if j := s.jobs[s.doneIDs[i]]; j != nil && j.digest == digest && j.err == nil {
			s.cache.Put(digest, j.val)
			s.metrics.hits.Add(1)
			return j.val, true
		}
	}
	return nil, false
}

// Job finds a job by ID (running or retained-finished).
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// InFlight returns the live job for a digest, if any.
func (s *Service) InFlight(digest string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.inflight[digest]
	return j, ok
}

// Wait blocks for a job up to d (or ctx cancellation). timedOut reports the
// async flip: the job keeps running and the caller should poll it.
func (s *Service) Wait(ctx context.Context, j *Job, d time.Duration) (val []byte, err error, timedOut bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-j.done:
		val, err = j.Result()
		return val, err, false
	case <-t.C:
		return nil, nil, true
	case <-ctx.Done():
		return nil, ctx.Err(), true
	}
}

// worker runs queued searches until the queue closes at shutdown.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

func (s *Service) run(j *Job) {
	j.setState(JobRunning)
	s.metrics.inFlight.Add(1)
	start := time.Now()
	compute := s.cfg.Compute
	if compute == nil {
		// The submission path already normalized the request and computed
		// its digest; skip both on the worker. The search shares the
		// model's pricing bucket across requests and reports its
		// ordering-search effort into /metrics.
		compute = func(r Request) ([]byte, error) {
			var st recursive.SearchStats
			val, err := computeNormalized(r, j.digest, s.cfg.Parallelism, s.pricing.For(r.Model), &st)
			s.metrics.observeOrderingSearch(st)
			return val, err
		}
	}
	val, err := compute(j.req)
	s.metrics.observeSearch(time.Since(start))
	s.metrics.inFlight.Add(-1)

	s.mu.Lock()
	j.val, j.err = val, err
	if err == nil {
		s.cache.Put(j.digest, val)
		s.metrics.jobsDone.Add(1)
	} else {
		s.metrics.jobsFail.Add(1)
	}
	delete(s.inflight, j.digest)
	s.retainFinishedLocked(j)
	s.mu.Unlock()

	if err == nil {
		j.setState(JobDone)
	} else {
		j.setState(JobFailed)
	}
	close(j.done)
}

func (s *Service) retainFinishedLocked(j *Job) {
	s.doneIDs = append(s.doneIDs, j.id)
	for len(s.doneIDs) > maxRetainedJobs {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
}

// Shutdown drains: new submissions are rejected, every queued and running
// job finishes, then the worker pool exits. It returns ctx.Err() if the
// deadline expires first (workers keep draining in the background).
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun (healthz turns 503).
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Metrics snapshots the counters and gauges.
func (s *Service) Metrics() Snapshot {
	p50, p99 := s.metrics.percentiles()
	ph, pm, mh, mm := s.pricing.PricingStats()
	return Snapshot{
		Hits:              s.metrics.hits.Load(),
		Misses:            s.metrics.misses.Load(),
		Coalesced:         s.metrics.coalesced.Load(),
		Rejected:          s.metrics.rejected.Load(),
		JobsDone:          s.metrics.jobsDone.Load(),
		JobsFailed:        s.metrics.jobsFail.Load(),
		InFlight:          s.metrics.inFlight.Load(),
		QueueLen:          len(s.queue),
		QueueCap:          s.cfg.QueueDepth,
		CacheLen:          s.cache.Len(),
		CacheCap:          s.cfg.CacheSize,
		PricingModels:     s.pricing.Models(),
		PricingModelCap:   s.cfg.PricingCacheSize,
		PricingHits:       ph,
		PricingMisses:     pm,
		PricingModelHits:  mh,
		PricingModelMiss:  mm,
		SearchOrderings:   s.metrics.searchOrderings.Load(),
		SearchPruned:      s.metrics.searchPruned.Load(),
		SearchDPSteps:     s.metrics.searchDPSteps.Load(),
		SearchDPStepsFlat: s.metrics.searchDPStepsFlat.Load(),
		SearchP50Ms:       p50.Seconds() * 1e3,
		SearchP99Ms:       p99.Seconds() * 1e3,
		UptimeSec:         time.Since(s.started).Seconds(),
	}
}
