package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tofu/internal/cancel"
	"tofu/internal/plan"
	"tofu/internal/recursive"
	"tofu/internal/store"
)

// Errors the submission path reports; the HTTP layer maps them to status
// codes (429 and 503).
var (
	// ErrQueueFull is queue backpressure: the job queue is at capacity and
	// the caller should retry later.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrTenantQuota is per-tenant backpressure: this tenant already has its
	// full quota of jobs queued or running, even though the global queue may
	// have room. Checked before ErrQueueFull so one tenant's burst reads as
	// its own 429, not everyone's.
	ErrTenantQuota = errors.New("service: tenant over job quota")
	// ErrShuttingDown rejects new work while in-flight jobs drain.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrDeadlineInfeasible rejects a deadline-bounded request whose budget
	// the queue demonstrably cannot meet; the HTTP layer maps it to 503 with
	// a Retry-After estimate.
	ErrDeadlineInfeasible = errors.New("service: queue cannot meet the request deadline")
)

// Cancellation reasons the service injects into a job's token; both are
// recognized by cancel.IsCancellation, so the layers below return their best
// incumbent (or a clean cancellation error) instead of wedging.
var (
	watchdogReason = cancel.NewReason("service: watchdog fired: search exceeded the per-job budget")
	shutdownReason = cancel.NewReason("service: shutting down: search cancelled by the drain deadline")
)

// DegradedPolicy values: what the HTTP layer does with a plan the deadline
// stopped early.
const (
	// DegradedServe returns the incumbent with a `Tofu-Degraded: true`
	// response header — the anytime contract, and the default.
	DegradedServe = "serve"
	// DegradedFail turns degraded results into 503s; callers that must have
	// the proven optimum retry with a larger budget.
	DegradedFail = "fail"
)

// JobState is the lifecycle of an async search job.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one deduplicated search: every concurrent request for the same
// digest shares a single Job (singleflight), and the async API polls it by
// ID.
type Job struct {
	id     string
	digest string
	req    Request
	// tenant is the quota bucket holding a slot for this job ("" = none);
	// sweep marks speculative-precompute work for the metrics split.
	tenant string
	sweep  bool

	// done closes when the search finishes (either way); val/err/degraded
	// are only read after done.
	done     chan struct{}
	val      []byte
	err      error
	degraded bool

	// token cancels the job's search: the deadline and watchdog arm it when
	// the job starts running, and Shutdown trips it on every queued or
	// running job when the drain deadline expires. nil only on the synthetic
	// cache-hit jobs, which never run.
	token *cancel.Token

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
}

// ID is the job's opaque identifier.
func (j *Job) ID() string { return j.id }

// Digest is the request content digest the job answers.
func (j *Job) Digest() string { return j.digest }

// Done closes when the search finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the serialized plan (or search error); it must only be
// called after Done is closed.
func (j *Job) Result() ([]byte, error) { return j.val, j.err }

// Degraded reports that the plan is a deadline-stopped incumbent rather
// than the proven optimum; like Result, it must only be called after Done.
func (j *Job) Degraded() bool { return j.degraded }

// Status is the JSON view of a job for GET /v1/jobs/{id}.
type Status struct {
	ID      string   `json:"id"`
	Digest  string   `json:"digest"`
	State   JobState `json:"state"`
	Error   string   `json:"error,omitempty"`
	PlanURL string   `json:"plan_url,omitempty"`
	// QueuedMs and RunMs break down where the job's wall-clock went.
	QueuedMs float64 `json:"queued_ms"`
	RunMs    float64 `json:"run_ms,omitempty"`
	// Degraded marks a done job whose plan is a deadline-stopped incumbent.
	Degraded bool `json:"degraded,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{ID: j.id, Digest: j.digest, State: j.state}
	switch j.state {
	case JobQueued:
		st.QueuedMs = time.Since(j.created).Seconds() * 1e3
	case JobRunning:
		st.QueuedMs = j.started.Sub(j.created).Seconds() * 1e3
		st.RunMs = time.Since(j.started).Seconds() * 1e3
	case JobDone, JobFailed:
		st.QueuedMs = j.started.Sub(j.created).Seconds() * 1e3
		st.RunMs = j.finished.Sub(j.started).Seconds() * 1e3
	}
	if j.state == JobDone {
		st.PlanURL = "/v1/plans/" + j.digest
		st.Degraded = j.degraded
	}
	if j.state == JobFailed && j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (j *Job) setState(s JobState) {
	j.mu.Lock()
	now := time.Now()
	j.state = s
	switch s {
	case JobRunning:
		j.started = now
	case JobDone, JobFailed:
		j.finished = now
	}
	j.mu.Unlock()
}

// maxRetainedJobs bounds the finished-job index so a long-lived daemon's
// job map cannot grow without bound; pollers of evicted jobs re-POST.
const maxRetainedJobs = 1024

// Config sizes the service.
type Config struct {
	// CacheSize bounds the plan LRU (entries; default 128).
	CacheSize int
	// CacheBytes additionally bounds the plan LRU's payload bytes
	// (0 = entries-only).
	CacheBytes int64
	// Store, when set, layers a persistent content-addressed plan store
	// under the LRU: misses fall through to it (bytes verified against the
	// request digest before serving), finished searches write through to
	// it, and its entries seed the warm-start neighbor index at boot.
	// Replicas sharing one store directory serve each other's plans.
	Store *store.Store
	// TenantQuota bounds each tenant's queued-plus-running jobs
	// (0 = no per-tenant limit). Tenants over quota get ErrTenantQuota
	// before the global queue is consulted.
	TenantQuota int
	// Workers is the search worker-pool size (default: half of GOMAXPROCS,
	// at least 1 — each search is itself parallel).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs; a full queue rejects
	// with ErrQueueFull (default 64).
	QueueDepth int
	// SyncWait is how long POST /v1/partition waits for a search before
	// flipping to the async 202 reply (default 2s).
	SyncWait time.Duration
	// Parallelism is each search's DP worker count (0 = GOMAXPROCS).
	Parallelism int
	// PricingCacheSize bounds the cross-request pricing-reuse LRU to this
	// many distinct models (default 32). Warm requests for a cached model —
	// at any worker count or topology — skip most of the symbolic pricing.
	PricingCacheSize int
	// Compute overrides the search itself — the test seam. nil means
	// ComputePlan.
	Compute func(Request) ([]byte, error)
	// ComputeCancel is Compute with the job's cancellation token — the seam
	// for tests that exercise deadlines, the watchdog and the drain path.
	// Takes precedence over Compute when both are set.
	ComputeCancel func(Request, *cancel.Token) ([]byte, error)
	// DefaultDeadline bounds every search that does not carry its own
	// deadline_ms (0 = unbounded). Requests with deadline_ms keep theirs.
	DefaultDeadline time.Duration
	// Watchdog caps any single search's run time regardless of its deadline
	// (0 = none). A fired watchdog cancels the search through the same
	// anytime path as a deadline, so a wedged job degrades instead of
	// pinning a worker forever.
	Watchdog time.Duration
	// DegradedPolicy is what the HTTP layer does with deadline-stopped
	// incumbents: DegradedServe (default) or DegradedFail.
	DegradedPolicy string
	// ShutdownGrace is how long Shutdown waits after cancelling still-running
	// searches before giving up on the drain (default 2s).
	ShutdownGrace time.Duration
	// Logger, when set, receives structured request and job-lifecycle
	// records (log/slog). nil — the default — logs nothing.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SyncWait <= 0 {
		c.SyncWait = 2 * time.Second
	}
	if c.PricingCacheSize <= 0 {
		c.PricingCacheSize = 32
	}
	if c.DegradedPolicy == "" {
		c.DegradedPolicy = DegradedServe
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 2 * time.Second
	}
	return c
}

// Service is the partition-as-a-service core: cache in front, singleflight
// dedup in the middle, a bounded worker pool and queue behind. The HTTP
// layer (Handler) is a thin translation onto these methods, so tests and
// in-process callers get the identical semantics.
type Service struct {
	cfg     Config
	cache   *Cache
	pricing *PricingCaches
	metrics *Metrics
	started time.Time
	reqSeq  atomic.Int64 // access-log trace-id counter

	mu       sync.Mutex
	closed   bool
	inflight map[string]*Job // digest -> the job every identical request joins
	jobs     map[string]*Job // id -> job, finished jobs retained (bounded)
	doneIDs  []string        // finished job ids, oldest first (retention ring)
	tenants  map[string]int  // tenant -> queued-plus-running jobs
	seq      int64

	neighbors *neighborIndex

	queue chan *Job
	wg    sync.WaitGroup
}

// New starts a service and its worker pool. A configured store is scanned
// once here so the warm-start neighbor index starts with everything the
// fleet already computed.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		cache:     NewCacheBytes(cfg.CacheSize, cfg.CacheBytes),
		pricing:   NewPricingCaches(cfg.PricingCacheSize),
		metrics:   &Metrics{},
		started:   time.Now(),
		inflight:  make(map[string]*Job),
		jobs:      make(map[string]*Job),
		tenants:   make(map[string]int),
		neighbors: newNeighborIndex(),
		queue:     make(chan *Job, cfg.QueueDepth),
	}
	if cfg.Store != nil {
		// Corrupt entries are quarantined inside the scan; a scan error
		// (unreadable directory) degrades to an empty index, not a crash —
		// the store is an accelerator, never a dependency.
		_ = cfg.Store.Scan(func(meta store.Meta, _ []byte) error { //tofu:allow-errdrop boot scan is best-effort; the callback never errors
			s.neighbors.add(meta.ModelDigest, meta.Digest, meta.Workers, warmStepsFromMeta(meta))
			return nil
		})
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Lookup answers from the warm layers: the in-memory LRU first, then the
// persistent store (when configured). Store bytes are verified to answer
// the digest — plan.ReadJSONExpect on top of the store's own checksum —
// before being promoted into the LRU and served.
func (s *Service) Lookup(digest string) ([]byte, bool) {
	val, ok := s.cache.Get(digest)
	if ok {
		s.metrics.hits.Add(1)
		return val, ok
	}
	if s.cfg.Store == nil {
		return nil, false
	}
	meta, val, err := s.cfg.Store.Get(digest)
	if err != nil {
		return nil, false
	}
	if _, err := plan.ReadJSONExpect(bytes.NewReader(val), digest); err != nil {
		// Checksum-valid but not a plan answering this digest: a writer
		// bug, not bit rot. Don't serve it; the search recomputes.
		s.metrics.storeBadPlan.Add(1)
		return nil, false
	}
	s.cache.Put(digest, val)
	s.neighbors.add(meta.ModelDigest, meta.Digest, meta.Workers, warmStepsFromMeta(meta))
	s.metrics.hits.Add(1)
	s.metrics.storeServed.Add(1)
	return val, true
}

// SubmitKind says how Submit resolved a request: a fresh search, a join
// onto an in-flight identical search, or a cache hit that landed between
// the caller's Lookup and the submission.
type SubmitKind int

const (
	SubmitNew SubmitKind = iota
	SubmitJoined
	SubmitCached
)

// Submit routes a cache miss: join the in-flight job for the same digest if
// one exists (SubmitJoined), otherwise enqueue a new search (SubmitNew). A
// full queue returns ErrQueueFull; a draining service returns
// ErrShuttingDown. The caller must have Normalized the request (digest must
// be its Digest).
func (s *Service) Submit(req Request, digest string) (job *Job, kind SubmitKind, err error) {
	return s.submit(req, digest, "", false)
}

// SubmitTenant is Submit under a tenant's quota: when Config.TenantQuota is
// set and the tenant already has that many jobs queued or running, the
// submission is rejected with ErrTenantQuota — before the global queue is
// consulted, so one tenant's burst cannot read as fleet-wide backpressure.
// Joining an in-flight search is always free: the work already exists.
func (s *Service) SubmitTenant(req Request, digest, tenant string) (job *Job, kind SubmitKind, err error) {
	return s.submit(req, digest, tenant, false)
}

func (s *Service) submit(req Request, digest, tenant string, sweep bool) (job *Job, kind SubmitKind, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, SubmitNew, ErrShuttingDown
	}
	// Re-check the cache under the lock: a search may have finished between
	// the caller's Lookup and here, and its job already left inflight.
	if _, ok := s.cache.Get(digest); ok {
		s.metrics.hits.Add(1)
		return s.finishedJobFor(digest), SubmitCached, nil
	}
	if j, ok := s.inflight[digest]; ok {
		s.metrics.coalesced.Add(1)
		s.metrics.misses.Add(1)
		return j, SubmitJoined, nil
	}
	if tenant != "" && s.cfg.TenantQuota > 0 && s.tenants[tenant] >= s.cfg.TenantQuota {
		s.metrics.tenantRejected.Add(1)
		return nil, SubmitNew, fmt.Errorf("%w (tenant %q, quota %d)", ErrTenantQuota, tenant, s.cfg.TenantQuota)
	}
	s.seq++
	j := &Job{
		id:      fmt.Sprintf("j%06d-%s", s.seq, shortDigest(digest)),
		digest:  digest,
		req:     req,
		tenant:  tenant,
		sweep:   sweep,
		done:    make(chan struct{}),
		token:   cancel.New(),
		state:   JobQueued,
		created: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.metrics.rejected.Add(1)
		return nil, SubmitNew, ErrQueueFull
	}
	if tenant != "" {
		s.tenants[tenant]++
	}
	s.inflight[digest] = j
	s.jobs[j.id] = j
	s.metrics.misses.Add(1)
	return j, SubmitNew, nil
}

// finishedJobFor returns the retained finished job for a digest if one is
// still indexed, or a synthetic done job wrapping the cached bytes — so
// Submit's cache re-check hands every caller a waitable Job either way.
func (s *Service) finishedJobFor(digest string) *Job {
	for _, id := range s.doneIDs {
		if j := s.jobs[id]; j != nil && j.digest == digest && j.err == nil {
			return j
		}
	}
	val, _ := s.cache.Get(digest)
	j := &Job{
		id: "cached-" + shortDigest(digest), digest: digest,
		done: make(chan struct{}), state: JobDone, val: val,
	}
	close(j.done)
	return j
}

func shortDigest(d string) string {
	if len(d) >= 15 {
		return d[7:15]
	}
	return d
}

// itoa6 zero-pads a sequence number to six digits (trace and job ids).
func itoa6(n int64) string {
	s := strconv.FormatInt(n, 10)
	for len(s) < 6 {
		s = "0" + s
	}
	return s
}

// RecoverPlan returns a finished-but-evicted plan from the retained job
// index, re-inserting it into the cache. It is the async API's backstop: a
// plan computed for a 202'd client must survive cache churn at least until
// its job is evicted from the (larger, time-ordered) job index — otherwise
// the client's completed search would be lost and re-run. Degraded plans
// are recoverable too (their 202'd clients still deserve the incumbent)
// but stay out of the cache, so fresh requests re-search.
func (s *Service) RecoverPlan(digest string) (val []byte, degraded, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.doneIDs) - 1; i >= 0; i-- {
		if j := s.jobs[s.doneIDs[i]]; j != nil && j.digest == digest && j.err == nil {
			if !j.degraded {
				s.cache.Put(digest, j.val)
			}
			s.metrics.hits.Add(1)
			return j.val, j.degraded, true
		}
	}
	return nil, false, false
}

// Job finds a job by ID (running or retained-finished).
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// InFlight returns the live job for a digest, if any.
func (s *Service) InFlight(digest string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.inflight[digest]
	return j, ok
}

// Wait blocks for a job up to d (or ctx cancellation). timedOut reports the
// async flip: the job keeps running and the caller should poll it.
func (s *Service) Wait(ctx context.Context, j *Job, d time.Duration) (val []byte, err error, timedOut bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-j.done:
		val, err = j.Result()
		return val, err, false
	case <-t.C:
		return nil, nil, true
	case <-ctx.Done():
		return nil, ctx.Err(), true
	}
}

// worker runs queued searches until the queue closes at shutdown.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// DeadlineFor resolves a request's effective search budget: its own
// deadline_ms when set, else the server's default (0 = unbounded).
func (s *Service) DeadlineFor(req Request) time.Duration {
	if req.DeadlineMs > 0 {
		return time.Duration(req.DeadlineMs) * time.Millisecond
	}
	return s.cfg.DefaultDeadline
}

// EstimatedWait predicts how long a newly queued job sits before a worker
// picks it up: the queued backlog paced by the p50 search latency across the
// pool. Zero when the latency window is empty — no evidence, no rejection.
func (s *Service) EstimatedWait() time.Duration {
	p50, _ := s.metrics.percentiles()
	if p50 == 0 {
		return 0
	}
	return time.Duration(len(s.queue)) * p50 / time.Duration(s.cfg.Workers)
}

// CheckDeadline is the admission control for deadline-bounded requests: when
// the queue's estimated wait already exceeds the request's whole budget, the
// search would start degraded-or-worse, so the submission is rejected with
// ErrDeadlineInfeasible (503 + Retry-After at the HTTP layer) instead of
// burning a worker on it. Unbounded requests always pass.
func (s *Service) CheckDeadline(req Request) (wait time.Duration, err error) {
	d := s.DeadlineFor(req)
	if d <= 0 {
		return 0, nil
	}
	wait = s.EstimatedWait()
	if wait > d {
		s.metrics.deadlineInfeasible.Add(1)
		return wait, fmt.Errorf("%w (estimated wait %v > budget %v)", ErrDeadlineInfeasible, wait, d)
	}
	return wait, nil
}

func (s *Service) run(j *Job) {
	j.setState(JobRunning)
	s.metrics.inFlight.Add(1)
	start := time.Now()

	// Arm the anytime machinery: the request's (or server-default) deadline
	// and the watchdog both trip the same token the search polls. Stopping
	// the timers on exit keeps finished jobs from firing stale cancels.
	if d := s.DeadlineFor(j.req); d > 0 {
		stop := j.token.CancelAfter(d, cancel.ErrDeadline)
		defer stop()
	}
	if s.cfg.Watchdog > 0 {
		stop := j.token.CancelAfter(s.cfg.Watchdog, watchdogReason)
		defer stop()
	}

	compute := s.cfg.Compute
	if s.cfg.ComputeCancel != nil {
		compute = func(r Request) ([]byte, error) { return s.cfg.ComputeCancel(r, j.token) }
	}
	if compute == nil {
		// The submission path already normalized the request and computed
		// its digest; skip both on the worker. The search shares the
		// model's pricing bucket across requests, seeds its incumbent from
		// the best neighboring cached plan (same model, elsewhere in the
		// fleet — seeds change search effort, never plan bytes), and
		// reports its effort into /metrics.
		compute = func(r Request) ([]byte, error) {
			var warm []recursive.WarmStep
			md, mdErr := modelDigest(r.Model)
			if mdErr == nil && r.Topology != nil {
				warm = s.neighbors.seedFor(md, j.digest, r.Workers, *r.Topology)
			}
			var st recursive.SearchStats
			val, err := computeWarm(r, j.digest, s.cfg.Parallelism, s.pricing.For(r.Model), &st, warm, j.token)
			s.metrics.observeOrderingSearch(st)
			return val, err
		}
	}
	val, err := compute(j.req)
	elapsed := time.Since(start)
	s.metrics.observeSearch(elapsed)
	s.metrics.inFlight.Add(-1)

	// A degraded plan is a real, valid answer — but not the proven optimum,
	// so it is served to its callers and never written into the cache or the
	// store: the next identical request re-runs the search for a chance at
	// the full result instead of pinning the incumbent forever.
	degraded := false
	if err == nil {
		if ex, perr := plan.ReadJSON(bytes.NewReader(val)); perr == nil {
			degraded = ex.Degraded
			if !degraded {
				s.persist(j, val)
			}
		}
	}
	if err == nil && degraded {
		s.metrics.searchDegraded.Add(1)
	}
	if err != nil && cancel.IsCancellation(err) {
		s.metrics.searchCancelled.Add(1)
	}

	if lg := s.cfg.Logger; lg != nil {
		if err != nil {
			lg.Warn("search failed", "job", j.id, "digest", j.digest, "sweep", j.sweep,
				"dur_ms", float64(elapsed.Microseconds())/1e3, "err", err.Error())
		} else {
			lg.Info("search done", "job", j.id, "digest", j.digest, "sweep", j.sweep,
				"dur_ms", float64(elapsed.Microseconds())/1e3, "plan_bytes", len(val), "degraded", degraded)
		}
	}

	s.mu.Lock()
	j.val, j.err, j.degraded = val, err, degraded
	if err == nil {
		if !degraded {
			s.cache.Put(j.digest, val)
		}
		s.metrics.jobsDone.Add(1)
		if j.sweep {
			s.metrics.sweepDone.Add(1)
		}
	} else {
		s.metrics.jobsFail.Add(1)
		if j.sweep {
			s.metrics.sweepFailed.Add(1)
		}
	}
	if j.tenant != "" {
		if s.tenants[j.tenant]--; s.tenants[j.tenant] <= 0 {
			delete(s.tenants, j.tenant)
		}
	}
	delete(s.inflight, j.digest)
	s.retainFinishedLocked(j)
	s.mu.Unlock()

	if err == nil {
		j.setState(JobDone)
	} else {
		j.setState(JobFailed)
	}
	close(j.done)
}

// persist writes a finished plan through to the persistent store (when
// configured) and feeds the warm-start neighbor index. Both are best-effort
// accelerators: the parse guards against a Compute seam returning non-plan
// bytes, and a store write failure costs the fleet a future recompute, not
// this request.
func (s *Service) persist(j *Job, val []byte) {
	ex, err := plan.ReadJSON(bytes.NewReader(val))
	if err != nil {
		return
	}
	md, err := modelDigest(j.req.Model)
	if err != nil {
		return
	}
	s.neighbors.add(md, j.digest, ex.Workers, warmStepsFromExport(ex))
	if s.cfg.Store == nil {
		return
	}
	_ = s.cfg.Store.Put(store.Meta{ //tofu:allow-errdrop the store counts its own put failures; a failed write costs a future recompute, not this request
		Digest:      j.digest,
		ModelDigest: md,
		Workers:     ex.Workers,
		Steps:       storeStepsFromExport(ex),
	}, val)
}

func (s *Service) retainFinishedLocked(j *Job) {
	s.doneIDs = append(s.doneIDs, j.id)
	for len(s.doneIDs) > maxRetainedJobs {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
}

// Shutdown drains: new submissions are rejected, every queued and running
// job finishes, then the worker pool exits. If the context expires before a
// polite drain completes, every queued and running search is cancelled
// through its token — the anytime path hands back degraded incumbents, a
// genuinely wedged Compute seam is simply abandoned — and the pool gets
// Config.ShutdownGrace to unwind. Only a job that ignores its token past
// the grace makes Shutdown return ctx.Err(); a bounded drain can no longer
// be stalled by one stuck search.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, j := range s.inflight {
		j.token.Cancel(shutdownReason)
	}
	s.mu.Unlock()
	grace := time.NewTimer(s.cfg.ShutdownGrace)
	defer grace.Stop()
	select {
	case <-drained:
		return nil
	case <-grace.C:
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun (healthz turns 503).
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Metrics snapshots the counters and gauges.
func (s *Service) Metrics() Snapshot {
	p50, p99 := s.metrics.percentiles()
	ph, pm, mh, mm := s.pricing.PricingStats()
	var st store.Stats
	if s.cfg.Store != nil {
		st = s.cfg.Store.Stats()
	}
	return Snapshot{
		Hits:              s.metrics.hits.Load(),
		Misses:            s.metrics.misses.Load(),
		Coalesced:         s.metrics.coalesced.Load(),
		Rejected:          s.metrics.rejected.Load(),
		JobsDone:          s.metrics.jobsDone.Load(),
		JobsFailed:        s.metrics.jobsFail.Load(),
		InFlight:          s.metrics.inFlight.Load(),
		QueueLen:          len(s.queue),
		QueueCap:          s.cfg.QueueDepth,
		CacheLen:          s.cache.Len(),
		CacheCap:          s.cfg.CacheSize,
		CacheBytes:        s.cache.Bytes(),
		CacheBytesCap:     s.cfg.CacheBytes,
		StoreEnabled:      s.cfg.Store != nil,
		StorePuts:         st.Puts,
		StoreHits:         st.Hits,
		StoreMisses:       st.Misses,
		StoreCorrupt:      st.Corrupt,
		StoreQuarantined:  st.Quarantined,
		StoreServed:       s.metrics.storeServed.Load(),
		StoreBadPlan:      s.metrics.storeBadPlan.Load(),
		StorePutErrors:    st.PutErrors,
		TenantRejected:    s.metrics.tenantRejected.Load(),
		SweepDone:         s.metrics.sweepDone.Load(),
		SweepFailed:       s.metrics.sweepFailed.Load(),
		PricingModels:     s.pricing.Models(),
		PricingModelCap:   s.cfg.PricingCacheSize,
		PricingHits:       ph,
		PricingMisses:     pm,
		PricingModelHits:  mh,
		PricingModelMiss:  mm,
		SearchOrderings:   s.metrics.searchOrderings.Load(),
		SearchSteps:       s.metrics.searchSteps.Load(),
		SearchPruned:      s.metrics.searchPruned.Load(),
		SearchDPSteps:     s.metrics.searchDPSteps.Load(),
		SearchDPStepsFlat: s.metrics.searchDPStepsFlat.Load(),
		SearchWarmStarted: s.metrics.searchWarm.Load(),
		SearchDegraded:    s.metrics.searchDegraded.Load(),
		SearchCancelled:   s.metrics.searchCancelled.Load(),
		DeadlineRejected:  s.metrics.deadlineInfeasible.Load(),
		SearchP50Ms:       p50.Seconds() * 1e3,
		SearchP99Ms:       p99.Seconds() * 1e3,
		UptimeSec:         time.Since(s.started).Seconds(),
	}
}
