// Package service turns the partition search into a system: an HTTP/JSON
// daemon that canonicalizes partition requests into content digests, answers
// from a bounded LRU plan cache, coalesces concurrent identical searches
// singleflight-style, and flips long searches to an async job API backed by
// a bounded worker pool with backpressure. The search engine itself is
// untouched — plans served here are byte-identical to a one-shot
// tofu.PartitionWithOptions run for the same request.
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"tofu/internal/cancel"
	"tofu/internal/core"
	"tofu/internal/dp"
	"tofu/internal/models"
	"tofu/internal/plan"
	"tofu/internal/recursive"
	"tofu/internal/topo"
)

// Request is one partition-as-a-service request: which model to partition,
// across how many workers, on what machine, under which search restrictions.
// The zero values of the optional fields mean "the defaults the CLI uses".
//
// The JSON form is the wire encoding of POST /v1/partition and of the CLIs'
// -model-json files (which carry just the "model" object). Two requests that
// normalize to the same search share one digest and therefore one cache
// entry — notably, a flat machine given three different ways (omitted, as
// the "p2.8xlarge" profile, or inline) digests identically, because flat
// machines don't influence the plan.
type Request struct {
	// Model identifies the benchmark model to partition.
	Model models.Config `json:"model"`
	// Workers is the worker count k (default: the topology's GPU count,
	// or 8 when no topology is given).
	Workers int64 `json:"workers,omitempty"`
	// HW names a built-in machine profile ("p2.8xlarge", "dgx1",
	// "cluster-2x8"). File paths are deliberately not accepted over the
	// wire; inline the machine via Topology instead.
	HW string `json:"hw,omitempty"`
	// Topology is an inline machine description (mutually exclusive with
	// HW). Hierarchical machines switch the search topology-aware.
	Topology *topo.Topology `json:"topology,omitempty"`
	// MaxStates bounds the DP frontier per step (0 = exact search).
	MaxStates int `json:"max_states,omitempty"`
	// Factors overrides the factorization of Workers (EqualChop-style).
	Factors []int64 `json:"factors,omitempty"`
	// TopologyNaive selects the blind cyclic-placement layout on
	// hierarchical machines (the hier-naive baseline).
	TopologyNaive bool `json:"topology_naive,omitempty"`
	// Pipeline switches the request to the joint hybrid-parallelism search:
	// pipeline stages across a slow interconnect level, the partition DP
	// inside each stage. Requires a hierarchical machine.
	Pipeline *PipelineRequest `json:"pipeline,omitempty"`
	// DeadlineMs bounds the search's wall-clock budget in milliseconds
	// (0 = unbounded, or the server's -search-deadline default). A search
	// that exhausts its budget returns its best incumbent marked degraded,
	// so the deadline is part of the request's content: two requests with
	// different budgets may legitimately produce different plans.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// PipelineRequest is the wire form of the hybrid-search knobs that change
// the chosen plan. Simulation-side settings (micro-batch counts) and
// effort-only settings (the exhaustive differential oracle) deliberately
// have no wire form: they never change plan bytes, so they must not change
// digests either.
type PipelineRequest struct {
	// Level is the interconnect level the stages straddle (0 = search all).
	Level int `json:"level,omitempty"`
}

// ParseRequest strictly decodes and normalizes a wire request: unknown
// fields, trailing documents, invalid model configs, unresolvable profiles
// and inconsistent worker counts are all errors here, before any search
// resources are committed.
func ParseRequest(data []byte) (Request, error) {
	var r Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Request{}, fmt.Errorf("service: decoding request: %w", err)
	}
	if dec.More() {
		return Request{}, fmt.Errorf("service: trailing data after request")
	}
	return r.Normalize()
}

// Normalize resolves the request into its canonical form: the HW profile
// name is replaced by the machine it names, the worker count is filled from
// the machine (or the default 8), flat machines — which never change the
// plan — are dropped entirely, and every field is validated. Digest and
// PipelineOptions are only meaningful on a normalized request.
func (r Request) Normalize() (Request, error) {
	if err := r.Model.Validate(); err != nil {
		return Request{}, fmt.Errorf("service: %w", err)
	}
	if r.HW != "" && r.Topology != nil {
		return Request{}, fmt.Errorf("service: request sets both hw %q and an inline topology", r.HW)
	}
	if r.HW != "" {
		t, err := topo.Profile(r.HW)
		if err != nil {
			return Request{}, fmt.Errorf("service: %w", err)
		}
		r.Topology = &t
		r.HW = ""
	}
	if r.Topology != nil {
		if err := r.Topology.Validate(); err != nil {
			return Request{}, fmt.Errorf("service: %w", err)
		}
		gpus := int64(r.Topology.NumGPUs())
		if r.Workers == 0 {
			r.Workers = gpus
		} else if r.Workers != gpus {
			return Request{}, fmt.Errorf("service: workers %d disagrees with the machine's %d GPUs",
				r.Workers, gpus)
		}
		if !r.Topology.Hierarchical() {
			// A flat machine never influences the search, so it must not
			// influence the digest either.
			r.Topology = nil
		}
	}
	if r.Workers == 0 {
		r.Workers = 8
	}
	if r.Workers < 1 {
		return Request{}, fmt.Errorf("service: invalid worker count %d", r.Workers)
	}
	if r.MaxStates < 0 {
		return Request{}, fmt.Errorf("service: invalid max_states %d", r.MaxStates)
	}
	if r.Factors != nil {
		prod := int64(1)
		for _, f := range r.Factors {
			if f < 2 {
				return Request{}, fmt.Errorf("service: invalid factor %d", f)
			}
			prod *= f
		}
		if prod != r.Workers {
			return Request{}, fmt.Errorf("service: factors %v do not multiply to %d", r.Factors, r.Workers)
		}
	}
	if r.DeadlineMs < 0 {
		return Request{}, fmt.Errorf("service: invalid deadline_ms %d", r.DeadlineMs)
	}
	if r.TopologyNaive && r.Topology == nil {
		return Request{}, fmt.Errorf("service: topology_naive requires a hierarchical machine")
	}
	if r.Pipeline != nil {
		if r.Topology == nil {
			return Request{}, fmt.Errorf("service: pipeline search requires a hierarchical machine")
		}
		if r.Factors != nil || r.TopologyNaive {
			return Request{}, fmt.Errorf("service: pipeline search does not compose with explicit factors or naive ordering")
		}
		if lv := r.Pipeline.Level; lv < 0 || lv >= len(r.Topology.Levels) {
			return Request{}, fmt.Errorf("service: pipeline level %d out of range for a %d-level machine",
				lv, len(r.Topology.Levels))
		}
	}
	return r, nil
}

// digestForm is the canonical content hashed into the digest. Every field
// that can change the chosen plan is present (explicitly, including zero
// values — omitempty here would make "absent" and "default" hash alike only
// by accident); anything that cannot (search parallelism, generation and
// memory-planner options, the serving configuration) is absent by
// construction.
type digestForm struct {
	Model         json.RawMessage `json:"model"`
	Workers       int64           `json:"workers"`
	Topology      json.RawMessage `json:"topology"`
	MaxStates     int             `json:"max_states"`
	Factors       []int64         `json:"factors"`
	TopologyNaive bool            `json:"topology_naive"`
	// Pipeline and DeadlineMs are the omitempty exceptions: both post-date
	// the digest format, so they fold into the hash only when present —
	// every pre-existing request keeps its digest byte-for-byte. A deadline
	// belongs in the digest because a degraded incumbent is a different
	// answer than the proven optimum.
	Pipeline   *PipelineRequest `json:"pipeline,omitempty"`
	DeadlineMs int64            `json:"deadline_ms,omitempty"`
}

// Digest returns the stable content digest ("sha256:<64 hex>") of the
// request — the plan cache key, the /v1/plans path component, and the
// digest WriteJSON embeds in served plans.
func (r Request) Digest() (string, error) {
	nr, err := r.Normalize()
	if err != nil {
		return "", err
	}
	return nr.digestNormalized()
}

// digestNormalized hashes a request that is already in normalized form —
// the per-request hot path, where ParseRequest has normalized once and a
// second pass would be pure waste.
func (nr Request) digestNormalized() (string, error) {
	mj, err := nr.Model.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("service: %w", err)
	}
	tj := json.RawMessage("null")
	if nr.Topology != nil {
		b, err := nr.Topology.CanonicalJSON()
		if err != nil {
			return "", fmt.Errorf("service: %w", err)
		}
		tj = b
	}
	body, err := json.Marshal(digestForm{
		Model:         mj,
		Workers:       nr.Workers,
		Topology:      tj,
		MaxStates:     nr.MaxStates,
		Factors:       nr.Factors,
		TopologyNaive: nr.TopologyNaive,
		Pipeline:      nr.Pipeline,
		DeadlineMs:    nr.DeadlineMs,
	})
	if err != nil {
		return "", fmt.Errorf("service: %w", err)
	}
	sum := sha256.Sum256(body)
	return plan.DigestPrefix + hex.EncodeToString(sum[:]), nil
}

// PipelineOptions maps a normalized request onto the pipeline knobs a
// one-shot tofu.PartitionWithOptions caller would set — the contract behind
// the byte-identity guarantee. Parallelism is left for the server (or CLI)
// to fill: it never changes the plan.
func (r Request) PipelineOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Search.MaxStates = r.MaxStates
	opts.Search.Factors = r.Factors
	opts.Search.TopologyNaive = r.TopologyNaive
	opts.Topology = r.Topology
	if r.Pipeline != nil {
		opts.Pipeline = &core.PipelineSpec{Level: r.Pipeline.Level}
	}
	return opts
}

// ComputePlan runs the full search for a request and serializes the plan
// with the request digest embedded — the service's cache fill, and the
// reference output cached plans must stay byte-identical to.
func ComputePlan(r Request, parallelism int) ([]byte, error) {
	nr, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	digest, err := nr.Digest()
	if err != nil {
		return nil, err
	}
	return computeWarm(nr, digest, parallelism, nil, nil, nil, nil)
}

// computeWarm is ComputePlan for a request the caller has already
// normalized and digested — the worker-pool hot path. pricing, when
// non-nil, supplies the model's shared pricing cache; warm, when non-nil,
// seeds the branch-and-bound incumbent with a neighboring plan's ordering.
// Chosen plans are byte-identical with or without either (seeds and caches
// change search effort, never content); stats, when non-nil, receives the
// ordering-search effort. tok, when non-nil, bounds the search — a tripped
// token yields a degraded incumbent (or a cancellation error).
func computeWarm(nr Request, digest string, parallelism int,
	pricing *dp.PriceCache, stats *recursive.SearchStats, warm []recursive.WarmStep,
	tok *cancel.Token) ([]byte, error) {

	m, err := models.Build(nr.Model)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	opts := nr.PipelineOptions()
	opts.Search.Parallelism = parallelism
	opts.Search.Cache = pricing
	opts.Search.Stats = stats
	opts.Search.WarmStart = warm
	opts.Cancel = tok
	sum, err := core.Partition(m.G, nr.Workers, opts)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	sum.Plan.Digest = digest
	var buf bytes.Buffer
	if err := sum.Plan.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	return buf.Bytes(), nil
}
