package service

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ManifestFormat names the fleet-manifest wire format ParseManifest accepts.
const ManifestFormat = "tofu-fleet-manifest-v1"

// Manifest declares the (model × machine) pairs a fleet expects to serve —
// the speculative precompute sweeper's work list. The JSON form is the
// -sweep file of tofu-serve.
type Manifest struct {
	Format string `json:"format"`
	// Requests are ordinary partition requests; the sweeper drains them in
	// order through idle queue capacity.
	Requests []Request `json:"requests"`
}

// ParseManifest strictly decodes a fleet manifest: unknown fields, trailing
// documents, a wrong format tag, invalid requests, and duplicate entries
// (two requests normalizing to one digest) are all errors — a manifest
// defect should fail daemon boot, not surface as a mysteriously idle
// sweeper. The returned requests are normalized and parallel to their
// digests.
func ParseManifest(data []byte) ([]Request, []string, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, nil, fmt.Errorf("service: decoding manifest: %w", err)
	}
	if dec.More() {
		return nil, nil, fmt.Errorf("service: trailing data after manifest")
	}
	if m.Format != ManifestFormat {
		return nil, nil, fmt.Errorf("service: unknown manifest format %q (want %q)", m.Format, ManifestFormat)
	}
	if len(m.Requests) == 0 {
		return nil, nil, fmt.Errorf("service: manifest declares no requests")
	}
	reqs := make([]Request, 0, len(m.Requests))
	digests := make([]string, 0, len(m.Requests))
	seen := make(map[string]int)
	for i, r := range m.Requests {
		nr, err := r.Normalize()
		if err != nil {
			return nil, nil, fmt.Errorf("service: manifest request %d: %w", i, err)
		}
		d, err := nr.digestNormalized()
		if err != nil {
			return nil, nil, fmt.Errorf("service: manifest request %d: %w", i, err)
		}
		if j, dup := seen[d]; dup {
			return nil, nil, fmt.Errorf("service: manifest requests %d and %d are the same search (%s)", j, i, d)
		}
		seen[d] = i
		reqs = append(reqs, nr)
		digests = append(digests, d)
	}
	return reqs, digests, nil
}
