package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"tofu/internal/dp"
	"tofu/internal/models"
)

// PricingCaches is the cross-request pricing-reuse layer: a bounded LRU of
// dp.PriceCache keyed by model content digest. Slot pricings are keyed
// structurally inside each PriceCache (operator signature, original shapes,
// dtype, per-step K), so a warm request for the same model at a DIFFERENT
// worker count or topology still reuses most pricings — the per-step factors
// of 8-, 64- and 128-GPU machines are all the same small primes. Bucketing
// per model merely bounds memory: evicting one cold model's bucket drops all
// of its pricings at once.
type PricingCaches struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	// modelHits/modelMisses count For() lookups; retiredHits/retiredMisses
	// accumulate the per-entry pricing counters of evicted buckets so the
	// metrics survive eviction.
	modelHits, modelMisses     int64
	retiredHits, retiredMisses int64
}

type pricingEntry struct {
	digest string
	cache  *dp.PriceCache
}

// NewPricingCaches returns an LRU holding pricing caches for at most
// capacity models (minimum 1).
func NewPricingCaches(capacity int) *PricingCaches {
	if capacity < 1 {
		capacity = 1
	}
	return &PricingCaches{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// modelDigest is the bucket key: the sha256 of the model config's canonical
// JSON (the same canonical form the request digest hashes).
func modelDigest(cfg models.Config) (string, error) {
	mj, err := cfg.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(mj)
	return hex.EncodeToString(sum[:]), nil
}

// For returns the pricing cache for a request's model, creating (and, at
// capacity, evicting the least recently used bucket) as needed. A nil
// return (config that cannot canonicalize — already rejected upstream)
// means "search without cross-request reuse".
func (p *PricingCaches) For(cfg models.Config) *dp.PriceCache {
	digest, err := modelDigest(cfg)
	if err != nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[digest]; ok {
		p.order.MoveToFront(el)
		p.modelHits++
		return el.Value.(*pricingEntry).cache
	}
	p.modelMisses++
	cache := dp.NewPriceCache()
	p.items[digest] = p.order.PushFront(&pricingEntry{digest: digest, cache: cache})
	for p.order.Len() > p.cap {
		last := p.order.Back()
		p.order.Remove(last)
		e := last.Value.(*pricingEntry)
		h, m := e.cache.Stats()
		p.retiredHits += h
		p.retiredMisses += m
		delete(p.items, e.digest)
	}
	return cache
}

// Models reports how many model buckets are resident.
func (p *PricingCaches) Models() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len()
}

// PricingStats aggregates the per-slot pricing hit/miss counters across all
// resident buckets plus everything evicted so far, and the bucket-level
// model hit/miss counts.
func (p *PricingCaches) PricingStats() (hits, misses, modelHits, modelMisses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	hits, misses = p.retiredHits, p.retiredMisses
	for el := p.order.Front(); el != nil; el = el.Next() {
		h, m := el.Value.(*pricingEntry).cache.Stats()
		hits += h
		misses += m
	}
	return hits, misses, p.modelHits, p.modelMisses
}
