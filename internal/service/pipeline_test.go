package service

import (
	"strings"
	"testing"

	"tofu/internal/models"
)

// TestDigestStabilityWithoutPipeline pins pre-pipeline request digests
// byte-for-byte: the pipeline field is omitempty in the digest form, so
// every request that does not set it must hash exactly as it did before the
// field existed. These constants were produced by the digest code before
// the pipeline field was added — do not regenerate them from the current
// code, that would defeat the test.
func TestDigestStabilityWithoutPipeline(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{
			"mlp-default",
			Request{Model: models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}, Workers: 8},
			"sha256:745c90a23da7441cd5a75306dbe4207b025d428b21979b61b3b8ca252163c8ed",
		},
		{
			"rnn-cluster",
			Request{Model: models.Config{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}, HW: "cluster-2x8"},
			"sha256:bca5a796d0506600e78f428234556a4d50ce394a058553b8be6c3b3d21927ab9",
		},
		{
			"transformer-dgx1",
			Request{Model: models.Config{Family: "transformer", Depth: 2, Width: 1024, Batch: 16}, HW: "dgx1"},
			"sha256:d73e5e0091a6430d29aecb66a9200685a592e33eed1232bcc5a1b8c22191ff1e",
		},
	}
	for _, c := range cases {
		d, err := c.req.Digest()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if d != c.want {
			t.Errorf("%s: digest drifted: got %s, pinned %s", c.name, d, c.want)
		}
	}
}

// TestPipelineDigest checks the pipeline field is plan-relevant content:
// present-vs-absent and each distinct level must all digest differently,
// while plan-irrelevant variations (parsing the same request from the wire)
// digest identically.
func TestPipelineDigest(t *testing.T) {
	base := Request{
		Model: models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64},
		HW:    "cluster-4x2x8",
	}
	plain, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{"": plain}
	for _, lv := range []int{0, 1, 2} {
		r := base
		r.Pipeline = &PipelineRequest{Level: lv}
		d, err := r.Digest()
		if err != nil {
			t.Fatalf("level %d: %v", lv, err)
		}
		for name, prev := range seen {
			if d == prev {
				t.Errorf("level %d digest collides with %q", lv, name)
			}
		}
		seen[string(rune('0'+lv))] = d
	}
	// The same pipeline request given over the wire digests identically.
	wire := `{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"hw":"cluster-4x2x8","pipeline":{"level":2}}`
	r, err := ParseRequest([]byte(wire))
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Digest()
	if err != nil {
		t.Fatal(err)
	}
	want := base
	want.Pipeline = &PipelineRequest{Level: 2}
	wd, err := want.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d != wd {
		t.Errorf("wire digest %s != struct digest %s", d, wd)
	}
}

// TestPipelineRequestValidation covers the pipeline-specific Normalize
// errors and the options mapping.
func TestPipelineRequestValidation(t *testing.T) {
	model := models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}
	for name, c := range map[string]struct {
		req  Request
		frag string
	}{
		"flat-machine": {
			Request{Model: model, Pipeline: &PipelineRequest{Level: 1}},
			"hierarchical",
		},
		"flat-profile": {
			Request{Model: model, HW: "p2.8xlarge", Pipeline: &PipelineRequest{Level: 1}},
			"hierarchical",
		},
		"level-out-of-range": {
			Request{Model: model, HW: "dgx1", Pipeline: &PipelineRequest{Level: 2}},
			"out of range",
		},
		"negative-level": {
			Request{Model: model, HW: "dgx1", Pipeline: &PipelineRequest{Level: -1}},
			"out of range",
		},
		"with-factors": {
			Request{Model: model, HW: "dgx1", Factors: []int64{2, 2, 2}, Pipeline: &PipelineRequest{}},
			"compose",
		},
		"with-naive": {
			Request{Model: model, HW: "dgx1", TopologyNaive: true, Pipeline: &PipelineRequest{}},
			"compose",
		},
	} {
		_, err := c.req.Normalize()
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: got %v, want error containing %q", name, err, c.frag)
		}
	}
	ok := Request{Model: model, HW: "cluster-4x2x8", Pipeline: &PipelineRequest{Level: 2}}
	nr, err := ok.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	opts := nr.PipelineOptions()
	if opts.Pipeline == nil || opts.Pipeline.Level != 2 {
		t.Fatalf("pipeline spec not mapped: %+v", opts.Pipeline)
	}
	if opts.Pipeline.Exhaustive || opts.Pipeline.MicroBatches != 0 {
		t.Fatalf("wire request set effort/simulation knobs: %+v", opts.Pipeline)
	}
}
