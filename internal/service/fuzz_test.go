package service_test

import (
	"encoding/json"
	"strings"
	"testing"

	"tofu/internal/service"
)

// FuzzParseRequest drives the wire-request decoder with arbitrary bytes.
// Anything it accepts is already normalized, so: normalizing again must be a
// no-op (same digest), the digest must be well-formed, and the re-marshaled
// request must parse to the same digest — the cache-key stability the
// coalescing and plan cache rest on. Seed corpus: bare, profile-backed and
// inline-machine requests under testdata/fuzz.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"workers":4}`))
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"hw":"dgx1"}`))
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"hw":"dgx1","workers":4}`)) // workers/machine mismatch
	f.Add([]byte(`{"workers":4}`))                                                                     // missing model
	f.Add([]byte(`{"model":{},"hw":"?"}`))                                                             // unresolvable profile
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8}} {}`))                      // trailing document
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := service.ParseRequest(data)
		if err != nil {
			return
		}
		d1, err := r.Digest()
		if err != nil {
			t.Fatalf("accepted request has no digest: %v", err)
		}
		if !strings.HasPrefix(d1, "sha256:") || len(d1) != len("sha256:")+64 {
			t.Fatalf("malformed digest %q", d1)
		}
		r2, err := r.Normalize()
		if err != nil {
			t.Fatalf("normalized request fails to re-normalize: %v", err)
		}
		d2, err := r2.Digest()
		if err != nil {
			t.Fatalf("re-normalized request has no digest: %v", err)
		}
		if d2 != d1 {
			t.Fatalf("normalization is not idempotent: digest %s became %s", d1, d2)
		}
		out, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
		r3, err := service.ParseRequest(out)
		if err != nil {
			t.Fatalf("re-marshaled request rejected: %v\n%s", err, out)
		}
		d3, err := r3.Digest()
		if err != nil {
			t.Fatalf("round-tripped request has no digest: %v", err)
		}
		if d3 != d1 {
			t.Fatalf("digest changed across a wire round trip: %s became %s", d1, d3)
		}
	})
}
