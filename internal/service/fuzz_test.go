package service_test

import (
	"encoding/json"
	"strings"
	"testing"

	"tofu/internal/service"
)

// FuzzParseRequest drives the wire-request decoder with arbitrary bytes.
// Anything it accepts is already normalized, so: normalizing again must be a
// no-op (same digest), the digest must be well-formed, and the re-marshaled
// request must parse to the same digest — the cache-key stability the
// coalescing and plan cache rest on. Seed corpus: bare, profile-backed and
// inline-machine requests under testdata/fuzz.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"workers":4}`))
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"hw":"dgx1"}`))
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"hw":"dgx1","workers":4}`)) // workers/machine mismatch
	f.Add([]byte(`{"workers":4}`))                                                                     // missing model
	f.Add([]byte(`{"model":{},"hw":"?"}`))                                                             // unresolvable profile
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8}} {}`))                      // trailing document
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"hw":"cluster-4x2x8","pipeline":{"level":2}}`))
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"hw":"dgx1","pipeline":{}}`))          // auto level
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"pipeline":{"level":1}}`))             // pipeline on a flat machine
	f.Add([]byte(`{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"hw":"dgx1","pipeline":{"level":9}}`)) // level out of range
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := service.ParseRequest(data)
		if err != nil {
			return
		}
		d1, err := r.Digest()
		if err != nil {
			t.Fatalf("accepted request has no digest: %v", err)
		}
		if !strings.HasPrefix(d1, "sha256:") || len(d1) != len("sha256:")+64 {
			t.Fatalf("malformed digest %q", d1)
		}
		r2, err := r.Normalize()
		if err != nil {
			t.Fatalf("normalized request fails to re-normalize: %v", err)
		}
		d2, err := r2.Digest()
		if err != nil {
			t.Fatalf("re-normalized request has no digest: %v", err)
		}
		if d2 != d1 {
			t.Fatalf("normalization is not idempotent: digest %s became %s", d1, d2)
		}
		out, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
		r3, err := service.ParseRequest(out)
		if err != nil {
			t.Fatalf("re-marshaled request rejected: %v\n%s", err, out)
		}
		d3, err := r3.Digest()
		if err != nil {
			t.Fatalf("round-tripped request has no digest: %v", err)
		}
		if d3 != d1 {
			t.Fatalf("digest changed across a wire round trip: %s became %s", d1, d3)
		}
	})
}

// FuzzParseManifest drives the fleet-manifest decoder with arbitrary bytes.
// Anything it accepts must yield one digest per request, every digest
// well-formed and pairwise distinct, and re-marshaling the parsed requests
// into a fresh manifest must parse back to the same digest list — so a
// sweeper restarted from a rewritten manifest resolves the same fleet. Seed
// corpus: single- and multi-entry manifests plus rejected shapes under
// testdata/fuzz.
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte(`{"format":"tofu-fleet-manifest-v1","requests":[{"model":{"family":"mlp","depth":4,"width":64,"batch":8}}]}`))
	f.Add([]byte(`{"format":"tofu-fleet-manifest-v1","requests":[{"model":{"family":"mlp","depth":4,"width":64,"batch":8},"hw":"dgx1"},{"model":{"family":"rnn","depth":2,"width":128,"batch":16},"workers":4}]}`))
	f.Add([]byte(`{"format":"v0","requests":[{"model":{"family":"mlp","depth":4,"width":64,"batch":8}}]}`))                                                                               // wrong format
	f.Add([]byte(`{"format":"tofu-fleet-manifest-v1","requests":[]}`))                                                                                                                    // empty fleet
	f.Add([]byte(`{"format":"tofu-fleet-manifest-v1","requests":[{"model":{"family":"mlp","depth":4,"width":64,"batch":8}},{"model":{"family":"mlp","depth":4,"width":64,"batch":8}}]}`)) // duplicate
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, digests, err := service.ParseManifest(data)
		if err != nil {
			return
		}
		if len(reqs) == 0 || len(reqs) != len(digests) {
			t.Fatalf("accepted manifest: %d requests, %d digests", len(reqs), len(digests))
		}
		seen := make(map[string]bool, len(digests))
		for i, d := range digests {
			if !strings.HasPrefix(d, "sha256:") || len(d) != len("sha256:")+64 {
				t.Fatalf("malformed digest %q", d)
			}
			if seen[d] {
				t.Fatalf("duplicate digest %s survived parsing", d)
			}
			seen[d] = true
			got, err := reqs[i].Digest()
			if err != nil || got != d {
				t.Fatalf("request %d digest mismatch: %q vs %q (%v)", i, got, d, err)
			}
		}
		out, err := json.Marshal(service.Manifest{Format: service.ManifestFormat, Requests: reqs})
		if err != nil {
			t.Fatalf("accepted manifest does not re-marshal: %v", err)
		}
		_, d2, err := service.ParseManifest(out)
		if err != nil {
			t.Fatalf("re-marshaled manifest rejected: %v\n%s", err, out)
		}
		for i := range digests {
			if d2[i] != digests[i] {
				t.Fatalf("digest %d changed across round trip: %s became %s", i, digests[i], d2[i])
			}
		}
	})
}
