package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tofu/internal/recursive"
)

// latWindow is how many recent search latencies the percentile window keeps.
const latWindow = 1024

// Metrics counts the service's cache and queue behavior and keeps a sliding
// window of search latencies for the percentile gauges. Everything is
// monotonic counters plus one ring buffer, so the hot path is a handful of
// atomic adds.
type Metrics struct {
	hits      atomic.Int64 // requests answered from the plan cache
	misses    atomic.Int64 // requests that started (or joined) a search
	coalesced atomic.Int64 // requests that joined an in-flight search
	rejected  atomic.Int64 // requests bounced by queue backpressure (429)
	jobsDone  atomic.Int64 // searches completed successfully
	jobsFail  atomic.Int64 // searches that errored
	inFlight  atomic.Int64 // searches running right now

	// Ordering-search effort, summed over topology-aware searches: the
	// candidate spaces seen, branch-and-bound nodes expanded (search
	// steps) and pruned, DP steps run, the DP steps a flat enumeration
	// would have run instead, and how many searches started from a
	// neighbor-seeded incumbent.
	searchOrderings   atomic.Int64
	searchSteps       atomic.Int64
	searchPruned      atomic.Int64
	searchDPSteps     atomic.Int64
	searchDPStepsFlat atomic.Int64
	searchWarm        atomic.Int64

	// Anytime-search outcomes: searches whose deadline stopped them with an
	// incumbent (degraded), searches cancelled before any incumbent existed,
	// and deadline-bounded submissions rejected at admission because the
	// queue's estimated wait already exceeded their whole budget.
	searchDegraded     atomic.Int64
	searchCancelled    atomic.Int64
	deadlineInfeasible atomic.Int64

	// Persistent-store serving path: requests answered from the store, and
	// checksum-valid entries rejected by plan verification.
	storeServed  atomic.Int64
	storeBadPlan atomic.Int64

	// Per-tenant quota rejections and speculative-sweep completions.
	tenantRejected atomic.Int64
	sweepDone      atomic.Int64
	sweepFailed    atomic.Int64

	mu     sync.Mutex
	lat    [latWindow]time.Duration
	n      int           // total observations (ring index = n % latWindow)
	latSum time.Duration // lifetime sum (Prometheus summary _sum)
}

func (m *Metrics) observeOrderingSearch(st recursive.SearchStats) {
	if st.Orderings == 0 {
		return // flat machine or topology-blind search
	}
	m.searchOrderings.Add(int64(st.Orderings))
	m.searchSteps.Add(int64(st.Expanded))
	m.searchPruned.Add(int64(st.Pruned))
	m.searchDPSteps.Add(int64(st.DPSolves))
	m.searchDPStepsFlat.Add(int64(st.FlatDPSolves))
	if st.WarmStart {
		m.searchWarm.Add(1)
	}
}

func (m *Metrics) observeSearch(d time.Duration) {
	m.mu.Lock()
	m.lat[m.n%latWindow] = d
	m.n++
	m.latSum += d
	m.mu.Unlock()
}

// latencySummary returns the lifetime observation count and sum — the
// _count/_sum legs of the Prometheus search-duration summary (the window
// percentiles are its quantile legs).
func (m *Metrics) latencySummary() (count int64, sum time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(m.n), m.latSum
}

// percentiles returns (p50, p99) over the window, zero when empty.
func (m *Metrics) percentiles() (time.Duration, time.Duration) {
	m.mu.Lock()
	k := m.n
	if k > latWindow {
		k = latWindow
	}
	buf := make([]time.Duration, k)
	copy(buf, m.lat[:k])
	m.mu.Unlock()
	if k == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := func(p float64) int {
		i := int(p * float64(k-1))
		return i
	}
	return buf[idx(0.50)], buf[idx(0.99)]
}

// Snapshot is the expvar-style /metrics document.
type Snapshot struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Coalesced  int64 `json:"coalesced"`
	Rejected   int64 `json:"rejected"`
	JobsDone   int64 `json:"jobs_done"`
	JobsFailed int64 `json:"jobs_failed"`
	InFlight   int64 `json:"in_flight"`
	QueueLen   int   `json:"queue_len"`
	QueueCap   int   `json:"queue_cap"`
	CacheLen   int   `json:"cache_len"`
	CacheCap   int   `json:"cache_cap"`
	// CacheBytes is the LRU's resident payload; CacheBytesCap its byte
	// budget (0 = entries-only bound).
	CacheBytes    int64 `json:"cache_bytes"`
	CacheBytesCap int64 `json:"cache_bytes_cap"`
	// Store* report the persistent plan store (all zero when none is
	// configured): entry reads served/missed/quarantined by the store
	// itself, plus the service-level split — requests answered from store
	// bytes, checksum-valid entries rejected by plan verification, and
	// write-through failures.
	StoreEnabled bool  `json:"store_enabled"`
	StorePuts    int64 `json:"store_puts"`
	StoreHits    int64 `json:"store_hits"`
	StoreMisses  int64 `json:"store_misses"`
	StoreCorrupt int64 `json:"store_corrupt"`
	// StoreQuarantined counts corrupt entries preserved as .corrupt.<n>
	// forensic files (the per-digest cap drops the overflow; those still
	// count in StoreCorrupt).
	StoreQuarantined int64 `json:"store_quarantined"`
	StoreServed      int64 `json:"store_served"`
	StoreBadPlan     int64 `json:"store_bad_plan"`
	StorePutErrors   int64 `json:"store_put_errors"`
	// TenantRejected counts per-tenant quota 429s (before global
	// backpressure); Sweep* count speculative-precompute completions.
	TenantRejected int64 `json:"tenant_rejected"`
	SweepDone      int64 `json:"sweep_done"`
	SweepFailed    int64 `json:"sweep_failed"`
	// Pricing* report the cross-request pricing-reuse layer: resident model
	// buckets, per-slot pricing hits vs builds across all searches, and
	// bucket-level model hits vs creations.
	PricingModels    int   `json:"pricing_models"`
	PricingModelCap  int   `json:"pricing_model_cap"`
	PricingHits      int64 `json:"pricing_hits"`
	PricingMisses    int64 `json:"pricing_misses"`
	PricingModelHits int64 `json:"pricing_model_hits"`
	PricingModelMiss int64 `json:"pricing_model_misses"`
	// Search* report cumulative topology-aware ordering-search effort: the
	// candidate orderings examined, branch-and-bound nodes expanded (search
	// steps) and pruned, DP steps actually run, what a flat enumeration
	// would have cost, and how many searches were warm-started from a
	// neighboring cached plan.
	SearchOrderings   int64 `json:"search_orderings"`
	SearchSteps       int64 `json:"search_steps"`
	SearchPruned      int64 `json:"search_pruned"`
	SearchDPSteps     int64 `json:"search_dp_steps"`
	SearchDPStepsFlat int64 `json:"search_dp_steps_flat"`
	SearchWarmStarted int64 `json:"search_warm_started"`
	// SearchDegraded counts searches the deadline stopped with a served
	// incumbent; SearchCancelled counts searches cancelled before any
	// incumbent existed; DeadlineRejected counts deadline-bounded requests
	// refused at admission because the queue could not meet their budget.
	SearchDegraded   int64   `json:"search_degraded"`
	SearchCancelled  int64   `json:"search_cancelled"`
	DeadlineRejected int64   `json:"deadline_rejected"`
	SearchP50Ms      float64 `json:"search_p50_ms"`
	SearchP99Ms      float64 `json:"search_p99_ms"`
	UptimeSec        float64 `json:"uptime_sec"`
}
