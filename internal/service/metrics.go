package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is how many recent search latencies the percentile window keeps.
const latWindow = 1024

// Metrics counts the service's cache and queue behavior and keeps a sliding
// window of search latencies for the percentile gauges. Everything is
// monotonic counters plus one ring buffer, so the hot path is a handful of
// atomic adds.
type Metrics struct {
	hits      atomic.Int64 // requests answered from the plan cache
	misses    atomic.Int64 // requests that started (or joined) a search
	coalesced atomic.Int64 // requests that joined an in-flight search
	rejected  atomic.Int64 // requests bounced by queue backpressure (429)
	jobsDone  atomic.Int64 // searches completed successfully
	jobsFail  atomic.Int64 // searches that errored
	inFlight  atomic.Int64 // searches running right now

	mu  sync.Mutex
	lat [latWindow]time.Duration
	n   int // total observations (ring index = n % latWindow)
}

func (m *Metrics) observeSearch(d time.Duration) {
	m.mu.Lock()
	m.lat[m.n%latWindow] = d
	m.n++
	m.mu.Unlock()
}

// percentiles returns (p50, p99) over the window, zero when empty.
func (m *Metrics) percentiles() (time.Duration, time.Duration) {
	m.mu.Lock()
	k := m.n
	if k > latWindow {
		k = latWindow
	}
	buf := make([]time.Duration, k)
	copy(buf, m.lat[:k])
	m.mu.Unlock()
	if k == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := func(p float64) int {
		i := int(p * float64(k-1))
		return i
	}
	return buf[idx(0.50)], buf[idx(0.99)]
}

// Snapshot is the expvar-style /metrics document.
type Snapshot struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Coalesced   int64   `json:"coalesced"`
	Rejected    int64   `json:"rejected"`
	JobsDone    int64   `json:"jobs_done"`
	JobsFailed  int64   `json:"jobs_failed"`
	InFlight    int64   `json:"in_flight"`
	QueueLen    int     `json:"queue_len"`
	QueueCap    int     `json:"queue_cap"`
	CacheLen    int     `json:"cache_len"`
	CacheCap    int     `json:"cache_cap"`
	SearchP50Ms float64 `json:"search_p50_ms"`
	SearchP99Ms float64 `json:"search_p99_ms"`
	UptimeSec   float64 `json:"uptime_sec"`
}
