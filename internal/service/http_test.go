package service_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tofu"
	"tofu/internal/service"
	"tofu/internal/service/client"
)

func startServer(t *testing.T, cfg service.Config) (*service.Service, *client.Client, *httptest.Server) {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, client.New(srv.URL), srv
}

var smallModel = tofu.ModelConfig{Family: "mlp", Depth: 4, Width: 256, Batch: 64}

// TestServedPlanByteIdentical is the acceptance criterion: a plan served by
// the daemon (cold, then from cache) is byte-identical to a fresh
// tofu.PartitionWithOptions run for the same request.
func TestServedPlanByteIdentical(t *testing.T) {
	_, cl, _ := startServer(t, service.Config{SyncWait: 30 * time.Second})
	ctx := context.Background()
	req := service.Request{Model: smallModel}

	ex, cold, err := cl.Partition(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := cl.Partition(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cache-served plan differs from the search-served plan")
	}

	// The reference: a one-shot library run under the same request.
	m, err := tofu.BuildModel(smallModel)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	opts := nr.PipelineOptions()
	sum, err := tofu.PartitionWithOptions(m.G, nr.Workers, opts)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := tofu.PlanDigest(smallModel, nr.Workers, opts)
	if err != nil {
		t.Fatal(err)
	}
	sum.Plan.Digest = digest
	var local bytes.Buffer
	if err := sum.Plan.WriteJSON(&local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), warm) {
		t.Fatalf("served plan is not byte-identical to the local run:\nlocal: %d bytes\nserved: %d bytes",
			local.Len(), len(warm))
	}
	if ex.Digest != digest {
		t.Fatalf("served digest %s, local %s", ex.Digest, digest)
	}
}

// TestConcurrentIdenticalRequestsOneSearch drives the 64-concurrent
// acceptance criterion through the real HTTP stack and the real search.
func TestConcurrentIdenticalRequestsOneSearch(t *testing.T) {
	svc, cl, _ := startServer(t, service.Config{Workers: 2, SyncWait: 30 * time.Second})
	ctx := context.Background()
	req := service.Request{Model: smallModel}

	const n = 64
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			_, raw, err := cl.Partition(ctx, req)
			bodies[i], errs[i] = raw, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d served different bytes", i)
		}
	}
	m := svc.Metrics()
	if m.JobsDone != 1 {
		t.Fatalf("searches = %d, want exactly 1 (hits=%d coalesced=%d)", m.JobsDone, m.Hits, m.Coalesced)
	}
	if m.Hits+m.Coalesced != n-1 {
		t.Fatalf("hits %d + coalesced %d != %d", m.Hits, m.Coalesced, n-1)
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	_, cl, srv := startServer(t, service.Config{SyncWait: 30 * time.Second})
	ctx := context.Background()

	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}

	// Malformed and invalid requests are 400s.
	for name, body := range map[string]string{
		"not-json":      `{`,
		"unknown-field": `{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"bogus":true}`,
		"bad-family":    `{"model":{"family":"gpt","depth":4,"width":256,"batch":64}}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/partition", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Unknown plan -> 404; malformed digest -> 400; unknown job -> 404.
	for path, want := range map[string]int{
		"/v1/plans/sha256:" + strings.Repeat("0", 64): http.StatusNotFound,
		"/v1/plans/not-a-digest":                      http.StatusBadRequest,
		"/v1/jobs/j999999-zzzzzzzz":                   http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	// A served plan is fetchable by digest, and /metrics reflects the run.
	req := service.Request{Model: smallModel}
	nr, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	digest, err := nr.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Partition(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Plan(ctx, digest); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.JobsDone != 1 || snap.CacheLen != 1 {
		t.Fatalf("metrics after one search: %+v", snap)
	}
}

// TestAsyncFlipOverHTTP forces the 202 path with a nanosecond sync budget;
// the client transparently polls the job and fetches the plan by digest.
func TestAsyncFlipOverHTTP(t *testing.T) {
	svc, cl, _ := startServer(t, service.Config{SyncWait: time.Nanosecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl.PollInterval = 5 * time.Millisecond

	req := service.Request{Model: tofu.ModelConfig{Family: "mlp", Depth: 6, Width: 512, Batch: 64}}
	ex, _, err := cl.Partition(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Workers != 8 {
		t.Fatalf("workers = %d, want 8", ex.Workers)
	}
	// The flip really happened: the job index knows the job, and the search
	// ran exactly once even though the client took the poll path.
	if m := svc.Metrics(); m.JobsDone != 1 {
		t.Fatalf("jobs done = %d, want 1", m.JobsDone)
	}
}

// TestDrainingHealthz verifies the shutdown surface the load balancer sees.
func TestDrainingHealthz(t *testing.T) {
	svc, _, srv := startServer(t, service.Config{SyncWait: time.Second})
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/partition", "application/json",
		strings.NewReader(`{"model":{"family":"mlp","depth":4,"width":256,"batch":64}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("partition while draining: %d, want 503", resp.StatusCode)
	}
}
