package service_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tofu/internal/cancel"
	"tofu/internal/plan"
	"tofu/internal/service"
)

// degradedExport is a minimal valid degraded plan serialization.
func degradedExport(t *testing.T) []byte {
	t.Helper()
	raw, err := json.Marshal(plan.Export{
		Workers:  8,
		Steps:    []plan.StepExport{{Ways: 8, Multiplier: 1}},
		Degraded: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func postPartition(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/partition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

var degradedBody = `{"model":{"family":"mlp","depth":4,"width":256,"batch":64}}`

// TestDegradedServePolicy: under the default policy a deadline-stopped
// incumbent is served as a 200 with the Tofu-Degraded marker header — on
// the sync path and again when the plan is recovered by digest — and the
// metrics count it.
func TestDegradedServePolicy(t *testing.T) {
	val := degradedExport(t)
	svc, cl, srv := startServer(t, service.Config{
		SyncWait: 30 * time.Second,
		ComputeCancel: func(r service.Request, tok *cancel.Token) ([]byte, error) {
			return val, nil
		},
	})

	resp := postPartition(t, srv.URL, degradedBody)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Tofu-Degraded") != "true" {
		t.Fatal("served degraded plan without the Tofu-Degraded header")
	}
	if string(body) != string(val) {
		t.Fatalf("served %q", body)
	}

	// The incumbent is recoverable by digest (the async client's path),
	// still marked, and still not planted in the cache.
	digest := resp.Header.Get("Tofu-Digest")
	gresp, err := http.Get(srv.URL + "/v1/plans/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, gresp.Body) //tofu:allow-errdrop test drain
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK || gresp.Header.Get("Tofu-Degraded") != "true" {
		t.Fatalf("recovered plan: status %d, degraded header %q",
			gresp.StatusCode, gresp.Header.Get("Tofu-Degraded"))
	}
	if _, ok := svc.Lookup(digest); ok {
		t.Fatal("degraded plan entered the cache")
	}
	snap, err := cl.Metrics(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if snap.SearchDegraded != 1 {
		t.Fatalf("SearchDegraded = %d, want 1", snap.SearchDegraded)
	}
}

// TestDegradedFailPolicy: under -degraded-policy fail the incumbent is
// withheld — 503 with Retry-After so the client re-submits when the
// queue (and so the deadline math) looks better.
func TestDegradedFailPolicy(t *testing.T) {
	val := degradedExport(t)
	_, _, srv := startServer(t, service.Config{
		SyncWait:       30 * time.Second,
		DegradedPolicy: service.DegradedFail,
		ComputeCancel: func(r service.Request, tok *cancel.Token) ([]byte, error) {
			return val, nil
		},
	})
	resp := postPartition(t, srv.URL, degradedBody)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded-policy=fail 503 without Retry-After")
	}
}

// TestCancelledSearch503: a search cancelled before any incumbent existed
// is transient load, not a bad request — 503 + Retry-After, never 422.
func TestCancelledSearch503(t *testing.T) {
	_, _, srv := startServer(t, service.Config{
		SyncWait: 30 * time.Second,
		ComputeCancel: func(r service.Request, tok *cancel.Token) ([]byte, error) {
			return nil, cancel.Reason(cancel.ErrDeadline, "cancelled before any ordering completed")
		},
	})
	resp := postPartition(t, srv.URL, degradedBody)
	io.Copy(io.Discard, resp.Body) //tofu:allow-errdrop test drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After %q, want 1", resp.Header.Get("Retry-After"))
	}
}

// TestDeadlineAdmission503 drives the admission control end to end: once
// the queue's backlog (priced by observed latency) provably exceeds a
// request's deadline_ms, the POST is refused 503 + Retry-After before a
// job is even created; the same request without a deadline is accepted.
func TestDeadlineAdmission503(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	svc, _, srv := startServer(t, service.Config{
		Workers: 1, QueueDepth: 8, SyncWait: 30 * time.Second,
		ComputeCancel: func(r service.Request, tok *cancel.Token) ([]byte, error) {
			if calls.Add(1) > 1 {
				<-gate // every search after the first wedges until cleanup
			}
			time.Sleep(30 * time.Millisecond) // latency evidence for p50
			return degradedExportOptimal(t, 8), nil
		},
	})
	t.Cleanup(func() { close(gate) })

	reqBody := func(batch int) string {
		return fmt.Sprintf(`{"model":{"family":"mlp","depth":4,"width":256,"batch":%d}}`, batch)
	}
	// Seed latency evidence with one completed search.
	resp := postPartition(t, srv.URL, reqBody(2))
	io.Copy(io.Discard, resp.Body) //tofu:allow-errdrop test drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed request: status %d", resp.StatusCode)
	}
	// Saturate: one search wedged on the worker plus a queued backlog.
	for i := 0; i < 4; i++ {
		go func(i int) {
			r := postPartition(t, srv.URL, reqBody(4+2*i))
			io.Copy(io.Discard, r.Body) //tofu:allow-errdrop test drain
			r.Body.Close()
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.EstimatedWait() <= 50*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatal("backlog never built up")
		}
		time.Sleep(time.Millisecond)
	}

	resp = postPartition(t, srv.URL, `{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"deadline_ms":1}`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-bounded POST: status %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("admission 503 without Retry-After")
	}
	if !strings.Contains(string(body), "cannot meet") {
		t.Fatalf("admission error body: %s", body)
	}
}

// degradedExportOptimal is a minimal valid non-degraded plan.
func degradedExportOptimal(t *testing.T, workers int64) []byte {
	t.Helper()
	raw, err := json.Marshal(plan.Export{
		Workers: workers,
		Steps:   []plan.StepExport{{Ways: workers, Multiplier: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestJobStatusCarriesDegraded: the async API surfaces the marker so a
// polling client can tell an incumbent from an optimum.
func TestJobStatusCarriesDegraded(t *testing.T) {
	val := degradedExport(t)
	_, cl, srv := startServer(t, service.Config{
		SyncWait: time.Nanosecond, // force the async flip
		ComputeCancel: func(r service.Request, tok *cancel.Token) ([]byte, error) {
			time.Sleep(10 * time.Millisecond)
			return val, nil
		},
	})
	resp := postPartition(t, srv.URL, degradedBody)
	var acc service.Accepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := cl.Job(t.Context(), acc.Job)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.JobDone {
			if !st.Degraded {
				t.Fatal("done job status lost the degraded marker")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished (state %s)", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
