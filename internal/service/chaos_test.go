package service_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tofu/internal/faultfs"
	"tofu/internal/service"
	"tofu/internal/store"
)

// TestChaosCorruptReadsZeroServerErrors is the in-tree half of the chaos
// harness (CI runs the process-level one, with a kill -9 replica, in
// scripts/chaos-smoke.sh): a service whose persistent store corrupts entry
// reads must degrade to recomputes — every response under concurrent load
// is a success, none a 5xx — while the store quarantines the corrupt
// entries and the metrics make the event visible.
func TestChaosCorruptReadsZeroServerErrors(t *testing.T) {
	inj := faultfs.New(faultfs.OS,
		// Every second *.plan read returns flipped bytes: the checksum
		// must catch each one, quarantine it, and fall through to a
		// recompute — interleaved with clean reads to cover both paths.
		&faultfs.Rule{Op: faultfs.OpRead, Pattern: "*.plan", Mode: faultfs.ModeCorrupt, Count: 6})
	st, err := store.Open(t.TempDir(), store.Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	// CacheSize 1 forces LRU churn, so most lookups reach the store.
	_, cl, srv := startServer(t, service.Config{
		CacheSize: 1, Workers: 2, QueueDepth: 32, SyncWait: 30 * time.Second, Store: st,
	})

	body := func(i int) string {
		return fmt.Sprintf(`{"model":{"family":"mlp","depth":4,"width":256,"batch":%d}}`, 16<<(i%3))
	}
	const rounds = 18
	var wg sync.WaitGroup
	codes := make([]int, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/partition", "application/json", strings.NewReader(body(i)))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body) //tofu:allow-errdrop test drain
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code >= 500 {
			t.Errorf("request %d: HTTP %d — corruption leaked to the client", i, code)
		}
		if code != http.StatusOK && code != http.StatusAccepted {
			t.Errorf("request %d: HTTP %d, want 200 or 202", i, code)
		}
	}
	// The faults really fired, and the store turned them into quarantines
	// the operator can see at /metrics.
	if fired := inj.Fired(); fired[0] == 0 {
		t.Fatal("no corrupt read was ever injected; the test exercised nothing")
	}
	snap, err := cl.Metrics(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if snap.StoreCorrupt == 0 || snap.StoreQuarantined == 0 {
		t.Errorf("metrics: StoreCorrupt=%d StoreQuarantined=%d, want both > 0",
			snap.StoreCorrupt, snap.StoreQuarantined)
	}
	// And the service still works: a fresh identical request serves cleanly.
	resp, err := http.Post(srv.URL+"/v1/partition", "application/json", strings.NewReader(body(0)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //tofu:allow-errdrop test drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos request: HTTP %d", resp.StatusCode)
	}
}
