package service

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU over serialized plans, keyed by request digest.
// Values are the exact bytes a fresh search would serialize, so a cache hit
// is byte-identical to a miss — the cache changes latency, never content.
// It is bounded two ways: an entry cap and an optional byte budget over
// len(value); crossing either evicts from the least recently used end.
type Cache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64 // 0 = unlimited
	bytes    int64
	order    *list.List // front = most recently used
	items    map[string]*list.Element
}

type cacheEntry struct {
	digest string
	val    []byte
}

// NewCache returns an LRU holding at most capacity plans (minimum 1) with
// no byte budget.
func NewCache(capacity int) *Cache {
	return NewCacheBytes(capacity, 0)
}

// NewCacheBytes returns an LRU holding at most capacity plans (minimum 1)
// and, when maxBytes > 0, at most maxBytes of plan payload. The most
// recently inserted entry is never evicted by the byte budget — a single
// oversized plan caches (and immediately bounds the cache to itself) rather
// than thrashing uncacheably.
func NewCacheBytes(capacity int, maxBytes int64) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Cache{cap: capacity, maxBytes: maxBytes, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached plan and promotes it to most recently used.
func (c *Cache) Get(digest string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[digest]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts (or refreshes) a plan, evicting least recently used entries
// while either bound is exceeded.
func (c *Cache) Put(digest string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[digest]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.order.MoveToFront(el)
		c.evictLocked()
		return
	}
	c.items[digest] = c.order.PushFront(&cacheEntry{digest: digest, val: val})
	c.bytes += int64(len(val))
	c.evictLocked()
}

// evictLocked trims the LRU tail until both bounds hold (always keeping the
// most recently used entry).
func (c *Cache) evictLocked() {
	for c.order.Len() > 1 && (c.order.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		last := c.order.Back()
		e := last.Value.(*cacheEntry)
		c.order.Remove(last)
		delete(c.items, e.digest)
		c.bytes -= int64(len(e.val))
	}
}

// Len reports the resident plan count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes reports the resident plan payload bytes (sum of len(value)).
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Keys lists resident digests from most to least recently used — the
// eviction order, exposed for tests and the metrics endpoint.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).digest)
	}
	return out
}
