package service

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU over serialized plans, keyed by request digest.
// Values are the exact bytes a fresh search would serialize, so a cache hit
// is byte-identical to a miss — the cache changes latency, never content.
type Cache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	digest string
	val    []byte
}

// NewCache returns an LRU holding at most capacity plans (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached plan and promotes it to most recently used.
func (c *Cache) Get(digest string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[digest]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts (or refreshes) a plan, evicting the least recently used entry
// when the cache is full.
func (c *Cache) Put(digest string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[digest]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[digest] = c.order.PushFront(&cacheEntry{digest: digest, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).digest)
	}
}

// Len reports the resident plan count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Keys lists resident digests from most to least recently used — the
// eviction order, exposed for tests and the metrics endpoint.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).digest)
	}
	return out
}
