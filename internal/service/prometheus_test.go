package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"tofu/internal/obs"
	"tofu/internal/service"
)

// TestPrometheusExposition checks /metrics?format=prometheus is a
// well-formed text exposition that agrees with the JSON snapshot, and
// that the plain JSON document is unchanged by the format switch.
func TestPrometheusExposition(t *testing.T) {
	_, cl, srv := startServer(t, service.Config{SyncWait: 30 * time.Second})
	if _, _, err := cl.Partition(context.Background(), service.Request{Model: smallModel}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q is not text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePromText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, body)
	}
	byName := map[string]obs.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"tofu_jobs_done_total", "tofu_requests_cache_misses_total",
		"tofu_search_duration_seconds", "tofu_cache_entries",
	} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("exposition missing family %s", want)
		}
	}
	if f := byName["tofu_search_duration_seconds"]; f.Type != "summary" || f.Samples != 4 {
		t.Fatalf("latency summary family = %+v, want summary with 4 samples", f)
	}

	// The JSON document must be unaffected by the second format existing.
	jresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatalf("JSON /metrics no longer decodes as a Snapshot: %v", err)
	}
	if snap.JobsDone != 1 {
		t.Fatalf("snapshot jobs_done = %d, want 1", snap.JobsDone)
	}
}

// TestStructuredRequestLog checks the slog access log carries the trace
// id, digest and cache outcome, and that the trace id is echoed to the
// client.
func TestStructuredRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, _, srv := startServer(t, service.Config{SyncWait: 30 * time.Second, Logger: logger})

	body := strings.NewReader(`{"model":{"family":"mlp","depth":4,"width":256,"batch":64}}`)
	req, err := http.NewRequest("POST", srv.URL+"/v1/partition", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Tofu-Tenant", "team-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint — drain
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("Tofu-Trace-Id")
	if traceID == "" {
		t.Fatal("no Tofu-Trace-Id response header")
	}

	var reqRec map[string]any
	dec := json.NewDecoder(&buf)
	for {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			break
		}
		if rec["msg"] == "request" {
			reqRec = rec
		}
	}
	if reqRec == nil {
		t.Fatalf("no request record in log:\n%s", buf.String())
	}
	if reqRec["id"] != traceID {
		t.Fatalf("log trace id %v != header %q", reqRec["id"], traceID)
	}
	if reqRec["tenant"] != "team-a" || reqRec["source"] != "search" {
		t.Fatalf("log record missing tenant/source: %v", reqRec)
	}
	digest, _ := reqRec["digest"].(string)
	if !strings.HasPrefix(digest, "sha256:") {
		t.Fatalf("log record digest %q is not a content digest", digest)
	}
}
