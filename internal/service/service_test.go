package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tofu/internal/models"
	"tofu/internal/topo"
)

func testDigest(i int) string {
	return fmt.Sprintf("sha256:%064x", i)
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCache(3)
	for i := 1; i <= 3; i++ {
		c.Put(testDigest(i), []byte{byte(i)})
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := c.Get(testDigest(1)); !ok {
		t.Fatal("expected hit for 1")
	}
	c.Put(testDigest(4), []byte{4})
	if _, ok := c.Get(testDigest(2)); ok {
		t.Fatal("2 should have been evicted (LRU)")
	}
	for _, want := range []int{1, 3, 4} {
		if _, ok := c.Get(testDigest(want)); !ok {
			t.Fatalf("%d should still be resident", want)
		}
	}
	// Keys reports MRU -> LRU: the Gets above promoted 1, 3, 4 in order.
	got := c.Keys()
	want := []string{testDigest(4), testDigest(3), testDigest(1)}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("eviction order: got %v want %v", got, want)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

func TestCacheUpdateRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put(testDigest(1), []byte("a"))
	c.Put(testDigest(2), []byte("b"))
	c.Put(testDigest(1), []byte("a2")) // refresh, not insert
	c.Put(testDigest(3), []byte("c"))  // evicts 2, not 1
	if v, ok := c.Get(testDigest(1)); !ok || string(v) != "a2" {
		t.Fatalf("1 = %q,%v; want refreshed value", v, ok)
	}
	if _, ok := c.Get(testDigest(2)); ok {
		t.Fatal("2 should have been evicted")
	}
}

// submitAndWait is the POST handler's core path without HTTP.
func submitAndWait(t *testing.T, s *Service, req Request, digest string, wait time.Duration) ([]byte, error) {
	t.Helper()
	if val, ok := s.Lookup(digest); ok {
		return val, nil
	}
	j, _, err := s.Submit(req, digest)
	if err != nil {
		return nil, err
	}
	val, jerr, timedOut := s.Wait(context.Background(), j, wait)
	if timedOut {
		return nil, fmt.Errorf("timed out")
	}
	return val, jerr
}

// TestSingleflightCoalesces is the acceptance criterion: 64 concurrent
// identical requests trigger exactly one search, and every waiter gets the
// same bytes.
func TestSingleflightCoalesces(t *testing.T) {
	var searches atomic.Int64
	gate := make(chan struct{})
	s := New(Config{
		CacheSize: 8, Workers: 4, QueueDepth: 16, SyncWait: 30 * time.Second,
		Compute: func(r Request) ([]byte, error) {
			searches.Add(1)
			<-gate // hold the search until every request has arrived
			return []byte("plan-bytes"), nil
		},
	})
	defer s.Shutdown(context.Background())

	req := Request{Model: models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}}
	digest := testDigest(7)
	const n = 64
	var wg sync.WaitGroup
	var submitted sync.WaitGroup
	results := make([][]byte, n)
	errs := make([]error, n)
	wg.Add(n)
	submitted.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if val, ok := s.Lookup(digest); ok {
				submitted.Done()
				results[i] = val
				return
			}
			j, _, err := s.Submit(req, digest)
			submitted.Done()
			if err != nil {
				errs[i] = err
				return
			}
			val, jerr, timedOut := s.Wait(context.Background(), j, 30*time.Second)
			if timedOut {
				errs[i] = fmt.Errorf("timed out")
				return
			}
			results[i], errs[i] = val, jerr
		}(i)
	}
	submitted.Wait()
	close(gate)
	wg.Wait()

	if got := searches.Load(); got != 1 {
		t.Fatalf("searches = %d, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if string(results[i]) != "plan-bytes" {
			t.Fatalf("request %d: got %q", i, results[i])
		}
	}
	m := s.Metrics()
	if m.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", m.Coalesced, n-1)
	}
	if m.JobsDone != 1 {
		t.Fatalf("jobs done = %d, want 1", m.JobsDone)
	}
	// A latecomer is a pure cache hit.
	if val, err := submitAndWait(t, s, req, digest, time.Second); err != nil || string(val) != "plan-bytes" {
		t.Fatalf("warm request: %q, %v", val, err)
	}
	if m := s.Metrics(); m.Hits < 1 {
		t.Fatalf("hits = %d, want >= 1", m.Hits)
	}
}

func TestQueueBackpressure(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{
		CacheSize: 8, Workers: 1, QueueDepth: 1, SyncWait: time.Second,
		Compute: func(r Request) ([]byte, error) {
			started <- r.Model.Family
			<-release
			return []byte("x"), nil
		},
	})
	defer func() { close(release); s.Shutdown(context.Background()) }()

	req := func(i int) Request {
		return Request{Model: models.Config{Family: "mlp", Depth: i, Width: 256, Batch: 64}}
	}
	// A occupies the single worker...
	if _, _, err := s.Submit(req(1), testDigest(1)); err != nil {
		t.Fatal(err)
	}
	<-started // A is running, the queue slot is free again
	// ...B fills the one queue slot...
	if _, _, err := s.Submit(req(2), testDigest(2)); err != nil {
		t.Fatal(err)
	}
	// ...so C bounces with backpressure.
	_, _, err := s.Submit(req(3), testDigest(3))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	m := s.Metrics()
	if m.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected)
	}
	// A coalescing duplicate of B is NOT backpressure — it joins the
	// queued job instead of occupying a slot.
	if _, kind, err := s.Submit(req(2), testDigest(2)); err != nil || kind != SubmitJoined {
		t.Fatalf("duplicate of queued job: kind=%v err=%v, want SubmitJoined,nil", kind, err)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	var done atomic.Int64
	s := New(Config{
		CacheSize: 8, Workers: 1, QueueDepth: 8, SyncWait: time.Second,
		Compute: func(r Request) ([]byte, error) {
			time.Sleep(10 * time.Millisecond)
			done.Add(1)
			return []byte("x"), nil
		},
	})
	var jobs []*Job
	for i := 1; i <= 3; i++ {
		req := Request{Model: models.Config{Family: "mlp", Depth: i, Width: 256, Batch: 64}}
		j, _, err := s.Submit(req, testDigest(i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := done.Load(); got != 3 {
		t.Fatalf("drained %d searches, want all 3", got)
	}
	for i, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %d not finished after drain", i)
		}
		if st := j.Status(); st.State != JobDone {
			t.Fatalf("job %d state = %s, want done", i, st.State)
		}
	}
	if s.cache.Len() != 3 {
		t.Fatalf("cache has %d plans after drain, want 3", s.cache.Len())
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}
	// New work is rejected while (and after) draining.
	_, _, err := s.Submit(Request{Model: models.Config{Family: "mlp", Depth: 9, Width: 256, Batch: 64}}, testDigest(9))
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: %v, want ErrShuttingDown", err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestFailedSearchReported(t *testing.T) {
	boom := errors.New("boom")
	s := New(Config{
		CacheSize: 8, Workers: 1, QueueDepth: 4, SyncWait: time.Second,
		Compute: func(r Request) ([]byte, error) { return nil, boom },
	})
	defer s.Shutdown(context.Background())
	req := Request{Model: models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}}
	_, err := submitAndWait(t, s, req, testDigest(1), time.Second)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the search error", err)
	}
	if _, ok := s.Lookup(testDigest(1)); ok {
		t.Fatal("failed search must not populate the cache")
	}
	m := s.Metrics()
	if m.JobsFailed != 1 {
		t.Fatalf("jobs failed = %d, want 1", m.JobsFailed)
	}
	// The digest is retryable: the failed job left the inflight map.
	if _, kind, err := s.Submit(req, testDigest(1)); err != nil || kind != SubmitNew {
		t.Fatalf("retry after failure: kind=%v err=%v, want fresh job", kind, err)
	}
}

func TestAsyncFlipAndJobStatus(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{
		CacheSize: 8, Workers: 1, QueueDepth: 4, SyncWait: time.Second,
		Compute: func(r Request) ([]byte, error) {
			<-release
			return []byte("slow-plan"), nil
		},
	})
	defer s.Shutdown(context.Background())
	req := Request{Model: models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}}
	j, _, err := s.Submit(req, testDigest(1))
	if err != nil {
		t.Fatal(err)
	}
	// The sync wait expires -> async flip.
	_, _, timedOut := s.Wait(context.Background(), j, 5*time.Millisecond)
	if !timedOut {
		t.Fatal("expected sync-wait timeout")
	}
	got, ok := s.Job(j.ID())
	if !ok || got != j {
		t.Fatalf("job lookup by ID failed")
	}
	if st := j.Status(); st.State != JobQueued && st.State != JobRunning {
		t.Fatalf("state = %s, want queued|running", st.State)
	}
	if _, ok := s.InFlight(testDigest(1)); !ok {
		t.Fatal("digest should be in flight")
	}
	close(release)
	<-j.Done()
	if st := j.Status(); st.State != JobDone || st.PlanURL == "" {
		t.Fatalf("status after done = %+v", st)
	}
	if val, ok := s.Lookup(testDigest(1)); !ok || string(val) != "slow-plan" {
		t.Fatalf("plan not cached after async completion")
	}
}

// TestRecoverPlanAfterEviction: an async client's finished plan must
// survive LRU churn while its job is still indexed.
func TestRecoverPlanAfterEviction(t *testing.T) {
	s := New(Config{
		CacheSize: 1, Workers: 1, QueueDepth: 4, SyncWait: time.Second,
		Compute: func(r Request) ([]byte, error) {
			return []byte("plan-" + r.Model.Family), nil
		},
	})
	defer s.Shutdown(context.Background())
	reqA := Request{Model: models.Config{Family: "mlp", Depth: 1, Width: 256, Batch: 64}}
	reqB := Request{Model: models.Config{Family: "rnn", Depth: 1, Width: 256, Batch: 64}}
	if _, err := submitAndWait(t, s, reqA, testDigest(1), time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := submitAndWait(t, s, reqB, testDigest(2), time.Second); err != nil {
		t.Fatal(err)
	}
	// B evicted A from the single-slot cache...
	if _, ok := s.Lookup(testDigest(1)); ok {
		t.Fatal("A should have been evicted")
	}
	// ...but the retained job still recovers it (and re-caches it).
	val, degraded, ok := s.RecoverPlan(testDigest(1))
	if !ok || degraded || string(val) != "plan-mlp" {
		t.Fatalf("recover = %q,%v,%v", val, degraded, ok)
	}
	if _, ok := s.Lookup(testDigest(1)); !ok {
		t.Fatal("recovered plan should be back in the cache")
	}
	if _, _, ok := s.RecoverPlan(testDigest(5)); ok {
		t.Fatal("unknown digest recovered")
	}
}

func TestRequestNormalizeAndDigest(t *testing.T) {
	base := Request{Model: models.Config{Family: "rnn", Depth: 2, Width: 1024, Batch: 64}}
	d1, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	// Omitted machine, the flat default profile by name, and the same flat
	// machine inlined all digest identically: flat machines cannot change
	// the plan.
	byName := base
	byName.HW = "p2.8xlarge"
	d2, err := byName.Digest()
	if err != nil {
		t.Fatal(err)
	}
	flat := topo.DefaultTopology()
	flat.Name = "my-renamed-machine"
	inline := base
	inline.Topology = &flat
	d3, err := inline.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || d1 != d3 {
		t.Fatalf("flat-machine digests differ:\n%s\n%s\n%s", d1, d2, d3)
	}
	// Explicit default workers digests the same as omitted.
	withWorkers := base
	withWorkers.Workers = 8
	if d, _ := withWorkers.Digest(); d != d1 {
		t.Fatalf("workers=8 digest differs from default")
	}
	// Anything plan-relevant changes the digest.
	for name, mut := range map[string]Request{
		"batch":      {Model: models.Config{Family: "rnn", Depth: 2, Width: 1024, Batch: 128}},
		"workers":    {Model: base.Model, Workers: 4},
		"hier-hw":    {Model: base.Model, HW: "dgx1"},
		"max-states": {Model: base.Model, MaxStates: 100},
		"factors":    {Model: base.Model, Factors: []int64{8}},
	} {
		d, err := mut.Digest()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d == d1 {
			t.Fatalf("%s: digest should differ", name)
		}
	}
	// Digest format is the plan package's.
	if len(d1) != len("sha256:")+64 {
		t.Fatalf("digest %q has unexpected shape", d1)
	}
}

func TestParseRequestStrict(t *testing.T) {
	for name, body := range map[string]string{
		"unknown-field":    `{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"bogus":1}`,
		"unknown-model":    `{"model":{"family":"mlp","depth":4,"width":256,"batch":64,"oops":2}}`,
		"bad-family":       `{"model":{"family":"gpt","depth":4,"width":256,"batch":64}}`,
		"zero-batch":       `{"model":{"family":"mlp","depth":4,"width":256}}`,
		"hw-and-topology":  `{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"hw":"dgx1","topology":{"name":"x","hw":{},"levels":[]}}`,
		"unknown-profile":  `{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"hw":"quantum-9000"}`,
		"bad-factors":      `{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"workers":8,"factors":[3,3]}`,
		"workers-mismatch": `{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"hw":"dgx1","workers":4}`,
		"trailing-data":    `{"model":{"family":"mlp","depth":4,"width":256,"batch":64}} {"x":1}`,
		"naive-flat":       `{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"topology_naive":true}`,
	} {
		if _, err := ParseRequest([]byte(body)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	r, err := ParseRequest([]byte(`{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"hw":"dgx1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 8 || r.Topology == nil || !r.Topology.Hierarchical() || r.HW != "" {
		t.Fatalf("normalized request: %+v", r)
	}
}
