package service

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the service's metrics in the Prometheus text
// exposition format (version 0.0.4) — the `GET /metrics?format=prometheus`
// body. It is a second view over the same counters the JSON Snapshot
// reports: every family is derived from Snapshot fields plus the search
// latency summary, so the two endpoints can never disagree.
func (s *Service) WritePrometheus(w io.Writer) error {
	snap := s.Metrics()
	count, sum := s.metrics.latencySummary()
	p50, p99 := s.metrics.percentiles()

	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, formatPromFloat(v))
	}

	counter("tofu_requests_cache_hits_total", "Requests answered from the plan cache.", snap.Hits)
	counter("tofu_requests_cache_misses_total", "Requests that started or joined a search.", snap.Misses)
	counter("tofu_requests_coalesced_total", "Requests that joined an in-flight identical search.", snap.Coalesced)
	counter("tofu_requests_rejected_total", "Requests bounced by queue backpressure.", snap.Rejected)
	counter("tofu_requests_tenant_rejected_total", "Requests bounced by per-tenant quota.", snap.TenantRejected)
	counter("tofu_jobs_done_total", "Searches completed successfully.", snap.JobsDone)
	counter("tofu_jobs_failed_total", "Searches that errored.", snap.JobsFailed)
	counter("tofu_sweep_done_total", "Speculative manifest sweeps completed.", snap.SweepDone)
	counter("tofu_sweep_failed_total", "Speculative manifest sweeps that errored.", snap.SweepFailed)

	gauge("tofu_searches_in_flight", "Searches running right now.", float64(snap.InFlight))
	gauge("tofu_queue_len", "Queued-but-not-running search jobs.", float64(snap.QueueLen))
	gauge("tofu_queue_cap", "Search queue capacity.", float64(snap.QueueCap))
	gauge("tofu_cache_entries", "Plans resident in the LRU.", float64(snap.CacheLen))
	gauge("tofu_cache_entries_cap", "Plan LRU entry capacity.", float64(snap.CacheCap))
	gauge("tofu_cache_bytes", "Plan LRU resident payload bytes.", float64(snap.CacheBytes))
	gauge("tofu_uptime_seconds", "Seconds since the service started.", snap.UptimeSec)

	gauge("tofu_store_enabled", "1 when a persistent plan store is configured.", boolGauge(snap.StoreEnabled))
	counter("tofu_store_puts_total", "Plans written through to the persistent store.", snap.StorePuts)
	counter("tofu_store_hits_total", "Persistent-store entry reads served.", snap.StoreHits)
	counter("tofu_store_misses_total", "Persistent-store entry reads missed.", snap.StoreMisses)
	counter("tofu_store_corrupt_total", "Persistent-store entries quarantined by checksum.", snap.StoreCorrupt)
	counter("tofu_store_quarantined_total", "Corrupt store entries preserved as forensic .corrupt files.", snap.StoreQuarantined)
	counter("tofu_store_served_total", "Requests answered from persistent-store bytes.", snap.StoreServed)
	counter("tofu_store_bad_plan_total", "Checksum-valid store entries rejected by plan verification.", snap.StoreBadPlan)
	counter("tofu_store_put_errors_total", "Persistent-store write-through failures.", snap.StorePutErrors)

	gauge("tofu_pricing_models", "Model buckets resident in the pricing-reuse cache.", float64(snap.PricingModels))
	counter("tofu_pricing_hits_total", "Per-slot pricing cache hits across all searches.", snap.PricingHits)
	counter("tofu_pricing_misses_total", "Per-slot pricing cache builds across all searches.", snap.PricingMisses)
	counter("tofu_pricing_model_hits_total", "Pricing bucket-level model hits.", snap.PricingModelHits)
	counter("tofu_pricing_model_misses_total", "Pricing bucket-level model creations.", snap.PricingModelMiss)

	counter("tofu_search_orderings_total", "Candidate factor-to-level orderings examined.", snap.SearchOrderings)
	counter("tofu_search_steps_total", "Branch-and-bound nodes expanded.", snap.SearchSteps)
	counter("tofu_search_pruned_total", "Branch-and-bound nodes pruned.", snap.SearchPruned)
	counter("tofu_search_dp_steps_total", "DP steps actually run.", snap.SearchDPSteps)
	counter("tofu_search_dp_steps_flat_total", "DP steps a flat enumeration would have run.", snap.SearchDPStepsFlat)
	counter("tofu_search_warm_started_total", "Searches seeded from a neighboring cached plan.", snap.SearchWarmStarted)
	counter("tofu_search_degraded_total", "Searches stopped by their deadline with a served incumbent.", snap.SearchDegraded)
	counter("tofu_search_cancelled_total", "Searches cancelled before any incumbent existed.", snap.SearchCancelled)
	counter("tofu_requests_deadline_rejected_total", "Deadline-bounded requests refused at admission.", snap.DeadlineRejected)

	// The latency summary: window percentiles as quantile legs, lifetime
	// count and sum — the Prometheus idiom for a client-side histogram.
	const lat = "tofu_search_duration_seconds"
	fmt.Fprintf(&b, "# HELP %s Wall-clock duration of completed searches.\n# TYPE %s summary\n", lat, lat)
	fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", lat, formatPromFloat(p50.Seconds()))
	fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", lat, formatPromFloat(p99.Seconds()))
	fmt.Fprintf(&b, "%s_sum %s\n", lat, formatPromFloat(sum.Seconds()))
	fmt.Fprintf(&b, "%s_count %d\n", lat, count)

	_, err := io.WriteString(w, b.String())
	return err
}

// formatPromFloat renders a float the way Prometheus parses fastest: bare
// integers stay integral, everything else is shortest-round-trip.
func formatPromFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
