package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tofu/internal/models"
	"tofu/internal/store"
)

func TestCacheByteBudgetEviction(t *testing.T) {
	// Three 10-byte plans fit a 32-byte budget; the fourth evicts the LRU.
	c := NewCacheBytes(100, 32)
	val := bytes.Repeat([]byte("x"), 10)
	for i := 1; i <= 3; i++ {
		c.Put(testDigest(i), val)
	}
	if c.Bytes() != 30 || c.Len() != 3 {
		t.Fatalf("bytes=%d len=%d, want 30/3", c.Bytes(), c.Len())
	}
	c.Put(testDigest(4), val)
	if c.Len() != 3 || c.Bytes() != 30 {
		t.Fatalf("after byte-budget eviction: bytes=%d len=%d, want 30/3", c.Bytes(), c.Len())
	}
	if _, ok := c.Get(testDigest(1)); ok {
		t.Fatal("1 should have been evicted by the byte budget")
	}
	// Refreshing an entry with a bigger value evicts others, not itself.
	c.Put(testDigest(4), bytes.Repeat([]byte("y"), 30))
	if _, ok := c.Get(testDigest(4)); !ok {
		t.Fatal("refreshed entry must survive its own eviction pass")
	}
	if c.Bytes() > 32 {
		t.Fatalf("bytes=%d over budget", c.Bytes())
	}
	// One plan bigger than the whole budget still caches (alone).
	c.Put(testDigest(9), bytes.Repeat([]byte("z"), 100))
	if v, ok := c.Get(testDigest(9)); !ok || len(v) != 100 {
		t.Fatal("oversized plan must cache as the sole resident")
	}
	if c.Len() != 1 {
		t.Fatalf("oversized plan should evict everything else, len=%d", c.Len())
	}
}

// fleetRequest is a real (non-seam) request small enough for test searches.
func fleetRequest() Request {
	return Request{Model: models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}}
}

// computeVia runs a request through a service end to end.
func computeVia(t *testing.T, s *Service, req Request) (string, []byte) {
	t.Helper()
	nr, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	digest, err := nr.digestNormalized()
	if err != nil {
		t.Fatal(err)
	}
	val, err := submitAndWait(t, s, nr, digest, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return digest, val
}

// TestStoreServesAcrossRestart is the tentpole contract: a daemon computes a
// plan, dies, and its successor on the same store directory serves the
// identical bytes from disk — verified, without running a search.
func TestStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{Workers: 1, Store: st1})
	digest, fresh := computeVia(t, a, fleetRequest())
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Replica B: fresh process, same directory.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{Workers: 1, Store: st2})
	defer b.Shutdown(context.Background())
	val, ok := b.Lookup(digest)
	if !ok {
		t.Fatal("restarted replica missed the store")
	}
	if !bytes.Equal(val, fresh) {
		t.Fatal("store-served bytes differ from the fresh search's bytes")
	}
	m := b.Metrics()
	if !m.StoreEnabled || m.StoreServed != 1 || m.StoreHits != 1 {
		t.Fatalf("store metrics: %+v", m)
	}
	// A second Lookup is an LRU hit, not another disk read.
	if _, ok := b.Lookup(digest); !ok {
		t.Fatal("promoted entry missing from LRU")
	}
	if m2 := b.Metrics(); m2.StoreServed != 1 {
		t.Fatalf("store served twice (%d); promotion into the LRU failed", m2.StoreServed)
	}
}

// TestStoreCorruptEntryRecomputes flips a bit in the stored entry: the next
// replica must quarantine it, miss, and recompute the identical plan.
func TestStoreCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{Workers: 1, Store: st1})
	digest, fresh := computeVia(t, a, fleetRequest())
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	entries, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want 1 store entry, got %v (%v)", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{Workers: 1, Store: st2})
	defer b.Shutdown(context.Background())
	if _, ok := b.Lookup(digest); ok {
		t.Fatal("corrupt entry was served")
	}
	_, recomputed := computeVia(t, b, fleetRequest())
	if !bytes.Equal(recomputed, fresh) {
		t.Fatal("recomputed plan differs from the original")
	}
	if m := b.Metrics(); m.StoreCorrupt == 0 {
		t.Fatalf("corruption not counted: %+v", m)
	}
}

func TestTenantQuota(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{
		Workers: 2, QueueDepth: 16, TenantQuota: 1,
		Compute: func(r Request) ([]byte, error) { <-gate; return []byte("p"), nil },
	})
	defer func() { close(gate); s.Shutdown(context.Background()) }()

	req := fleetRequest()
	j1, _, err := s.SubmitTenant(req, testDigest(1), "acme")
	if err != nil {
		t.Fatal(err)
	}
	// Same tenant, second distinct search: over quota, even though the
	// global queue has plenty of room.
	if _, _, err := s.SubmitTenant(req, testDigest(2), "acme"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("want ErrTenantQuota, got %v", err)
	}
	// A different tenant and the anonymous path are unaffected.
	if _, _, err := s.SubmitTenant(req, testDigest(3), "other"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Submit(req, testDigest(4)); err != nil {
		t.Fatal(err)
	}
	// Joining an in-flight search never counts against the quota.
	if _, kind, err := s.SubmitTenant(req, testDigest(1), "acme"); err != nil || kind != SubmitJoined {
		t.Fatalf("join: kind=%v err=%v", kind, err)
	}
	if m := s.Metrics(); m.TenantRejected != 1 {
		t.Fatalf("tenant_rejected = %d, want 1", m.TenantRejected)
	}
	// Releasing the running job frees the tenant's slot.
	gate <- struct{}{}
	<-j1.Done()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := s.SubmitTenant(req, testDigest(5), "acme"); err == nil {
			break
		} else if !errors.Is(err, ErrTenantQuota) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("tenant slot never released")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTenantQuotaConcurrent hammers one tenant from many goroutines: the
// number of admitted jobs must never exceed the quota while the gate holds,
// and the counters must reconcile. Run under -race in CI.
func TestTenantQuotaConcurrent(t *testing.T) {
	gate := make(chan struct{})
	const quota = 3
	s := New(Config{
		Workers: 8, QueueDepth: 64, TenantQuota: quota,
		Compute: func(r Request) ([]byte, error) { <-gate; return []byte("p"), nil },
	})
	defer s.Shutdown(context.Background())

	req := fleetRequest()
	const n = 32
	var admitted, rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			_, _, err := s.SubmitTenant(req, testDigest(100+i), "acme")
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, ErrTenantQuota):
				rejected++
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if admitted != quota || rejected != n-quota {
		t.Fatalf("admitted=%d rejected=%d, want %d/%d", admitted, rejected, quota, n-quota)
	}
	close(gate)
}

func TestTenantQuotaOverHTTP(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{
		Workers: 2, QueueDepth: 16, TenantQuota: 1, SyncWait: 10 * time.Millisecond,
		Compute: func(r Request) ([]byte, error) { <-gate; return []byte("p"), nil },
	})
	srv := httptest.NewServer(s.Handler())
	defer func() {
		srv.Close()
		close(gate)
		s.Shutdown(context.Background())
	}()

	post := func(tenant, body string) int {
		t.Helper()
		req, err := http.NewRequest("POST", srv.URL+"/v1/partition", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("Tofu-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	b1 := `{"model":{"family":"mlp","depth":4,"width":256,"batch":64}}`
	b2 := `{"model":{"family":"mlp","depth":4,"width":512,"batch":64}}`
	if code := post("acme", b1); code != http.StatusAccepted {
		t.Fatalf("first request: %d, want 202 (async flip)", code)
	}
	if code := post("acme", b2); code != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: %d, want 429", code)
	}
	if code := post("other", b2); code != http.StatusAccepted {
		t.Fatalf("other tenant: %d, want 202", code)
	}
}

// TestSweeperDrainsManifestWhenIdle: the sweeper precomputes every manifest
// entry, but only via idle capacity — while a user search holds the service
// busy, the sweeper stays out entirely.
func TestSweeperDrainsManifestWhenIdle(t *testing.T) {
	gate := make(chan struct{})
	busy := make(chan struct{}, 1)
	s := New(Config{
		Workers: 1, QueueDepth: 16,
		Compute: func(r Request) ([]byte, error) {
			if r.Model.Width == 999 { // the user's search
				busy <- struct{}{}
				<-gate
			}
			return []byte("swept-" + r.Model.Family), nil
		},
	})
	defer s.Shutdown(context.Background())

	manifest := []byte(`{"format":"tofu-fleet-manifest-v1","requests":[
		{"model":{"family":"mlp","depth":4,"width":256,"batch":64}},
		{"model":{"family":"rnn","depth":2,"width":256,"batch":16}}]}`)
	reqs, digests, err := ParseManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only worker with user traffic before the sweeper starts.
	userReq := Request{Model: models.Config{Family: "mlp", Depth: 4, Width: 999, Batch: 64}}
	nr, err := userReq.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ud, err := nr.digestNormalized()
	if err != nil {
		t.Fatal(err)
	}
	uj, _, err := s.Submit(nr, ud)
	if err != nil {
		t.Fatal(err)
	}
	<-busy

	sw := s.StartSweeper(reqs, digests, time.Millisecond)
	defer sw.Stop()
	time.Sleep(50 * time.Millisecond)
	if done, _ := sw.Done(); done != 0 {
		t.Fatalf("sweeper made progress (%d) while the service was busy", done)
	}
	if m := s.Metrics(); m.SweepDone != 0 {
		t.Fatalf("sweep_done = %d while busy", m.SweepDone)
	}

	close(gate)
	<-uj.Done()
	// The sweeper marks an entry resolved when it submits the search; the
	// sweep_done metric lands when the search finishes. Wait for the latter.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := s.Metrics(); m.SweepDone == 2 {
			break
		}
		if time.Now().After(deadline) {
			done, total := sw.Done()
			m := s.Metrics()
			t.Fatalf("sweep stalled: resolved %d/%d, done=%d failed=%d", done, total, m.SweepDone, m.SweepFailed)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if done, total := sw.Done(); done != total {
		t.Fatalf("sweeper resolved %d/%d entries", done, total)
	}
	for _, d := range digests {
		if _, ok := s.Lookup(d); !ok {
			t.Errorf("manifest digest %s not cached after sweep", d)
		}
	}
	if m := s.Metrics(); m.SweepFailed != 0 {
		t.Fatalf("sweep_failed = %d, want 0", m.SweepFailed)
	}
}

func TestParseManifestStrict(t *testing.T) {
	good := `{"format":"tofu-fleet-manifest-v1","requests":[
		{"model":{"family":"mlp","depth":4,"width":256,"batch":64}},
		{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"hw":"dgx1"}]}`
	reqs, digests, err := ParseManifest([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 || len(digests) != 2 || digests[0] == digests[1] {
		t.Fatalf("parsed %d reqs, digests %v", len(reqs), digests)
	}
	bad := map[string]string{
		"wrong-format":  `{"format":"v0","requests":[{"model":{"family":"mlp","depth":4,"width":256,"batch":64}}]}`,
		"no-requests":   `{"format":"tofu-fleet-manifest-v1","requests":[]}`,
		"unknown-field": `{"format":"tofu-fleet-manifest-v1","requests":[],"extra":1}`,
		"bad-request":   `{"format":"tofu-fleet-manifest-v1","requests":[{"model":{"family":"gpt"}}]}`,
		"duplicate": `{"format":"tofu-fleet-manifest-v1","requests":[
			{"model":{"family":"mlp","depth":4,"width":256,"batch":64}},
			{"model":{"family":"mlp","depth":4,"width":256,"batch":64},"workers":8}]}`,
		"trailing": `{"format":"tofu-fleet-manifest-v1","requests":[{"model":{"family":"mlp","depth":4,"width":256,"batch":64}}]} {}`,
	}
	for name, body := range bad {
		if _, _, err := ParseManifest([]byte(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestWarmStartViaNeighborIndex: after answering a model on one machine, a
// request for the same model on a different machine is warm-started from
// the neighbor's ordering — and still serves exactly the bytes a cold
// one-shot search produces.
func TestWarmStartViaNeighborIndex(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	model := models.Config{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}
	computeVia(t, s, Request{Model: model, HW: "dgx1"})
	if m := s.Metrics(); m.SearchWarmStarted != 0 {
		t.Fatalf("first search warm-started (%d) with an empty index", m.SearchWarmStarted)
	}

	req2 := Request{Model: model, HW: "cluster-2x8"}
	_, served := computeVia(t, s, req2)
	if m := s.Metrics(); m.SearchWarmStarted != 1 {
		t.Fatalf("search_warm_started = %d, want 1", m.SearchWarmStarted)
	}
	cold, err := ComputePlan(req2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, cold) {
		t.Fatal("warm-started service plan differs from the cold one-shot plan")
	}
}

// TestNeighborIndexBootScan: a fresh service over a populated store knows
// the fleet's plans without having computed any.
func TestNeighborIndexBootScan(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{Workers: 1, Store: st1})
	model := models.Config{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}
	computeVia(t, a, Request{Model: model, HW: "dgx1"})
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{Workers: 1, Store: st2})
	defer b.Shutdown(context.Background())
	if got := b.neighbors.models(); len(got) != 1 {
		t.Fatalf("boot scan indexed %v, want 1 model bucket", got)
	}
	// The boot-scanned neighbor warm-starts the first search of this
	// process's life.
	computeVia(t, b, Request{Model: model, HW: "cluster-2x8"})
	if m := b.Metrics(); m.SearchWarmStarted != 1 {
		t.Fatalf("search_warm_started = %d, want 1 (from boot-scanned index)", m.SearchWarmStarted)
	}
}
