package service

import (
	"sync"
	"time"
)

// Sweeper is the speculative precompute worker: it drains a fleet manifest
// of (model × machine) pairs through the service's ordinary job queue, but
// only when the service is completely idle — no queued and no running jobs
// — and only one search at a time. User traffic therefore always wins: a
// request arriving while a sweep search runs queues normally, and the
// sweeper won't start another until the queue drains again. Plans it
// precomputes land in the same cache, store, and neighbor index as
// user-requested ones.
type Sweeper struct {
	svc      *Service
	reqs     []Request
	digests  []string
	interval time.Duration

	mu   sync.Mutex
	done map[string]bool // digests answered or permanently failed

	stop    chan struct{}
	stopped chan struct{}
}

// StartSweeper launches a sweeper over a parsed manifest (see
// ParseManifest). interval is the idle-poll cadence (default 250ms). Stop
// it before shutting the service down.
func (s *Service) StartSweeper(reqs []Request, digests []string, interval time.Duration) *Sweeper {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	sw := &Sweeper{
		svc:      s,
		reqs:     reqs,
		digests:  digests,
		interval: interval,
		done:     make(map[string]bool),
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	go sw.loop()
	return sw
}

// Stop halts the sweeper and waits for its loop to exit. Any sweep search
// already submitted keeps running; it is an ordinary job.
func (sw *Sweeper) Stop() {
	select {
	case <-sw.stop:
	default:
		close(sw.stop)
	}
	<-sw.stopped
}

// Done reports how many manifest entries the sweeper has resolved (served
// from cache, precomputed, or permanently failed) out of the total.
func (sw *Sweeper) Done() (resolved, total int) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return len(sw.done), len(sw.reqs)
}

func (sw *Sweeper) isDone(d string) bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.done[d]
}

func (sw *Sweeper) markDone(d string) {
	sw.mu.Lock()
	sw.done[d] = true
	sw.mu.Unlock()
}

func (sw *Sweeper) loop() {
	defer close(sw.stopped)
	t := time.NewTicker(sw.interval)
	defer t.Stop()
	for {
		select {
		case <-sw.stop:
			return
		case <-t.C:
		}
		if !sw.svc.idle() {
			continue
		}
		job := sw.submitNext()
		if job == nil {
			continue
		}
		// Wait for the sweep search so at most one runs; bail promptly on
		// Stop (the job itself finishes on its own).
		select {
		case <-job.Done():
		case <-sw.stop:
			return
		}
	}
}

// idle reports whether the service has no queued and no running work — the
// only state the sweeper is allowed to consume capacity in.
func (s *Service) idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight) == 0 && len(s.queue) == 0 && s.metrics.inFlight.Load() == 0 && !s.closed
}

// submitNext submits the first unresolved manifest entry, marking entries
// that are already cached (or stored) as resolved along the way. nil means
// nothing was submitted this tick.
func (sw *Sweeper) submitNext() *Job {
	for i, d := range sw.digests {
		if sw.isDone(d) {
			continue
		}
		if _, ok := sw.svc.Lookup(d); ok {
			sw.markDone(d)
			continue
		}
		j, kind, err := sw.svc.submit(sw.reqs[i], d, "", true)
		if err != nil {
			// Queue raced busy (or shutdown): try again next idle tick.
			return nil
		}
		if kind == SubmitCached {
			sw.markDone(d)
			continue
		}
		// Joined jobs count too: the answer is on its way.
		sw.markDone(d)
		return j
	}
	return nil
}
