package service

import (
	"bytes"
	"context"
	"testing"
	"time"

	"tofu/internal/models"
	"tofu/internal/topo"
)

// runReal runs one request through the real compute path.
func runReal(t *testing.T, s *Service, req Request) []byte {
	t.Helper()
	nr, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	digest, err := nr.digestNormalized()
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := s.Submit(nr, digest)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("search timed out")
	}
	val, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	return val
}

// TestPricingReuseAcrossRequests: warm requests for the same model at a
// different worker count / machine reuse the model's pricing bucket (hit
// counts surface in the metrics snapshot), and the served plans stay
// byte-identical to an isolated fresh search.
func TestPricingReuseAcrossRequests(t *testing.T) {
	s := New(Config{Workers: 1, Parallelism: 1})
	defer s.Shutdown(context.Background())

	model := models.Config{Family: "mlp", Depth: 4, Width: 512, Batch: 64}
	dgx1, err := topo.Profile("dgx1")
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{Model: model, Workers: 8},                                 // flat default machine
		{Model: model, Workers: 4},                                 // same model, different k
		{Model: model, HW: "dgx1", Workers: int64(dgx1.NumGPUs())}, // hierarchical
	}
	for _, r := range reqs {
		got := runReal(t, s, r)
		want, err := ComputePlan(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("plan for %+v diverges from an isolated fresh search", r)
		}
	}

	m := s.Metrics()
	if m.PricingModels != 1 {
		t.Errorf("pricing_models = %d, want 1 (one model across all requests)", m.PricingModels)
	}
	if m.PricingModelHits < 2 {
		t.Errorf("pricing_model_hits = %d, want >= 2 (second and third request reuse the bucket)", m.PricingModelHits)
	}
	if m.PricingHits == 0 {
		t.Error("pricing_hits = 0: warm requests re-priced every slot")
	}
	if m.SearchOrderings == 0 {
		t.Error("search_orderings = 0: the dgx1 request ran a topology-aware search")
	}
	if m.SearchDPStepsFlat < m.SearchDPSteps {
		t.Errorf("search_dp_steps_flat %d < search_dp_steps %d", m.SearchDPStepsFlat, m.SearchDPSteps)
	}
}

// TestPricingCachesBounded: the per-model LRU evicts the least recently
// used bucket and keeps its hit counters in the aggregate.
func TestPricingCachesBounded(t *testing.T) {
	p := NewPricingCaches(2)
	cfgs := []models.Config{
		{Family: "mlp", Depth: 2, Width: 128, Batch: 32},
		{Family: "mlp", Depth: 3, Width: 128, Batch: 32},
		{Family: "mlp", Depth: 4, Width: 128, Batch: 32},
	}
	a := p.For(cfgs[0])
	if p.For(cfgs[0]) != a {
		t.Fatal("same model must return the same bucket")
	}
	p.For(cfgs[1])
	p.For(cfgs[2]) // evicts cfgs[0]
	if got := p.Models(); got != 2 {
		t.Fatalf("resident models = %d, want 2", got)
	}
	if p.For(cfgs[0]) == a {
		t.Error("evicted model must get a fresh bucket")
	}
	_, _, hits, misses := p.PricingStats()
	if hits != 1 || misses != 4 {
		t.Errorf("model hits/misses = %d/%d, want 1/4", hits, misses)
	}
}
