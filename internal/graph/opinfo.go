package graph

import (
	"fmt"

	"tofu/internal/shape"
	"tofu/internal/tdl"
)

// OpInfo carries the per-operator metadata the graph layer needs beyond the
// TDL description: shape inference (MXNet's infer-shape pass), an analytic
// cost model for the simulator, and the gradient builder used by autodiff.
type OpInfo struct {
	// InferShape computes the output shape from attrs and input shapes.
	InferShape func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error)
	// FLOPs estimates floating-point work; the simulator divides by the
	// device's effective throughput.
	FLOPs func(attrs tdl.Attrs, in []shape.Shape, out shape.Shape) float64
	// Grad appends backward nodes computing the gradient w.r.t. each input
	// (nil entries mean no gradient flows). nil Grad means the op blocks
	// gradients entirely.
	Grad GradFn
	// NeedsRank marks the generic element-wise family whose TDL description
	// is parameterized by tensor rank; Apply injects a "rank" attribute.
	NeedsRank bool
}

// GradFn builds gradient contributions for a node given the output gradient.
type GradFn func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error)

var infos = map[string]OpInfo{}

// RegisterInfo installs op metadata; duplicates panic (init-time wiring).
func RegisterInfo(name string, info OpInfo) {
	if _, dup := infos[name]; dup {
		panic(fmt.Sprintf("graph: op info %q already registered", name))
	}
	infos[name] = info
}

// Info fetches op metadata.
func Info(name string) (OpInfo, error) {
	i, ok := infos[name]
	if !ok {
		return OpInfo{}, fmt.Errorf("graph: no op info for %q", name)
	}
	return i, nil
}

// MemBytes returns the memory traffic of a node: inputs read + output
// written. Element-wise kernels are bound by this, not FLOPs.
func MemBytes(n *Node) int64 {
	var b int64
	for _, in := range n.Inputs {
		b += in.Bytes()
	}
	return b + n.Output.Bytes()
}

// NodeFLOPs evaluates the registered FLOPs model for a node.
func NodeFLOPs(n *Node) float64 {
	info, err := Info(n.Op)
	if err != nil || info.FLOPs == nil {
		return float64(n.Output.Shape.Elems())
	}
	in := make([]shape.Shape, len(n.Inputs))
	for i, t := range n.Inputs {
		in[i] = t.Shape
	}
	return info.FLOPs(n.Attrs, in, n.Output.Shape)
}

// --- shape helpers -------------------------------------------------------

func sameAsInput0(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("no inputs")
	}
	return in[0].Clone(), nil
}

func allSame(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
	for i := 1; i < len(in); i++ {
		if !in[i].Equal(in[0]) {
			return nil, fmt.Errorf("input %d shape %v != %v", i, in[i], in[0])
		}
	}
	return sameAsInput0(attrs, in)
}

func wantRank(in []shape.Shape, ranks ...int) error {
	if len(in) != len(ranks) {
		return fmt.Errorf("want %d inputs, got %d", len(ranks), len(in))
	}
	for i, r := range ranks {
		if in[i].Rank() != r {
			return fmt.Errorf("input %d rank %d, want %d", i, in[i].Rank(), r)
		}
	}
	return nil
}

func ewFLOPs(mult float64) func(tdl.Attrs, []shape.Shape, shape.Shape) float64 {
	return func(_ tdl.Attrs, _ []shape.Shape, out shape.Shape) float64 {
		return mult * float64(out.Elems())
	}
}

// --- element-wise registration -----------------------------------------

func regUnaryEW(name string, grad GradFn) {
	RegisterInfo(name, OpInfo{
		InferShape: sameAsInput0, FLOPs: ewFLOPs(1), Grad: grad, NeedsRank: true,
	})
}

func regBinaryEW(name string, grad GradFn) {
	RegisterInfo(name, OpInfo{
		InferShape: allSame, FLOPs: ewFLOPs(1), Grad: grad, NeedsRank: true,
	})
}

func init() {
	regUnaryEW("identity", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("identity", nil, dy)}, nil
	})
	regUnaryEW("negate", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("negate", nil, dy)}, nil
	})
	regUnaryEW("scale", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("scale", nil, dy)}, nil
	})
	regUnaryEW("relu", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("relu_grad", nil, n.Inputs[0], dy)}, nil
	})
	regUnaryEW("sigmoid", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("sigmoid_grad", nil, n.Output, dy)}, nil
	})
	regUnaryEW("tanh", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("tanh_grad", nil, n.Output, dy)}, nil
	})
	regUnaryEW("exp", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("mul", nil, dy, n.Output)}, nil
	})
	regUnaryEW("log", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("div", nil, dy, n.Inputs[0])}, nil
	})
	regUnaryEW("sqrt", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("div", nil, g.Apply("scale", nil, dy), n.Output)}, nil
	})
	regUnaryEW("square", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{g.Apply("mul", nil, dy, g.Apply("scale", nil, n.Inputs[0]))}, nil
	})

	regBinaryEW("add", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{dy, dy}, nil
	})
	regBinaryEW("sub", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{dy, g.Apply("negate", nil, dy)}, nil
	})
	regBinaryEW("mul", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		return []*Tensor{
			g.Apply("mul", nil, dy, n.Inputs[1]),
			g.Apply("mul", nil, dy, n.Inputs[0]),
		}, nil
	})
	regBinaryEW("div", func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
		da := g.Apply("div", nil, dy, n.Inputs[1])
		db := g.Apply("negate", nil, g.Apply("mul", nil, da, g.Apply("div", nil, n.Output, n.Inputs[1])))
		return []*Tensor{da, db}, nil
	})
	regBinaryEW("maximum", nil)
	regBinaryEW("minimum", nil)

	// Backward-only and optimizer element-wise kernels: no second-order.
	regBinaryEW("relu_grad", nil)
	regBinaryEW("sigmoid_grad", nil)
	regBinaryEW("tanh_grad", nil)
	regBinaryEW("sgd_update", nil)
	RegisterInfo("adam_update", OpInfo{InferShape: allSame, FLOPs: ewFLOPs(4), NeedsRank: true})
	RegisterInfo("fma", OpInfo{InferShape: allSame, FLOPs: ewFLOPs(2), NeedsRank: true})

	registerMatmulInfo()
	registerConvInfo()
	registerPoolInfo()
	registerBNInfo()
	registerSoftmaxInfo()
	registerSliceInfo()
	registerOpaqueInfo()
}

// --- matmul ---------------------------------------------------------------

func matmulFLOPs(m, n, k int64) float64 { return 2 * float64(m) * float64(n) * float64(k) }

func registerMatmulInfo() {
	RegisterInfo("matmul", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2, 2); err != nil {
				return nil, err
			}
			if in[0].Dim(1) != in[1].Dim(0) {
				return nil, fmt.Errorf("matmul inner dims %v x %v", in[0], in[1])
			}
			return shape.Of(in[0].Dim(0), in[1].Dim(1)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return matmulFLOPs(out.Dim(0), out.Dim(1), in[0].Dim(1))
		},
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			da := g.Apply("matmul_nt", nil, dy, n.Inputs[1])
			db := g.Apply("matmul_tn", nil, n.Inputs[0], dy)
			return []*Tensor{da, db}, nil
		},
	})
	RegisterInfo("matmul_nt", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2, 2); err != nil {
				return nil, err
			}
			if in[0].Dim(1) != in[1].Dim(1) {
				return nil, fmt.Errorf("matmul_nt inner dims %v x %v", in[0], in[1])
			}
			return shape.Of(in[0].Dim(0), in[1].Dim(0)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return matmulFLOPs(out.Dim(0), out.Dim(1), in[0].Dim(1))
		},
	})
	RegisterInfo("matmul_tn", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2, 2); err != nil {
				return nil, err
			}
			if in[0].Dim(0) != in[1].Dim(0) {
				return nil, fmt.Errorf("matmul_tn inner dims %v x %v", in[0], in[1])
			}
			return shape.Of(in[0].Dim(1), in[1].Dim(1)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return matmulFLOPs(out.Dim(0), out.Dim(1), in[0].Dim(0))
		},
	})
	RegisterInfo("bias_add", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2, 1); err != nil {
				return nil, err
			}
			if in[0].Dim(1) != in[1].Dim(0) {
				return nil, fmt.Errorf("bias_add dims %v + %v", in[0], in[1])
			}
			return in[0].Clone(), nil
		},
		FLOPs: ewFLOPs(1),
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			return []*Tensor{dy, g.Apply("reduce_sum_axis0", nil, dy)}, nil
		},
	})
	RegisterInfo("reduce_sum_axis0", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(1)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, _ shape.Shape) float64 {
			return float64(in[0].Elems())
		},
	})
	RegisterInfo("transpose", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(1), in[0].Dim(0)), nil
		},
		FLOPs: ewFLOPs(1),
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			return []*Tensor{g.Apply("transpose", nil, dy)}, nil
		},
	})
}

// --- convolution ----------------------------------------------------------

func convFLOPs(out shape.Shape, ci, kh, kw int64) float64 {
	return 2 * float64(out.Elems()) * float64(ci) * float64(kh) * float64(kw)
}

func registerConvInfo() {
	RegisterInfo("conv2d", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4, 4); err != nil {
				return nil, err
			}
			s := attrs.Get("stride", 1)
			data, w := in[0], in[1]
			if data.Dim(1) != w.Dim(1) {
				return nil, fmt.Errorf("conv2d channels %v vs %v", data, w)
			}
			if data.Dim(2)%s != 0 || data.Dim(3)%s != 0 {
				return nil, fmt.Errorf("conv2d stride %d does not divide %v", s, data)
			}
			return shape.Of(data.Dim(0), w.Dim(0), data.Dim(2)/s, data.Dim(3)/s), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return convFLOPs(out, in[1].Dim(1), in[1].Dim(2), in[1].Dim(3))
		},
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			s := n.Attrs.Get("stride", 1)
			w := n.Inputs[1]
			dData := g.Apply("conv2d_bwd_data", tdl.Attrs{"stride": s}, dy, w)
			dW := g.Apply("conv2d_bwd_weight", tdl.Attrs{
				"stride": s, "kh": w.Shape.Dim(2), "kw": w.Shape.Dim(3),
			}, dy, n.Inputs[0])
			return []*Tensor{dData, dW}, nil
		},
	})
	RegisterInfo("conv2d_bwd_data", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4, 4); err != nil {
				return nil, err
			}
			s := attrs.Get("stride", 1)
			dy, w := in[0], in[1]
			return shape.Of(dy.Dim(0), w.Dim(1), dy.Dim(2)*s, dy.Dim(3)*s), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return convFLOPs(out, in[1].Dim(0), in[1].Dim(2), in[1].Dim(3))
		},
	})
	RegisterInfo("conv2d_bwd_weight", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4, 4); err != nil {
				return nil, err
			}
			dy, data := in[0], in[1]
			return shape.Of(dy.Dim(1), data.Dim(1), attrs.Get("kh", 1), attrs.Get("kw", 1)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return 2 * float64(in[0].Elems()) * float64(out.Dim(1)) * float64(out.Dim(2)) * float64(out.Dim(3))
		},
	})
	RegisterInfo("conv1d", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 3, 3); err != nil {
				return nil, err
			}
			data, f := in[0], in[1]
			if data.Dim(1) != f.Dim(0) {
				return nil, fmt.Errorf("conv1d channels %v vs %v", data, f)
			}
			return shape.Of(data.Dim(0), f.Dim(1), data.Dim(2)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return 2 * float64(out.Elems()) * float64(in[1].Dim(0)) * float64(in[1].Dim(2))
		},
	})
}

// --- pooling ----------------------------------------------------------------

func registerPoolInfo() {
	RegisterInfo("maxpool2d", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4); err != nil {
				return nil, err
			}
			s := attrs.Get("stride", 2)
			d := in[0]
			if d.Dim(2)%s != 0 || d.Dim(3)%s != 0 {
				return nil, fmt.Errorf("maxpool2d stride %d does not divide %v", s, d)
			}
			return shape.Of(d.Dim(0), d.Dim(1), d.Dim(2)/s, d.Dim(3)/s), nil
		},
		FLOPs: func(attrs tdl.Attrs, _ []shape.Shape, out shape.Shape) float64 {
			k := attrs.Get("kernel", 2)
			return float64(out.Elems()) * float64(k*k)
		},
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			return []*Tensor{g.Apply("maxpool2d_grad", tdl.Attrs{
				"stride": n.Attrs.Get("stride", 2),
			}, n.Inputs[0], dy)}, nil
		},
	})
	RegisterInfo("maxpool2d_grad", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4, 4); err != nil {
				return nil, err
			}
			return in[0].Clone(), nil
		},
		FLOPs: ewFLOPs(1),
	})
	RegisterInfo("global_avgpool", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0), in[0].Dim(1)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, _ shape.Shape) float64 {
			return float64(in[0].Elems())
		},
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			in := n.Inputs[0]
			return []*Tensor{g.Apply("global_avgpool_grad", tdl.Attrs{
				"h": in.Shape.Dim(2), "w": in.Shape.Dim(3),
			}, dy)}, nil
		},
	})
	RegisterInfo("global_avgpool_grad", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0), in[0].Dim(1), attrs.Get("h", 1), attrs.Get("w", 1)), nil
		},
		FLOPs: ewFLOPs(1),
	})
}

// --- batch norm -------------------------------------------------------------

func registerBNInfo() {
	chanOf := func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
		if in[0].Rank() != 4 {
			return nil, fmt.Errorf("bn wants NCHW, got %v", in[0])
		}
		return shape.Of(in[0].Dim(1)), nil
	}
	reduceFLOPs := func(_ tdl.Attrs, in []shape.Shape, _ shape.Shape) float64 {
		return float64(in[0].Elems())
	}
	// Stats are stop-gradient (frozen-stats training step); DESIGN.md
	// records the deviation.
	RegisterInfo("bn_mean", OpInfo{InferShape: chanOf, FLOPs: reduceFLOPs})
	RegisterInfo("bn_var", OpInfo{InferShape: chanOf, FLOPs: reduceFLOPs})
	RegisterInfo("bn_norm", OpInfo{
		InferShape: sameAsInput0,
		FLOPs:      ewFLOPs(4),
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			x, mean, vr, gamma := n.Inputs[0], n.Inputs[1], n.Inputs[2], n.Inputs[3]
			dx := g.Apply("bn_data_grad", nil, dy, x, mean, vr, gamma)
			dGamma := g.Apply("bn_gamma_grad", nil, dy, x)
			dBeta := g.Apply("bn_beta_grad", nil, dy)
			return []*Tensor{dx, nil, nil, dGamma, dBeta}, nil
		},
	})
	RegisterInfo("bn_gamma_grad", OpInfo{InferShape: chanOf, FLOPs: reduceFLOPs})
	RegisterInfo("bn_beta_grad", OpInfo{InferShape: chanOf, FLOPs: reduceFLOPs})
	RegisterInfo("bn_data_grad", OpInfo{InferShape: sameAsInput0, FLOPs: ewFLOPs(5)})
}

// --- softmax / loss ------------------------------------------------------

func registerSoftmaxInfo() {
	RegisterInfo("softmax", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			return in[0].Clone(), nil
		},
		FLOPs: ewFLOPs(5),
	})
	RegisterInfo("softmax_ce_grad", OpInfo{
		InferShape: allSame,
		FLOPs:      ewFLOPs(1),
	})
}

// --- slicing ---------------------------------------------------------------

func registerSliceInfo() {
	RegisterInfo("slice_axis1", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			off := attrs.Get("offset", 0)
			size := attrs.Get("size", in[0].Dim(1)-off)
			if off < 0 || size <= 0 || off+size > in[0].Dim(1) {
				return nil, fmt.Errorf("slice [%d:%d] out of %v", off, off+size, in[0])
			}
			return shape.Of(in[0].Dim(0), size), nil
		},
		FLOPs: ewFLOPs(1),
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			return []*Tensor{g.Apply("slice_axis1_grad", tdl.Attrs{
				"offset": n.Attrs.Get("offset", 0),
				"width":  n.Inputs[0].Shape.Dim(1),
			}, dy)}, nil
		},
	})
	RegisterInfo("slice_axis1_grad", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0), attrs.Get("width", in[0].Dim(1))), nil
		},
		FLOPs: ewFLOPs(1),
	})
}

// --- opaque batch ops -----------------------------------------------------

func registerOpaqueInfo() {
	sq := func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
		if err := wantRank(in, 3); err != nil {
			return nil, err
		}
		if in[0].Dim(1) != in[0].Dim(2) {
			return nil, fmt.Errorf("batched matrix op wants square slices, got %v", in[0])
		}
		return in[0].Clone(), nil
	}
	cubeFLOPs := func(_ tdl.Attrs, in []shape.Shape, _ shape.Shape) float64 {
		n := float64(in[0].Dim(1))
		return float64(in[0].Dim(0)) * n * n * n / 3
	}
	RegisterInfo("batch_cholesky", OpInfo{InferShape: sq, FLOPs: cubeFLOPs})
	RegisterInfo("batch_inverse", OpInfo{InferShape: sq, FLOPs: cubeFLOPs})
}
