package graph

import (
	"testing"

	"tofu/internal/shape"
)

// buildTwoLayer builds a two-layer MLP with backward pass, so the graph has
// activations, gradients and weight updates to slice through.
func buildTwoLayer(t *testing.T) *Graph {
	t.Helper()
	g := New()
	x := g.Input("x", shape.Of(32, 64))
	w1 := g.Weight("w1", shape.Of(64, 128))
	w2 := g.Weight("w2", shape.Of(128, 16))
	h := g.Apply("matmul", nil, x, w1)
	h = g.Apply("relu", nil, h)
	out := g.Apply("matmul", nil, h, w2)
	seed := g.NewTensor("dout", Activation, out.Shape, shape.Float32)
	if err := g.Backward(map[*Tensor]*Tensor{out: seed}, AutodiffOptions{InPlaceAgg: true}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSubgraphWholeGraphIdentity(t *testing.T) {
	g := buildTwoLayer(t)
	sub, err := g.Subgraph(func(*Node) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.G.Nodes) != len(g.Nodes) {
		t.Fatalf("kept %d of %d nodes", len(sub.G.Nodes), len(g.Nodes))
	}
	if len(sub.G.Tensors) != len(g.Tensors) {
		t.Fatalf("kept %d of %d tensors", len(sub.G.Tensors), len(g.Tensors))
	}
	for i, n := range sub.G.Nodes {
		orig := g.Nodes[sub.NodeID[i]]
		if n.Op != orig.Op || len(n.Inputs) != len(orig.Inputs) {
			t.Fatalf("node %d: op %q/%d inputs, original %q/%d", i, n.Op, len(n.Inputs), orig.Op, len(orig.Inputs))
		}
	}
	for i, ct := range sub.G.Tensors {
		ot := g.Tensors[sub.TensorID[i]]
		if !ct.Shape.Equal(ot.Shape) || ct.DType != ot.DType || ct.Kind != ot.Kind {
			t.Fatalf("tensor %d: %v/%v/%v, original %v/%v/%v",
				i, ct.Shape, ct.DType, ct.Kind, ot.Shape, ot.DType, ot.Kind)
		}
	}
}

func TestSubgraphPrefixCut(t *testing.T) {
	g := buildTwoLayer(t)
	// Keep the first half of the nodes (a topological prefix).
	cut := len(g.Nodes) / 2
	sub, err := g.Subgraph(func(n *Node) bool { return n.ID < cut })
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.G.Nodes) != cut {
		t.Fatalf("kept %d nodes, want %d", len(sub.G.Nodes), cut)
	}
	if err := sub.G.Validate(); err != nil {
		t.Fatalf("extracted prefix invalid: %v", err)
	}
	if _, err := sub.G.Topo(); err != nil {
		t.Fatalf("extracted prefix breaks topological order: %v", err)
	}
	// Every ID map entry must point at a matching original.
	for i, origID := range sub.TensorID {
		if !sub.G.Tensors[i].Shape.Equal(g.Tensors[origID].Shape) {
			t.Fatalf("tensor map %d -> %d shape mismatch", i, origID)
		}
	}
}

func TestSubgraphSuffixFeedsBecomeInputs(t *testing.T) {
	g := buildTwoLayer(t)
	// Keep the second half: activations produced by the dropped prefix must
	// arrive as producer-less Input feeds; weights keep their kind.
	cut := len(g.Nodes) / 2
	sub, err := g.Subgraph(func(n *Node) bool { return n.ID >= cut })
	if err != nil {
		t.Fatal(err)
	}
	feeds, weights := 0, 0
	for i, ct := range sub.G.Tensors {
		ot := g.Tensors[sub.TensorID[i]]
		if ct.Producer != nil {
			if ot.Kind != ct.Kind {
				t.Fatalf("produced tensor %q changed kind %v -> %v", ct.Name, ot.Kind, ct.Kind)
			}
			continue
		}
		switch ot.Kind {
		case Activation, Gradient:
			if ot.Producer == nil {
				// Producer-less in the original too (the autodiff seed):
				// stays what it was.
				if ct.Kind != ot.Kind {
					t.Fatalf("original feed %q changed kind %v -> %v", ct.Name, ot.Kind, ct.Kind)
				}
				continue
			}
			if ct.Kind != Input {
				t.Fatalf("cross-boundary %v %q kept kind %v", ot.Kind, ct.Name, ct.Kind)
			}
			feeds++
		case Weight:
			if ct.Kind != Weight {
				t.Fatalf("weight %q became %v", ct.Name, ct.Kind)
			}
			weights++
		}
	}
	if feeds == 0 {
		t.Error("no cross-boundary feeds found; cut did not sever the graph")
	}
	if weights == 0 {
		t.Error("no weights in the suffix")
	}
}

func TestSubgraphEmptyAndErrors(t *testing.T) {
	g := buildTwoLayer(t)
	sub, err := g.Subgraph(func(*Node) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.G.Nodes) != 0 || len(sub.G.Tensors) != 0 {
		t.Fatalf("empty keep-set extracted %d nodes, %d tensors", len(sub.G.Nodes), len(sub.G.Tensors))
	}
}
