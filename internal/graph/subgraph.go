package graph

import "fmt"

// Subgraphed is the result of extracting an induced subgraph: the new graph
// plus the identity maps back into the original. Cross-boundary tensors —
// consumed inside but produced outside, or produced inside for outside
// consumers — appear as producer-less clones (activations and gradients
// become Input-kind feeds; weights, inputs and optimizer state keep their
// kind), so the extraction is a closed, valid graph whose shapes and dtypes
// match the original tensor-for-tensor.
type Subgraphed struct {
	G *Graph
	// TensorID maps a subgraph tensor ID to the original tensor's ID.
	TensorID []int
	// NodeID maps a subgraph node ID to the original node's ID.
	NodeID []int
}

// Subgraph extracts the induced subgraph over a node keep-set, preserving
// construction (topological) order: kept nodes are cloned in ascending
// original ID order, so the clone satisfies the same producers-before-
// consumers invariant Topo verifies. GradOf/Grad and FwdOf links survive
// only when both endpoints are kept; control dependencies on dropped nodes
// are dropped with them. The hybrid pipeline search uses this to solve each
// contiguous stage of the coarsened graph as a standalone partition problem.
func (g *Graph) Subgraph(keep func(*Node) bool) (*Subgraphed, error) {
	sub := &Subgraphed{G: NewWithRegistry(g.registry)}
	tmap := make([]*Tensor, len(g.Tensors)) // original tensor ID -> clone
	nmap := make([]*Node, len(g.Nodes))     // original node ID -> clone

	// cloneTensor materializes a tensor into the subgraph. producerKept
	// reports whether the producing node (if any) is part of the keep-set;
	// when it is not, the clone is an external feed: produced values arrive
	// as Input-kind tensors, parameters and state keep their kind.
	cloneTensor := func(t *Tensor, producerKept bool) *Tensor {
		kind := t.Kind
		// Only a severed producer demotes the clone to a feed; tensors that
		// were producer-less to begin with (inputs, seeds) keep their kind.
		if t.Producer != nil && !producerKept && (kind == Activation || kind == Gradient) {
			kind = Input
		}
		ct := sub.G.NewTensor(t.Name, kind, t.Shape, t.DType)
		ct.DType = t.DType
		tmap[t.ID] = ct
		sub.TensorID = append(sub.TensorID, t.ID)
		return ct
	}

	for _, n := range g.Nodes {
		if !keep(n) {
			continue
		}
		inputs := make([]*Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			ct := tmap[in.ID]
			if ct == nil {
				ct = cloneTensor(in, in.Producer != nil && nmap[in.Producer.ID] != nil)
			}
			inputs[i] = ct
		}
		if tmap[n.Output.ID] != nil {
			// A consumer saw this tensor before its producer ran — the
			// original graph would have failed Topo the same way.
			return nil, fmt.Errorf("graph: subgraph node %v produces already-extracted tensor %v", n, n.Output)
		}
		out := cloneTensor(n.Output, true)
		cn := &Node{
			ID:        sub.G.nextNodeID,
			Op:        n.Op,
			Attrs:     n.Attrs,
			Inputs:    inputs,
			Output:    out,
			GradAgg:   n.GradAgg,
			InPlace:   n.InPlace,
			UnrollTag: n.UnrollTag,
			Timestep:  n.Timestep,
		}
		sub.G.nextNodeID++
		out.Producer = cn
		for _, in := range inputs {
			in.Consumers = append(in.Consumers, cn)
		}
		if n.FwdOf != nil && nmap[n.FwdOf.ID] != nil {
			cn.FwdOf = nmap[n.FwdOf.ID]
		}
		for _, d := range n.CtrlDeps {
			if cd := nmap[d.ID]; cd != nil {
				cn.CtrlDeps = append(cn.CtrlDeps, cd)
			}
		}
		nmap[n.ID] = cn
		sub.NodeID = append(sub.NodeID, n.ID)
		sub.G.Nodes = append(sub.G.Nodes, cn)
	}

	// Gradient pairing survives when both tensors were extracted — the
	// coarsening pass reads it to group forward and backward operators.
	for subID, origID := range sub.TensorID {
		ot := g.Tensors[origID]
		ct := sub.G.Tensors[subID]
		if ot.GradOf != nil && tmap[ot.GradOf.ID] != nil {
			ct.GradOf = tmap[ot.GradOf.ID]
		}
		if ot.Grad != nil && tmap[ot.Grad.ID] != nil {
			ct.Grad = tmap[ot.Grad.ID]
		}
	}
	if err := sub.G.Validate(); err != nil {
		return nil, fmt.Errorf("graph: extracted subgraph invalid: %w", err)
	}
	return sub, nil
}
