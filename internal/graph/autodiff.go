package graph

import (
	"fmt"
)

// AutodiffOptions control backward-graph generation.
type AutodiffOptions struct {
	// InPlaceAgg marks gradient-aggregation adds as in-place, the MXNet
	// behaviour; TensorFlow (Table 3's comparison point) lacks it, which
	// doubles peak gradient memory for shared weights.
	InPlaceAgg bool
}

// Backward generates the backward half of a training graph, MXNet-style.
// seeds maps forward tensors to externally supplied gradient tensors (for a
// classifier, the logits' gradient produced by softmax_ce_grad). After it
// returns, every reachable forward tensor t with a gradient has t.Grad set,
// gradient tensors have GradOf set, and backward nodes have FwdOf set — the
// structure the coarsening pass consumes.
func (g *Graph) Backward(seeds map[*Tensor]*Tensor, opt AutodiffOptions) error {
	if len(seeds) == 0 {
		return fmt.Errorf("graph: autodiff needs at least one seed gradient")
	}
	for t, dy := range seeds {
		if !dy.Shape.Equal(t.Shape) {
			return fmt.Errorf("graph: seed gradient %v shape mismatch for %v", dy, t)
		}
		g.bindGrad(t, dy)
	}

	// Reverse topological sweep over the forward nodes present now; grad
	// builders append new (backward) nodes which must not be revisited.
	fwd := append([]*Node(nil), g.Nodes...)
	for i := len(fwd) - 1; i >= 0; i-- {
		n := fwd[i]
		dy := n.Output.Grad
		if dy == nil {
			continue
		}
		info, err := Info(n.Op)
		if err != nil {
			return err
		}
		if info.Grad == nil {
			continue
		}
		before := len(g.Nodes)
		contrib, err := info.Grad(g, n, dy)
		if err != nil {
			return fmt.Errorf("graph: gradient of %v: %w", n, err)
		}
		// Tag the freshly created backward nodes with their forward op.
		for _, bn := range g.Nodes[before:] {
			bn.FwdOf = n
			bn.UnrollTag = n.UnrollTag
			bn.Timestep = n.Timestep
		}
		if len(contrib) != len(n.Inputs) {
			return fmt.Errorf("graph: gradient of %v returned %d contributions for %d inputs",
				n, len(contrib), len(n.Inputs))
		}
		for j, c := range contrib {
			if c == nil {
				continue
			}
			if err := g.accumulate(n, n.Inputs[j], c, opt); err != nil {
				return err
			}
		}
	}
	return nil
}

// accumulate folds one gradient contribution into t.Grad.
func (g *Graph) accumulate(owner *Node, t, c *Tensor, opt AutodiffOptions) error {
	if !c.Shape.Equal(t.Shape) {
		return fmt.Errorf("graph: gradient contribution %v shape mismatch for %v (op %v)", c, t, owner)
	}
	// A contribution already serving as another tensor's gradient (identity
	// pass-through such as add's) is cloned through an explicit identity op
	// to keep the tensor↔gradient pairing one-to-one for coarsening.
	if c.GradOf != nil {
		before := len(g.Nodes)
		c = g.Apply("identity", nil, c)
		for _, bn := range g.Nodes[before:] {
			bn.FwdOf = owner
			bn.UnrollTag = owner.UnrollTag
			bn.Timestep = owner.Timestep
		}
	}
	if t.Grad == nil {
		g.bindGrad(t, c)
		return nil
	}
	// Multiple contributions: chain-rule summation (Sec 5.1 notes the
	// summation operator joins the tensor's group).
	prev := t.Grad
	prev.GradOf = nil
	before := len(g.Nodes)
	sum := g.Apply("add", nil, prev, c)
	agg := g.Nodes[len(g.Nodes)-1]
	agg.GradAgg = true
	agg.InPlace = opt.InPlaceAgg
	for _, bn := range g.Nodes[before:] {
		bn.FwdOf = owner
		bn.UnrollTag = owner.UnrollTag
		bn.Timestep = owner.Timestep
	}
	c.GradOf = nil
	g.bindGrad(t, sum)
	return nil
}

func (g *Graph) bindGrad(t, dy *Tensor) {
	dy.Kind = Gradient
	dy.GradOf = t
	dy.Name = "d:" + t.Name
	t.Grad = dy
}

// ApplyOptimizer appends per-weight update operators (and optimizer-history
// tensors for stateful optimizers), completing the training iteration the
// paper benchmarks: forward + backward + weight update (Sec 7.1).
func (g *Graph) ApplyOptimizer(kind string) error {
	for _, w := range g.Weights() {
		if w.Grad == nil {
			continue
		}
		switch kind {
		case "sgd":
			if _, err := g.TryApply("sgd_update", nil, w, w.Grad); err != nil {
				return err
			}
		case "adam":
			hist := g.OptState(w)
			if _, err := g.TryApply("adam_update", nil, w, w.Grad, hist); err != nil {
				return err
			}
		default:
			return fmt.Errorf("graph: unknown optimizer %q", kind)
		}
	}
	return nil
}
