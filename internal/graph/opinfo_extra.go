package graph

import (
	"fmt"

	"tofu/internal/shape"
	"tofu/internal/tdl"
)

// Graph-layer metadata (shape inference, cost model, gradients) for the
// extended operator library: the attention/Transformer family, batched
// linear algebra, layer norm, broadcasts, additional reductions, and the
// long tail of element-wise operators. Everything here is buildable into
// training graphs, not just analyzable.

func init() {
	registerExtraEWInfo()
	registerAttentionInfo()
	registerBatchedInfo()
	registerExtraReduceInfo()
	registerBroadcastInfo()
	registerExtraConvInfo()
	registerExtraMiscInfo()
}

func registerExtraEWInfo() {
	unary := []string{
		"abs", "sign", "floor", "ceil", "round", "reciprocal", "rsqrt",
		"cbrt", "exp2", "log2", "log10", "log1p", "expm1", "sin", "cos",
		"tan", "arcsin", "arccos", "arctan", "sinh", "cosh", "degrees",
		"radians", "selu", "softsign", "hard_sigmoid", "mish", "erf",
		"cast", "logical_not", "gamma_fn", "gammaln", "zeros_like",
		"ones_like",
	}
	for _, name := range unary {
		RegisterInfo(name, OpInfo{InferShape: sameAsInput0, FLOPs: ewFLOPs(1), NeedsRank: true})
	}
	// Activations with dedicated fused gradient kernels: dx = f'(x)·dy.
	for _, a := range []struct{ fwd, bwd string }{
		{"leaky_relu", "leaky_relu_grad"},
		{"elu", "elu_grad"},
		{"gelu", "gelu_grad"},
		{"softplus", "softplus_grad"},
		{"swish", "swish_grad"},
		{"clip", "clip_grad"},
	} {
		bwd := a.bwd
		RegisterInfo(a.fwd, OpInfo{
			InferShape: sameAsInput0, FLOPs: ewFLOPs(1), NeedsRank: true,
			Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
				return []*Tensor{g.Apply(bwd, nil, n.Inputs[0], dy)}, nil
			},
		})
	}
	binary := []string{
		"mod", "power", "hypot", "arctan2", "logical_and", "logical_or",
		"logical_xor", "equal", "not_equal", "greater", "greater_equal",
		"lesser", "lesser_equal", "smooth_l1", "dropout",
		"leaky_relu_grad", "elu_grad", "gelu_grad", "softplus_grad",
		"swish_grad", "clip_grad", "dropout_grad",
	}
	for _, name := range binary {
		RegisterInfo(name, OpInfo{InferShape: allSame, FLOPs: ewFLOPs(1), NeedsRank: true})
	}
	for _, name := range []string{"where", "sgd_mom_update", "smooth_l1_grad"} {
		RegisterInfo(name, OpInfo{InferShape: allSame, FLOPs: ewFLOPs(1), NeedsRank: true})
	}
}

func registerAttentionInfo() {
	RegisterInfo("linear3d", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 3, 2); err != nil {
				return nil, err
			}
			if in[0].Dim(2) != in[1].Dim(0) {
				return nil, fmt.Errorf("linear3d dims %v x %v", in[0], in[1])
			}
			return shape.Of(in[0].Dim(0), in[0].Dim(1), in[1].Dim(1)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return 2 * float64(out.Elems()) * float64(in[0].Dim(2))
		},
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			dx := g.Apply("linear3d_bwd_data", nil, dy, n.Inputs[1])
			dw := g.Apply("linear3d_bwd_weight", nil, n.Inputs[0], dy)
			return []*Tensor{dx, dw}, nil
		},
	})
	RegisterInfo("linear3d_bwd_data", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 3, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0), in[0].Dim(1), in[1].Dim(0)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return 2 * float64(out.Elems()) * float64(in[0].Dim(2))
		},
	})
	RegisterInfo("linear3d_bwd_weight", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 3, 3); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(2), in[1].Dim(2)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return 2 * float64(out.Elems()) * float64(in[0].Dim(0)) * float64(in[0].Dim(1))
		},
	})

	bmmShape := func(trans string) func(tdl.Attrs, []shape.Shape) (shape.Shape, error) {
		return func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 3, 3); err != nil {
				return nil, err
			}
			if in[0].Dim(0) != in[1].Dim(0) {
				return nil, fmt.Errorf("bmm batch dims %v x %v", in[0], in[1])
			}
			a, b := in[0], in[1]
			switch trans {
			case "nn":
				if a.Dim(2) != b.Dim(1) {
					return nil, fmt.Errorf("bmm inner dims %v x %v", a, b)
				}
				return shape.Of(a.Dim(0), a.Dim(1), b.Dim(2)), nil
			case "nt":
				if a.Dim(2) != b.Dim(2) {
					return nil, fmt.Errorf("bmm_nt inner dims %v x %v", a, b)
				}
				return shape.Of(a.Dim(0), a.Dim(1), b.Dim(1)), nil
			default: // tn
				if a.Dim(1) != b.Dim(1) {
					return nil, fmt.Errorf("bmm_tn inner dims %v x %v", a, b)
				}
				return shape.Of(a.Dim(0), a.Dim(2), b.Dim(2)), nil
			}
		}
	}
	bmmFLOPs := func(inner func(in []shape.Shape) int64) func(tdl.Attrs, []shape.Shape, shape.Shape) float64 {
		return func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return 2 * float64(out.Elems()) * float64(inner(in))
		}
	}
	RegisterInfo("bmm", OpInfo{
		InferShape: bmmShape("nn"),
		FLOPs:      bmmFLOPs(func(in []shape.Shape) int64 { return in[0].Dim(2) }),
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			da := g.Apply("bmm_nt", nil, dy, n.Inputs[1])
			db := g.Apply("bmm_tn", nil, n.Inputs[0], dy)
			return []*Tensor{da, db}, nil
		},
	})
	RegisterInfo("bmm_nt", OpInfo{
		InferShape: bmmShape("nt"),
		FLOPs:      bmmFLOPs(func(in []shape.Shape) int64 { return in[0].Dim(2) }),
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			da := g.Apply("bmm", nil, dy, n.Inputs[1])
			db := g.Apply("bmm_tn", nil, dy, n.Inputs[0])
			return []*Tensor{da, db}, nil
		},
	})
	RegisterInfo("bmm_tn", OpInfo{
		InferShape: bmmShape("tn"),
		FLOPs:      bmmFLOPs(func(in []shape.Shape) int64 { return in[0].Dim(1) }),
	})

	RegisterInfo("softmax_axis2", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 3); err != nil {
				return nil, err
			}
			return in[0].Clone(), nil
		},
		FLOPs: ewFLOPs(5),
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			return []*Tensor{g.Apply("softmax_axis2_grad", nil, n.Output, dy)}, nil
		},
	})
	RegisterInfo("softmax_axis2_grad", OpInfo{InferShape: allSame, FLOPs: ewFLOPs(4)})

	tokenStats := func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
		if in[0].Rank() != 3 {
			return nil, fmt.Errorf("ln3 wants rank-3 input, got %v", in[0])
		}
		return shape.Of(in[0].Dim(0), in[0].Dim(1)), nil
	}
	featOf := func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
		return shape.Of(in[0].Dim(2)), nil
	}
	reduceFLOPs := func(_ tdl.Attrs, in []shape.Shape, _ shape.Shape) float64 {
		return float64(in[0].Elems())
	}
	RegisterInfo("ln3_mean", OpInfo{InferShape: tokenStats, FLOPs: reduceFLOPs})
	RegisterInfo("ln3_var", OpInfo{InferShape: tokenStats, FLOPs: reduceFLOPs})
	RegisterInfo("ln3_norm", OpInfo{
		InferShape: sameAsInput0,
		FLOPs:      ewFLOPs(4),
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			x, mean, vr, gamma := n.Inputs[0], n.Inputs[1], n.Inputs[2], n.Inputs[3]
			dx := g.Apply("ln3_data_grad", nil, dy, x, mean, vr, gamma)
			dGamma := g.Apply("ln3_gamma_grad", nil, dy, x)
			dBeta := g.Apply("ln3_beta_grad", nil, dy)
			return []*Tensor{dx, nil, nil, dGamma, dBeta}, nil
		},
	})
	RegisterInfo("ln3_data_grad", OpInfo{InferShape: sameAsInput0, FLOPs: ewFLOPs(5)})
	RegisterInfo("ln3_gamma_grad", OpInfo{InferShape: featOf, FLOPs: reduceFLOPs})
	RegisterInfo("ln3_beta_grad", OpInfo{InferShape: featOf, FLOPs: reduceFLOPs})

	RegisterInfo("last_token", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 3); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0), in[0].Dim(2)), nil
		},
		FLOPs: ewFLOPs(1),
		Grad: func(g *Graph, n *Node, dy *Tensor) ([]*Tensor, error) {
			return []*Tensor{g.Apply("last_token_grad", tdl.Attrs{
				"seq": n.Inputs[0].Shape.Dim(1),
			}, dy)}, nil
		},
	})
	RegisterInfo("last_token_grad", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0), attrs.Get("seq", 1), in[0].Dim(1)), nil
		},
		FLOPs: ewFLOPs(1),
	})
}

func registerBatchedInfo() {
	RegisterInfo("bouter", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0), in[0].Dim(1), in[1].Dim(1)), nil
		},
		FLOPs: ewFLOPs(1),
	})
	RegisterInfo("btranspose", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 3); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0), in[0].Dim(2), in[0].Dim(1)), nil
		},
		FLOPs: ewFLOPs(1),
	})
	sq3 := func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
		if in[0].Rank() != 3 || in[0].Dim(1) != in[0].Dim(2) {
			return nil, fmt.Errorf("batched matrix op wants square slices, got %v", in[0])
		}
		return in[0].Clone(), nil
	}
	cube := func(_ tdl.Attrs, in []shape.Shape, _ shape.Shape) float64 {
		n := float64(in[0].Dim(1))
		return float64(in[0].Dim(0)) * n * n * n / 3
	}
	RegisterInfo("batch_trsm", OpInfo{
		InferShape: func(a tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 3, 3); err != nil {
				return nil, err
			}
			return in[1].Clone(), nil
		},
		FLOPs: cube,
	})
	RegisterInfo("batch_lu", OpInfo{InferShape: sq3, FLOPs: cube})
}

func registerExtraReduceInfo() {
	rowOf := func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
		if err := wantRank(in, 2); err != nil {
			return nil, err
		}
		return shape.Of(in[0].Dim(0)), nil
	}
	colOf := func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
		if err := wantRank(in, 2); err != nil {
			return nil, err
		}
		return shape.Of(in[0].Dim(1)), nil
	}
	sumIn := func(_ tdl.Attrs, in []shape.Shape, _ shape.Shape) float64 {
		return float64(in[0].Elems())
	}
	for _, name := range []string{"reduce_sum_axis1", "reduce_max_axis1", "reduce_min_axis1", "reduce_prod_axis1", "sqnorm_axis1"} {
		RegisterInfo(name, OpInfo{InferShape: rowOf, FLOPs: sumIn})
	}
	for _, name := range []string{"reduce_max_axis0", "reduce_min_axis0", "reduce_prod_axis0"} {
		RegisterInfo(name, OpInfo{InferShape: colOf, FLOPs: sumIn})
	}
	RegisterInfo("absmax_per_channel", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(1)), nil
		},
		FLOPs: sumIn,
	})
}

func registerBroadcastInfo() {
	rowVec := func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
		if err := wantRank(in, 2, 1); err != nil {
			return nil, err
		}
		if in[0].Dim(1) != in[1].Dim(0) {
			return nil, fmt.Errorf("row broadcast dims %v x %v", in[0], in[1])
		}
		return in[0].Clone(), nil
	}
	colVec := func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
		if err := wantRank(in, 2, 1); err != nil {
			return nil, err
		}
		if in[0].Dim(0) != in[1].Dim(0) {
			return nil, fmt.Errorf("col broadcast dims %v x %v", in[0], in[1])
		}
		return in[0].Clone(), nil
	}
	RegisterInfo("broadcast_mul_row", OpInfo{InferShape: rowVec, FLOPs: ewFLOPs(1)})
	RegisterInfo("broadcast_mul_col", OpInfo{InferShape: colVec, FLOPs: ewFLOPs(1)})
	RegisterInfo("broadcast_add_col", OpInfo{InferShape: colVec, FLOPs: ewFLOPs(1)})
	RegisterInfo("broadcast_div_col", OpInfo{InferShape: colVec, FLOPs: ewFLOPs(1)})
	RegisterInfo("scale_shift_nchw", OpInfo{InferShape: sameAsInput0, FLOPs: ewFLOPs(2)})

	RegisterInfo("ln_mean", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, _ shape.Shape) float64 { return float64(in[0].Elems()) },
	})
	RegisterInfo("ln_var", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			return shape.Of(in[0].Dim(0)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, _ shape.Shape) float64 { return float64(in[0].Elems()) },
	})
	RegisterInfo("ln_norm", OpInfo{InferShape: sameAsInput0, FLOPs: ewFLOPs(4)})
	RegisterInfo("l2_normalize", OpInfo{InferShape: sameAsInput0, FLOPs: ewFLOPs(3)})
	RegisterInfo("log_softmax", OpInfo{InferShape: sameAsInput0, FLOPs: ewFLOPs(5)})
}

func registerExtraConvInfo() {
	RegisterInfo("depthwise_conv2d", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4, 3); err != nil {
				return nil, err
			}
			s := attrs.Get("stride", 1)
			d := in[0]
			if d.Dim(1) != in[1].Dim(0) {
				return nil, fmt.Errorf("depthwise channels %v x %v", d, in[1])
			}
			if d.Dim(2)%s != 0 || d.Dim(3)%s != 0 {
				return nil, fmt.Errorf("depthwise stride %d does not divide %v", s, d)
			}
			return shape.Of(d.Dim(0), d.Dim(1), d.Dim(2)/s, d.Dim(3)/s), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return 2 * float64(out.Elems()) * float64(in[1].Dim(1)) * float64(in[1].Dim(2))
		},
	})
	RegisterInfo("avgpool2d", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4); err != nil {
				return nil, err
			}
			s := attrs.Get("stride", 2)
			d := in[0]
			if d.Dim(2)%s != 0 || d.Dim(3)%s != 0 {
				return nil, fmt.Errorf("avgpool stride %d does not divide %v", s, d)
			}
			return shape.Of(d.Dim(0), d.Dim(1), d.Dim(2)/s, d.Dim(3)/s), nil
		},
		FLOPs: func(attrs tdl.Attrs, _ []shape.Shape, out shape.Shape) float64 {
			k := attrs.Get("kernel", 2)
			return float64(out.Elems()) * float64(k*k)
		},
	})
	RegisterInfo("dilated_conv2d", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 4, 4); err != nil {
				return nil, err
			}
			d, w := in[0], in[1]
			if d.Dim(1) != w.Dim(1) {
				return nil, fmt.Errorf("dilated conv channels %v x %v", d, w)
			}
			return shape.Of(d.Dim(0), w.Dim(0), d.Dim(2), d.Dim(3)), nil
		},
		FLOPs: func(_ tdl.Attrs, in []shape.Shape, out shape.Shape) float64 {
			return convFLOPs(out, in[1].Dim(1), in[1].Dim(2), in[1].Dim(3))
		},
	})
}

func registerExtraMiscInfo() {
	RegisterInfo("slice_axis0", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			off := attrs.Get("offset", 0)
			size := attrs.Get("size", in[0].Dim(0)-off)
			if off < 0 || size <= 0 || off+size > in[0].Dim(0) {
				return nil, fmt.Errorf("slice_axis0 [%d:%d] of %v", off, off+size, in[0])
			}
			return shape.Of(size, in[0].Dim(1)), nil
		},
		FLOPs: ewFLOPs(1),
	})
	RegisterInfo("reverse_axis1", OpInfo{InferShape: sameAsInput0, FLOPs: ewFLOPs(1)})
	RegisterInfo("stride_rows", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			s := attrs.Get("stride", 2)
			if in[0].Dim(0)%s != 0 {
				return nil, fmt.Errorf("stride_rows %d does not divide %v", s, in[0])
			}
			return shape.Of(in[0].Dim(0)/s, in[0].Dim(1)), nil
		},
		FLOPs: ewFLOPs(1),
	})
	RegisterInfo("repeat_row", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 1); err != nil {
				return nil, err
			}
			return shape.Of(attrs.Get("rows", 1), in[0].Dim(0)), nil
		},
		FLOPs: ewFLOPs(1),
	})
	RegisterInfo("gather_rows", OpInfo{
		InferShape: func(_ tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[1].Dim(0), in[0].Dim(1)), nil
		},
		FLOPs: ewFLOPs(1),
	})
	RegisterInfo("one_hot", OpInfo{
		InferShape: func(attrs tdl.Attrs, in []shape.Shape) (shape.Shape, error) {
			if err := wantRank(in, 2); err != nil {
				return nil, err
			}
			return shape.Of(in[0].Dim(0), attrs.Get("classes", 2)), nil
		},
		FLOPs: ewFLOPs(1),
	})
}
