package graph

import (
	"testing"

	"tofu/internal/shape"
	"tofu/internal/tdl"
)

func buildMLPLayer(t *testing.T) (*Graph, *Tensor, *Tensor, *Tensor) {
	t.Helper()
	g := New()
	x := g.Input("x", shape.Of(32, 64))
	w := g.Weight("w", shape.Of(64, 128))
	b := g.Weight("b", shape.Of(128))
	h := g.Apply("matmul", nil, x, w)
	h = g.Apply("bias_add", nil, h, b)
	h = g.Apply("relu", nil, h)
	return g, x, w, h
}

func TestApplyShapeInference(t *testing.T) {
	g, _, _, h := buildMLPLayer(t)
	if !h.Shape.Equal(shape.Of(32, 128)) {
		t.Fatalf("relu output shape %v", h.Shape)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
}

func TestApplyErrors(t *testing.T) {
	g := New()
	x := g.Input("x", shape.Of(4, 8))
	y := g.Input("y", shape.Of(8, 3))
	if _, err := g.TryApply("matmul", nil, y, x); err == nil {
		t.Error("expected inner-dim mismatch error")
	}
	if _, err := g.TryApply("nonsense_op", nil, x); err == nil {
		t.Error("expected unknown-op error")
	}
	if _, err := g.TryApply("matmul", nil, x, nil); err == nil {
		t.Error("expected nil-input error")
	}
	if _, err := g.TryApply("add", nil, x, y); err == nil {
		t.Error("expected elementwise shape mismatch error")
	}
}

func TestRankAttrInjection(t *testing.T) {
	g := New()
	x := g.Input("x", shape.Of(2, 3, 4, 5))
	g.Apply("relu", nil, x)
	n := g.Nodes[0]
	if n.Attrs.Get("rank", 0) != 4 {
		t.Fatalf("relu rank attr = %d, want 4", n.Attrs.Get("rank", 0))
	}
	// The injected rank must make the TDL description resolvable.
	d, err := g.Describe(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OutAxes) != 4 {
		t.Fatalf("described rank %d", len(d.OutAxes))
	}
}

func TestBackwardSimpleChain(t *testing.T) {
	g, x, w, h := buildMLPLayer(t)
	seed := g.NewTensor("dh", Activation, h.Shape, shape.Float32)
	if err := g.Backward(map[*Tensor]*Tensor{h: seed}, AutodiffOptions{InPlaceAgg: true}); err != nil {
		t.Fatal(err)
	}
	if w.Grad == nil {
		t.Fatal("weight has no gradient")
	}
	if !w.Grad.Shape.Equal(w.Shape) {
		t.Fatalf("dW shape %v != %v", w.Grad.Shape, w.Shape)
	}
	if x.Grad == nil || !x.Grad.Shape.Equal(x.Shape) {
		t.Fatal("input gradient missing or mis-shaped")
	}
	if w.Grad.Kind != Gradient || w.Grad.GradOf != w {
		t.Fatal("gradient bookkeeping broken")
	}
	// Every backward node must link to its forward node.
	for _, n := range g.Nodes {
		if n.Output.Kind == Gradient && n.FwdOf == nil && !n.GradAgg {
			t.Errorf("backward node %v missing FwdOf", n)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardAggregation(t *testing.T) {
	// A weight consumed by two matmuls must receive an aggregation add.
	g := New()
	x1 := g.Input("x1", shape.Of(4, 8))
	x2 := g.Input("x2", shape.Of(4, 8))
	w := g.Weight("w", shape.Of(8, 8))
	h1 := g.Apply("matmul", nil, x1, w)
	h2 := g.Apply("matmul", nil, x2, w)
	s := g.Apply("add", nil, h1, h2)

	seed := g.NewTensor("ds", Activation, s.Shape, shape.Float32)
	if err := g.Backward(map[*Tensor]*Tensor{s: seed}, AutodiffOptions{InPlaceAgg: true}); err != nil {
		t.Fatal(err)
	}
	if w.Grad == nil {
		t.Fatal("no aggregated gradient")
	}
	var aggs int
	for _, n := range g.Nodes {
		if n.GradAgg {
			aggs++
			if !n.InPlace {
				t.Error("aggregation should be in-place under InPlaceAgg")
			}
		}
	}
	if aggs != 1 {
		t.Fatalf("aggregation adds = %d, want 1", aggs)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardIdentityWrapKeepsPairingUnique(t *testing.T) {
	// add passes dy through to both inputs; the pairing tensor<->gradient
	// must stay one-to-one via identity wrapping.
	g := New()
	a := g.Input("a", shape.Of(4, 4))
	b := g.Input("b", shape.Of(4, 4))
	s := g.Apply("add", nil, a, b)
	seed := g.NewTensor("ds", Activation, s.Shape, shape.Float32)
	if err := g.Backward(map[*Tensor]*Tensor{s: seed}, AutodiffOptions{}); err != nil {
		t.Fatal(err)
	}
	if a.Grad == nil || b.Grad == nil {
		t.Fatal("missing gradients")
	}
	if a.Grad == b.Grad {
		t.Fatal("gradients must be distinct tensors")
	}
	if a.Grad.GradOf != a || b.Grad.GradOf != b {
		t.Fatal("GradOf links wrong")
	}
}

func TestBackwardSeedValidation(t *testing.T) {
	g := New()
	x := g.Input("x", shape.Of(4, 4))
	y := g.Apply("relu", nil, x)
	bad := g.NewTensor("bad", Activation, shape.Of(2, 2), shape.Float32)
	if err := g.Backward(map[*Tensor]*Tensor{y: bad}, AutodiffOptions{}); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	if err := g.Backward(nil, AutodiffOptions{}); err == nil {
		t.Fatal("expected empty-seed error")
	}
}

func TestApplyOptimizer(t *testing.T) {
	g, _, w, h := buildMLPLayer(t)
	seed := g.NewTensor("dh", Activation, h.Shape, shape.Float32)
	if err := g.Backward(map[*Tensor]*Tensor{h: seed}, AutodiffOptions{InPlaceAgg: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyOptimizer("adam"); err != nil {
		t.Fatal(err)
	}
	var updates, hists int
	for _, n := range g.Nodes {
		if n.Op == "adam_update" {
			updates++
		}
	}
	for _, tt := range g.Tensors {
		if tt.Kind == OptState {
			hists++
		}
	}
	// Two weights with gradients: w and b.
	if updates != 2 || hists != 2 {
		t.Fatalf("updates=%d hists=%d, want 2 each", updates, hists)
	}
	_ = w
	if err := g.ApplyOptimizer("nope"); err == nil {
		t.Fatal("expected unknown-optimizer error")
	}
}

func TestComputeStats(t *testing.T) {
	g, _, _, _ := buildMLPLayer(t)
	st := g.ComputeStats()
	wantW := int64(64*128+128) * 4
	if st.WeightBytes != wantW {
		t.Fatalf("WeightBytes = %d, want %d", st.WeightBytes, wantW)
	}
	if st.WeightBytes3x != 3*wantW {
		t.Fatalf("WeightBytes3x = %d", st.WeightBytes3x)
	}
	if st.NumNodes != 3 {
		t.Fatalf("NumNodes = %d", st.NumNodes)
	}
}

func TestTopoDetectsCorruption(t *testing.T) {
	g := New()
	x := g.Input("x", shape.Of(4, 4))
	y := g.Apply("relu", nil, x)
	z := g.Apply("relu", nil, y)
	_ = z
	// Corrupt: move the last node first.
	g.Nodes[0], g.Nodes[1] = g.Nodes[1], g.Nodes[0]
	if _, err := g.Topo(); err == nil {
		t.Fatal("expected topological-order violation")
	}
}

func TestNodeFLOPs(t *testing.T) {
	g := New()
	a := g.Input("a", shape.Of(16, 32))
	b := g.Input("b", shape.Of(32, 64))
	c := g.Apply("matmul", nil, a, b)
	n := c.Producer
	if got, want := NodeFLOPs(n), float64(2*16*64*32); got != want {
		t.Fatalf("matmul FLOPs = %g, want %g", got, want)
	}
	r := g.Apply("relu", nil, c)
	if got := NodeFLOPs(r.Producer); got != float64(16*64) {
		t.Fatalf("relu FLOPs = %g", got)
	}
	if got := MemBytes(r.Producer); got != int64(16*64*4*2) {
		t.Fatalf("relu MemBytes = %d", got)
	}
}

func TestWeightsAndInputs(t *testing.T) {
	g, x, w, _ := buildMLPLayer(t)
	ws := g.Weights()
	if len(ws) != 2 || ws[0] != w {
		t.Fatalf("Weights = %v", ws)
	}
	ins := g.Inputs()
	if len(ins) != 1 || ins[0] != x {
		t.Fatalf("Inputs = %v", ins)
	}
}

func TestConvChainShapes(t *testing.T) {
	g := New()
	img := g.Input("img", shape.Of(8, 3, 224, 224))
	w1 := g.Weight("w1", shape.Of(64, 3, 7, 7))
	h := g.Apply("conv2d", tdl.Attrs{"stride": 2}, img, w1)
	if !h.Shape.Equal(shape.Of(8, 64, 112, 112)) {
		t.Fatalf("conv stride-2 shape %v", h.Shape)
	}
	h = g.Apply("maxpool2d", tdl.Attrs{"stride": 2, "kernel": 2}, h)
	if !h.Shape.Equal(shape.Of(8, 64, 56, 56)) {
		t.Fatalf("pool shape %v", h.Shape)
	}
	p := g.Apply("global_avgpool", nil, h)
	if !p.Shape.Equal(shape.Of(8, 64)) {
		t.Fatalf("gap shape %v", p.Shape)
	}

	// Backward shapes mirror forward.
	seed := g.NewTensor("dp", Activation, p.Shape, shape.Float32)
	if err := g.Backward(map[*Tensor]*Tensor{p: seed}, AutodiffOptions{InPlaceAgg: true}); err != nil {
		t.Fatal(err)
	}
	if !img.Grad.Shape.Equal(img.Shape) {
		t.Fatalf("dImg shape %v", img.Grad.Shape)
	}
	if !w1.Grad.Shape.Equal(w1.Shape) {
		t.Fatalf("dW shape %v", w1.Grad.Shape)
	}
}

func TestEveryOpHasDescribableTDL(t *testing.T) {
	// Every op with registered graph info must resolve a TDL description
	// with representative attrs (rank defaults applied by Apply).
	g := New()
	x := g.Input("x", shape.Of(8, 16))
	y := g.Apply("relu", nil, x)
	z := g.Apply("add", nil, x, y)
	w := g.Weight("w", shape.Of(16, 16))
	mm := g.Apply("matmul", nil, z, w)
	_ = mm
	for _, n := range g.Nodes {
		if _, err := g.Describe(n); err != nil {
			t.Errorf("describe %v: %v", n, err)
		}
	}
}
