// Package graph implements the fine-grained tensor dataflow graph that Tofu
// partitions — the role MXNet/NNVM plays for the original prototype. A graph
// holds operator nodes and tensor edges with statically inferred shapes;
// reverse-mode autodiff generates the backward nodes the same way MXNet's
// gradient pass does, which is what gives the coarsening pass its
// forward/backward structure to exploit (Sec 5.1).
//
//tofu:searchpath reachable from dp.Solve / recursive.Partition; nodeterm enforces determinism
package graph

import (
	"fmt"

	"tofu/internal/shape"
	"tofu/internal/tdl"
)

// TensorKind classifies tensors for coarsening, memory planning and the
// baselines (e.g. the swapping engine treats weights as read-only).
type TensorKind int

const (
	// Activation tensors are produced by forward operators.
	Activation TensorKind = iota
	// Input tensors are externally fed (data batches, labels, initial RNN
	// state).
	Input
	// Weight tensors are trainable parameters.
	Weight
	// Gradient tensors are produced by backward operators.
	Gradient
	// OptState tensors are optimizer history (Adam/Adagrad moments); the
	// paper's 3·W memory accounting counts weight + gradient + history.
	OptState
)

func (k TensorKind) String() string {
	switch k {
	case Activation:
		return "activation"
	case Input:
		return "input"
	case Weight:
		return "weight"
	case Gradient:
		return "gradient"
	case OptState:
		return "optstate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Tensor is one edge of the dataflow graph.
type Tensor struct {
	ID        int
	Name      string
	Shape     shape.Shape
	DType     shape.DType
	Kind      TensorKind
	Producer  *Node   // nil for Input/Weight/OptState
	Consumers []*Node // every node reading this tensor

	// GradOf links a Gradient tensor back to the forward tensor it
	// differentiates; the coarsening pass groups the pair (Sec 5.1).
	GradOf *Tensor
	// Grad links a forward tensor to its gradient once autodiff has run.
	Grad *Tensor
}

// Bytes returns the tensor's storage size.
func (t *Tensor) Bytes() int64 { return t.Shape.Bytes(t.DType) }

func (t *Tensor) String() string {
	return fmt.Sprintf("%s%v#%d", t.Name, t.Shape, t.ID)
}

// Node is one operator instance.
type Node struct {
	ID     int
	Op     string // TDL registry name
	Attrs  tdl.Attrs
	Inputs []*Tensor
	Output *Tensor

	// FwdOf links a backward node to the forward node it differentiates.
	FwdOf *Node
	// GradAgg marks gradient-accumulation adds introduced by autodiff when a
	// tensor has multiple gradient contributions. InPlace reports whether the
	// runtime aggregates in place (MXNet does; TensorFlow's lack of it is
	// why Table 3 shows ~2x: Sec 7.2 "Comparing with TensorFlow").
	GradAgg bool
	InPlace bool
	// UnrollTag identifies repeated RNN cell structure: nodes sharing a tag
	// across timesteps are coalesced by the search (Sec 5.1, "Merging
	// unrolled timesteps"). Empty for non-recurrent nodes.
	UnrollTag string
	// Timestep is the unroll position for UnrollTag'd nodes.
	Timestep int
	// CtrlDeps are extra control dependencies (Fig 7) added by graph
	// generation so the memory planner can reuse buffers.
	CtrlDeps []*Node
}

func (n *Node) String() string {
	return fmt.Sprintf("%s#%d", n.Op, n.ID)
}

// Graph is a dataflow graph under construction or transformation.
type Graph struct {
	Nodes   []*Node
	Tensors []*Tensor

	nextTensorID int
	nextNodeID   int
	registry     *tdl.Registry
}

// New creates an empty graph bound to the standard operator registry.
func New() *Graph { return NewWithRegistry(tdl.Std) }

// NewWithRegistry creates an empty graph bound to a custom registry.
func NewWithRegistry(r *tdl.Registry) *Graph {
	return &Graph{registry: r}
}

// Registry returns the operator registry this graph resolves ops against.
func (g *Graph) Registry() *tdl.Registry { return g.registry }

// NewTensor adds a tensor with no producer.
func (g *Graph) NewTensor(name string, kind TensorKind, s shape.Shape, d shape.DType) *Tensor {
	t := &Tensor{ID: g.nextTensorID, Name: name, Shape: s.Clone(), DType: d, Kind: kind}
	g.nextTensorID++
	g.Tensors = append(g.Tensors, t)
	return t
}

// Input adds an externally-fed tensor.
func (g *Graph) Input(name string, s shape.Shape) *Tensor {
	return g.NewTensor(name, Input, s, shape.Float32)
}

// Weight adds a trainable parameter tensor.
func (g *Graph) Weight(name string, s shape.Shape) *Tensor {
	return g.NewTensor(name, Weight, s, shape.Float32)
}

// OptState adds an optimizer-history tensor for the given weight.
func (g *Graph) OptState(w *Tensor) *Tensor {
	return g.NewTensor(w.Name+".hist", OptState, w.Shape, w.DType)
}

// Apply adds an operator node, inferring the output shape from the op's
// registered shape function. It panics on malformed graphs — model builders
// are static code, so a panic is a programming error, matching how MXNet's
// symbol API fails fast at graph construction time.
func (g *Graph) Apply(op string, attrs tdl.Attrs, inputs ...*Tensor) *Tensor {
	t, err := g.TryApply(op, attrs, inputs...)
	if err != nil {
		panic(err)
	}
	return t
}

// TryApply is Apply returning an error instead of panicking.
func (g *Graph) TryApply(op string, attrs tdl.Attrs, inputs ...*Tensor) (*Tensor, error) {
	info, err := Info(op)
	if err != nil {
		return nil, err
	}
	shapes := make([]shape.Shape, len(inputs))
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("graph: %s input %d is nil", op, i)
		}
		shapes[i] = in.Shape
	}
	out, err := info.InferShape(attrs, shapes)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", op, err)
	}
	if info.NeedsRank {
		// The element-wise TDL descriptions are parameterized by rank; stamp
		// it on the node so partition analysis sees matching shapes.
		merged := tdl.Attrs{"rank": int64(shapes[0].Rank())}
		for k, v := range attrs {
			merged[k] = v
		}
		attrs = merged
	}
	kind := Activation
	n := &Node{ID: g.nextNodeID, Op: op, Attrs: attrs, Inputs: inputs}
	g.nextNodeID++
	n.Output = g.NewTensor(fmt.Sprintf("%s_%d", op, n.ID), kind, out, shape.Float32)
	n.Output.Producer = n
	for _, in := range inputs {
		in.Consumers = append(in.Consumers, n)
	}
	g.Nodes = append(g.Nodes, n)
	return n.Output, nil
}

// Describe resolves the TDL description for a node.
func (g *Graph) Describe(n *Node) (*tdl.OpDesc, error) {
	return g.registry.Describe(n.Op, n.Attrs)
}

// Topo returns the nodes in a topological order (inputs first). The graph is
// built append-only with producers before consumers, and transformations
// preserve that invariant, so construction order is already topological; we
// verify rather than re-sort, failing loudly on corruption.
func (g *Graph) Topo() ([]*Node, error) {
	ready := make([]bool, len(g.Tensors))
	for _, t := range g.Tensors {
		if t.Producer == nil {
			ready[t.ID] = true
		}
	}
	done := make([]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if !ready[in.ID] {
				return nil, fmt.Errorf("graph: node %v consumes %v before production", n, in)
			}
		}
		for _, d := range n.CtrlDeps {
			if !done[d.ID] {
				return nil, fmt.Errorf("graph: node %v control-depends on later node %v", n, d)
			}
		}
		ready[n.Output.ID] = true
		done[n.ID] = true
	}
	return append([]*Node(nil), g.Nodes...), nil
}

// Validate checks structural invariants: shape validity, consumer/producer
// symmetry and topological construction order.
func (g *Graph) Validate() error {
	if _, err := g.Topo(); err != nil {
		return err
	}
	for _, t := range g.Tensors {
		if !t.Shape.Valid() {
			return fmt.Errorf("graph: tensor %v has invalid shape", t)
		}
		for _, c := range t.Consumers {
			found := false
			for _, in := range c.Inputs {
				if in == t {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("graph: consumer list of %v includes non-consumer %v", t, c)
			}
		}
	}
	for _, n := range g.Nodes {
		if n.Output == nil || n.Output.Producer != n {
			return fmt.Errorf("graph: node %v has broken output link", n)
		}
	}
	return nil
}

// Stats summarizes a graph the way the paper reports model properties.
type Stats struct {
	NumNodes      int
	NumTensors    int
	WeightBytes   int64 // parameters only
	WeightBytes3x int64 // weight + gradient + optimizer history (Table 2)
	ActivationCnt int
}

// ComputeStats scans the graph.
func (g *Graph) ComputeStats() Stats {
	st := Stats{NumNodes: len(g.Nodes), NumTensors: len(g.Tensors)}
	for _, t := range g.Tensors {
		switch t.Kind {
		case Weight:
			st.WeightBytes += t.Bytes()
		case Activation:
			st.ActivationCnt++
		}
	}
	st.WeightBytes3x = 3 * st.WeightBytes
	return st
}

// Weights returns all weight tensors in creation order.
func (g *Graph) Weights() []*Tensor {
	var out []*Tensor
	for _, t := range g.Tensors {
		if t.Kind == Weight {
			out = append(out, t)
		}
	}
	return out
}

// Inputs returns all externally fed tensors in creation order.
func (g *Graph) Inputs() []*Tensor {
	var out []*Tensor
	for _, t := range g.Tensors {
		if t.Kind == Input {
			out = append(out, t)
		}
	}
	return out
}
