// Package analysistest runs an analyzer over source fixtures and checks its
// diagnostics against `// want "regexp"` comments embedded in the fixture
// files, in the style of golang.org/x/tools/go/analysis/analysistest but
// rebuilt on this tree's stdlib-only loader (see internal/analysis).
//
// Fixture layout mirrors x/tools: <testdata>/src/<pkg>/*.go is loaded as one
// package whose imports resolve through `go list -export` (stdlib only). A
// want comment expects a diagnostic on its own line; several quoted regexps
// on one comment expect several diagnostics there:
//
//	out = append(out, k) // want `append of map iteration values`
//
// Both backquoted and double-quoted regexps are accepted. Every diagnostic
// must be claimed by a want and every want must be claimed by a diagnostic.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tofu/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return abs
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	claimed bool
}

// Run loads each fixture package from <testdata>/src/<pkg>, runs the single
// analyzer over it, and reports any mismatch between emitted diagnostics and
// the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, p := range pkgs {
		runPackage(t, testdata, a, p)
	}
}

func runPackage(t *testing.T, testdata string, a *analysis.Analyzer, pkgName string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkgName)
	pkg, err := analysis.LoadDir(".", dir, pkgName)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s:%d:%d: unexpected diagnostic: %s [%s]",
				filepath.Base(d.File), d.Line, d.Col, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.claimed {
			t.Errorf("%s:%d: no diagnostic matching %s", filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// claim marks the first unclaimed want on the diagnostic's line whose regexp
// matches its message.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.claimed && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
			w.claimed = true
			return true
		}
	}
	return false
}

// wantRx pulls the quoted regexps off a want comment: double-quoted (Go
// string syntax) or backquoted (raw).
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses every `// want ...` comment in the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRx.FindAllString(strings.TrimPrefix(text, "want "), -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment (no quoted regexp): %s",
						filepath.Base(pos.Filename), pos.Line, c.Text)
				}
				for _, q := range quoted {
					pat := ""
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v",
								filepath.Base(pos.Filename), pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v",
							filepath.Base(pos.Filename), pos.Line, q, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: q})
				}
			}
		}
	}
	return out
}
