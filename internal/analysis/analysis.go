// Package analysis is a self-contained static-analysis framework for the
// tofu tree, API-compatible (in shape) with golang.org/x/tools/go/analysis
// but built entirely on the standard library so the checkers run in this
// module with zero external dependencies. Packages are type-checked against
// gc export data produced by `go list -export`, which is how the real
// unitchecker works under `go vet` as well.
//
// The framework exists to enforce the two invariants every result in this
// reproduction rests on (see DESIGN.md, "Static invariants and tofu-vet"):
// plans must serialize byte-identically at any parallelism, and the DP sweep
// must stay allocation-free. Analyzers live in subpackages (mapiter,
// hotalloc, nodeterm, errdrop); cmd/tofu-vet is the multichecker driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checkers could move onto
// the real framework wholesale if the dependency ever lands in this module.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string
	// Doc is the one-paragraph description shown by tofu-vet -list.
	Doc string
	// Allow is the //tofu:allow-<Allow> suppression token; empty means Name.
	// nodeterm uses "nondet", matching the annotation grammar in DESIGN.md.
	Allow string
	// Run executes the check over one package and reports through the pass.
	Run func(*Pass) error
}

// AllowToken returns the suppression token for //tofu:allow-<token>.
func (a *Analyzer) AllowToken() string {
	if a.Allow != "" {
		return a.Allow
	}
	return a.Name
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of an expression (nil if untyped, e.g. a
// package identifier).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object (uses then defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.TypesInfo.ObjectOf(id) }

// CalleeFunc resolves a call to the *types.Func it invokes (package function
// or method), nil for builtins, conversions and indirect calls through
// function-typed variables.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.ObjectOf(fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified package call: pkg.Fn.
		if f, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// CalleePkgFunc reports whether call invokes <pkgPath>.<name> as a
// package-level function.
func (p *Pass) CalleePkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	f := p.CalleeFunc(call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// IsBuiltin reports whether the call invokes the named builtin (append, make,
// ...), respecting shadowing via the type checker.
func (p *Pass) IsBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.ObjectOf(id).(*types.Builtin)
	return ok
}

// CallName renders the callee expression of a call for diagnostics
// ("enc.Encode", "fmt.Fprintf", ...).
func (p *Pass) CallName(call *ast.CallExpr) string {
	return ExprString(call.Fun)
}

// ExprString renders a (small) expression as source text, for diagnostics
// and for matching sort targets by name.
func ExprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return ExprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return ExprString(x.X) + "[...]"
	case *ast.CallExpr:
		return ExprString(x.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + ExprString(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + ExprString(x.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}
