// Package errdrop flags discarded error returns: bare call statements whose
// callee returns an error, and errors assigned to the blank identifier. A
// dropped error on a parse or I/O path is how malformed plans or half-written
// artifacts slip into the content-addressed cache unnoticed.
//
// Not flagged, by design:
//   - deferred calls (`defer f.Close()` on shutdown paths has no error
//     consumer; the cleanup idiom is accepted — see the analyzer tests)
//   - `go f()` statements (no frame to return the error to)
//   - writes to in-memory sinks that are documented never to fail:
//     *strings.Builder, *bytes.Buffer, hash.Hash, and fmt.Fprint* directed
//     at one of those or at os.Stdout / os.Stderr
//   - fmt.Print/Printf/Println CLI chatter
//
// Suppress true-but-intended drops with `//tofu:allow-errdrop <reason>`.
package errdrop

import (
	"go/ast"
	"go/token"
	"go/types"

	"tofu/internal/analysis"
)

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error returns (`_ =` and bare calls) outside tests",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Deferred and go'd calls hang off DeferStmt/GoStmt, not ExprStmt, so
	// `defer f.Close()` is naturally exempt while function-literal bodies
	// underneath them are still walked.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool { return inspectOne(pass, n) })
	}
	return nil
}

// inspectOne handles one node of the walk; returns whether to descend.
func inspectOne(pass *analysis.Pass, n ast.Node) bool {
	switch st := n.(type) {
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pos, ok := dropsError(pass, call, nil); ok {
			pass.Reportf(pos, "result of %s contains an unchecked error", pass.CallName(call))
		}
		return true
	case *ast.AssignStmt:
		// Flag calls whose error-typed results all land in blanks, e.g.
		// `_ = enc.Encode(v)` or `n, _ := w.Write(b)`.
		if len(st.Rhs) == 1 {
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
				if pos, ok := dropsError(pass, call, st.Lhs); ok {
					pass.Reportf(pos, "error result of %s assigned to blank identifier", pass.CallName(call))
				}
			}
		}
		return true
	}
	return true
}

// dropsError reports whether the call returns an error that the (possibly
// nil) assignment targets discard, and is not on the allowlist.
func dropsError(pass *analysis.Pass, call *ast.CallExpr, lhs []ast.Expr) (token.Pos, bool) {
	t := pass.TypeOf(call)
	if t == nil {
		return token.NoPos, false
	}
	errIdx := -1
	n := 1
	if tup, ok := t.(*types.Tuple); ok {
		n = tup.Len()
		for i := 0; i < n; i++ {
			if analysis.IsErrorType(tup.At(i).Type()) {
				errIdx = i
			}
		}
	} else if analysis.IsErrorType(t) {
		errIdx = 0
	}
	if errIdx < 0 {
		return token.NoPos, false
	}
	if lhs != nil {
		if len(lhs) != n {
			return token.NoPos, false // single-value context or tuple mismatch
		}
		id, ok := lhs[errIdx].(*ast.Ident)
		if !ok || id.Name != "_" {
			return token.NoPos, false // the error is bound to a real variable
		}
	}
	if allowlisted(pass, call) {
		return token.NoPos, false
	}
	if lhs != nil {
		return lhs[errIdx].Pos(), true
	}
	return call.Pos(), true
}

// allowlisted reports whether the dropped error is a documented-infallible
// sink (see the package comment).
func allowlisted(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := pass.CalleeFunc(call)
	if f == nil {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" && sig != nil && sig.Recv() == nil {
		switch f.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				return infallibleWriter(pass, call.Args[0])
			}
		}
		return false
	}
	// Methods on infallible in-memory sinks. Check the receiver expression's
	// static type first: a hash.Hash's Write resolves to the embedded
	// io.Writer method, so the signature's receiver alone is too coarse.
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if infallibleSinkType(pass.TypeOf(sel.X)) {
				return true
			}
		}
		return infallibleSinkType(sig.Recv().Type())
	}
	return false
}

// infallibleWriter reports whether the expression is os.Stdout/os.Stderr or
// an in-memory sink.
func infallibleWriter(pass *analysis.Pass, e ast.Expr) bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if obj := pass.ObjectOf(sel.Sel); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	return infallibleSinkType(pass.TypeOf(e))
}

// infallibleSinkType matches *strings.Builder, *bytes.Buffer and hash.Hash.
func infallibleSinkType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() + "." + obj.Name() {
		case "strings.Builder", "bytes.Buffer":
			return true
		case "hash.Hash", "hash.Hash32", "hash.Hash64":
			return true
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		// Concrete hash implementations (sha256.digest) arrive as the
		// hash.Hash interface at call sites.
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "BlockSize" {
				return true
			}
		}
	}
	return false
}
