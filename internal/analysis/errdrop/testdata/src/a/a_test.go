// Diagnostics in *_test.go files are dropped centrally by analysis.Run:
// tests drop errors on purpose, so nothing in this file carries a want.
package a

import "os"

func testHelper() {
	os.Remove("scratch")
	_ = os.Remove("scratch")
}
