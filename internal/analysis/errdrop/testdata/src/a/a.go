// Package a exercises the errdrop analyzer: discarded errors are flagged;
// deferred cleanup, goroutine statements and documented-infallible sinks are
// not.
package a

import (
	"fmt"
	"hash"
	"os"
	"strings"
)

func bareCall() {
	f, err := os.Create("x")
	if err != nil {
		return
	}
	f.Close() // want `result of f\.Close contains an unchecked error`
}

func blankAssign() {
	_ = os.Remove("x") // want `error result of os\.Remove assigned to blank identifier`
}

func tupleBlank(f *os.File, b []byte) {
	_, _ = f.Write(b) // want `error result of f\.Write assigned to blank identifier`
}

func handled() error {
	if err := os.Remove("x"); err != nil {
		return err
	}
	return nil
}

func deferredClose() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer f.Close() // deferred cleanup is exempt by design
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

func goroutine(f *os.File) {
	go f.Close() // no frame to return the error to; exempt
}

func goroutineBody(f *os.File) {
	go func() {
		f.Close() // want `result of f\.Close contains an unchecked error`
	}()
}

func chatter(sb *strings.Builder, h hash.Hash, b []byte) {
	fmt.Println("progress") // CLI chatter is allowlisted
	fmt.Fprintf(os.Stderr, "warn\n")
	sb.WriteString("x") // strings.Builder writes never fail
	fmt.Fprintf(sb, "y=%d", 1)
	h.Write(b) // hash.Hash writes never fail
}

func suppressedTrailing() {
	os.Remove("x") //tofu:allow-errdrop best-effort cleanup; absence is fine
}

func suppressedOwnLine() {
	//tofu:allow-errdrop best-effort cleanup; absence is fine
	os.Remove("x")
}

// docSuppressed drops errors throughout; the doc-comment marker widens to
// the whole function body.
//
//tofu:allow-errdrop fixture: every drop in this function is intentional
func docSuppressed() {
	os.Remove("a")
	os.Remove("b")
}
