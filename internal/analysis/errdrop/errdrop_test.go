package errdrop_test

import (
	"testing"

	"tofu/internal/analysis/analysistest"
	"tofu/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errdrop.Analyzer, "a")
}
