// Package nodeterm forbids sources of nondeterminism inside the search and
// pricing code paths — everything reachable from dp.Solve and
// recursive.Partition. Plans from those paths key the content-addressed
// cache by digest; a wall clock, a random number, or a scheduler-order
// select anywhere in them silently turns "byte-identical at any
// parallelism" into "usually identical".
//
// Scope is annotation-driven: the analyzer only fires in packages whose
// package doc carries //tofu:searchpath (internal/dp, internal/recursive,
// internal/coarsen, internal/shape, internal/partition, internal/interval —
// the import closure of the two entry points). Inside those packages it
// flags:
//   - calls to time.Now / Since / Until / After / Tick / NewTimer / NewTicker
//   - any import of math/rand or math/rand/v2
//   - select statements with two or more channel cases (which ready channel
//     wins is a scheduler coin flip)
//
// Latency accounting that provably never reaches plan bytes is suppressed
// with `//tofu:allow-nondet <reason>`.
package nodeterm

import (
	"go/ast"
	"strings"

	"tofu/internal/analysis"
)

// Analyzer is the nodeterm pass.
var Analyzer = &analysis.Analyzer{
	Name:  "nodeterm",
	Doc:   "forbids time.Now, math/rand and multi-channel select in //tofu:searchpath packages",
	Allow: "nondet",
	Run:   run,
}

// timeFuncs are the wall-clock entry points; reading the clock anywhere on
// the search path is flagged (time.Since and friends call time.Now).
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageMarked(pass.Files, "searchpath") {
		return nil
	}
	for _, file := range pass.Files {
		for _, spec := range file.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(spec.Pos(), "import of %s in search path: random choices break byte-identical plans", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if f := pass.CalleeFunc(x); f != nil && f.Pkg() != nil &&
					f.Pkg().Path() == "time" && timeFuncs[f.Name()] {
					pass.Reportf(x.Pos(), "time.%s in search path: wall-clock reads make search results timing-dependent", f.Name())
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(x.Pos(), "select over %d channels in search path: case choice is scheduler-order nondeterministic", comm)
				}
			}
			return true
		})
	}
	return nil
}
