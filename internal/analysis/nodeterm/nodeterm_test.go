package nodeterm_test

import (
	"testing"

	"tofu/internal/analysis/analysistest"
	"tofu/internal/analysis/nodeterm"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nodeterm.Analyzer, "a", "b")
}
