// Package a stands in for a search-path package: the marker below opts it
// into nodeterm scope, as internal/dp and friends do in the real tree.
//
//tofu:searchpath fixture
package a

import (
	"math/rand" // want `import of math/rand in search path`
	"time"
)

func pick(n int) int {
	return rand.Intn(n)
}

func stamp() time.Time {
	return time.Now() // want `time\.Now in search path`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in search path`
}

func race(a, b chan int) int {
	select { // want `select over 2 channels in search path`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// single-case select is deterministic: nothing to choose between.
func single(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

// timed is the documented escape hatch: the func-doc marker suppresses the
// whole function.
//
//tofu:allow-nondet fixture: latency metric that never reaches plan bytes
func timed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
