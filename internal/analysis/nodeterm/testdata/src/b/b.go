// Package b carries no searchpath marker: nodeterm stays silent however
// nondeterministic the code is.
package b

import (
	"math/rand"
	"time"
)

func pick(n int) int {
	return rand.Intn(n)
}

func stamp() time.Time {
	return time.Now()
}
