package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"tofu/internal/analysis"
	"tofu/internal/analysis/errdrop"
)

// TestEmptyReasonReported checks that //tofu:allow-<check> without a
// justification (a) is itself reported by the "tofuvet" meta-check and
// (b) does not suppress the diagnostic it sits on.
func TestEmptyReasonReported(t *testing.T) {
	dir := filepath.Join("testdata", "src", "emptyreason")
	pkg, err := analysis.LoadDir(".", dir, "emptyreason")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{errdrop.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (tofuvet + errdrop): %+v", len(diags), diags)
	}
	var sawMeta, sawErrdrop bool
	for _, d := range diags {
		switch d.Analyzer {
		case "tofuvet":
			sawMeta = true
			if !strings.Contains(d.Message, "needs a one-line justification") {
				t.Errorf("tofuvet message = %q, want justification complaint", d.Message)
			}
		case "errdrop":
			sawErrdrop = true // the reasonless marker must not suppress this
		default:
			t.Errorf("unexpected analyzer %q: %+v", d.Analyzer, d)
		}
	}
	if !sawMeta || !sawErrdrop {
		t.Errorf("sawMeta=%v sawErrdrop=%v, want both", sawMeta, sawErrdrop)
	}
}
