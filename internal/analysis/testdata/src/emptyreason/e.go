// Package emptyreason exercises the mandatory-justification rule: an allow
// marker with no reason suppresses nothing and is itself reported.
package emptyreason

import "os"

func cleanup() {
	os.Remove("x") //tofu:allow-errdrop
}
