// Package a exercises the mapiter analyzer: map iteration feeding ordered
// output must sort; collect-then-sort and order-insensitive bodies pass.
package a

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sort"
)

// keysUnsorted is the bug class: iteration values accumulate into a slice
// that is never deterministically ordered.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append of map iteration values to "out" without a deterministic sort`
	}
	return out
}

// exportSteps feeds plan JSON straight from a map range: every run emits the
// steps in a different order, breaking byte-identical plans.
func exportSteps(w io.Writer, steps map[string]int) {
	enc := json.NewEncoder(w)
	for name, cost := range steps {
		enc.Encode(map[string]any{"op": name, "cost": cost}) // want `enc\.Encode inside map iteration writes output in nondeterministic map order`
	}
}

// printKeys leaks map order through fmt.
func printKeys(w io.Writer, m map[string]bool) {
	for k := range m {
		fmt.Fprintln(w, k) // want `fmt\.Fprintln inside map iteration writes output in nondeterministic map order`
	}
}

// sendKeys leaks map order through a channel.
func sendKeys(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send of map iteration values: receive order varies run to run`
	}
}

// keysSorted is the canonical fix: collect inside the range, sort after.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// keysSlicesSorted uses the slices package for the post-range sort.
func keysSlicesSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// orderedWalk is the sorted-then-ranged idiom end to end: the map range only
// collects (sorted after), and the emitting loop ranges the sorted slice,
// which mapiter does not audit.
func orderedWalk(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k])
	}
}

// sumValues never observes order: commutative accumulation is fine.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// countOnly ranges without iteration variables; the body cannot observe
// order at all.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// suppressed documents an intentional unordered accumulation.
func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //tofu:allow-mapiter order is re-established by the caller's digest sort
	}
	return out
}
