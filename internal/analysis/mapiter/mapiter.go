// Package mapiter flags `for range` over a map whose body feeds iteration-
// order-dependent output: appending the key or value (or anything derived
// from them) to a slice that is never deterministically sorted afterwards,
// writing them to an io.Writer / encoder, or sending them down a channel.
// Go randomizes map iteration order on purpose, so any such loop produces
// different bytes run to run — the exact bug class that would break the
// byte-identical-plan invariant and corrupt digest-keyed caches.
//
// The canonical fix is NOT flagged: collecting keys into a slice inside the
// range and sorting that slice afterwards (sort.*, slices.Sort*) before use
// suppresses the finding, as does a loop whose body never mentions the
// iteration variables (order cannot matter then).
//
// Suppress intentional unordered accumulation with
// `//tofu:allow-mapiter <reason>`.
package mapiter

import (
	"go/ast"
	"go/types"

	"tofu/internal/analysis"
)

// Analyzer is the mapiter pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration feeding ordered output without a deterministic sort",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc finds map ranges in one function and audits their bodies.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		auditMapRange(pass, fd, rs)
		return true
	})
}

// auditMapRange inspects one map-range body for order-dependent sinks.
func auditMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	iterVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				iterVars[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				iterVars[obj] = true // `k = range m` over a pre-declared var
			}
		}
	}
	if len(iterVars) == 0 {
		return // `for range m`: the body cannot observe iteration order
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if pass.IsBuiltin(x, "append") && usesAny(pass, x, iterVars) {
				target := appendTarget(x)
				if target != "" && sortedAfter(pass, fd, rs, target) {
					return true
				}
				pass.Reportf(x.Pos(),
					"append of map iteration values to %q without a deterministic sort: map order varies run to run",
					target)
				return true
			}
			if sink, ok := orderedSink(pass, x); ok && usesAny(pass, x, iterVars) {
				pass.Reportf(x.Pos(),
					"%s inside map iteration writes output in nondeterministic map order", sink)
			}
		case *ast.SendStmt:
			if usesExprAny(pass, x.Value, iterVars) || usesExprAny(pass, x.Chan, iterVars) {
				pass.Reportf(x.Pos(), "channel send of map iteration values: receive order varies run to run")
			}
		}
		return true
	})
}

// appendTarget renders the slice being appended to (the first argument).
func appendTarget(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	return analysis.ExprString(call.Args[0])
}

// usesAny reports whether any argument of the call references an iteration
// variable.
func usesAny(pass *analysis.Pass, call *ast.CallExpr, vars map[types.Object]bool) bool {
	for _, a := range call.Args {
		if usesExprAny(pass, a, vars) {
			return true
		}
	}
	return false
}

func usesExprAny(pass *analysis.Pass, e ast.Expr, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && vars[obj] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// orderedSink classifies calls that emit output whose byte order follows
// call order: fmt printing, JSON encoding, and Write-family methods.
func orderedSink(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	f := pass.CalleeFunc(call)
	if f == nil {
		return "", false
	}
	name := pass.CallName(call)
	if pkg := f.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			switch f.Name() {
			case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
				return name, true
			}
		case "encoding/json":
			if f.Name() == "Marshal" || f.Name() == "MarshalIndent" || f.Name() == "Encode" {
				return name, true
			}
		case "io":
			if f.Name() == "WriteString" {
				return name, true
			}
		}
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch f.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return name, true
		}
	}
	return "", false
}

// sortedAfter reports whether, later in the same function, the append
// target is passed to a deterministic sort (sort.* or slices.Sort*). That
// is the canonical collect-then-sort idiom, which IS deterministic.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, a := range call.Args {
			if exprMentions(a, target) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// isSortCall matches package-level functions of sort and slices.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := pass.CalleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// exprMentions reports whether the rendered target appears anywhere inside
// the expression (including under conversions like sort.Sort(byCost(out))).
func exprMentions(e ast.Expr, target string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ex, ok := n.(ast.Expr); ok && analysis.ExprString(ex) == target {
			found = true
		}
		return !found
	})
	return found
}
