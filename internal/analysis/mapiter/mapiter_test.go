package mapiter_test

import (
	"testing"

	"tofu/internal/analysis/analysistest"
	"tofu/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), mapiter.Analyzer, "a")
}
