package analysis

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// Run executes the analyzers over one package and returns the surviving
// diagnostics: findings in *_test.go files are dropped (the invariants are
// about production code; tests measure wall time and drop errors on
// purpose), //tofu:allow-<check> suppressions are applied, and any allow
// marker with an empty justification is itself reported (the grammar makes
// the one-line reason mandatory so suppressions stay auditable).
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sups := collectSuppressions(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, s := range sups {
		if s.reason == "" {
			diags = append(diags, Diagnostic{
				Analyzer: "tofuvet",
				File:     s.file,
				Line:     s.line,
				Message:  fmt.Sprintf("//tofu:allow-%s needs a one-line justification", s.check),
			})
		}
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		token := a.AllowToken()
		pass.report = func(d Diagnostic) {
			if strings.HasSuffix(d.File, "_test.go") {
				return
			}
			for _, s := range sups {
				if s.reason != "" && s.covers(token, d.File, d.Line) {
					return
				}
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
