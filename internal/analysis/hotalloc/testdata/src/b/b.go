// Package b is hot wholesale: the package-doc marker below puts every
// function in the package under hotalloc, with no per-function annotations.
//
//tofu:hotpath
package b

import "fmt"

// unannotated carries no marker of its own but is hot via the package doc.
func unannotated(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf in hot path`
}

// clean allocates nothing.
func clean(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
