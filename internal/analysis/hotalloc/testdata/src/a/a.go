// Package a exercises hotalloc at function granularity: only functions whose
// doc carries //tofu:hotpath are checked; everything else may allocate.
package a

import "fmt"

// sum is hot and allocation-free: nothing to report.
//
//tofu:hotpath
func sum(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}

// describe formats inside a hot function: the acceptance-criteria positive.
//
//tofu:hotpath
func describe(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf in hot path`
}

// join builds a string per iteration.
//
//tofu:hotpath
func join(parts []string) string {
	s := ""
	for i := 0; i < len(parts); i++ {
		s += parts[i] // want `string \+= in a loop in hot path`
	}
	return s
}

// concat uses the binary operator form.
//
//tofu:hotpath
func concat(parts []string) string {
	s := ""
	for i := 0; i < len(parts); i++ {
		s = s + parts[i] // want `string concatenation in a loop in hot path`
	}
	return s
}

// index allocates a map per iteration.
//
//tofu:hotpath
func index(keys []string) map[string]int {
	var last map[string]int
	for i := 0; i < len(keys); i++ {
		last = make(map[string]int) // want `make\(map\) in a loop in hot path`
		last[keys[i]] = i
	}
	return last
}

// literals allocates a map literal per iteration.
//
//tofu:hotpath
func literals(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := map[int]bool{i: true} // want `map literal in a loop in hot path`
		total += len(m)
	}
	return total
}

// box converts a concrete value to an interface explicitly.
//
//tofu:hotpath
func box(n int) any {
	return any(n) // want `conversion of int to interface .* boxing allocates`
}

// closures allocates a closure plus a variable cell per iteration.
//
//tofu:hotpath
func closures(xs []int) []func() int {
	var fs []func() int
	for i := 0; i < len(xs); i++ {
		fs = append(fs, func() int { return xs[i] }) // want `closure captures loop variable "i" in hot path`
	}
	return fs
}

// cold has no annotation: fmt here is not hotalloc's business.
func cold(n int) string {
	return fmt.Sprintf("n=%d", n)
}

type counter struct{ n int }

// bump shows the annotation works on methods exactly as on functions.
//
//tofu:hotpath
func (c *counter) bump(label string) {
	c.n++
	fmt.Println(label) // want `fmt\.Println in hot path`
}

// suppressed keeps a cold error path inside a hot kernel.
//
//tofu:hotpath
func suppressed(err error) string {
	if err != nil {
		return fmt.Sprintf("failed: %v", err) //tofu:allow-hotalloc cold error path; never taken in the sweep
	}
	return "ok"
}
