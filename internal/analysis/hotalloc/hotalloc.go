// Package hotalloc enforces allocation-freeness in functions annotated
// //tofu:hotpath (or every function of a package whose package doc carries
// the marker). PR 3's 21x search speedup came from removing exactly these
// constructs from the DP sweep; this analyzer keeps them out. Flagged inside
// a hot function:
//
//   - any call into package fmt (Sprintf, Errorf, Fprintf, ...: interface
//     boxing of every argument plus formatting buffers)
//   - string concatenation (`+` / `+=` on strings) inside a loop
//   - map allocation inside a loop (`make(map...)` or a map composite
//     literal per iteration)
//   - explicit conversion of a concrete value to an interface type
//     (boxing allocates)
//   - a function literal inside a loop that captures the loop variable
//     (each iteration allocates a fresh closure + variable cell)
//
// Cold error paths inside annotated functions are suppressed with
// `//tofu:allow-hotalloc <reason>`; the cleaner fix is to keep the hot
// kernel small enough that its error handling lives in the caller.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"tofu/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation-inducing constructs in //tofu:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, fd := range analysis.HotFuncs(pass.Files) {
		checkHot(pass, fd)
	}
	return nil
}

// loopStack tracks the enclosing loops (and their iteration variables)
// while walking a hot function body.
type loopStack struct {
	loops []loopFrame
}

type loopFrame struct {
	node ast.Node
	vars map[types.Object]bool
}

func (ls *loopStack) inLoop() bool { return len(ls.loops) > 0 }

func (ls *loopStack) loopVar(obj types.Object) bool {
	for _, f := range ls.loops {
		if f.vars[obj] {
			return true
		}
	}
	return false
}

// checkHot walks one annotated function.
func checkHot(pass *analysis.Pass, fd *ast.FuncDecl) {
	var ls loopStack
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			frame := loopFrame{node: x, vars: map[types.Object]bool{}}
			if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							frame.vars[obj] = true
						}
					}
				}
			}
			ls.loops = append(ls.loops, frame)
			if x.Init != nil {
				ast.Inspect(x.Init, walk)
			}
			if x.Cond != nil {
				ast.Inspect(x.Cond, walk)
			}
			if x.Post != nil {
				ast.Inspect(x.Post, walk)
			}
			ast.Inspect(x.Body, walk)
			ls.loops = ls.loops[:len(ls.loops)-1]
			return false
		case *ast.RangeStmt:
			frame := loopFrame{node: x, vars: map[types.Object]bool{}}
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						frame.vars[obj] = true
					}
				}
			}
			ls.loops = append(ls.loops, frame)
			ast.Inspect(x.X, walk)
			ast.Inspect(x.Body, walk)
			ls.loops = ls.loops[:len(ls.loops)-1]
			return false
		case *ast.CallExpr:
			checkCall(pass, &ls, x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && ls.inLoop() && isString(pass.TypeOf(x)) {
				pass.Reportf(x.OpPos, "string concatenation in a loop in hot path: builds a new string every iteration")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && ls.inLoop() && len(x.Lhs) == 1 && isString(pass.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.TokPos, "string += in a loop in hot path: builds a new string every iteration")
			}
		case *ast.CompositeLit:
			if ls.inLoop() {
				if t := pass.TypeOf(x); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(x.Pos(), "map literal in a loop in hot path: allocates a map every iteration")
					}
				}
			}
		case *ast.FuncLit:
			if cap, ok := capturedLoopVar(pass, &ls, x); ok {
				pass.Reportf(x.Pos(), "closure captures loop variable %q in hot path: allocates a closure and a variable cell per iteration", cap)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkCall flags fmt calls, per-iteration map makes, and explicit
// interface conversions.
func checkCall(pass *analysis.Pass, ls *loopStack, call *ast.CallExpr) {
	if f := pass.CalleeFunc(call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path: formats and boxes arguments on every call", f.Name())
		return
	}
	if pass.IsBuiltin(call, "make") && ls.inLoop() && len(call.Args) > 0 {
		if t := pass.TypeOf(call); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				pass.Reportf(call.Pos(), "make(map) in a loop in hot path: allocates a map every iteration")
			}
		}
	}
	// Explicit conversion to an interface type: T(x) with T interface and x
	// concrete. The type checker marks conversions in Types.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if at := pass.TypeOf(call.Args[0]); at != nil {
				if _, argIface := at.Underlying().(*types.Interface); !argIface {
					pass.Reportf(call.Pos(), "conversion of %s to interface %s in hot path: boxing allocates", at, tv.Type)
				}
			}
		}
	}
}

// capturedLoopVar reports the first enclosing-loop variable the function
// literal's body references.
func capturedLoopVar(pass *analysis.Pass, ls *loopStack, fl *ast.FuncLit) (string, bool) {
	if !ls.inLoop() {
		return "", false
	}
	name, found := "", false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && ls.loopVar(obj) {
				name, found = id.Name, true
			}
		}
		return !found
	})
	return name, found
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
