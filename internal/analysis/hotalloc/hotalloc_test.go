package hotalloc_test

import (
	"testing"

	"tofu/internal/analysis/analysistest"
	"tofu/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotalloc.Analyzer, "a", "b")
}
