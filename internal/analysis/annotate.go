package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar (see DESIGN.md, "Static invariants and tofu-vet"):
//
//	//tofu:hotpath [note]         func doc: this function must not allocate;
//	                              package doc: every function in the package.
//	//tofu:searchpath [note]      package doc: the package is on the
//	                              dp.Solve / recursive.Partition search path,
//	                              so nodeterm enforces determinism in it.
//	//tofu:allow-<check> reason   suppress <check> on this line (trailing
//	                              comment), on the next line (own-line
//	                              comment), or — in a func doc — on the whole
//	                              function. The reason is mandatory; an empty
//	                              one is itself reported by tofu-vet.
const (
	markerPrefix = "//tofu:"
	allowPrefix  = "//tofu:allow-"
)

// marker parses "//tofu:<token> <note>" comment lines; ok is false for
// ordinary comments.
func marker(line string) (tok, note string, ok bool) {
	if !strings.HasPrefix(line, markerPrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(line, markerPrefix)
	tok, note, _ = strings.Cut(rest, " ")
	return tok, strings.TrimSpace(note), tok != ""
}

// groupHasMarker reports whether any line of the comment group carries the
// given //tofu: token.
func groupHasMarker(g *ast.CommentGroup, token string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if tok, _, ok := marker(c.Text); ok && tok == token {
			return true
		}
	}
	return false
}

// PackageMarked reports whether any file's package doc carries the token
// (e.g. "searchpath", or a package-wide "hotpath").
func PackageMarked(files []*ast.File, token string) bool {
	for _, f := range files {
		if groupHasMarker(f.Doc, token) {
			return true
		}
	}
	return false
}

// HotFuncs returns every function declaration the hotalloc analyzer must
// treat as a hot path: those whose doc comment carries //tofu:hotpath, or
// all of them when the package doc does.
func HotFuncs(files []*ast.File) []*ast.FuncDecl {
	pkgWide := PackageMarked(files, "hotpath")
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pkgWide || groupHasMarker(fd.Doc, "hotpath") {
				out = append(out, fd)
			}
		}
	}
	return out
}

// suppression is one //tofu:allow-<check> occurrence.
type suppression struct {
	check   string
	file    string
	line    int // line the comment sits on; it and line+1 are suppressed
	funcEnd int // >0: doc-comment suppression covering lines [line, funcEnd]
	reason  string
}

// collectSuppressions scans all comments of a package for allow markers.
// Doc-comment markers on a FuncDecl widen to the whole function body.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		// Map doc comment groups to the span of the decl they document.
		docEnd := map[*ast.CommentGroup]token.Pos{}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
				docEnd[fd.Doc] = fd.End()
			}
		}
		for _, g := range f.Comments {
			for _, c := range g.List {
				tok, note, ok := marker(c.Text)
				if !ok || !strings.HasPrefix(tok, "allow-") {
					continue
				}
				pos := fset.Position(c.Pos())
				s := suppression{
					check:  strings.TrimPrefix(tok, "allow-"),
					file:   pos.Filename,
					line:   pos.Line,
					reason: note,
				}
				if end, isDoc := docEnd[g]; isDoc {
					s.funcEnd = fset.Position(end).Line
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// covers reports whether the suppression applies to a diagnostic of the
// given check at file:line.
func (s suppression) covers(check, file string, line int) bool {
	if s.check != check || s.file != file {
		return false
	}
	if s.funcEnd > 0 {
		return line >= s.line && line <= s.funcEnd
	}
	return line == s.line || line == s.line+1
}
