package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the patterns with `go list -export -deps`, then parses and
// type-checks every matched (non-dependency) package against the gc export
// data of its dependencies — the same compilation artifacts `go vet` feeds
// its unitchecker, so no network or module downloads are involved. dir is
// the module directory the patterns are resolved in.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// exportImporter type-checks imports from a map of import path -> gc export
// data file.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// checkPackage parses the files (with comments — the annotation grammar
// lives there) and type-checks them.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// CheckFiles type-checks one package from an explicit file list and export
// data maps — the `go vet -vettool` path, where cmd/go supplies both the
// files and the import-path -> export-data resolution (importMap handles
// vendoring; identity when empty).
func CheckFiles(importPath, dir string, goFiles []string, importMap, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
	return checkPackage(fset, imp, importPath, dir, goFiles)
}

// LoadDir type-checks a single directory of Go files as one package whose
// imports are all resolvable through `go list -export` (stdlib, for the
// analysistest fixtures). modDir anchors the go invocation inside a module.
func LoadDir(modDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	// Resolve the fixture's imports (transitively) to export data.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	exports, err := listExports(modDir, imports)
	if err != nil {
		return nil, err
	}
	imp := exportImporter(fset, exports)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// listExports maps the given import paths (and their dependencies) to gc
// export data files via `go list -export -deps`.
func listExports(modDir string, imports []string) (map[string]string, error) {
	exports := map[string]string{}
	if len(imports) == 0 {
		return exports, nil
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Error",
	}, imports...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list -export %s: %v\n%s", strings.Join(imports, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
