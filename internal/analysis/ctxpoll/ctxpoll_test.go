package ctxpoll_test

import (
	"testing"

	"tofu/internal/analysis/analysistest"
	"tofu/internal/analysis/ctxpoll"
)

func TestCtxpoll(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxpoll.Analyzer, "a", "b")
}
