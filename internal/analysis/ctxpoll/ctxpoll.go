// Package ctxpoll enforces the anytime-search contract in the search code
// paths: every loop that can run an unbounded number of iterations must
// poll its cancellation token, or a deadline-bounded request can wedge a
// worker until the watchdog fires instead of returning its incumbent.
//
// Scope is annotation-driven, like nodeterm: the analyzer only fires in
// packages whose package doc carries //tofu:searchpath. Inside those
// packages it flags while-style `for` loops — no init, no post, and a
// condition that is absent (`for {`) or itself calls a function (`for
// pq.Len() > 0 {`) — whose body never calls a method or function named
// Cancelled. Those are exactly the work loops whose trip count depends on
// data, not on a counter the compiler can see; bounded three-clause loops
// (`for i := 0; i < n; i++`) and `range` loops walk a value of known
// extent and are exempt.
//
// A loop that is provably short or whose cancellation is polled by its
// callee is suppressed with `//tofu:allow-ctxpoll <reason>`.
package ctxpoll

import (
	"go/ast"

	"tofu/internal/analysis"
)

// Analyzer is the ctxpoll pass.
var Analyzer = &analysis.Analyzer{
	Name:  "ctxpoll",
	Doc:   "unbounded loops in //tofu:searchpath packages must poll cancellation (call Cancelled)",
	Allow: "ctxpoll",
	Run:   run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PackageMarked(pass.Files, "searchpath") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || !unbounded(loop) {
				return true
			}
			if !pollsCancellation(loop.Body) {
				pass.Reportf(loop.Pos(), "unbounded loop in search path never polls cancellation: call token.Cancelled() (or //tofu:allow-ctxpoll with why it is bounded)")
			}
			return true
		})
	}
	return nil
}

// unbounded reports whether loop is a while-style `for` whose trip count
// the source does not bound: no init/post clause, and a condition that is
// either absent or depends on a call (`pq.Len() > 0`, `ok()`, ...). A
// condition built only from variables (`for done {`) still terminates only
// when the body says so, but flagging it would also catch trivial
// flag-polling wrappers; the call-bearing shape is where the search's real
// work loops live.
func unbounded(loop *ast.ForStmt) bool {
	if loop.Init != nil || loop.Post != nil {
		return false
	}
	if loop.Cond == nil {
		return true
	}
	calls := false
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			calls = true
			return false
		}
		return true
	})
	return calls
}

// pollsCancellation reports whether body contains a call to a function or
// method named Cancelled — the cancel.Token poll (a nil-token call is one
// pointer comparison, so polling is always affordable). Matching by name
// rather than full type keeps the check useful in fixtures and across
// wrapper types; a false negative here costs a missed warning, never a
// false alarm.
func pollsCancellation(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fn.Sel.Name == "Cancelled" {
				found = true
			}
		case *ast.Ident:
			if fn.Name == "Cancelled" {
				found = true
			}
		}
		return !found
	})
	return found
}
