// Package a stands in for a search-path package: the marker below opts it
// into ctxpoll scope, as internal/dp and friends do in the real tree.
//
//tofu:searchpath fixture
package a

type token struct{}

func (token) Cancelled() error { return nil }

type queue struct{ items []int }

func (q *queue) Len() int   { return len(q.items) }
func (q *queue) Pop() int   { v := q.items[0]; q.items = q.items[1:]; return v }
func (q *queue) work(v int) {}

// drain is the canonical offender: trip count depends on data pushed by
// the body, and nothing ever polls cancellation.
func drain(q *queue) {
	for q.Len() > 0 { // want `unbounded loop in search path never polls cancellation`
		q.work(q.Pop())
	}
}

// spin has no condition at all: unbounded until a break nobody can force.
func spin(q *queue) {
	for { // want `unbounded loop in search path never polls cancellation`
		if q.Len() == 0 {
			return
		}
		q.work(q.Pop())
	}
}

// drainPolled is the required shape: the loop checks its token, so a
// deadline turns into an incumbent return instead of a wedged worker.
func drainPolled(q *queue, tok token) {
	for q.Len() > 0 {
		if tok.Cancelled() != nil {
			return
		}
		q.work(q.Pop())
	}
}

// counted three-clause loops walk a bound the source states; exempt.
func counted(q *queue, n int) {
	for i := 0; i < n; i++ {
		q.work(i)
	}
}

// ranged loops walk a value of known extent; exempt.
func ranged(q *queue, xs []int) {
	for _, x := range xs {
		q.work(x)
	}
}

// flagged polls a plain variable, not a call: terminates only when the
// body flips it, but the call-free shape is out of scope by design.
func flagged(q *queue, done bool) {
	for !done {
		done = q.Len() == 0
	}
}

// bounded is the documented escape hatch for loops whose trip count is
// provably small or whose callee polls.
//
//tofu:allow-ctxpoll fixture: drains a queue the caller bounded to 4 entries
func bounded(q *queue) {
	for q.Len() > 0 {
		q.work(q.Pop())
	}
}
