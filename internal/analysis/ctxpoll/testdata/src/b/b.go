// Package b carries no searchpath marker: ctxpoll stays silent however
// unbounded the loops are.
package b

type queue struct{ items []int }

func (q *queue) Len() int { return len(q.items) }

func drain(q *queue) {
	for q.Len() > 0 {
		q.items = q.items[1:]
	}
}
