package tdl

import (
	"fmt"
)

// Param declares one input tensor of an operator: a name and a rank.
type Param struct {
	Name string
	Rank int
}

// OpDesc is the TDL description of one operator: its inputs, the output
// lambda's index variables, and the body expression. An OpDesc is the unit
// the partition analyzer consumes.
type OpDesc struct {
	Name    string
	Inputs  []Param
	OutAxes []string // output lambda variables, one per output dimension
	Body    Scalar

	// validated caches
	validated   bool
	reduceAxes  []ReduceAxis // top-level reduce axes (case-2 candidates)
	nestedAxes  []ReduceAxis // reduce axes of nested (non-top-level) reductions
	topReducer  Reducer
	elementwise bool
	hasOpaque   bool
	opaqueOut   map[string]bool // output axes owned by an opaque result
}

// Builder assembles an OpDesc fluently; see the package example.
type Builder struct {
	d   OpDesc
	err error
}

// Describe starts a new operator description.
func Describe(name string) *Builder {
	return &Builder{d: OpDesc{Name: name}}
}

// In declares an input tensor parameter.
func (b *Builder) In(name string, rank int) *Builder {
	b.d.Inputs = append(b.d.Inputs, Param{Name: name, Rank: rank})
	return b
}

// Out declares the output lambda's index variables in dimension order.
func (b *Builder) Out(axes ...Index) *Builder {
	for _, ax := range axes {
		name, coeff, ok := ax.IsSingleAxis()
		if !ok || coeff != 1 || ax.Const != 0 {
			b.err = fmt.Errorf("tdl: output axes must be bare variables, got %v", ax)
			return b
		}
		b.d.OutAxes = append(b.d.OutAxes, name)
	}
	return b
}

// Is sets the body expression and finalizes the description.
func (b *Builder) Is(body Scalar) (*OpDesc, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.d.Body = body
	if err := b.d.validate(); err != nil {
		return nil, err
	}
	return &b.d, nil
}

// MustIs is Is that panics on error; for the static registry.
func (b *Builder) MustIs(body Scalar) *OpDesc {
	d, err := b.Is(body)
	if err != nil {
		panic(err)
	}
	return d
}

// ReduceAxes returns the top-level reduction axes, which are the candidates
// for "case 2" output-reduction partition strategies.
func (d *OpDesc) ReduceAxes() []ReduceAxis { return d.reduceAxes }

// NestedReduceAxes returns reduce axes of reductions nested below the top
// level (e.g. softmax's normalizer); they bind symbols the analyzer must
// know about but yield no partition strategies.
func (d *OpDesc) NestedReduceAxes() []ReduceAxis { return d.nestedAxes }

// TopReducer returns the reducer of the top-level reduction (NoReduce if the
// body is not a reduction).
func (d *OpDesc) TopReducer() Reducer { return d.topReducer }

// IsElementwise reports whether the operator maps every input element at
// position p to the output element at the same position p — the property the
// coarsening pass uses to coalesce operator chains (Sec 5.1).
func (d *OpDesc) IsElementwise() bool { return d.elementwise }

// HasOpaque reports whether the description uses an opaque function.
func (d *OpDesc) HasOpaque() bool { return d.hasOpaque }

// OpaqueOutAxis reports whether the named output axis is produced by an
// opaque function's result and therefore cannot be partitioned.
func (d *OpDesc) OpaqueOutAxis(name string) bool { return d.opaqueOut[name] }

// InputRank returns the declared rank of the named input, or -1.
func (d *OpDesc) InputRank(name string) int {
	for _, p := range d.Inputs {
		if p.Name == name {
			return p.Rank
		}
	}
	return -1
}

// InputIndex returns the position of the named input, or -1.
func (d *OpDesc) InputIndex(name string) int {
	for i, p := range d.Inputs {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// AllAccesses returns every tensor access in the body.
func (d *OpDesc) AllAccesses() []TaggedAccess {
	var out []TaggedAccess
	d.Body.accesses(false, &out)
	return out
}

// AxisNames returns all axis names (output then reduce), for building the
// symbolic interval space.
func (d *OpDesc) AxisNames() []string {
	names := append([]string(nil), d.OutAxes...)
	for _, r := range d.reduceAxes {
		names = append(names, r.Name)
	}
	return names
}

// validate checks the structural rules of TDL and caches derived facts.
func (d *OpDesc) validate() error {
	if d.validated {
		return nil
	}
	if d.Name == "" {
		return fmt.Errorf("tdl: operator has no name")
	}
	if d.Body == nil {
		return fmt.Errorf("tdl: operator %s has no body", d.Name)
	}
	if len(d.OutAxes) == 0 {
		return fmt.Errorf("tdl: operator %s has no output axes (scalars unsupported)", d.Name)
	}
	seen := map[string]bool{}
	for _, a := range d.OutAxes {
		if seen[a] {
			return fmt.Errorf("tdl: operator %s repeats output axis %q", d.Name, a)
		}
		seen[a] = true
	}

	// Top-level reduction (possibly the whole body) provides case-2 axes.
	if r, ok := d.Body.(*ReduceExpr); ok {
		d.topReducer = r.Red
		d.reduceAxes = r.Axes
		for _, ra := range r.Axes {
			if seen[ra.Name] {
				return fmt.Errorf("tdl: operator %s reuses axis %q as both output and reduction", d.Name, ra.Name)
			}
			seen[ra.Name] = true
			if ra.Extent.Input != "" && d.InputRank(ra.Extent.Input) < 0 {
				return fmt.Errorf("tdl: operator %s reduce axis %q binds extent to unknown input %q", d.Name, ra.Name, ra.Extent.Input)
			}
		}
	}

	// Collect nested (non-top-level) reduce axes so access validation knows
	// every bound axis. Walk the tree for ReduceExpr nodes.
	bound := map[string]bool{}
	for k := range seen {
		bound[k] = true
	}
	if err := collectNestedReduceAxes(d, d.Body, bound, d.Body); err != nil {
		return err
	}

	// Validate accesses: known tensors, matching ranks, bound axes.
	for _, ta := range d.AllAccesses() {
		acc := ta.Access
		rank := d.InputRank(acc.Tensor)
		if rank < 0 {
			return fmt.Errorf("tdl: operator %s accesses undeclared input %q", d.Name, acc.Tensor)
		}
		if len(acc.Index) != rank {
			return fmt.Errorf("tdl: operator %s accesses %q with %d indices, rank is %d",
				d.Name, acc.Tensor, len(acc.Index), rank)
		}
		for _, ix := range acc.Index {
			for _, t := range ix.Terms {
				if !bound[t.Axis] {
					return fmt.Errorf("tdl: operator %s uses unbound axis %q", d.Name, t.Axis)
				}
			}
		}
	}

	// Opaque bookkeeping.
	d.opaqueOut = map[string]bool{}
	walkOpaque(d.Body, func(o *OpaqueExpr) {
		d.hasOpaque = true
		for _, a := range o.OutAxes {
			d.opaqueOut[a] = true
		}
	})

	d.elementwise = d.computeElementwise()
	d.validated = true
	return nil
}

func collectNestedReduceAxes(d *OpDesc, e Scalar, bound map[string]bool, top Scalar) error {
	switch v := e.(type) {
	case *ReduceExpr:
		if v != top { // nested reductions bind their axes locally
			for _, ra := range v.Axes {
				if bound[ra.Name] {
					return fmt.Errorf("tdl: operator %s rebinds axis %q in nested reduction", d.Name, ra.Name)
				}
				bound[ra.Name] = true
				d.nestedAxes = append(d.nestedAxes, ra)
				if ra.Extent.Input != "" && d.InputRank(ra.Extent.Input) < 0 {
					return fmt.Errorf("tdl: operator %s nested reduce axis %q binds extent to unknown input %q", d.Name, ra.Name, ra.Extent.Input)
				}
			}
		}
		return collectNestedReduceAxes(d, v.Body, bound, nil)
	case *Bin:
		if err := collectNestedReduceAxes(d, v.L, bound, nil); err != nil {
			return err
		}
		return collectNestedReduceAxes(d, v.R, bound, nil)
	case *Unary:
		return collectNestedReduceAxes(d, v.X, bound, nil)
	default:
		return nil
	}
}

func walkOpaque(e Scalar, fn func(*OpaqueExpr)) {
	switch v := e.(type) {
	case *OpaqueExpr:
		fn(v)
	case *Bin:
		walkOpaque(v.L, fn)
		walkOpaque(v.R, fn)
	case *Unary:
		walkOpaque(v.X, fn)
	case *ReduceExpr:
		walkOpaque(v.Body, fn)
	}
}

// computeElementwise checks that every access of every input is the identity
// mapping output-axis-i -> input-dim-i, with no reductions and no opaques.
func (d *OpDesc) computeElementwise() bool {
	if d.hasOpaque || len(d.reduceAxes) > 0 {
		return false
	}
	if _, isReduce := d.Body.(*ReduceExpr); isReduce {
		return false
	}
	for _, ta := range d.AllAccesses() {
		if ta.UnderReduce {
			return false
		}
		acc := ta.Access
		if len(acc.Index) != len(d.OutAxes) {
			return false
		}
		for i, ix := range acc.Index {
			ax, coeff, ok := ix.IsSingleAxis()
			if !ok || coeff != 1 || ix.Const != 0 || ax != d.OutAxes[i] {
				return false
			}
		}
	}
	return true
}

// String renders the description in the paper's lambda style.
func (d *OpDesc) String() string {
	ins := make([]string, len(d.Inputs))
	for i, p := range d.Inputs {
		ins[i] = fmt.Sprintf("%s/%d", p.Name, p.Rank)
	}
	return fmt.Sprintf("%s(%v) = lambda %v: %s", d.Name, ins, d.OutAxes, d.Body)
}
