package tdl

// Extended operator library: the paper's bootstrap covered 134 of MXNet
// v0.11's 139 operators, most being element-wise one-liners. This file adds
// the long tail beyond what the benchmark models strictly need — activation
// variants, arithmetic helpers, reductions over either axis, broadcasting
// scale/shift, batched linear algebra, embedding-style and normalization
// operators — so the registry's coverage is representative of a real
// framework's.

func init() {
	registerExtraElementwise()
	registerExtraReductions()
	registerBroadcastOps()
	registerBatchedLinalg()
	registerNormalization()
	registerExtraConv()
	registerExtraMisc()
}

func registerExtraElementwise() {
	// Unary activation/math family.
	for _, op := range []struct{ name, fn string }{
		{"abs", "abs"},
		{"sign", "sign"},
		{"floor", "floor"},
		{"ceil", "ceil"},
		{"round", "round"},
		{"reciprocal", "recip"},
		{"rsqrt", "rsqrt"},
		{"cbrt", "cbrt"},
		{"exp2", "exp2"},
		{"log2", "log2"},
		{"log10", "log10"},
		{"log1p", "log1p"},
		{"expm1", "expm1"},
		{"sin", "sin"},
		{"cos", "cos"},
		{"tan", "tan"},
		{"arcsin", "arcsin"},
		{"arccos", "arccos"},
		{"arctan", "arctan"},
		{"sinh", "sinh"},
		{"cosh", "cosh"},
		{"degrees", "degrees"},
		{"radians", "radians"},
		{"leaky_relu", "leaky_relu"},
		{"elu", "elu"},
		{"selu", "selu"},
		{"gelu", "gelu"},
		{"softplus", "softplus"},
		{"softsign", "softsign"},
		{"hard_sigmoid", "hard_sigmoid"},
		{"swish", "swish"},
		{"mish", "mish"},
		{"erf", "erf"},
		{"clip", "clip"}, // bounds are attrs; partitioning-invariant
		{"cast", "cast"}, // dtype change
		{"logical_not", "not"},
		{"gamma_fn", "gamma"},
		{"gammaln", "gammaln"},
		{"zeros_like", "zeros"},
		{"ones_like", "ones"},
	} {
		unaryEW(op.name, op.fn)
	}

	// Binary family.
	for _, op := range []struct {
		name string
		kind BinOpKind
	}{
		{"mod", OpDiv},   // data dependence matches division
		{"power", OpMul}, // x^y touches both elementwise
		{"hypot", OpAdd},
		{"arctan2", OpDiv},
		{"logical_and", OpMul},
		{"logical_or", OpAdd},
		{"logical_xor", OpAdd},
		{"equal", OpSub},
		{"not_equal", OpSub},
		{"greater", OpSub},
		{"greater_equal", OpSub},
		{"lesser", OpSub},
		{"lesser_equal", OpSub},
		{"smooth_l1", OpSub},
	} {
		binaryEW(op.name, op.kind)
	}

	// Fused gradient kernels for the new activations.
	for _, name := range []string{
		"leaky_relu_grad", "elu_grad", "gelu_grad", "softplus_grad",
		"swish_grad", "clip_grad", "dropout_grad",
	} {
		binaryEWFn(name, name)
	}

	// Dropout applies a precomputed mask elementwise (the mask is an input
	// tensor, so there is no data-dependent indexing).
	binaryEWFn("dropout", "dropout")

	// Ternary select: where(cond, a, b).
	ternaryEWFn("where", "select")
	// Fused momentum-SGD update: (w, g, momentum).
	ternaryEWFn("sgd_mom_update", "sgd_mom")
	// Huber/SmoothL1 gradient with weight: (x, dy, weight).
	ternaryEWFn("smooth_l1_grad", "smooth_l1_grad")
}

func registerExtraReductions() {
	i, j := Ax("i"), Ax("j")

	// reduce_<red>_axis<a>: 2-D reductions along either axis with each
	// built-in reducer — a family real frameworks expose as one op with an
	// axis attribute; the TDL description differs per axis, so the registry
	// holds them separately.
	type rd struct {
		name string
		red  Reducer
	}
	for _, r := range []rd{{"sum", Sum}, {"max", Max}, {"min", Min}, {"prod", Prod}} {
		red := r.red
		Std.MustRegisterStatic(Describe("reduce_"+r.name+"_axis1").
			In("x", 2).Out(i).
			MustIs(Reduce(red, []ReduceAxis{RVar(j, ExtentOf("x", 1))},
				At("x", i, j))))
	}
	Std.MustRegisterStatic(Describe("reduce_max_axis0").
		In("x", 2).Out(j).
		MustIs(Reduce(Max, []ReduceAxis{RVar(i, ExtentOf("x", 0))},
			At("x", i, j))))
	Std.MustRegisterStatic(Describe("reduce_min_axis0").
		In("x", 2).Out(j).
		MustIs(Reduce(Min, []ReduceAxis{RVar(i, ExtentOf("x", 0))},
			At("x", i, j))))
	Std.MustRegisterStatic(Describe("reduce_prod_axis0").
		In("x", 2).Out(j).
		MustIs(Reduce(Prod, []ReduceAxis{RVar(i, ExtentOf("x", 0))},
			At("x", i, j))))

	// L2-norm-squared per row (weight-decay bookkeeping).
	Std.MustRegisterStatic(Describe("sqnorm_axis1").
		In("x", 2).Out(i).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(j, ExtentOf("x", 1))},
			Apply("square", At("x", i, j)))))

	// Full 4-D reduction to channel statistics with Max (activation-range
	// tracking for quantization-aware training).
	n, c, y, x := Ax("n"), Ax("c"), Ax("y"), Ax("x")
	Std.MustRegisterStatic(Describe("absmax_per_channel").
		In("x", 4).Out(c).
		MustIs(Reduce(Max, []ReduceAxis{
			RVar(n, ExtentOf("x", 0)),
			RVar(y, ExtentOf("x", 2)),
			RVar(x, ExtentOf("x", 3)),
		}, Apply("abs", At("x", n, c, y, x)))))
}

func registerBroadcastOps() {
	i, j := Ax("i"), Ax("j")
	n, c, y, x := Ax("n"), Ax("c"), Ax("y"), Ax("x")

	// Row/column broadcasts over matrices.
	Std.MustRegisterStatic(Describe("broadcast_mul_row").
		In("x", 2).In("v", 1).Out(i, j).
		MustIs(Mul(At("x", i, j), At("v", j))))
	Std.MustRegisterStatic(Describe("broadcast_mul_col").
		In("x", 2).In("v", 1).Out(i, j).
		MustIs(Mul(At("x", i, j), At("v", i))))
	Std.MustRegisterStatic(Describe("broadcast_add_col").
		In("x", 2).In("v", 1).Out(i, j).
		MustIs(Add(At("x", i, j), At("v", i))))
	Std.MustRegisterStatic(Describe("broadcast_div_col").
		In("x", 2).In("v", 1).Out(i, j).
		MustIs(Div(At("x", i, j), At("v", i))))

	// Per-channel scale/shift over NCHW (the affine half of batch-norm,
	// exposed standalone the way frameworks do).
	Std.MustRegisterStatic(Describe("scale_shift_nchw").
		In("x", 4).In("gamma", 1).In("beta", 1).Out(n, c, y, x).
		MustIs(Add(Mul(At("x", n, c, y, x), At("gamma", c)), At("beta", c))))
}

func registerBatchedLinalg() {
	b, i, j, k := Ax("b"), Ax("i"), Ax("j"), Ax("k")

	// Batched matrix multiply (attention scores et al.).
	Std.MustRegisterStatic(Describe("bmm").
		In("a", 3).In("bm", 3).Out(b, i, j).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("a", 2))},
			Mul(At("a", b, i, k), At("bm", b, k, j)))))
	// Batched matmul with the second operand transposed.
	Std.MustRegisterStatic(Describe("bmm_nt").
		In("a", 3).In("bm", 3).Out(b, i, j).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("a", 2))},
			Mul(At("a", b, i, k), At("bm", b, j, k)))))
	// Batched outer product.
	Std.MustRegisterStatic(Describe("bouter").
		In("u", 2).In("v", 2).Out(b, i, j).
		MustIs(Mul(At("u", b, i), At("v", b, j))))
	// Batched transpose.
	Std.MustRegisterStatic(Describe("btranspose").
		In("x", 3).Out(b, i, j).
		MustIs(At("x", b, j, i)))
	// Batched triangular solve and LU live behind opaque functions, like
	// batch_cholesky.
	Std.MustRegisterStatic(Describe("batch_trsm").
		In("lhs", 3).In("rhs", 3).Out(b, i, j).
		MustIs(Opaque("Trsm", []string{"i", "j"},
			SliceArg{Tensor: "lhs", Dims: []SliceDim{IdxDim(Ax("b")), FullDim(), FullDim()}},
			SliceArg{Tensor: "rhs", Dims: []SliceDim{IdxDim(Ax("b")), FullDim(), FullDim()}})))
	Std.MustRegisterStatic(Describe("batch_lu").
		In("x", 3).Out(b, i, j).
		MustIs(Opaque("LU", []string{"i", "j"},
			SliceArg{Tensor: "x", Dims: []SliceDim{IdxDim(Ax("b")), FullDim(), FullDim()}})))
}

func registerNormalization() {
	i, j := Ax("i"), Ax("j")

	// Layer norm statistics: per-row mean and variance over features.
	Std.MustRegisterStatic(Describe("ln_mean").
		In("x", 2).Out(i).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(j, ExtentOf("x", 1))},
			At("x", i, j))))
	Std.MustRegisterStatic(Describe("ln_var").
		In("x", 2).In("mean", 1).Out(i).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(j, ExtentOf("x", 1))},
			Apply("square", Sub(At("x", i, j), At("mean", i))))))
	Std.MustRegisterStatic(Describe("ln_norm").
		In("x", 2).In("mean", 1).In("var", 1).In("gamma", 1).In("beta", 1).
		Out(i, j).
		MustIs(Add(
			Mul(Mul(Sub(At("x", i, j), At("mean", i)), Apply("rsqrt", At("var", i))), At("gamma", j)),
			At("beta", j))))

	// L2 normalization per row: x / ||x|| with a nested reduction, like
	// softmax's normalizer.
	k := Ax("k")
	Std.MustRegisterStatic(Describe("l2_normalize").
		In("x", 2).Out(i, j).
		MustIs(Div(
			At("x", i, j),
			Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("x", 1))},
				Apply("square", At("x", i, k))))))

	// Log-softmax (same structure as softmax).
	Std.MustRegisterStatic(Describe("log_softmax").
		In("x", 2).Out(i, j).
		MustIs(Sub(
			At("x", i, j),
			Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("x", 1))},
				Apply("exp", At("x", i, k))))))
}

func registerExtraConv() {
	n, co, ci, y, x, ky, kx := Ax("n"), Ax("co"), Ax("ci"), Ax("y"), Ax("x"), Ax("ky"), Ax("kx")

	// Depthwise convolution: one filter per channel, no channel reduction —
	// so its only reduce axes are the spatial window.
	Std.MustRegister("depthwise_conv2d", func(attrs Attrs) (*OpDesc, error) {
		s := float64(attrs.Get("stride", 1))
		return Describe("depthwise_conv2d").
			In("data", 4).In("weight", 3).Out(n, co, y, x).
			Is(Reduce(Sum, []ReduceAxis{
				RVar(ky, ExtentOf("weight", 1)),
				RVar(kx, ExtentOf("weight", 2)),
			}, Mul(
				At("data", n, co, y.Times(s).Plus(ky), x.Times(s).Plus(kx)),
				At("weight", co, ky, kx))))
	})

	// Average pooling with an explicit window (sum; the kernel scales).
	Std.MustRegister("avgpool2d", func(attrs Attrs) (*OpDesc, error) {
		s := float64(attrs.Get("stride", 2))
		k := attrs.Get("kernel", 2)
		c := Ax("c")
		return Describe("avgpool2d").
			In("data", 4).Out(n, c, y, x).
			Is(Reduce(Sum, []ReduceAxis{
				RVar(ky, ExtentConst(k)),
				RVar(kx, ExtentConst(k)),
			}, At("data", n, c, y.Times(s).Plus(ky), x.Times(s).Plus(kx))))
	})

	// Dilated convolution: the window stride enters the data index
	// coefficient (dilation d means index y + d*ky).
	Std.MustRegister("dilated_conv2d", func(attrs Attrs) (*OpDesc, error) {
		d := float64(attrs.Get("dilation", 2))
		return Describe("dilated_conv2d").
			In("data", 4).In("weight", 4).Out(n, co, y, x).
			Is(Reduce(Sum, []ReduceAxis{
				RVar(ci, ExtentOf("weight", 1)),
				RVar(ky, ExtentOf("weight", 2)),
				RVar(kx, ExtentOf("weight", 3)),
			}, Mul(
				At("data", n, ci, y.Plus(ky.Times(d)), x.Plus(kx.Times(d))),
				At("weight", co, ci, ky, kx))))
	})
}

func registerExtraMisc() {
	i, j := Ax("i"), Ax("j")

	// Row slicing (sequence-length truncation).
	Std.MustRegister("slice_axis0", func(attrs Attrs) (*OpDesc, error) {
		off := float64(attrs.Get("offset", 0))
		return Describe("slice_axis0").
			In("x", 2).Out(i, j).
			Is(At("x", i.PlusConst(off), j))
	})

	// Reverse along axis 1 (sequence reversal): index J-1-j is affine.
	Std.MustRegister("reverse_axis1", func(attrs Attrs) (*OpDesc, error) {
		width := float64(attrs.Get("width", 1))
		return Describe("reverse_axis1").
			In("x", 2).Out(i, j).
			Is(At("x", i, j.Times(-1).PlusConst(width-1)))
	})

	// Strided downsample along rows (every other row).
	Std.MustRegister("stride_rows", func(attrs Attrs) (*OpDesc, error) {
		s := float64(attrs.Get("stride", 2))
		return Describe("stride_rows").
			In("x", 2).Out(i, j).
			Is(At("x", i.Times(s), j))
	})

	// Tile rows (broadcast repeat): out[i,j] = x[0? no — x[i mod R] is not
	// affine; the affine version repeats a single row.
	Std.MustRegisterStatic(Describe("repeat_row").
		In("v", 1).Out(i, j).
		MustIs(At("v", j)))

	// Embedding-style gather is data-dependent indexing, which TDL cannot
	// express (paper Sec 9); expose it as an opaque batched op whose batch
	// dimension still partitions.
	Std.MustRegisterStatic(Describe("gather_rows").
		In("table", 2).In("ids", 2).Out(i, j).
		MustIs(Opaque("Gather", []string{"j"},
			SliceArg{Tensor: "table", Dims: []SliceDim{FullDim(), FullDim()}},
			SliceArg{Tensor: "ids", Dims: []SliceDim{IdxDim(Ax("i")), FullDim()}})))

	// One-hot expansion of dense labels is an opaque per-row op as well.
	Std.MustRegisterStatic(Describe("one_hot").
		In("ids", 2).Out(i, j).
		MustIs(Opaque("OneHot", []string{"j"},
			SliceArg{Tensor: "ids", Dims: []SliceDim{IdxDim(Ax("i")), FullDim()}})))
}
