package tdl

// Standard operator library: TDL descriptions for the operators used by the
// model zoo (WResNet, LSTM RNN, MLP), their gradients, and a few extras that
// exercise corner cases of the analyzer (opaque functions, strided windows,
// nested reductions). This mirrors the paper's bootstrap of writing TDL for
// 134 of MXNet v0.11's 139 operators: "most of them have fewer than three
// LoC" — the same holds here.

func init() {
	registerElementwise()
	registerMatmul()
	registerConv()
	registerPooling()
	registerBatchNorm()
	registerSoftmax()
	registerShapeOps()
	registerOpaqueOps()
}

// --- element-wise families ---------------------------------------------

// unaryEW registers out[i...] = fn(x[i...]) for a given rank range.
func unaryEW(name, fn string) {
	Std.MustRegister(name, func(attrs Attrs) (*OpDesc, error) {
		rank := int(attrs.Get("rank", 2))
		axes, idx := ewAxes(rank)
		return Describe(name).In("x", rank).Out(axes...).Is(Apply(fn, At("x", idx...)))
	})
}

// binaryEW registers out[i...] = x[i...] OP y[i...].
func binaryEW(name string, op BinOpKind) {
	Std.MustRegister(name, func(attrs Attrs) (*OpDesc, error) {
		rank := int(attrs.Get("rank", 2))
		axes, idx := ewAxes(rank)
		return Describe(name).In("x", rank).In("y", rank).Out(axes...).
			Is(&Bin{Op: op, L: At("x", idx...), R: At("y", idx...)})
	})
}

// binaryEWFn registers out[i...] = fn(x[i...], y[i...]) where fn is an
// uninterpreted scalar function (e.g. a fused gradient kernel).
func binaryEWFn(name, fn string) {
	Std.MustRegister(name, func(attrs Attrs) (*OpDesc, error) {
		rank := int(attrs.Get("rank", 2))
		axes, idx := ewAxes(rank)
		return Describe(name).In("x", rank).In("y", rank).Out(axes...).
			Is(Apply(fn, Add(At("x", idx...), At("y", idx...))))
	})
}

// ternaryEWFn registers out[i...] = fn(x, y, z) elementwise.
func ternaryEWFn(name, fn string) {
	Std.MustRegister(name, func(attrs Attrs) (*OpDesc, error) {
		rank := int(attrs.Get("rank", 2))
		axes, idx := ewAxes(rank)
		return Describe(name).In("x", rank).In("y", rank).In("z", rank).Out(axes...).
			Is(Apply(fn, Add(At("x", idx...), Add(At("y", idx...), At("z", idx...)))))
	})
}

func ewAxes(rank int) ([]Index, []Index) {
	names := []string{"i", "j", "k", "l", "m", "n"}
	axes := make([]Index, rank)
	for i := 0; i < rank; i++ {
		axes[i] = Ax(names[i])
	}
	return axes, axes
}

func registerElementwise() {
	unaryEW("identity", "id")
	unaryEW("negate", "neg")
	unaryEW("relu", "relu")
	unaryEW("sigmoid", "sigmoid")
	unaryEW("tanh", "tanh")
	unaryEW("exp", "exp")
	unaryEW("log", "log")
	unaryEW("sqrt", "sqrt")
	unaryEW("square", "square")
	unaryEW("scale", "scale") // x * const; the constant is partition-invariant

	binaryEW("add", OpAdd)
	binaryEW("sub", OpSub)
	binaryEW("mul", OpMul)
	binaryEW("div", OpDiv)
	binaryEW("maximum", OpMax)
	binaryEW("minimum", OpMin)

	binaryEWFn("relu_grad", "relu_grad")       // (x, dy)
	binaryEWFn("sigmoid_grad", "sigmoid_grad") // (y, dy)
	binaryEWFn("tanh_grad", "tanh_grad")       // (y, dy)
	binaryEWFn("sgd_update", "sgd")            // (w, g)
	ternaryEWFn("adam_update", "adam")         // (w, g, hist)
	ternaryEWFn("fma", "fma")                  // x*y + z fused
}

// --- matrix multiplication ----------------------------------------------

func registerMatmul() {
	i, j, k := Ax("i"), Ax("j"), Ax("k")

	// C[i,j] = Sum_k A[i,k] * B[k,j]
	Std.MustRegisterStatic(Describe("matmul").
		In("a", 2).In("b", 2).Out(i, j).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("a", 1))},
			Mul(At("a", i, k), At("b", k, j)))))

	// C[i,j] = Sum_k A[i,k] * B[j,k]   (B transposed; dX of a matmul)
	Std.MustRegisterStatic(Describe("matmul_nt").
		In("a", 2).In("b", 2).Out(i, j).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("a", 1))},
			Mul(At("a", i, k), At("b", j, k)))))

	// C[i,j] = Sum_k A[k,i] * B[k,j]   (A transposed; dW of a matmul)
	Std.MustRegisterStatic(Describe("matmul_tn").
		In("a", 2).In("b", 2).Out(i, j).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("a", 0))},
			Mul(At("a", k, i), At("b", k, j)))))

	// Y[i,j] = X[i,j] + bias[j]
	Std.MustRegisterStatic(Describe("bias_add").
		In("x", 2).In("bias", 1).Out(i, j).
		MustIs(Add(At("x", i, j), At("bias", j))))

	// db[j] = Sum_i dY[i,j]
	Std.MustRegisterStatic(Describe("reduce_sum_axis0").
		In("x", 2).Out(j).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(i, ExtentOf("x", 0))},
			At("x", i, j))))

	// Y[i,j] = X[j,i]
	Std.MustRegisterStatic(Describe("transpose").
		In("x", 2).Out(i, j).
		MustIs(At("x", j, i)))
}

// --- convolution ----------------------------------------------------------

func registerConv() {
	n, co, ci := Ax("n"), Ax("co"), Ax("ci")
	y, x, ky, kx := Ax("y"), Ax("x"), Ax("ky"), Ax("kx")

	// out[n,co,y,x] = Sum_{ci,ky,kx} data[n,ci,s·y+ky,s·x+kx] * w[co,ci,ky,kx]
	Std.MustRegister("conv2d", func(attrs Attrs) (*OpDesc, error) {
		s := float64(attrs.Get("stride", 1))
		return Describe("conv2d").
			In("data", 4).In("weight", 4).Out(n, co, y, x).
			Is(Reduce(Sum, []ReduceAxis{
				RVar(ci, ExtentOf("weight", 1)),
				RVar(ky, ExtentOf("weight", 2)),
				RVar(kx, ExtentOf("weight", 3)),
			}, Mul(
				At("data", n, ci, y.Times(s).Plus(ky), x.Times(s).Plus(kx)),
				At("weight", co, ci, ky, kx))))
	})

	// dData[n,ci,y,x] = Sum_{co,ky,kx} dY[n,co,y-ky,x-kx] * w[co,ci,ky,kx]
	Std.MustRegister("conv2d_bwd_data", func(attrs Attrs) (*OpDesc, error) {
		s := float64(attrs.Get("stride", 1))
		return Describe("conv2d_bwd_data").
			In("dy", 4).In("weight", 4).Out(n, ci, y, x).
			Is(Reduce(Sum, []ReduceAxis{
				RVar(co, ExtentOf("weight", 0)),
				RVar(ky, ExtentOf("weight", 2)),
				RVar(kx, ExtentOf("weight", 3)),
			}, Mul(
				At("dy", n, co, y.Times(1/s).Minus(ky), x.Times(1/s).Minus(kx)),
				At("weight", co, ci, ky, kx))))
	})

	// dW[co,ci,ky,kx] = Sum_{n,y,x} dY[n,co,y,x] * data[n,ci,s·y+ky,s·x+kx]
	Std.MustRegister("conv2d_bwd_weight", func(attrs Attrs) (*OpDesc, error) {
		s := float64(attrs.Get("stride", 1))
		return Describe("conv2d_bwd_weight").
			In("dy", 4).In("data", 4).Out(co, ci, ky, kx).
			Is(Reduce(Sum, []ReduceAxis{
				RVar(n, ExtentOf("dy", 0)),
				RVar(y, ExtentOf("dy", 2)),
				RVar(x, ExtentOf("dy", 3)),
			}, Mul(
				At("dy", n, co, y, x),
				At("data", n, ci, y.Times(s).Plus(ky), x.Times(s).Plus(kx)))))
	})

	// 1-D convolution, the paper's running example (Fig 1, Fig 3).
	b, dx := Ax("b"), Ax("dx")
	Std.MustRegisterStatic(Describe("conv1d").
		In("data", 3).In("filters", 3).Out(b, co, x).
		MustIs(Reduce(Sum, []ReduceAxis{
			RVar(ci, ExtentOf("filters", 0)),
			RVar(dx, ExtentOf("filters", 2)),
		}, Mul(
			At("data", b, ci, x.Plus(dx)),
			At("filters", ci, co, dx)))))
}

// --- pooling ---------------------------------------------------------------

func registerPooling() {
	n, c, y, x, ky, kx := Ax("n"), Ax("c"), Ax("y"), Ax("x"), Ax("ky"), Ax("kx")

	// out[n,c,y,x] = Max_{ky,kx} data[n,c,s·y+ky,s·x+kx]
	Std.MustRegister("maxpool2d", func(attrs Attrs) (*OpDesc, error) {
		s := float64(attrs.Get("stride", 2))
		k := attrs.Get("kernel", 2)
		return Describe("maxpool2d").
			In("data", 4).Out(n, c, y, x).
			Is(Reduce(Max, []ReduceAxis{
				RVar(ky, ExtentConst(k)),
				RVar(kx, ExtentConst(k)),
			}, At("data", n, c, y.Times(s).Plus(ky), x.Times(s).Plus(kx))))
	})

	// dData[n,c,y,x] = pool_grad(data[n,c,y,x], dY[n,c,y/s,x/s])
	Std.MustRegister("maxpool2d_grad", func(attrs Attrs) (*OpDesc, error) {
		s := float64(attrs.Get("stride", 2))
		return Describe("maxpool2d_grad").
			In("data", 4).In("dy", 4).Out(n, c, y, x).
			Is(Apply("pool_grad", Add(
				At("data", n, c, y, x),
				At("dy", n, c, y.Times(1/s), x.Times(1/s)))))
	})

	// out[n,c] = Sum_{y,x} data[n,c,y,x]  (global average pool, pre-scale)
	Std.MustRegisterStatic(Describe("global_avgpool").
		In("data", 4).Out(n, c).
		MustIs(Reduce(Sum, []ReduceAxis{
			RVar(y, ExtentOf("data", 2)),
			RVar(x, ExtentOf("data", 3)),
		}, At("data", n, c, y, x))))

	// dData[n,c,y,x] = dY[n,c] / (H·W)
	Std.MustRegisterStatic(Describe("global_avgpool_grad").
		In("dy", 2).Out(n, c, y, x).
		MustIs(Apply("scale", At("dy", n, c))))
}

// --- batch normalization -----------------------------------------------

func registerBatchNorm() {
	n, c, y, x := Ax("n"), Ax("c"), Ax("y"), Ax("x")

	// mean[c] = Sum_{n,y,x} X[n,c,y,x]  (scaled by 1/(N·H·W) in the kernel)
	Std.MustRegisterStatic(Describe("bn_mean").
		In("x", 4).Out(c).
		MustIs(Reduce(Sum, []ReduceAxis{
			RVar(n, ExtentOf("x", 0)),
			RVar(y, ExtentOf("x", 2)),
			RVar(x, ExtentOf("x", 3)),
		}, At("x", n, c, y, x))))

	// var[c] = Sum_{n,y,x} (X[n,c,y,x] - mean[c])²
	Std.MustRegisterStatic(Describe("bn_var").
		In("x", 4).In("mean", 1).Out(c).
		MustIs(Reduce(Sum, []ReduceAxis{
			RVar(n, ExtentOf("x", 0)),
			RVar(y, ExtentOf("x", 2)),
			RVar(x, ExtentOf("x", 3)),
		}, Apply("square", Sub(At("x", n, c, y, x), At("mean", c))))))

	// Y[n,c,y,x] = (X - mean[c])·rsqrt(var[c])·gamma[c] + beta[c]
	Std.MustRegisterStatic(Describe("bn_norm").
		In("x", 4).In("mean", 1).In("var", 1).In("gamma", 1).In("beta", 1).
		Out(n, c, y, x).
		MustIs(Add(
			Mul(Mul(Sub(At("x", n, c, y, x), At("mean", c)), Apply("rsqrt", At("var", c))), At("gamma", c)),
			At("beta", c))))

	// dGamma[c] = Sum_{n,y,x} dY[n,c,y,x]·xhat[n,c,y,x]
	Std.MustRegisterStatic(Describe("bn_gamma_grad").
		In("dy", 4).In("xhat", 4).Out(c).
		MustIs(Reduce(Sum, []ReduceAxis{
			RVar(n, ExtentOf("dy", 0)),
			RVar(y, ExtentOf("dy", 2)),
			RVar(x, ExtentOf("dy", 3)),
		}, Mul(At("dy", n, c, y, x), At("xhat", n, c, y, x)))))

	// dBeta[c] = Sum_{n,y,x} dY[n,c,y,x]
	Std.MustRegisterStatic(Describe("bn_beta_grad").
		In("dy", 4).Out(c).
		MustIs(Reduce(Sum, []ReduceAxis{
			RVar(n, ExtentOf("dy", 0)),
			RVar(y, ExtentOf("dy", 2)),
			RVar(x, ExtentOf("dy", 3)),
		}, At("dy", n, c, y, x))))

	// dX[n,c,y,x] = bn_dx(dY, X, mean[c], var[c], gamma[c]) — per-channel
	// elementwise combination of already-reduced statistics.
	Std.MustRegisterStatic(Describe("bn_data_grad").
		In("dy", 4).In("x", 4).In("mean", 1).In("var", 1).In("gamma", 1).
		Out(n, c, y, x).
		MustIs(Apply("bn_dx", Add(
			Mul(At("dy", n, c, y, x), At("gamma", c)),
			Mul(Sub(At("x", n, c, y, x), At("mean", c)), Apply("rsqrt", At("var", c)))))))
}

// --- softmax / loss -------------------------------------------------------

func registerSoftmax() {
	i, j, k := Ax("i"), Ax("j"), Ax("k")

	// Y[i,j] = exp(X[i,j]) / Sum_k exp(X[i,k]) — the normalizer is a nested
	// (non-top-level) reduction, so softmax has no output-reduction strategy.
	Std.MustRegisterStatic(Describe("softmax").
		In("x", 2).Out(i, j).
		MustIs(Div(
			Apply("exp", At("x", i, j)),
			Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("x", 1))},
				Apply("exp", At("x", i, k))))))

	// dX[i,j] = Y[i,j] - labels[i,j] (dense one-hot labels)
	Std.MustRegisterStatic(Describe("softmax_ce_grad").
		In("y", 2).In("labels", 2).Out(i, j).
		MustIs(Sub(At("y", i, j), At("labels", i, j))))
}

// --- shape manipulation -----------------------------------------------

func registerShapeOps() {
	i, j := Ax("i"), Ax("j")

	// Y[i,j] = X[i, j+offset] — gate slicing for LSTM cells.
	Std.MustRegister("slice_axis1", func(attrs Attrs) (*OpDesc, error) {
		off := float64(attrs.Get("offset", 0))
		return Describe("slice_axis1").
			In("x", 2).Out(i, j).
			Is(At("x", i, j.PlusConst(off)))
	})

	// dX[i,j] = dY[i, j-offset] (zero outside the slice; scatter of a slice).
	Std.MustRegister("slice_axis1_grad", func(attrs Attrs) (*OpDesc, error) {
		off := float64(attrs.Get("offset", 0))
		return Describe("slice_axis1_grad").
			In("dy", 2).Out(i, j).
			Is(At("dy", i, j.PlusConst(-off)))
	})
}

// --- opaque functions -------------------------------------------------

func registerOpaqueOps() {
	b, i, j := Ax("b"), Ax("i"), Ax("j")

	// The paper's opaque example (Fig 3): batched Cholesky. Only the batch
	// dimension is partitionable.
	Std.MustRegisterStatic(Describe("batch_cholesky").
		In("batch_mat", 3).Out(b, i, j).
		MustIs(Opaque("Cholesky", []string{"i", "j"},
			SliceArg{Tensor: "batch_mat", Dims: []SliceDim{IdxDim(Ax("b")), FullDim(), FullDim()}})))

	// Batched matrix inverse: same partitioning structure.
	Std.MustRegisterStatic(Describe("batch_inverse").
		In("batch_mat", 3).Out(b, i, j).
		MustIs(Opaque("Inverse", []string{"i", "j"},
			SliceArg{Tensor: "batch_mat", Dims: []SliceDim{IdxDim(Ax("b")), FullDim(), FullDim()}})))
}
