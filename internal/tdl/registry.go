package tdl

import (
	"fmt"
	"sort"
	"sync"
)

// Attrs carries per-instance operator attributes (stride, offset, axis, ...)
// that parameterize the TDL description. Attributes never make an index
// expression non-affine: they only set constant coefficients and offsets.
type Attrs map[string]int64

// Get returns attrs[key] or def when absent.
func (a Attrs) Get(key string, def int64) int64 {
	if a == nil {
		return def
	}
	if v, ok := a[key]; ok {
		return v
	}
	return def
}

// DescFn builds the TDL description of an operator instance from its
// attributes. Most operators ignore attrs entirely.
type DescFn func(attrs Attrs) (*OpDesc, error)

// Registry maps operator names to description builders, the way the Tofu
// prototype keeps one TDL description per MXNet operator.
type Registry struct {
	mu   sync.RWMutex
	desc map[string]DescFn
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{desc: make(map[string]DescFn)}
}

// Register installs a description builder; duplicate names are an error so
// operator libraries cannot silently shadow one another.
func (r *Registry) Register(name string, fn DescFn) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.desc[name]; dup {
		return fmt.Errorf("tdl: operator %q already registered", name)
	}
	r.desc[name] = fn
	return nil
}

// MustRegister is Register that panics; for init-time operator tables.
func (r *Registry) MustRegister(name string, fn DescFn) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// RegisterStatic installs a fixed description that ignores attributes.
func (r *Registry) RegisterStatic(d *OpDesc) error {
	return r.Register(d.Name, func(Attrs) (*OpDesc, error) { return d, nil })
}

// Describe returns the TDL description for an operator instance.
func (r *Registry) Describe(name string, attrs Attrs) (*OpDesc, error) {
	r.mu.RLock()
	fn, ok := r.desc[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tdl: operator %q has no TDL description", name)
	}
	d, err := fn(attrs)
	if err != nil {
		return nil, fmt.Errorf("tdl: describing %q: %w", name, err)
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Has reports whether the operator has a registered description.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.desc[name]
	return ok
}

// Names returns all registered operator names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.desc))
	for n := range r.desc {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Std is the default registry holding the standard operator library; it is
// populated by stdops.go at init time.
var Std = NewRegistry()
