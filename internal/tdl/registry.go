package tdl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Attrs carries per-instance operator attributes (stride, offset, axis, ...)
// that parameterize the TDL description. Attributes never make an index
// expression non-affine: they only set constant coefficients and offsets.
type Attrs map[string]int64

// Get returns attrs[key] or def when absent.
func (a Attrs) Get(key string, def int64) int64 {
	if a == nil {
		return def
	}
	if v, ok := a[key]; ok {
		return v
	}
	return def
}

// DescFn builds the TDL description of an operator instance from its
// attributes. Most operators ignore attrs entirely.
type DescFn func(attrs Attrs) (*OpDesc, error)

// Registry maps operator names to description builders, the way the Tofu
// prototype keeps one TDL description per MXNet operator. Built
// descriptions are memoized per (name, attrs) — they are immutable once
// validated (RegisterStatic always returned a shared instance), and graph
// passes ask for the same handful of descriptions thousands of times.
type Registry struct {
	mu    sync.RWMutex
	desc  map[string]DescFn
	cache map[descCacheKey]*OpDesc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{desc: make(map[string]DescFn), cache: make(map[descCacheKey]*OpDesc)}
}

// descCacheKey is the memoization signature of an operator instance: its
// name plus the attribute signature.
type descCacheKey struct {
	name  string
	attrs AttrsKey
}

// AttrsKey is a comparable signature of an attribute set: up to four
// (name, value) pairs inlined in sorted order, so building one never
// allocates; larger sets (none exist in the standard operator library)
// spill deterministically into a sorted string. Shared by every pass that
// buckets operator instances by attributes (the description cache here,
// coarsening's slot merge).
type AttrsKey struct {
	N              int
	K0, K1, K2, K3 string
	V0, V1, V2, V3 int64
	Spill          string
}

// MakeAttrsKey builds the signature of an attribute set.
func MakeAttrsKey(attrs Attrs) AttrsKey {
	key := AttrsKey{N: len(attrs)}
	if len(attrs) == 0 {
		return key
	}
	if len(attrs) > 4 {
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k)
			sb.WriteByte('=')
			sb.WriteString(strconv.FormatInt(attrs[k], 10))
			sb.WriteByte(';')
		}
		key.Spill = sb.String()
		return key
	}
	var ks [4]string
	var vs [4]int64
	i := 0
	for k, v := range attrs {
		j := i
		for j > 0 && ks[j-1] > k {
			ks[j], vs[j] = ks[j-1], vs[j-1]
			j--
		}
		ks[j], vs[j] = k, v
		i++
	}
	key.K0, key.K1, key.K2, key.K3 = ks[0], ks[1], ks[2], ks[3]
	key.V0, key.V1, key.V2, key.V3 = vs[0], vs[1], vs[2], vs[3]
	return key
}

// Register installs a description builder; duplicate names are an error so
// operator libraries cannot silently shadow one another.
func (r *Registry) Register(name string, fn DescFn) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.desc[name]; dup {
		return fmt.Errorf("tdl: operator %q already registered", name)
	}
	r.desc[name] = fn
	return nil
}

// MustRegister is Register that panics; for init-time operator tables.
func (r *Registry) MustRegister(name string, fn DescFn) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// RegisterStatic installs a fixed description that ignores attributes.
func (r *Registry) RegisterStatic(d *OpDesc) error {
	return r.Register(d.Name, func(Attrs) (*OpDesc, error) { return d, nil })
}

// MustRegisterStatic is RegisterStatic that panics; for the init-time
// operator tables, where a duplicate name is a programming error that must
// not be silently dropped (tofu-vet's errdrop gate enforces this).
func (r *Registry) MustRegisterStatic(d *OpDesc) {
	if err := r.RegisterStatic(d); err != nil {
		panic(err)
	}
}

// Describe returns the TDL description for an operator instance. The
// returned description is shared and must be treated as read-only.
func (r *Registry) Describe(name string, attrs Attrs) (*OpDesc, error) {
	key := descCacheKey{name: name, attrs: MakeAttrsKey(attrs)}
	r.mu.RLock()
	d, hit := r.cache[key]
	fn, ok := r.desc[name]
	r.mu.RUnlock()
	if hit {
		return d, nil
	}
	if !ok {
		return nil, fmt.Errorf("tdl: operator %q has no TDL description", name)
	}
	d, err := fn(attrs)
	if err != nil {
		return nil, fmt.Errorf("tdl: describing %q: %w", name, err)
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[key] = d
	r.mu.Unlock()
	return d, nil
}

// Has reports whether the operator has a registered description.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.desc[name]
	return ok
}

// Names returns all registered operator names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.desc))
	for n := range r.desc {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Std is the default registry holding the standard operator library; it is
// populated by stdops.go at init time.
var Std = NewRegistry()
