package tdl

import (
	"strings"
	"testing"
	"testing/quick"

	"tofu/internal/interval"
)

func conv1dDesc(t *testing.T) *OpDesc {
	t.Helper()
	d, err := Std.Describe("conv1d", nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConv1dDescription(t *testing.T) {
	d := conv1dDesc(t)
	if got := len(d.OutAxes); got != 3 {
		t.Fatalf("conv1d OutAxes = %d, want 3", got)
	}
	if d.TopReducer() != Sum {
		t.Fatalf("conv1d reducer = %v", d.TopReducer())
	}
	if got := len(d.ReduceAxes()); got != 2 {
		t.Fatalf("conv1d reduce axes = %d, want 2 (ci, dx)", got)
	}
	if d.IsElementwise() {
		t.Fatal("conv1d must not be elementwise")
	}
	if d.HasOpaque() {
		t.Fatal("conv1d is not opaque")
	}
}

func TestElementwiseDetection(t *testing.T) {
	ew := []string{"relu", "add", "mul", "sigmoid", "tanh", "sgd_update", "adam_update"}
	for _, name := range ew {
		d, err := Std.Describe(name, Attrs{"rank": 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !d.IsElementwise() {
			t.Errorf("%s should be elementwise", name)
		}
	}
	notEW := []string{"matmul", "conv2d", "bias_add", "transpose", "softmax", "batch_cholesky"}
	for _, name := range notEW {
		d, err := Std.Describe(name, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.IsElementwise() {
			t.Errorf("%s must not be elementwise", name)
		}
	}
	// A slice with a non-zero offset shifts indices and must not coalesce as
	// elementwise; with offset 0 it degenerates to the identity map.
	d, err := Std.Describe("slice_axis1", Attrs{"offset": 64})
	if err != nil {
		t.Fatal(err)
	}
	if d.IsElementwise() {
		t.Error("offset slice must not be elementwise")
	}
}

func TestElementwiseRanks(t *testing.T) {
	for rank := 1; rank <= 4; rank++ {
		d, err := Std.Describe("relu", Attrs{"rank": int64(rank)})
		if err != nil {
			t.Fatalf("relu rank %d: %v", rank, err)
		}
		if len(d.OutAxes) != rank || !d.IsElementwise() {
			t.Errorf("relu rank %d: axes=%d ew=%v", rank, len(d.OutAxes), d.IsElementwise())
		}
	}
}

func TestOpaqueCholesky(t *testing.T) {
	d, err := Std.Describe("batch_cholesky", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasOpaque() {
		t.Fatal("batch_cholesky should use an opaque function")
	}
	if d.OpaqueOutAxis("b") {
		t.Error("batch axis b must stay partitionable")
	}
	if !d.OpaqueOutAxis("i") || !d.OpaqueOutAxis("j") {
		t.Error("matrix axes i,j must be marked opaque")
	}
}

func TestSliceOffsetAttr(t *testing.T) {
	d, err := Std.Describe("slice_axis1", Attrs{"offset": 4096})
	if err != nil {
		t.Fatal(err)
	}
	accs := d.AllAccesses()
	if len(accs) != 1 {
		t.Fatalf("slice has %d accesses", len(accs))
	}
	idx := accs[0].Access.Index[1]
	if idx.Const != 4096 {
		t.Fatalf("slice offset folded to %g", idx.Const)
	}
}

func TestIndexArithmetic(t *testing.T) {
	x, dx := Ax("x"), Ax("dx")
	e := x.Times(2).Plus(dx).PlusConst(1)
	if c := e.CoeffOf("x"); c != 2 {
		t.Errorf("coeff x = %g", c)
	}
	if c := e.CoeffOf("dx"); c != 1 {
		t.Errorf("coeff dx = %g", c)
	}
	if e.Const != 1 {
		t.Errorf("const = %g", e.Const)
	}
	if got := len(e.Axes()); got != 2 {
		t.Errorf("axes = %d", got)
	}
	if _, _, ok := e.IsSingleAxis(); ok {
		t.Error("2x+dx+1 is not single-axis")
	}
	m := x.Minus(x)
	if len(m.Terms) != 0 {
		t.Errorf("x-x should cancel, got %v", m)
	}
}

func TestIndexEval(t *testing.T) {
	sp := interval.NewSpace("x", "dx")
	xv, _ := interval.Variable(sp, "x")
	dv, _ := interval.Variable(sp, "dx")
	env := map[string]interval.Interval{"x": xv, "dx": dv}
	e := Ax("x").Plus(Ax("dx"))
	iv, err := e.Eval(sp, env)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := iv.Concretize([]float64{10, 3})
	if lo != 0 || hi != 13 {
		t.Fatalf("x+dx over (10,3) = [%g,%g]", lo, hi)
	}
	if _, err := Ax("unbound").Eval(sp, env); err == nil {
		t.Fatal("expected unbound-axis error")
	}
}

// Property: Plus/Minus on Index behave like vector addition of coefficient
// maps, for arbitrary coefficient choices.
func TestQuickIndexLinear(t *testing.T) {
	f := func(a, b int8) bool {
		x := Ax("x").Times(float64(a))
		y := Ax("y").Times(float64(b))
		s := x.Plus(y).Minus(y)
		return s.CoeffOf("x") == float64(a) && s.CoeffOf("y") == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	i, j := Ax("i"), Ax("j")

	// Unknown tensor access.
	if _, err := Describe("bad1").In("x", 2).Out(i, j).Is(At("y", i, j)); err == nil {
		t.Error("expected undeclared-input error")
	}
	// Rank mismatch.
	if _, err := Describe("bad2").In("x", 2).Out(i, j).Is(At("x", i)); err == nil {
		t.Error("expected rank error")
	}
	// Unbound axis.
	if _, err := Describe("bad3").In("x", 2).Out(i).Is(At("x", i, j)); err == nil {
		t.Error("expected unbound-axis error")
	}
	// Duplicate output axes.
	if _, err := Describe("bad4").In("x", 2).Out(i, i).Is(At("x", i, i)); err == nil {
		t.Error("expected duplicate-axis error")
	}
	// Missing body.
	if _, err := Describe("bad5").In("x", 1).Out(i).Is(nil); err == nil {
		t.Error("expected missing-body error")
	}
	// Reduction axis clashing with output axis.
	if _, err := Describe("bad6").In("x", 2).Out(i).Is(
		Reduce(Sum, []ReduceAxis{RVar(i, ExtentOf("x", 0))}, At("x", i, i))); err == nil {
		t.Error("expected out/reduce clash error")
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	d := Describe("t_op").In("x", 1).Out(Ax("i")).MustIs(At("x", Ax("i")))
	if err := r.RegisterStatic(d); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterStatic(d); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if !r.Has("t_op") || r.Has("nope") {
		t.Fatal("Has is wrong")
	}
	if _, err := r.Describe("nope", nil); err == nil {
		t.Fatal("expected missing-op error")
	}
	got, err := r.Describe("t_op", nil)
	if err != nil || got.Name != "t_op" {
		t.Fatalf("Describe = %v, %v", got, err)
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "t_op" {
		t.Fatalf("Names = %v", names)
	}
}

func TestStdRegistryCoverage(t *testing.T) {
	// Every operator the model zoo emits must be describable; spot-check
	// core names and that the registry is reasonably large.
	need := []string{
		"matmul", "matmul_nt", "matmul_tn", "bias_add", "reduce_sum_axis0",
		"conv2d", "conv2d_bwd_data", "conv2d_bwd_weight", "conv1d",
		"maxpool2d", "maxpool2d_grad", "global_avgpool", "global_avgpool_grad",
		"bn_mean", "bn_var", "bn_norm", "bn_gamma_grad", "bn_beta_grad", "bn_data_grad",
		"softmax", "softmax_ce_grad", "slice_axis1", "slice_axis1_grad",
		"add", "sub", "mul", "div", "relu", "relu_grad", "sigmoid", "sigmoid_grad",
		"tanh", "tanh_grad", "sgd_update", "adam_update", "transpose",
	}
	for _, n := range need {
		if !Std.Has(n) {
			t.Errorf("standard registry missing %q", n)
		}
		if _, err := Std.Describe(n, nil); err != nil {
			t.Errorf("describe %q: %v", n, err)
		}
	}
	if got := len(Std.Names()); got < 35 {
		t.Errorf("standard registry has only %d ops", got)
	}
}

func TestNestedReduceSoftmax(t *testing.T) {
	d, err := Std.Describe("softmax", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.TopReducer() != NoReduce {
		t.Fatal("softmax top-level must not be a reduction")
	}
	if len(d.NestedReduceAxes()) != 1 {
		t.Fatalf("softmax nested reduce axes = %d", len(d.NestedReduceAxes()))
	}
}

func TestAttrsGet(t *testing.T) {
	var a Attrs
	if a.Get("x", 7) != 7 {
		t.Error("nil attrs default")
	}
	a = Attrs{"x": 3}
	if a.Get("x", 7) != 3 || a.Get("y", 9) != 9 {
		t.Error("attrs lookup")
	}
}

func TestStringRendering(t *testing.T) {
	d := conv1dDesc(t)
	s := d.String()
	for _, frag := range []string{"conv1d", "Sum", "data", "filters"} {
		if !strings.Contains(s, frag) {
			t.Errorf("description %q missing %q", s, frag)
		}
	}
	if got := Sum.String(); got != "Sum" {
		t.Errorf("reducer string %q", got)
	}
}

func TestStridedConvIndices(t *testing.T) {
	d, err := Std.Describe("conv2d", Attrs{"stride": 2})
	if err != nil {
		t.Fatal(err)
	}
	// data access dim 2 must be 2·y + ky.
	var dataIdx Index
	for _, ta := range d.AllAccesses() {
		if ta.Access.Tensor == "data" {
			dataIdx = ta.Access.Index[2]
		}
	}
	if dataIdx.CoeffOf("y") != 2 || dataIdx.CoeffOf("ky") != 1 {
		t.Fatalf("strided conv index = %v", dataIdx)
	}
}
