// Package tdl implements Tofu's Tensor Description Language (EuroSys'19,
// Sec 4.1) as a Go expression-builder DSL. TDL follows Halide's
// "tensor-as-a-lambda" idea: an operator's output tensor is a lambda from
// index variables to a value expression over the operator's inputs. TDL is
// deliberately not Turing-complete — no loops, no recursion, no
// data-dependent indexing — which is exactly what makes the partition
// analysis in internal/partition decidable.
//
// The original prototype embeds TDL in Python:
//
//	@tofu.op
//	def conv1d(data, filters):
//	    return lambda b, co, x: Sum(lambda ci, dx:
//	        data[b, ci, x+dx] * filters[ci, co, dx])
//
// The equivalent description with this package:
//
//	b, co, x := tdl.Ax("b"), tdl.Ax("co"), tdl.Ax("x")
//	ci, dx := tdl.Ax("ci"), tdl.Ax("dx")
//	desc := tdl.Describe("conv1d").
//	    In("data", 3).In("filters", 3).
//	    Out(b, co, x).
//	    Reduce(tdl.Sum,
//	        tdl.RVar(ci, tdl.ExtentOf("data", 1)),
//	        tdl.RVar(dx, tdl.ExtentOf("filters", 2))).
//	    Is(tdl.Mul(
//	        tdl.At("data", b, ci, x.Plus(dx)),
//	        tdl.At("filters", ci, co, dx)))
package tdl

import (
	"fmt"
	"sort"
	"strings"

	"tofu/internal/interval"
)

// Reducer is a commutative, associative aggregation function; Tofu's
// built-ins (Sec 4.1).
type Reducer int

const (
	NoReduce Reducer = iota
	Sum
	Max
	Min
	Prod
)

func (r Reducer) String() string {
	switch r {
	case NoReduce:
		return "none"
	case Sum:
		return "Sum"
	case Max:
		return "Max"
	case Min:
		return "Min"
	case Prod:
		return "Prod"
	default:
		return fmt.Sprintf("Reducer(%d)", int(r))
	}
}

// Index is an affine index expression: Σ coeff·axis + Const. TDL restricts
// tensor indices to affine forms; this representation makes the restriction
// structural (a non-affine index simply cannot be built).
type Index struct {
	Terms []IndexTerm // sorted by axis name, no zero coefficients
	Const float64
}

// IndexTerm is one axis contribution to an affine index expression.
type IndexTerm struct {
	Axis  string
	Coeff float64
}

// Ax returns the index expression consisting of the single axis variable.
func Ax(name string) Index {
	return Index{Terms: []IndexTerm{{Axis: name, Coeff: 1}}}
}

// IdxConst returns the constant index expression c.
func IdxConst(c float64) Index { return Index{Const: c} }

// Plus returns i + o.
func (i Index) Plus(o Index) Index { return i.combine(o, 1) }

// Minus returns i - o.
func (i Index) Minus(o Index) Index { return i.combine(o, -1) }

// PlusConst returns i + c.
func (i Index) PlusConst(c float64) Index {
	out := i.clone()
	out.Const += c
	return out
}

// Times returns i scaled by the constant k (e.g. strided convolution 2y+ky).
func (i Index) Times(k float64) Index {
	out := Index{Const: i.Const * k}
	for _, t := range i.Terms {
		if t.Coeff*k != 0 {
			out.Terms = append(out.Terms, IndexTerm{Axis: t.Axis, Coeff: t.Coeff * k})
		}
	}
	return out
}

func (i Index) clone() Index {
	out := Index{Const: i.Const, Terms: make([]IndexTerm, len(i.Terms))}
	copy(out.Terms, i.Terms)
	return out
}

func (i Index) combine(o Index, sign float64) Index {
	coeff := make(map[string]float64, len(i.Terms)+len(o.Terms))
	for _, t := range i.Terms {
		coeff[t.Axis] += t.Coeff
	}
	for _, t := range o.Terms {
		coeff[t.Axis] += sign * t.Coeff
	}
	names := make([]string, 0, len(coeff))
	for n, c := range coeff {
		if c != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := Index{Const: i.Const + sign*o.Const}
	for _, n := range names {
		out.Terms = append(out.Terms, IndexTerm{Axis: n, Coeff: coeff[n]})
	}
	return out
}

// CoeffOf returns the coefficient of the named axis (0 if absent).
func (i Index) CoeffOf(axis string) float64 {
	for _, t := range i.Terms {
		if t.Axis == axis {
			return t.Coeff
		}
	}
	return 0
}

// Axes returns the names of all axes the index expression references.
func (i Index) Axes() []string {
	out := make([]string, len(i.Terms))
	for j, t := range i.Terms {
		out[j] = t.Axis
	}
	return out
}

// IsSingleAxis reports whether the expression is exactly coeff·axis + const
// over a single axis, returning the axis and coefficient.
func (i Index) IsSingleAxis() (axis string, coeff float64, ok bool) {
	if len(i.Terms) != 1 {
		return "", 0, false
	}
	return i.Terms[0].Axis, i.Terms[0].Coeff, true
}

// Eval evaluates the affine index expression in the symbolic interval
// domain, given an environment mapping axis names to their intervals. This
// is the "symbolic execution" of Sec 4.2 specialized to index expressions.
func (i Index) Eval(sp *interval.Space, env map[string]interval.Interval) (interval.Interval, error) {
	acc := interval.Const(sp, i.Const)
	for _, t := range i.Terms {
		iv, ok := env[t.Axis]
		if !ok {
			return interval.Interval{}, fmt.Errorf("tdl: unbound axis %q in index expression", t.Axis)
		}
		scaled := iv.MulConst(t.Coeff)
		var err error
		acc, err = acc.Add(scaled)
		if err != nil {
			return interval.Interval{}, err
		}
	}
	return acc, nil
}

func (i Index) String() string {
	var b strings.Builder
	for j, t := range i.Terms {
		if j > 0 {
			b.WriteString("+")
		}
		if t.Coeff == 1 {
			b.WriteString(t.Axis)
		} else {
			fmt.Fprintf(&b, "%g%s", t.Coeff, t.Axis)
		}
	}
	if i.Const != 0 || len(i.Terms) == 0 {
		if len(i.Terms) > 0 {
			b.WriteString("+")
		}
		fmt.Fprintf(&b, "%g", i.Const)
	}
	return b.String()
}

// Scalar is a scalar-valued TDL expression: the body of the output lambda.
type Scalar interface {
	fmt.Stringer
	// Accesses appends every tensor access reachable in the expression,
	// tagging each with whether it sits under a Reduce node.
	accesses(underReduce bool, out *[]TaggedAccess)
	isScalar()
}

// TaggedAccess is a tensor access found while walking a Scalar expression.
type TaggedAccess struct {
	Access      *Access
	UnderReduce bool
}

// Access reads one element of an input tensor at an affine index per
// dimension: data[b, ci, x+dx].
type Access struct {
	Tensor string
	Index  []Index
}

// At builds a tensor access expression.
func At(tensor string, idx ...Index) *Access {
	return &Access{Tensor: tensor, Index: idx}
}

func (a *Access) isScalar() {}
func (a *Access) accesses(underReduce bool, out *[]TaggedAccess) {
	*out = append(*out, TaggedAccess{Access: a, UnderReduce: underReduce})
}
func (a *Access) String() string {
	parts := make([]string, len(a.Index))
	for i, ix := range a.Index {
		parts[i] = ix.String()
	}
	return a.Tensor + "[" + strings.Join(parts, ",") + "]"
}

// Num is a scalar constant.
type Num struct{ V float64 }

// Lit builds a scalar constant expression.
func Lit(v float64) *Num { return &Num{V: v} }

func (n *Num) isScalar()                                    {}
func (n *Num) accesses(underReduce bool, _ *[]TaggedAccess) {}
func (n *Num) String() string                               { return fmt.Sprintf("%g", n.V) }

// BinOpKind enumerates scalar binary operations.
type BinOpKind int

const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpMax
	OpMin
)

func (k BinOpKind) String() string {
	switch k {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return "?"
	}
}

// Bin is a scalar binary operation.
type Bin struct {
	Op   BinOpKind
	L, R Scalar
}

// Add builds l + r.
func Add(l, r Scalar) *Bin { return &Bin{Op: OpAdd, L: l, R: r} }

// Sub builds l - r.
func Sub(l, r Scalar) *Bin { return &Bin{Op: OpSub, L: l, R: r} }

// Mul builds l * r.
func Mul(l, r Scalar) *Bin { return &Bin{Op: OpMul, L: l, R: r} }

// Div builds l / r.
func Div(l, r Scalar) *Bin { return &Bin{Op: OpDiv, L: l, R: r} }

// Max2 builds max(l, r).
func Max2(l, r Scalar) *Bin { return &Bin{Op: OpMax, L: l, R: r} }

// Min2 builds min(l, r).
func Min2(l, r Scalar) *Bin { return &Bin{Op: OpMin, L: l, R: r} }

func (b *Bin) isScalar() {}
func (b *Bin) accesses(underReduce bool, out *[]TaggedAccess) {
	b.L.accesses(underReduce, out)
	b.R.accesses(underReduce, out)
}
func (b *Bin) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Unary is an elementwise scalar function application such as exp or tanh.
// The function is opaque to the analysis — only the data dependence matters.
type Unary struct {
	Fn string
	X  Scalar
}

// Apply builds fn(x) for a named scalar function.
func Apply(fn string, x Scalar) *Unary { return &Unary{Fn: fn, X: x} }

func (u *Unary) isScalar() {}
func (u *Unary) accesses(underReduce bool, out *[]TaggedAccess) {
	u.X.accesses(underReduce, out)
}
func (u *Unary) String() string { return u.Fn + "(" + u.X.String() + ")" }

// ReduceExpr aggregates the body over one or more reduction axes:
// Sum(lambda ci, dx: ...). In TDL reductions may nest anywhere in the
// expression, but only a top-level reduction yields "case 2" output-reduction
// partition strategies (Sec 4.2).
type ReduceExpr struct {
	Red  Reducer
	Axes []ReduceAxis
	Body Scalar
}

// ReduceAxis binds a reduction axis name to its extent, which comes from a
// dimension of one of the operator's inputs (or a constant).
type ReduceAxis struct {
	Name   string
	Extent Extent
}

// RVar builds a reduction-axis binding from an axis index expression (which
// must be a bare axis) and an extent.
func RVar(ax Index, e Extent) ReduceAxis {
	name, coeff, ok := ax.IsSingleAxis()
	if !ok || coeff != 1 || ax.Const != 0 {
		panic("tdl: RVar requires a bare axis variable")
	}
	return ReduceAxis{Name: name, Extent: e}
}

// Reduce builds a reduction expression.
func Reduce(red Reducer, axes []ReduceAxis, body Scalar) *ReduceExpr {
	return &ReduceExpr{Red: red, Axes: axes, Body: body}
}

func (r *ReduceExpr) isScalar() {}
func (r *ReduceExpr) accesses(_ bool, out *[]TaggedAccess) {
	r.Body.accesses(true, out)
}
func (r *ReduceExpr) String() string {
	names := make([]string, len(r.Axes))
	for i, a := range r.Axes {
		names[i] = a.Name
	}
	return r.Red.String() + "(" + strings.Join(names, ",") + ": " + r.Body.String() + ")"
}

// Extent describes where a reduction axis' range comes from.
type Extent struct {
	// Input-bound extent: dimension Dim of input tensor Input.
	Input string
	Dim   int
	// Constant extent (used when Input == "").
	Const int64
}

// ExtentOf binds an extent to input tensor dimension (tensor, dim).
func ExtentOf(input string, dim int) Extent { return Extent{Input: input, Dim: dim} }

// ExtentConst binds an extent to a fixed constant.
func ExtentConst(n int64) Extent { return Extent{Const: n} }

// OpaqueExpr models TDL's opaque function primitive (Sec 4.1):
//
//	Cholesky = tofu.Opaque()
//	lambda b, i, j: Cholesky(batch_mat[b, :, :])[i, j]
//
// The opaque function consumes whole slices of its argument tensors (the
// ":" dimensions) and produces values indexed by the axes in OutAxes; those
// axes are not partitionable, while axes that select slices (b above) are.
type OpaqueExpr struct {
	Fn      string
	Args    []SliceArg
	OutAxes []string // output axes consumed by the opaque result indexing
}

// SliceArg is one argument to an opaque function: a tensor with each
// dimension either fully sliced (":") or indexed by an affine expression.
type SliceArg struct {
	Tensor string
	Dims   []SliceDim
}

// SliceDim is one dimension of a SliceArg.
type SliceDim struct {
	Full  bool
	Index Index // valid when !Full
}

// FullDim is the ":" slice selector.
func FullDim() SliceDim { return SliceDim{Full: true} }

// IdxDim selects a single position along a dimension by an affine index.
func IdxDim(i Index) SliceDim { return SliceDim{Index: i} }

// Opaque builds an opaque-function application.
func Opaque(fn string, outAxes []string, args ...SliceArg) *OpaqueExpr {
	return &OpaqueExpr{Fn: fn, Args: args, OutAxes: outAxes}
}

func (o *OpaqueExpr) isScalar() {}
func (o *OpaqueExpr) accesses(underReduce bool, out *[]TaggedAccess) {
	// Opaque slice arguments behave like accesses whose Full dims require the
	// whole extent; expose them as accesses with an empty index marker so the
	// analyzer treats Full dims as axis-independent.
	for _, a := range o.Args {
		acc := &Access{Tensor: a.Tensor, Index: make([]Index, len(a.Dims))}
		for i, d := range a.Dims {
			if d.Full {
				acc.Index[i] = Index{} // constant 0: depends on no axis
			} else {
				acc.Index[i] = d.Index
			}
		}
		*out = append(*out, TaggedAccess{Access: acc, UnderReduce: underReduce})
	}
}
func (o *OpaqueExpr) String() string {
	parts := make([]string, len(o.Args))
	for i, a := range o.Args {
		dims := make([]string, len(a.Dims))
		for j, d := range a.Dims {
			if d.Full {
				dims[j] = ":"
			} else {
				dims[j] = d.Index.String()
			}
		}
		parts[i] = a.Tensor + "[" + strings.Join(dims, ",") + "]"
	}
	return o.Fn + "(" + strings.Join(parts, ", ") + ")[" + strings.Join(o.OutAxes, ",") + "]"
}
