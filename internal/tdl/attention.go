package tdl

// Attention/Transformer operator descriptions — an extension beyond the
// paper's CNN/RNN evaluation exercising the same machinery: batched matmuls
// with reduction strategies, token-wise linear layers whose weight
// gradients reduce over two axes (prime output-reduction candidates), and
// 3-D softmax/layer-norm with nested reductions.

func init() {
	registerAttentionOps()
}

func registerAttentionOps() {
	b, t, i, j, k := Ax("b"), Ax("t"), Ax("i"), Ax("j"), Ax("k")

	// Token-wise linear: out[b,t,j] = Σ_k x[b,t,k] · w[k,j].
	Std.MustRegisterStatic(Describe("linear3d").
		In("x", 3).In("w", 2).Out(b, t, j).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("x", 2))},
			Mul(At("x", b, t, k), At("w", k, j)))))

	// dX[b,t,k] = Σ_j dY[b,t,j] · w[k,j].
	Std.MustRegisterStatic(Describe("linear3d_bwd_data").
		In("dy", 3).In("w", 2).Out(b, t, k).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(j, ExtentOf("w", 1))},
			Mul(At("dy", b, t, j), At("w", k, j)))))

	// dW[k,j] = Σ_{b,t} x[b,t,k] · dY[b,t,j] — two reduction axes, so the
	// analyzer exposes two output-reduction strategies.
	Std.MustRegisterStatic(Describe("linear3d_bwd_weight").
		In("x", 3).In("dy", 3).Out(k, j).
		MustIs(Reduce(Sum, []ReduceAxis{
			RVar(b, ExtentOf("x", 0)),
			RVar(t, ExtentOf("x", 1)),
		}, Mul(At("x", b, t, k), At("dy", b, t, j)))))

	// bmm_tn: out[b,i,j] = Σ_k a[b,k,i] · c[b,k,j] (dV of attention).
	Std.MustRegisterStatic(Describe("bmm_tn").
		In("a", 3).In("bm", 3).Out(b, i, j).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("a", 1))},
			Mul(At("a", b, k, i), At("bm", b, k, j)))))

	// Softmax over the last axis of a 3-D tensor (attention weights).
	Std.MustRegisterStatic(Describe("softmax_axis2").
		In("x", 3).Out(b, i, j).
		MustIs(Div(
			Apply("exp", At("x", b, i, j)),
			Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("x", 2))},
				Apply("exp", At("x", b, i, k))))))

	// Fused softmax gradient: dX[b,i,j] = y·(dy − Σ_k y·dy).
	Std.MustRegisterStatic(Describe("softmax_axis2_grad").
		In("y", 3).In("dy", 3).Out(b, i, j).
		MustIs(Apply("softmax_bwd", Add(
			Mul(At("y", b, i, j), At("dy", b, i, j)),
			Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("y", 2))},
				Mul(At("y", b, i, k), At("dy", b, i, k)))))))

	// Token-wise layer norm over the feature axis (stats stop-gradient,
	// like the batch-norm modeling).
	Std.MustRegisterStatic(Describe("ln3_mean").
		In("x", 3).Out(b, t).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("x", 2))},
			At("x", b, t, k))))
	Std.MustRegisterStatic(Describe("ln3_var").
		In("x", 3).In("mean", 2).Out(b, t).
		MustIs(Reduce(Sum, []ReduceAxis{RVar(k, ExtentOf("x", 2))},
			Apply("square", Sub(At("x", b, t, k), At("mean", b, t))))))
	Std.MustRegisterStatic(Describe("ln3_norm").
		In("x", 3).In("mean", 2).In("var", 2).In("gamma", 1).In("beta", 1).
		Out(b, t, j).
		MustIs(Add(
			Mul(Mul(Sub(At("x", b, t, j), At("mean", b, t)), Apply("rsqrt", At("var", b, t))), At("gamma", j)),
			At("beta", j))))
	Std.MustRegisterStatic(Describe("ln3_data_grad").
		In("dy", 3).In("x", 3).In("mean", 2).In("var", 2).In("gamma", 1).
		Out(b, t, j).
		MustIs(Apply("ln_dx", Add(
			Mul(At("dy", b, t, j), At("gamma", j)),
			Mul(Sub(At("x", b, t, j), At("mean", b, t)), Apply("rsqrt", At("var", b, t)))))))
	Std.MustRegisterStatic(Describe("ln3_gamma_grad").
		In("dy", 3).In("xhat", 3).Out(j).
		MustIs(Reduce(Sum, []ReduceAxis{
			RVar(b, ExtentOf("dy", 0)),
			RVar(t, ExtentOf("dy", 1)),
		}, Mul(At("dy", b, t, j), At("xhat", b, t, j)))))
	Std.MustRegisterStatic(Describe("ln3_beta_grad").
		In("dy", 3).Out(j).
		MustIs(Reduce(Sum, []ReduceAxis{
			RVar(b, ExtentOf("dy", 0)),
			RVar(t, ExtentOf("dy", 1)),
		}, At("dy", b, t, j))))

	// Scaled slice over the last token: out[b,j] = x[b, T-1, j], the
	// classifier pooling for sequence models.
	Std.MustRegister("last_token", func(attrs Attrs) (*OpDesc, error) {
		pos := float64(attrs.Get("pos", 0))
		return Describe("last_token").
			In("x", 3).Out(b, j).
			Is(At("x", b, IdxConst(pos), j))
	})

	// Scatter of the pooled gradient back to the token axis: every position
	// is zero except pos, whose value comes from dy[b,j].
	Std.MustRegisterStatic(Describe("last_token_grad").
		In("dy", 2).Out(b, t, j).
		MustIs(Apply("scatter_token", At("dy", b, j))))
}
