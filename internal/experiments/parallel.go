package experiments

import (
	"errors"
	"runtime"
	"sync"
)

// fanOut runs n independent experiment cells on up to par goroutines
// (par <= 0 means GOMAXPROCS) and returns every error the cells produced,
// joined. Cells write their results into caller-owned, index-addressed
// slots, so the rendered artifact is identical to the serial sweep.
func fanOut(par, n int, cell func(i int) error) error {
	if n == 0 {
		return nil
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	errs := make([]error, n)
	if par <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = cell(i)
		}
		return errors.Join(errs...)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = cell(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
