package experiments

import (
	"fmt"

	"tofu/internal/baselines"
	"tofu/internal/dp"
	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/models"
	"tofu/internal/plan"
	"tofu/internal/sim"
)

// Ablations quantifies the design choices DESIGN.md calls out: the Sec 6
// graph-generation optimizations (MultiFetch fusion, control-dependency
// injection for buffer reuse, spread-out reductions), in-place gradient
// aggregation, and the output-reduction strategies (Tofu vs ICML18).
func Ablations(o Opts, topo sim.Topology) (string, error) {
	cfg := models.Config{Family: "rnn", Depth: 4, Width: 4096, Batch: 256}
	if o.Quick {
		cfg = models.Config{Family: "rnn", Depth: 2, Width: 1024, Batch: 64}
	}
	m, err := models.Build(cfg)
	if err != nil {
		return "", err
	}
	// One cache serves the Tofu and ICML18 searches (same model, different
	// strategy filters over the same cached enumerations). The up-front
	// Tofu search runs before the cell fan-out, so it gets the whole
	// worker pool; the ICML18 search inside a cell stays serial.
	cache := dp.NewPriceCache()
	p, err := baselines.PlanForOn(m, baselines.Tofu, topo,
		baselines.SearchOptions{Parallelism: o.Parallelism, Cache: cache})
	if err != nil {
		return "", err
	}
	so := baselines.SearchOptions{Parallelism: 1, Cache: cache}

	noMultiFetch := graphgen.DefaultOptions()
	noMultiFetch.MultiFetch = false
	noSpread := graphgen.DefaultOptions()
	noSpread.SpreadReduction = false
	noReuse := memplan.DefaultOptions()
	noReuse.Reuse = false
	noInPlace := memplan.DefaultOptions()
	noInPlace.InPlaceAggregation = false

	type ablation struct {
		name  string
		plan  func() (*plan.Plan, error)
		gopts graphgen.Options
		mopts memplan.Options
	}
	tofuPlan := func() (*plan.Plan, error) { return p, nil }
	cases := []ablation{
		{"full Tofu (all optimizations)", tofuPlan, graphgen.DefaultOptions(), memplan.DefaultOptions()},
		{"- MultiFetch fusion", tofuPlan, noMultiFetch, memplan.DefaultOptions()},
		{"- spread-out reduction", tofuPlan, noSpread, memplan.DefaultOptions()},
		{"- control deps (no buffer reuse)", tofuPlan, graphgen.DefaultOptions(), noReuse},
		{"- in-place gradient aggregation", tofuPlan, graphgen.DefaultOptions(), noInPlace},
		// Output reduction ablation: the ICML18 plan on the same model.
		{"- output reduction (ICML18 plan)", func() (*plan.Plan, error) {
			return baselines.PlanForOn(m, baselines.ICML18, topo, so)
		}, graphgen.DefaultOptions(), memplan.DefaultOptions()},
	}

	// Each ablation cell regenerates and simulates independently; fan out.
	rows := make([][]string, len(cases))
	err = fanOut(o.Parallelism, len(cases), func(i int) error {
		ab := cases[i]
		ap, err := ab.plan()
		if err != nil {
			return err
		}
		sh, err := graphgen.Generate(m.G, ap, ab.gopts)
		if err != nil {
			return err
		}
		res := sim.Run(sh, topo, cfg.Batch, ab.mopts, sim.RunOptions{})
		rows[i] = []string{ab.name, fmt.Sprintf("%.3f", res.IterSeconds),
			gb(float64(res.Mem.PeakBytes)), gb(float64(res.Mem.CommBufferPeak))}
		return nil
	})
	if err != nil {
		return "", err
	}

	t := &table{header: []string{"configuration", "iter(s)", "peak/GPU(GB)", "comm-buffers(GB)"}}
	for _, r := range rows {
		t.add(r...)
	}
	return fmt.Sprintf("Ablations on %s (Tofu plan, 8 GPUs)\n", cfg) + t.String(), nil
}
