package experiments

import (
	"fmt"

	"tofu/internal/baselines"
	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/models"
	"tofu/internal/sim"
)

// Ablations quantifies the design choices DESIGN.md calls out: the Sec 6
// graph-generation optimizations (MultiFetch fusion, control-dependency
// injection for buffer reuse, spread-out reductions), in-place gradient
// aggregation, and the output-reduction strategies (Tofu vs ICML18).
func Ablations(o Opts, hw sim.HW) (string, error) {
	cfg := models.Config{Family: "rnn", Depth: 4, Width: 4096, Batch: 256}
	if o.Quick {
		cfg = models.Config{Family: "rnn", Depth: 2, Width: 1024, Batch: 64}
	}
	m, err := models.Build(cfg)
	if err != nil {
		return "", err
	}
	p, err := baselines.PlanFor(m, baselines.Tofu, int64(hw.NumGPUs))
	if err != nil {
		return "", err
	}

	t := &table{header: []string{"configuration", "iter(s)", "peak/GPU(GB)", "comm-buffers(GB)"}}
	run := func(name string, gopts graphgen.Options, mopts memplan.Options) error {
		sh, err := graphgen.Generate(m.G, p, gopts)
		if err != nil {
			return err
		}
		res := sim.Run(sh, hw, cfg.Batch, mopts, sim.RunOptions{})
		t.add(name, fmt.Sprintf("%.3f", res.IterSeconds),
			gb(float64(res.Mem.PeakBytes)), gb(float64(res.Mem.CommBufferPeak)))
		return nil
	}

	if err := run("full Tofu (all optimizations)", graphgen.DefaultOptions(), memplan.DefaultOptions()); err != nil {
		return "", err
	}
	g := graphgen.DefaultOptions()
	g.MultiFetch = false
	if err := run("- MultiFetch fusion", g, memplan.DefaultOptions()); err != nil {
		return "", err
	}
	g = graphgen.DefaultOptions()
	g.SpreadReduction = false
	if err := run("- spread-out reduction", g, memplan.DefaultOptions()); err != nil {
		return "", err
	}
	mo := memplan.DefaultOptions()
	mo.Reuse = false
	if err := run("- control deps (no buffer reuse)", graphgen.DefaultOptions(), mo); err != nil {
		return "", err
	}
	mo = memplan.DefaultOptions()
	mo.InPlaceAggregation = false
	if err := run("- in-place gradient aggregation", graphgen.DefaultOptions(), mo); err != nil {
		return "", err
	}

	// Output reduction ablation: the ICML18 plan on the same model.
	icml, err := baselines.PlanFor(m, baselines.ICML18, int64(hw.NumGPUs))
	if err != nil {
		return "", err
	}
	sh, err := graphgen.Generate(m.G, icml, graphgen.DefaultOptions())
	if err != nil {
		return "", err
	}
	res := sim.Run(sh, hw, cfg.Batch, memplan.DefaultOptions(), sim.RunOptions{})
	t.add("- output reduction (ICML18 plan)", fmt.Sprintf("%.3f", res.IterSeconds),
		gb(float64(res.Mem.PeakBytes)), gb(float64(res.Mem.CommBufferPeak)))

	return fmt.Sprintf("Ablations on %s (Tofu plan, 8 GPUs)\n", cfg) + t.String(), nil
}
