// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 7) on the simulated 8-GPU machine: Table 1 (search time),
// Table 2 (weight sizes), Table 3 (RNN framework comparison), Figure 8
// (WResNet throughput), Figure 9 (RNN throughput), Figure 10 (partition
// algorithm quality) and Figure 11 (the WResNet-152-10 partition plan),
// plus ablation studies of the Sec 6 graph-generation optimizations. Each
// driver returns a rendered text artifact; the root-level benchmarks and
// cmd/tofu-bench print them.
package experiments

import (
	"fmt"
	"strings"
)

// table renders rows with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

// bar renders a normalized throughput bar the way Figures 8/9 show them:
// filled blocks scaled to the ideal baseline, with the absolute value and
// OOM markers.
func bar(frac float64, label string, oom bool) string {
	if oom {
		return "OOM"
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*20 + 0.5)
	return fmt.Sprintf("%-20s %5.2f  %s", strings.Repeat("#", n), frac, label)
}

func gb(bytes float64) string { return fmt.Sprintf("%.1f", bytes/(1<<30)) }
