package experiments

import (
	"fmt"
	"reflect"
	"strings"

	"tofu/internal/baselines"
	"tofu/internal/dp"
	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/models"
	"tofu/internal/plan"
	"tofu/internal/sim"
)

// CrossTopology is the scenario sweep the topology refactor unlocks (no
// paper counterpart — the paper's testbed was a single flat PCIe box): the
// same benchmark models on the flat p2.8xlarge, the NVLink DGX-1-style box
// and the 2x8-node Ethernet cluster, comparing the topology-aware search
// (Tofu), the single-chop EqualChop baseline, and the hierarchical-naive
// layout that a topology-blind runtime produces. On the flat profile Tofu
// and hier-naive coincide by construction; on the hierarchical profiles the
// aware search puts the communication-heavy steps on the fastest links.
// The caller's machine (the -hw flag) joins the sweep when it is not
// already one of the library profiles, so user-defined topologies compare
// against the built-ins in one artifact.
func CrossTopology(o Opts, topo sim.Topology) (string, error) {
	topos := []sim.Topology{
		sim.DefaultTopology(),
		sim.DGX1Topology(),
		sim.Cluster2x8Topology(),
	}
	known := false
	for _, t := range topos {
		if reflect.DeepEqual(t, topo) {
			known = true
			break
		}
	}
	if !known {
		topos = append(topos, topo)
	}
	// RNN-4-4K is the comfortable regime (every step repeats the same
	// cheapest cut, so layouts tie); the non-power-of-two hidden sizes
	// (3000 = 8x375, 1500 = 4x375) exhaust their hidden dimension
	// mid-recursion, forcing one step onto a costlier cut — the regime where
	// keeping the heavy step off the slow link pays.
	cfgs := []models.Config{
		{Family: "rnn", Depth: 4, Width: 4096, Batch: 256},
		{Family: "rnn", Depth: 4, Width: 3000, Batch: 128},
		{Family: "rnn", Depth: 2, Width: 1500, Batch: 64},
	}
	if o.Quick {
		cfgs = []models.Config{{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}}
	}
	systems := []baselines.System{baselines.Tofu, baselines.EqualChop, baselines.HierNaive}

	// Build each model once; every (topology × system) cell over it shares
	// the graph (cells only read it).
	ms := make([]*models.Model, len(cfgs))
	for i, cfg := range cfgs {
		m, err := models.Build(cfg)
		if err != nil {
			return "", err
		}
		ms[i] = m
	}

	type cell struct {
		line string
	}
	cells := make([]cell, len(topos)*len(cfgs)*len(systems))
	// One pricing cache serves every cell: slot pricings are keyed by
	// (signature, K), so the K=8 and K=16 machines coexist.
	so := baselines.SearchOptions{Parallelism: 1, Cache: dp.NewPriceCache()}
	idx := func(ti, ci, si int) int { return (ti*len(cfgs)+ci)*len(systems) + si }
	err := fanOut(o.Parallelism, len(cells), func(i int) error {
		si := i % len(systems)
		ci := (i / len(systems)) % len(cfgs)
		ti := i / (len(systems) * len(cfgs))
		topo, cfg, sys, m := topos[ti], cfgs[ci], systems[si], ms[ci]
		p, err := baselines.PlanForOn(m, sys, topo, so)
		if err != nil {
			cells[i].line = fmt.Sprintf("  %-11s infeasible (%v)\n", sys, err)
			return nil
		}
		sh, err := graphgen.Generate(m.G, p, graphgen.DefaultOptions())
		if err != nil {
			return err
		}
		res := sim.Run(sh, topo, cfg.Batch, memplan.DefaultOptions(), sim.RunOptions{})
		oom := ""
		if res.OOM {
			oom = "  OOM"
		}
		cells[i].line = fmt.Sprintf("  %-11s %8.3fs/iter  %8.1f samples/s  comm %5.2f GB  steps %s%s\n",
			sys, res.IterSeconds, res.Throughput, p.TotalComm()/(1<<30), stepLayout(p, topo), oom)
		return nil
	})
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("Cross-topology sweep: Tofu (topology-aware) vs EqualChop vs hierarchical-naive\n")
	sb.WriteString("(steps column: ways@level for each recursive step, innermost level fastest)\n")
	for ti, topo := range topos {
		fmt.Fprintf(&sb, "\n== %s (%d GPUs: %s) ==\n", topo.Name, topo.NumGPUs(), levelString(topo))
		for ci, cfg := range cfgs {
			fmt.Fprintf(&sb, "-- %s --\n", cfg)
			for si := range systems {
				sb.WriteString(cells[idx(ti, ci, si)].line)
			}
		}
	}
	return sb.String(), nil
}

// stepLayout renders a plan's factor-to-level sequence ("2@pcie 2@nvlink
// 2@nvlink").
func stepLayout(p *plan.Plan, topo sim.Topology) string {
	if len(p.Steps) == 0 {
		return "none"
	}
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		name := "p2p"
		if s.Level >= 0 && s.Level < len(topo.Levels) {
			name = topo.Levels[s.Level].Name
		}
		parts[i] = fmt.Sprintf("%d@%s", s.K, name)
	}
	return strings.Join(parts, " ")
}

func levelString(topo sim.Topology) string {
	parts := make([]string, len(topo.Levels))
	for i, l := range topo.Levels {
		parts[i] = fmt.Sprintf("%s x%d @%.1f GB/s", l.Name, l.GroupSize, l.Bandwidth/1e9)
	}
	return strings.Join(parts, " | ")
}
