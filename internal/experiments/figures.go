package experiments

import (
	"fmt"
	"strings"

	"tofu/internal/baselines"
	"tofu/internal/dp"
	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/models"
	"tofu/internal/sim"
)

// Figure8 reproduces the WResNet throughput comparison: Ideal, SmallBatch,
// Swap and Tofu on WResNet-{50,101,152} widened {4,6,8,10}, normalized to
// the ideal baseline (global batch 128).
func Figure8(o Opts, topo sim.Topology) (string, error) {
	depths := []int{50, 101, 152}
	widths := []int64{4, 6, 8, 10}
	if o.Quick {
		depths, widths = []int{50}, []int64{4}
	}
	systems := []baselines.System{baselines.Ideal, baselines.SmallBatch, baselines.Swap, baselines.Tofu}
	var cfgs []models.Config
	for _, d := range depths {
		for _, w := range widths {
			cfgs = append(cfgs, models.Config{Family: "wresnet", Depth: d, Width: w, Batch: 128})
		}
	}
	outs, err := evaluateGrid(o, cfgs, systems, topo)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 8: WResNet throughput normalized to Ideal (absolute samples/sec in label)\n")
	for ci, cfg := range cfgs {
		if ci%len(widths) == 0 {
			fmt.Fprintf(&sb, "\n-- WResNet-%d --\n", cfg.Depth)
		}
		ideal := outs[ci][0]
		fmt.Fprintf(&sb, "W=%d (ideal %.1f samples/s):\n", cfg.Width, ideal.Throughput)
		for si, sys := range systems {
			out := outs[ci][si]
			oom := out.Throughput == 0
			fmt.Fprintf(&sb, "  %-12s %s\n", sys,
				bar(out.Throughput/ideal.Throughput,
					fmt.Sprintf("%.1f (batch %d)", out.Throughput, out.Batch), oom))
		}
	}
	return sb.String(), nil
}

// evaluateGrid fans the independent (model × system) cells across the
// worker pool, collecting all errors; outs[cfg][sys] mirrors the serial
// sweep exactly. All partition searches share one pricing cache and run
// serial internally — the parallelism budget is spent at the cell level.
func evaluateGrid(o Opts, cfgs []models.Config, systems []baselines.System,
	topo sim.Topology) ([][]baselines.Outcome, error) {

	outs := make([][]baselines.Outcome, len(cfgs))
	for i := range outs {
		outs[i] = make([]baselines.Outcome, len(systems))
	}
	so := baselines.SearchOptions{Parallelism: 1, Cache: dp.NewPriceCache()}
	err := fanOut(o.Parallelism, len(cfgs)*len(systems), func(i int) error {
		ci, si := i/len(systems), i%len(systems)
		out, err := baselines.EvaluateWith(cfgs[ci], systems[si], topo, so)
		if err != nil {
			return fmt.Errorf("%v/%s: %w", cfgs[ci], systems[si], err)
		}
		outs[ci][si] = out
		return nil
	})
	return outs, err
}

// Figure9 reproduces the RNN throughput comparison: Ideal, SmallBatch,
// Swap, Op-Placement and Tofu on RNN-{6,8,10} with hidden {4K,6K,8K}
// (global batch 512).
func Figure9(o Opts, topo sim.Topology) (string, error) {
	layers := []int{6, 8, 10}
	hiddens := []int64{4096, 6144, 8192}
	if o.Quick {
		layers, hiddens = []int{6}, []int64{4096}
	}
	systems := []baselines.System{
		baselines.Ideal, baselines.SmallBatch, baselines.Swap,
		baselines.OpPlacement, baselines.Tofu,
	}
	var cfgs []models.Config
	for _, l := range layers {
		for _, h := range hiddens {
			cfgs = append(cfgs, models.Config{Family: "rnn", Depth: l, Width: h, Batch: 512})
		}
	}
	outs, err := evaluateGrid(o, cfgs, systems, topo)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 9: RNN throughput normalized to Ideal (absolute samples/sec in label)\n")
	for ci, cfg := range cfgs {
		if ci%len(hiddens) == 0 {
			fmt.Fprintf(&sb, "\n-- %d-layer RNN --\n", cfg.Depth)
		}
		ideal := outs[ci][0]
		fmt.Fprintf(&sb, "H=%dK (ideal %.1f samples/s):\n", cfg.Width/1024, ideal.Throughput)
		for si, sys := range systems {
			out := outs[ci][si]
			oom := out.Throughput == 0
			fmt.Fprintf(&sb, "  %-12s %s\n", sys,
				bar(out.Throughput/ideal.Throughput,
					fmt.Sprintf("%.1f (batch %d)", out.Throughput, out.Batch), oom))
		}
	}
	return sb.String(), nil
}

// Figure10 compares partition algorithms (AllRow-Greedy, Spartan,
// EqualChop, ICML18, Tofu) at a fixed batch on 8 GPUs, reporting per-batch
// execution time with the communication overhead share — the striped bars
// of the paper's figure. Algorithms whose plan does not fit report OOM.
func Figure10(o Opts, topo sim.Topology) (string, error) {
	workloads := []models.Config{
		{Family: "rnn", Depth: 4, Width: 8192, Batch: 512},
		{Family: "wresnet", Depth: 152, Width: 10, Batch: 8},
	}
	if o.Quick {
		workloads = []models.Config{{Family: "rnn", Depth: 2, Width: 2048, Batch: 256}}
	}
	algos := []baselines.System{
		baselines.AllRowGreedy, baselines.Spartan, baselines.EqualChop,
		baselines.ICML18, baselines.Tofu,
	}
	// Every (workload × algorithm) cell is independent: fan them out,
	// rendering each cell into its slot. One pricing cache serves every
	// algorithm variant (the searches differ only in filters/factors, which
	// restrict the same cached strategy enumerations).
	ms := make([]*models.Model, len(workloads))
	for i, cfg := range workloads {
		m, err := models.Build(cfg)
		if err != nil {
			return "", err
		}
		ms[i] = m
	}
	so := baselines.SearchOptions{Parallelism: 1, Cache: dp.NewPriceCache()}
	lines := make([]string, len(workloads)*len(algos))
	err := fanOut(o.Parallelism, len(lines), func(i int) error {
		wi, ai := i/len(algos), i%len(algos)
		cfg, m, algo := workloads[wi], ms[wi], algos[ai]
		p, err := baselines.PlanForOn(m, algo, topo, so)
		if err != nil {
			lines[i] = fmt.Sprintf("  %-14s infeasible (%v)\n", algo, err)
			return nil
		}
		sh, err := graphgen.Generate(m.G, p, graphgen.DefaultOptions())
		if err != nil {
			return err
		}
		full := sim.Run(sh, topo, cfg.Batch, memplan.DefaultOptions(), sim.RunOptions{})
		pure := sim.Run(sh, topo, cfg.Batch, memplan.DefaultOptions(), sim.RunOptions{DisableComm: true})
		if full.OOM {
			lines[i] = fmt.Sprintf("  %-14s OOM (needs %s GB/GPU)\n", algo, gb(float64(full.Mem.PeakBytes)))
			return nil
		}
		overhead := 0.0
		if full.IterSeconds > 0 {
			overhead = (full.IterSeconds - pure.IterSeconds) / full.IterSeconds * 100
		}
		lines[i] = fmt.Sprintf("  %-14s %6.2fs/batch  compute %5.2fs  comm-overhead %4.1f%%  plan-comm %s GB\n",
			algo, full.IterSeconds, pure.IterSeconds, overhead, gb(p.TotalComm()))
		return nil
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 10: partition algorithm comparison (time per batch, 8 GPUs)\n")
	for wi, cfg := range workloads {
		fmt.Fprintf(&sb, "\n-- %s --\n", cfg)
		for ai := range algos {
			sb.WriteString(lines[wi*len(algos)+ai])
		}
	}
	return sb.String(), nil
}

// Figure11 renders the partition plan Tofu finds for WResNet-152-10 on 8
// GPUs: per convolution, how the weight and activation tensors are tiled
// (batch vs channel cuts), with repeated blocks compressed the way the
// paper's figure draws "xN".
func Figure11(o Opts) (string, error) {
	cfg := models.Config{Family: "wresnet", Depth: 152, Width: 10, Batch: 8}
	if o.Quick {
		cfg = models.Config{Family: "wresnet", Depth: 50, Width: 2, Batch: 8}
	}
	m, err := models.Build(cfg)
	if err != nil {
		return "", err
	}
	p, err := baselines.PlanFor(m, baselines.Tofu, 8)
	if err != nil {
		return "", err
	}

	dimNames := map[int]string{0: "n", 1: "c", 2: "h", 3: "w"}
	weightDims := map[int]string{0: "co", 1: "ci", 2: "kh", 3: "kw"}
	var lines []string
	for _, n := range m.G.Nodes {
		if n.Op != "conv2d" {
			continue
		}
		wTensor := n.Inputs[1]
		aTensor := n.Inputs[0]
		line := fmt.Sprintf("%-12s W[%s]  A[%s]",
			wTensor.Name,
			tileString(p.ShardDims(wTensor.ID, 4), weightDims),
			tileString(p.ShardDims(aTensor.ID, 4), dimNames))
		lines = append(lines, line)
	}

	// Compress repeated consecutive layer patterns ("xN" in the paper).
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11: Tofu's partition for %s on 8 GPUs\n", m.Name)
	sb.WriteString("(each tensor shows ways-split per dimension; product is always 8)\n\n")
	i := 0
	for i < len(lines) {
		pat := strip(lines[i])
		j := i + 1
		for j < len(lines) && strip(lines[j]) == pat {
			j++
		}
		if j-i > 1 {
			fmt.Fprintf(&sb, "%s   x%d\n", lines[i], j-i)
		} else {
			sb.WriteString(lines[i] + "\n")
		}
		i = j
	}
	return sb.String(), nil
}

// strip drops the layer-name column so repeats compare by tiling only.
func strip(line string) string {
	if idx := strings.Index(line, " "); idx > 0 {
		return line[idx:]
	}
	return line
}

func tileString(ways []int64, names map[int]string) string {
	var parts []string
	for d, w := range ways {
		if w > 1 {
			parts = append(parts, fmt.Sprintf("%s/%d", names[d], w))
		}
	}
	if len(parts) == 0 {
		return "replicated"
	}
	return strings.Join(parts, ",")
}
