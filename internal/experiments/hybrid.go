package experiments

import (
	"fmt"
	"strings"
	"time"

	"tofu/internal/cancel"
	"tofu/internal/core"
	"tofu/internal/models"
	"tofu/internal/sim"
)

// Hybrid is the joint-search benchmark (no paper counterpart — the paper's
// testbed fit every model under pure tensor splitting): on each hierarchical
// profile it partitions a deep model twice, once with the plain
// topology-aware tensor-parallel search and once with the joint
// hybrid-parallelism search (pipeline stages across the slowest profitable
// interconnect level, the partition DP inside each stage), and reports the
// simulated iteration times side by side with the joint search's effort —
// the segment-memo dp.Solve count against the flat one-DP-per-boundary-set
// enumeration it replaces. Plans are byte-identical to the exhaustive
// boundary oracle by construction (the differential test in internal/hybrid
// enforces it); only the effort differs.
func Hybrid(o Opts, tp sim.Topology) (string, error) {
	type row struct {
		topo sim.Topology
		cfg  models.Config
	}
	rows := []row{
		{sim.Cluster2x8Topology(), models.Config{Family: "mlp", Depth: 8, Width: 256, Batch: 64}},
		{sim.Cluster4x2x8Topology(), models.Config{Family: "mlp", Depth: 8, Width: 256, Batch: 64}},
		{sim.Cluster2x4x2x12Topology(), models.Config{Family: "mlp", Depth: 8, Width: 384, Batch: 48}},
	}
	if o.Quick {
		rows = []row{
			{sim.Cluster2x8Topology(), models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}},
			{sim.Cluster4x2x8Topology(), models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}},
		}
	}

	tab := &table{header: []string{
		"machine", "k", "model", "level", "stages",
		"dp steps", "dp flat", "saving", "pruned",
		"tensor s/iter", "hybrid s/iter", "tensor GB", "hybrid GB", "search",
	}}
	for _, r := range rows {
		m, err := models.Build(r.cfg)
		if err != nil {
			return "", err
		}
		topo := r.topo
		k := int64(topo.NumGPUs())

		base := core.DefaultOptions()
		base.Topology = &topo
		base.Search.Parallelism = o.Parallelism
		ts, err := core.Partition(m.G, k, base)
		if err != nil {
			return "", fmt.Errorf("hybrid: %s tensor-only: %w", topo.Name, err)
		}
		tensorRes := core.Simulate(ts, r.cfg.Batch, base, sim.RunOptions{})

		hopts := core.DefaultOptions()
		hopts.Topology = &topo
		hopts.Search.Parallelism = o.Parallelism
		hopts.Pipeline = &core.PipelineSpec{}
		tok, stopTok := cancel.WithTimeout(o.SearchDeadline)
		hopts.Cancel = tok
		start := time.Now()
		hs, err := core.Partition(m.G, k, hopts)
		searchTime := time.Since(start)
		stopTok()
		if err != nil {
			tab.add(topo.Name, fmt.Sprint(k), r.cfg.String(), "infeasible",
				"", "", "", "", "", fmt.Sprintf("%.3f", tensorRes.IterSeconds), "",
				gb(float64(ts.Memory.PeakBytes)), "", "")
			continue
		}
		hybridRes, err := core.SimulatePipeline(hs, r.cfg.Batch, hopts, sim.RunOptions{})
		if err != nil {
			return "", fmt.Errorf("hybrid: %s simulation: %w", topo.Name, err)
		}
		st := hs.Hybrid.Stats
		tab.add(
			topo.Name,
			fmt.Sprint(k),
			r.cfg.String(),
			fmt.Sprint(st.Level),
			fmt.Sprint(st.Stages),
			fmt.Sprint(st.DPSolves),
			fmt.Sprint(st.FlatDPSolves),
			fmt.Sprintf("%.1fx", float64(st.FlatDPSolves)/float64(max(st.DPSolves, 1))),
			fmt.Sprint(st.Pruned),
			fmt.Sprintf("%.3f", tensorRes.IterSeconds),
			fmt.Sprintf("%.3f", hybridRes.IterSeconds),
			gb(float64(ts.Memory.PeakBytes)),
			gb(float64(hs.Memory.PeakBytes)),
			searchCell(searchTime, hs.Degraded),
		)
	}
	var sb strings.Builder
	sb.WriteString("Hybrid parallelism: joint pipeline+partition search vs tensor-only (plans byte-identical to the exhaustive boundary oracle)\n")
	sb.WriteString(tab.String())
	return sb.String(), nil
}

// searchCell renders a search-time cell, starring deadline-degraded runs.
func searchCell(d time.Duration, degraded bool) string {
	cell := d.Round(time.Millisecond).String()
	if degraded {
		cell += "*"
	}
	return cell
}
