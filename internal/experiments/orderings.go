package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"tofu/internal/dp"
	"tofu/internal/models"
	"tofu/internal/recursive"
	"tofu/internal/sim"
)

// Orderings is the ordering-scaling benchmark behind the branch-and-bound
// search (no paper counterpart — the paper's testbed had one interconnect
// level, so its search had exactly one ordering): for each hierarchical
// profile it runs the topology-aware search twice — the prefix-shared
// branch-and-bound tree and the flat one-full-DP-per-ordering enumeration —
// and reports the search-space size, how much of it the bounds pruned, the
// DP step executions both engines paid, and their wall times. The chosen
// plans are byte-identical by construction (the differential test in
// internal/recursive enforces it); only the effort differs. The caller's
// machine (-hw) joins the sweep when hierarchical and not already a library
// profile.
func Orderings(o Opts, tp sim.Topology) (string, error) {
	type row struct {
		topo sim.Topology
		cfg  models.Config
	}
	rows := []row{
		{sim.DGX1Topology(), models.Config{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}},
		{sim.DGX2Topology(), models.Config{Family: "rnn", Depth: 2, Width: 3000, Batch: 64}},
		{sim.Cluster2x8Topology(), models.Config{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}},
		{sim.Cluster4x2x8Topology(), models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 128}},
		{sim.Cluster8x2x8Topology(), models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 256}},
	}
	if o.Quick {
		rows = rows[:3]
	}
	if tp.Hierarchical() {
		known := false
		for _, r := range rows {
			if reflect.DeepEqual(r.topo, tp) {
				known = true
				break
			}
		}
		if !known {
			rows = append(rows, row{tp, models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 128}})
		}
	}

	tab := &table{header: []string{
		"machine", "k", "model", "orderings", "costed", "pruned",
		"dp steps", "dp flat", "saving", "b&b", "flat enum", "speedup",
	}}
	for _, r := range rows {
		m, err := models.Build(r.cfg)
		if err != nil {
			return "", err
		}
		k := int64(r.topo.NumGPUs())
		topo := r.topo
		// Both engines get a fresh pricing cache: the comparison is
		// cold-search vs cold-search.
		var st recursive.SearchStats
		start := time.Now()
		_, err = recursive.Partition(m.G, k, recursive.Options{
			Topology: &topo, Parallelism: o.Parallelism,
			Cache: dp.NewPriceCache(), Stats: &st,
		})
		bbTime := time.Since(start)
		if err != nil {
			tab.add(topo.Name, fmt.Sprint(k), r.cfg.String(), "infeasible", "", "", "", "", "", "", "", "")
			continue
		}
		var stFlat recursive.SearchStats
		start = time.Now()
		_, err = recursive.Partition(m.G, k, recursive.Options{
			Topology: &topo, Parallelism: o.Parallelism, TopoExhaustive: true,
			Cache: dp.NewPriceCache(), Stats: &stFlat,
		})
		flatTime := time.Since(start)
		if err != nil {
			return "", fmt.Errorf("orderings: %s flat enumeration: %w", topo.Name, err)
		}
		tab.add(
			topo.Name,
			fmt.Sprint(k),
			r.cfg.String(),
			fmt.Sprint(st.Orderings),
			fmt.Sprint(st.Leaves),
			fmt.Sprint(st.Pruned),
			fmt.Sprint(st.DPSolves),
			fmt.Sprint(stFlat.DPSolves),
			fmt.Sprintf("%.1fx", float64(stFlat.DPSolves)/float64(max(st.DPSolves, 1))),
			fmt.Sprint(bbTime.Round(time.Millisecond)),
			fmt.Sprint(flatTime.Round(time.Millisecond)),
			fmt.Sprintf("%.1fx", float64(flatTime)/float64(max(bbTime, 1))),
		)
	}
	var sb strings.Builder
	sb.WriteString("Ordering-scaling: branch-and-bound prefix tree vs flat enumeration (plans byte-identical)\n")
	sb.WriteString(tab.String())
	return sb.String(), nil
}
