package experiments

import (
	"fmt"
	"time"

	"tofu/internal/baselines"
	"tofu/internal/cancel"
	"tofu/internal/coarsen"
	"tofu/internal/dp"
	"tofu/internal/models"
	"tofu/internal/recursive"
	"tofu/internal/shape"
	"tofu/internal/sim"
)

// Opts tune experiment scope.
type Opts struct {
	// Quick trims sweeps for unit tests; the full benches leave it false.
	Quick bool
	// FlatBudget caps the non-recursive DP measurement of Table 1 (the
	// paper's 8h/>24h row); the completion time is extrapolated from the
	// exact remaining combination count.
	FlatBudget time.Duration
	// Parallelism sizes the worker pools: the independent (model × system)
	// cells of each driver fan out across this many goroutines, and each
	// partition search uses it for its DP sweep (0 = GOMAXPROCS, 1 =
	// serial). Rendered artifacts are identical for every setting.
	Parallelism int
	// Models overrides Table 1's model set (tofu-search's -model-json
	// flag); nil keeps the paper's WResNet-152 / RNN-10 pair. Takes
	// precedence over Quick's trimmed pair.
	Models []models.Config
	// SearchDeadline bounds each recursive search's wall clock (0 = none).
	// A deadline-stopped search reports its incumbent; its timing cell is
	// suffixed "*" to mark a degraded, not proven-optimal, result.
	SearchDeadline time.Duration
}

// DefaultOpts is the full-fidelity configuration.
func DefaultOpts() Opts { return Opts{FlatBudget: 20 * time.Second} }

// Table1 reproduces "Time to search for the best partition for 8 workers"
// (WResNet-152 and RNN-10): the original DP is inapplicable to non-linear
// fine-grained graphs, the coarsened-but-flat DP explodes, recursion
// finishes in seconds.
func Table1(o Opts, topo sim.Topology) (string, error) {
	t := &table{header: []string{"search algorithm", "WResNet-152", "RNN-10"}}
	cfgs := []models.Config{
		{Family: "wresnet", Depth: 152, Width: 10, Batch: 8},
		{Family: "rnn", Depth: 10, Width: 8192, Batch: 128},
	}
	if o.Quick {
		cfgs = []models.Config{
			{Family: "wresnet", Depth: 50, Width: 2, Batch: 8},
			{Family: "rnn", Depth: 2, Width: 1024, Batch: 64},
		}
		t.header = []string{"search algorithm", cfgs[0].String(), cfgs[1].String()}
	}
	if len(o.Models) > 0 {
		cfgs = o.Models
		t.header = []string{"search algorithm"}
		for _, c := range cfgs {
			t.header = append(t.header, c.String())
		}
	}

	// Cells stay serial here — Table 1 measures wall-clock search time, and
	// concurrent cells would contend for the very cores the parallel search
	// uses. The search itself still gets the worker pool.
	flatCells := make([]string, len(cfgs))
	recCells := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		m, err := models.Build(cfg)
		if err != nil {
			return "", err
		}
		// Recursion (the Tofu algorithm; topology-aware on hierarchical
		// machines, where the ordering search multiplies the DP runs).
		k := int64(topo.NumGPUs())
		start := time.Now()
		tok, stopTok := cancel.WithTimeout(o.SearchDeadline)
		p, err := recursive.Partition(m.G, k, recursive.Options{Parallelism: o.Parallelism, Topology: &topo, Cancel: tok})
		stopTok()
		if err != nil {
			return "", err
		}
		recCells[i] = time.Since(start).Round(time.Millisecond).String()
		if p.Degraded {
			recCells[i] += "*"
		}

		// Flat multi-dimensional DP under budget.
		c, err := coarsen.Coarsen(m.G)
		if err != nil {
			return "", err
		}
		shapes := map[int]shape.Shape{}
		for _, ten := range m.G.Tensors {
			shapes[ten.ID] = ten.Shape.Clone()
		}
		budget := o.FlatBudget
		if budget == 0 {
			budget = 20 * time.Second
		}
		rep, err := dp.SolveFlat(&dp.Problem{Coarse: c, K: k, Shapes: shapes, DType: shape.Float32},
			recursive.Factorize(k), budget)
		if err != nil {
			return "", err
		}
		if rep.Completed {
			flatCells[i] = rep.Elapsed.Round(time.Millisecond).String()
		} else {
			flatCells[i] = fmt.Sprintf("~%s (extrapolated, %.0f%% done)",
				rep.EstimatedTotal.Round(time.Minute),
				float64(rep.Evaluated)/rep.TotalConfigs*100)
		}
	}
	naCells := make([]string, len(cfgs))
	for i := range naCells {
		naCells[i] = "n/a (graph not linear)"
	}
	t.add(append([]string{"Original DP [ICML18]"}, naCells...)...)
	t.add(append([]string{"DP with coarsening"}, flatCells...)...)
	t.add(append([]string{"Using recursion (Tofu)"}, recCells...)...)
	return fmt.Sprintf("Table 1: partition search time, %d workers\n", topo.NumGPUs()) + t.String(), nil
}

// Table2 reproduces "Total weight tensor sizes (GB)" — weight + gradient +
// optimizer history (the 3W accounting of Sec 7.1) for every benchmark
// model.
func Table2(o Opts) (string, error) {
	var sb table
	sb.header = []string{"model", "L/W", "weights(GB)", "3W total(GB)", "paper(GB)"}
	paper := map[string]float64{
		"RNN-6-4K": 8.4, "RNN-8-4K": 11.4, "RNN-10-4K": 14.4,
		"RNN-6-6K": 18.6, "RNN-8-6K": 28.5, "RNN-10-6K": 32.1,
		"RNN-6-8K": 33.0, "RNN-8-8K": 45.3, "RNN-10-8K": 57.0,
		"WResNet-50-4": 4.2, "WResNet-50-6": 9.6, "WResNet-50-8": 17.1, "WResNet-50-10": 26.7,
		"WResNet-101-4": 7.8, "WResNet-101-6": 17.1, "WResNet-101-8": 30.6, "WResNet-101-10": 47.7,
		"WResNet-152-4": 10.5, "WResNet-152-6": 23.4, "WResNet-152-8": 41.7, "WResNet-152-10": 65.1,
	}
	rnnH := []int64{4096, 6144, 8192}
	rnnL := []int{6, 8, 10}
	wrnW := []int64{4, 6, 8, 10}
	wrnL := []int{50, 101, 152}
	if o.Quick {
		rnnH, rnnL = []int64{4096}, []int{6}
		wrnW, wrnL = []int64{4}, []int{50}
	}
	for _, l := range rnnL {
		for _, h := range rnnH {
			m, err := models.RNN(l, h, 4, 2)
			if err != nil {
				return "", err
			}
			addWeightRow(&sb, m, paper)
		}
	}
	for _, l := range wrnL {
		for _, w := range wrnW {
			m, err := models.WResNet(l, w, 4)
			if err != nil {
				return "", err
			}
			addWeightRow(&sb, m, paper)
		}
	}
	return "Table 2: total weight tensor sizes (weight + gradient + optimizer history)\n" + sb.String(), nil
}

func addWeightRow(t *table, m *models.Model, paper map[string]float64) {
	w := float64(m.WeightBytes())
	p := "-"
	if v, ok := paper[m.Name]; ok {
		p = fmt.Sprintf("%.1f", v)
	}
	t.add(m.Name, fmt.Sprintf("%d/%d", m.Cfg.Depth, m.Cfg.Width), gb(w), gb(3*w), p)
}

// Table3 reproduces the RNN framework comparison at hidden size 4096:
// Tofu vs MXNet operator placement vs TensorFlow operator placement.
func Table3(o Opts, topo sim.Topology) (string, error) {
	t := &table{header: []string{"system", "RNN-6", "RNN-8", "RNN-10"}}
	layers := []int{6, 8, 10}
	hidden := int64(4096)
	batch := int64(512)
	if o.Quick {
		layers = []int{2}
		hidden, batch = 1024, 128
		t.header = []string{"system", "RNN-2"}
	}
	systems := []baselines.System{baselines.Tofu, baselines.OpPlacement, baselines.TFOpPlacement}
	names := map[baselines.System]string{
		baselines.Tofu:          "Tofu",
		baselines.OpPlacement:   "MX-OpPlacement",
		baselines.TFOpPlacement: "TF-OpPlacement",
	}
	// The (system × model) cells are independent; fan them out and render
	// in order. Each cell's own search runs serial — the parallelism budget
	// is spent at the cell level — but all cells share one pricing cache.
	so := baselines.SearchOptions{Parallelism: 1, Cache: dp.NewPriceCache()}
	cells := make([]string, len(systems)*len(layers))
	err := fanOut(o.Parallelism, len(cells), func(i int) error {
		sys, l := systems[i/len(layers)], layers[i%len(layers)]
		out, err := baselines.EvaluateWith(models.Config{
			Family: "rnn", Depth: l, Width: hidden, Batch: batch,
		}, sys, topo, so)
		if err != nil {
			return err
		}
		if out.OOM && out.Throughput == 0 {
			cells[i] = "OOM"
		} else {
			cells[i] = fmt.Sprintf("%.0f", out.Throughput)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	for si, sys := range systems {
		t.add(append([]string{names[sys]}, cells[si*len(layers):(si+1)*len(layers)]...)...)
	}
	return "Table 3: RNN throughput (samples/sec), hidden size 4096\n" + t.String(), nil
}
