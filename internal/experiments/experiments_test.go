package experiments

import (
	"strings"
	"testing"
	"time"

	"tofu/internal/sim"
)

func quick() Opts { return Opts{Quick: true, FlatBudget: 2 * time.Second} }

func TestTable1Quick(t *testing.T) {
	out, err := Table1(quick(), sim.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Original DP", "coarsening", "recursion"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 1 missing %q:\n%s", frag, out)
		}
	}
}

func TestTable2Quick(t *testing.T) {
	out, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RNN-6-4K") || !strings.Contains(out, "WResNet-50-4") {
		t.Fatalf("Table 2 missing rows:\n%s", out)
	}
	// Paper column present for comparison.
	if !strings.Contains(out, "8.4") || !strings.Contains(out, "4.2") {
		t.Errorf("Table 2 missing paper reference values:\n%s", out)
	}
}

func TestTable3Quick(t *testing.T) {
	out, err := Table3(quick(), sim.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Tofu", "MX-OpPlacement", "TF-OpPlacement"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 3 missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure8Quick(t *testing.T) {
	out, err := Figure8(quick(), sim.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"ideal", "smallbatch", "swap", "tofu"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Figure 8 missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure9Quick(t *testing.T) {
	out, err := Figure9(quick(), sim.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "opplacement") {
		t.Errorf("Figure 9 missing op-placement:\n%s", out)
	}
}

func TestFigure10Quick(t *testing.T) {
	out, err := Figure10(quick(), sim.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"allrow-greedy", "spartan", "equalchop", "icml18", "tofu"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Figure 10 missing %q:\n%s", frag, out)
		}
	}
}

func TestFigure11Quick(t *testing.T) {
	out, err := Figure11(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "W[") || !strings.Contains(out, "A[") {
		t.Errorf("Figure 11 missing tile notation:\n%s", out)
	}
}

func TestCrossTopologyQuick(t *testing.T) {
	out, err := CrossTopology(quick(), sim.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"p2.8xlarge", "dgx1", "cluster-2x8", "tofu", "equalchop", "hier-naive", "@pcie"} {
		if !strings.Contains(out, frag) {
			t.Errorf("cross-topology sweep missing %q:\n%s", frag, out)
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	out, err := Ablations(quick(), sim.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"MultiFetch", "control deps", "output reduction", "in-place"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Ablations missing %q:\n%s", frag, out)
		}
	}
}

func TestHybridQuick(t *testing.T) {
	out, err := Hybrid(quick(), sim.DefaultTopology())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"cluster-2x8", "cluster-4x2x8", "dp steps", "hybrid s/iter", "stages"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Hybrid missing %q:\n%s", frag, out)
		}
	}
}
