package cancel

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilToken(t *testing.T) {
	var tok *Token
	if tok.Cancelled() {
		t.Fatal("nil token reports cancelled")
	}
	if tok.Err() != nil {
		t.Fatalf("nil token has reason %v", tok.Err())
	}
	if tok.Budget() != 0 {
		t.Fatalf("nil token has budget %v", tok.Budget())
	}
	tok.Cancel(ErrDeadline) // must not panic
}

func TestCancelReasonFirstWins(t *testing.T) {
	tok := New()
	if tok.Cancelled() {
		t.Fatal("fresh token cancelled")
	}
	first := errors.New("first")
	tok.Cancel(first)
	tok.Cancel(errors.New("second"))
	if !tok.Cancelled() {
		t.Fatal("cancelled token reports live")
	}
	if !errors.Is(tok.Err(), first) {
		t.Fatalf("reason = %v, want first", tok.Err())
	}
}

func TestCancelNilReason(t *testing.T) {
	tok := New()
	tok.Cancel(nil)
	if !errors.Is(tok.Err(), ErrCancelled) {
		t.Fatalf("reason = %v, want ErrCancelled", tok.Err())
	}
}

func TestAfterPollsDeterministic(t *testing.T) {
	const n = 5
	trip := func() int {
		tok := AfterPolls(n)
		for i := 1; ; i++ {
			if tok.Cancelled() {
				return i
			}
		}
	}
	a, b := trip(), trip()
	if a != b || a != n {
		t.Fatalf("tripped at polls %d and %d, want both %d", a, b, n)
	}
}

func TestWithTimeout(t *testing.T) {
	tok, stop := WithTimeout(time.Millisecond)
	defer stop()
	if tok.Budget() != time.Millisecond {
		t.Fatalf("budget = %v", tok.Budget())
	}
	deadline := time.Now().Add(5 * time.Second)
	for !tok.Cancelled() {
		if time.Now().After(deadline) {
			t.Fatal("timeout token never tripped")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if !errors.Is(tok.Err(), ErrDeadline) {
		t.Fatalf("reason = %v, want ErrDeadline", tok.Err())
	}
}

func TestWithTimeoutZeroIsNil(t *testing.T) {
	tok, stop := WithTimeout(0)
	stop()
	if tok != nil {
		t.Fatal("zero budget should return the free nil token")
	}
}

func TestCancelAfterStop(t *testing.T) {
	tok := New()
	stop := tok.CancelAfter(time.Hour, ErrDeadline)
	stop()
	if tok.Cancelled() {
		t.Fatal("disarmed timer cancelled the token")
	}
}

func TestIsCancellation(t *testing.T) {
	watchdog := NewReason("watchdog fired")
	for _, err := range []error{ErrDeadline, ErrCancelled, watchdog,
		Reason(ErrDeadline, "while expanding group %d", 3)} {
		if !IsCancellation(err) {
			t.Errorf("IsCancellation(%v) = false", err)
		}
	}
	if IsCancellation(errors.New("disk on fire")) {
		t.Error("unrelated error classified as cancellation")
	}
	if IsCancellation(nil) {
		t.Error("nil classified as cancellation")
	}
}

func TestConcurrentCancelRace(t *testing.T) {
	tok := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tok.Cancelled()
			}
		}()
	}
	tok.Cancel(ErrDeadline)
	wg.Wait()
	if !tok.Cancelled() || tok.Err() == nil {
		t.Fatal("token lost its cancellation under concurrent polls")
	}
}
