// Package cancel provides the cooperative cancellation token the search
// layers poll at their sweep and expansion boundaries.
//
// The design mirrors internal/obs's nil-receiver tracing: a nil *Token is a
// valid, allocation-free no-op, so the hot path pays exactly one pointer
// comparison when no deadline is set and the byte-identical-plan invariant
// is untouched. A non-nil token is an atomic flag the owner (service job,
// CLI deadline, watchdog) flips from outside; search code only ever reads
// it — timers, signals and contexts live here, never in //tofu:searchpath
// packages, which keeps the nodeterm analyzer's clock ban intact.
//
// Cancellation is cooperative and layered: each search layer checks
// Cancelled() between units of work and, when set, returns its best
// incumbent marked Degraded (or the token's reason as an error when it has
// produced nothing yet). The poll points are coarse — once per DP group
// sweep, per branch-and-bound expansion, per pipeline-boundary DFS node —
// so a set token stops a search within one unit, not one instruction.
package cancel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrDeadline is the reason recorded when a time budget expires.
var ErrDeadline = errors.New("search deadline exceeded")

// ErrCancelled is the generic reason for an explicit Cancel() with no
// reason of its own.
var ErrCancelled = errors.New("search cancelled")

// Token is a cooperative cancellation flag. The zero value is ready to use;
// a nil *Token never cancels and costs one nil check to poll.
type Token struct {
	done   atomic.Bool
	reason atomic.Pointer[error]

	// budget is the deadline this token was armed with (WithTimeout), in
	// effect the content-addressable part of the token: two searches with
	// the same budget are the same request even though their wall-clock
	// expiry differs. Zero for tokens without a time budget.
	budget time.Duration

	// pollLimit > 0 switches the token to deterministic test mode: every
	// Cancelled() call counts, and the token trips at exactly pollLimit
	// polls — the same tick on every run at a fixed parallelism.
	pollLimit int64
	polls     atomic.Int64
}

// New returns an unarmed token. Cancel it explicitly, or arm a timer with
// CancelAfter / use WithTimeout.
func New() *Token { return &Token{} }

// WithTimeout returns a token that cancels itself with ErrDeadline after d,
// and the stop function disarming the timer (call it when the search
// returns, like context.CancelFunc). d <= 0 returns a nil token — no
// deadline, no cost.
func WithTimeout(d time.Duration) (*Token, func()) {
	if d <= 0 {
		return nil, func() {}
	}
	t := &Token{budget: d}
	stop := t.CancelAfter(d, ErrDeadline)
	return t, stop
}

// AfterPolls returns a token that cancels itself with ErrDeadline at
// exactly the n-th Cancelled() poll. No wall clock is involved, so a search
// run under it degrades at the same point on every run — the deterministic
// stand-in for a timer in tests.
func AfterPolls(n int64) *Token {
	if n <= 0 {
		n = 1
	}
	return &Token{pollLimit: n}
}

// CancelAfter arms a timer that cancels the token with reason after d. The
// returned stop function disarms it; calling stop after the timer fired is
// a no-op. Several timers may be armed on one token (deadline + watchdog);
// the first to fire wins.
func (t *Token) CancelAfter(d time.Duration, reason error) (stop func()) {
	tm := time.AfterFunc(d, func() { t.Cancel(reason) })
	return func() { tm.Stop() }
}

// Cancel trips the token with reason (nil records ErrCancelled). Only the
// first call's reason is kept; later calls are no-ops. Safe for concurrent
// use from any goroutine.
func (t *Token) Cancel(reason error) {
	if t == nil {
		return
	}
	if reason == nil {
		reason = ErrCancelled
	}
	// CompareAndSwap makes the first canceller the one whose reason sticks:
	// the pointer is published before done flips, so any reader that
	// observes done==true also observes the reason.
	if t.reason.CompareAndSwap(nil, &reason) {
		t.done.Store(true)
	}
}

// Cancelled reports whether the token has tripped. Nil receiver: false at
// the cost of one comparison. This is the only call search code makes.
func (t *Token) Cancelled() bool {
	if t == nil {
		return false
	}
	if t.pollLimit > 0 && t.polls.Add(1) >= t.pollLimit {
		t.Cancel(ErrDeadline)
	}
	return t.done.Load()
}

// Err returns the cancellation reason, or nil while the token is live.
func (t *Token) Err() error {
	if t == nil {
		return nil
	}
	if p := t.reason.Load(); p != nil {
		return *p
	}
	if t.done.Load() {
		return ErrCancelled
	}
	return nil
}

// Budget returns the time budget this token was armed with via WithTimeout
// (zero for unarmed or poll-limited tokens). It is what a digest folds in:
// the request-level deadline, not the nondeterministic expiry instant.
func (t *Token) Budget() time.Duration {
	if t == nil {
		return 0
	}
	return t.budget
}

// Reason wraps err so IsCancellation recognizes it — for layers that want
// to surface "cancelled while doing X" without losing the marker.
func Reason(err error, format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, err)...)
}

// IsCancellation reports whether err is (or wraps) a cancellation reason —
// a deadline, an explicit cancel, or anything recorded via Cancel. Layers
// use it to keep cancellation errors out of infeasibility diagnostics: a
// search that was stopped is not a search that proved "no plan exists".
func IsCancellation(err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(err, ErrCancelled) || errors.Is(err, errMarker)
}

// errMarker lets owners mint their own reasons (watchdog, shutdown) that
// IsCancellation still recognizes: wrap it with NewReason.
var errMarker = errors.New("cancellation")

// NewReason creates a distinct cancellation reason (e.g. "watchdog fired",
// "server shutting down") that IsCancellation recognizes.
func NewReason(msg string) error {
	return fmt.Errorf("%s: %w", msg, errMarker)
}
