package models

import (
	"bytes"
	"testing"
)

func TestParseConfigStrict(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{"family":"rnn","depth":6,"width":4096,"batch":128}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Family: "rnn", Depth: 6, Width: 4096, Batch: 128}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	for name, body := range map[string]string{
		"unknown-field": `{"family":"rnn","depth":6,"width":4096,"batch":128,"layers":6}`,
		"bad-family":    `{"family":"bert","depth":6,"width":4096,"batch":128}`,
		"zero-depth":    `{"family":"rnn","width":4096,"batch":128}`,
		"neg-width":     `{"family":"rnn","depth":6,"width":-1,"batch":128}`,
		"zero-batch":    `{"family":"rnn","depth":6,"width":4096}`,
		"trailing":      `{"family":"rnn","depth":6,"width":4096,"batch":128}{}`,
		"not-object":    `"rnn"`,
	} {
		if _, err := ParseConfig([]byte(body)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCanonicalJSONStable(t *testing.T) {
	cfg := Config{Family: "wresnet", Depth: 152, Width: 10, Batch: 8}
	a, err := cfg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"family":"wresnet","depth":152,"width":10,"batch":8}`
	if string(a) != want {
		t.Fatalf("canonical form %s, want %s", a, want)
	}
	// Round-trip through the strict parser is the identity.
	back, err := ParseConfig(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed bytes: %s vs %s", a, b)
	}
	// Invalid configs cannot be canonicalized.
	if _, err := (Config{Family: "nope", Depth: 1, Width: 1, Batch: 1}).CanonicalJSON(); err == nil {
		t.Fatal("expected error for invalid family")
	}
}
