package models

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Families lists the model families Build understands, in canonical order.
var Families = []string{"mlp", "rnn", "transformer", "wresnet"}

// ValidFamily reports whether Build knows the family.
func ValidFamily(f string) bool {
	for _, k := range Families {
		if k == f {
			return true
		}
	}
	return false
}

// Validate checks that the config identifies a buildable model. It rejects
// unknown families and non-positive sizes so a malformed request fails here,
// with a field-level message, instead of deep inside a model builder.
func (c Config) Validate() error {
	if !ValidFamily(c.Family) {
		return fmt.Errorf("models: unknown family %q (want one of %v)", c.Family, Families)
	}
	if c.Depth < 1 {
		return fmt.Errorf("models: %s: invalid depth %d", c.Family, c.Depth)
	}
	if c.Width < 1 {
		return fmt.Errorf("models: %s: invalid width %d", c.Family, c.Width)
	}
	if c.Batch < 1 {
		return fmt.Errorf("models: %s: invalid batch %d", c.Family, c.Batch)
	}
	return nil
}

// ParseConfig decodes the canonical JSON form of a model config. Unknown
// fields are errors (a misspelled field would silently decode to a zero that
// Validate cannot always distinguish from "absent"), and the result is
// validated, so CLI files and service requests share one strict parser.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("models: decoding config: %w", err)
	}
	// A second document in the same input is a mistake, not extra data to
	// ignore.
	if dec.More() {
		return Config{}, fmt.Errorf("models: trailing data after config")
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// ReadConfig loads a canonical config document from a file path — or from
// stdin when arg is "-" — and strictly parses it: the CLIs' -model-json
// convention, shared so every binary reads configs identically.
func ReadConfig(arg string) (Config, error) {
	var data []byte
	var err error
	if arg == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(arg)
	}
	if err != nil {
		return Config{}, err
	}
	return ParseConfig(data)
}

// CanonicalJSON is the stable one-line encoding of the config: fixed field
// order (family, depth, width, batch), no insignificant whitespace. Equal
// configs always produce identical bytes, which is what the service's
// content digest hashes.
func (c Config) CanonicalJSON() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(c)
}
