package models

import (
	"fmt"

	"tofu/internal/graph"
	"tofu/internal/shape"
	"tofu/internal/tdl"
)

// Transformer builds a single-head Transformer encoder training graph — an
// extension beyond the paper's CNN/RNN evaluation that exercises the same
// machinery on the model family Tofu's line of work (GSPMD, Alpa) later
// targeted. Each block is pre-norm attention plus a feed-forward network:
//
//	h   = x + Attn(LN(x))         Attn(q) = softmax(QKᵀ/√d)·V · Wo
//	out = h + FFN(LN(h))          FFN(u)  = relu(u·W1)·W2
//
// Weight gradients of the token-wise linears reduce over both the batch
// and sequence axes, giving the search the output-reduction strategies the
// paper shows matter (Sec 7.3). The sequence dimension plays the paper's
// "batch" role: it is partitionable without touching the weights.
func Transformer(layers int, dmodel, seqLen, batch int64) (*Model, error) {
	if layers < 1 {
		return nil, fmt.Errorf("models: Transformer needs at least one layer")
	}
	if dmodel%4 != 0 {
		return nil, fmt.Errorf("models: dmodel must be divisible by 4")
	}
	const classes = 128
	g := graph.New()
	x := g.Input("tokens", shape.Of(batch, seqLen, dmodel))

	lnorm := func(name string, h *graph.Tensor) *graph.Tensor {
		gamma := g.Weight(name+".gamma", shape.Of(dmodel))
		beta := g.Weight(name+".beta", shape.Of(dmodel))
		mean := g.Apply("ln3_mean", nil, h)
		vr := g.Apply("ln3_var", nil, h, mean)
		return g.Apply("ln3_norm", nil, h, mean, vr, gamma, beta)
	}
	linear := func(name string, h *graph.Tensor, out int64) *graph.Tensor {
		w := g.Weight(name, shape.Of(h.Shape.Dim(2), out))
		return g.Apply("linear3d", nil, h, w)
	}

	h := x
	for l := 0; l < layers; l++ {
		p := fmt.Sprintf("blk%d", l)

		// Self-attention sub-block.
		normed := lnorm(p+".ln1", h)
		q := linear(p+".wq", normed, dmodel)
		k := linear(p+".wk", normed, dmodel)
		v := linear(p+".wv", normed, dmodel)
		scores := g.Apply("bmm_nt", nil, q, k)        // [B, T, T]
		scores = g.Apply("scale", nil, scores)        // 1/sqrt(d)
		attn := g.Apply("softmax_axis2", nil, scores) // [B, T, T]
		ctx := g.Apply("bmm", nil, attn, v)           // [B, T, D]
		proj := linear(p+".wo", ctx, dmodel)
		h = g.Apply("add", nil, h, proj)

		// Feed-forward sub-block (4x expansion).
		normed = lnorm(p+".ln2", h)
		ff := linear(p+".w1", normed, 4*dmodel)
		ff = g.Apply("gelu", nil, ff)
		ff = linear(p+".w2", ff, dmodel)
		h = g.Apply("add", nil, h, ff)
	}

	// Classifier on the final token.
	pooled := g.Apply("last_token", tdl.Attrs{"pos": seqLen - 1}, h)
	headW := g.Weight("head.w", shape.Of(dmodel, classes))
	logits := g.Apply("matmul", nil, pooled, headW)
	if err := finishTraining(g, logits, classes); err != nil {
		return nil, err
	}
	return &Model{
		Name:   fmt.Sprintf("Transformer-%d-%d", layers, dmodel),
		Family: "transformer",
		G:      g,
		Batch:  batch,
		Cfg:    Config{Family: "transformer", Depth: layers, Width: dmodel, Batch: batch},
		Logits: logits,
	}, nil
}
