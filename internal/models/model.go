// Package models builds the paper's benchmark models as fine-grained
// dataflow graphs: Wide ResNet (WResNet-50/101/152 widened 4-10x) on
// ImageNet-sized inputs, multi-layer LSTM RNNs (6-10 layers, 4K-8K hidden,
// unrolled 20 steps), and an MLP used by the unit tests and the paper's
// Figure 5 exposition. Every model is a full training iteration: forward,
// loss, backward, and Adam-style weight update — the paper's Sec 7.1 setup,
// whose 3·W memory accounting (weight + gradient + history) Table 2 reports.
package models

import (
	"fmt"

	"tofu/internal/graph"
	"tofu/internal/shape"
)

// Model is a benchmark model: a training graph plus metadata the experiment
// harness needs.
type Model struct {
	Name   string
	Family string // "wresnet", "rnn", "mlp"
	G      *graph.Graph
	Batch  int64
	Cfg    Config

	// Logits is the classifier output whose loss gradient seeds autodiff.
	Logits *graph.Tensor
}

// WeightBytes returns parameter bytes; WeightBytes3x includes gradient and
// optimizer history, the quantity Table 2 tabulates.
func (m *Model) WeightBytes() int64 { return m.G.ComputeStats().WeightBytes }

// WeightBytes3x is 3x WeightBytes (weight + gradient + optimizer history).
func (m *Model) WeightBytes3x() int64 { return 3 * m.WeightBytes() }

// Config identifies a model variant; the experiment harness uses it to
// rebuild the same model at different batch sizes. The JSON form is the
// canonical wire encoding shared by the CLIs (-model-json) and the partition
// service (see ParseConfig / Config.CanonicalJSON).
type Config struct {
	Family string `json:"family"` // "wresnet" | "rnn" | "mlp" | "transformer"
	Depth  int    `json:"depth"`  // wresnet: 50/101/152; rnn: layers; mlp: layers
	Width  int64  `json:"width"`  // wresnet: widening factor; rnn: hidden size; mlp: dim
	Batch  int64  `json:"batch"`
}

func (c Config) String() string {
	return fmt.Sprintf("%s-%d-%d@%d", c.Family, c.Depth, c.Width, c.Batch)
}

// Build constructs the model for a config.
func Build(c Config) (*Model, error) {
	switch c.Family {
	case "wresnet":
		return WResNet(c.Depth, c.Width, c.Batch)
	case "rnn":
		return RNN(c.Depth, c.Width, c.Batch, DefaultUnrollSteps)
	case "mlp":
		return MLP(c.Depth, c.Width, c.Batch)
	case "transformer":
		return Transformer(c.Depth, c.Width, DefaultSeqLen, c.Batch)
	default:
		return nil, fmt.Errorf("models: unknown family %q", c.Family)
	}
}

// WithBatch rebuilds the same model at a different batch size.
func (m *Model) WithBatch(batch int64) (*Model, error) {
	cfg := m.Cfg
	cfg.Batch = batch
	return Build(cfg)
}

// finishTraining appends loss seeding, backward pass and optimizer update to
// a forward graph whose classifier logits are given.
func finishTraining(g *graph.Graph, logits *graph.Tensor, classes int64) error {
	labels := g.Input("labels", shape.Of(logits.Shape.Dim(0), classes))
	probs := g.Apply("softmax", nil, logits)
	dLogits := g.Apply("softmax_ce_grad", nil, probs, labels)
	if err := g.Backward(map[*graph.Tensor]*graph.Tensor{logits: dLogits},
		graph.AutodiffOptions{InPlaceAgg: true}); err != nil {
		return err
	}
	return g.ApplyOptimizer("adam")
}
