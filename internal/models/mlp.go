package models

import (
	"fmt"

	"tofu/internal/graph"
	"tofu/internal/shape"
)

// MLP builds a multi-layer perceptron training graph — the model Figure 5
// uses to illustrate coarsening. Each layer is matmul + bias_add + relu.
func MLP(layers int, dim, batch int64) (*Model, error) {
	if layers < 1 {
		return nil, fmt.Errorf("models: MLP needs at least one layer, got %d", layers)
	}
	const classes = 64
	g := graph.New()
	x := g.Input("data", shape.Of(batch, dim))
	h := x
	for l := 0; l < layers; l++ {
		w := g.Weight(fmt.Sprintf("fc%d.w", l), shape.Of(dim, dim))
		b := g.Weight(fmt.Sprintf("fc%d.b", l), shape.Of(dim))
		h = g.Apply("matmul", nil, h, w)
		h = g.Apply("bias_add", nil, h, b)
		h = g.Apply("relu", nil, h)
	}
	wOut := g.Weight("out.w", shape.Of(dim, classes))
	logits := g.Apply("matmul", nil, h, wOut)
	if err := finishTraining(g, logits, classes); err != nil {
		return nil, err
	}
	m := &Model{
		Name:   fmt.Sprintf("MLP-%d-%d", layers, dim),
		Family: "mlp",
		G:      g,
		Batch:  batch,
		Cfg:    Config{Family: "mlp", Depth: layers, Width: dim, Batch: batch},
		Logits: logits,
	}
	return m, nil
}
