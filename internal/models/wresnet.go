package models

import (
	"fmt"

	"tofu/internal/graph"
	"tofu/internal/shape"
	"tofu/internal/tdl"
)

// blockCounts maps ResNet depth to the residual-block repeats per stage
// (He et al. 2016); Figure 11's caption quotes the 152-layer counts.
var blockCounts = map[int][4]int{
	50:  {3, 4, 6, 3},
	101: {3, 4, 23, 3},
	152: {3, 8, 36, 3},
}

// WResNet builds a Wide ResNet training graph on ImageNet-sized inputs
// (224x224). The widening factor multiplies the channel count of every
// convolution (Zagoruyko & Komodakis), which grows the weight tensors
// quadratically — the property that makes the paper's Table 2 models exceed
// single-GPU memory.
func WResNet(depth int, widen, batch int64) (*Model, error) {
	counts, ok := blockCounts[depth]
	if !ok {
		return nil, fmt.Errorf("models: WResNet depth must be 50/101/152, got %d", depth)
	}
	if widen < 1 {
		return nil, fmt.Errorf("models: widening factor must be >= 1, got %d", widen)
	}
	const classes = 1000
	g := graph.New()
	b := &wrnBuilder{g: g}

	img := g.Input("images", shape.Of(batch, 3, 224, 224))

	// Stem: 7x7/2 conv, BN, relu, 2x2/2 max-pool: 224 -> 112 -> 56.
	h := b.convBNRelu("stem", img, 64*widen, 7, 2, true)
	h = g.Apply("maxpool2d", tdl.Attrs{"stride": 2, "kernel": 2}, h)

	// Four stages of bottleneck blocks.
	stageMid := []int64{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		mid := stageMid[stage] * widen
		out := 4 * mid
		for blk := 0; blk < counts[stage]; blk++ {
			stride := int64(1)
			if stage > 0 && blk == 0 {
				stride = 2 // the first block of stages 2-4 halves the map
			}
			h = b.bottleneck(fmt.Sprintf("s%d.b%d", stage+1, blk), h, mid, out, stride)
		}
	}

	// Head: global average pool + fully connected classifier.
	pooled := g.Apply("global_avgpool", nil, h)
	fcW := g.Weight("fc.w", shape.Of(pooled.Shape.Dim(1), classes))
	fcB := g.Weight("fc.b", shape.Of(classes))
	logits := g.Apply("matmul", nil, pooled, fcW)
	logits = g.Apply("bias_add", nil, logits, fcB)

	if err := finishTraining(g, logits, classes); err != nil {
		return nil, err
	}
	m := &Model{
		Name:   fmt.Sprintf("WResNet-%d-%d", depth, widen),
		Family: "wresnet",
		G:      g,
		Batch:  batch,
		Cfg:    Config{Family: "wresnet", Depth: depth, Width: widen, Batch: batch},
		Logits: logits,
	}
	return m, nil
}

type wrnBuilder struct {
	g *graph.Graph
}

// convBNRelu emits conv -> batch-norm (as fine-grained mean/var/norm ops,
// the operator granularity Tofu targets) -> optional relu.
func (b *wrnBuilder) convBNRelu(name string, x *graph.Tensor, outCh, kernel, stride int64, relu bool) *graph.Tensor {
	g := b.g
	w := g.Weight(name+".w", shape.Of(outCh, x.Shape.Dim(1), kernel, kernel))
	h := g.Apply("conv2d", tdl.Attrs{"stride": stride}, x, w)

	gamma := g.Weight(name+".gamma", shape.Of(outCh))
	beta := g.Weight(name+".beta", shape.Of(outCh))
	mean := g.Apply("bn_mean", nil, h)
	vr := g.Apply("bn_var", nil, h, mean)
	h = g.Apply("bn_norm", nil, h, mean, vr, gamma, beta)
	if relu {
		h = g.Apply("relu", nil, h)
	}
	return h
}

// bottleneck is the 3-convolution residual block of ResNet-50/101/152:
// 1x1 reduce, 3x3, 1x1 expand, plus a projection shortcut when the shape
// changes.
func (b *wrnBuilder) bottleneck(name string, x *graph.Tensor, mid, out, stride int64) *graph.Tensor {
	g := b.g
	h := b.convBNRelu(name+".c1", x, mid, 1, 1, true)
	h = b.convBNRelu(name+".c2", h, mid, 3, stride, true)
	h = b.convBNRelu(name+".c3", h, out, 1, 1, false)

	short := x
	if x.Shape.Dim(1) != out || stride != 1 {
		short = b.convBNRelu(name+".sc", x, out, 1, stride, false)
	}
	sum := g.Apply("add", nil, h, short)
	return g.Apply("relu", nil, sum)
}
