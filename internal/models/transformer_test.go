package models

import (
	"testing"
)

func TestTransformerStructure(t *testing.T) {
	m, err := Transformer(2, 256, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per block: 2 LN scale/shift pairs + 4 attention weights + 2 FFN
	// weights; plus the classifier head.
	var weights int
	for range m.G.Weights() {
		weights++
	}
	if want := 2*(4+4+2) + 1; weights != want {
		t.Fatalf("weights = %d, want %d", weights, want)
	}
	for _, w := range m.G.Weights() {
		if w.Grad == nil {
			t.Errorf("weight %v has no gradient", w)
		}
	}
	if _, err := m.G.Describe(m.G.Nodes[0]); err != nil {
		t.Fatal(err)
	}
	// Every op in the attention graph must carry a TDL description.
	for _, n := range m.G.Nodes {
		if _, err := m.G.Describe(n); err != nil {
			t.Errorf("describe %v: %v", n, err)
		}
	}
}

func TestTransformerErrors(t *testing.T) {
	if _, err := Transformer(0, 256, 32, 8); err == nil {
		t.Fatal("expected layers error")
	}
	if _, err := Transformer(2, 250, 32, 8); err == nil {
		t.Fatal("expected dmodel divisibility error")
	}
}

func TestTransformerBuildConfig(t *testing.T) {
	m, err := Build(Config{Family: "transformer", Depth: 2, Width: 256, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Family != "transformer" {
		t.Fatalf("family = %q", m.Family)
	}
	m2, err := m.WithBatch(16)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Batch != 16 {
		t.Fatal("WithBatch lost batch")
	}
}
