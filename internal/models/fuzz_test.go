package models_test

import (
	"bytes"
	"testing"

	"tofu/internal/models"
)

// FuzzParseModelConfig drives the strict config parser with arbitrary bytes.
// Anything it accepts must canonicalize, parse back equal, and canonicalize
// to identical bytes again — configs feed the service's content digest, so
// canonical bytes must be a fixed point. Seed corpus: the benchmark-family
// configs under testdata/fuzz.
func FuzzParseModelConfig(f *testing.F) {
	f.Add([]byte(`{"family":"mlp","depth":4,"width":64,"batch":8}`))
	f.Add([]byte(`{"family":"nope","depth":1,"width":1,"batch":1}`))  // unknown family
	f.Add([]byte(`{"family":"mlp","depth":0,"width":1,"batch":1}`))   // invalid depth
	f.Add([]byte(`{"family":"mlp","depth":1,"width":1,"batch":1}{}`)) // trailing document
	f.Add([]byte(`{"family":"mlp","depht":4}`))                       // misspelled field
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := models.ParseConfig(data)
		if err != nil {
			return
		}
		canon, err := c.CanonicalJSON()
		if err != nil {
			t.Fatalf("accepted config has no canonical form: %v", err)
		}
		c2, err := models.ParseConfig(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		if c2 != c {
			t.Fatalf("config changed across canonicalization: %+v vs %+v", c, c2)
		}
		canon2, err := c2.CanonicalJSON()
		if err != nil {
			t.Fatalf("second canonicalization: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical bytes are not a fixed point:\n%s\n%s", canon, canon2)
		}
	})
}
