package models

import (
	"fmt"
	"testing"

	"tofu/internal/graph"
)

func TestMLPStructure(t *testing.T) {
	m, err := MLP(3, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 layers x (matmul+bias+relu) + out matmul + softmax + ce grad + bwd +
	// adam updates. Check weights got gradients and updates.
	for _, w := range m.G.Weights() {
		if w.Grad == nil {
			t.Errorf("weight %v has no gradient", w)
		}
	}
	var updates int
	for _, n := range m.G.Nodes {
		if n.Op == "adam_update" {
			updates++
		}
	}
	if want := 3*2 + 1; updates != want {
		t.Fatalf("adam updates = %d, want %d", updates, want)
	}
}

func TestMLPErrors(t *testing.T) {
	if _, err := MLP(0, 16, 4); err == nil {
		t.Fatal("expected layer-count error")
	}
}

func TestRNNStructure(t *testing.T) {
	m, err := RNN(2, 256, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shared weights must aggregate gradients across timesteps.
	var aggs int
	for _, n := range m.G.Nodes {
		if n.GradAgg {
			aggs++
		}
	}
	if aggs == 0 {
		t.Fatal("RNN backward must aggregate shared-weight gradients")
	}
	// Every cell node carries an unroll tag for timestep merging.
	var tagged int
	for _, n := range m.G.Nodes {
		if n.UnrollTag != "" {
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatal("RNN nodes must carry unroll tags")
	}
	for _, w := range m.G.Weights() {
		if w.Grad == nil {
			t.Errorf("weight %v has no gradient", w)
		}
	}
}

func TestRNNWeightSizesTable2(t *testing.T) {
	// Table 2 (RNN): total weight sizes in GB at the paper's 3·W accounting.
	// Our LSTM stack has 8H²+4H parameters per layer plus a small projection
	// head; assert the table's growth shape within a 35% band of the paper's
	// absolute numbers.
	paper := map[string]float64{
		"6-4096": 8.4, "8-4096": 11.4, "10-4096": 14.4,
		"6-6144": 18.6, "8-6144": 28.5, "10-6144": 32.1,
		"6-8192": 33.0, "8-8192": 45.3, "10-8192": 57.0,
	}
	for _, layers := range []int{6, 8, 10} {
		for _, hidden := range []int64{4096, 6144, 8192} {
			m, err := RNN(layers, hidden, 4, 2) // batch/steps don't affect weights
			if err != nil {
				t.Fatal(err)
			}
			gotGB := float64(m.WeightBytes3x()) / (1 << 30)
			want := paper[fmt.Sprintf("%d-%d", layers, hidden)]
			if gotGB < want*0.65 || gotGB > want*1.35 {
				t.Errorf("RNN-%d-%d weight3x = %.1f GB, paper %.1f GB", layers, hidden, gotGB, want)
			}
		}
	}
}

func TestWResNetWeightSizesTable2(t *testing.T) {
	// Table 2 (WResNet) shape check: quadratic in the widening factor,
	// roughly ResNet-depth-proportional, within 35% of the paper's numbers.
	paper := map[string]float64{
		"50-4": 4.2, "50-6": 9.6, "50-8": 17.1, "50-10": 26.7,
		"101-4": 7.8, "101-6": 17.1, "101-8": 30.6, "101-10": 47.7,
		"152-4": 10.5, "152-6": 23.4, "152-8": 41.7, "152-10": 65.1,
	}
	for _, depth := range []int{50, 101, 152} {
		for _, widen := range []int64{4, 10} { // extremes; full sweep in benches
			m, err := WResNet(depth, widen, 8)
			if err != nil {
				t.Fatal(err)
			}
			gotGB := float64(m.WeightBytes3x()) / (1 << 30)
			want := paper[fmt.Sprintf("%d-%d", depth, widen)]
			if gotGB < want*0.65 || gotGB > want*1.35 {
				t.Errorf("WResNet-%d-%d weight3x = %.1f GB, paper %.1f GB", depth, widen, gotGB, want)
			}
		}
	}
}

func TestWResNetQuadraticWidening(t *testing.T) {
	m4, err := WResNet(50, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	m8, err := WResNet(50, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(m8.WeightBytes()) / float64(m4.WeightBytes())
	// Conv weights scale 4x when width doubles; the FC head scales 2x, so
	// the ratio lands slightly under 4.
	if ratio < 3.3 || ratio > 4.05 {
		t.Fatalf("widening 4->8 scaled weights by %.2f, want ~4", ratio)
	}
}

func TestWResNetNodeCountMatchesPaperScale(t *testing.T) {
	// Sec 1: "the graph for training a 152-layer ResNet has >1500 operators
	// in MXNet". Our fine-grained graph should be in the same regime.
	m, err := WResNet(152, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(m.G.Nodes); n < 1500 {
		t.Fatalf("WResNet-152 graph has %d nodes, want > 1500", n)
	}
	if err := m.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWResNetErrors(t *testing.T) {
	if _, err := WResNet(34, 4, 8); err == nil {
		t.Fatal("expected unsupported-depth error")
	}
	if _, err := WResNet(50, 0, 8); err == nil {
		t.Fatal("expected widen error")
	}
}

func TestRNNErrors(t *testing.T) {
	if _, err := RNN(0, 128, 4, 5); err == nil {
		t.Fatal("expected layer error")
	}
	if _, err := RNN(2, 128, 4, 0); err == nil {
		t.Fatal("expected steps error")
	}
}

func TestBuildAndWithBatch(t *testing.T) {
	m, err := Build(Config{Family: "mlp", Depth: 2, Width: 64, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := m.WithBatch(32)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Batch != 32 {
		t.Fatalf("WithBatch = %d", m2.Batch)
	}
	if m2.WeightBytes() != m.WeightBytes() {
		t.Fatal("batch size must not change weights")
	}
	if _, err := Build(Config{Family: "nope"}); err == nil {
		t.Fatal("expected unknown-family error")
	}
}

func TestEveryModelOpHasTDL(t *testing.T) {
	// Every operator instance in every model family must carry a TDL
	// description — the paper's premise that the whole graph is analyzable.
	ms := []func() (*Model, error){
		func() (*Model, error) { return MLP(2, 64, 8) },
		func() (*Model, error) { return RNN(2, 128, 8, 3) },
		func() (*Model, error) { return WResNet(50, 1, 8) },
	}
	for _, build := range ms {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range m.G.Nodes {
			if _, err := m.G.Describe(n); err != nil {
				t.Errorf("%s: describe %v: %v", m.Name, n, err)
			}
		}
	}
}

func TestRNNTimestepTags(t *testing.T) {
	m, err := RNN(2, 64, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Forward cell nodes of the same layer share a tag across timesteps.
	perTag := map[string]map[int]int{}
	for _, n := range m.G.Nodes {
		if n.UnrollTag == "" || n.FwdOf != nil {
			continue
		}
		if perTag[n.UnrollTag] == nil {
			perTag[n.UnrollTag] = map[int]int{}
		}
		perTag[n.UnrollTag][n.Timestep]++
	}
	if len(perTag) != 2 {
		t.Fatalf("unroll tags = %d, want 2 layers", len(perTag))
	}
	for tag, steps := range perTag {
		if len(steps) != 3 {
			t.Errorf("tag %s covers %d timesteps, want 3", tag, len(steps))
		}
		// Same op multiset per timestep.
		first := steps[0]
		for ts, n := range steps {
			if n != first {
				t.Errorf("tag %s timestep %d has %d nodes, step0 has %d", tag, ts, n, first)
			}
		}
	}
	_ = graph.Stats{}
}
