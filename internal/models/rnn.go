package models

import (
	"fmt"

	"tofu/internal/graph"
	"tofu/internal/shape"
	"tofu/internal/tdl"
)

// DefaultUnrollSteps matches the paper's RNN setup: "All RNN model variants
// use LSTM cell and are unrolled for 20 steps" (Sec 7.1).
const DefaultUnrollSteps = 20

// DefaultSeqLen is the Transformer sequence length used by Build.
const DefaultSeqLen = 128

// RNN builds a multi-layer LSTM language-model training graph in the style
// of Jozefowicz et al., the paper's RNN benchmark. Each timestep's input is
// a dense [batch, hidden] tensor (embedding lookup is data-dependent
// indexing, which TDL cannot express — Sec 9; the substitution is recorded
// in DESIGN.md). Weights are shared across timesteps, so the backward pass
// exercises gradient aggregation, and every cell op carries an UnrollTag so
// the coarsening pass can merge timesteps (Sec 5.1).
func RNN(layers int, hidden, batch int64, steps int) (*Model, error) {
	if layers < 1 || steps < 1 {
		return nil, fmt.Errorf("models: RNN needs layers >= 1 and steps >= 1")
	}
	const classes = 128 // small projection head; LSTM weights dominate
	g := graph.New()

	// Per-layer shared weights.
	type layerW struct{ wx, wh, b *graph.Tensor }
	ws := make([]layerW, layers)
	for l := range ws {
		ws[l] = layerW{
			wx: g.Weight(fmt.Sprintf("l%d.wx", l), shape.Of(hidden, 4*hidden)),
			wh: g.Weight(fmt.Sprintf("l%d.wh", l), shape.Of(hidden, 4*hidden)),
			b:  g.Weight(fmt.Sprintf("l%d.b", l), shape.Of(4*hidden)),
		}
	}

	// Initial hidden/cell state per layer.
	hs := make([]*graph.Tensor, layers)
	cs := make([]*graph.Tensor, layers)
	for l := 0; l < layers; l++ {
		hs[l] = g.Input(fmt.Sprintf("h0.l%d", l), shape.Of(batch, hidden))
		cs[l] = g.Input(fmt.Sprintf("c0.l%d", l), shape.Of(batch, hidden))
	}

	for t := 0; t < steps; t++ {
		x := g.Input(fmt.Sprintf("x.t%d", t), shape.Of(batch, hidden))
		for l := 0; l < layers; l++ {
			tag := fmt.Sprintf("lstm/l%d", l)
			h, c := lstmCell(g, tag, t, x, hs[l], cs[l], ws[l].wx, ws[l].wh, ws[l].b, hidden)
			hs[l], cs[l] = h, c
			x = h // the layer's output feeds the next layer
		}
	}

	// Classifier on the top layer's final hidden state.
	projW := g.Weight("proj.w", shape.Of(hidden, classes))
	logits := g.Apply("matmul", nil, hs[layers-1], projW)

	if err := finishTraining(g, logits, classes); err != nil {
		return nil, err
	}
	m := &Model{
		Name:   fmt.Sprintf("RNN-%d-%s", layers, hiddenName(hidden)),
		Family: "rnn",
		G:      g,
		Batch:  batch,
		Cfg:    Config{Family: "rnn", Depth: layers, Width: hidden, Batch: batch},
		Logits: logits,
	}
	return m, nil
}

// lstmCell emits the standard LSTM cell as fine-grained operators: two
// matmuls into fused gates, slicing, non-linearities and the state update.
func lstmCell(g *graph.Graph, tag string, t int, x, hPrev, cPrev, wx, wh, bias *graph.Tensor, hidden int64) (h, c *graph.Tensor) {
	start := len(g.Nodes)

	gx := g.Apply("matmul", nil, x, wx)
	gh := g.Apply("matmul", nil, hPrev, wh)
	gates := g.Apply("add", nil, gx, gh)
	gates = g.Apply("bias_add", nil, gates, bias)

	gate := func(idx int64, fn string) *graph.Tensor {
		s := g.Apply("slice_axis1", tdl.Attrs{"offset": idx * hidden, "size": hidden}, gates)
		return g.Apply(fn, nil, s)
	}
	in := gate(0, "sigmoid")
	forget := gate(1, "sigmoid")
	cand := gate(2, "tanh")
	out := gate(3, "sigmoid")

	c = g.Apply("add", nil,
		g.Apply("mul", nil, forget, cPrev),
		g.Apply("mul", nil, in, cand))
	h = g.Apply("mul", nil, out, g.Apply("tanh", nil, c))

	for _, n := range g.Nodes[start:] {
		n.UnrollTag = tag
		n.Timestep = t
	}
	return h, c
}

func hiddenName(h int64) string {
	if h%1024 == 0 {
		return fmt.Sprintf("%dK", h/1024)
	}
	return fmt.Sprintf("%d", h)
}
