package plan

import (
	"bytes"
	"strings"
	"testing"
)

const validDigest = DigestPrefix + "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func TestValidateDigest(t *testing.T) {
	if err := ValidateDigest(validDigest); err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]string{
		"empty":      "",
		"no-prefix":  strings.Repeat("0", 71),
		"short":      DigestPrefix + "0123",
		"long":       validDigest + "0",
		"upper-hex":  DigestPrefix + strings.Repeat("A", 64),
		"non-hex":    DigestPrefix + strings.Repeat("g", 64),
		"md5-prefix": "md5:" + strings.Repeat("0", 64),
	} {
		if err := ValidateDigest(d); err == nil {
			t.Errorf("%s: expected error for %q", name, d)
		}
	}
}

// twoStepPlanJSON returns a minimal valid export with the given digest line
// (empty digest = omitted field).
func planJSON(digest string) string {
	head := "{\n"
	if digest != "" {
		head += `  "digest": "` + digest + "\",\n"
	}
	return head + `  "workers": 4,
  "steps": [
    {"ways": 2, "multiplier": 1, "comm_bytes": 10, "tensor_cut": {}, "op_strategy": {}},
    {"ways": 2, "multiplier": 2, "comm_bytes": 20, "tensor_cut": {}, "op_strategy": {}}
  ],
  "total_comm_bytes": 30
}`
}

func TestReadJSONDigest(t *testing.T) {
	// No digest: fine (old artifacts are unchanged).
	if _, err := ReadJSON(strings.NewReader(planJSON(""))); err != nil {
		t.Fatal(err)
	}
	// Valid digest round-trips.
	ex, err := ReadJSON(strings.NewReader(planJSON(validDigest)))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Digest != validDigest {
		t.Fatalf("digest = %q", ex.Digest)
	}
	// Malformed digest is rejected.
	if _, err := ReadJSON(strings.NewReader(planJSON("sha256:nope"))); err == nil {
		t.Fatal("malformed digest accepted")
	}
}

func TestReadJSONExpect(t *testing.T) {
	other := DigestPrefix + strings.Repeat("f", 64)
	// Matching digest: accepted.
	if _, err := ReadJSONExpect(strings.NewReader(planJSON(validDigest)), validDigest); err != nil {
		t.Fatal(err)
	}
	// Mismatched digest: rejected.
	if _, err := ReadJSONExpect(strings.NewReader(planJSON(validDigest)), other); err == nil {
		t.Fatal("digest mismatch accepted")
	}
	// Missing digest when one is required: rejected.
	if _, err := ReadJSONExpect(strings.NewReader(planJSON("")), validDigest); err == nil {
		t.Fatal("missing digest accepted")
	}
	// Malformed expectation: rejected before reading.
	if _, err := ReadJSONExpect(strings.NewReader(planJSON(validDigest)), "bogus"); err == nil {
		t.Fatal("malformed expectation accepted")
	}
}

func TestWriteJSONEmbedsDigest(t *testing.T) {
	p := &Plan{K: 1, Digest: validDigest}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"digest": "`+validDigest+`"`) {
		t.Fatalf("digest not embedded:\n%s", buf.String())
	}
	// And without a digest the field is absent entirely.
	var buf2 bytes.Buffer
	if err := (&Plan{K: 1}).WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "digest") {
		t.Fatalf("empty digest serialized:\n%s", buf2.String())
	}
}
