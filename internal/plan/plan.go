// Package plan represents the output of Tofu's search: a sequence of basic
// partition plans (Appendix A.1), one per recursive step, each cutting every
// tensor along one dimension among that step's worker groups. The plan is
// what graph generation consumes, and what Figure 11 visualizes.
//
//tofu:searchpath reachable from dp.Solve / recursive.Partition; nodeterm enforces determinism
package plan

import (
	"fmt"
	"strings"

	"tofu/internal/partition"
	"tofu/internal/shape"
)

// Step is one basic partition plan p_i.
type Step struct {
	// K is the number of ways this step divides each tensor (2 for powers
	// of two; a factor of the total worker count otherwise).
	K int64
	// Multiplier is the number of worker groups executing this step
	// concurrently: k1*k2*...*k(i-1).
	Multiplier int64
	// VarCut maps coarsened-variable ID to the cut dimension.
	VarCut map[int]int
	// TensorCut is the cut dimension per tensor ID (dense — tensor IDs
	// index it directly), -1 for tensors uncut at this step.
	TensorCut []int
	// OpStrategy is the chosen partition strategy per node ID (dense); an
	// empty Axis marks nodes without one.
	OpStrategy []partition.Strategy
	// OpComm itemizes each node's communication at this step (fetch vs
	// output bytes, summed over all workers), dense by node ID.
	OpComm []partition.Parts
	// CommBytes is δ_i: the total communication incurred by all worker
	// groups at step i. The DP prices basic plans at the graph's original
	// shapes, which by Lemma 1's linearity equals Multiplier · cost(p_i at
	// the step's divided shapes) — δ_i directly.
	CommBytes float64
	// Level is the interconnect tier this step's communication crosses
	// (index into the topology's levels, 0 = innermost/fastest). Flat
	// machines and topology-blind searches leave it 0; the topology-aware
	// search and sim.Topology.AssignLevels set it, and the simulator prices
	// the step's transfers at that level's bandwidth.
	Level int
	// States/Configs record search effort (Table 1).
	States, Configs int
	// Stage is the pipeline stage this step belongs to. Flat (non-pipelined)
	// plans leave it 0 and carry no Pipeline descriptor; stage-annotated
	// plans restart the Multiplier chain at 1 inside each stage, because each
	// stage's sub-machine divides only that stage's tensors.
	Stage int
}

// Delta is δ_i, the total communication incurred by all worker groups at
// step i (Theorem 2's monotone quantity).
func (s *Step) Delta() float64 { return s.CommBytes }

// Plan is the full recursive partition plan for K workers.
type Plan struct {
	K     int64
	Steps []*Step
	// FinalShapes maps tensor ID to its per-worker shard shape.
	FinalShapes map[int]shape.Shape
	// Digest, when set, is the content digest ("sha256:<hex>") of the
	// canonical request that produced this plan — the partition service's
	// cache key. WriteJSON embeds it so a persisted plan names the request
	// it answers; the search itself leaves it empty.
	Digest string
	// Pipeline, when non-nil, marks a hybrid-parallel plan: the steps are
	// per-stage partition plans concatenated in stage order (see Step.Stage),
	// and the descriptor records how the stages map onto the machine. Flat
	// plans leave it nil and serialize byte-identically to before it existed.
	Pipeline *PipelineInfo
	// Degraded marks an anytime result: a deadline or cancellation stopped
	// the search before it proved optimality, so this is the best incumbent
	// found in the budget — still a valid, feasible plan, just not
	// necessarily the optimum. Deadline-free searches never set it, and the
	// JSON form omits it when false, so their plans stay byte-identical.
	Degraded bool
}

// PipelineInfo describes the stage structure of a hybrid-parallel plan.
type PipelineInfo struct {
	// Level is the interconnect level the stage hand-offs cross (an index
	// into the machine's levels, >= 1).
	Level int `json:"level"`
	// Stages lists the stages in execution order.
	Stages []StageInfo `json:"stages"`
}

// StageInfo is one pipeline stage of a hybrid-parallel plan.
type StageInfo struct {
	// Groups is the [lo, hi) coarsened-group range the stage executes.
	Groups [2]int `json:"groups"`
	// Workers is the stage's GPU count; every stage has the same.
	Workers int64 `json:"workers"`
	// HandoffBytes is the activation/gradient traffic crossing into the next
	// stage each iteration; 0 on the last stage.
	HandoffBytes float64 `json:"handoff_bytes"`
}

// TotalComm returns Σ δ_i — the objective the recursive algorithm minimizes.
func (p *Plan) TotalComm() float64 {
	t := 0.0
	for _, s := range p.Steps {
		t += s.Delta()
	}
	return t
}

// Monotone reports whether δ_i ≤ δ_(i+1) holds across steps — Theorem 2's
// invariant (allowing a small numerical slack).
func (p *Plan) Monotone() bool {
	const slack = 1e-6
	for i := 0; i+1 < len(p.Steps); i++ {
		a, b := p.Steps[i].Delta(), p.Steps[i+1].Delta()
		if a > b*(1+slack)+slack {
			return false
		}
	}
	return true
}

// TensorCuts returns the per-step cut dimensions for a tensor (empty if the
// tensor is never referenced by an operator).
func (p *Plan) TensorCuts(tensorID int) []int {
	var out []int
	for _, s := range p.Steps {
		if tensorID < 0 || tensorID >= len(s.TensorCut) || s.TensorCut[tensorID] < 0 {
			return nil
		}
		out = append(out, s.TensorCut[tensorID])
	}
	return out
}

// CutSummary renders a tensor's cut sequence like "dim0/2 · dim1/2 · dim1/2"
// — the notation behind Figure 11's tile diagrams. On stage-annotated plans
// a tensor is cut only by its own stage's steps, so the summary walks the
// steps and keeps the cuts that exist instead of demanding one per step.
func (p *Plan) CutSummary(tensorID int) string {
	if p.Pipeline != nil {
		var parts []string
		for _, s := range p.Steps {
			if tensorID >= 0 && tensorID < len(s.TensorCut) {
				if d := s.TensorCut[tensorID]; d >= 0 {
					parts = append(parts, fmt.Sprintf("dim%d/%d", d, s.K))
				}
			}
		}
		if len(parts) == 0 {
			return "unpartitioned"
		}
		return strings.Join(parts, " · ")
	}
	cuts := p.TensorCuts(tensorID)
	if len(cuts) == 0 {
		return "unpartitioned"
	}
	parts := make([]string, len(cuts))
	for i, d := range cuts {
		parts[i] = fmt.Sprintf("dim%d/%d", d, p.Steps[i].K)
	}
	return strings.Join(parts, " · ")
}

// ShardDims returns, per dimension, the total number of ways the tensor is
// divided along that dimension across all steps.
func (p *Plan) ShardDims(tensorID int, rank int) []int64 {
	ways := make([]int64, rank)
	for i := range ways {
		ways[i] = 1
	}
	for _, s := range p.Steps {
		if tensorID >= 0 && tensorID < len(s.TensorCut) {
			if d := s.TensorCut[tensorID]; d >= 0 {
				ways[d] *= s.K
			}
		}
	}
	return ways
}
