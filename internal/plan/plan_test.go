package plan

import (
	"strings"
	"testing"

	"tofu/internal/shape"
)

func twoStepPlan() *Plan {
	return &Plan{
		K: 4,
		Steps: []*Step{
			{K: 2, Multiplier: 1, TensorCut: []int{-1, 0, 1}, CommBytes: 100},
			{K: 2, Multiplier: 2, TensorCut: []int{-1, 1, 1}, CommBytes: 150},
		},
	}
}

func TestTotalCommAndDelta(t *testing.T) {
	p := twoStepPlan()
	if got := p.TotalComm(); got != 250 {
		t.Fatalf("TotalComm = %g", got)
	}
	if p.Steps[0].Delta() != 100 || p.Steps[1].Delta() != 150 {
		t.Fatal("Delta should be the priced-at-original-shapes cost")
	}
}

func TestMonotone(t *testing.T) {
	p := twoStepPlan()
	if !p.Monotone() {
		t.Fatal("100 <= 150 should be monotone")
	}
	p.Steps[1].CommBytes = 50
	if p.Monotone() {
		t.Fatal("100 > 50 violates Theorem 2")
	}
	// Numerical slack: tiny decreases tolerated.
	p.Steps[1].CommBytes = 100 - 1e-9
	if !p.Monotone() {
		t.Fatal("epsilon decrease should pass the slack")
	}
}

func TestTensorCuts(t *testing.T) {
	p := twoStepPlan()
	if got := p.TensorCuts(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("TensorCuts(1) = %v", got)
	}
	if got := p.TensorCuts(99); got != nil {
		t.Fatalf("unknown tensor should have no cuts, got %v", got)
	}
}

func TestCutSummary(t *testing.T) {
	p := twoStepPlan()
	s := p.CutSummary(1)
	if !strings.Contains(s, "dim0/2") || !strings.Contains(s, "dim1/2") {
		t.Fatalf("CutSummary = %q", s)
	}
	if got := p.CutSummary(99); got != "unpartitioned" {
		t.Fatalf("unknown tensor summary = %q", got)
	}
}

func TestShardDims(t *testing.T) {
	p := twoStepPlan()
	dims := p.ShardDims(2, 2) // cut dim1 twice
	if dims[0] != 1 || dims[1] != 4 {
		t.Fatalf("ShardDims = %v", dims)
	}
	dims = p.ShardDims(1, 2) // dim0 then dim1
	if dims[0] != 2 || dims[1] != 2 {
		t.Fatalf("ShardDims = %v", dims)
	}
	prod := int64(1)
	for _, d := range dims {
		prod *= d
	}
	if prod != p.K {
		t.Fatalf("shards multiply to %d, want %d", prod, p.K)
	}
}

func TestEmptyPlan(t *testing.T) {
	p := &Plan{K: 1, FinalShapes: map[int]shape.Shape{}}
	if p.TotalComm() != 0 {
		t.Fatal("empty plan has no communication")
	}
	if !p.Monotone() {
		t.Fatal("empty plan is trivially monotone")
	}
}
