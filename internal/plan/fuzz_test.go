package plan_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"tofu/internal/plan"
)

// FuzzReadPlanJSON drives the strict plan reader with arbitrary bytes. The
// invariant under test: anything ReadJSON accepts must re-marshal, be
// accepted again, and re-marshal to identical bytes — the byte-stability the
// digest-keyed plan cache depends on. Seed corpus: real tofu-plan exports
// (flat and hierarchical) under testdata/fuzz.
func FuzzReadPlanJSON(f *testing.F) {
	f.Add([]byte(`{"workers":2,"steps":[],"total_comm_bytes":0}`))
	f.Add([]byte(`{"workers":0}`))                                                                                                          // invalid worker count
	f.Add([]byte(`{"workers":2,"steps":[{"ways":1,"multiplier":1,"comm_bytes":0,"tensor_cut":{},"op_strategy":{}}],"total_comm_bytes":0}`)) // invalid ways
	f.Add([]byte(`{"digest":"sha256:zz","workers":2,"steps":[],"total_comm_bytes":0}`))                                                     // malformed digest
	f.Add([]byte(`{"workers":2,"unknown":1}`))                                                                                              // unknown field
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ex, err := plan.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := json.Marshal(ex)
		if err != nil {
			t.Fatalf("accepted export does not re-marshal: %v", err)
		}
		ex2, err := plan.ReadJSON(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-marshaled export rejected: %v\n%s", err, out)
		}
		out2, err := json.Marshal(ex2)
		if err != nil {
			t.Fatalf("second marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("plan round-trip is not byte-stable:\n%s\n%s", out, out2)
		}
	})
}
