package plan

import (
	"bytes"
	"strings"
	"testing"

	"tofu/internal/partition"
)

func exportablePlan() *Plan {
	strategies := func(st partition.Strategy) []partition.Strategy {
		out := make([]partition.Strategy, 8)
		out[7] = st
		return out
	}
	return &Plan{
		K: 4,
		Steps: []*Step{
			{
				K: 2, Multiplier: 1, CommBytes: 100,
				TensorCut:  []int{-1, 0, 1},
				OpStrategy: strategies(partition.Strategy{Kind: partition.SplitOutput, Axis: "i", OutDim: 0}),
			},
			{
				K: 2, Multiplier: 2, CommBytes: 150,
				TensorCut:  []int{-1, 1, 1},
				OpStrategy: strategies(partition.Strategy{Kind: partition.SplitReduce, Axis: "k", OutDim: -1}),
			},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := exportablePlan()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`"workers": 4`, `"ways": 2`, `"reduce"`, `"output"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("serialized plan missing %q:\n%s", frag, out)
		}
	}
	ex, err := ReadJSON(&buf)
	if err != nil {
		// buf was drained by the first read; re-serialize.
		var buf2 bytes.Buffer
		if err := p.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		ex, err = ReadJSON(&buf2)
		if err != nil {
			t.Fatal(err)
		}
	}
	if ex.Workers != 4 || len(ex.Steps) != 2 {
		t.Fatalf("round trip lost structure: %+v", ex)
	}
	if ex.TotalCommBytes != 250 {
		t.Fatalf("total comm = %g", ex.TotalCommBytes)
	}
	if ex.Steps[0].TensorCut["1"] != 0 || ex.Steps[1].TensorCut["1"] != 1 {
		t.Fatalf("tensor cuts lost: %+v", ex.Steps)
	}
	if ex.Steps[1].OpStrategy["7"].Kind != "reduce" {
		t.Fatalf("strategy kind lost: %+v", ex.Steps[1].OpStrategy)
	}
}

func TestReadJSONValidation(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"workers": 0, "steps": []}`,
		`{"workers": 4, "steps": [{"ways": 1}]}`,
		`{"workers": 8, "steps": [{"ways": 2}, {"ways": 2}]}`, // product 4 != 8
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadJSON(%q) accepted invalid input", c)
		}
	}
}

// TestReadJSONRejectsMalformed locks the parse-audit contract: malformed
// identifiers, unknown strategy kinds, inconsistent multipliers and unknown
// fields are errors, never silently-accepted zero values.
func TestReadJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unknown field", `{"workers": 2, "bogus": 1, "steps": [{"ways": 2, "multiplier": 1, "comm_bytes": 0, "tensor_cut": {}, "op_strategy": {}}]}`},
		{"bad tensor id", `{"workers": 2, "steps": [{"ways": 2, "multiplier": 1, "comm_bytes": 0, "tensor_cut": {"x": 0}, "op_strategy": {}}]}`},
		{"negative cut dim", `{"workers": 2, "steps": [{"ways": 2, "multiplier": 1, "comm_bytes": 0, "tensor_cut": {"1": -1}, "op_strategy": {}}]}`},
		{"bad node id", `{"workers": 2, "steps": [{"ways": 2, "multiplier": 1, "comm_bytes": 0, "tensor_cut": {}, "op_strategy": {"n7": {"kind": "output", "axis": "i"}}}]}`},
		{"unknown kind", `{"workers": 2, "steps": [{"ways": 2, "multiplier": 1, "comm_bytes": 0, "tensor_cut": {}, "op_strategy": {"7": {"kind": "shuffle", "axis": "i"}}}]}`},
		{"missing axis", `{"workers": 2, "steps": [{"ways": 2, "multiplier": 1, "comm_bytes": 0, "tensor_cut": {}, "op_strategy": {"7": {"kind": "output"}}}]}`},
		{"bad multiplier", `{"workers": 4, "steps": [{"ways": 2, "multiplier": 1, "comm_bytes": 0, "tensor_cut": {}, "op_strategy": {}}, {"ways": 2, "multiplier": 3, "comm_bytes": 0, "tensor_cut": {}, "op_strategy": {}}]}`},
		{"negative comm", `{"workers": 2, "steps": [{"ways": 2, "multiplier": 1, "comm_bytes": -5, "tensor_cut": {}, "op_strategy": {}}]}`},
	}
	for _, tc := range cases {
		if _, err := ReadJSON(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
		}
	}
	// A well-formed plan still parses.
	p := exportablePlan()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf); err != nil {
		t.Fatalf("well-formed plan rejected: %v", err)
	}
}
