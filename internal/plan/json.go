package plan

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Export is the stable, serializable form of a partition plan, for tooling
// that wants to persist or diff plans (the original prototype emitted its
// plans into NNVM graph attributes the same way).
type Export struct {
	// Digest is the content digest ("sha256:<64 hex>") of the canonical
	// request this plan answers (see Plan.Digest). Omitted for plans
	// produced outside the request path, so their JSON is unchanged.
	Digest  string       `json:"digest,omitempty"`
	Workers int64        `json:"workers"`
	Steps   []StepExport `json:"steps"`
	// Pipeline describes the stage structure of a hybrid-parallel plan;
	// omitted for flat plans, so their JSON is unchanged.
	Pipeline *PipelineInfo `json:"pipeline,omitempty"`
	// Degraded marks an anytime result a deadline stopped early (see
	// Plan.Degraded); omitted for complete plans, so their JSON is
	// unchanged.
	Degraded bool `json:"degraded,omitempty"`
	// TotalCommBytes is Σ δ_i.
	TotalCommBytes float64 `json:"total_comm_bytes"`
}

// StepExport is one basic partition plan.
type StepExport struct {
	Ways       int64   `json:"ways"`
	Multiplier int64   `json:"multiplier"`
	CommBytes  float64 `json:"comm_bytes"`
	// Level is the interconnect tier the step's communication crosses;
	// omitted for flat plans, so their JSON is unchanged.
	Level int `json:"level,omitempty"`
	// Stage is the pipeline stage the step belongs to; omitted for flat
	// plans and first-stage steps (absent means 0).
	Stage      int              `json:"stage,omitempty"`
	TensorCut  map[string]int   `json:"tensor_cut"` // tensor ID (decimal) -> dim
	OpStrategy map[string]strat `json:"op_strategy"`
}

type strat struct {
	Kind string `json:"kind"` // "output" | "reduce"
	Axis string `json:"axis"`
	Dim  int    `json:"dim,omitempty"`
}

// ToExport converts a plan into its serializable form.
func (p *Plan) ToExport() Export {
	ex := Export{Digest: p.Digest, Workers: p.K, Pipeline: p.Pipeline, Degraded: p.Degraded, TotalCommBytes: p.TotalComm()}
	for _, s := range p.Steps {
		se := StepExport{
			Ways: s.K, Multiplier: s.Multiplier, CommBytes: s.CommBytes, Level: s.Level, Stage: s.Stage,
			TensorCut:  make(map[string]int, len(s.TensorCut)),
			OpStrategy: make(map[string]strat, len(s.OpStrategy)),
		}
		for tid, d := range s.TensorCut {
			if d >= 0 {
				se.TensorCut[fmt.Sprint(tid)] = d
			}
		}
		for nid, st := range s.OpStrategy {
			if st.Axis == "" {
				continue
			}
			se.OpStrategy[fmt.Sprint(nid)] = strat{
				Kind: st.Kind.String(), Axis: st.Axis, Dim: st.OutDim,
			}
		}
		ex.Steps = append(ex.Steps, se)
	}
	return ex
}

// WriteJSON serializes the plan.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.ToExport())
}

// ReadJSON parses a serialized plan back into its export form (tensor and
// node identities belong to the original graph, so the export — not a full
// Plan — is the unit of exchange). Every field is validated: malformed
// identifiers, unknown strategy kinds and inconsistent multipliers are
// errors, never silently-accepted zero values.
func ReadJSON(r io.Reader) (Export, error) {
	var ex Export
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ex); err != nil {
		return Export{}, fmt.Errorf("plan: decoding: %w", err)
	}
	if ex.Digest != "" {
		if err := ValidateDigest(ex.Digest); err != nil {
			return Export{}, err
		}
	}
	if ex.Workers < 1 {
		return Export{}, fmt.Errorf("plan: invalid worker count %d", ex.Workers)
	}
	if ex.Pipeline != nil {
		if err := validatePipeline(ex.Pipeline, ex.Workers); err != nil {
			return Export{}, err
		}
	}
	// Flat plans chain one multiplier product across all steps; stage-
	// annotated plans restart the chain at 1 inside each stage (every
	// stage's sub-machine divides only that stage's tensors), and the
	// per-stage products must each reach the stage's worker count.
	prod := int64(1)
	curStage := 0
	for si, s := range ex.Steps {
		if s.Ways < 2 {
			return Export{}, fmt.Errorf("plan: step %d: invalid ways %d", si, s.Ways)
		}
		if ex.Pipeline == nil {
			if s.Stage != 0 {
				return Export{}, fmt.Errorf("plan: step %d: stage %d without a pipeline descriptor", si, s.Stage)
			}
		} else {
			if s.Stage < curStage || s.Stage >= len(ex.Pipeline.Stages) {
				return Export{}, fmt.Errorf("plan: step %d: stage %d out of order (at stage %d of %d)",
					si, s.Stage, curStage, len(ex.Pipeline.Stages))
			}
			if s.Stage > curStage {
				if s.Stage != curStage+1 {
					return Export{}, fmt.Errorf("plan: stage %d has no steps", curStage+1)
				}
				if prod != ex.Pipeline.Stages[curStage].Workers {
					return Export{}, fmt.Errorf("plan: stage %d steps multiply to %d, want %d workers",
						curStage, prod, ex.Pipeline.Stages[curStage].Workers)
				}
				curStage++
				prod = 1
			}
		}
		if s.Multiplier != prod {
			return Export{}, fmt.Errorf("plan: step %d: multiplier %d, want %d (product of prior ways)",
				si, s.Multiplier, prod)
		}
		if s.CommBytes < 0 || math.IsNaN(s.CommBytes) {
			return Export{}, fmt.Errorf("plan: step %d: invalid comm bytes %g", si, s.CommBytes)
		}
		if s.Level < 0 {
			return Export{}, fmt.Errorf("plan: step %d: invalid level %d", si, s.Level)
		}
		for tid, d := range s.TensorCut {
			id, err := strconv.Atoi(tid)
			if err != nil || id < 0 {
				return Export{}, fmt.Errorf("plan: step %d: malformed tensor ID %q", si, tid)
			}
			if d < 0 {
				return Export{}, fmt.Errorf("plan: step %d: tensor %s: invalid cut dim %d", si, tid, d)
			}
		}
		for nid, st := range s.OpStrategy {
			id, err := strconv.Atoi(nid)
			if err != nil || id < 0 {
				return Export{}, fmt.Errorf("plan: step %d: malformed node ID %q", si, nid)
			}
			switch st.Kind {
			case "output":
				if st.Dim < 0 {
					return Export{}, fmt.Errorf("plan: step %d: node %s: invalid output dim %d", si, nid, st.Dim)
				}
			case "reduce":
				// Dim is unused for reductions.
			default:
				return Export{}, fmt.Errorf("plan: step %d: node %s: unknown strategy kind %q", si, nid, st.Kind)
			}
			if st.Axis == "" {
				return Export{}, fmt.Errorf("plan: step %d: node %s: missing strategy axis", si, nid)
			}
		}
		prod *= s.Ways
	}
	if ex.Pipeline == nil {
		if prod != ex.Workers {
			return Export{}, fmt.Errorf("plan: steps multiply to %d, want %d", prod, ex.Workers)
		}
	} else {
		if curStage != len(ex.Pipeline.Stages)-1 {
			return Export{}, fmt.Errorf("plan: stage %d has no steps", curStage+1)
		}
		if prod != ex.Pipeline.Stages[curStage].Workers {
			return Export{}, fmt.Errorf("plan: stage %d steps multiply to %d, want %d workers",
				curStage, prod, ex.Pipeline.Stages[curStage].Workers)
		}
	}
	return ex, nil
}

// validatePipeline audits a hybrid plan's stage descriptor: at least two
// stages of equal worker count multiplying to the plan's total, contiguous
// ascending group ranges from 0, hand-off bytes finite and absent on the
// last stage, and a stage level above the sub-machine's.
func validatePipeline(pl *PipelineInfo, workers int64) error {
	if pl.Level < 1 {
		return fmt.Errorf("plan: pipeline level %d invalid (stages straddle a level >= 1)", pl.Level)
	}
	if len(pl.Stages) < 2 {
		return fmt.Errorf("plan: pipeline with %d stage(s); need at least 2", len(pl.Stages))
	}
	kSub := pl.Stages[0].Workers
	if kSub < 1 {
		return fmt.Errorf("plan: pipeline stage 0: invalid worker count %d", kSub)
	}
	prevHi := 0
	for si, st := range pl.Stages {
		if st.Workers != kSub {
			return fmt.Errorf("plan: pipeline stage %d: %d workers, want %d (stages are equal sub-machines)",
				si, st.Workers, kSub)
		}
		if st.Groups[0] != prevHi || st.Groups[1] <= st.Groups[0] {
			return fmt.Errorf("plan: pipeline stage %d: group range [%d,%d) not contiguous after %d",
				si, st.Groups[0], st.Groups[1], prevHi)
		}
		prevHi = st.Groups[1]
		if st.HandoffBytes < 0 || math.IsNaN(st.HandoffBytes) || math.IsInf(st.HandoffBytes, 0) {
			return fmt.Errorf("plan: pipeline stage %d: invalid handoff bytes %g", si, st.HandoffBytes)
		}
		if si == len(pl.Stages)-1 && st.HandoffBytes != 0 {
			return fmt.Errorf("plan: last pipeline stage hands off %g bytes; want 0", st.HandoffBytes)
		}
	}
	if got := kSub * int64(len(pl.Stages)); got != workers {
		return fmt.Errorf("plan: pipeline stages cover %d workers, want %d", got, workers)
	}
	return nil
}

// DigestPrefix prefixes every request content digest.
const DigestPrefix = "sha256:"

// ValidateDigest checks the "sha256:<64 lowercase hex>" shape of a content
// digest — the same silent-garbage audit ReadJSON applies to IDs and
// strategy kinds, extended to the digest field.
func ValidateDigest(d string) error {
	if len(d) != len(DigestPrefix)+64 || d[:len(DigestPrefix)] != DigestPrefix {
		return fmt.Errorf("plan: malformed digest %q (want %s<64 hex>)", d, DigestPrefix)
	}
	for _, c := range d[len(DigestPrefix):] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("plan: malformed digest %q (want %s<64 hex>)", d, DigestPrefix)
		}
	}
	return nil
}

// ReadJSONExpect is ReadJSON that additionally requires the plan to answer
// the request identified by want: a missing or different embedded digest is
// an error. This is how a plan fetched by digest (the service's
// /v1/plans/{digest}, a cached artifact on disk) proves it belongs to the
// request the caller hashed.
func ReadJSONExpect(r io.Reader, want string) (Export, error) {
	if err := ValidateDigest(want); err != nil {
		return Export{}, err
	}
	ex, err := ReadJSON(r)
	if err != nil {
		return Export{}, err
	}
	if ex.Digest != want {
		return Export{}, fmt.Errorf("plan: digest mismatch: plan carries %q, want %q", ex.Digest, want)
	}
	return ex, nil
}
