// Package core wires Tofu's pieces into the end-to-end pipeline the paper
// describes: TDL descriptions and their symbolic-interval analysis discover
// each operator's partition strategies (Sec 4), coarsening and the recursive
// DP choose the plan (Sec 5), graph generation materializes the per-worker
// execution with its memory optimizations (Sec 6), and the memory planner
// plus simulator stand in for MXNet's allocator and the 8-GPU testbed.
package core

import (
	"fmt"
	"time"

	"tofu/internal/cancel"
	"tofu/internal/coarsen"
	"tofu/internal/graph"
	"tofu/internal/graphgen"
	"tofu/internal/hybrid"
	"tofu/internal/memplan"
	"tofu/internal/obs"
	"tofu/internal/plan"
	"tofu/internal/recursive"
	"tofu/internal/sim"
)

// Options configure the pipeline.
type Options struct {
	// Search forwards to the recursive partitioner.
	Search recursive.Options
	// Gen toggles the Sec 6 graph-generation optimizations.
	Gen graphgen.Options
	// Mem configures the per-worker memory planner.
	Mem memplan.Options
	// Topology overrides the simulated machine (DefaultTopology when nil)
	// and, when hierarchical, switches the search into topology-aware mode.
	Topology *sim.Topology
	// Pipeline, when non-nil, switches Partition into the joint
	// hybrid-parallelism search: pipeline stages across a slow interconnect
	// level, the partition DP inside each stage. Requires a hierarchical
	// Topology whose GPU count equals the worker count.
	Pipeline *PipelineSpec
	// Trace, if non-nil, records the whole pipeline's span tree under the
	// given parent (coarsening, DP solves, ordering branch-and-bound,
	// hybrid segments, pricing). nil — the default — records nothing and
	// adds no allocations; plans are byte-identical either way.
	Trace *obs.Span
	// Cancel, if non-nil, bounds the search: every layer polls the token at
	// its sweep/expansion boundaries and, when it trips, returns its best
	// incumbent marked Degraded (see Summary.Degraded) or the token's
	// reason when nothing completed in the budget. Arm one with
	// cancel.WithTimeout for a wall-clock deadline. nil — the default —
	// costs one pointer comparison per poll and leaves plans
	// byte-identical at any parallelism.
	Cancel *cancel.Token
}

// PipelineSpec requests hybrid (pipeline x partition) search.
type PipelineSpec struct {
	// Level is the interconnect level the stages straddle (0 = search all).
	Level int
	// MicroBatches divides the batch for pipelined simulation (0 = one
	// micro-batch per stage when the batch divides evenly, else 1). The
	// chosen plan does not depend on it.
	MicroBatches int
	// Exhaustive disables branch-and-bound pruning (differential oracle;
	// plans are byte-identical either way).
	Exhaustive bool
}

// SetHW is the flat-machine compatibility setter: it wraps an HW into a
// single-level topology.
func (o *Options) SetHW(hw sim.HW) {
	t := sim.FlatTopology(hw)
	o.Topology = &t
}

// topology resolves the effective machine.
func (o Options) topology() sim.Topology {
	if o.Topology != nil {
		return *o.Topology
	}
	return sim.DefaultTopology()
}

// DefaultOptions matches the full system.
func DefaultOptions() Options {
	return Options{Gen: graphgen.DefaultOptions(), Mem: memplan.DefaultOptions()}
}

// Summary is the result of partitioning a training graph end to end.
type Summary struct {
	// Plan is the chosen partition plan (one basic plan per recursive step).
	Plan *plan.Plan
	// Sharded is the per-worker execution structure.
	Sharded *graphgen.Sharded
	// Memory is the per-worker footprint under the plan.
	Memory memplan.Report
	// SearchTime is the wall-clock cost of the search (Table 1's metric).
	SearchTime time.Duration
	// Search reports the topology-aware ordering search's effort (zero for
	// flat machines and topology-blind searches).
	Search recursive.SearchStats
	// Hybrid is the joint pipeline-and-partition result when Options.Pipeline
	// requested one: per-stage plans and execution structures. Plan then
	// holds the combined stage-annotated plan, Sharded is nil (execution is
	// per stage), and Memory is the worst stage's footprint.
	Hybrid *hybrid.Result
	// Frontier is the coarsened graph's maximum DP frontier width.
	Frontier int
	// Groups and Vars describe the coarsened search space.
	Groups, Vars int
	// Degraded reports that Options.Cancel tripped mid-search and Plan is
	// the best incumbent found within the budget rather than the proven
	// optimum (mirrors Plan.Degraded). Deadline-free runs never set it.
	Degraded bool
}

// Partition runs the full Tofu pipeline on a training graph for k workers.
func Partition(g *graph.Graph, k int64, opts Options) (*Summary, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	co, err := coarsen.Coarsen(g)
	if err != nil {
		return nil, err
	}
	if opts.Pipeline != nil {
		return partitionHybrid(g, k, co, opts)
	}
	search := opts.Search
	if search.Topology == nil && opts.Topology != nil && int64(opts.Topology.NumGPUs()) == k {
		// A hierarchical machine makes the search topology-aware; a flat one
		// (or an explicit Search.Topology) changes nothing. Partitioning for
		// a different worker count than the simulated machine stays legal —
		// the search just runs topology-blind, as before.
		search.Topology = opts.Topology
	}
	if search.Stats == nil {
		search.Stats = &recursive.SearchStats{}
	}
	if search.Trace == nil {
		search.Trace = opts.Trace
	}
	if search.Cancel == nil {
		search.Cancel = opts.Cancel
	}
	start := time.Now()
	p, err := recursive.Partition(g, k, search)
	if err != nil {
		return nil, err
	}
	if opts.Topology != nil {
		// Plans the search could not annotate (k != the machine's GPU count,
		// so the topology-aware mode stayed off) still run on the real
		// machine: give them the blind cyclic-placement layout so the
		// simulator prices their transfers at the levels they actually
		// cross. Annotated plans are left untouched.
		opts.Topology.AssignLevels(p)
	}
	elapsed := time.Since(start)
	sh, err := graphgen.Generate(g, p, opts.Gen)
	if err != nil {
		return nil, err
	}
	return &Summary{
		Plan:       p,
		Sharded:    sh,
		Memory:     memplan.Plan(sh, opts.Mem),
		SearchTime: elapsed,
		Search:     *search.Stats,
		Frontier:   co.MaxFrontier(),
		Groups:     len(co.Groups),
		Vars:       len(co.Vars),
		Degraded:   p.Degraded,
	}, nil
}

// partitionHybrid is the Options.Pipeline branch of Partition: the joint
// search stages the graph across a slow interconnect level and partitions
// within each stage.
func partitionHybrid(g *graph.Graph, k int64, co *coarsen.Coarse, opts Options) (*Summary, error) {
	if opts.Search.StrategyFilter != nil || opts.Search.Factors != nil || opts.Search.TopologyNaive {
		return nil, fmt.Errorf("core: pipeline search does not compose with strategy filters, explicit factors or naive ordering")
	}
	if opts.Topology == nil {
		return nil, fmt.Errorf("core: pipeline search needs a hierarchical topology")
	}
	var st hybrid.Stats
	start := time.Now()
	res, err := hybrid.Partition(g, k, hybrid.Options{
		Topology:    opts.Topology,
		Level:       opts.Pipeline.Level,
		DType:       opts.Search.DType,
		MaxStates:   opts.Search.MaxStates,
		Parallelism: opts.Search.Parallelism,
		Gen:         opts.Gen,
		Cache:       opts.Search.Cache,
		Exhaustive:  opts.Pipeline.Exhaustive,
		Stats:       &st,
		Trace:       opts.Trace,
		Cancel:      opts.Cancel,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	s := &Summary{
		Plan:       res.Plan,
		Hybrid:     res,
		SearchTime: elapsed,
		Frontier:   co.MaxFrontier(),
		Groups:     len(co.Groups),
		Vars:       len(co.Vars),
		Degraded:   res.Plan.Degraded,
	}
	// Memory is per-GPU: the worst stage's footprint bounds the machine.
	for _, stg := range res.Stages {
		rep := memplan.Plan(stg.Sharded, opts.Mem)
		if rep.PeakBytes > s.Memory.PeakBytes {
			s.Memory = rep
		}
	}
	return s, nil
}

// Simulate runs one training iteration of the partitioned graph on the
// simulated machine and reports timing, throughput and memory. RunOptions
// are forwarded to the simulator instead of silently passing the zero value
// (DisableComm for compute-only breakdowns, Replicas for data-parallel
// baselines). Hybrid summaries route through the pipelined model with a
// guaranteed-feasible micro-batch count (an explicit infeasible
// Options.Pipeline.MicroBatches falls back to 1; SimulatePipeline is the
// strict variant).
func Simulate(s *Summary, batch int64, opts Options, ro sim.RunOptions) sim.Result {
	if s.Hybrid != nil {
		m := 0
		if opts.Pipeline != nil {
			m = opts.Pipeline.MicroBatches
		}
		if m < 1 || int64(m) > batch || batch%int64(m) != 0 {
			m = defaultMicroBatches(batch, len(s.Hybrid.Stages))
		}
		r, err := simulatePipeline(s, batch, m, opts, ro)
		if err != nil {
			// Unreachable: m was normalized feasible and the stages carry
			// their execution structures.
			return sim.Result{}
		}
		return r
	}
	return sim.Run(s.Sharded, opts.topology(), batch, opts.Mem, ro)
}

// SimulatePipeline prices a hybrid summary's pipelined execution with the
// requested micro-batch count (Options.Pipeline.MicroBatches; 0 picks
// defaultMicroBatches). Unlike Simulate it rejects infeasible splits.
func SimulatePipeline(s *Summary, batch int64, opts Options, ro sim.RunOptions) (sim.Result, error) {
	if s.Hybrid == nil {
		return sim.Result{}, fmt.Errorf("core: summary has no pipeline stages")
	}
	m := 0
	if opts.Pipeline != nil {
		m = opts.Pipeline.MicroBatches
	}
	if m == 0 {
		m = defaultMicroBatches(batch, len(s.Hybrid.Stages))
	}
	return simulatePipeline(s, batch, m, opts, ro)
}

func simulatePipeline(s *Summary, batch int64, microBatches int, opts Options, ro sim.RunOptions) (sim.Result, error) {
	stages := make([]sim.PipelineStage, len(s.Hybrid.Stages))
	for i, stg := range s.Hybrid.Stages {
		stages[i] = sim.PipelineStage{
			Sharded:          stg.Sharded,
			Topo:             stg.Topo,
			HandoffBytes:     stg.HandoffBytes,
			HandoffBandwidth: stg.HandoffBandwidth,
		}
	}
	return sim.RunPipelineStages(stages, batch, microBatches, opts.Mem, ro)
}

// defaultMicroBatches picks one micro-batch per stage when the batch splits
// evenly, else the whole batch at once — always feasible.
func defaultMicroBatches(batch int64, stages int) int {
	if stages >= 1 && int64(stages) <= batch && batch%int64(stages) == 0 {
		return stages
	}
	return 1
}
