// Package core wires Tofu's pieces into the end-to-end pipeline the paper
// describes: TDL descriptions and their symbolic-interval analysis discover
// each operator's partition strategies (Sec 4), coarsening and the recursive
// DP choose the plan (Sec 5), graph generation materializes the per-worker
// execution with its memory optimizations (Sec 6), and the memory planner
// plus simulator stand in for MXNet's allocator and the 8-GPU testbed.
package core

import (
	"fmt"
	"time"

	"tofu/internal/coarsen"
	"tofu/internal/graph"
	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/plan"
	"tofu/internal/recursive"
	"tofu/internal/sim"
)

// Options configure the pipeline.
type Options struct {
	// Search forwards to the recursive partitioner.
	Search recursive.Options
	// Gen toggles the Sec 6 graph-generation optimizations.
	Gen graphgen.Options
	// Mem configures the per-worker memory planner.
	Mem memplan.Options
	// Topology overrides the simulated machine (DefaultTopology when nil)
	// and, when hierarchical, switches the search into topology-aware mode.
	Topology *sim.Topology
}

// SetHW is the flat-machine compatibility setter: it wraps an HW into a
// single-level topology.
func (o *Options) SetHW(hw sim.HW) {
	t := sim.FlatTopology(hw)
	o.Topology = &t
}

// topology resolves the effective machine.
func (o Options) topology() sim.Topology {
	if o.Topology != nil {
		return *o.Topology
	}
	return sim.DefaultTopology()
}

// DefaultOptions matches the full system.
func DefaultOptions() Options {
	return Options{Gen: graphgen.DefaultOptions(), Mem: memplan.DefaultOptions()}
}

// Summary is the result of partitioning a training graph end to end.
type Summary struct {
	// Plan is the chosen partition plan (one basic plan per recursive step).
	Plan *plan.Plan
	// Sharded is the per-worker execution structure.
	Sharded *graphgen.Sharded
	// Memory is the per-worker footprint under the plan.
	Memory memplan.Report
	// SearchTime is the wall-clock cost of the search (Table 1's metric).
	SearchTime time.Duration
	// Search reports the topology-aware ordering search's effort (zero for
	// flat machines and topology-blind searches).
	Search recursive.SearchStats
	// Frontier is the coarsened graph's maximum DP frontier width.
	Frontier int
	// Groups and Vars describe the coarsened search space.
	Groups, Vars int
}

// Partition runs the full Tofu pipeline on a training graph for k workers.
func Partition(g *graph.Graph, k int64, opts Options) (*Summary, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	co, err := coarsen.Coarsen(g)
	if err != nil {
		return nil, err
	}
	search := opts.Search
	if search.Topology == nil && opts.Topology != nil && int64(opts.Topology.NumGPUs()) == k {
		// A hierarchical machine makes the search topology-aware; a flat one
		// (or an explicit Search.Topology) changes nothing. Partitioning for
		// a different worker count than the simulated machine stays legal —
		// the search just runs topology-blind, as before.
		search.Topology = opts.Topology
	}
	if search.Stats == nil {
		search.Stats = &recursive.SearchStats{}
	}
	start := time.Now()
	p, err := recursive.Partition(g, k, search)
	if err != nil {
		return nil, err
	}
	if opts.Topology != nil {
		// Plans the search could not annotate (k != the machine's GPU count,
		// so the topology-aware mode stayed off) still run on the real
		// machine: give them the blind cyclic-placement layout so the
		// simulator prices their transfers at the levels they actually
		// cross. Annotated plans are left untouched.
		opts.Topology.AssignLevels(p)
	}
	elapsed := time.Since(start)
	sh, err := graphgen.Generate(g, p, opts.Gen)
	if err != nil {
		return nil, err
	}
	return &Summary{
		Plan:       p,
		Sharded:    sh,
		Memory:     memplan.Plan(sh, opts.Mem),
		SearchTime: elapsed,
		Search:     *search.Stats,
		Frontier:   co.MaxFrontier(),
		Groups:     len(co.Groups),
		Vars:       len(co.Vars),
	}, nil
}

// Simulate runs one training iteration of the partitioned graph on the
// simulated machine and reports timing, throughput and memory. RunOptions
// are forwarded to the simulator instead of silently passing the zero value
// (DisableComm for compute-only breakdowns, Replicas for data-parallel
// baselines).
func Simulate(s *Summary, batch int64, opts Options, ro sim.RunOptions) sim.Result {
	return sim.Run(s.Sharded, opts.topology(), batch, opts.Mem, ro)
}
