// Package core wires Tofu's pieces into the end-to-end pipeline the paper
// describes: TDL descriptions and their symbolic-interval analysis discover
// each operator's partition strategies (Sec 4), coarsening and the recursive
// DP choose the plan (Sec 5), graph generation materializes the per-worker
// execution with its memory optimizations (Sec 6), and the memory planner
// plus simulator stand in for MXNet's allocator and the 8-GPU testbed.
package core

import (
	"fmt"
	"time"

	"tofu/internal/coarsen"
	"tofu/internal/graph"
	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/plan"
	"tofu/internal/recursive"
	"tofu/internal/sim"
)

// Options configure the pipeline.
type Options struct {
	// Search forwards to the recursive partitioner.
	Search recursive.Options
	// Gen toggles the Sec 6 graph-generation optimizations.
	Gen graphgen.Options
	// Mem configures the per-worker memory planner.
	Mem memplan.Options
	// HW overrides the simulated machine (DefaultHW when zero).
	HW *sim.HW
}

// DefaultOptions matches the full system.
func DefaultOptions() Options {
	return Options{Gen: graphgen.DefaultOptions(), Mem: memplan.DefaultOptions()}
}

// Summary is the result of partitioning a training graph end to end.
type Summary struct {
	// Plan is the chosen partition plan (one basic plan per recursive step).
	Plan *plan.Plan
	// Sharded is the per-worker execution structure.
	Sharded *graphgen.Sharded
	// Memory is the per-worker footprint under the plan.
	Memory memplan.Report
	// SearchTime is the wall-clock cost of the search (Table 1's metric).
	SearchTime time.Duration
	// Frontier is the coarsened graph's maximum DP frontier width.
	Frontier int
	// Groups and Vars describe the coarsened search space.
	Groups, Vars int
}

// Partition runs the full Tofu pipeline on a training graph for k workers.
func Partition(g *graph.Graph, k int64, opts Options) (*Summary, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	co, err := coarsen.Coarsen(g)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	p, err := recursive.Partition(g, k, opts.Search)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	sh, err := graphgen.Generate(g, p, opts.Gen)
	if err != nil {
		return nil, err
	}
	return &Summary{
		Plan:       p,
		Sharded:    sh,
		Memory:     memplan.Plan(sh, opts.Mem),
		SearchTime: elapsed,
		Frontier:   co.MaxFrontier(),
		Groups:     len(co.Groups),
		Vars:       len(co.Vars),
	}, nil
}

// Simulate runs one training iteration of the partitioned graph on the
// simulated machine and reports timing, throughput and memory.
func Simulate(s *Summary, batch int64, opts Options) sim.Result {
	hw := sim.DefaultHW()
	if opts.HW != nil {
		hw = *opts.HW
	}
	return sim.Run(s.Sharded, hw, batch, opts.Mem, sim.RunOptions{})
}
