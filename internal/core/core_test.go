package core

import (
	"testing"

	"tofu/internal/models"
	"tofu/internal/partition"
	"tofu/internal/recursive"
	"tofu/internal/sim"
)

func TestPartitionEndToEnd(t *testing.T) {
	m, err := models.RNN(2, 1024, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Partition(m.G, 8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Plan.Steps) != 3 {
		t.Fatalf("steps = %d", len(s.Plan.Steps))
	}
	if s.SearchTime <= 0 {
		t.Fatal("no search time recorded")
	}
	if s.Groups <= 0 || s.Vars <= 0 || s.Frontier <= 0 {
		t.Fatalf("coarsening stats missing: %+v", s)
	}
	if s.Memory.PeakBytes <= 0 {
		t.Fatal("no memory report")
	}
	res := Simulate(s, m.Batch, DefaultOptions())
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestPartitionWithRestrictedSearch(t *testing.T) {
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Search = recursive.Options{
		StrategyFilter: func(st partition.Strategy) bool {
			return st.Kind != partition.SplitReduce
		},
	}
	s, err := Partition(m.G, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range s.Plan.Steps {
		for _, st := range step.OpStrategy {
			if st.Kind == partition.SplitReduce {
				t.Fatal("restricted search used output reduction")
			}
		}
	}
}

func TestSimulateWithCustomHW(t *testing.T) {
	m, err := models.MLP(2, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Partition(m.G, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast := sim.DefaultHW()
	fast.PeakFLOPS *= 10
	opts := DefaultOptions()
	opts.HW = &fast
	quick := Simulate(s, m.Batch, opts)
	slow := Simulate(s, m.Batch, DefaultOptions())
	if quick.IterSeconds >= slow.IterSeconds {
		t.Fatalf("10x faster GPUs should be faster: %g vs %g", quick.IterSeconds, slow.IterSeconds)
	}
}

func TestPartitionValidatesGraph(t *testing.T) {
	m, err := models.MLP(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the graph: break topological order.
	m.G.Nodes[0], m.G.Nodes[len(m.G.Nodes)-1] = m.G.Nodes[len(m.G.Nodes)-1], m.G.Nodes[0]
	if _, err := Partition(m.G, 2, DefaultOptions()); err == nil {
		t.Fatal("expected validation error")
	}
}
