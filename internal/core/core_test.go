package core

import (
	"testing"

	"tofu/internal/models"
	"tofu/internal/partition"
	"tofu/internal/recursive"
	"tofu/internal/sim"
)

func TestPartitionEndToEnd(t *testing.T) {
	m, err := models.RNN(2, 1024, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Partition(m.G, 8, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Plan.Steps) != 3 {
		t.Fatalf("steps = %d", len(s.Plan.Steps))
	}
	if s.SearchTime <= 0 {
		t.Fatal("no search time recorded")
	}
	if s.Groups <= 0 || s.Vars <= 0 || s.Frontier <= 0 {
		t.Fatalf("coarsening stats missing: %+v", s)
	}
	if s.Memory.PeakBytes <= 0 {
		t.Fatal("no memory report")
	}
	res := Simulate(s, m.Batch, DefaultOptions(), sim.RunOptions{})
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestPartitionWithRestrictedSearch(t *testing.T) {
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Search = recursive.Options{
		StrategyFilter: func(st partition.Strategy) bool {
			return st.Kind != partition.SplitReduce
		},
	}
	s, err := Partition(m.G, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range s.Plan.Steps {
		for _, st := range step.OpStrategy {
			if st.Kind == partition.SplitReduce {
				t.Fatal("restricted search used output reduction")
			}
		}
	}
}

func TestSimulateWithCustomHW(t *testing.T) {
	m, err := models.MLP(2, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Partition(m.G, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast := sim.DefaultHW()
	fast.PeakFLOPS *= 10
	opts := DefaultOptions()
	opts.SetHW(fast)
	quick := Simulate(s, m.Batch, opts, sim.RunOptions{})
	slow := Simulate(s, m.Batch, DefaultOptions(), sim.RunOptions{})
	if quick.IterSeconds >= slow.IterSeconds {
		t.Fatalf("10x faster GPUs should be faster: %g vs %g", quick.IterSeconds, slow.IterSeconds)
	}
}

func TestSubMachinePlanGetsBlindLayout(t *testing.T) {
	// Partitioning for fewer workers than the machine has GPUs keeps the
	// search topology-blind, but the plan must still be annotated with the
	// cyclic-placement layout: 8 workers on the 2x8 cluster sit 4 per node,
	// so the last recursive step crosses Ethernet and must not be priced at
	// PCIe speed.
	m, err := models.RNN(2, 1024, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	cl := sim.Cluster2x8Topology()
	opts := DefaultOptions()
	opts.Topology = &cl
	s, err := Partition(m.G, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	crossesEthernet := false
	for _, st := range s.Plan.Steps {
		if st.Level == len(cl.Levels)-1 {
			crossesEthernet = true
		}
	}
	if !crossesEthernet {
		t.Fatalf("sub-machine plan never crosses the outermost level: %+v", s.Plan.Steps)
	}
	onCluster := Simulate(s, m.Batch, opts, sim.RunOptions{})
	onFlat := Simulate(s, m.Batch, DefaultOptions(), sim.RunOptions{})
	if onCluster.CommSeconds <= onFlat.CommSeconds {
		t.Fatalf("Ethernet-crossing step priced too fast: %g vs flat %g",
			onCluster.CommSeconds, onFlat.CommSeconds)
	}
}

func TestPartitionValidatesGraph(t *testing.T) {
	m, err := models.MLP(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the graph: break topological order.
	m.G.Nodes[0], m.G.Nodes[len(m.G.Nodes)-1] = m.G.Nodes[len(m.G.Nodes)-1], m.G.Nodes[0]
	if _, err := Partition(m.G, 2, DefaultOptions()); err == nil {
		t.Fatal("expected validation error")
	}
}
