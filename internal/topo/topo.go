// Package topo is the hardware model: per-GPU compute parameters (HW) and
// the machine's interconnect hierarchy (Topology). It sits below both the
// search (which weights recursive steps by level bandwidth) and the
// simulator (which prices every transfer at the level it crosses), so
// neither has to depend on the other. The sim package re-exports these types
// under their historical names (sim.HW, sim.Topology).
package topo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tofu/internal/plan"
)

// HW describes a flat simulated machine: the per-GPU compute parameters plus
// one uniform peer link. It survives the topology refactor as the per-GPU
// half of a Topology (and as the single-level compatibility view, see
// Topology.Flat).
type HW struct {
	NumGPUs     int   `json:"num_gpus"`
	GPUMemBytes int64 `json:"gpu_mem_bytes"`
	// PeakFLOPS is the per-GPU fp32 peak; efficiency curves scale it down.
	PeakFLOPS float64 `json:"peak_flops"`
	// MemBW bounds element-wise/reduction kernels (bytes/s).
	MemBW float64 `json:"mem_bw"`
	// P2PBandwidth is the per-GPU peer bandwidth (bytes/s) of the innermost
	// interconnect level.
	P2PBandwidth float64 `json:"p2p_bandwidth"`
	// HostBandwidth is the CPU link all of one host's GPUs share (bytes/s)
	// — the swap baseline's bottleneck.
	HostBandwidth float64 `json:"host_bandwidth"`
	// KernelOverhead is the fixed launch latency per kernel (seconds).
	KernelOverhead float64 `json:"kernel_overhead"`

	// Efficiency curve parameters: eff = Max * rows / (rows + Half).
	MatmulMaxEff   float64 `json:"matmul_max_eff"`
	MatmulHalfRows float64 `json:"matmul_half_rows"`
	ConvMaxEff     float64 `json:"conv_max_eff"`
	ConvHalfBatch  float64 `json:"conv_half_batch"`
	// SwapOverlap is the fraction of swap transfer hidden behind compute
	// (the baseline's prefetcher, Sec 7.1).
	SwapOverlap float64 `json:"swap_overlap"`
	// PipelineSyncOverhead is the scheduling/synchronization latency added
	// to every cross-GPU activation hand-off in operator placement.
	PipelineSyncOverhead float64 `json:"pipeline_sync_overhead"`
}

// DefaultHW is calibrated to the paper's p2.8xlarge: per-GPU throughput in
// the ballpark of a K80 GK210 (~4.4 TFLOPS peak, ~240 GB/s HBM), 21 GB/s
// peer-to-peer, 10 GB/s host link shared by all eight GPUs.
func DefaultHW() HW {
	return HW{
		NumGPUs:              8,
		GPUMemBytes:          12 << 30,
		PeakFLOPS:            5.1e12,
		MemBW:                240e9,
		P2PBandwidth:         21e9,
		HostBandwidth:        10e9,
		KernelOverhead:       20e-6,
		MatmulMaxEff:         0.80,
		MatmulHalfRows:       200,
		ConvMaxEff:           0.65,
		ConvHalfBatch:        2,
		SwapOverlap:          0.7,
		PipelineSyncOverhead: 10e-3,
	}
}

// Level is one tier of the interconnect hierarchy, innermost (fastest)
// first: an NVLink island inside a node, the PCIe complex of a node, an
// Ethernet/InfiniBand fabric between nodes.
type Level struct {
	// Name labels the tier ("nvlink", "pcie", "ethernet").
	Name string `json:"name"`
	// GroupSize is how many child units one group at this level contains:
	// GPUs for the innermost level, level-(l-1) groups above it. The product
	// over all levels is the machine's GPU count.
	GroupSize int64 `json:"group_size"`
	// Bandwidth is the per-GPU link bandwidth across this level (bytes/s).
	Bandwidth float64 `json:"bandwidth"`
	// Network marks tiers that cross host boundaries (Ethernet/IB); levels
	// below the first network tier share one host's CPU link.
	Network bool `json:"network,omitempty"`
}

// Topology describes the simulated machine as per-GPU compute parameters
// plus an ordered interconnect hierarchy. It replaces the flat HW struct as
// the hardware model the search, simulator, baselines and experiments
// consume; a single-level topology is exactly the old flat machine.
type Topology struct {
	// Name identifies the profile ("p2.8xlarge", "dgx1", "cluster-2x8", or
	// whatever a user-defined JSON file declares).
	Name string `json:"name"`
	// HW carries the per-GPU and host parameters. HW.NumGPUs must equal the
	// product of level group sizes and HW.P2PBandwidth the innermost level's
	// bandwidth (Validate enforces both), so HW-only consumers see a
	// consistent flat view.
	HW HW `json:"hw"`
	// Levels lists the interconnect tiers innermost first. Empty is treated
	// as one flat level at HW.P2PBandwidth.
	Levels []Level `json:"levels"`
}

// FlatTopology wraps a flat machine into a single-level topology — the
// compatibility path for HW-typed callers.
func FlatTopology(hw HW) Topology {
	return Topology{
		Name: "flat",
		HW:   hw,
		Levels: []Level{{
			Name:      "p2p",
			GroupSize: int64(hw.NumGPUs),
			Bandwidth: hw.P2PBandwidth,
		}},
	}
}

// DefaultTopology is the calibrated p2.8xlarge profile — the paper's
// testbed, and the profile on which every Figures 8-10 / Table 3 artifact is
// byte-identical to the flat-HW model.
func DefaultTopology() Topology {
	t := FlatTopology(DefaultHW())
	t.Name = "p2.8xlarge"
	t.Levels[0].Name = "pcie"
	return t
}

// DGX1Topology models a DGX-1-style NVLink box: two 4-GPU NVLink islands
// bridged by the PCIe complex. GPU compute parameters stay at the calibrated
// K80 values so plan differences against the default profile isolate the
// interconnect, not the silicon.
func DGX1Topology() Topology {
	hw := DefaultHW()
	hw.P2PBandwidth = 80e9 // NVLink peer bandwidth inside an island
	return Topology{
		Name: "dgx1",
		HW:   hw,
		Levels: []Level{
			{Name: "nvlink", GroupSize: 4, Bandwidth: 80e9},
			{Name: "pcie", GroupSize: 2, Bandwidth: 21e9},
		},
	}
}

// Cluster2x8Topology models two p2.8xlarge-style nodes joined by a 25 GbE
// fabric: PCIe inside each node, Ethernet between nodes.
func Cluster2x8Topology() Topology {
	hw := DefaultHW()
	hw.NumGPUs = 16
	return Topology{
		Name: "cluster-2x8",
		HW:   hw,
		Levels: []Level{
			{Name: "pcie", GroupSize: 8, Bandwidth: 21e9},
			{Name: "ethernet", GroupSize: 2, Bandwidth: 3.125e9, Network: true},
		},
	}
}

// DGX2Topology models a DGX-2-style NVSwitch box as three tiers: 4-GPU
// NVLink quads, the per-baseboard NVSwitch plane joining two quads, and the
// inter-baseboard bridge. GPU compute parameters stay at the calibrated K80
// values (as in DGX1Topology) so plan differences against the other
// profiles isolate the interconnect.
func DGX2Topology() Topology {
	hw := DefaultHW()
	hw.NumGPUs = 16
	hw.P2PBandwidth = 150e9
	return Topology{
		Name: "dgx2",
		HW:   hw,
		Levels: []Level{
			{Name: "nvlink", GroupSize: 4, Bandwidth: 150e9},
			{Name: "nvswitch", GroupSize: 2, Bandwidth: 120e9},
			{Name: "bridge", GroupSize: 2, Bandwidth: 50e9},
		},
	}
}

// Cluster4x2x8Topology models four dual-socket nodes of eight GPUs each
// (64 GPUs) joined by a 25 GbE fabric: PCIe inside a socket complex, the
// inter-socket link inside a node, Ethernet between nodes — the smallest
// 3-level cluster of the scaling experiments.
func Cluster4x2x8Topology() Topology {
	hw := DefaultHW()
	hw.NumGPUs = 64
	return Topology{
		Name: "cluster-4x2x8",
		HW:   hw,
		Levels: []Level{
			{Name: "pcie", GroupSize: 8, Bandwidth: 21e9},
			{Name: "qpi", GroupSize: 2, Bandwidth: 12e9},
			{Name: "ethernet", GroupSize: 4, Bandwidth: 3.125e9, Network: true},
		},
	}
}

// Cluster4x2x12Topology is the 96-GPU variant with twelve GPUs per socket
// complex. Its factor pool mixes a 3 with the 2s (12 = 3·2·2), which makes
// the factor-to-level ordering space both large (180 orderings — beyond the
// old enumeration cap) and heterogeneous: the optimal ordering can
// interleave levels, which the old level-block fallback could never
// express.
func Cluster4x2x12Topology() Topology {
	hw := DefaultHW()
	hw.NumGPUs = 96
	return Topology{
		Name: "cluster-4x2x12",
		HW:   hw,
		Levels: []Level{
			{Name: "pcie", GroupSize: 12, Bandwidth: 21e9},
			{Name: "qpi", GroupSize: 2, Bandwidth: 12e9},
			{Name: "ethernet", GroupSize: 4, Bandwidth: 3.125e9, Network: true},
		},
	}
}

// Cluster8x2x8Topology is the 128-GPU scaling point: eight dual-socket
// 8-GPU nodes. Its 140 candidate orderings put it past the old enumeration
// cap as well.
func Cluster8x2x8Topology() Topology {
	hw := DefaultHW()
	hw.NumGPUs = 128
	return Topology{
		Name: "cluster-8x2x8",
		HW:   hw,
		Levels: []Level{
			{Name: "pcie", GroupSize: 8, Bandwidth: 21e9},
			{Name: "qpi", GroupSize: 2, Bandwidth: 12e9},
			{Name: "ethernet", GroupSize: 8, Bandwidth: 3.125e9, Network: true},
		},
	}
}

// Cluster2x4x2x12Topology is the 192-GPU two-rack fleet point: per rack,
// four dual-socket nodes with twelve GPUs per socket complex, racks joined
// by an oversubscribed spine. The fourth (spine) level plus the mixed
// factor pool (12 = 3·2·2 alongside the 2s and a 4) makes this the
// deepest ordering space in the library — the regime the warm-started
// branch-and-bound is aimed at.
func Cluster2x4x2x12Topology() Topology {
	hw := DefaultHW()
	hw.NumGPUs = 192
	return Topology{
		Name: "cluster-2x4x2x12",
		HW:   hw,
		Levels: []Level{
			{Name: "pcie", GroupSize: 12, Bandwidth: 21e9},
			{Name: "qpi", GroupSize: 2, Bandwidth: 12e9},
			{Name: "ethernet", GroupSize: 4, Bandwidth: 3.125e9, Network: true},
			{Name: "spine", GroupSize: 2, Bandwidth: 1.25e9, Network: true},
		},
	}
}

// Cluster2x8x2x8Topology is the 256-GPU two-rack fleet point: per rack,
// eight dual-socket 8-GPU nodes, racks joined by an oversubscribed spine.
// Like cluster-2x4x2x12 it adds a fourth communication tier whose
// bandwidth cliff (2.5x below rack Ethernet) rewards orderings the greedy
// level-block heuristic misses.
func Cluster2x8x2x8Topology() Topology {
	hw := DefaultHW()
	hw.NumGPUs = 256
	return Topology{
		Name: "cluster-2x8x2x8",
		HW:   hw,
		Levels: []Level{
			{Name: "pcie", GroupSize: 8, Bandwidth: 21e9},
			{Name: "qpi", GroupSize: 2, Bandwidth: 12e9},
			{Name: "ethernet", GroupSize: 8, Bandwidth: 3.125e9, Network: true},
			{Name: "spine", GroupSize: 2, Bandwidth: 1.25e9, Network: true},
		},
	}
}

// profiles is the library of named machines.
var profiles = map[string]func() Topology{
	"p2.8xlarge":     DefaultTopology,
	"dgx1":           DGX1Topology,
	"dgx2":           DGX2Topology,
	"cluster-2x8":    Cluster2x8Topology,
	"cluster-4x2x8":  Cluster4x2x8Topology,
	"cluster-4x2x12": Cluster4x2x12Topology,
	"cluster-8x2x8":  Cluster8x2x8Topology,

	"cluster-2x4x2x12": Cluster2x4x2x12Topology,
	"cluster-2x8x2x8":  Cluster2x8x2x8Topology,
}

// Profile returns a named topology from the library.
func Profile(name string) (Topology, error) {
	fn, ok := profiles[name]
	if !ok {
		return Topology{}, fmt.Errorf("topo: unknown hardware profile %q (have %s)",
			name, strings.Join(ProfileNames(), ", "))
	}
	return fn(), nil
}

// ProfileNames lists the library, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResolveTopology interprets a -hw argument: a profile name from the
// library, or a path to a user-defined topology JSON file.
func ResolveTopology(arg string) (Topology, error) {
	if _, ok := profiles[arg]; ok {
		return Profile(arg)
	}
	if strings.ContainsAny(arg, "./\\") {
		return LoadTopology(arg)
	}
	return Topology{}, fmt.Errorf("topo: %q is neither a profile (%s) nor a .json path",
		arg, strings.Join(ProfileNames(), ", "))
}

// Validate checks internal consistency: positive level parameters, HW.NumGPUs
// equal to the product of group sizes, and HW.P2PBandwidth equal to the
// innermost bandwidth.
func (t Topology) Validate() error {
	if len(t.Levels) == 0 {
		return fmt.Errorf("topo: topology %q has no levels", t.Name)
	}
	prod := int64(1)
	for i, l := range t.Levels {
		if l.GroupSize < 1 {
			return fmt.Errorf("topo: topology %q level %d (%s): group size %d invalid", t.Name, i, l.Name, l.GroupSize)
		}
		if l.Bandwidth <= 0 {
			return fmt.Errorf("topo: topology %q level %d (%s): bandwidth %g invalid", t.Name, i, l.Name, l.Bandwidth)
		}
		prod *= l.GroupSize
	}
	if int64(t.HW.NumGPUs) != prod {
		return fmt.Errorf("topo: topology %q: HW.NumGPUs %d != product of level group sizes %d",
			t.Name, t.HW.NumGPUs, prod)
	}
	if t.HW.P2PBandwidth != t.Levels[0].Bandwidth {
		return fmt.Errorf("topo: topology %q: HW.P2PBandwidth %g != innermost level bandwidth %g",
			t.Name, t.HW.P2PBandwidth, t.Levels[0].Bandwidth)
	}
	return nil
}

// NumGPUs is the machine's total device count.
func (t Topology) NumGPUs() int {
	if len(t.Levels) == 0 {
		return t.HW.NumGPUs
	}
	prod := int64(1)
	for _, l := range t.Levels {
		prod *= l.GroupSize
	}
	return int(prod)
}

// Flat returns the HW-compatible view: the whole machine behind one link at
// the innermost bandwidth. For single-level topologies this IS the machine.
func (t Topology) Flat() HW {
	hw := t.HW
	hw.NumGPUs = t.NumGPUs()
	if len(t.Levels) > 0 {
		hw.P2PBandwidth = t.Levels[0].Bandwidth
	}
	return hw
}

// LevelBandwidth prices a transfer crossing level l; out-of-range indices
// clamp (a plan annotated for a deeper machine bottlenecks on the slowest
// level this machine has).
func (t Topology) LevelBandwidth(l int) float64 {
	if len(t.Levels) == 0 {
		return t.HW.P2PBandwidth
	}
	if l < 0 {
		l = 0
	}
	if l >= len(t.Levels) {
		l = len(t.Levels) - 1
	}
	return t.Levels[l].Bandwidth
}

// LinkBandwidth is the bandwidth of the narrowest level a transfer between
// GPUs a and b crosses: the innermost level whose group contains both.
func (t Topology) LinkBandwidth(a, b int) float64 {
	if a == b || len(t.Levels) == 0 {
		return t.HW.P2PBandwidth
	}
	span := int64(1)
	for _, l := range t.Levels {
		span *= l.GroupSize
		if int64(a)/span == int64(b)/span {
			return l.Bandwidth
		}
	}
	return t.Levels[len(t.Levels)-1].Bandwidth
}

// GPUsPerHost counts the devices sharing one host CPU link: everything below
// the first network level (the whole machine when no level is a network).
func (t Topology) GPUsPerHost() int {
	if len(t.Levels) == 0 {
		return t.HW.NumGPUs
	}
	per := int64(1)
	for _, l := range t.Levels {
		if l.Network {
			break
		}
		per *= l.GroupSize
	}
	return int(per)
}

// Hierarchical reports whether the machine has more than one distinct tier —
// when false, the topology-aware search reduces exactly to the flat one.
func (t Topology) Hierarchical() bool { return len(t.Levels) > 1 }

// WriteJSON serializes the topology for user-defined machine files.
func (t Topology) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// CanonicalJSON is the stable content encoding of the machine: the per-GPU
// parameters and interconnect levels with the profile name AND the level
// labels stripped — names are documentation, not hardware. Two topologies
// that describe the same machine — a built-in profile and a user JSON file
// with different labels — canonicalize to identical bytes, so content
// digests built over it (the partition service's plan cache key) treat them
// as the same machine.
func (t Topology) CanonicalJSON() ([]byte, error) {
	// Empty Levels is defined as one flat level at HW.P2PBandwidth; spell
	// that out (before validating — Validate requires explicit levels) so
	// the implicit and explicit forms hash alike.
	levels := t.Levels
	if len(levels) == 0 {
		levels = FlatTopology(t.HW).Levels
	}
	norm := Topology{Name: t.Name, HW: t.HW, Levels: levels}
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	type canonicalLevel struct {
		GroupSize int64   `json:"group_size"`
		Bandwidth float64 `json:"bandwidth"`
		Network   bool    `json:"network,omitempty"`
	}
	cl := make([]canonicalLevel, len(levels))
	for i, l := range levels {
		cl[i] = canonicalLevel{GroupSize: l.GroupSize, Bandwidth: l.Bandwidth, Network: l.Network}
	}
	return json.Marshal(struct {
		HW     HW               `json:"hw"`
		Levels []canonicalLevel `json:"levels"`
	}{norm.HW, cl})
}

// ReadTopology parses and validates a topology. Unknown fields are errors:
// a misspelled field would otherwise silently decode to a zero value that
// Validate cannot always catch (e.g. a level's Network flag).
func ReadTopology(r io.Reader) (Topology, error) {
	var t Topology
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("topo: decoding topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// LoadTopology reads a user-defined machine from a JSON file.
func LoadTopology(path string) (Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return Topology{}, fmt.Errorf("topo: %w", err)
	}
	defer f.Close()
	t, err := ReadTopology(f)
	if err != nil {
		return Topology{}, fmt.Errorf("topo: %s: %w", path, err)
	}
	return t, nil
}

// AssignLevels annotates a plan searched without topology awareness with the
// layout a topology-blind runtime produces: ranks are enumerated in the
// scheduler's default cyclic order (one per node, round-robin), so the
// recursive numbering digits map to levels innermost first — step 1's
// exchange partners land on the fastest links and the LAST (by Theorem 2 the
// most communication-heavy) step's partners land across the slowest. Each
// step consumes its factor from the innermost level with remaining capacity;
// a step spanning several levels (EqualChop's single K-way chop) crosses
// them all and prices at the narrowest — the outermost it touches. Steps
// already annotated (any non-zero level) are left alone.
func (t Topology) AssignLevels(p *plan.Plan) {
	if p == nil || !t.Hierarchical() {
		return
	}
	for _, s := range p.Steps {
		if s.Level != 0 {
			return // already annotated by a topology-aware search
		}
	}
	// Effective per-level capacity for this plan's worker count: cyclic
	// placement spreads ranks across every outer group first, so a plan for
	// fewer workers than the machine keeps the outer levels' group counts
	// and shrinks the innermost (8 workers on the 2x8 cluster sit 4 per
	// node: capacities [4 2], and the last step still crosses Ethernet).
	// For a full-machine plan this is exactly the level group sizes.
	remaining := make([]int64, len(t.Levels))
	kk := p.K
	for li := len(t.Levels) - 1; li >= 0; li-- {
		g := gcd(t.Levels[li].GroupSize, kk)
		remaining[li] = g
		kk /= g
	}
	for _, s := range p.Steps {
		need := s.K
		level := 0
		for li := 0; li < len(remaining) && need > 1; li++ {
			if g := gcd(remaining[li], need); g > 1 {
				remaining[li] /= g
				need /= g
				level = li
			}
		}
		s.Level = level
	}
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
