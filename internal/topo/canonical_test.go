package topo

import (
	"bytes"
	"testing"
)

func TestCanonicalJSONNameFree(t *testing.T) {
	a := DGX1Topology()
	b := DGX1Topology()
	b.Name = "renamed-but-same-machine"
	ca, err := a.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("renaming changed the canonical form:\n%s\n%s", ca, cb)
	}
	if bytes.Contains(ca, []byte("dgx1")) {
		t.Fatalf("canonical form leaks the profile name: %s", ca)
	}
	// Level labels are documentation, not hardware: relabelling a level
	// must not change the canonical form either.
	c := DGX1Topology()
	c.Levels[0].Name = "nv"
	cc2, err := c.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cc2) {
		t.Fatalf("relabelling a level changed the canonical form:\n%s\n%s", ca, cc2)
	}
	if bytes.Contains(ca, []byte("nvlink")) {
		t.Fatalf("canonical form leaks a level label: %s", ca)
	}
	// Different machines canonicalize differently.
	cc, err := Cluster2x8Topology().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ca, cc) {
		t.Fatal("different machines share a canonical form")
	}
}

func TestCanonicalJSONImplicitFlatLevel(t *testing.T) {
	hw := DefaultHW()
	implicit := Topology{Name: "implicit", HW: hw}
	explicit := FlatTopology(hw)
	explicit.Name = "explicit"
	ci, err := implicit.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	ce, err := explicit.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ci, ce) {
		t.Fatalf("implicit and explicit flat levels differ:\n%s\n%s", ci, ce)
	}
}

func TestCanonicalJSONValidates(t *testing.T) {
	bad := DGX1Topology()
	bad.Levels[0].GroupSize = 3 // no longer multiplies to NumGPUs
	if _, err := bad.CanonicalJSON(); err == nil {
		t.Fatal("invalid topology canonicalized")
	}
}
