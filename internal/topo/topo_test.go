package topo

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"tofu/internal/plan"
)

func TestProfilesValidate(t *testing.T) {
	for _, name := range ProfileNames() {
		tp, err := Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
	if _, err := Profile("nope"); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, name := range ProfileNames() {
		tp, err := Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tp.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadTopology(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(tp, back) {
			t.Errorf("%s: round trip diverged:\n%+v\n%+v", name, tp, back)
		}
	}
}

func TestReadTopologyRejectsInvalid(t *testing.T) {
	bad := Topology{Name: "bad", HW: DefaultHW()} // no levels
	var buf bytes.Buffer
	if err := bad.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTopology(&buf); err == nil {
		t.Error("no-level topology must fail validation")
	}

	wrong := DefaultTopology()
	wrong.HW.NumGPUs = 7 // != product of group sizes
	buf.Reset()
	if err := wrong.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTopology(&buf); err == nil {
		t.Error("NumGPUs mismatch must fail validation")
	}
}

func TestFlatViewMatchesDefaultHW(t *testing.T) {
	tp := DefaultTopology()
	if got, want := tp.Flat(), DefaultHW(); got != want {
		t.Fatalf("default topology flat view diverged:\n%+v\n%+v", got, want)
	}
	if tp.Hierarchical() {
		t.Fatal("default profile must be flat")
	}
	if tp.NumGPUs() != 8 || tp.GPUsPerHost() != 8 {
		t.Fatalf("default counts wrong: %d GPUs, %d per host", tp.NumGPUs(), tp.GPUsPerHost())
	}
}

func TestHierarchicalAccessors(t *testing.T) {
	dgx := DGX1Topology()
	if !dgx.Hierarchical() || dgx.NumGPUs() != 8 {
		t.Fatalf("dgx1: hierarchical=%v gpus=%d", dgx.Hierarchical(), dgx.NumGPUs())
	}
	// GPUs 0-3 share an NVLink island; 0 and 4 only meet at PCIe.
	if bw := dgx.LinkBandwidth(0, 3); bw != 80e9 {
		t.Errorf("intra-island bandwidth %g", bw)
	}
	if bw := dgx.LinkBandwidth(0, 4); bw != 21e9 {
		t.Errorf("cross-island bandwidth %g", bw)
	}
	if dgx.GPUsPerHost() != 8 {
		t.Errorf("dgx1 is one host, got %d", dgx.GPUsPerHost())
	}

	cl := Cluster2x8Topology()
	if cl.NumGPUs() != 16 || cl.GPUsPerHost() != 8 {
		t.Fatalf("cluster: gpus=%d perHost=%d", cl.NumGPUs(), cl.GPUsPerHost())
	}
	if bw := cl.LinkBandwidth(0, 8); bw != 3.125e9 {
		t.Errorf("cross-node bandwidth %g", bw)
	}
	if bw := cl.LevelBandwidth(5); bw != 3.125e9 {
		t.Errorf("out-of-range level must clamp to outermost, got %g", bw)
	}
}

func TestAssignLevelsBlindLayout(t *testing.T) {
	// Blind layout follows the hierarchy innermost first: the last (heaviest)
	// step lands on the slowest level.
	dgx := DGX1Topology()
	p := &plan.Plan{K: 8, Steps: []*plan.Step{{K: 2}, {K: 2}, {K: 2}}}
	dgx.AssignLevels(p)
	if got := []int{p.Steps[0].Level, p.Steps[1].Level, p.Steps[2].Level}; !reflect.DeepEqual(got, []int{0, 0, 1}) {
		t.Errorf("dgx1 blind layout = %v, want [0 0 1]", got)
	}

	// A single K-way chop spans every level and prices at the outermost.
	chop := &plan.Plan{K: 8, Steps: []*plan.Step{{K: 8}}}
	dgx.AssignLevels(chop)
	if chop.Steps[0].Level != 1 {
		t.Errorf("equal chop level = %d, want outermost", chop.Steps[0].Level)
	}

	// Already-annotated plans are left alone.
	marked := &plan.Plan{K: 8, Steps: []*plan.Step{{K: 2, Level: 1}, {K: 2}, {K: 2}}}
	dgx.AssignLevels(marked)
	if marked.Steps[1].Level != 0 || marked.Steps[0].Level != 1 {
		t.Error("annotated plan must not be rewritten")
	}

	// Flat topologies never annotate.
	flat := DefaultTopology()
	fp := &plan.Plan{K: 8, Steps: []*plan.Step{{K: 2}, {K: 2}, {K: 2}}}
	flat.AssignLevels(fp)
	for _, s := range fp.Steps {
		if s.Level != 0 {
			t.Error("flat topology assigned a non-zero level")
		}
	}
}

func TestResolveTopology(t *testing.T) {
	if _, err := ResolveTopology("dgx1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveTopology("not-a-profile"); err == nil {
		t.Error("junk argument must error")
	}
}

// TestReadTopologyRejectsUnknownFields locks the parse audit: a misspelled
// field must be an error, not a silently-zero value.
func TestReadTopologyRejectsUnknownFields(t *testing.T) {
	bad := `{"name": "x", "hw": {"num_gpus": 2, "p2p_bandwidth": 1}, "levels": [{"name": "l", "group_size": 2, "bandwidth": 1, "netwrok": true}]}`
	if _, err := ReadTopology(strings.NewReader(bad)); err == nil {
		t.Fatal("expected unknown-field error")
	}
}

// TestDeepProfiles pins the 3-level library entries the ordering search
// scales onto: level structure, GPU counts, and the consistency invariants
// Validate enforces. (JSON round-trips are covered for every profile by
// TestJSONRoundTrip.)
func TestDeepProfiles(t *testing.T) {
	cases := []struct {
		name   string
		gpus   int
		levels int
	}{
		{"dgx2", 16, 3},
		{"cluster-4x2x8", 64, 3},
		{"cluster-4x2x12", 96, 3},
		{"cluster-8x2x8", 128, 3},
	}
	for _, c := range cases {
		tp, err := Profile(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := tp.NumGPUs(); got != c.gpus {
			t.Errorf("%s: NumGPUs = %d, want %d", c.name, got, c.gpus)
		}
		if got := len(tp.Levels); got != c.levels {
			t.Errorf("%s: levels = %d, want %d", c.name, got, c.levels)
		}
		if !tp.Hierarchical() {
			t.Errorf("%s: must be hierarchical", c.name)
		}
		// Resolvable through the -hw flag path too.
		got, err := ResolveTopology(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tp) {
			t.Errorf("%s: ResolveTopology diverges from Profile", c.name)
		}
	}
}
