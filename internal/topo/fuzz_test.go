package topo_test

import (
	"bytes"
	"testing"

	"tofu/internal/topo"
)

// FuzzReadTopology drives the strict machine-file reader with arbitrary
// bytes. Anything it accepts must have a canonical content encoding, survive
// a write/read round trip, and canonicalize to the same bytes afterwards —
// the property that lets built-in profiles and user JSON files share cache
// digests. Seed corpus: the built-in profiles, serialized by WriteJSON.
func FuzzReadTopology(f *testing.F) {
	f.Add([]byte(`{"name":"flat","hw":{"num_gpus":4,"gpu_mem_bytes":1,"peak_flops":1,"mem_bw":1,"p2p_bandwidth":1,"host_bandwidth":1},"levels":[{"name":"l0","group_size":4,"bandwidth":1}]}`))
	f.Add([]byte(`{"levels":[]}`))
	f.Add([]byte(`{"name":"x","unknown":true}`)) // unknown field
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, err := topo.ReadTopology(bytes.NewReader(data))
		if err != nil {
			return
		}
		c1, err := tp.CanonicalJSON()
		if err != nil {
			t.Fatalf("accepted topology has no canonical form: %v", err)
		}
		var buf bytes.Buffer
		if err := tp.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted topology does not re-serialize: %v", err)
		}
		tp2, err := topo.ReadTopology(&buf)
		if err != nil {
			t.Fatalf("rewritten topology rejected: %v\n%s", err, buf.Bytes())
		}
		c2, err := tp2.CanonicalJSON()
		if err != nil {
			t.Fatalf("round-tripped topology has no canonical form: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical encoding changed across a round trip:\n%s\n%s", c1, c2)
		}
	})
}
