package coarsen

import (
	"testing"

	"tofu/internal/graph"
	"tofu/internal/models"
	"tofu/internal/shape"
)

func mlp(t *testing.T, layers int) *models.Model {
	t.Helper()
	m, err := models.MLP(layers, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCoarsenMLPChain(t *testing.T) {
	m := mlp(t, 4)
	c, err := Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Vars) == 0 || len(c.Groups) == 0 {
		t.Fatal("empty coarsening")
	}
	// The paper's linearity claim: an MLP coarsens to (near) a chain. The
	// frontier carries the activation and its gradient variable.
	if fw := c.MaxFrontier(); fw > 4 {
		t.Fatalf("MLP frontier width = %d, want <= 4", fw)
	}
	// Far fewer groups than nodes: fwd+bwd grouping at work.
	if len(c.Groups) >= len(m.G.Nodes)/2 {
		t.Fatalf("groups = %d for %d nodes: fwd/bwd grouping ineffective",
			len(c.Groups), len(m.G.Nodes))
	}
}

func TestWeightGradHistoryShareVariable(t *testing.T) {
	m := mlp(t, 2)
	c, err := Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range m.G.Weights() {
		if w.Grad == nil {
			continue
		}
		wv := c.VarOf(w)
		gv := c.VarOf(w.Grad)
		if wv != gv {
			t.Errorf("weight %v and its gradient are in different variables", w)
		}
		if !wv.HasWeight {
			t.Errorf("variable of %v not marked HasWeight", w)
		}
	}
	// Optimizer history joins too (element-wise adam_update).
	for _, ten := range m.G.Tensors {
		if ten.Kind == graph.OptState {
			base := findWeight(m.G, ten.Name)
			if base != nil && c.VarOf(ten) != c.VarOf(base) {
				t.Errorf("optimizer state %v split from its weight", ten)
			}
		}
	}
}

func findWeight(g *graph.Graph, histName string) *graph.Tensor {
	want := histName[:len(histName)-len(".hist")]
	for _, t := range g.Tensors {
		if t.Kind == graph.Weight && t.Name == want {
			return t
		}
	}
	return nil
}

func TestElementwiseCoalescing(t *testing.T) {
	g := graph.New()
	x := g.Input("x", shape.Of(8, 8))
	a := g.Apply("relu", nil, x)
	b := g.Apply("sigmoid", nil, a)
	cdf := g.Apply("tanh", nil, b)
	c, err := Coarsen(g)
	if err != nil {
		t.Fatal(err)
	}
	// All four tensors share one variable; all three ops share one group.
	if c.VarOf(x) != c.VarOf(a) || c.VarOf(a) != c.VarOf(b) || c.VarOf(b) != c.VarOf(cdf) {
		t.Fatal("element-wise chain must share one variable")
	}
	if len(c.Groups) != 1 {
		t.Fatalf("element-wise chain groups = %d, want 1", len(c.Groups))
	}
}

func TestNonElementwiseBreaksCoalescing(t *testing.T) {
	g := graph.New()
	x := g.Input("x", shape.Of(8, 8))
	w := g.Weight("w", shape.Of(8, 8))
	a := g.Apply("relu", nil, x)
	b := g.Apply("matmul", nil, a, w)
	cdf := g.Apply("relu", nil, b)
	c, err := Coarsen(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.VarOf(a) == c.VarOf(b) {
		t.Fatal("matmul must not merge its input and output variables")
	}
	if c.VarOf(b) != c.VarOf(cdf) {
		t.Fatal("relu after matmul should merge with matmul output")
	}
}

func TestRNNTimestepMerging(t *testing.T) {
	m, err := models.RNN(2, 128, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	// Timestep merging: the group count must not scale with the number of
	// timesteps (6 here). A couple dozen structural groups per layer remain
	// (cell matmuls, gates, state updates), each spanning all timesteps.
	if len(c.Groups) > 20*2+5 {
		t.Fatalf("RNN coarsened to %d groups; timestep merging ineffective", len(c.Groups))
	}
	if len(c.Groups) > len(m.G.Nodes)/8 {
		t.Fatalf("RNN groups = %d of %d nodes", len(c.Groups), len(m.G.Nodes))
	}
	// Multi-op slots exist (one op instance per timestep).
	multi := 0
	for _, g := range c.Groups {
		for _, s := range g.Slots {
			if len(s.Ops) >= 6 {
				multi++
			}
		}
	}
	if multi == 0 {
		t.Fatal("no slot spans all timesteps")
	}
	if fw := c.MaxFrontier(); fw > 6 {
		t.Fatalf("RNN frontier width = %d, want small", fw)
	}
}

func TestWResNetFrontierStaysSmall(t *testing.T) {
	m, err := models.WResNet(50, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	// Residual fork-join: the frontier carries the skip connection plus
	// adjacent batch-norm statistics variables (most have a single viable
	// cut, so the DP state space stays tiny).
	if fw := c.MaxFrontier(); fw > 16 {
		t.Fatalf("WResNet frontier width = %d, want <= 16", fw)
	}
	// Grouping must compress heavily relative to >1500 fine-grained ops.
	if len(c.Groups) > len(m.G.Nodes)/2 {
		t.Fatalf("WResNet groups = %d of %d nodes", len(c.Groups), len(m.G.Nodes))
	}
}

func TestVarShapesConsistent(t *testing.T) {
	m := mlp(t, 3)
	c, err := Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.Vars {
		for _, ten := range v.Tensors {
			if !ten.Shape.Equal(v.Shape) {
				t.Fatalf("variable %v holds mismatched member %v", v, ten)
			}
		}
	}
}

func TestGroupLivenessWellFormed(t *testing.T) {
	m := mlp(t, 3)
	c, err := Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.Vars {
		if v.First < 0 {
			continue
		}
		if v.Last < v.First {
			t.Fatalf("variable %v has Last < First", v)
		}
	}
	// Every group's vars include the output var of each slot's rep op.
	for _, g := range c.Groups {
		vars := map[int]bool{}
		for _, v := range g.Vars {
			vars[v.ID] = true
		}
		for _, s := range g.Slots {
			if !vars[c.VarOf(s.Rep().Output).ID] {
				t.Fatalf("group %d missing its slot output var", g.ID)
			}
		}
	}
}

func TestVarBytes(t *testing.T) {
	g := graph.New()
	x := g.Input("x", shape.Of(4, 4))
	y := g.Apply("relu", nil, x)
	_ = y
	c, err := Coarsen(g)
	if err != nil {
		t.Fatal(err)
	}
	v := c.VarOf(x)
	if v.Bytes() != 2*4*4*4 {
		t.Fatalf("Bytes = %d (members %d)", v.Bytes(), len(v.Tensors))
	}
}

// TestLivenessSlices checks the dense per-group liveness index: NewVars and
// LiveAfter must agree with the First/Last liveness ranges, stay sorted by
// ID, and capture every slot's TDL description.
func TestLivenessSlices(t *testing.T) {
	m, err := models.RNN(2, 128, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range c.Groups {
		var wantNew, wantLive []*Var
		for _, v := range g.Vars {
			if v.First == gi {
				wantNew = append(wantNew, v)
			}
		}
		for _, v := range c.Vars {
			if v.First <= gi && v.Last > gi {
				wantLive = append(wantLive, v)
			}
		}
		if len(wantNew) != len(g.NewVars) || len(wantLive) != len(g.LiveAfter) {
			t.Fatalf("group %d: NewVars/LiveAfter sizes (%d, %d), want (%d, %d)",
				gi, len(g.NewVars), len(g.LiveAfter), len(wantNew), len(wantLive))
		}
		for i, v := range wantNew {
			if g.NewVars[i] != v {
				t.Fatalf("group %d: NewVars[%d] = %v, want %v", gi, i, g.NewVars[i], v)
			}
		}
		for i, v := range wantLive {
			if g.LiveAfter[i] != v {
				t.Fatalf("group %d: LiveAfter[%d] = %v, want %v", gi, i, g.LiveAfter[i], v)
			}
			if i > 0 && wantLive[i-1].ID >= v.ID {
				t.Fatalf("group %d: LiveAfter not ID-sorted", gi)
			}
		}
		for _, s := range g.Slots {
			if s.Desc == nil {
				t.Fatalf("group %d: slot %v missing captured description", gi, s.Rep())
			}
		}
	}
}
