// Package coarsen implements Tofu's graph coarsening (EuroSys'19 Sec 5.1),
// which turns the fine-grained training graph into a near-linear structure
// the dynamic-programming search can handle:
//
//   - forward operators group with their auto-generated backward operators
//     (and gradient-aggregation/optimizer operators), so the coarsened graph
//     is isomorphic to the forward graph;
//   - consecutive element-wise operators coalesce, because an element-wise
//     operator's input and output must always partition identically;
//   - unrolled RNN timesteps merge, because every timestep shares the same
//     computation and weights.
//
// The result is expressed as *variables* (equivalence classes of tensors
// forced to share a partition decision) and *groups* (sets of operators
// whose partition decisions are made together, each organized into *slots*
// of structurally identical per-timestep instances).
//
//tofu:searchpath reachable from dp.Solve / recursive.Partition; nodeterm enforces determinism
package coarsen

import (
	"fmt"
	"sort"

	"tofu/internal/graph"
	"tofu/internal/shape"
	"tofu/internal/tdl"
)

// Var is one partition decision variable: a set of same-shaped tensors that
// must share a cut (element-wise neighbors, timestep twins, and a weight
// with its gradient and optimizer state, which the element-wise update op
// ties together).
type Var struct {
	ID      int
	Tensors []*graph.Tensor
	Shape   shape.Shape // common shape of all members
	// HasWeight marks variables containing a trainable parameter.
	HasWeight bool
	// first/last group index referencing this var; set by buildGroups.
	First, Last int
}

// Bytes returns the per-member storage size times the member count — the
// total bytes this variable's decision governs.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (v *Var) Bytes() int64 {
	if len(v.Tensors) == 0 {
		return 0
	}
	return v.Tensors[0].Bytes() * int64(len(v.Tensors))
}

func (v *Var) String() string {
	return fmt.Sprintf("var%d%v x%d", v.ID, v.Shape, len(v.Tensors))
}

// Slot is a set of structurally identical operator instances (one per
// timestep for merged RNN cells, exactly one otherwise) that share a
// partition strategy; its cost is priced once and multiplied.
type Slot struct {
	Ops []*graph.Node
	// Desc is the representative operator's TDL description, captured
	// during coarsening (which describes every node anyway) so downstream
	// passes skip the registry lookup.
	Desc *tdl.OpDesc
}

// Rep returns the representative operator.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (s *Slot) Rep() *graph.Node { return s.Ops[0] }

// Group is one step of the DP: operators whose partition decisions are made
// together (a forward op, its backward ops, attached aggregations and
// updates, merged across timesteps).
type Group struct {
	ID    int
	Slots []*Slot
	// Vars lists every variable any member op touches, sorted by ID.
	Vars []*Var
	// NewVars lists the variables whose liveness starts at this group
	// (First == ID), sorted by ID — the DP decides their cuts here.
	NewVars []*Var
	// LiveAfter lists the variables live across the boundary after this
	// group (First <= ID < Last), sorted by ID. It is the DP's frontier
	// at this boundary: together with each variable's cut-dim alphabet it
	// fixes the packed mixed-radix state encoding.
	LiveAfter []*Var
}

// Coarse is the coarsened view of a training graph. Vars is a dense index:
// Vars[i].ID == i, so a variable's ID addresses per-variable side tables
// (the DP's cut-dim alphabets and packed state digits) directly.
type Coarse struct {
	G      *graph.Graph
	Vars   []*Var
	Groups []*Group
	varOf  []*Var // tensor ID -> var
}

// VarOf returns the variable owning a tensor.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (c *Coarse) VarOf(t *graph.Tensor) *Var { return c.varOf[t.ID] }

// MaxFrontier returns the maximum number of variables simultaneously live
// across a group boundary — the DP's state width. The paper's linearity
// claim (MLP/CNN/RNN coarsen to chains) shows up here as a small constant.
func (c *Coarse) MaxFrontier() int {
	max := 0
	for _, g := range c.Groups {
		if live := len(g.LiveAfter); live > max {
			max = live
		}
	}
	return max
}

// Coarsen builds the coarsened view of a training graph.
func Coarsen(g *graph.Graph) (*Coarse, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}

	// --- tensor variables: union-find over tensors --------------------
	tuf := newUF(len(g.Tensors))

	// Element-wise coalescing: inputs and output of an element-wise op share
	// a partition.
	ewNode := make([]bool, len(g.Nodes))
	descs := make([]*tdl.OpDesc, len(g.Nodes))
	for i, n := range g.Nodes {
		d, err := g.Describe(n)
		if err != nil {
			return nil, fmt.Errorf("coarsen: %v: %w", n, err)
		}
		descs[i] = d
		if !d.IsElementwise() {
			continue
		}
		ewNode[i] = true
		for _, in := range n.Inputs {
			if in.Shape.Equal(n.Output.Shape) {
				tuf.union(in.ID, n.Output.ID)
			}
		}
	}

	// Timestep merging: structurally identical ops across timesteps share
	// slots; their same-position tensors share variables.
	slots := buildSlots(g)
	for _, ops := range slots {
		rep := ops[0]
		for _, n := range ops[1:] {
			for p := range n.Inputs {
				if n.Inputs[p].Shape.Equal(rep.Inputs[p].Shape) {
					tuf.union(n.Inputs[p].ID, rep.Inputs[p].ID)
				}
			}
			tuf.union(n.Output.ID, rep.Output.ID)
		}
	}

	// Materialize variables.
	c := &Coarse{G: g, varOf: make([]*Var, len(g.Tensors))}
	roots := make([]*Var, len(g.Tensors))
	for _, t := range g.Tensors {
		r := tuf.find(t.ID)
		v := roots[r]
		if v == nil {
			v = &Var{ID: len(c.Vars), Shape: t.Shape}
			roots[r] = v
			c.Vars = append(c.Vars, v)
		}
		if !v.Shape.Equal(t.Shape) {
			return nil, fmt.Errorf("coarsen: variable %v merged mismatched shapes %v vs %v (tensor %v)",
				v, v.Shape, t.Shape, t)
		}
		v.Tensors = append(v.Tensors, t)
		if t.Kind == graph.Weight {
			v.HasWeight = true
		}
		c.varOf[t.ID] = v
	}

	// --- operator groups: union-find over nodes -------------------------
	nuf := newUF(len(g.Nodes))
	// Backward ops join their forward op.
	for _, n := range g.Nodes {
		if n.FwdOf != nil {
			nuf.union(n.ID, n.FwdOf.ID)
		}
	}
	// Optimizer updates join the group producing their gradient input, so a
	// weight variable's whole lifetime (forward use, gradient, update) is
	// decided in one DP step — the paper's weight tensor groups.
	for _, n := range g.Nodes {
		if n.Op != "sgd_update" && n.Op != "adam_update" {
			continue
		}
		if len(n.Inputs) >= 2 && n.Inputs[1].Producer != nil {
			nuf.union(n.ID, n.Inputs[1].Producer.ID)
		}
	}
	// Timestep slot members join.
	for _, ops := range slots {
		for _, n := range ops[1:] {
			nuf.union(n.ID, ops[0].ID)
		}
	}
	// Consecutive element-wise ops coalesce — but only forward operators
	// along single-consumer edges. Backward element-wise ops (and gradient
	// aggregations/identity wraps) already join groups through FwdOf;
	// letting them union freely would bridge residual blocks through the
	// skip connection's shared gradient and fuse a whole ResNet stage into
	// one group, exploding the within-group combinatorial search. Tensor
	// *variables* still merge across all element-wise edges above, which is
	// what collapses the skip chain into a single decision.
	for i, n := range g.Nodes {
		if !ewNode[i] || n.FwdOf != nil || n.GradAgg {
			continue
		}
		for _, in := range n.Inputs {
			p := in.Producer
			if p == nil || len(in.Consumers) != 1 {
				continue
			}
			if ewNode[indexOf(g, p)] && p.FwdOf == nil && !p.GradAgg {
				nuf.union(n.ID, p.ID)
			}
		}
	}

	if err := buildGroups(c, g, nuf, slots, descs); err != nil {
		return nil, err
	}
	return c, nil
}

func indexOf(g *graph.Graph, n *graph.Node) int { return n.ID }

// buildSlots groups UnrollTag'd nodes into per-structural-position slots.
// The slot key is (tag, op, attr signature, ordinal among same-key ops in
// the same timestep); instances whose shapes disagree are left unmerged.
func buildSlots(g *graph.Graph) [][]*graph.Node {
	type key struct {
		tag, op string
		attrs   tdl.AttrsKey
		ordinal int
	}
	// ordCount disambiguates several same-signature ops inside one
	// timestep: it counts occurrences per (timestep, signature), flat in
	// one map.
	type ordKey struct {
		ts int
		k  key
	}
	ordCount := map[ordKey]int{}
	bySlot := map[key][]*graph.Node{}
	var order []key
	for _, n := range g.Nodes {
		if n.UnrollTag == "" {
			continue
		}
		k := key{tag: n.UnrollTag, op: n.Op, attrs: attrSig(n)}
		ok := ordKey{ts: n.Timestep, k: k}
		k.ordinal = ordCount[ok]
		ordCount[ok]++
		if _, seen := bySlot[k]; !seen {
			order = append(order, k)
		}
		bySlot[k] = append(bySlot[k], n)
	}

	var out [][]*graph.Node
	for _, k := range order {
		ops := bySlot[k]
		// Keep only shape-consistent instances merged; demote stragglers.
		rep := ops[0]
		var merged []*graph.Node
		for _, n := range ops {
			if sameSignature(rep, n) {
				merged = append(merged, n)
			} else {
				out = append(out, []*graph.Node{n})
			}
		}
		out = append(out, merged)
	}
	return out
}

func sameSignature(a, b *graph.Node) bool {
	if a.Op != b.Op || len(a.Inputs) != len(b.Inputs) {
		return false
	}
	for i := range a.Inputs {
		if !a.Inputs[i].Shape.Equal(b.Inputs[i].Shape) {
			return false
		}
	}
	return a.Output.Shape.Equal(b.Output.Shape)
}

// attrSig buckets a node by its attribute signature (tdl.AttrsKey: inline
// and allocation-free for the ≤ 4-attribute operators of the standard
// library).
func attrSig(n *graph.Node) tdl.AttrsKey {
	return tdl.MakeAttrsKey(n.Attrs)
}

// buildGroups materializes groups from the node union-find, orders them by
// earliest member node, slices each into slots, and computes variable
// liveness (First/Last group references).
func buildGroups(c *Coarse, g *graph.Graph, nuf *uf, slots [][]*graph.Node, descs []*tdl.OpDesc) error {
	members := make([][]*graph.Node, len(g.Nodes)) // union root -> members
	for _, n := range g.Nodes {
		r := nuf.find(n.ID)
		members[r] = append(members[r], n)
	}
	// Order groups by their earliest node ID: forward topological order.
	type gp struct {
		min int
		ns  []*graph.Node
	}
	var gps []gp
	for _, ns := range members {
		if ns == nil {
			continue
		}
		min := ns[0].ID
		for _, n := range ns {
			if n.ID < min {
				min = n.ID
			}
		}
		gps = append(gps, gp{min: min, ns: ns})
	}
	sort.Slice(gps, func(i, j int) bool { return gps[i].min < gps[j].min })

	// Slot membership lookup: node -> slot leader node.
	slotLeader := make([]*graph.Node, len(g.Nodes))
	for _, ops := range slots {
		for _, n := range ops {
			slotLeader[n.ID] = ops[0]
		}
	}

	seen := make([]int, len(c.Vars)) // var ID -> last group stamp + 1
	for gi, grp := range gps {
		group := &Group{ID: gi}
		bySlot := map[int]*Slot{}
		var slotOrder []int
		for _, n := range grp.ns {
			leader := n
			if l := slotLeader[n.ID]; l != nil {
				leader = l
			}
			s, ok := bySlot[leader.ID]
			if !ok {
				s = &Slot{}
				bySlot[leader.ID] = s
				slotOrder = append(slotOrder, leader.ID)
			}
			s.Ops = append(s.Ops, n)
		}
		sort.Ints(slotOrder)
		for _, id := range slotOrder {
			s := bySlot[id]
			s.Desc = descs[s.Ops[0].ID]
			group.Slots = append(group.Slots, s)
			for _, n := range s.Ops {
				for _, in := range n.Inputs {
					v := c.varOf[in.ID]
					if seen[v.ID] != gi+1 {
						seen[v.ID] = gi + 1
						group.Vars = append(group.Vars, v)
					}
				}
				v := c.varOf[n.Output.ID]
				if seen[v.ID] != gi+1 {
					seen[v.ID] = gi + 1
					group.Vars = append(group.Vars, v)
				}
			}
		}
		sort.Slice(group.Vars, func(i, j int) bool { return group.Vars[i].ID < group.Vars[j].ID })
		c.Groups = append(c.Groups, group)
	}

	// Variable liveness across the group order.
	for _, v := range c.Vars {
		v.First, v.Last = -1, -1
	}
	for gi, grp := range c.Groups {
		for _, v := range grp.Vars {
			if v.First < 0 {
				v.First = gi
			}
			v.Last = gi
		}
	}
	// Variables never referenced by any op (dangling tensors) live nowhere;
	// they are dropped from the DP by construction.

	// Dense per-group liveness slices (c.Vars is ID-ordered, so appends in
	// Var order keep both slices sorted by ID).
	for gi, grp := range c.Groups {
		for _, v := range grp.Vars {
			if v.First == gi {
				grp.NewVars = append(grp.NewVars, v)
			}
		}
		for _, v := range c.Vars {
			if v.First <= gi && v.Last > gi {
				grp.LiveAfter = append(grp.LiveAfter, v)
			}
		}
	}
	return nil
}

// --- tiny union-find -------------------------------------------------------

type uf struct{ parent []int }

func newUF(n int) *uf {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &uf{parent: p}
}

func (u *uf) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}
