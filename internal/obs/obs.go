// Package obs is the observability layer: a hierarchical span tracer for
// the partition-search pipeline (coarsening, per-prefix DP solves, ordering
// branch-and-bound, hybrid segment solves, pricing-cache traffic) and a
// virtual-clock execution timeline for the simulator (see timeline.go).
// Both export as Chrome trace_event JSON (chrome.go) and as human-readable
// text (text.go).
//
// Tracing is strictly opt-in and zero-cost when disabled: every method is
// safe — and a no-op — on a nil receiver, so call sites thread a possibly
// nil *Span / *Timeline through without branching. The disabled path
// performs no allocation: attribute setters take scalar arguments (never
// variadics, whose slice construction would allocate at the call site even
// for a nil receiver), and event payloads are plain structs passed by
// value.
//
// The package sits on the search path — dp.Solve and recursive.Partition
// call into it when a trace is attached — so nodeterm enforcement applies.
// The wall-clock reads below are confined to span timestamps, which are
// display-only: they are exported to traces but never reach plan bytes, so
// each carries a //tofu:allow-nondet suppression.
//
//tofu:searchpath span timestamps are display-only and never reach plan bytes
package obs

import (
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are pre-formatted to
// strings so the exporter has a single scalar representation to emit.
type Attr struct {
	Key string
	Val string
}

// Span is one timed region of the search pipeline. A nil *Span is the
// disabled tracer: every method below no-ops on it, so the enabled check
// is exactly one pointer comparison.
//
// Spans form a tree. Child is safe to call concurrently on one parent —
// the ordering branch-and-bound expands nodes from a worker pool — but the
// child order then follows the scheduler; structure-determinism guarantees
// hold only for serial searches (Parallelism 1), the same contract the
// SearchStats node counters document.
type Span struct {
	name  string
	start time.Time
	dur   time.Duration
	ended bool

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
}

// NewSpan starts a root span. This is the only constructor that turns
// tracing on: pass the result (or a Child of it) into the search options.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()} //tofu:allow-nondet span timestamps are display-only and never reach plan bytes
}

// Enabled reports whether the span records anything. It is the gate call
// sites use before doing enabled-only work (e.g. reading cache stats for a
// delta attribute).
func (s *Span) Enabled() bool { return s != nil }

// Child starts a nested span. On a nil receiver it returns nil, keeping
// the whole subtree disabled with no allocation.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()} //tofu:allow-nondet span timestamps are display-only and never reach plan bytes
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's duration. Idempotent; later calls keep the first
// duration so a deferred End after an explicit one is harmless.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start) //tofu:allow-nondet span timestamps are display-only and never reach plan bytes
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.setAttr(key, strconv.FormatInt(v, 10))
}

// SetFloat attaches a float attribute (shortest round-trip formatting, so
// identical inputs yield identical trace bytes).
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.setAttr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.setAttr(key, v)
}

func (s *Span) setAttr(key, val string) {
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the stamped duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Attrs returns a copy of the attributes in the order they were set.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Children returns a copy of the child slice.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Structure renders the span tree shape — names and parent edges only, no
// timestamps or attributes — as a canonical string. Two serial runs of the
// same search must produce equal Structure strings; the trace-determinism
// tests compare exactly this.
func (s *Span) Structure() string {
	if s == nil {
		return ""
	}
	var b []byte
	b = s.appendStructure(b)
	return string(b)
}

func (s *Span) appendStructure(b []byte) []byte {
	b = append(b, s.name...)
	kids := s.Children()
	if len(kids) == 0 {
		return b
	}
	b = append(b, '(')
	for i, c := range kids {
		if i > 0 {
			b = append(b, ' ')
		}
		b = c.appendStructure(b)
	}
	return append(b, ')')
}

// SpanCount returns the number of spans in the tree rooted at s.
func (s *Span) SpanCount() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children() {
		n += c.SpanCount()
	}
	return n
}
