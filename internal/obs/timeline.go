package obs

import "sync"

// Event is one interval on the simulated-execution timeline. Times are
// virtual seconds on the simulator's clock (never wall time), so the event
// stream is exactly as deterministic as the simulation itself and two runs
// of the same plan export byte-identical timelines.
//
// This is deliberately the data model a future event-driven executor emits
// too (ROADMAP item 1): one lane per engine, closed intervals, byte and
// interconnect-level annotations.
type Event struct {
	Lane  string  // engine lane, e.g. "w0/compute", "stage1/w0/xfer-L2"
	Name  string  // op or phase name
	Kind  string  // "compute", "xfer", "reduce", "handoff", "fill", "drain"
	Start float64 // virtual seconds from iteration start
	Dur   float64 // virtual seconds
	Bytes int64   // payload for transfer-like events, 0 otherwise
	Level int     // interconnect level for transfer events, -1 otherwise
}

// Timeline collects Events. A nil *Timeline is the disabled collector:
// Add no-ops, WithPrefix returns nil, so the simulator threads it through
// unconditionally. Non-nil timelines share one sink across WithPrefix
// views; the prefix namespaces lanes (pipeline stages prepend "stageN/").
type Timeline struct {
	sink   *eventSink
	prefix string
}

type eventSink struct {
	mu     sync.Mutex
	events []Event
}

// NewTimeline returns an enabled, empty timeline.
func NewTimeline() *Timeline { return &Timeline{sink: &eventSink{}} }

// Enabled reports whether events are recorded.
func (t *Timeline) Enabled() bool { return t != nil }

// WithPrefix returns a view whose events get their lanes prefixed with p.
// Views share the parent's sink, so Events on any view sees everything.
func (t *Timeline) WithPrefix(p string) *Timeline {
	if t == nil {
		return nil
	}
	return &Timeline{sink: t.sink, prefix: t.prefix + p}
}

// Add records one event, applying the view's lane prefix.
func (t *Timeline) Add(ev Event) {
	if t == nil {
		return
	}
	if t.prefix != "" {
		ev.Lane = t.prefix + ev.Lane
	}
	t.sink.mu.Lock()
	t.sink.events = append(t.sink.events, ev)
	t.sink.mu.Unlock()
}

// Events returns a copy of every recorded event in insertion order.
func (t *Timeline) Events() []Event {
	if t == nil {
		return nil
	}
	t.sink.mu.Lock()
	defer t.sink.mu.Unlock()
	out := make([]Event, len(t.sink.events))
	copy(out, t.sink.events)
	return out
}

// Lanes returns the distinct lane names in order of first appearance —
// insertion order, not map order, so the export is deterministic.
func (t *Timeline) Lanes() []string {
	if t == nil {
		return nil
	}
	t.sink.mu.Lock()
	defer t.sink.mu.Unlock()
	seen := make(map[string]bool, 8)
	var lanes []string
	for _, ev := range t.sink.events {
		if !seen[ev.Lane] {
			seen[ev.Lane] = true
			lanes = append(lanes, ev.Lane)
		}
	}
	return lanes
}
