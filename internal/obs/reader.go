package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Strict trace_event reader: validates that an exported trace is
// well-formed before anything downstream (chrome://tracing, CI) consumes
// it. It accepts exactly the subset this package writes — object form,
// "X" complete events and "M" metadata events — and rejects unknown
// fields, unknown phases, negative or non-finite times, and metadata
// without a name.

// ReadChromeTrace parses and validates a trace document.
func ReadChromeTrace(r io.Reader) (*ChromeTrace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc ChromeTrace
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	// Trailing garbage after the document is a malformed trace too.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("trace: trailing data after traceEvents document")
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("trace: missing traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		if err := validateEvent(ev); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	return &doc, nil
}

func validateEvent(ev TraceEvent) error {
	if ev.Name == "" {
		return fmt.Errorf("missing name")
	}
	switch ev.Ph {
	case "X":
		if math.IsNaN(ev.Ts) || math.IsInf(ev.Ts, 0) || ev.Ts < 0 {
			return fmt.Errorf("%s: bad ts %v", ev.Name, ev.Ts)
		}
		if math.IsNaN(ev.Dur) || math.IsInf(ev.Dur, 0) || ev.Dur < 0 {
			return fmt.Errorf("%s: bad dur %v", ev.Name, ev.Dur)
		}
		if ev.Pid <= 0 {
			return fmt.Errorf("%s: bad pid %d", ev.Name, ev.Pid)
		}
		if ev.Tid < 0 {
			return fmt.Errorf("%s: bad tid %d", ev.Name, ev.Tid)
		}
	case "M":
		if ev.Name != "process_name" && ev.Name != "thread_name" {
			return fmt.Errorf("unknown metadata event %q", ev.Name)
		}
		if ev.Args["name"] == "" {
			return fmt.Errorf("%s: metadata without args.name", ev.Name)
		}
	default:
		return fmt.Errorf("%s: unknown phase %q", ev.Name, ev.Ph)
	}
	return nil
}

// SpanNames returns the sorted, distinct names of search-process spans.
func (t *ChromeTrace) SpanNames() []string {
	return t.distinctNames(TracePIDSearch, "X", func(ev TraceEvent) string { return ev.Name })
}

// SimLanes returns the sorted, distinct simulated-timeline lane names
// (from thread_name metadata in the sim process).
func (t *ChromeTrace) SimLanes() []string {
	return t.distinctNames(TracePIDSim, "M", func(ev TraceEvent) string {
		if ev.Name != "thread_name" {
			return ""
		}
		return ev.Args["name"]
	})
}

// SimEventCount returns the number of complete events on the simulated
// timeline.
func (t *ChromeTrace) SimEventCount() int {
	n := 0
	for _, ev := range t.TraceEvents {
		if ev.Pid == TracePIDSim && ev.Ph == "X" {
			n++
		}
	}
	return n
}

func (t *ChromeTrace) distinctNames(pid int, ph string, key func(TraceEvent) string) []string {
	seen := make(map[string]bool, 16)
	var names []string
	for _, ev := range t.TraceEvents {
		if ev.Pid != pid || ev.Ph != ph {
			continue
		}
		if k := key(ev); k != "" && !seen[k] {
			seen[k] = true
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}
