package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// The disabled path is the one every production search takes: a nil span
// and a nil timeline must be complete no-ops with zero allocations, or
// tracing would tax the allocation-free hot path it instruments.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var s *Span
	var tl *Timeline
	allocs := testing.AllocsPerRun(1000, func() {
		c := s.Child("dp.solve")
		c.SetInt("states", 42)
		c.SetFloat("cost", 1.5)
		c.SetStr("key", "v")
		c.End()
		if c.Enabled() || s.Enabled() {
			t.Fatal("nil span reported enabled")
		}
		v := tl.WithPrefix("stage0/")
		v.Add(Event{Lane: "w0/compute", Name: "op", Start: 1, Dur: 2, Level: -1})
		if v.Enabled() {
			t.Fatal("nil timeline reported enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates: %v allocs/op, want 0", allocs)
	}
}

func TestNilAccessors(t *testing.T) {
	var s *Span
	if s.Name() != "" || s.Duration() != 0 || s.Attrs() != nil || s.Children() != nil {
		t.Fatal("nil span accessors not zero-valued")
	}
	if s.Structure() != "" || s.SpanCount() != 0 {
		t.Fatal("nil span structure not empty")
	}
	var tl *Timeline
	if tl.Events() != nil || tl.Lanes() != nil {
		t.Fatal("nil timeline accessors not nil")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	root := NewSpan("root")
	a := root.Child("a")
	a.Child("a1").End()
	a.Child("a2").End()
	a.End()
	root.Child("b").End()
	root.End()

	want := "root(a(a1 a2) b)"
	if got := root.Structure(); got != want {
		t.Fatalf("Structure() = %q, want %q", got, want)
	}
	if n := root.SpanCount(); n != 5 {
		t.Fatalf("SpanCount() = %d, want 5", n)
	}
	if root.Duration() <= 0 {
		t.Fatal("ended root has zero duration")
	}
	d := root.Duration()
	root.End() // idempotent
	if root.Duration() != d {
		t.Fatal("second End changed duration")
	}
}

func TestConcurrentChildren(t *testing.T) {
	root := NewSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("worker")
			c.SetInt("i", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if len(root.Children()) != 32 {
		t.Fatalf("got %d children, want 32", len(root.Children()))
	}
}

func TestTimelinePrefixSharesSink(t *testing.T) {
	tl := NewTimeline()
	tl.Add(Event{Lane: "w0/compute", Name: "op0", Kind: "compute", Dur: 1, Level: -1})
	st := tl.WithPrefix("stage1/")
	st.Add(Event{Lane: "w0/compute", Name: "op1", Kind: "compute", Start: 1, Dur: 1, Level: -1})

	events := tl.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[1].Lane != "stage1/w0/compute" {
		t.Fatalf("prefixed lane = %q", events[1].Lane)
	}
	lanes := tl.Lanes()
	if len(lanes) != 2 || lanes[0] != "w0/compute" || lanes[1] != "stage1/w0/compute" {
		t.Fatalf("lanes = %v", lanes)
	}
}

func buildSampleTrace() (*Span, *Timeline) {
	root := NewSpan("tofu-plan")
	c := root.Child("coarsen")
	c.SetInt("groups", 12)
	c.End()
	s := root.Child("dp.solve")
	s.SetInt("states", 99)
	s.End()
	root.End()

	tl := NewTimeline()
	tl.Add(Event{Lane: "w0/compute", Name: "matmult", Kind: "compute", Start: 0, Dur: 2e-3, Level: -1})
	tl.Add(Event{Lane: "w0/xfer-L0", Name: "fetch matmult", Kind: "xfer", Start: 0, Dur: 1e-3, Bytes: 4096, Level: 0})
	return root, tl
}

// The exported document must survive its own strict reader with all
// structure intact — the round-trip the CI trace step relies on.
func TestChromeRoundTrip(t *testing.T) {
	root, tl := buildSampleTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root, tl); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, buf.String())
	}
	names := doc.SpanNames()
	if len(names) != 3 || names[0] != "coarsen" || names[1] != "dp.solve" || names[2] != "tofu-plan" {
		t.Fatalf("span names = %v", names)
	}
	lanes := doc.SimLanes()
	if len(lanes) != 2 || lanes[0] != "w0/compute" || lanes[1] != "w0/xfer-L0" {
		t.Fatalf("sim lanes = %v", lanes)
	}
	if doc.SimEventCount() != 2 {
		t.Fatalf("sim events = %d, want 2", doc.SimEventCount())
	}
}

// Identical timelines must export byte-identical documents (timeline-only
// export has no wall-clock content).
func TestTimelineExportDeterministic(t *testing.T) {
	render := func() []byte {
		tl := NewTimeline()
		tl.Add(Event{Lane: "w0/compute", Name: "a", Kind: "compute", Start: 0, Dur: 1, Level: -1})
		tl.Add(Event{Lane: "w0/xfer-L1", Name: "b", Kind: "xfer", Start: 1, Dur: 2, Bytes: 7, Level: 1})
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, nil, tl); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("timeline export is not byte-deterministic")
	}
}

func TestReaderRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"missing array": `{}`,
		"unknown field": `{"traceEvents":[],"bogus":1}`,
		"unknown phase": `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":1,"tid":0}]}`,
		"negative ts":   `{"traceEvents":[{"name":"x","ph":"X","ts":-1,"pid":1,"tid":0}]}`,
		"missing name":  `{"traceEvents":[{"name":"","ph":"X","ts":0,"pid":1,"tid":0}]}`,
		"bad pid":       `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":0,"tid":0}]}`,
		"unnamed meta":  `{"traceEvents":[{"name":"thread_name","ph":"M","ts":0,"pid":2,"tid":0}]}`,
		"unknown meta":  `{"traceEvents":[{"name":"weird","ph":"M","ts":0,"pid":2,"tid":0,"args":{"name":"x"}}]}`,
		"trailing data": `{"traceEvents":[]} {"traceEvents":[]}`,
	}
	for name, in := range cases {
		if _, err := ReadChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: reader accepted malformed input %q", name, in)
		}
	}
	if _, err := ReadChromeTrace(strings.NewReader(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("reader rejected minimal valid trace: %v", err)
	}
}

func TestSpanLayoutNests(t *testing.T) {
	root, tl := buildSampleTrace()
	doc := BuildChromeTrace(root, tl)
	// Sequential children (coarsen ended before dp.solve started) must
	// share the root's process without colliding: every event validates
	// and the root span sits at tid 0.
	for _, ev := range doc.TraceEvents {
		if err := validateEvent(ev); err != nil {
			t.Fatalf("built event invalid: %v", err)
		}
		if ev.Ph == "X" && ev.Pid == TracePIDSearch && ev.Name == "tofu-plan" && ev.Tid != 0 {
			t.Fatalf("root span on tid %d, want 0", ev.Tid)
		}
	}
}

func TestTextRenderers(t *testing.T) {
	root, tl := buildSampleTrace()
	out := SpanTree(root)
	for _, want := range []string{"tofu-plan", "coarsen", "groups=12", "dp.solve", "states=99"} {
		if !strings.Contains(out, want) {
			t.Errorf("span tree missing %q:\n%s", want, out)
		}
	}

	out = TimelineSummary(tl)
	for _, want := range []string{"2 events", "w0/compute", "w0/xfer-L0", "util"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline summary missing %q:\n%s", want, out)
		}
	}
}

func TestSpanTreeCollapsesRuns(t *testing.T) {
	root := NewSpan("root")
	for i := 0; i < collapseAfter+5; i++ {
		root.Child("order.expand").End()
	}
	root.End()
	out := SpanTree(root)
	if got := strings.Count(out, "order.expand"); got != collapseAfter+1 {
		t.Fatalf("collapsed tree mentions order.expand %d times, want %d:\n%s",
			got, collapseAfter+1, out)
	}
	if !strings.Contains(out, "… 5 more order.expand") {
		t.Fatalf("missing collapse summary line:\n%s", out)
	}
}
