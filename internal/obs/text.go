package obs

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Human-readable rendering: an indented span tree for terminals (the
// `-trace -` form) and a per-lane utilization summary for timelines.

// collapseAfter bounds how many same-named consecutive siblings the tree
// prints before folding the rest into one summary line, so a search with
// hundreds of expansion spans stays readable.
const collapseAfter = 8

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// SpanTree renders the tree with durations and attributes.
func SpanTree(root *Span) string {
	if root == nil {
		return ""
	}
	var w strings.Builder
	writeSpanLine(&w, root, 0)
	writeChildren(&w, root, 1)
	return w.String()
}

func writeChildren(w *strings.Builder, s *Span, depth int) {
	kids := s.Children()
	for i := 0; i < len(kids); {
		// Length of the run of consecutive same-named siblings at i.
		j := i + 1
		for j < len(kids) && kids[j].name == kids[i].name { //tofu:allow-ctxpoll advances j toward len(kids) every iteration
			j++
		}
		run := kids[i:j]
		shown := len(run)
		if shown > collapseAfter {
			shown = collapseAfter
		}
		for _, c := range run[:shown] {
			writeSpanLine(w, c, depth)
			writeChildren(w, c, depth+1)
		}
		if len(run) > shown {
			var rest time.Duration
			for _, c := range run[shown:] {
				rest += c.dur
			}
			fmt.Fprintf(w, "%*s… %d more %s (%s)\n",
				2*depth, "", len(run)-shown, run[0].name, fmtDur(rest))
		}
		i = j
	}
}

func writeSpanLine(w *strings.Builder, s *Span, depth int) {
	fmt.Fprintf(w, "%*s%-*s %9s", 2*depth, "", 32-2*depth, s.name, fmtDur(s.dur))
	for _, a := range s.Attrs() {
		fmt.Fprintf(w, "  %s=%s", a.Key, a.Val)
	}
	fmt.Fprintln(w)
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// TimelineSummary renders per-lane busy time and utilization against the
// timeline's overall makespan.
func TimelineSummary(tl *Timeline) string {
	if !tl.Enabled() {
		return ""
	}
	var w strings.Builder
	events := tl.Events()
	if len(events) == 0 {
		return "timeline: no events\n"
	}
	makespan := 0.0
	busy := make(map[string]float64, 8)
	count := make(map[string]int, 8)
	for _, ev := range events {
		if end := ev.Start + ev.Dur; end > makespan {
			makespan = end
		}
		busy[ev.Lane] += ev.Dur
		count[ev.Lane]++
	}
	fmt.Fprintf(&w, "simulated timeline: %d events, makespan %.6fs\n", len(events), makespan)
	for _, lane := range tl.Lanes() {
		util := 0.0
		if makespan > 0 {
			util = 100 * busy[lane] / makespan
		}
		fmt.Fprintf(&w, "  %-28s %4d events  busy %.6fs  util %5.1f%%\n",
			lane, count[lane], busy[lane], util)
	}
	return w.String()
}
