package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace_event export. The format is the JSON object form consumed
// by chrome://tracing and Perfetto: {"traceEvents":[...]} where each event
// is a "complete" event (ph "X": name, ts/dur in microseconds, pid, tid)
// or a metadata event (ph "M": process_name / thread_name).
//
// Two processes:
//
//	pid 1 "search"    — the span tree, wall-clock microseconds relative to
//	                    the root span's start. Overlapping spans (parallel
//	                    DP solves) are laid out on as few tids as proper
//	                    nesting allows, flame-graph style.
//	pid 2 "simulated" — the virtual-clock timeline, one tid per lane,
//	                    virtual microseconds.

const (
	// TracePIDSearch is the trace_event process holding the span tree.
	TracePIDSearch = 1
	// TracePIDSim is the trace_event process holding the simulated
	// execution timeline.
	TracePIDSim = 2
)

// TraceEvent is one entry of the traceEvents array. The field set is the
// subset of the trace_event spec this package emits; the strict reader
// rejects anything else.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the top-level document.
type ChromeTrace struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// BuildChromeTrace assembles the trace document from a span tree and/or a
// timeline; either may be nil.
func BuildChromeTrace(root *Span, tl *Timeline) *ChromeTrace {
	doc := &ChromeTrace{TraceEvents: []TraceEvent{}}
	if root != nil {
		doc.TraceEvents = append(doc.TraceEvents, metaEvent(TracePIDSearch, 0, "process_name", "search"))
		doc.TraceEvents = append(doc.TraceEvents, spanEvents(root)...)
	}
	if tl.Enabled() {
		doc.TraceEvents = append(doc.TraceEvents, metaEvent(TracePIDSim, 0, "process_name", "simulated execution"))
		doc.TraceEvents = append(doc.TraceEvents, timelineEvents(tl)...)
	}
	return doc
}

// WriteChromeTrace writes the document as indented JSON.
func WriteChromeTrace(w io.Writer, root *Span, tl *Timeline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(BuildChromeTrace(root, tl))
}

func metaEvent(pid, tid int, kind, name string) TraceEvent {
	return TraceEvent{
		Name: kind,
		Ph:   "M",
		Pid:  pid,
		Tid:  tid,
		Args: map[string]string{"name": name},
	}
}

// flatSpan is a span flattened to an interval for tid layout.
type flatSpan struct {
	s      *Span
	parent string
	ts     float64 // µs relative to root start
	dur    float64 // µs
}

// spanEvents flattens the span tree to complete events. Tid layout: spans
// are placed on the lowest tid where they properly nest — a span fits a
// tid if every span still open there encloses it. Concurrent siblings
// spill to higher tids, so parallel prefix solves render side by side.
func spanEvents(root *Span) []TraceEvent {
	var flat []flatSpan
	var walk func(s *Span, parent string)
	walk = func(s *Span, parent string) {
		ts := s.start.Sub(root.start).Seconds() * 1e6
		if ts < 0 {
			ts = 0
		}
		flat = append(flat, flatSpan{s: s, parent: parent, ts: ts, dur: s.dur.Seconds() * 1e6})
		for _, c := range s.Children() {
			walk(c, s.name)
		}
	}
	walk(root, "")

	// Lowest-tid proper-nesting layout: per tid, a stack of open interval
	// end times. The walk above emits parents before children, so a child
	// probing its parent's tid sees the parent still open and nests there
	// when the timestamps allow it.
	type lane struct{ open []float64 }
	var lanes []*lane
	place := func(f flatSpan) int {
		end := f.ts + f.dur
		for i, ln := range lanes {
			for len(ln.open) > 0 && ln.open[len(ln.open)-1] <= f.ts { //tofu:allow-ctxpoll pops one open interval per iteration; bounded by the lane's stack depth
				ln.open = ln.open[:len(ln.open)-1]
			}
			if len(ln.open) == 0 || end <= ln.open[len(ln.open)-1] {
				ln.open = append(ln.open, end)
				return i
			}
		}
		lanes = append(lanes, &lane{open: []float64{end}})
		return len(lanes) - 1
	}

	events := make([]TraceEvent, 0, len(flat))
	for _, f := range flat {
		ev := TraceEvent{
			Name: f.s.name,
			Cat:  "search",
			Ph:   "X",
			Ts:   f.ts,
			Dur:  f.dur,
			Pid:  TracePIDSearch,
			Tid:  place(f),
		}
		attrs := f.s.Attrs()
		if len(attrs) > 0 || f.parent != "" {
			ev.Args = make(map[string]string, len(attrs)+1)
			if f.parent != "" {
				ev.Args["parent"] = f.parent
			}
			for _, a := range attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		events = append(events, ev)
	}
	return events
}

// timelineEvents emits one tid per lane (named via thread_name metadata),
// events in virtual microseconds. Lane order is first-appearance order,
// so identical simulations export identical bytes.
func timelineEvents(tl *Timeline) []TraceEvent {
	lanes := tl.Lanes()
	tid := make(map[string]int, len(lanes))
	var events []TraceEvent
	for i, l := range lanes {
		tid[l] = i
		events = append(events, metaEvent(TracePIDSim, i, "thread_name", l))
	}
	for _, ev := range tl.Events() {
		te := TraceEvent{
			Name: ev.Name,
			Cat:  ev.Kind,
			Ph:   "X",
			Ts:   ev.Start * 1e6,
			Dur:  ev.Dur * 1e6,
			Pid:  TracePIDSim,
			Tid:  tid[ev.Lane],
		}
		if ev.Bytes > 0 || ev.Level >= 0 {
			te.Args = make(map[string]string, 2)
			if ev.Bytes > 0 {
				te.Args["bytes"] = formatInt(ev.Bytes)
			}
			if ev.Level >= 0 {
				te.Args["level"] = formatInt(int64(ev.Level))
			}
		}
		events = append(events, te)
	}
	return events
}
