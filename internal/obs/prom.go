package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromFamily is one metric family parsed from a Prometheus text exposition:
// its TYPE declaration plus the samples that follow it.
type PromFamily struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | untyped
	Help    string
	Samples int
}

// promTypes are the metric types the text exposition format (version
// 0.0.4) admits.
var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// ParsePromText strictly parses a Prometheus text-format exposition and
// returns its metric families in order of first appearance. It enforces
// the structural rules a scraper relies on: valid metric and label names,
// parseable float values, TYPE/HELP comments naming a single metric,
// samples grouped under their family, and no duplicate TYPE declarations.
func ParsePromText(r io.Reader) ([]PromFamily, error) {
	var fams []PromFamily
	index := map[string]int{}  // family name -> fams index
	typed := map[string]bool{} // families with an explicit TYPE line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() { //tofu:allow-ctxpoll one line of finite scrape input per iteration
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parsePromComment(line)
			if !ok {
				continue // free-form comment
			}
			if !validPromName(name) {
				return nil, fmt.Errorf("obs: prom line %d: invalid metric name %q", lineNo, name)
			}
			switch kind {
			case "TYPE":
				if !promTypes[rest] {
					return nil, fmt.Errorf("obs: prom line %d: invalid type %q for %s", lineNo, rest, name)
				}
				if typed[name] {
					return nil, fmt.Errorf("obs: prom line %d: duplicate TYPE for %s", lineNo, name)
				}
				typed[name] = true
				if i, ok := index[name]; ok {
					// A preceding HELP line already opened the family.
					if fams[i].Samples > 0 {
						return nil, fmt.Errorf("obs: prom line %d: TYPE for %s after its samples", lineNo, name)
					}
					fams[i].Type = rest
				} else {
					index[name] = len(fams)
					fams = append(fams, PromFamily{Name: name, Type: rest})
				}
			case "HELP":
				if i, ok := index[name]; ok {
					fams[i].Help = rest
				} else {
					index[name] = len(fams)
					fams = append(fams, PromFamily{Name: name, Type: "untyped", Help: rest})
				}
			}
			continue
		}
		name, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: prom line %d: %w", lineNo, err)
		}
		fam := promFamilyOf(name, index, fams)
		i, ok := index[fam]
		if !ok {
			// An undeclared sample is legal (implicitly untyped).
			i = len(fams)
			index[fam] = i
			fams = append(fams, PromFamily{Name: fam, Type: "untyped"})
		}
		fams[i].Samples++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: prom: %w", err)
	}
	for _, f := range fams {
		if f.Samples == 0 {
			return nil, fmt.Errorf("obs: prom: family %s declared but has no samples", f.Name)
		}
	}
	return fams, nil
}

// ValidateExposition is ParsePromText returning only the verdict and the
// total sample count — the CI smoke check.
func ValidateExposition(r io.Reader) (int, error) {
	fams, err := ParsePromText(r)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, f := range fams {
		n += f.Samples
	}
	if n == 0 {
		return 0, fmt.Errorf("obs: prom: exposition has no samples")
	}
	return n, nil
}

// parsePromComment splits "# TYPE name type" / "# HELP name docstring".
func parsePromComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "TYPE" && fields[1] != "HELP" {
		return "", "", "", false
	}
	return fields[1], fields[2], strings.Join(fields[3:], " "), true
}

// parsePromSample validates one sample line and returns its metric name.
func parsePromSample(line string) (string, error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", fmt.Errorf("sample %q has no value", line)
	}
	name := rest[:i]
	if !validPromName(name) {
		return "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", fmt.Errorf("unterminated label set in %q", line)
		}
		if err := validPromLabels(rest[1:end]); err != nil {
			return "", err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("sample %q needs a value and optional timestamp", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return "", fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("bad sample timestamp %q", fields[1])
		}
	}
	return name, nil
}

// validPromLabels checks `k1="v1",k2="v2"` pairs; escapes inside values
// are accepted wholesale (the scraper unescapes, we only check shape).
func validPromLabels(s string) error {
	if s == "" {
		return nil
	}
	for len(s) > 0 { //tofu:allow-ctxpoll consumes at least one byte of s per iteration
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return fmt.Errorf("bad label pair in %q", s)
		}
		k := s[:eq]
		if !validPromName(k) || strings.Contains(k, ":") {
			return fmt.Errorf("invalid label name %q", k)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("label %s value is not quoted", k)
		}
		s = s[1:]
		end := -1
		for j := 0; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				continue
			}
			if s[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated value for label %s", k)
		}
		s = s[end+1:]
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if len(s) > 0 {
			return fmt.Errorf("junk after label %s", k)
		}
	}
	return nil
}

// validPromName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// promFamilyOf strips histogram/summary sample suffixes so `x_bucket`,
// `x_sum` and `x_count` group under the `x` family — but only when `x`
// was actually declared as one (a plain counter named `y_count` is its
// own family).
func promFamilyOf(name string, index map[string]int, fams []PromFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok || base == "" {
			continue
		}
		if i, ok := index[base]; ok && (fams[i].Type == "histogram" || fams[i].Type == "summary") {
			return base
		}
	}
	return name
}
