package interval

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustVar(t *testing.T, sp *Space, name string) Interval {
	t.Helper()
	iv, err := Variable(sp, name)
	if err != nil {
		t.Fatal(err)
	}
	return iv
}

func TestVariableInit(t *testing.T) {
	sp := NewSpace("i", "j")
	iv := mustVar(t, sp, "j")
	// ZV[u_j = 1]: lower bound 0, upper bound X_j.
	lo, hi, err := iv.Concretize([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 20 {
		t.Fatalf("Concretize = [%g,%g], want [0,20]", lo, hi)
	}
}

func TestFigure4Arithmetic(t *testing.T) {
	sp := NewSpace("x")
	x := mustVar(t, sp, "x")

	// (x + 2): [2, X+2]
	s := x.AddConst(2)
	lo, hi, _ := s.Concretize([]float64{8})
	if lo != 2 || hi != 10 {
		t.Fatalf("x+2 over X=8 = [%g,%g]", lo, hi)
	}

	// (x * 3): [0, 3X]
	m := x.MulConst(3)
	lo, hi, _ = m.Concretize([]float64{8})
	if lo != 0 || hi != 24 {
		t.Fatalf("3x over X=8 = [%g,%g]", lo, hi)
	}

	// (x / 2): [0, X/2]
	d, err := x.DivConst(2)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ = d.Concretize([]float64{8})
	if lo != 0 || hi != 4 {
		t.Fatalf("x/2 over X=8 = [%g,%g]", lo, hi)
	}

	// interval + interval
	sum, err := x.Add(x.AddConst(1))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ = sum.Concretize([]float64{8})
	if lo != 1 || hi != 17 {
		t.Fatalf("x + (x+1) over X=8 = [%g,%g]", lo, hi)
	}
}

func TestSubSwapsEndpoints(t *testing.T) {
	sp := NewSpace("y", "ky")
	y := mustVar(t, sp, "y")
	ky := mustVar(t, sp, "ky")
	// y - ky over Y=10, KY=3: [0-3, 10-0] = [-3, 10]; Concretize clamps lo at 0.
	diff, err := y.Sub(ky)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := diff.Concretize([]float64{10, 3})
	if lo != 0 || hi != 10 {
		t.Fatalf("y-ky = [%g,%g], want [0,10]", lo, hi)
	}
}

func TestNegativeScaleSwapsEndpoints(t *testing.T) {
	sp := NewSpace("x")
	x := mustVar(t, sp, "x")
	n := x.MulConst(-1).AddConst(5) // 5 - x: [5-X, 5]
	lo, hi, _ := n.Concretize([]float64{3})
	if lo != 2 || hi != 5 {
		t.Fatalf("5-x over X=3 = [%g,%g], want [2,5]", lo, hi)
	}
}

func TestNonAffineMul(t *testing.T) {
	sp := NewSpace("x")
	x := mustVar(t, sp, "x")
	if _, err := x.Mul(x); !errors.Is(err, ErrNonAffine) {
		t.Fatalf("x*x should be non-affine, got %v", err)
	}
	// Multiplying by a degenerate constant interval stays affine.
	c := Const(sp, 4)
	got, err := x.Mul(c)
	if err != nil {
		t.Fatal(err)
	}
	_, hi, _ := got.Concretize([]float64{2})
	if hi != 8 {
		t.Fatalf("x*[4,4] upper = %g, want 8", hi)
	}
}

func TestDivByZero(t *testing.T) {
	sp := NewSpace("x")
	x := mustVar(t, sp, "x")
	if _, err := x.DivConst(0); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestMixedSpacesRejected(t *testing.T) {
	a := mustVar(t, NewSpace("x"), "x")
	b := mustVar(t, NewSpace("x"), "x")
	if _, err := a.Add(b); err == nil {
		t.Fatal("expected error mixing spaces")
	}
}

func TestSpanWorkerShares(t *testing.T) {
	sp := NewSpace("b")
	// Worker 1 of 2: [X/2, X].
	iv, err := Span(sp, "b", 0.5, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := iv.Concretize([]float64{128})
	if lo != 64 || hi != 128 {
		t.Fatalf("worker1 share = [%g,%g], want [64,128]", lo, hi)
	}
}

func TestIsWholeAndDepends(t *testing.T) {
	sp := NewSpace("i", "j")
	i := mustVar(t, sp, "i")
	if !i.IsWhole(0) {
		t.Error("fresh variable must be whole over its own symbol")
	}
	if i.IsWhole(1) {
		t.Error("variable i is not whole over j")
	}
	if !i.DependsOn(0) || i.DependsOn(1) {
		t.Error("dependence bookkeeping wrong")
	}
	if got := i.Symbols(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Symbols = %v", got)
	}
}

func TestAsConst(t *testing.T) {
	sp := NewSpace("x")
	if v, ok := Const(sp, 7).AsConst(); !ok || v != 7 {
		t.Fatalf("AsConst = %v,%v", v, ok)
	}
	x := mustVar(t, sp, "x")
	if _, ok := x.AsConst(); ok {
		t.Fatal("variable should not be const")
	}
}

func TestUnknownSymbol(t *testing.T) {
	sp := NewSpace("x")
	if _, err := Variable(sp, "nope"); err == nil {
		t.Fatal("expected unknown-symbol error")
	}
	if _, err := Span(sp, "nope", 0, 1, 0, 0); err == nil {
		t.Fatal("expected unknown-symbol error for Span")
	}
}

func TestConcretizeArity(t *testing.T) {
	sp := NewSpace("x", "y")
	x := mustVar(t, sp, "x")
	if _, _, err := x.Concretize([]float64{1}); err == nil {
		t.Fatal("expected arity error")
	}
}

// Property: Add is commutative and MulConst distributes over Add, checked on
// concretized endpoints.
func TestQuickAffineLaws(t *testing.T) {
	sp := NewSpace("a", "b")
	a := mustVar(t, sp, "a")
	b := mustVar(t, sp, "b")
	f := func(ka, kb float64, ea, eb uint16) bool {
		if math.IsNaN(ka) || math.IsNaN(kb) || math.IsInf(ka, 0) || math.IsInf(kb, 0) {
			return true
		}
		ka = math.Mod(ka, 1e3)
		kb = math.Mod(kb, 1e3)
		x := a.MulConst(ka)
		y := b.MulConst(kb)
		xy, err1 := x.Add(y)
		yx, err2 := y.Add(x)
		if err1 != nil || err2 != nil {
			return false
		}
		ext := []float64{float64(ea%512) + 1, float64(eb%512) + 1}
		lo1, hi1, _ := xy.Concretize(ext)
		lo2, hi2, _ := yx.Concretize(ext)
		if lo1 != lo2 || hi1 != hi2 {
			return false
		}
		// k·(x+y) == k·x + k·y on endpoints (k ≥ 0 to avoid swap order
		// differences interacting with the lo-clamp).
		k := math.Abs(ka)
		lhs := xy.MulConst(k)
		rhsA := x.MulConst(k)
		rhsB := y.MulConst(k)
		rhs, err := rhsA.Add(rhsB)
		if err != nil {
			return false
		}
		llo, lhi, _ := lhs.Concretize(ext)
		rlo, rhi, _ := rhs.Concretize(ext)
		return closeEnough(llo, rlo) && closeEnough(lhi, rhi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func TestString(t *testing.T) {
	sp := NewSpace("x")
	x := mustVar(t, sp, "x")
	if got := x.AddConst(2).String(); got == "" {
		t.Fatal("String should render something")
	}
	if got := Const(sp, 0).String(); got != "[0, 0]" {
		t.Fatalf("zero const renders %q", got)
	}
}
