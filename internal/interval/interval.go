// Package interval implements the symbolic interval analysis of Tofu
// (EuroSys'19, Sec 4.2). Intervals live in an abstract domain where both
// endpoints are affine functions of the symbolic upper bounds X1..Xn of the
// operator's index variables:
//
//	I = [Σ li·Xi + cl, Σ ui·Xi + cu]
//
// The paper's Figure 4 defines the permitted arithmetic: adding/subtracting
// constants and intervals, and scaling by constants. Products or comparisons
// of two intervals are non-affine and rejected with ErrNonAffine, mirroring
// the prototype's behaviour ("we did not encounter any such non-affine
// operations among MXNet operators").
//
//tofu:searchpath reachable from dp.Solve / recursive.Partition; nodeterm enforces determinism
package interval

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrNonAffine is returned when an operation would leave the affine domain.
var ErrNonAffine = errors.New("interval: non-affine operation on symbolic intervals")

// Space names the symbolic dimensions an interval may reference. All
// intervals combined by arithmetic must share the same Space.
type Space struct {
	names []string
	index map[string]int
}

// NewSpace creates a space over the given symbolic extent names (e.g. the
// output axes "b", "co", "x" and the reduction axes "ci", "dx" of conv1d).
func NewSpace(names ...string) *Space {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		if _, dup := idx[n]; dup {
			panic(fmt.Sprintf("interval: duplicate symbol %q", n))
		}
		idx[n] = i
	}
	return &Space{names: append([]string(nil), names...), index: idx}
}

// Size returns the number of symbols in the space.
func (s *Space) Size() int { return len(s.names) }

// Names returns the symbol names in index order.
func (s *Space) Names() []string { return append([]string(nil), s.names...) }

// IndexOf returns the position of a symbol name, or -1.
func (s *Space) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Interval is an affine symbolic interval over a Space. Lo and Hi hold the
// per-symbol coefficients of the lower and upper endpoints; CLo and CHi the
// constant offsets. The paper's representation ⟨l1..ln,u1..un,c⟩ is the
// special case CLo == CHi.
type Interval struct {
	space    *Space
	Lo, Hi   []float64
	CLo, CHi float64
}

// Zero returns the degenerate interval [0, 0].
func Zero(sp *Space) Interval {
	return Interval{space: sp, Lo: make([]float64, sp.Size()), Hi: make([]float64, sp.Size())}
}

// Const returns the degenerate interval [c, c].
func Const(sp *Space, c float64) Interval {
	iv := Zero(sp)
	iv.CLo, iv.CHi = c, c
	return iv
}

// Variable returns the initial interval of index variable name: [0, X_name].
// This is the paper's ZV[u_i = 1] initialisation.
func Variable(sp *Space, name string) (Interval, error) {
	i := sp.IndexOf(name)
	if i < 0 {
		return Interval{}, fmt.Errorf("interval: unknown symbol %q", name)
	}
	iv := Zero(sp)
	iv.Hi[i] = 1
	return iv, nil
}

// Span returns the interval [lo·X_name + clo, hi·X_name + chi]; used to seed
// a partition analysis run (e.g. worker 1 of 2 gets [X/2, X]).
func Span(sp *Space, name string, lo, hi, clo, chi float64) (Interval, error) {
	i := sp.IndexOf(name)
	if i < 0 {
		return Interval{}, fmt.Errorf("interval: unknown symbol %q", name)
	}
	iv := Zero(sp)
	iv.Lo[i] = lo
	iv.Hi[i] = hi
	iv.CLo, iv.CHi = clo, chi
	return iv, nil
}

// Space returns the symbol space the interval is defined over.
func (iv Interval) Space() *Space { return iv.space }

func (iv Interval) clone() Interval {
	out := iv
	out.Lo = append([]float64(nil), iv.Lo...)
	out.Hi = append([]float64(nil), iv.Hi...)
	return out
}

// AddConst returns iv + k (Figure 4, row 1).
func (iv Interval) AddConst(k float64) Interval {
	out := iv.clone()
	out.CLo += k
	out.CHi += k
	return out
}

// MulConst returns iv × k (Figure 4, row 2). Negative k swaps the endpoints.
func (iv Interval) MulConst(k float64) Interval {
	out := iv.clone()
	for i := range out.Lo {
		out.Lo[i] *= k
		out.Hi[i] *= k
	}
	out.CLo *= k
	out.CHi *= k
	if k < 0 {
		out.Lo, out.Hi = out.Hi, out.Lo
		out.CLo, out.CHi = out.CHi, out.CLo
	}
	return out
}

// DivConst returns iv / k (Figure 4, row 3).
func (iv Interval) DivConst(k float64) (Interval, error) {
	if k == 0 {
		return Interval{}, errors.New("interval: division by zero")
	}
	return iv.MulConst(1 / k), nil
}

// Add returns iv + o (Figure 4, row 4).
func (iv Interval) Add(o Interval) (Interval, error) {
	if err := iv.compatible(o); err != nil {
		return Interval{}, err
	}
	out := iv.clone()
	for i := range out.Lo {
		out.Lo[i] += o.Lo[i]
		out.Hi[i] += o.Hi[i]
	}
	out.CLo += o.CLo
	out.CHi += o.CHi
	return out, nil
}

// Sub returns iv - o (Figure 4, row 4 with minus: [lo-hi', hi-lo']).
func (iv Interval) Sub(o Interval) (Interval, error) {
	if err := iv.compatible(o); err != nil {
		return Interval{}, err
	}
	out := iv.clone()
	for i := range out.Lo {
		out.Lo[i] -= o.Hi[i]
		out.Hi[i] -= o.Lo[i]
	}
	out.CLo -= o.CHi
	out.CHi -= o.CLo
	return out, nil
}

// Mul of two non-degenerate intervals leaves the affine domain. It succeeds
// only when one side is a constant (degenerate) interval.
func (iv Interval) Mul(o Interval) (Interval, error) {
	if k, ok := o.AsConst(); ok {
		return iv.MulConst(k), nil
	}
	if k, ok := iv.AsConst(); ok {
		return o.MulConst(k), nil
	}
	return Interval{}, ErrNonAffine
}

// AsConst reports whether the interval is the degenerate constant [c, c]
// with no symbolic component, returning c.
func (iv Interval) AsConst() (float64, bool) {
	for i := range iv.Lo {
		if iv.Lo[i] != 0 || iv.Hi[i] != 0 {
			return 0, false
		}
	}
	if iv.CLo != iv.CHi {
		return 0, false
	}
	return iv.CLo, true
}

// IsWhole reports whether the interval is exactly [0, X_sym] for the single
// symbol sym (all other coefficients zero): the worker needs the full extent.
func (iv Interval) IsWhole(sym int) bool {
	for i := range iv.Lo {
		if iv.Lo[i] != 0 {
			return false
		}
		want := 0.0
		if i == sym {
			want = 1.0
		}
		if iv.Hi[i] != want {
			return false
		}
	}
	return iv.CLo == 0 && iv.CHi == 0
}

// Coeff returns (lo, hi) coefficients of symbol i.
func (iv Interval) Coeff(i int) (lo, hi float64) { return iv.Lo[i], iv.Hi[i] }

// DependsOn reports whether either endpoint references symbol i.
func (iv Interval) DependsOn(i int) bool { return iv.Lo[i] != 0 || iv.Hi[i] != 0 }

// Symbols returns the indices of all symbols the interval depends on.
func (iv Interval) Symbols() []int {
	var out []int
	for i := range iv.Lo {
		if iv.DependsOn(i) {
			out = append(out, i)
		}
	}
	return out
}

// Concretize evaluates the endpoints with concrete extents per symbol. The
// result clamps the lower end at 0 (regions never start before the tensor).
func (iv Interval) Concretize(extents []float64) (lo, hi float64, err error) {
	if len(extents) != len(iv.Lo) {
		return 0, 0, fmt.Errorf("interval: got %d extents for %d symbols", len(extents), len(iv.Lo))
	}
	lo, hi = iv.CLo, iv.CHi
	for i, x := range extents {
		lo += iv.Lo[i] * x
		hi += iv.Hi[i] * x
	}
	lo = math.Max(lo, 0)
	return lo, hi, nil
}

func (iv Interval) compatible(o Interval) error {
	if iv.space != o.space {
		return errors.New("interval: mixing intervals from different spaces")
	}
	return nil
}

func (iv Interval) String() string {
	var lo, hi strings.Builder
	writeAffine(&lo, iv.space, iv.Lo, iv.CLo)
	writeAffine(&hi, iv.space, iv.Hi, iv.CHi)
	return "[" + lo.String() + ", " + hi.String() + "]"
}

func writeAffine(b *strings.Builder, sp *Space, coeffs []float64, c float64) {
	first := true
	for i, k := range coeffs {
		if k == 0 {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		first = false
		name := fmt.Sprintf("X%d", i)
		if sp != nil && i < len(sp.names) {
			name = sp.names[i]
		}
		if k == 1 {
			b.WriteString(name)
		} else {
			fmt.Fprintf(b, "%g·%s", k, name)
		}
	}
	if first || c != 0 {
		if !first {
			b.WriteString(" + ")
		}
		fmt.Fprintf(b, "%g", c)
	}
}
