// Package faultfs is the fault-injection seam under the persistent plan
// store: an FS interface mirroring exactly the filesystem calls the store
// makes, an OS passthrough, and an Injector that wraps any FS with
// deterministic, rule-driven faults — read errors, corrupted bytes, short
// writes, added latency — selected by operation, path pattern and call
// count. Chaos tests (and the tofu-serve -faultfs flag) use it to prove the
// serving stack degrades to recomputes, never to 500s, when the disk
// misbehaves.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error every "error" and "short" rule returns; tests
// assert on it to distinguish injected faults from real ones.
var ErrInjected = errors.New("faultfs: injected fault")

// File is the write handle the store's temp-file path needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the store consumes. The method set is
// deliberately the store's exact call profile — nothing speculative.
type FS interface {
	MkdirAll(dir string, perm fs.FileMode) error
	ReadFile(path string) ([]byte, error)
	// Create opens path for exclusive creation (O_WRONLY|O_CREATE|O_EXCL).
	Create(path string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	Stat(path string) (fs.FileInfo, error)
	Glob(pattern string) ([]string, error)
	// SyncDir fsyncs a directory (the rename-durability barrier).
	SyncDir(dir string) error
}

// OS is the passthrough FS every production store uses.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }
func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
}
func (osFS) Rename(oldPath, newPath string) error  { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error              { return os.Remove(path) }
func (osFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }
func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Op names the FS operation a rule targets.
type Op string

const (
	OpRead   Op = "read"
	OpWrite  Op = "write" // fires inside Create'd files' Write calls
	OpRename Op = "rename"
	OpRemove Op = "remove"
	OpStat   Op = "stat"
	OpGlob   Op = "glob"
	OpSync   Op = "sync" // file Sync and SyncDir
	OpMkdir  Op = "mkdir"
)

// Mode is what a matched rule does.
type Mode string

const (
	// ModeError fails the operation with ErrInjected.
	ModeError Mode = "error"
	// ModeCorrupt flips a byte: reads return corrupted data, writes land
	// corrupted bytes on disk (the next verified read quarantines them).
	ModeCorrupt Mode = "corrupt"
	// ModeShort writes only half the buffer, then fails with ErrInjected —
	// a torn write the caller sees (only meaningful on OpWrite).
	ModeShort Mode = "short"
	// ModeLatency sleeps Rule.Latency, then lets the operation through.
	ModeLatency Mode = "latency"
)

// Rule is one injected fault: the first Count (0 = unlimited) matching
// calls after skipping After of them misbehave per Mode. Pattern is a
// filepath.Match glob tested against the path's base name.
type Rule struct {
	Op      Op
	Pattern string
	Mode    Mode
	Count   int
	After   int
	Latency time.Duration

	mu    sync.Mutex
	seen  int
	fired int
}

// match consumes one call against the rule's counters and reports whether
// the fault fires for it.
func (r *Rule) match(op Op, path string) bool {
	if r.Op != op {
		return false
	}
	if ok, err := filepath.Match(r.Pattern, filepath.Base(path)); err != nil || !ok {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if r.seen <= r.After {
		return false
	}
	if r.Count > 0 && r.fired >= r.Count {
		return false
	}
	r.fired++
	return true
}

// Injector wraps an FS with fault rules. The zero value is unusable; build
// one with New (or ParseSpec) and hand it to store.Options.FS.
type Injector struct {
	inner FS
	rules []*Rule
}

// New wraps inner (nil = the real OS) with rules.
func New(inner FS, rules ...*Rule) *Injector {
	if inner == nil {
		inner = OS
	}
	return &Injector{inner: inner, rules: rules}
}

// Fired reports how many times each rule has fired, in rule order — the
// assertion hook for chaos tests.
func (i *Injector) Fired() []int {
	out := make([]int, len(i.rules))
	for n, r := range i.rules {
		r.mu.Lock()
		out[n] = r.fired
		r.mu.Unlock()
	}
	return out
}

// fault finds the first firing rule for a call, sleeping for latency rules.
// The returned mode is "" when the call should pass through untouched.
func (i *Injector) fault(op Op, path string) Mode {
	for _, r := range i.rules {
		if !r.match(op, path) {
			continue
		}
		if r.Mode == ModeLatency {
			time.Sleep(r.Latency)
			continue // latency delays, it does not consume the call
		}
		return r.Mode
	}
	return ""
}

func corruptCopy(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if len(out) > 0 {
		// Flip a byte in the middle: past any header magic, inside the
		// checksummed region, so verification must catch it.
		out[len(out)/2] ^= 0xff
	}
	return out
}

func (i *Injector) MkdirAll(dir string, perm fs.FileMode) error {
	if m := i.fault(OpMkdir, dir); m != "" {
		return fmt.Errorf("%w: mkdir %s", ErrInjected, dir)
	}
	return i.inner.MkdirAll(dir, perm)
}

func (i *Injector) ReadFile(path string) ([]byte, error) {
	switch i.fault(OpRead, path) {
	case ModeError:
		return nil, fmt.Errorf("%w: read %s", ErrInjected, filepath.Base(path))
	case ModeCorrupt:
		data, err := i.inner.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return corruptCopy(data), nil
	}
	return i.inner.ReadFile(path)
}

func (i *Injector) Create(path string) (File, error) {
	f, err := i.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{inj: i, path: path, f: f}, nil
}

func (i *Injector) Rename(oldPath, newPath string) error {
	if m := i.fault(OpRename, newPath); m != "" {
		return fmt.Errorf("%w: rename %s", ErrInjected, filepath.Base(newPath))
	}
	return i.inner.Rename(oldPath, newPath)
}

func (i *Injector) Remove(path string) error {
	if m := i.fault(OpRemove, path); m != "" {
		return fmt.Errorf("%w: remove %s", ErrInjected, filepath.Base(path))
	}
	return i.inner.Remove(path)
}

func (i *Injector) Stat(path string) (fs.FileInfo, error) {
	if m := i.fault(OpStat, path); m != "" {
		return nil, fmt.Errorf("%w: stat %s", ErrInjected, filepath.Base(path))
	}
	return i.inner.Stat(path)
}

func (i *Injector) Glob(pattern string) ([]string, error) {
	if m := i.fault(OpGlob, pattern); m != "" {
		return nil, fmt.Errorf("%w: glob %s", ErrInjected, pattern)
	}
	return i.inner.Glob(pattern)
}

func (i *Injector) SyncDir(dir string) error {
	if m := i.fault(OpSync, dir); m != "" {
		return fmt.Errorf("%w: syncdir %s", ErrInjected, dir)
	}
	return i.inner.SyncDir(dir)
}

// faultFile applies write-path rules to one created file.
type faultFile struct {
	inj  *Injector
	path string
	f    File
}

func (w *faultFile) Write(p []byte) (int, error) {
	switch w.inj.fault(OpWrite, w.path) {
	case ModeError:
		return 0, fmt.Errorf("%w: write %s", ErrInjected, filepath.Base(w.path))
	case ModeShort:
		n, err := w.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: short write %s (%d of %d bytes)", ErrInjected, filepath.Base(w.path), n, len(p))
	case ModeCorrupt:
		return w.f.Write(corruptCopy(p))
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	if m := w.inj.fault(OpSync, w.path); m != "" {
		return fmt.Errorf("%w: sync %s", ErrInjected, filepath.Base(w.path))
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error { return w.f.Close() }

// ParseSpec builds an Injector over the real OS from a flag-friendly spec:
// semicolon-separated rules of the form
//
//	op:pattern:mode[:count[:after]]
//	op:pattern:latency:<duration>[:count[:after]]
//
// e.g. "read:*.plan:corrupt:3" (corrupt the first three entry reads) or
// "write:*.tmp.*:latency:50ms" (slow every temp-file write by 50ms). An
// empty spec returns nil — no injection, the store runs on the real OS.
func ParseSpec(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []*Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("faultfs: rule %q: want op:pattern:mode[...]", part)
		}
		r := &Rule{Op: Op(fields[0]), Pattern: fields[1], Mode: Mode(fields[2])}
		switch r.Op {
		case OpRead, OpWrite, OpRename, OpRemove, OpStat, OpGlob, OpSync, OpMkdir:
		default:
			return nil, fmt.Errorf("faultfs: rule %q: unknown op %q", part, fields[0])
		}
		rest := fields[3:]
		switch r.Mode {
		case ModeError, ModeCorrupt, ModeShort:
		case ModeLatency:
			if len(rest) == 0 {
				return nil, fmt.Errorf("faultfs: rule %q: latency mode needs a duration", part)
			}
			d, err := time.ParseDuration(rest[0])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultfs: rule %q: bad latency %q", part, rest[0])
			}
			r.Latency = d
			rest = rest[1:]
		default:
			return nil, fmt.Errorf("faultfs: rule %q: unknown mode %q", part, fields[2])
		}
		if len(rest) > 0 {
			n, err := strconv.Atoi(rest[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultfs: rule %q: bad count %q", part, rest[0])
			}
			r.Count = n
			rest = rest[1:]
		}
		if len(rest) > 0 {
			n, err := strconv.Atoi(rest[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultfs: rule %q: bad after-skip %q", part, rest[0])
			}
			r.After = n
			rest = rest[1:]
		}
		if len(rest) > 0 {
			return nil, fmt.Errorf("faultfs: rule %q: trailing fields %v", part, rest)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return New(OS, rules...), nil
}
