package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRuleCountAndAfter(t *testing.T) {
	r := &Rule{Op: OpRead, Pattern: "*.plan", Mode: ModeError, Count: 2, After: 1}
	// Call 1 is skipped (After), 2 and 3 fire (Count), 4+ pass.
	want := []bool{false, true, true, false, false}
	for i, w := range want {
		if got := r.match(OpRead, "/store/abc.plan"); got != w {
			t.Errorf("call %d: fired=%v, want %v", i+1, got, w)
		}
	}
	// Wrong op or non-matching base name never consumes the counters.
	if r.match(OpWrite, "/store/abc.plan") || r.match(OpRead, "/store/abc.tmp") {
		t.Error("rule fired for a non-matching call")
	}
}

func TestInjectorReadModes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.plan")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}

	inj := New(OS, &Rule{Op: OpRead, Pattern: "*.plan", Mode: ModeError, Count: 1})
	if _, err := inj.ReadFile(path); !errors.Is(err, ErrInjected) {
		t.Fatalf("error rule: got %v, want ErrInjected", err)
	}
	if got, err := inj.ReadFile(path); err != nil || string(got) != "payload" {
		t.Fatalf("after count exhausted: %q, %v", got, err)
	}
	if fired := inj.Fired(); fired[0] != 1 {
		t.Errorf("Fired = %v, want [1]", fired)
	}

	inj = New(OS, &Rule{Op: OpRead, Pattern: "*.plan", Mode: ModeCorrupt, Count: 1})
	got, err := inj.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "payload" {
		t.Fatal("corrupt rule returned pristine bytes")
	}
	if len(got) != len("payload") {
		t.Fatalf("corrupt rule changed length: %d", len(got))
	}
	// The file itself is untouched: corruption happens in the returned copy.
	if disk, _ := os.ReadFile(path); string(disk) != "payload" {
		t.Fatal("corrupt read mutated the backing file")
	}
}

func TestInjectorWriteModes(t *testing.T) {
	dir := t.TempDir()

	inj := New(OS, &Rule{Op: OpWrite, Pattern: "short.*", Mode: ModeShort})
	f, err := inj.Create(filepath.Join(dir, "short.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error = %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	f.Close()

	inj = New(OS, &Rule{Op: OpWrite, Pattern: "corrupt.*", Mode: ModeCorrupt})
	path := filepath.Join(dir, "corrupt.tmp")
	f, err = inj.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) == "0123456789" {
		t.Fatal("corrupt write landed pristine bytes")
	}
}

func TestInjectorLatencyPassesThrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.plan")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := New(OS, &Rule{Op: OpRead, Pattern: "*.plan", Mode: ModeLatency, Latency: 10 * time.Millisecond})
	t0 := time.Now()
	got, err := inj.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("latency rule altered the read: %q, %v", got, err)
	}
	if time.Since(t0) < 10*time.Millisecond {
		t.Error("latency rule did not delay")
	}
}

func TestParseSpec(t *testing.T) {
	if inj, err := ParseSpec(""); inj != nil || err != nil {
		t.Fatalf("empty spec: %v, %v; want nil, nil", inj, err)
	}
	inj, err := ParseSpec("read:*.plan:corrupt:3; write:*.tmp.*:latency:50ms:2:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(inj.rules))
	}
	r := inj.rules[0]
	if r.Op != OpRead || r.Pattern != "*.plan" || r.Mode != ModeCorrupt || r.Count != 3 || r.After != 0 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = inj.rules[1]
	if r.Op != OpWrite || r.Mode != ModeLatency || r.Latency != 50*time.Millisecond || r.Count != 2 || r.After != 1 {
		t.Errorf("rule 1 = %+v", r)
	}

	for _, bad := range []string{
		"read:*.plan",                  // too few fields
		"chmod:*.plan:error",           // unknown op
		"read:*.plan:explode",          // unknown mode
		"read:*.plan:latency",          // latency without duration
		"read:*.plan:latency:-1s",      // negative latency
		"read:*.plan:error:x",          // bad count
		"read:*.plan:error:1:y",        // bad after
		"read:*.plan:error:1:2:junk",   // trailing fields
		"read:*.plan:corrupt:3:0:more", // trailing fields after full form
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed rule", bad)
		}
	}
}
