package dp

import (
	"math"
	"math/rand"
	"testing"

	"tofu/internal/models"
	"tofu/internal/partition"
	"tofu/internal/shape"
)

// TestTablesMatchDirectPricing is the differential test for the dense slot
// tables: on randomized assignments over small graphs of every benchmark
// family, the table lookup must agree exactly with the legacy per-call
// pricing (partition.Priced.Best on the assignment's cuts).
func TestTablesMatchDirectPricing(t *testing.T) {
	builds := []struct {
		name  string
		build func() (*models.Model, error)
	}{
		{"mlp", func() (*models.Model, error) { return models.MLP(2, 64, 16) }},
		{"rnn", func() (*models.Model, error) { return models.RNN(2, 128, 16, 4) }},
		{"wresnet", func() (*models.Model, error) { return models.WResNet(50, 2, 8) }},
	}
	rng := rand.New(rand.NewSource(42))
	for _, b := range builds {
		m, err := b.build()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int64{2, 4, 8} {
			p := problemFor(t, m, k)
			sl, err := prepareSlotEvals(p)
			if err != nil {
				t.Fatalf("%s k=%d: %v", b.name, k, err)
			}
			for trial := 0; trial < 16; trial++ {
				// Random assignment over each variable's alphabet.
				assign := map[int]int{}
				for _, v := range p.Coarse.Vars {
					if v.First < 0 {
						continue
					}
					dims := sl.alphas[v.ID].dims
					assign[v.ID] = dims[rng.Intn(len(dims))]
				}
				for _, ev := range sl.ordered {
					si, cost, err := ev.best(assign)
					if err != nil {
						t.Fatalf("%s k=%d: %v", b.name, k, err)
					}
					// Legacy per-call pricing: cuts straight from the
					// assignment, best strategy from the restricted
					// enumeration, multiplied by the slot multiplicity.
					inCuts := make([]partition.Cut, len(ev.inVars))
					for i, v := range ev.inVars {
						inCuts[i] = partition.Cut{Dim: assign[v.ID]}
					}
					wantSi, wantCost := ev.priced.Best(inCuts, partition.Cut{Dim: assign[ev.outVar.ID]})
					if si != wantSi || cost != wantCost*ev.mult {
						t.Fatalf("%s k=%d slot %v assign %v: table (%d, %g) != direct (%d, %g)",
							b.name, k, ev.slot.Rep(), assign, si, cost, wantSi, wantCost*ev.mult)
					}
				}
				// Evaluate's total must equal the direct per-slot sum.
				res, err := Evaluate(p, assign)
				if err != nil {
					t.Fatal(err)
				}
				sum := 0.0
				for _, ev := range sl.ordered {
					inCuts := make([]partition.Cut, len(ev.inVars))
					for i, v := range ev.inVars {
						inCuts[i] = partition.Cut{Dim: assign[v.ID]}
					}
					_, c := ev.priced.Best(inCuts, partition.Cut{Dim: assign[ev.outVar.ID]})
					sum += c * ev.mult
				}
				if math.Abs(res.CommBytes-sum) > 1e-9*(1+sum) {
					t.Fatalf("%s k=%d: Evaluate %g != direct sum %g", b.name, k, res.CommBytes, sum)
				}
			}
		}
	}
}

// TestEvalReuseMatchesFresh drives two consecutive equal-factor steps the
// way the recursive driver does — solve, divide shapes, solve again — and
// checks the reused evaluators produce exactly the fresh ones' result.
func TestEvalReuseMatchesFresh(t *testing.T) {
	m, err := models.RNN(2, 512, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	step := func(reuse *EvalReuse, shapes map[int]shape.Shape) *Result {
		t.Helper()
		p := problemFor(t, m, 2)
		p.Shapes = shapes
		p.Reuse = reuse
		res, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	divide := func(shapes map[int]shape.Shape, res *Result) map[int]shape.Shape {
		t.Helper()
		next := make(map[int]shape.Shape, len(shapes))
		for tid, s := range shapes {
			next[tid] = s.Clone()
		}
		for tid, dim := range res.TensorCut {
			if dim < 0 {
				continue
			}
			if err := next[tid].SplitInPlace(dim, 2); err != nil {
				t.Fatal(err)
			}
		}
		return next
	}
	orig := func() map[int]shape.Shape {
		shapes := make(map[int]shape.Shape, len(m.G.Tensors))
		for _, ten := range m.G.Tensors {
			shapes[ten.ID] = ten.Shape.Clone()
		}
		return shapes
	}

	reuse := &EvalReuse{}
	r1 := step(reuse, orig())
	divided := divide(orig(), r1)
	got := step(reuse, divided)

	fresh1 := step(nil, orig())
	want := step(nil, divide(orig(), fresh1))

	if got.CommBytes != want.CommBytes || got.States != want.States || got.Configs != want.Configs {
		t.Fatalf("reused step: (cost, states, configs) = (%g, %d, %d), fresh = (%g, %d, %d)",
			got.CommBytes, got.States, got.Configs, want.CommBytes, want.States, want.Configs)
	}
	for id, dim := range want.VarCut {
		if got.VarCut[id] != dim {
			t.Fatalf("reused step cut var %d along %d, fresh chose %d", id, got.VarCut[id], dim)
		}
	}
	for nid := range want.OpStrategy {
		if got.OpStrategy[nid] != want.OpStrategy[nid] {
			t.Fatalf("node %d: reused strategy %v != fresh %v", nid, got.OpStrategy[nid], want.OpStrategy[nid])
		}
	}
}
