package dp

import (
	"fmt"
	"math"
	"sync"

	"tofu/internal/coarsen"
	"tofu/internal/partition"
	"tofu/internal/shape"
)

// tableLimit bounds the per-slot dense cost tables; slots whose touched
// variables span a larger cross-product (which no benchmark model comes
// near) price lazily through an integer-keyed memo instead.
const tableLimit = 1 << 16

// slotEval prices one slot under any variable assignment. The interval
// analyses run once (cached across steps in PriceCache); on top of them the
// evaluator precomputes a dense cost table indexed by the cross-product of
// its touched variables' alphabet digits, so the DP sweep prices a slot
// with one multiply-add per touched variable and a pair of array loads —
// no locks, no maps, no error paths.
type slotEval struct {
	slot   *coarsen.Slot
	priced *partition.Priced
	inVars []*coarsen.Var
	outVar *coarsen.Var
	mult   float64

	// tvars lists the distinct touched variables ascending by ID; tstride
	// their mixed-radix weights over alphabet digits (tvars[0] most
	// significant); talphas their alphabets. inPos/outPos map the slot's
	// input positions and output to tvars indices.
	tvars   []*coarsen.Var
	talphas []*varAlpha
	tstride []int
	inPos   []int
	outPos  int

	// costT/bestT are the dense tables: cost (pre-multiplied by the slot's
	// timestep multiplicity) and best strategy index per digit
	// cross-product. nil when the cross-product exceeds tableLimit.
	costT []float64
	bestT []int32
	// minCost is the cheapest entry of costT — the slot's contribution to
	// LowerBound. Slots priced lazily (cross-product beyond tableLimit)
	// leave it 0, which keeps the bound admissible.
	minCost float64

	// Lazy fallback for oversized cross-products: an integer-keyed memo
	// guarded for the parallel sweep.
	mu   sync.Mutex
	memo map[int]slotBest
}

type slotBest struct {
	si   int32
	cost float64
}

func newSlotEval(p *Problem, s *coarsen.Slot, alphas []varAlpha) (*slotEval, error) {
	rep := s.Rep()
	ev := &slotEval{slot: s, mult: float64(len(s.Ops))}

	curIn := make([]shape.Shape, len(rep.Inputs))
	ev.inVars = make([]*coarsen.Var, len(rep.Inputs))
	for i, in := range rep.Inputs {
		curIn[i] = p.Shapes[in.ID]
		ev.inVars[i] = p.Coarse.VarOf(in)
	}
	ev.outVar = p.Coarse.VarOf(rep.Output)
	curOut := p.Shapes[rep.Output.ID]

	desc := s.Desc
	if desc == nil {
		var err error
		desc, err = p.Coarse.G.Describe(rep)
		if err != nil {
			return nil, err
		}
	}
	// Price at ORIGINAL shapes (see Problem); gate applicability on the
	// CURRENT shapes, where earlier steps may have exhausted a dimension.
	// The full pricing (every strategy applicable at original shapes) is
	// step-invariant, so it is memoized in the cache — the Spec only
	// materializes on a miss; the per-step strategy filter and
	// current-shape gate become a cheap Restrict view.
	full, err := p.Cache.priced(slotKey(rep, p.K, p.DType), func() (*partition.Priced, error) {
		origIn := make([]shape.Shape, len(rep.Inputs))
		for i, in := range rep.Inputs {
			origIn[i] = in.Shape
		}
		return partition.Price(&partition.Spec{
			Desc:     desc,
			InShapes: origIn,
			OutShape: rep.Output.Shape,
			DType:    p.DType,
		}, p.K, nil)
	})
	if err != nil {
		return nil, fmt.Errorf("dp: pricing %v: %w", rep, err)
	}
	ev.priced, err = full.Restrict(func(st partition.Strategy) bool {
		if p.StrategyFilter != nil && !p.StrategyFilter(st) {
			return false
		}
		if st.Kind == partition.SplitOutput {
			return curOut.CanSplit(st.OutDim, p.K)
		}
		ext, err := partition.ReduceExtent(desc, curIn, st.Axis)
		if err != nil {
			return false
		}
		return ext >= p.K && ext%p.K == 0
	})
	if err != nil {
		return nil, fmt.Errorf("dp: pricing %v: %w", rep, err)
	}
	ev.buildTable(alphas)
	return ev, nil
}

// buildTable lays out the touched-variable cross-product and fills the
// dense cost/strategy tables.
func (ev *slotEval) buildTable(alphas []varAlpha) {
	// Distinct touched vars (inVars/outVar may repeat), kept ascending by
	// ID — the per-slot sets are tiny, so linear scans beat maps.
	tvars := make([]*coarsen.Var, 0, len(ev.inVars)+1)
	add := func(v *coarsen.Var) {
		for _, t := range tvars {
			if t == v {
				return
			}
		}
		i := len(tvars)
		tvars = append(tvars, nil)
		for i > 0 && tvars[i-1].ID > v.ID {
			tvars[i] = tvars[i-1]
			i--
		}
		tvars[i] = v
	}
	for _, v := range ev.inVars {
		add(v)
	}
	add(ev.outVar)
	ev.tvars = tvars
	pos := func(v *coarsen.Var) int {
		for j, t := range tvars {
			if t == v {
				return j
			}
		}
		return -1
	}
	ev.inPos = make([]int, len(ev.inVars))
	for i, v := range ev.inVars {
		ev.inPos[i] = pos(v)
	}
	ev.outPos = pos(ev.outVar)

	ev.talphas = make([]*varAlpha, len(ev.tvars))
	ev.tstride = make([]int, len(ev.tvars))
	size := 1
	for j := len(ev.tvars) - 1; j >= 0; j-- {
		ev.talphas[j] = &alphas[ev.tvars[j].ID]
		ev.tstride[j] = size
		size *= len(ev.talphas[j].dims)
	}
	if size > tableLimit {
		ev.memo = map[int]slotBest{}
		return
	}
	ev.costT = make([]float64, size)
	ev.bestT = make([]int32, size)
	ev.minCost = math.Inf(1)
	inCuts := make([]partition.Cut, len(ev.inVars))
	for ti := 0; ti < size; ti++ {
		si, cost := ev.price(ti, inCuts)
		ev.costT[ti] = cost
		ev.bestT[ti] = si
		if cost < ev.minCost {
			ev.minCost = cost
		}
	}
}

// reusable reports whether this evaluator — built at an earlier recursive
// step with the same K — is still exact at the current step: every touched
// variable's alphabet is unchanged and every surviving strategy still
// passes the current-shape gate. Because shapes only shrink and K is
// prime, the gate is monotone (a dropped strategy can never revive), so
// these two checks imply the freshly-built evaluator would be identical.
// See Problem.Reuse.
func (ev *slotEval) reusable(p *Problem, alphas []varAlpha) bool {
	for j, v := range ev.tvars {
		pd := ev.talphas[j].dims
		cd := alphas[v.ID].dims
		if len(pd) != len(cd) {
			return false
		}
		for i := range pd {
			if pd[i] != cd[i] {
				return false
			}
		}
	}
	rep := ev.slot.Rep()
	desc := ev.slot.Desc
	curOut := p.Shapes[rep.Output.ID]
	var curIn []shape.Shape
	for _, st := range ev.priced.Strategies {
		if st.Kind == partition.SplitOutput {
			if !curOut.CanSplit(st.OutDim, p.K) {
				return false
			}
			continue
		}
		if desc == nil {
			return false
		}
		if curIn == nil {
			curIn = make([]shape.Shape, len(rep.Inputs))
			for i, in := range rep.Inputs {
				curIn[i] = p.Shapes[in.ID]
			}
		}
		ext, err := partition.ReduceExtent(desc, curIn, st.Axis)
		if err != nil || ext < p.K || ext%p.K != 0 {
			return false
		}
	}
	return true
}

// price runs the legacy per-call pricing for one digit cross-product index:
// decode the index into per-position cuts and take the cheapest strategy.
// The returned cost is pre-multiplied by the slot multiplicity.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (ev *slotEval) price(ti int, inCuts []partition.Cut) (int32, float64) {
	for i, tp := range ev.inPos {
		a := ev.talphas[tp]
		inCuts[i] = partition.Cut{Dim: a.dims[(ti/ev.tstride[tp])%len(a.dims)]}
	}
	oa := ev.talphas[ev.outPos]
	outCut := partition.Cut{Dim: oa.dims[(ti/ev.tstride[ev.outPos])%len(oa.dims)]}
	si, cost := ev.priced.Best(inCuts, outCut)
	return int32(si), cost * ev.mult
}

// index packs the scratch digit array (indexed by variable ID) into the
// slot's table index.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (ev *slotEval) index(digit []uint8) int {
	ti := 0
	for j, v := range ev.tvars {
		ti += ev.tstride[j] * int(digit[v.ID])
	}
	return ti
}

// costAt prices the slot under the digits — the DP sweep's inner lookup.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (ev *slotEval) costAt(digit []uint8) float64 {
	ti := ev.index(digit)
	if ev.costT != nil {
		return ev.costT[ti]
	}
	_, cost := ev.lazy(ti)
	return cost
}

// lazy is the oversized-slot path: memoized per-index pricing.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (ev *slotEval) lazy(ti int) (int32, float64) {
	ev.mu.Lock()
	b, ok := ev.memo[ti]
	ev.mu.Unlock()
	if !ok {
		inCuts := make([]partition.Cut, len(ev.inVars))
		si, cost := ev.price(ti, inCuts)
		b = slotBest{si: si, cost: cost}
		ev.mu.Lock()
		ev.memo[ti] = b
		ev.mu.Unlock()
	}
	return b.si, b.cost
}

// bestAt returns the cheapest strategy index and (pre-multiplied) cost at a
// table index.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (ev *slotEval) bestAt(ti int) (int32, float64) {
	if ev.costT != nil {
		return ev.bestT[ti], ev.costT[ti]
	}
	return ev.lazy(ti)
}

// indexOf packs a dimension assignment (public map form) into the table
// index, validating that every touched variable is decided along a cuttable
// dimension.
func (ev *slotEval) indexOf(assign map[int]int) (int, error) {
	ti := 0
	for j, v := range ev.tvars {
		d, ok := assign[v.ID]
		if !ok {
			for _, iv := range ev.inVars {
				if iv == v {
					return 0, fmt.Errorf("dp: slot %v references undecided var %v", ev.slot.Rep(), v)
				}
			}
			return 0, fmt.Errorf("dp: slot %v output var %v undecided", ev.slot.Rep(), v)
		}
		a := ev.talphas[j]
		if d < 0 || d >= len(a.digitOf) || a.digitOf[d] < 0 {
			return 0, fmt.Errorf("dp: slot %v: var %v cannot be cut along dim %d at this step",
				ev.slot.Rep(), v, d)
		}
		ti += ev.tstride[j] * int(a.digitOf[d])
	}
	return ti, nil
}

// best returns the cheapest strategy for the slot under a full assignment.
// The cost is pre-multiplied by the slot's timestep multiplicity.
func (ev *slotEval) best(assign map[int]int) (int, float64, error) {
	ti, err := ev.indexOf(assign)
	if err != nil {
		return 0, 0, err
	}
	si, cost := ev.bestAt(ti)
	return int(si), cost, nil
}

// parts itemizes the chosen strategy's communication under an assignment.
func (ev *slotEval) parts(si int, assign map[int]int) (partition.Parts, error) {
	inCuts := make([]partition.Cut, len(ev.inVars))
	for i, v := range ev.inVars {
		d, ok := assign[v.ID]
		if !ok {
			return partition.Parts{}, fmt.Errorf("dp: slot %v references undecided var %v", ev.slot.Rep(), v)
		}
		inCuts[i] = partition.Cut{Dim: d}
	}
	od, ok := assign[ev.outVar.ID]
	if !ok {
		return partition.Parts{}, fmt.Errorf("dp: slot %v output var %v undecided", ev.slot.Rep(), ev.outVar)
	}
	return ev.priced.PartsOf(si, inCuts, partition.Cut{Dim: od}), nil
}
