// Package dp implements the per-step dynamic-programming search over the
// coarsened graph (EuroSys'19 Sec 5.1). It generalizes the chain DP of
// ICML18 [14] to a frontier sweep: groups are processed in the coarsened
// order; the DP state is the cut assignment of every variable live across
// the current boundary. On a chain this is exactly the classic algorithm; on
// WResNet's fork-join residual structure (linear by the paper's
// homeomorphism definition) the frontier simply carries one extra variable.
// Within each group the search brute-forces the member operators' strategy
// choices — the paper's "combinatorial search among all member
// operators/tensors within the group".
//
// The sweep is allocation-free integer arithmetic: states are packed
// mixed-radix numbers over per-variable cut-dim alphabets (state.go), and
// every slot's cost under any assignment comes from a dense table built
// once per step (table.go). See DESIGN.md, "Packed frontier states and
// dense slot tables".
//
//tofu:searchpath reachable from dp.Solve / recursive.Partition; nodeterm enforces determinism
package dp

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"tofu/internal/cancel"
	"tofu/internal/coarsen"
	"tofu/internal/obs"
	"tofu/internal/partition"
	"tofu/internal/shape"
)

// Problem is one invocation of the per-step search: partition every tensor
// along one dimension among K worker groups, minimizing total communication.
//
// Costs are priced at the graph's ORIGINAL shapes. Lemma 1 shows a basic
// plan's cost is Σ α_t·S_t where the α depend only on strategy/cut
// alignment, so at recursive step i (when every tensor is 1/mult of its
// original size) the true cost is the original-shape cost divided by mult —
// the same argmin. Pricing at original shapes keeps the cost function
// exactly linear (Theorem 1's commutativity), while divisibility is checked
// against the current, already-divided shapes.
type Problem struct {
	Coarse *coarsen.Coarse
	K      int64
	// Shapes maps tensor ID to its current shape at this recursive step;
	// it gates which dimensions may still be cut.
	Shapes map[int]shape.Shape
	DType  shape.DType
	// StrategyFilter, if non-nil, restricts the operator strategies the
	// search may use (the ICML18 baseline drops output reduction).
	StrategyFilter func(partition.Strategy) bool
	// MaxStates bounds the DP frontier (0 = exact, unlimited). Graphs with
	// higher cutwidth than the paper's chains/residuals — e.g. attention
	// blocks fanning one tensor into Q/K/V — can explode the exact state
	// space; with a bound, only the cheapest MaxStates states survive each
	// step (beam search: near-optimal in practice, no optimality proof).
	MaxStates int
	// Parallelism is the number of worker goroutines evaluating the
	// frontier sweep's (state × strategy-combination) expansions and the
	// per-slot pricing analyses (0 = runtime.GOMAXPROCS(0), 1 = serial).
	// The merge is deterministic: ties between equal-cost expansions break
	// by canonical sweep order, so the chosen plan is byte-identical for
	// every setting.
	Parallelism int
	// Cache, if non-nil, memoizes priced strategy enumerations across Solve
	// calls — across recursive factor steps and across baseline variants
	// over the same model (see PriceCache).
	Cache *PriceCache
	// Reuse, if non-nil, carries prepared slot evaluators between
	// consecutive Solve calls over the same Coarse (the recursive driver's
	// factor steps). A slot's evaluator — its restricted pricing and dense
	// cost table — is reused when the step's K matches, its touched
	// variables' alphabets are unchanged and every surviving strategy still
	// passes the current-shape gate. That test is sound because shapes only
	// shrink across steps and the factors are prime, so a once-dropped
	// strategy can never become applicable again (K prime dividing ext/m
	// implies K divides ext). Callers must keep Coarse, DType and
	// StrategyFilter fixed across the Solves sharing one Reuse.
	Reuse *EvalReuse
	// Trace, if non-nil, records a "dp.solve" span (with a nested
	// "dp.pricing" span for slot-evaluator preparation) under the given
	// parent. A nil Trace — the default — is a strict no-op: spans never
	// influence the sweep, so plans stay byte-identical either way.
	Trace *obs.Span
	// Cancel, if non-nil, is polled once per group sweep; a tripped token
	// aborts Solve with its reason. The DP has no incumbent to degrade to —
	// a partial frontier is not a plan — so cancellation here is an error
	// the recursive layer above turns into its own best incumbent. A nil
	// token (the default) costs one pointer comparison per group.
	Cancel *cancel.Token
}

// EvalReuse is the cross-step evaluator carrier; see Problem.Reuse.
type EvalReuse struct {
	k   int64
	set *slotSet
}

// parallelism resolves the effective worker count.
func (p *Problem) parallelism() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Result is the chosen basic partition plan for one step.
type Result struct {
	// VarCut maps coarsened-variable ID to the chosen cut dimension.
	VarCut map[int]int
	// TensorCut expands VarCut to every member tensor ID — dense by tensor
	// ID, -1 for uncut tensors.
	TensorCut []int
	// OpStrategy is the chosen partition strategy per node ID (dense); an
	// empty Axis marks nodes without one.
	OpStrategy []partition.Strategy
	// OpComm itemizes each node's communication (fetch vs output bytes,
	// summed over all workers at this step), dense by node ID — the graph
	// generator turns these into MultiFetch and reduce tasks.
	OpComm []partition.Parts
	// CommBytes is δ_i for this basic plan: total communication across all
	// worker groups, priced at the graph's original shapes (see Problem).
	CommBytes float64
	// States is the number of DP states explored (search-effort metric for
	// Table 1).
	States int
	// Configs is the number of (state x choice) combinations evaluated.
	Configs int
}

// maxSweep bounds a single group's (states × combinations) sweep; beyond it
// the search could not complete anyway, and the bound keeps the flattened
// index arithmetic safely inside int64.
const maxSweep = int64(1) << 40

// minParallelSweep is the (states × combinations) size below which a
// group's sweep runs inline instead of fanning out.
const minParallelSweep = 1 << 9

// newResult allocates a Result with dense per-tensor/per-node tables sized
// for the graph.
func newResult(c *coarsen.Coarse) *Result {
	res := &Result{
		VarCut:     make(map[int]int, len(c.Vars)),
		TensorCut:  make([]int, len(c.G.Tensors)),
		OpStrategy: make([]partition.Strategy, len(c.G.Nodes)),
		OpComm:     make([]partition.Parts, len(c.G.Nodes)),
	}
	for i := range res.TensorCut {
		res.TensorCut[i] = -1
	}
	return res
}

// Solve runs the frontier DP.
func Solve(p *Problem) (*Result, error) {
	c := p.Coarse
	if p.K < 2 {
		return nil, fmt.Errorf("dp: K must be >= 2, got %d", p.K)
	}
	sp := p.Trace.Child("dp.solve")
	defer sp.End()
	sp.SetInt("k", p.K)
	sp.SetInt("groups", int64(len(c.Groups)))

	// Per-variable alphabets, slot evaluators and their dense cost tables
	// (fanned out across the worker pool — slots are independent). The
	// pricing span measures that preparation and attributes the
	// price-cache traffic it caused; under parallel sibling solves the
	// shared-cache deltas are approximate, which is fine for display.
	var hits0, misses0 int64
	if sp.Enabled() {
		hits0, misses0 = p.Cache.Stats()
	}
	pricing := sp.Child("dp.pricing")
	sl, err := prepareSlotEvals(p)
	if pricing.Enabled() {
		hits1, misses1 := p.Cache.Stats()
		pricing.SetInt("cache_hits", hits1-hits0)
		pricing.SetInt("cache_misses", misses1-misses0)
	}
	pricing.End()
	if err != nil {
		return nil, err
	}

	// Frontier DP over groups. Each group's (state × strategy-combination)
	// expansion is evaluated by the worker pool; the merge is deterministic
	// (cheapest wins, ties break by canonical sweep order), so the result is
	// byte-identical for every Parallelism setting.
	res := newResult(c)
	fronts := make([]*frontier, len(c.Groups))
	comboLays := make([]layout, len(c.Groups))
	prev := initialFrontier()
	for gi, g := range c.Groups {
		if p.Cancel.Cancelled() {
			return nil, cancel.Reason(p.Cancel.Err(), "dp: cancelled before group %d/%d", gi, len(c.Groups))
		}
		comboLays[gi] = makeLayout(g.NewVars, sl.alphas)
		// Guard the flattened index arithmetic: combination and state
		// indices must fit int32 (they are stored as compact trace
		// entries), and the product must fit the sweep bound. Division
		// avoids overflowing the product check itself (makeLayout clamps
		// runaway sizes to maxStateSpace).
		nCombos := comboLays[gi].size
		if nCombos > math.MaxInt32 || int64(prev.count()) > math.MaxInt32 {
			return nil, fmt.Errorf("dp: group %d sweep exceeds index range", gi)
		}
		if int64(prev.count()) > maxSweep/nCombos {
			return nil, fmt.Errorf("dp: group %d sweep exceeds %d combinations", gi, maxSweep)
		}
		next, err := expandGroup(p, sl.byGroup[gi], prev, comboLays[gi], makeLayout(g.LiveAfter, sl.alphas))
		if err != nil {
			return nil, err
		}
		res.Configs += prev.live * int(comboLays[gi].size)
		if next.live == 0 {
			return nil, fmt.Errorf("dp: no feasible assignment at group %d", gi)
		}
		if p.MaxStates > 0 && next.live > p.MaxStates {
			next.prune(p.MaxStates)
		}
		fronts[gi] = next
		prev = next
		res.States += next.live
	}

	// The final frontier must be the single empty state (every variable's
	// liveness closed).
	fi := 0
	fc := prev.cost[0]
	if len(prev.lay.vars) != 0 || math.IsInf(fc, 1) {
		// Defensive: pick the cheapest remaining state (smallest packed
		// order on ties, for determinism).
		fi, fc = prev.best()
		if fi < 0 {
			return nil, fmt.Errorf("dp: empty final frontier")
		}
	}
	res.CommBytes = fc

	// Backtrack decisions through the compact parent/combo indices.
	cur := fi
	for gi := len(c.Groups) - 1; gi >= 0; gi-- {
		f := fronts[gi]
		ci := int64(f.combo[cur])
		cl := &comboLays[gi]
		for j, v := range cl.vars {
			dg := (ci / cl.stride[j]) % cl.radix[j]
			res.VarCut[v.ID] = sl.alphas[v.ID].dims[dg]
		}
		cur = int(f.parent[cur])
	}

	// Expand to tensors and pick per-op strategies under the final cuts.
	for _, v := range c.Vars {
		dim, ok := res.VarCut[v.ID]
		if !ok {
			continue
		}
		for _, t := range v.Tensors {
			res.TensorCut[t.ID] = dim
		}
	}
	for gi := range c.Groups {
		for _, ev := range sl.byGroup[gi] {
			si, _, err := ev.best(res.VarCut)
			if err != nil {
				return nil, err
			}
			parts, err := ev.parts(si, res.VarCut)
			if err != nil {
				return nil, err
			}
			for _, n := range ev.slot.Ops {
				res.OpStrategy[n.ID] = ev.priced.Strategies[si]
				res.OpComm[n.ID] = parts
			}
		}
	}
	sp.SetInt("states", int64(res.States))
	sp.SetInt("configs", int64(res.Configs))
	sp.SetFloat("comm_bytes", res.CommBytes)
	return res, nil
}

// slotSet is every prepared slot evaluator of a problem, plus the
// per-variable alphabets their tables are indexed by.
type slotSet struct {
	alphas []varAlpha
	// ordered lists evaluators in group/slot order; byGroup slices the same
	// backing array per group.
	ordered []*slotEval
	byGroup [][]*slotEval
}

// prepareSlotEvals builds every slot's evaluator and dense cost table,
// fanning the pricing analyses across the worker pool.
func prepareSlotEvals(p *Problem) (*slotSet, error) {
	alphas, err := buildAlphas(p)
	if err != nil {
		return nil, err
	}
	var slots []*coarsen.Slot
	for _, g := range p.Coarse.Groups {
		slots = append(slots, g.Slots...)
	}
	var prevSet *slotSet
	if p.Reuse != nil && p.Reuse.k == p.K {
		prevSet = p.Reuse.set
	}
	built := make([]*slotEval, len(slots))
	errs := make([]error, len(slots))
	forEachChunk(p.parallelism(), len(slots), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if prevSet != nil && i < len(prevSet.ordered) {
				if pe := prevSet.ordered[i]; pe.slot == slots[i] && pe.reusable(p, alphas) {
					built[i] = pe
					continue
				}
			}
			built[i], errs[i] = newSlotEval(p, slots[i], alphas)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	ss := &slotSet{alphas: alphas, ordered: built}
	off := 0
	for _, g := range p.Coarse.Groups {
		ss.byGroup = append(ss.byGroup, built[off:off+len(g.Slots)])
		off += len(g.Slots)
	}
	if p.Reuse != nil {
		p.Reuse.k = p.K
		p.Reuse.set = ss
	}
	return ss, nil
}

// spCand is one sparse-frontier contender: its accumulated cost and the
// compact (parent state, combination) indices that replace the legacy
// decided-map trace.
type spCand struct {
	cost   float64
	parent int32
	combo  int32
}

// expandGroup evaluates every (state × combination) pair for one group on
// the worker pool and merges the per-worker bests deterministically. The
// work is chunked over the flattened (state × combination) index space, so
// even a single-state frontier (always the first group) parallelizes across
// its combinations. Within a worker the sweep runs in ascending flat order
// and replaces only on strictly cheaper cost; workers merge in chunk order
// the same way — so ties always resolve to the earliest candidate in
// canonical sweep order, independent of the worker count.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func expandGroup(p *Problem, slots []*slotEval, prev *frontier, combos, next layout) (*frontier, error) {
	nVars := len(p.Coarse.Vars)
	nCombos := int(combos.size)
	total := prev.count() * nCombos
	workers := p.parallelism()
	// Tiny sweeps (the common case on chain graphs) run inline: goroutine
	// fan-out and per-worker merge buffers cost more than the sweep.
	if total < minParallelSweep {
		workers = 1
	}
	chunks := chunkRanges(workers, total)

	dcost := make([][]float64, len(chunks))
	dparent := make([][]int32, len(chunks))
	dcombo := make([][]int32, len(chunks))
	smaps := make([]map[string]spCand, len(chunks))

	runChunks(chunks, func(w, lo, hi int) {
		digit := make([]uint8, nVars)
		var (
			bc     []float64
			bp, bb []int32
			m      map[string]spCand
			keyBuf []byte
		)
		if next.dense {
			bc = make([]float64, next.size)
			for i := range bc {
				bc[i] = math.Inf(1)
			}
			bp = make([]int32, next.size)
			bb = make([]int32, next.size)
			dcost[w], dparent[w], dcombo[w] = bc, bp, bb
		} else {
			m = make(map[string]spCand)
			smaps[w] = m
			keyBuf = make([]byte, len(next.vars))
		}
		curSi := -1
		stCost := 0.0
		skip := false
		for idx := lo; idx < hi; idx++ {
			si, ci := idx/nCombos, idx%nCombos
			if si != curSi {
				curSi = si
				stCost = prev.cost[si]
				skip = math.IsInf(stCost, 1)
				if !skip {
					prev.decode(si, digit)
				}
			}
			if skip {
				// Pruned predecessor: skip its whole combo block at once.
				idx = (si+1)*nCombos - 1
				continue
			}
			cil := int64(ci)
			for j, v := range combos.vars {
				digit[v.ID] = uint8((cil / combos.stride[j]) % combos.radix[j])
			}
			cost := 0.0
			for _, ev := range slots {
				cost += ev.costAt(digit)
			}
			cost = stCost + cost
			if next.dense {
				ni := int64(0)
				for j, v := range next.vars {
					ni += next.stride[j] * int64(digit[v.ID])
				}
				if cost < bc[ni] {
					bc[ni] = cost
					bp[ni] = int32(si)
					bb[ni] = int32(ci)
				}
			} else {
				for j, v := range next.vars {
					keyBuf[j] = digit[v.ID]
				}
				if old, ok := m[string(keyBuf)]; !ok || cost < old.cost {
					m[string(keyBuf)] = spCand{cost: cost, parent: int32(si), combo: int32(ci)}
				}
			}
		}
	})

	// Merge worker-local bests in chunk order; strictly-cheaper replacement
	// makes the result independent of worker count.
	f := &frontier{lay: next}
	if next.dense {
		bc, bp, bb := dcost[0], dparent[0], dcombo[0]
		for w := 1; w < len(chunks); w++ {
			wc := dcost[w]
			for i, c := range wc {
				if c < bc[i] {
					bc[i] = c
					bp[i] = dparent[w][i]
					bb[i] = dcombo[w][i]
				}
			}
		}
		f.cost, f.parent, f.combo = bc, bp, bb
		for _, c := range bc {
			if !math.IsInf(c, 1) {
				f.live++
			}
		}
		return f, nil
	}
	merged := smaps[0]
	for w := 1; w < len(chunks); w++ {
		for k, cand := range smaps[w] {
			if old, ok := merged[k]; !ok || cand.cost < old.cost {
				merged[k] = cand
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f.keys = keys
	f.cost = make([]float64, len(keys))
	f.parent = make([]int32, len(keys))
	f.combo = make([]int32, len(keys))
	for i, k := range keys {
		cand := merged[k]
		f.cost[i] = cand.cost
		f.parent[i] = cand.parent
		f.combo[i] = cand.combo
	}
	f.live = len(keys)
	return f, nil
}

// chunkRanges splits [0, n) into at most workers contiguous [lo, hi)
// ranges. Callers size their per-chunk state by len(ranges), so the split
// arithmetic lives in exactly one place.
func chunkRanges(workers, n int) [][2]int {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return [][2]int{{0, n}}
	}
	chunk := (n + workers - 1) / workers
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// runChunks executes fn(chunkIdx, lo, hi) for each range, concurrently
// when there is more than one (inline otherwise).
func runChunks(ranges [][2]int, fn func(w, lo, hi int)) {
	if len(ranges) == 0 {
		return
	}
	if len(ranges) == 1 {
		fn(0, ranges[0][0], ranges[0][1])
		return
	}
	var wg sync.WaitGroup
	for w, r := range ranges {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, r[0], r[1])
	}
	wg.Wait()
}

// forEachChunk runs fn over [0, n) split into at most workers chunks.
func forEachChunk(workers, n int, fn func(w, lo, hi int)) {
	runChunks(chunkRanges(workers, n), fn)
}

// Evaluate prices a complete variable assignment without searching — the
// heuristic baselines (AllRow-Greedy, Spartan) choose cuts by their own
// rules and use this to cost them, and tests use it to cross-check the DP's
// optimality. The slot evaluators (and their pricing analyses) are built on
// the worker pool, exactly like Solve's.
func Evaluate(p *Problem, varCut map[int]int) (*Result, error) {
	sl, err := prepareSlotEvals(p)
	if err != nil {
		return nil, err
	}
	c := p.Coarse
	res := newResult(c)
	res.VarCut = varCut
	for gi := range c.Groups {
		for _, ev := range sl.byGroup[gi] {
			si, cost, err := ev.best(varCut)
			if err != nil {
				return nil, err
			}
			parts, err := ev.parts(si, varCut)
			if err != nil {
				return nil, err
			}
			res.CommBytes += cost
			for _, n := range ev.slot.Ops {
				res.OpStrategy[n.ID] = ev.priced.Strategies[si]
				res.OpComm[n.ID] = parts
			}
		}
	}
	for _, v := range c.Vars {
		dim, ok := varCut[v.ID]
		if !ok {
			continue
		}
		for _, t := range v.Tensors {
			res.TensorCut[t.ID] = dim
		}
	}
	return res, nil
}

// Evaluator prices assignments incrementally: the interval analyses and
// cost tables are built once (on the worker pool), after which pricing any
// assignment (or the delta of flipping a single variable) is plain
// arithmetic. The Spartan-style greedy baseline relies on this.
type Evaluator struct {
	p       *Problem
	evals   []*slotEval
	byVar   map[int][]int // var ID -> slot indices touching it
	configs map[int][]int // var ID -> viable cut dims
}

// NewEvaluator prepares the slot evaluators through the same pooled path as
// Solve.
func NewEvaluator(p *Problem) (*Evaluator, error) {
	sl, err := prepareSlotEvals(p)
	if err != nil {
		return nil, err
	}
	e := &Evaluator{p: p, evals: sl.ordered, byVar: map[int][]int{}, configs: map[int][]int{}}
	for idx, ev := range sl.ordered {
		seen := map[int]bool{}
		for _, v := range ev.inVars {
			if !seen[v.ID] {
				seen[v.ID] = true
				e.byVar[v.ID] = append(e.byVar[v.ID], idx)
			}
		}
		if !seen[ev.outVar.ID] {
			e.byVar[ev.outVar.ID] = append(e.byVar[ev.outVar.ID], idx)
		}
	}
	for _, v := range p.Coarse.Vars {
		if v.First < 0 {
			continue
		}
		e.configs[v.ID] = sl.alphas[v.ID].dims
	}
	return e, nil
}

// Configs returns the viable cut dimensions of a variable at this step.
func (e *Evaluator) Configs(varID int) []int { return e.configs[varID] }

// VarCost sums the (multiplicity-weighted) cost of every slot touching the
// variable under the assignment.
func (e *Evaluator) VarCost(varID int, assign map[int]int) (float64, error) {
	total := 0.0
	for _, idx := range e.byVar[varID] {
		_, c, err := e.evals[idx].best(assign)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// Total prices a complete assignment.
func (e *Evaluator) Total(assign map[int]int) (float64, error) {
	total := 0.0
	for _, ev := range e.evals {
		_, c, err := ev.best(assign)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// Result materializes a full Result (strategies, per-op comm) for an
// assignment.
func (e *Evaluator) Result(assign map[int]int) (*Result, error) {
	res := newResult(e.p.Coarse)
	res.VarCut = assign
	for _, ev := range e.evals {
		si, cost, err := ev.best(assign)
		if err != nil {
			return nil, err
		}
		parts, err := ev.parts(si, assign)
		if err != nil {
			return nil, err
		}
		res.CommBytes += cost
		for _, n := range ev.slot.Ops {
			res.OpStrategy[n.ID] = ev.priced.Strategies[si]
			res.OpComm[n.ID] = parts
		}
	}
	for _, v := range e.p.Coarse.Vars {
		dim, ok := assign[v.ID]
		if !ok {
			continue
		}
		for _, t := range v.Tensors {
			res.TensorCut[t.ID] = dim
		}
	}
	return res, nil
}

// SlotCost reports one slot's contribution to an Evaluate run (debugging and
// the Figure 10 breakdowns).
type SlotCost struct {
	Op       string
	Mult     float64
	Cost     float64
	Strategy partition.Strategy
}

// SlotCosts itemizes Evaluate by slot, in group order, building the
// evaluators through the same pooled path as Solve.
func SlotCosts(p *Problem, varCut map[int]int) ([]SlotCost, error) {
	sl, err := prepareSlotEvals(p)
	if err != nil {
		return nil, err
	}
	var out []SlotCost
	for gi := range p.Coarse.Groups {
		for _, ev := range sl.byGroup[gi] {
			si, cost, err := ev.best(varCut)
			if err != nil {
				return nil, err
			}
			out = append(out, SlotCost{
				Op:       ev.slot.Rep().String(),
				Mult:     ev.mult,
				Cost:     cost,
				Strategy: ev.priced.Strategies[si],
			})
		}
	}
	return out, nil
}
