// Package dp implements the per-step dynamic-programming search over the
// coarsened graph (EuroSys'19 Sec 5.1). It generalizes the chain DP of
// ICML18 [14] to a frontier sweep: groups are processed in the coarsened
// order; the DP state is the cut assignment of every variable live across
// the current boundary. On a chain this is exactly the classic algorithm; on
// WResNet's fork-join residual structure (linear by the paper's
// homeomorphism definition) the frontier simply carries one extra variable.
// Within each group the search brute-forces the member operators' strategy
// choices — the paper's "combinatorial search among all member
// operators/tensors within the group".
package dp

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"tofu/internal/coarsen"
	"tofu/internal/partition"
	"tofu/internal/shape"
)

// Problem is one invocation of the per-step search: partition every tensor
// along one dimension among K worker groups, minimizing total communication.
//
// Costs are priced at the graph's ORIGINAL shapes. Lemma 1 shows a basic
// plan's cost is Σ α_t·S_t where the α depend only on strategy/cut
// alignment, so at recursive step i (when every tensor is 1/mult of its
// original size) the true cost is the original-shape cost divided by mult —
// the same argmin. Pricing at original shapes keeps the cost function
// exactly linear (Theorem 1's commutativity), while divisibility is checked
// against the current, already-divided shapes.
type Problem struct {
	Coarse *coarsen.Coarse
	K      int64
	// Shapes maps tensor ID to its current shape at this recursive step;
	// it gates which dimensions may still be cut.
	Shapes map[int]shape.Shape
	DType  shape.DType
	// StrategyFilter, if non-nil, restricts the operator strategies the
	// search may use (the ICML18 baseline drops output reduction).
	StrategyFilter func(partition.Strategy) bool
	// MaxStates bounds the DP frontier (0 = exact, unlimited). Graphs with
	// higher cutwidth than the paper's chains/residuals — e.g. attention
	// blocks fanning one tensor into Q/K/V — can explode the exact state
	// space; with a bound, only the cheapest MaxStates states survive each
	// step (beam search: near-optimal in practice, no optimality proof).
	MaxStates int
	// Parallelism is the number of worker goroutines evaluating the
	// frontier sweep's (state × strategy-combination) expansions and the
	// per-slot pricing analyses (0 = runtime.GOMAXPROCS(0), 1 = serial).
	// The merge is deterministic: ties between equal-cost expansions break
	// by canonical sweep order, so the chosen plan is byte-identical for
	// every setting.
	Parallelism int
	// Cache, if non-nil, memoizes priced strategy enumerations across Solve
	// calls — across recursive factor steps and across baseline variants
	// over the same model (see PriceCache).
	Cache *PriceCache
}

// parallelism resolves the effective worker count.
func (p *Problem) parallelism() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Result is the chosen basic partition plan for one step.
type Result struct {
	// VarCut maps coarsened-variable ID to the chosen cut dimension.
	VarCut map[int]int
	// TensorCut expands VarCut to every member tensor ID.
	TensorCut map[int]int
	// OpStrategy maps node ID to the chosen partition strategy.
	OpStrategy map[int]partition.Strategy
	// OpComm itemizes each node's communication (fetch vs output bytes,
	// summed over all workers at this step) — the graph generator turns
	// these into MultiFetch and reduce tasks.
	OpComm map[int]partition.Parts
	// CommBytes is δ_i for this basic plan: total communication across all
	// worker groups, priced at the graph's original shapes (see Problem).
	CommBytes float64
	// States is the number of DP states explored (search-effort metric for
	// Table 1).
	States int
	// Configs is the number of (state x choice) combinations evaluated.
	Configs int
}

type slotEval struct {
	slot   *coarsen.Slot
	spec   *partition.Spec
	priced *partition.Priced
	inVars []*coarsen.Var
	outVar *coarsen.Var
	mult   float64
	// memo caches best-strategy lookups per cut assignment; guarded because
	// the parallel frontier sweep shares evaluators across workers.
	mu   sync.RWMutex
	memo map[string]slotBest
}

type slotBest struct {
	si   int
	cost float64
}

// Solve runs the frontier DP.
func Solve(p *Problem) (*Result, error) {
	c := p.Coarse
	if p.K < 2 {
		return nil, fmt.Errorf("dp: K must be >= 2, got %d", p.K)
	}

	// Enumerate per-variable configs (cuttable dimensions at this step).
	varConfigs := make(map[int][]int, len(c.Vars))
	for _, v := range c.Vars {
		if v.First < 0 {
			continue // never referenced by an operator
		}
		s := p.Shapes[v.Tensors[0].ID]
		var dims []int
		for d := 0; d < s.Rank(); d++ {
			if s.CanSplit(d, p.K) {
				dims = append(dims, d)
			}
		}
		if len(dims) == 0 {
			return nil, fmt.Errorf("dp: variable %v shape %v has no dimension divisible by %d", v, s, p.K)
		}
		varConfigs[v.ID] = dims
	}

	// Prepare slot evaluators (interval analysis once per slot, fanned out
	// across the worker pool — slots are independent).
	evals, err := prepareSlotEvals(p)
	if err != nil {
		return nil, err
	}

	// Frontier DP over groups. Each group's (state × strategy-combination)
	// expansion is evaluated by the worker pool; the merge is deterministic
	// (cheapest wins, ties break by canonical sweep order), so the result is
	// byte-identical for every Parallelism setting.
	states := map[string]dpEntry{"": {cost: 0}}
	res := &Result{
		VarCut: map[int]int{}, TensorCut: map[int]int{},
		OpStrategy: map[int]partition.Strategy{}, OpComm: map[int]partition.Parts{},
	}
	trace := make([]map[string]dpEntry, len(c.Groups))

	for gi, g := range c.Groups {
		var newVars []*coarsen.Var
		for _, v := range g.Vars {
			if v.First == gi {
				newVars = append(newVars, v)
			}
		}
		combos := enumCombos(newVars, varConfigs)
		next, err := expandGroup(p, c, g, gi, evals, states, combos)
		if err != nil {
			return nil, err
		}
		res.Configs += len(states) * len(combos)
		if len(next) == 0 {
			return nil, fmt.Errorf("dp: no feasible assignment at group %d", gi)
		}
		if p.MaxStates > 0 && len(next) > p.MaxStates {
			next = pruneStates(next, p.MaxStates)
		}
		trace[gi] = next
		states = next
		res.States += len(next)
	}

	// The final frontier must be empty (every variable's liveness closed).
	key := ""
	final, ok := states[""]
	if !ok {
		// Defensive: pick the cheapest remaining state (smallest key on
		// ties, for determinism).
		bestCost := math.Inf(1)
		for _, k := range sortedStateKeys(states) {
			if e := states[k]; e.cost < bestCost {
				key, bestCost = k, e.cost
			}
		}
		final = states[key]
	}
	res.CommBytes = final.cost

	// Backtrack decisions.
	cur := key
	for gi := len(c.Groups) - 1; gi >= 0; gi-- {
		e := trace[gi][cur]
		for id, dim := range e.decided {
			res.VarCut[id] = dim
		}
		cur = e.parent
	}

	// Expand to tensors and pick per-op strategies under the final cuts.
	for _, v := range c.Vars {
		dim, ok := res.VarCut[v.ID]
		if !ok {
			continue
		}
		for _, t := range v.Tensors {
			res.TensorCut[t.ID] = dim
		}
	}
	for _, g := range c.Groups {
		for _, s := range g.Slots {
			ev := evals[s]
			si, _, err := ev.best(res.VarCut)
			if err != nil {
				return nil, err
			}
			parts, err := ev.parts(si, res.VarCut)
			if err != nil {
				return nil, err
			}
			for _, n := range s.Ops {
				res.OpStrategy[n.ID] = ev.priced.Strategies[si]
				res.OpComm[n.ID] = parts
			}
		}
	}
	return res, nil
}

func varByID(c *coarsen.Coarse, id int) *coarsen.Var { return c.Vars[id] }

// prepareSlotEvals builds every slot's evaluator, fanning the pricing
// analyses across the worker pool.
func prepareSlotEvals(p *Problem) (map[*coarsen.Slot]*slotEval, error) {
	var slots []*coarsen.Slot
	for _, g := range p.Coarse.Groups {
		slots = append(slots, g.Slots...)
	}
	built := make([]*slotEval, len(slots))
	errs := make([]error, len(slots))
	forEachChunk(p.parallelism(), len(slots), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			built[i], errs[i] = newSlotEval(p, slots[i])
		}
	})
	evals := make(map[*coarsen.Slot]*slotEval, len(slots))
	for i, s := range slots {
		if errs[i] != nil {
			return nil, errs[i]
		}
		evals[s] = built[i]
	}
	return evals, nil
}

// candidate is one (state × combo) expansion outcome contending for a next
// frontier state. order is its position in the canonical serial sweep
// (states sorted by key, combos in enumeration order); equal-cost
// candidates break ties by it so every worker-pool size emits the same
// plan.
type candidate struct {
	cost    float64
	parent  string
	decided map[int]int
	order   int64
}

func betterCandidate(a, b candidate) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.order < b.order
}

// expandGroup evaluates every (state × combo) pair for one group on the
// worker pool and merges the per-worker bests deterministically. The work
// is chunked over the flattened (state × combo) index space, so even a
// single-state frontier (always the first group) parallelizes across its
// combos.
func expandGroup(p *Problem, c *coarsen.Coarse, g *coarsen.Group, gi int,
	evals map[*coarsen.Slot]*slotEval, states map[string]dpEntry,
	combos []map[int]int) (map[string]dpEntry, error) {

	keys := sortedStateKeys(states)
	chunks := chunkRanges(p.parallelism(), len(keys)*len(combos))
	locals := make([]map[string]candidate, len(chunks))
	errs := make([]error, len(chunks))

	runChunks(chunks, func(w, lo, hi int) {
		best := map[string]candidate{}
		locals[w] = best
		// Chunks are contiguous in flat order, so the state index is
		// non-decreasing: decode each state once as it comes into view.
		curSi := -1
		var key string
		var st dpEntry
		var assign map[int]int
		for idx := lo; idx < hi; idx++ {
			si, ci := idx/len(combos), idx%len(combos)
			if si != curSi {
				curSi = si
				key = keys[si]
				st = states[key]
				assign = decodeState(key)
			}
			combo := combos[ci]
			full := make(map[int]int, len(assign)+len(combo))
			for k, v := range assign {
				full[k] = v
			}
			for k, v := range combo {
				full[k] = v
			}
			cost, err := groupCost(g, evals, full)
			if err != nil {
				errs[w] = err
				return
			}
			// Drop variables whose liveness ends at this group.
			nextAssign := make(map[int]int, len(full))
			for id, dim := range full {
				if varByID(c, id).Last > gi {
					nextAssign[id] = dim
				}
			}
			nk := encodeState(nextAssign)
			cand := candidate{
				cost:    st.cost + cost,
				parent:  key,
				decided: combo,
				order:   int64(idx),
			}
			if old, ok := best[nk]; !ok || betterCandidate(cand, old) {
				best[nk] = cand
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Merge worker-local bests. The comparator is a total order, so the
	// merge result is independent of worker count and merge order.
	merged := map[string]candidate{}
	for _, best := range locals {
		if best == nil {
			continue
		}
		for nk, cand := range best {
			if old, ok := merged[nk]; !ok || betterCandidate(cand, old) {
				merged[nk] = cand
			}
		}
	}
	next := make(map[string]dpEntry, len(merged))
	for nk, cand := range merged {
		next[nk] = dpEntry{cost: cand.cost, parent: cand.parent, decided: cand.decided}
	}
	return next, nil
}

// chunkRanges splits [0, n) into at most workers contiguous [lo, hi)
// ranges. Callers size their per-chunk state by len(ranges), so the split
// arithmetic lives in exactly one place.
func chunkRanges(workers, n int) [][2]int {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return [][2]int{{0, n}}
	}
	chunk := (n + workers - 1) / workers
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// runChunks executes fn(chunkIdx, lo, hi) for each range, concurrently
// when there is more than one (inline otherwise).
func runChunks(ranges [][2]int, fn func(w, lo, hi int)) {
	if len(ranges) == 0 {
		return
	}
	if len(ranges) == 1 {
		fn(0, ranges[0][0], ranges[0][1])
		return
	}
	var wg sync.WaitGroup
	for w, r := range ranges {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, r[0], r[1])
	}
	wg.Wait()
}

// forEachChunk runs fn over [0, n) split into at most workers chunks.
func forEachChunk(workers, n int, fn func(w, lo, hi int)) {
	runChunks(chunkRanges(workers, n), fn)
}

func sortedStateKeys(states map[string]dpEntry) []string {
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// dpEntry is one frontier state: its accumulated cost, the predecessor
// state's key, and the variables decided at the transition into it.
type dpEntry struct {
	cost    float64
	parent  string
	decided map[int]int
}

// pruneStates keeps the cheapest max states (beam bound). Equal costs break
// by state key so the surviving beam is deterministic.
func pruneStates(next map[string]dpEntry, max int) map[string]dpEntry {
	type kc struct {
		key  string
		cost float64
	}
	costs := make([]kc, 0, len(next))
	for k, e := range next {
		costs = append(costs, kc{key: k, cost: e.cost})
	}
	sort.Slice(costs, func(i, j int) bool {
		if costs[i].cost != costs[j].cost {
			return costs[i].cost < costs[j].cost
		}
		return costs[i].key < costs[j].key
	})
	out := make(map[string]dpEntry, max)
	for _, c := range costs[:max] {
		out[c.key] = next[c.key]
	}
	return out
}

// Evaluate prices a complete variable assignment without searching — the
// heuristic baselines (AllRow-Greedy, Spartan) choose cuts by their own
// rules and use this to cost them, and tests use it to cross-check the DP's
// optimality.
func Evaluate(p *Problem, varCut map[int]int) (*Result, error) {
	c := p.Coarse
	res := &Result{
		VarCut: varCut, TensorCut: map[int]int{},
		OpStrategy: map[int]partition.Strategy{}, OpComm: map[int]partition.Parts{},
	}
	for _, g := range c.Groups {
		for _, s := range g.Slots {
			ev, err := newSlotEval(p, s)
			if err != nil {
				return nil, err
			}
			si, cost, err := ev.best(varCut)
			if err != nil {
				return nil, err
			}
			parts, err := ev.parts(si, varCut)
			if err != nil {
				return nil, err
			}
			res.CommBytes += cost * ev.mult
			for _, n := range s.Ops {
				res.OpStrategy[n.ID] = ev.priced.Strategies[si]
				res.OpComm[n.ID] = parts
			}
		}
	}
	for _, v := range c.Vars {
		dim, ok := varCut[v.ID]
		if !ok {
			continue
		}
		for _, t := range v.Tensors {
			res.TensorCut[t.ID] = dim
		}
	}
	return res, nil
}

func newSlotEval(p *Problem, s *coarsen.Slot) (*slotEval, error) {
	rep := s.Rep()
	ev := &slotEval{slot: s, mult: float64(len(s.Ops)), memo: map[string]slotBest{}}

	curIn := make([]shape.Shape, len(rep.Inputs))
	origIn := make([]shape.Shape, len(rep.Inputs))
	for i, in := range rep.Inputs {
		curIn[i] = p.Shapes[in.ID]
		origIn[i] = in.Shape
		ev.inVars = append(ev.inVars, p.Coarse.VarOf(in))
	}
	ev.outVar = p.Coarse.VarOf(rep.Output)
	curOut := p.Shapes[rep.Output.ID]

	desc, err := p.Coarse.G.Describe(rep)
	if err != nil {
		return nil, err
	}
	// Price at ORIGINAL shapes (see Problem); gate applicability on the
	// CURRENT shapes, where earlier steps may have exhausted a dimension.
	spec := &partition.Spec{
		Desc:     desc,
		InShapes: origIn,
		OutShape: rep.Output.Shape,
		DType:    p.DType,
	}
	// The full pricing (every strategy applicable at original shapes) is
	// step-invariant, so it is memoized in the cache; the per-step strategy
	// filter and current-shape gate become a cheap Restrict view.
	full, err := p.Cache.priced(slotKey(rep, spec, p.K, p.DType), func() (*partition.Priced, error) {
		return partition.Price(spec, p.K, nil)
	})
	if err != nil {
		return nil, fmt.Errorf("dp: pricing %v: %w", rep, err)
	}
	ev.priced, err = full.Restrict(func(st partition.Strategy) bool {
		if p.StrategyFilter != nil && !p.StrategyFilter(st) {
			return false
		}
		if st.Kind == partition.SplitOutput {
			return curOut.CanSplit(st.OutDim, p.K)
		}
		ext, err := partition.ReduceExtent(desc, curIn, st.Axis)
		if err != nil {
			return false
		}
		return ext >= p.K && ext%p.K == 0
	})
	if err != nil {
		return nil, fmt.Errorf("dp: pricing %v: %w", rep, err)
	}
	ev.spec = spec
	return ev, nil
}

// best returns the cheapest strategy for the slot under a full assignment.
func (ev *slotEval) best(assign map[int]int) (int, float64, error) {
	var sb strings.Builder
	inCuts := make([]partition.Cut, len(ev.inVars))
	for i, v := range ev.inVars {
		d, ok := assign[v.ID]
		if !ok {
			return 0, 0, fmt.Errorf("dp: slot %v references undecided var %v", ev.slot.Rep(), v)
		}
		inCuts[i] = partition.Cut{Dim: d}
		fmt.Fprintf(&sb, "%d,", d)
	}
	od, ok := assign[ev.outVar.ID]
	if !ok {
		return 0, 0, fmt.Errorf("dp: slot %v output var %v undecided", ev.slot.Rep(), ev.outVar)
	}
	fmt.Fprintf(&sb, "|%d", od)
	key := sb.String()
	ev.mu.RLock()
	b, ok := ev.memo[key]
	ev.mu.RUnlock()
	if ok {
		return b.si, b.cost, nil
	}
	si, cost := ev.priced.Best(inCuts, partition.Cut{Dim: od})
	if si < 0 {
		return 0, 0, fmt.Errorf("dp: no strategy for slot %v", ev.slot.Rep())
	}
	// Concurrent misses recompute the same deterministic value; last store
	// wins harmlessly.
	ev.mu.Lock()
	ev.memo[key] = slotBest{si: si, cost: cost}
	ev.mu.Unlock()
	return si, cost, nil
}

// Evaluator prices assignments incrementally: the interval analyses are run
// once, after which pricing any assignment (or the delta of flipping a
// single variable) is plain arithmetic. The Spartan-style greedy baseline
// relies on this.
type Evaluator struct {
	p       *Problem
	evals   []*slotEval
	byVar   map[int][]int // var ID -> slot indices touching it
	configs map[int][]int // var ID -> viable cut dims
}

// NewEvaluator prepares the slot evaluators.
func NewEvaluator(p *Problem) (*Evaluator, error) {
	e := &Evaluator{p: p, byVar: map[int][]int{}, configs: map[int][]int{}}
	for _, g := range p.Coarse.Groups {
		for _, s := range g.Slots {
			ev, err := newSlotEval(p, s)
			if err != nil {
				return nil, err
			}
			idx := len(e.evals)
			e.evals = append(e.evals, ev)
			seen := map[int]bool{}
			for _, v := range ev.inVars {
				if !seen[v.ID] {
					seen[v.ID] = true
					e.byVar[v.ID] = append(e.byVar[v.ID], idx)
				}
			}
			if !seen[ev.outVar.ID] {
				e.byVar[ev.outVar.ID] = append(e.byVar[ev.outVar.ID], idx)
			}
		}
	}
	for _, v := range p.Coarse.Vars {
		if v.First < 0 {
			continue
		}
		s := p.Shapes[v.Tensors[0].ID]
		var dims []int
		for d := 0; d < s.Rank(); d++ {
			if s.CanSplit(d, p.K) {
				dims = append(dims, d)
			}
		}
		e.configs[v.ID] = dims
	}
	return e, nil
}

// Configs returns the viable cut dimensions of a variable at this step.
func (e *Evaluator) Configs(varID int) []int { return e.configs[varID] }

// VarCost sums the (multiplicity-weighted) cost of every slot touching the
// variable under the assignment.
func (e *Evaluator) VarCost(varID int, assign map[int]int) (float64, error) {
	total := 0.0
	for _, idx := range e.byVar[varID] {
		ev := e.evals[idx]
		_, c, err := ev.best(assign)
		if err != nil {
			return 0, err
		}
		total += c * ev.mult
	}
	return total, nil
}

// Total prices a complete assignment.
func (e *Evaluator) Total(assign map[int]int) (float64, error) {
	total := 0.0
	for _, ev := range e.evals {
		_, c, err := ev.best(assign)
		if err != nil {
			return 0, err
		}
		total += c * ev.mult
	}
	return total, nil
}

// Result materializes a full Result (strategies, per-op comm) for an
// assignment.
func (e *Evaluator) Result(assign map[int]int) (*Result, error) {
	res := &Result{
		VarCut: assign, TensorCut: map[int]int{},
		OpStrategy: map[int]partition.Strategy{}, OpComm: map[int]partition.Parts{},
	}
	for _, ev := range e.evals {
		si, cost, err := ev.best(assign)
		if err != nil {
			return nil, err
		}
		parts, err := ev.parts(si, assign)
		if err != nil {
			return nil, err
		}
		res.CommBytes += cost * ev.mult
		for _, n := range ev.slot.Ops {
			res.OpStrategy[n.ID] = ev.priced.Strategies[si]
			res.OpComm[n.ID] = parts
		}
	}
	for _, v := range e.p.Coarse.Vars {
		dim, ok := assign[v.ID]
		if !ok {
			continue
		}
		for _, t := range v.Tensors {
			res.TensorCut[t.ID] = dim
		}
	}
	return res, nil
}

// parts itemizes the chosen strategy's communication under an assignment.
func (ev *slotEval) parts(si int, assign map[int]int) (partition.Parts, error) {
	inCuts := make([]partition.Cut, len(ev.inVars))
	for i, v := range ev.inVars {
		d, ok := assign[v.ID]
		if !ok {
			return partition.Parts{}, fmt.Errorf("dp: slot %v references undecided var %v", ev.slot.Rep(), v)
		}
		inCuts[i] = partition.Cut{Dim: d}
	}
	od, ok := assign[ev.outVar.ID]
	if !ok {
		return partition.Parts{}, fmt.Errorf("dp: slot %v output var %v undecided", ev.slot.Rep(), ev.outVar)
	}
	return ev.priced.PartsOf(si, inCuts, partition.Cut{Dim: od}), nil
}

func groupCost(g *coarsen.Group, evals map[*coarsen.Slot]*slotEval, assign map[int]int) (float64, error) {
	total := 0.0
	for _, s := range g.Slots {
		ev := evals[s]
		_, c, err := ev.best(assign)
		if err != nil {
			return 0, err
		}
		total += c * ev.mult
	}
	return total, nil
}

// enumCombos enumerates assignments for the newly introduced variables.
func enumCombos(vars []*coarsen.Var, configs map[int][]int) []map[int]int {
	out := []map[int]int{{}}
	for _, v := range vars {
		dims := configs[v.ID]
		var next []map[int]int
		for _, m := range out {
			for _, d := range dims {
				nm := make(map[int]int, len(m)+1)
				for k, val := range m {
					nm[k] = val
				}
				nm[v.ID] = d
				next = append(next, nm)
			}
		}
		out = next
	}
	return out
}

func encodeState(assign map[int]int) string {
	if len(assign) == 0 {
		return ""
	}
	ids := make([]int, 0, len(assign))
	for id := range assign {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d:%d;", id, assign[id])
	}
	return sb.String()
}

func decodeState(key string) map[int]int {
	out := map[int]int{}
	if key == "" {
		return out
	}
	for _, part := range strings.Split(strings.TrimSuffix(key, ";"), ";") {
		var id, dim int
		fmt.Sscanf(part, "%d:%d", &id, &dim)
		out[id] = dim
	}
	return out
}

// SlotCost reports one slot's contribution to an Evaluate run (debugging and
// the Figure 10 breakdowns).
type SlotCost struct {
	Op       string
	Mult     float64
	Cost     float64
	Strategy partition.Strategy
}

// SlotCosts itemizes Evaluate by slot, in group order.
func SlotCosts(p *Problem, varCut map[int]int) ([]SlotCost, error) {
	var out []SlotCost
	for _, g := range p.Coarse.Groups {
		for _, s := range g.Slots {
			ev, err := newSlotEval(p, s)
			if err != nil {
				return nil, err
			}
			si, cost, err := ev.best(varCut)
			if err != nil {
				return nil, err
			}
			out = append(out, SlotCost{
				Op:       s.Rep().String(),
				Mult:     ev.mult,
				Cost:     cost * ev.mult,
				Strategy: ev.priced.Strategies[si],
			})
		}
	}
	return out, nil
}
