// Package dp implements the per-step dynamic-programming search over the
// coarsened graph (EuroSys'19 Sec 5.1). It generalizes the chain DP of
// ICML18 [14] to a frontier sweep: groups are processed in the coarsened
// order; the DP state is the cut assignment of every variable live across
// the current boundary. On a chain this is exactly the classic algorithm; on
// WResNet's fork-join residual structure (linear by the paper's
// homeomorphism definition) the frontier simply carries one extra variable.
// Within each group the search brute-forces the member operators' strategy
// choices — the paper's "combinatorial search among all member
// operators/tensors within the group".
package dp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tofu/internal/coarsen"
	"tofu/internal/partition"
	"tofu/internal/shape"
)

// Problem is one invocation of the per-step search: partition every tensor
// along one dimension among K worker groups, minimizing total communication.
//
// Costs are priced at the graph's ORIGINAL shapes. Lemma 1 shows a basic
// plan's cost is Σ α_t·S_t where the α depend only on strategy/cut
// alignment, so at recursive step i (when every tensor is 1/mult of its
// original size) the true cost is the original-shape cost divided by mult —
// the same argmin. Pricing at original shapes keeps the cost function
// exactly linear (Theorem 1's commutativity), while divisibility is checked
// against the current, already-divided shapes.
type Problem struct {
	Coarse *coarsen.Coarse
	K      int64
	// Shapes maps tensor ID to its current shape at this recursive step;
	// it gates which dimensions may still be cut.
	Shapes map[int]shape.Shape
	DType  shape.DType
	// StrategyFilter, if non-nil, restricts the operator strategies the
	// search may use (the ICML18 baseline drops output reduction).
	StrategyFilter func(partition.Strategy) bool
	// MaxStates bounds the DP frontier (0 = exact, unlimited). Graphs with
	// higher cutwidth than the paper's chains/residuals — e.g. attention
	// blocks fanning one tensor into Q/K/V — can explode the exact state
	// space; with a bound, only the cheapest MaxStates states survive each
	// step (beam search: near-optimal in practice, no optimality proof).
	MaxStates int
}

// Result is the chosen basic partition plan for one step.
type Result struct {
	// VarCut maps coarsened-variable ID to the chosen cut dimension.
	VarCut map[int]int
	// TensorCut expands VarCut to every member tensor ID.
	TensorCut map[int]int
	// OpStrategy maps node ID to the chosen partition strategy.
	OpStrategy map[int]partition.Strategy
	// OpComm itemizes each node's communication (fetch vs output bytes,
	// summed over all workers at this step) — the graph generator turns
	// these into MultiFetch and reduce tasks.
	OpComm map[int]partition.Parts
	// CommBytes is δ_i for this basic plan: total communication across all
	// worker groups, priced at the graph's original shapes (see Problem).
	CommBytes float64
	// States is the number of DP states explored (search-effort metric for
	// Table 1).
	States int
	// Configs is the number of (state x choice) combinations evaluated.
	Configs int
}

type slotEval struct {
	slot   *coarsen.Slot
	spec   *partition.Spec
	priced *partition.Priced
	inVars []*coarsen.Var
	outVar *coarsen.Var
	mult   float64
	memo   map[string]slotBest
}

type slotBest struct {
	si   int
	cost float64
}

// Solve runs the frontier DP.
func Solve(p *Problem) (*Result, error) {
	c := p.Coarse
	if p.K < 2 {
		return nil, fmt.Errorf("dp: K must be >= 2, got %d", p.K)
	}

	// Enumerate per-variable configs (cuttable dimensions at this step).
	varConfigs := make(map[int][]int, len(c.Vars))
	for _, v := range c.Vars {
		if v.First < 0 {
			continue // never referenced by an operator
		}
		s := p.Shapes[v.Tensors[0].ID]
		var dims []int
		for d := 0; d < s.Rank(); d++ {
			if s.CanSplit(d, p.K) {
				dims = append(dims, d)
			}
		}
		if len(dims) == 0 {
			return nil, fmt.Errorf("dp: variable %v shape %v has no dimension divisible by %d", v, s, p.K)
		}
		varConfigs[v.ID] = dims
	}

	// Prepare slot evaluators (interval analysis once per slot).
	evals := make(map[*coarsen.Slot]*slotEval)
	for _, g := range c.Groups {
		for _, s := range g.Slots {
			ev, err := newSlotEval(p, s)
			if err != nil {
				return nil, err
			}
			evals[s] = ev
		}
	}

	// Frontier DP over groups.
	states := map[string]dpEntry{"": {cost: 0}}
	res := &Result{
		VarCut: map[int]int{}, TensorCut: map[int]int{},
		OpStrategy: map[int]partition.Strategy{}, OpComm: map[int]partition.Parts{},
	}
	trace := make([]map[string]dpEntry, len(c.Groups))

	for gi, g := range c.Groups {
		var newVars []*coarsen.Var
		for _, v := range g.Vars {
			if v.First == gi {
				newVars = append(newVars, v)
			}
		}
		next := map[string]dpEntry{}
		for key, st := range states {
			assign := decodeState(key)
			combos := enumCombos(newVars, varConfigs)
			for _, combo := range combos {
				res.Configs++
				full := make(map[int]int, len(assign)+len(combo))
				for k, v := range assign {
					full[k] = v
				}
				for k, v := range combo {
					full[k] = v
				}
				cost, err := groupCost(g, evals, full)
				if err != nil {
					return nil, err
				}
				// Drop variables whose liveness ends at this group.
				nextAssign := make(map[int]int, len(full))
				for id, dim := range full {
					if varByID(c, id).Last > gi {
						nextAssign[id] = dim
					}
				}
				nk := encodeState(nextAssign)
				total := st.cost + cost
				if old, ok := next[nk]; !ok || total < old.cost {
					next[nk] = dpEntry{cost: total, parent: key, decided: combo}
				}
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("dp: no feasible assignment at group %d", gi)
		}
		if p.MaxStates > 0 && len(next) > p.MaxStates {
			next = pruneStates(next, p.MaxStates)
		}
		trace[gi] = next
		states = next
		res.States += len(next)
	}

	// The final frontier must be empty (every variable's liveness closed).
	final, ok := states[""]
	if !ok {
		// Defensive: pick the cheapest remaining state.
		bestKey, bestCost := "", math.Inf(1)
		for k, e := range states {
			if e.cost < bestCost {
				bestKey, bestCost = k, e.cost
			}
		}
		final = states[bestKey]
	}
	res.CommBytes = final.cost

	// Backtrack decisions.
	key := ""
	if _, ok := states[""]; !ok {
		for k := range states {
			key = k
			break
		}
	}
	cur := key
	for gi := len(c.Groups) - 1; gi >= 0; gi-- {
		e := trace[gi][cur]
		for id, dim := range e.decided {
			res.VarCut[id] = dim
		}
		cur = e.parent
	}

	// Expand to tensors and pick per-op strategies under the final cuts.
	for _, v := range c.Vars {
		dim, ok := res.VarCut[v.ID]
		if !ok {
			continue
		}
		for _, t := range v.Tensors {
			res.TensorCut[t.ID] = dim
		}
	}
	for _, g := range c.Groups {
		for _, s := range g.Slots {
			ev := evals[s]
			si, _, err := ev.best(res.VarCut)
			if err != nil {
				return nil, err
			}
			parts, err := ev.parts(si, res.VarCut)
			if err != nil {
				return nil, err
			}
			for _, n := range s.Ops {
				res.OpStrategy[n.ID] = ev.priced.Strategies[si]
				res.OpComm[n.ID] = parts
			}
		}
	}
	return res, nil
}

func varByID(c *coarsen.Coarse, id int) *coarsen.Var { return c.Vars[id] }

// dpEntry is one frontier state: its accumulated cost, the predecessor
// state's key, and the variables decided at the transition into it.
type dpEntry struct {
	cost    float64
	parent  string
	decided map[int]int
}

// pruneStates keeps the cheapest max states (beam bound).
func pruneStates(next map[string]dpEntry, max int) map[string]dpEntry {
	type kc struct {
		key  string
		cost float64
	}
	costs := make([]kc, 0, len(next))
	for k, e := range next {
		costs = append(costs, kc{key: k, cost: e.cost})
	}
	sort.Slice(costs, func(i, j int) bool { return costs[i].cost < costs[j].cost })
	out := make(map[string]dpEntry, max)
	for _, c := range costs[:max] {
		out[c.key] = next[c.key]
	}
	return out
}

// Evaluate prices a complete variable assignment without searching — the
// heuristic baselines (AllRow-Greedy, Spartan) choose cuts by their own
// rules and use this to cost them, and tests use it to cross-check the DP's
// optimality.
func Evaluate(p *Problem, varCut map[int]int) (*Result, error) {
	c := p.Coarse
	res := &Result{
		VarCut: varCut, TensorCut: map[int]int{},
		OpStrategy: map[int]partition.Strategy{}, OpComm: map[int]partition.Parts{},
	}
	for _, g := range c.Groups {
		for _, s := range g.Slots {
			ev, err := newSlotEval(p, s)
			if err != nil {
				return nil, err
			}
			si, cost, err := ev.best(varCut)
			if err != nil {
				return nil, err
			}
			parts, err := ev.parts(si, varCut)
			if err != nil {
				return nil, err
			}
			res.CommBytes += cost * ev.mult
			for _, n := range s.Ops {
				res.OpStrategy[n.ID] = ev.priced.Strategies[si]
				res.OpComm[n.ID] = parts
			}
		}
	}
	for _, v := range c.Vars {
		dim, ok := varCut[v.ID]
		if !ok {
			continue
		}
		for _, t := range v.Tensors {
			res.TensorCut[t.ID] = dim
		}
	}
	return res, nil
}

func newSlotEval(p *Problem, s *coarsen.Slot) (*slotEval, error) {
	rep := s.Rep()
	ev := &slotEval{slot: s, mult: float64(len(s.Ops)), memo: map[string]slotBest{}}

	curIn := make([]shape.Shape, len(rep.Inputs))
	origIn := make([]shape.Shape, len(rep.Inputs))
	for i, in := range rep.Inputs {
		curIn[i] = p.Shapes[in.ID]
		origIn[i] = in.Shape
		ev.inVars = append(ev.inVars, p.Coarse.VarOf(in))
	}
	ev.outVar = p.Coarse.VarOf(rep.Output)
	curOut := p.Shapes[rep.Output.ID]

	desc, err := p.Coarse.G.Describe(rep)
	if err != nil {
		return nil, err
	}
	// Price at ORIGINAL shapes (see Problem); gate applicability on the
	// CURRENT shapes, where earlier steps may have exhausted a dimension.
	spec := &partition.Spec{
		Desc:     desc,
		InShapes: origIn,
		OutShape: rep.Output.Shape,
		DType:    p.DType,
	}
	filter := func(st partition.Strategy) bool {
		if p.StrategyFilter != nil && !p.StrategyFilter(st) {
			return false
		}
		if st.Kind == partition.SplitOutput {
			return curOut.CanSplit(st.OutDim, p.K)
		}
		ext, err := partition.ReduceExtent(desc, curIn, st.Axis)
		if err != nil {
			return false
		}
		return ext >= p.K && ext%p.K == 0
	}
	ev.priced, err = partition.Price(spec, p.K, filter)
	if err != nil {
		return nil, fmt.Errorf("dp: pricing %v: %w", rep, err)
	}
	ev.spec = spec
	return ev, nil
}

// best returns the cheapest strategy for the slot under a full assignment.
func (ev *slotEval) best(assign map[int]int) (int, float64, error) {
	var sb strings.Builder
	inCuts := make([]partition.Cut, len(ev.inVars))
	for i, v := range ev.inVars {
		d, ok := assign[v.ID]
		if !ok {
			return 0, 0, fmt.Errorf("dp: slot %v references undecided var %v", ev.slot.Rep(), v)
		}
		inCuts[i] = partition.Cut{Dim: d}
		fmt.Fprintf(&sb, "%d,", d)
	}
	od, ok := assign[ev.outVar.ID]
	if !ok {
		return 0, 0, fmt.Errorf("dp: slot %v output var %v undecided", ev.slot.Rep(), ev.outVar)
	}
	fmt.Fprintf(&sb, "|%d", od)
	key := sb.String()
	if b, ok := ev.memo[key]; ok {
		return b.si, b.cost, nil
	}
	si, cost := ev.priced.Best(inCuts, partition.Cut{Dim: od})
	if si < 0 {
		return 0, 0, fmt.Errorf("dp: no strategy for slot %v", ev.slot.Rep())
	}
	ev.memo[key] = slotBest{si: si, cost: cost}
	return si, cost, nil
}

// Evaluator prices assignments incrementally: the interval analyses are run
// once, after which pricing any assignment (or the delta of flipping a
// single variable) is plain arithmetic. The Spartan-style greedy baseline
// relies on this.
type Evaluator struct {
	p       *Problem
	evals   []*slotEval
	byVar   map[int][]int // var ID -> slot indices touching it
	configs map[int][]int // var ID -> viable cut dims
}

// NewEvaluator prepares the slot evaluators.
func NewEvaluator(p *Problem) (*Evaluator, error) {
	e := &Evaluator{p: p, byVar: map[int][]int{}, configs: map[int][]int{}}
	for _, g := range p.Coarse.Groups {
		for _, s := range g.Slots {
			ev, err := newSlotEval(p, s)
			if err != nil {
				return nil, err
			}
			idx := len(e.evals)
			e.evals = append(e.evals, ev)
			seen := map[int]bool{}
			for _, v := range ev.inVars {
				if !seen[v.ID] {
					seen[v.ID] = true
					e.byVar[v.ID] = append(e.byVar[v.ID], idx)
				}
			}
			if !seen[ev.outVar.ID] {
				e.byVar[ev.outVar.ID] = append(e.byVar[ev.outVar.ID], idx)
			}
		}
	}
	for _, v := range p.Coarse.Vars {
		if v.First < 0 {
			continue
		}
		s := p.Shapes[v.Tensors[0].ID]
		var dims []int
		for d := 0; d < s.Rank(); d++ {
			if s.CanSplit(d, p.K) {
				dims = append(dims, d)
			}
		}
		e.configs[v.ID] = dims
	}
	return e, nil
}

// Configs returns the viable cut dimensions of a variable at this step.
func (e *Evaluator) Configs(varID int) []int { return e.configs[varID] }

// VarCost sums the (multiplicity-weighted) cost of every slot touching the
// variable under the assignment.
func (e *Evaluator) VarCost(varID int, assign map[int]int) (float64, error) {
	total := 0.0
	for _, idx := range e.byVar[varID] {
		ev := e.evals[idx]
		_, c, err := ev.best(assign)
		if err != nil {
			return 0, err
		}
		total += c * ev.mult
	}
	return total, nil
}

// Total prices a complete assignment.
func (e *Evaluator) Total(assign map[int]int) (float64, error) {
	total := 0.0
	for _, ev := range e.evals {
		_, c, err := ev.best(assign)
		if err != nil {
			return 0, err
		}
		total += c * ev.mult
	}
	return total, nil
}

// Result materializes a full Result (strategies, per-op comm) for an
// assignment.
func (e *Evaluator) Result(assign map[int]int) (*Result, error) {
	res := &Result{
		VarCut: assign, TensorCut: map[int]int{},
		OpStrategy: map[int]partition.Strategy{}, OpComm: map[int]partition.Parts{},
	}
	for _, ev := range e.evals {
		si, cost, err := ev.best(assign)
		if err != nil {
			return nil, err
		}
		parts, err := ev.parts(si, assign)
		if err != nil {
			return nil, err
		}
		res.CommBytes += cost * ev.mult
		for _, n := range ev.slot.Ops {
			res.OpStrategy[n.ID] = ev.priced.Strategies[si]
			res.OpComm[n.ID] = parts
		}
	}
	for _, v := range e.p.Coarse.Vars {
		dim, ok := assign[v.ID]
		if !ok {
			continue
		}
		for _, t := range v.Tensors {
			res.TensorCut[t.ID] = dim
		}
	}
	return res, nil
}

// parts itemizes the chosen strategy's communication under an assignment.
func (ev *slotEval) parts(si int, assign map[int]int) (partition.Parts, error) {
	inCuts := make([]partition.Cut, len(ev.inVars))
	for i, v := range ev.inVars {
		d, ok := assign[v.ID]
		if !ok {
			return partition.Parts{}, fmt.Errorf("dp: slot %v references undecided var %v", ev.slot.Rep(), v)
		}
		inCuts[i] = partition.Cut{Dim: d}
	}
	od, ok := assign[ev.outVar.ID]
	if !ok {
		return partition.Parts{}, fmt.Errorf("dp: slot %v output var %v undecided", ev.slot.Rep(), ev.outVar)
	}
	return ev.priced.PartsOf(si, inCuts, partition.Cut{Dim: od}), nil
}

func groupCost(g *coarsen.Group, evals map[*coarsen.Slot]*slotEval, assign map[int]int) (float64, error) {
	total := 0.0
	for _, s := range g.Slots {
		ev := evals[s]
		_, c, err := ev.best(assign)
		if err != nil {
			return 0, err
		}
		total += c * ev.mult
	}
	return total, nil
}

// enumCombos enumerates assignments for the newly introduced variables.
func enumCombos(vars []*coarsen.Var, configs map[int][]int) []map[int]int {
	out := []map[int]int{{}}
	for _, v := range vars {
		dims := configs[v.ID]
		var next []map[int]int
		for _, m := range out {
			for _, d := range dims {
				nm := make(map[int]int, len(m)+1)
				for k, val := range m {
					nm[k] = val
				}
				nm[v.ID] = d
				next = append(next, nm)
			}
		}
		out = next
	}
	return out
}

func encodeState(assign map[int]int) string {
	if len(assign) == 0 {
		return ""
	}
	ids := make([]int, 0, len(assign))
	for id := range assign {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d:%d;", id, assign[id])
	}
	return sb.String()
}

func decodeState(key string) map[int]int {
	out := map[int]int{}
	if key == "" {
		return out
	}
	for _, part := range strings.Split(strings.TrimSuffix(key, ";"), ";") {
		var id, dim int
		fmt.Sscanf(part, "%d:%d", &id, &dim)
		out[id] = dim
	}
	return out
}

// SlotCost reports one slot's contribution to an Evaluate run (debugging and
// the Figure 10 breakdowns).
type SlotCost struct {
	Op       string
	Mult     float64
	Cost     float64
	Strategy partition.Strategy
}

// SlotCosts itemizes Evaluate by slot, in group order.
func SlotCosts(p *Problem, varCut map[int]int) ([]SlotCost, error) {
	var out []SlotCost
	for _, g := range p.Coarse.Groups {
		for _, s := range g.Slots {
			ev, err := newSlotEval(p, s)
			if err != nil {
				return nil, err
			}
			si, cost, err := ev.best(varCut)
			if err != nil {
				return nil, err
			}
			out = append(out, SlotCost{
				Op:       s.Rep().String(),
				Mult:     ev.mult,
				Cost:     cost * ev.mult,
				Strategy: ev.priced.Strategies[si],
			})
		}
	}
	return out, nil
}
