package dp

import (
	"math"
	"testing"
	"time"

	"tofu/internal/coarsen"
	"tofu/internal/models"
	"tofu/internal/partition"
	"tofu/internal/shape"
)

func problemFor(t *testing.T, m *models.Model, k int64) *Problem {
	t.Helper()
	c, err := coarsen.Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	shapes := make(map[int]shape.Shape, len(m.G.Tensors))
	for _, ten := range m.G.Tensors {
		shapes[ten.ID] = ten.Shape.Clone()
	}
	return &Problem{Coarse: c, K: k, Shapes: shapes, DType: shape.Float32}
}

func TestSolveBasics(t *testing.T) {
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	p := problemFor(t, m, 2)
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommBytes < 0 {
		t.Fatal("negative cost")
	}
	// Every referenced variable decided; every op has a strategy and comm.
	for _, v := range p.Coarse.Vars {
		if v.First < 0 {
			continue
		}
		if _, ok := res.VarCut[v.ID]; !ok {
			t.Errorf("variable %v undecided", v)
		}
	}
	for _, n := range m.G.Nodes {
		if res.OpStrategy[n.ID].Axis == "" {
			t.Errorf("node %v has no strategy", n)
		}
	}
	// Total cost equals the sum of per-op parts.
	sum := 0.0
	counted := map[int]bool{}
	for _, n := range m.G.Nodes {
		if counted[n.ID] {
			continue
		}
		counted[n.ID] = true
		sum += res.OpComm[n.ID].Total()
	}
	if math.Abs(sum-res.CommBytes) > 1e-6*(1+res.CommBytes) {
		t.Fatalf("per-op comm %g != total %g", sum, res.CommBytes)
	}
}

// TestSolveIsOptimal cross-checks the frontier DP against brute force over
// all variable assignments on a small model.
func TestSolveIsOptimal(t *testing.T) {
	m, err := models.MLP(1, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := problemFor(t, m, 2)
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}

	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate every assignment.
	var vars []int
	for _, v := range p.Coarse.Vars {
		if v.First >= 0 {
			vars = append(vars, v.ID)
		}
	}
	best := math.Inf(1)
	var walk func(idx int, assign map[int]int)
	walk = func(idx int, assign map[int]int) {
		if idx == len(vars) {
			c, err := ev.Total(assign)
			if err != nil {
				t.Fatal(err)
			}
			if c < best {
				best = c
			}
			return
		}
		for _, d := range ev.Configs(vars[idx]) {
			assign[vars[idx]] = d
			walk(idx+1, assign)
		}
		delete(assign, vars[idx])
	}
	if len(vars) > 12 {
		t.Skipf("brute force too large: %d vars", len(vars))
	}
	walk(0, map[int]int{})

	if math.Abs(best-res.CommBytes) > 1e-6*(1+best) {
		t.Fatalf("DP found %g, brute force found %g", res.CommBytes, best)
	}
}

func TestEvaluateMatchesSolveAtOptimum(t *testing.T) {
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	p := problemFor(t, m, 2)
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(p, res.VarCut)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.CommBytes-res.CommBytes) > 1e-6*(1+res.CommBytes) {
		t.Fatalf("Evaluate %g != Solve %g", ev.CommBytes, res.CommBytes)
	}
}

func TestStrategyFilter(t *testing.T) {
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	p := problemFor(t, m, 2)
	p.StrategyFilter = func(s partition.Strategy) bool { return s.Kind != partition.SplitReduce }
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.OpStrategy {
		if s.Kind == partition.SplitReduce {
			t.Fatal("filter violated")
		}
	}
	full := problemFor(t, m, 2)
	fres, err := Solve(full)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommBytes < fres.CommBytes-1 {
		t.Fatalf("restricted search %g beat full %g", res.CommBytes, fres.CommBytes)
	}
}

func TestSolveRejectsK1(t *testing.T) {
	m, err := models.MLP(1, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(problemFor(t, m, 1)); err == nil {
		t.Fatal("expected K>=2 error")
	}
}

func TestSolveIndivisible(t *testing.T) {
	// Odd extents everywhere: no dimension divides 2.
	m, err := models.MLP(1, 63, 15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(problemFor(t, m, 2)); err == nil {
		t.Fatal("expected indivisible error")
	}
}

func TestEvaluatorIncremental(t *testing.T) {
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	p := problemFor(t, m, 2)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	assign := map[int]int{}
	for _, v := range p.Coarse.Vars {
		if v.First < 0 {
			continue
		}
		assign[v.ID] = ev.Configs(v.ID)[0]
	}
	total, err := ev.Total(assign)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of VarCost double counts slots shared between variables, so each
	// variable's incident cost is bounded by the total but their sum is at
	// least the total.
	sum := 0.0
	for id := range assign {
		c, err := ev.VarCost(id, assign)
		if err != nil {
			t.Fatal(err)
		}
		if c > total+1e-6 {
			t.Fatalf("VarCost %g exceeds total %g", c, total)
		}
		sum += c
	}
	if sum < total-1e-6 {
		t.Fatalf("incident costs %g below total %g", sum, total)
	}
}

func TestSolveFlatCompletesOnTinyModel(t *testing.T) {
	m, err := models.MLP(1, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := problemFor(t, m, 8)
	rep, err := SolveFlat(p, []int64{2, 2, 2}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("tiny flat search did not complete: %+v", rep)
	}
	if rep.CommBytes <= 0 {
		t.Fatal("flat search found free plan")
	}
	// Flat multi-dimensional search must be at least as good as any fixed
	// recursive plan's cost on the same model... and never worse than the
	// single-dim search by construction of its search space.
	if rep.TotalConfigs < float64(rep.Evaluated) {
		t.Fatalf("bookkeeping: evaluated %d > total %g", rep.Evaluated, rep.TotalConfigs)
	}
}

func TestSolveFlatBudgetExtrapolates(t *testing.T) {
	m, err := models.RNN(2, 1024, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := problemFor(t, m, 8)
	rep, err := SolveFlat(p, []int64{2, 2, 2}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed {
		t.Skip("machine too fast; nothing to extrapolate")
	}
	if rep.EstimatedTotal <= 0 || rep.Evaluated == 0 {
		t.Fatalf("no extrapolation: %+v", rep)
	}
}

// TestPriceCacheReuse asserts the pricing cache is exact: a Solve with a
// warm cache returns the same result as a cold one, the cache is populated
// once per distinct slot signature, and per-step strategy filters still
// apply (they restrict the cached full enumeration).
func TestPriceCacheReuse(t *testing.T) {
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	cold := problemFor(t, m, 2)
	want, err := Solve(cold)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewPriceCache()
	first := problemFor(t, m, 2)
	first.Cache = cache
	got1, err := Solve(first)
	if err != nil {
		t.Fatal(err)
	}
	entries := cache.Len()
	if entries == 0 {
		t.Fatal("cache not populated")
	}
	second := problemFor(t, m, 2)
	second.Cache = cache
	got2, err := Solve(second)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != entries {
		t.Fatalf("second identical solve grew the cache: %d -> %d", entries, cache.Len())
	}
	for _, got := range []*Result{got1, got2} {
		if got.CommBytes != want.CommBytes {
			t.Fatalf("cached solve cost %g != cold %g", got.CommBytes, want.CommBytes)
		}
		for id, dim := range want.VarCut {
			if got.VarCut[id] != dim {
				t.Fatalf("cached solve cut var %d along %d, cold chose %d", id, got.VarCut[id], dim)
			}
		}
	}

	// The same cache serves a filtered search: filters must still hold.
	filtered := problemFor(t, m, 2)
	filtered.Cache = cache
	filtered.StrategyFilter = func(s partition.Strategy) bool { return s.Kind != partition.SplitReduce }
	fres, err := Solve(filtered)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fres.OpStrategy {
		if s.Kind == partition.SplitReduce {
			t.Fatal("cached pricing leaked a filtered strategy")
		}
	}
}

// TestSolveParallelMatchesSerial checks Solve itself (not just the
// recursive driver) is parallelism-invariant, including States/Configs
// search-effort accounting.
func TestSolveParallelMatchesSerial(t *testing.T) {
	m, err := models.RNN(2, 512, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial := problemFor(t, m, 2)
	serial.Parallelism = 1
	want, err := Solve(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		p := problemFor(t, m, 2)
		p.Parallelism = par
		got, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.CommBytes != want.CommBytes || got.States != want.States || got.Configs != want.Configs {
			t.Fatalf("parallelism %d: (cost, states, configs) = (%g, %d, %d), want (%g, %d, %d)",
				par, got.CommBytes, got.States, got.Configs, want.CommBytes, want.States, want.Configs)
		}
		for id, dim := range want.VarCut {
			if got.VarCut[id] != dim {
				t.Fatalf("parallelism %d: var %d cut %d, want %d", par, id, got.VarCut[id], dim)
			}
		}
	}
}
