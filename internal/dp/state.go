package dp

import (
	"fmt"
	"math"
	"sort"

	"tofu/internal/coarsen"
)

// This file implements the packed frontier-state encoding. A DP state at the
// boundary after group gi assigns every live variable one entry of its
// cut-dimension alphabet; the state is the mixed-radix number whose digits
// are those alphabet indices, most significant digit first in variable-ID
// order. Small boundaries (the paper's chains and residual graphs) keep the
// whole frontier in flat arrays indexed by that number; wide boundaries
// (attention fan-outs under a beam bound) fall back to a map keyed by the
// raw digit bytes. Both orders coincide with the legacy sorted-string-key
// sweep order, which is what keeps plans byte-identical across the
// representations and across worker-pool sizes.

// varAlpha is one variable's cut-dimension alphabet at the current step: the
// dimensions (ascending) the variable's shape can still be split along for
// this step's K, plus the inverse digit lookup.
type varAlpha struct {
	v *coarsen.Var
	// dims lists the cuttable dimensions, ascending; a state digit d means
	// "cut along dims[d]".
	dims []int
	// digitOf maps a dimension to its digit, -1 when not cuttable.
	digitOf []int8
}

// buildAlphas enumerates per-variable alphabets (cuttable dimensions at this
// step), indexed by variable ID. Unreferenced variables keep a nil alphabet.
func buildAlphas(p *Problem) ([]varAlpha, error) {
	alphas := make([]varAlpha, len(p.Coarse.Vars))
	for _, v := range p.Coarse.Vars {
		if v.First < 0 {
			continue // never referenced by an operator
		}
		s := p.Shapes[v.Tensors[0].ID]
		a := varAlpha{v: v, digitOf: make([]int8, s.Rank())}
		for d := 0; d < s.Rank(); d++ {
			a.digitOf[d] = -1
			if s.CanSplit(d, p.K) {
				a.digitOf[d] = int8(len(a.dims))
				a.dims = append(a.dims, d)
			}
		}
		if len(a.dims) == 0 {
			return nil, fmt.Errorf("dp: variable %v shape %v has no dimension divisible by %d", v, s, p.K)
		}
		alphas[v.ID] = a
	}
	return alphas, nil
}

const (
	// denseStateLimit bounds the state spaces kept in flat arrays; larger
	// boundaries use the byte-keyed sparse representation.
	denseStateLimit = 1 << 16
	// maxStateSpace clamps the mixed-radix product against int64 overflow.
	maxStateSpace = int64(1) << 62
)

// layout fixes the packed encoding of one set of variables (a frontier
// boundary, or a group's newly introduced variables).
type layout struct {
	vars []*coarsen.Var
	// radix[j] is the alphabet size of vars[j]; stride[j] its mixed-radix
	// weight (vars[0] is the most significant digit).
	radix  []int64
	stride []int64
	// size is the full state-space cardinality, clamped to maxStateSpace.
	size int64
	// dense marks layouts small enough for flat-array frontiers.
	dense bool
}

func makeLayout(vars []*coarsen.Var, alphas []varAlpha) layout {
	l := layout{
		vars:   vars,
		radix:  make([]int64, len(vars)),
		stride: make([]int64, len(vars)),
		size:   1,
	}
	for j := len(vars) - 1; j >= 0; j-- {
		r := int64(len(alphas[vars[j].ID].dims))
		l.radix[j] = r
		l.stride[j] = l.size
		if l.size >= maxStateSpace/r {
			l.size = maxStateSpace
		} else {
			l.size *= r
		}
	}
	l.dense = l.size <= denseStateLimit
	return l
}

// decode writes state idx's digit per variable into the scratch array
// (indexed by variable ID).
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (l *layout) decode(idx int64, digit []uint8) {
	for j, v := range l.vars {
		digit[v.ID] = uint8((idx / l.stride[j]) % l.radix[j])
	}
}

// frontier holds the DP states at one boundary. Dense frontiers are indexed
// by the packed state number with +Inf marking unreachable or pruned
// states; sparse frontiers list reachable states in ascending key order.
// parent is the state's predecessor position in the previous frontier's
// state list and combo the packed assignment of the group's new variables —
// together they replace the legacy per-group decided-map trace.
type frontier struct {
	lay    layout
	cost   []float64
	parent []int32
	combo  []int32
	// keys holds the packed digit bytes of each state, ascending; nil for
	// dense frontiers.
	keys []string
	// live counts reachable (unpruned) states.
	live int
}

// count is the number of enumerable state positions (dense counts holes).
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (f *frontier) count() int {
	if f.lay.dense {
		return int(f.lay.size)
	}
	return len(f.keys)
}

// decode writes state position i's digits into the scratch array.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (f *frontier) decode(i int, digit []uint8) {
	if f.lay.dense {
		f.lay.decode(int64(i), digit)
		return
	}
	k := f.keys[i]
	for j, v := range f.lay.vars {
		digit[v.ID] = k[j]
	}
}

// initialFrontier is the single empty state before the first group.
func initialFrontier() *frontier {
	return &frontier{
		lay:    layout{size: 1, dense: true},
		cost:   []float64{0},
		parent: []int32{-1},
		combo:  []int32{-1},
		live:   1,
	}
}

// best returns the position and cost of the cheapest live state (ties break
// by position, i.e. by packed state order).
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (f *frontier) best() (int, float64) {
	bi, bc := -1, math.Inf(1)
	for i, c := range f.cost {
		if c < bc {
			bi, bc = i, c
		}
	}
	return bi, bc
}

// prune keeps the cheapest max live states — the beam bound. The surviving
// set is selected by the total order (cost, state order), so it is
// deterministic; selection is O(n) expected (quickselect), replacing the
// legacy full sort. Sparse frontiers compact their state list; dense ones
// mark pruned states +Inf in place.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func (f *frontier) prune(max int) {
	if f.live <= max {
		return
	}
	idxs := make([]int32, 0, f.live)
	for i, c := range f.cost {
		if !math.IsInf(c, 1) {
			idxs = append(idxs, int32(i))
		}
	}
	selectCheapest(idxs, f.cost, max)
	if f.lay.dense {
		for _, i := range idxs[max:] {
			f.cost[i] = math.Inf(1)
		}
		f.live = max
		return
	}
	keep := idxs[:max]
	sort.Slice(keep, func(a, b int) bool { return keep[a] < keep[b] })
	keys := make([]string, max)
	cost := make([]float64, max)
	parent := make([]int32, max)
	combo := make([]int32, max)
	for o, i := range keep {
		keys[o] = f.keys[i]
		cost[o] = f.cost[i]
		parent[o] = f.parent[i]
		combo[o] = f.combo[i]
	}
	f.keys, f.cost, f.parent, f.combo = keys, cost, parent, combo
	f.live = max
}

// selectCheapest partially sorts idxs so its first k entries are the k
// smallest by (cost, index) — expected-linear Hoare quickselect with
// median-of-three pivots.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func selectCheapest(idxs []int32, cost []float64, k int) {
	lo, hi := 0, len(idxs) // select within idxs[lo:hi]
	for hi-lo > 1 && k > lo && k < hi {
		// Median-of-three pivot on (cost, index).
		mid := lo + (hi-lo)/2
		a, b, c := idxs[lo], idxs[mid], idxs[hi-1]
		pivot := b
		if cheaper(a, b, cost) {
			if cheaper(b, c, cost) {
				pivot = b
			} else if cheaper(a, c, cost) {
				pivot = c
			} else {
				pivot = a
			}
		} else {
			if cheaper(a, c, cost) {
				pivot = a
			} else if cheaper(b, c, cost) {
				pivot = c
			} else {
				pivot = b
			}
		}
		i, j := lo, hi-1
		for i <= j {
			for cheaper(idxs[i], pivot, cost) { //tofu:allow-ctxpoll quickselect scan: the pivot sentinel stops i inside the slice
				i++
			}
			for cheaper(pivot, idxs[j], cost) { //tofu:allow-ctxpoll quickselect scan: the pivot sentinel stops j inside the slice
				j--
			}
			if i <= j {
				idxs[i], idxs[j] = idxs[j], idxs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j + 1
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// cheaper is the total order pruning selects by: cost, then packed state
// order.
//
//tofu:hotpath allocation-free by PR 3; enforced by tofu-vet/hotalloc
func cheaper(a, b int32, cost []float64) bool {
	if cost[a] != cost[b] {
		return cost[a] < cost[b]
	}
	return a < b
}
