package dp

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"tofu/internal/graph"
	"tofu/internal/partition"
	"tofu/internal/shape"
)

// PriceCache memoizes the priced strategy enumerations of operator slots.
// By Lemma 1 the DP prices every basic plan at the graph's ORIGINAL shapes,
// so a slot's pricing — the expensive part of each dp.Solve call, one
// symbolic interval analysis per (strategy, worker) — depends only on the
// operator's structural signature (description, attributes, original
// shapes), the step's group count K and the dtype. One cache therefore
// serves every recursive factor step, every baseline variant over the same
// model (per-step strategy filters become cheap Restrict views of the full
// enumeration), and even structurally identical slots of different models.
//
// The zero value is not usable; call NewPriceCache. A nil *PriceCache is a
// valid "no caching" sentinel. All methods are safe for concurrent use.
type PriceCache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry

	// hits/misses count priced() lookups that found an existing entry vs
	// ones that created it — the service's cross-request reuse metric.
	hits, misses atomic.Int64
}

type cacheEntry struct {
	once   sync.Once
	priced *partition.Priced
	err    error
}

// NewPriceCache returns an empty cache.
func NewPriceCache() *PriceCache {
	return &PriceCache{m: map[string]*cacheEntry{}}
}

// priced returns the cached full pricing for key, building it at most once
// (concurrent callers for the same key block on the first build). A nil
// receiver builds without caching.
func (c *PriceCache) priced(key string, build func() (*partition.Priced, error)) (*partition.Priced, error) {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.priced, e.err = build() })
	return e.priced, e.err
}

// Stats reports how many priced() lookups hit an existing entry vs built a
// new one since the cache was created.
func (c *PriceCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len reports how many distinct slot pricings the cache holds.
func (c *PriceCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// slotKey is the structural signature a pricing is memoized under: operator
// name, sorted attributes, original input/output shapes, dtype and K. Two
// slots with equal keys price identically regardless of which graph, model
// variant or recursive step they come from. Built with plain byte appends —
// it runs once per slot per step, inside the pooled evaluator build.
func slotKey(rep *graph.Node, k int64, dt shape.DType) string {
	buf := make([]byte, 0, 64)
	buf = append(buf, rep.Op...)
	if len(rep.Attrs) > 0 {
		keys := make([]string, 0, len(rep.Attrs))
		for a := range rep.Attrs {
			keys = append(keys, a)
		}
		sort.Strings(keys)
		for _, a := range keys {
			buf = append(buf, ';')
			buf = append(buf, a...)
			buf = append(buf, '=')
			buf = strconv.AppendInt(buf, rep.Attrs[a], 10)
		}
	}
	appendShape := func(s shape.Shape) {
		buf = append(buf, '(')
		for i := 0; i < s.Rank(); i++ {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, s.Dim(i), 10)
		}
		buf = append(buf, ')')
	}
	for _, in := range rep.Inputs {
		buf = append(buf, '|')
		appendShape(in.Shape)
	}
	buf = append(buf, '>')
	appendShape(rep.Output.Shape)
	buf = append(buf, '@')
	buf = strconv.AppendInt(buf, int64(dt), 10)
	buf = append(buf, '/')
	buf = strconv.AppendInt(buf, k, 10)
	return string(buf)
}
