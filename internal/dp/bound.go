package dp

import "fmt"

// This file is the branch-and-bound support: an admissible lower bound on
// the communication a Solve of the same Problem could choose. The recursive
// ordering search prices every not-yet-placed factor with it and prunes any
// factor-to-level ordering whose bound already exceeds the incumbent.

// LowerBound returns an admissible lower bound on the CommBytes any feasible
// assignment of p can achieve: the sum over slots of each slot's cheapest
// table entry. Independent per-slot minima ignore the consistency constraint
// between slots sharing a variable, so the bound can only be below Solve's
// optimum — never above it.
//
// The bound is also a valid lower bound for the SAME K at any LATER
// recursive step over further-divided shapes: costs are priced at the
// graph's original shapes (Lemma 1), and shrinking shapes can only remove
// strategies and cut dimensions from the search, never add them, so every
// per-slot minimum is monotone nondecreasing along a recursion branch.
//
// An error reports genuine infeasibility — some variable has no dimension
// divisible by K, or some slot no applicable strategy — and by the same
// monotonicity the whole recursion subtree below the queried shapes is
// infeasible for this K.
//
// When reuse is non-nil, the slot evaluators built for the bound are parked
// there, so a subsequent Solve over the identical (Coarse, K, Shapes,
// DType, StrategyFilter) pays nothing to rebuild them. p.Reuse is ignored;
// the bound never reads a previous step's evaluators.
func LowerBound(p *Problem, reuse *EvalReuse) (float64, error) {
	if p.K < 2 {
		return 0, fmt.Errorf("dp: K must be >= 2, got %d", p.K)
	}
	q := *p
	q.Reuse = nil
	sl, err := prepareSlotEvals(&q)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, ev := range sl.ordered {
		if ev.costT != nil {
			total += ev.minCost
		}
	}
	if reuse != nil {
		reuse.k = p.K
		reuse.set = sl
	}
	return total, nil
}
