package dp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tofu/internal/coarsen"
	"tofu/internal/partition"
)

// FlatReport measures the single-level multi-dimensional DP — the paper's
// "DP with coarsening" row in Table 1. Without recursion, every tensor may
// be partitioned along any combination of dimensions (20 ways for a 4-D
// tensor across 8 workers), so the per-group combinatorial search explodes;
// the paper measured 8 hours for WResNet-152 and >24 hours for RNN-10. The
// search runs under a wall-clock budget and extrapolates the completion time
// from the measured evaluation rate and the exact remaining combination
// count.
type FlatReport struct {
	Completed      bool
	Elapsed        time.Duration
	EstimatedTotal time.Duration
	Evaluated      int64   // (state x combo) group evaluations performed
	TotalConfigs   float64 // exact total evaluations the full run needs
	CommBytes      float64 // plan cost when the search completed
}

// SolveFlat runs the non-recursive multi-dimensional DP with a wall-clock
// budget. factors is the cut sequence a config represents (e.g. [2,2,2] for
// 8 workers); each variable's configuration is a multiset of dimensions of
// that length.
func SolveFlat(p *Problem, factors []int64, budget time.Duration) (*FlatReport, error) {
	c := p.Coarse
	rep := &FlatReport{}
	start := time.Now()

	// Enumerate per-variable multiset configurations, honoring cumulative
	// divisibility (cutting dim d c times needs the extent divisible by the
	// product of those factors).
	varConfigs := make(map[int][][]int, len(c.Vars))
	for _, v := range c.Vars {
		if v.First < 0 {
			continue
		}
		s := p.Shapes[v.Tensors[0].ID]
		var combos [][]int
		var build func(prefix []int, startDim int, level int)
		build = func(prefix []int, startDim int, level int) {
			if level == len(factors) {
				combos = append(combos, append([]int(nil), prefix...))
				return
			}
			for d := startDim; d < s.Rank(); d++ {
				// Exact divisibility: product of all factors applied to d.
				ways := factors[level]
				for i, pd := range prefix {
					if pd == d {
						ways *= factors[i]
					}
				}
				if s.Dim(d)%ways != 0 || s.Dim(d) < ways {
					continue
				}
				build(append(prefix, d), d, level+1)
			}
		}
		build(nil, 0, 0)
		if len(combos) == 0 {
			return nil, fmt.Errorf("dp: flat search: variable %v cannot be divided %v ways", v, factors)
		}
		varConfigs[v.ID] = combos
	}

	// Exact total evaluation count of the full DP (states x new combos per
	// group), computed without running it.
	liveProduct := func(gi int) float64 {
		prod := 1.0
		for _, v := range c.Vars {
			if v.First <= gi && v.Last > gi {
				prod *= float64(len(varConfigs[v.ID]))
			}
		}
		return prod
	}
	for gi, g := range c.Groups {
		states := 1.0
		if gi > 0 {
			states = liveProduct(gi - 1)
		}
		comboCount := 1.0
		for _, v := range g.Vars {
			if v.First == gi {
				comboCount *= float64(len(varConfigs[v.ID]))
			}
		}
		rep.TotalConfigs += states * comboCount
	}

	// Slot evaluators per factor level (shapes are original at every level;
	// see Problem's pricing note).
	type levelEval struct {
		priced *partition.Priced
		inVars []*coarsen.Var
		outVar *coarsen.Var
		mult   float64
	}
	evals := map[*coarsen.Slot][]*levelEval{}
	for _, g := range c.Groups {
		for _, s := range g.Slots {
			for _, k := range factors {
				sub := &Problem{Coarse: c, K: k, Shapes: p.Shapes, DType: p.DType,
					StrategyFilter: p.StrategyFilter, Cache: p.Cache}
				ev, err := newSlotEval(sub, s)
				if err != nil {
					return nil, err
				}
				evals[s] = append(evals[s], &levelEval{
					priced: ev.priced, inVars: ev.inVars, outVar: ev.outVar, mult: ev.mult,
				})
			}
		}
	}

	slotCost := func(s *coarsen.Slot, assign map[int][]int) (float64, bool) {
		total := 0.0
		for level, le := range evals[s] {
			inCuts := make([]partition.Cut, len(le.inVars))
			for i, v := range le.inVars {
				inCuts[i] = partition.Cut{Dim: assign[v.ID][level]}
			}
			out := partition.Cut{Dim: assign[le.outVar.ID][level]}
			si, cost := le.priced.Best(inCuts, out)
			if si < 0 {
				return 0, false
			}
			total += cost * le.mult
		}
		return total, true
	}

	// Frontier DP over multiset configurations.
	type entry struct {
		cost float64
	}
	encode := func(assign map[int][]int) string {
		ids := make([]int, 0, len(assign))
		for id := range assign {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var sb strings.Builder
		for _, id := range ids {
			fmt.Fprintf(&sb, "%d:%v;", id, assign[id])
		}
		return sb.String()
	}
	type state struct {
		assign map[int][]int
		cost   float64
	}
	states := []state{{assign: map[int][]int{}}}
	for gi, g := range c.Groups {
		var newVars []*coarsen.Var
		for _, v := range g.Vars {
			if v.First == gi {
				newVars = append(newVars, v)
			}
		}
		nextByKey := map[string]state{}
		for _, st := range states {
			// Enumerate combos of the new variables.
			combos := []map[int][]int{{}}
			for _, v := range newVars {
				var grown []map[int][]int
				for _, m := range combos {
					for _, cfg := range varConfigs[v.ID] {
						nm := make(map[int][]int, len(m)+1)
						for k2, v2 := range m {
							nm[k2] = v2
						}
						nm[v.ID] = cfg
						grown = append(grown, nm)
					}
				}
				combos = grown
			}
			for _, combo := range combos {
				// Never bail before the first batch: extrapolation needs a
				// nonzero measured rate even when setup ate the whole budget
				// (tiny budgets, race-detector builds).
				if rep.Evaluated > 0 && rep.Evaluated%512 == 0 && time.Since(start) > budget {
					rep.Elapsed = time.Since(start)
					rate := float64(rep.Evaluated) / rep.Elapsed.Seconds()
					if rate > 0 {
						rep.EstimatedTotal = time.Duration(rep.TotalConfigs / rate * float64(time.Second))
					}
					return rep, nil
				}
				rep.Evaluated++
				full := make(map[int][]int, len(st.assign)+len(combo))
				for k2, v2 := range st.assign {
					full[k2] = v2
				}
				for k2, v2 := range combo {
					full[k2] = v2
				}
				cost := st.cost
				ok := true
				for _, s := range g.Slots {
					cc, valid := slotCost(s, full)
					if !valid {
						ok = false
						break
					}
					cost += cc
				}
				if !ok {
					continue
				}
				nxt := make(map[int][]int, len(full))
				for id, cfg := range full {
					if c.Vars[id].Last > gi {
						nxt[id] = cfg
					}
				}
				key := encode(nxt)
				if old, seen := nextByKey[key]; !seen || cost < old.cost {
					nextByKey[key] = state{assign: nxt, cost: cost}
				}
			}
		}
		states = states[:0]
		for _, st := range nextByKey {
			states = append(states, st)
		}
		if len(states) == 0 {
			return nil, fmt.Errorf("dp: flat search infeasible at group %d", gi)
		}
	}
	best := states[0].cost
	for _, st := range states {
		if st.cost < best {
			best = st.cost
		}
	}
	rep.Completed = true
	rep.Elapsed = time.Since(start)
	rep.EstimatedTotal = rep.Elapsed
	rep.CommBytes = best
	return rep, nil
}
