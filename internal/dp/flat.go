package dp

import (
	"fmt"
	"math"
	"time"
)

// FlatReport measures the single-level multi-dimensional DP — the paper's
// "DP with coarsening" row in Table 1. Without recursion, every tensor may
// be partitioned along any combination of dimensions (20 ways for a 4-D
// tensor across 8 workers), so the per-group combinatorial search explodes;
// the paper measured 8 hours for WResNet-152 and >24 hours for RNN-10. The
// search runs under a wall-clock budget and extrapolates the completion time
// from the measured evaluation rate and the exact remaining combination
// count.
type FlatReport struct {
	Completed      bool
	Elapsed        time.Duration
	EstimatedTotal time.Duration
	Evaluated      int64   // (state x combo) group evaluations performed
	TotalConfigs   float64 // exact total evaluations the full run needs
	CommBytes      float64 // plan cost when the search completed
}

// SolveFlat runs the non-recursive multi-dimensional DP with a wall-clock
// budget. factors is the cut sequence a config represents (e.g. [2,2,2] for
// 8 workers); each variable's configuration is a multiset of dimensions of
// that length. The per-level slot pricing rides the same dense cost tables
// as the recursive search (one table set per factor level); frontier states
// are packed config-index keys.
//
//tofu:allow-nondet wall-clock budget accounting for the Table-1 baseline; elapsed time never reaches plan bytes or the digest-keyed cache
func SolveFlat(p *Problem, factors []int64, budget time.Duration) (*FlatReport, error) {
	c := p.Coarse
	rep := &FlatReport{}
	start := time.Now()

	// Enumerate per-variable multiset configurations, honoring cumulative
	// divisibility (cutting dim d c times needs the extent divisible by the
	// product of those factors).
	varConfigs := make(map[int][][]int, len(c.Vars))
	for _, v := range c.Vars {
		if v.First < 0 {
			continue
		}
		s := p.Shapes[v.Tensors[0].ID]
		var combos [][]int
		var build func(prefix []int, startDim int, level int)
		build = func(prefix []int, startDim int, level int) {
			if level == len(factors) {
				combos = append(combos, append([]int(nil), prefix...))
				return
			}
			for d := startDim; d < s.Rank(); d++ {
				// Exact divisibility: product of all factors applied to d.
				ways := factors[level]
				for i, pd := range prefix {
					if pd == d {
						ways *= factors[i]
					}
				}
				if s.Dim(d)%ways != 0 || s.Dim(d) < ways {
					continue
				}
				build(append(prefix, d), d, level+1)
			}
		}
		build(nil, 0, 0)
		if len(combos) == 0 {
			return nil, fmt.Errorf("dp: flat search: variable %v cannot be divided %v ways", v, factors)
		}
		if len(combos) > 1<<16 {
			return nil, fmt.Errorf("dp: flat search: variable %v has %d configurations", v, len(combos))
		}
		varConfigs[v.ID] = combos
	}

	// Exact total evaluation count of the full DP (states x new combos per
	// group), computed without running it.
	for gi, g := range c.Groups {
		states := 1.0
		if gi > 0 {
			for _, v := range c.Groups[gi-1].LiveAfter {
				states *= float64(len(varConfigs[v.ID]))
			}
		}
		comboCount := 1.0
		for _, v := range g.NewVars {
			comboCount *= float64(len(varConfigs[v.ID]))
		}
		rep.TotalConfigs += states * comboCount
	}

	// Slot evaluators (and dense cost tables) per factor level — shapes are
	// original at every level (see Problem's pricing note), so each level's
	// table set is exactly the recursive search's for that K, and equal
	// factors share one set.
	levelEvals := make([]*slotSet, len(factors))
	byK := map[int64]*slotSet{}
	for li, k := range factors {
		if ss, ok := byK[k]; ok {
			levelEvals[li] = ss
			continue
		}
		sub := &Problem{Coarse: c, K: k, Shapes: p.Shapes, DType: p.DType,
			StrategyFilter: p.StrategyFilter, Parallelism: p.Parallelism, Cache: p.Cache}
		ss, err := prepareSlotEvals(sub)
		if err != nil {
			return nil, err
		}
		byK[k] = ss
		levelEvals[li] = ss
	}

	// cfg holds the current configuration index of every variable; the
	// group cost prices each slot per level through its table.
	cfg := make([]int32, len(c.Vars))
	groupCost := func(gi int) (float64, bool) {
		total := 0.0
		for si := range c.Groups[gi].Slots {
			for li := range factors {
				ev := levelEvals[li].byGroup[gi][si]
				ti := 0
				for j, v := range ev.tvars {
					d := varConfigs[v.ID][cfg[v.ID]][li]
					dg := ev.talphas[j].digitOf[d]
					if dg < 0 {
						return 0, false
					}
					ti += ev.tstride[j] * int(dg)
				}
				_, cost := ev.bestAt(ti) // pre-multiplied by multiplicity
				total += cost
			}
		}
		return total, true
	}

	// Frontier DP over multiset configurations, keyed by packed config
	// indices (two bytes per live variable).
	states := map[string]float64{"": 0}
	for gi, g := range c.Groups {
		nCombos := int64(1)
		for _, v := range g.NewVars {
			nCombos *= int64(len(varConfigs[v.ID]))
		}
		keyBuf := make([]byte, 2*len(g.LiveAfter))
		next := make(map[string]float64)
		for key, stCost := range states {
			if gi > 0 {
				live := c.Groups[gi-1].LiveAfter
				for b, v := range live {
					cfg[v.ID] = int32(key[2*b])<<8 | int32(key[2*b+1])
				}
			}
			for ci := int64(0); ci < nCombos; ci++ {
				// Never bail before the first batch: extrapolation needs a
				// nonzero measured rate even when setup ate the whole budget
				// (tiny budgets, race-detector builds).
				if rep.Evaluated > 0 && rep.Evaluated%512 == 0 && time.Since(start) > budget {
					rep.Elapsed = time.Since(start)
					rate := float64(rep.Evaluated) / rep.Elapsed.Seconds()
					if rate > 0 {
						rep.EstimatedTotal = time.Duration(rep.TotalConfigs / rate * float64(time.Second))
					}
					return rep, nil
				}
				rep.Evaluated++
				rem := ci
				for j := len(g.NewVars) - 1; j >= 0; j-- {
					n := int64(len(varConfigs[g.NewVars[j].ID]))
					cfg[g.NewVars[j].ID] = int32(rem % n)
					rem /= n
				}
				cost, ok := groupCost(gi)
				if !ok {
					continue
				}
				cost += stCost
				for b, v := range g.LiveAfter {
					keyBuf[2*b] = byte(cfg[v.ID] >> 8)
					keyBuf[2*b+1] = byte(cfg[v.ID])
				}
				if old, seen := next[string(keyBuf)]; !seen || cost < old {
					next[string(keyBuf)] = cost
				}
			}
		}
		states = next
		if len(states) == 0 {
			return nil, fmt.Errorf("dp: flat search infeasible at group %d", gi)
		}
	}
	best := math.Inf(1)
	for _, cost := range states {
		if cost < best {
			best = cost
		}
	}
	rep.Completed = true
	rep.Elapsed = time.Since(start)
	rep.EstimatedTotal = rep.Elapsed
	rep.CommBytes = best
	return rep, nil
}
