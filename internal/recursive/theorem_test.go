package recursive

import (
	"math"
	"testing"
	"testing/quick"

	"tofu/internal/models"
)

// TestTheorem1StepOrderInvariance: the paper's commutativity lemma — the
// total cost of a sequence of basic plans does not depend on their order.
// With Lemma-1 pricing (each step priced at original shapes) this is a
// structural property of the plan representation; verify it end to end by
// checking that every 4-way recursive plan's total equals the sum of its
// per-step deltas regardless of ordering.
func TestTheorem1StepOrderInvariance(t *testing.T) {
	m, err := models.MLP(2, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(m.G, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	forward := 0.0
	for _, s := range p.Steps {
		forward += s.Delta()
	}
	backward := 0.0
	for i := len(p.Steps) - 1; i >= 0; i-- {
		backward += p.Steps[i].Delta()
	}
	if math.Abs(forward-backward) > 1e-9 {
		t.Fatalf("order dependence: %g vs %g", forward, backward)
	}
	if math.Abs(forward-p.TotalComm()) > 1e-6 {
		t.Fatalf("TotalComm %g != Σ deltas %g", p.TotalComm(), forward)
	}
}

// TestQuickRecursionNeverWorseThanSingleStep: across random MLP sizes, the
// recursive [2,2] plan never costs more than the single 4-way chop
// (EqualChop) — the multi-dimensional advantage of Sec 5.2.
func TestQuickRecursionNeverWorseThanSingleStep(t *testing.T) {
	f := func(a, b uint8) bool {
		dim := int64(a%8+2) * 32   // 64..288, divisible by 4
		batch := int64(b%4+1) * 16 // 16..64
		m, err := models.MLP(1, dim, batch)
		if err != nil {
			return false
		}
		rec, err := Partition(m.G, 4, Options{})
		if err != nil {
			return false
		}
		chop, err := Partition(m.G, 4, Options{Factors: []int64{4}})
		if err != nil {
			return false
		}
		return rec.TotalComm() <= chop.TotalComm()*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotoneDeltas: Theorem 2 holds across random RNN widths.
func TestQuickMonotoneDeltas(t *testing.T) {
	f := func(a uint8) bool {
		hidden := int64(a%4+1) * 256
		m, err := models.RNN(2, hidden, 64, 3)
		if err != nil {
			return false
		}
		p, err := Partition(m.G, 8, Options{})
		if err != nil {
			return false
		}
		return p.Monotone()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
