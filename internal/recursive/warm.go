package recursive

import "tofu/internal/topo"

// WarmStep is one factor-to-level placement of a warm-start seed ordering
// (see Options.WarmStart). The JSON form is what the serving layer's
// neighbor index persists alongside cached plans.
type WarmStep struct {
	Factor int64 `json:"factor"`
	Level  int   `json:"level"`
}

// WarmOrderFromSteps maps a neighboring plan's step sequence onto tp's
// factor-to-level pool, producing a complete candidate ordering to seed the
// branch-and-bound incumbent (Options.WarmStart). The neighbor typically
// answered the same model on a different machine or worker count — Lemma 1
// prices every step at original shapes, so the ordering that won there is a
// strong first guess here, and "re-pricing" it is exactly what the seed
// walk's prefix DP chain does on the requested topology.
//
// Each neighbor step claims the unused pool pair with the same factor whose
// level index is nearest the neighbor's (ties to the inner level, then
// canonical order); factors the pool does not owe are skipped, and whatever
// the neighbor never placed follows in canonical order. The result is
// always a valid permutation of the pool — identical machines round-trip
// their own ordering exactly — and a poor mapping only costs search effort,
// never plan quality: seeds cannot change the chosen plan.
//
// A nil return means tp has no ordering search to seed (flat or
// single-pair machines).
func WarmOrderFromSteps(tp topo.Topology, neighbor []WarmStep) []WarmStep {
	pool := topoPool(tp)
	if len(pool) <= 1 {
		return nil
	}
	used := make([]bool, len(pool))
	out := make([]WarmStep, 0, len(pool))
	for _, ns := range neighbor {
		best := -1
		for i, fl := range pool {
			if used[i] || fl.f != ns.Factor {
				continue
			}
			if best < 0 || absInt(fl.level-ns.Level) < absInt(pool[best].level-ns.Level) {
				best = i
			}
		}
		if best >= 0 {
			used[best] = true
			out = append(out, WarmStep{Factor: pool[best].f, Level: pool[best].level})
		}
	}
	for i, fl := range pool {
		if !used[i] {
			out = append(out, WarmStep{Factor: fl.f, Level: fl.level})
		}
	}
	return out
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
